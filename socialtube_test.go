package socialtube_test

import (
	"testing"
	"time"

	socialtube "github.com/socialtube/socialtube"
)

// smallTrace builds a fast trace through the public API only.
func smallTrace(t *testing.T) *socialtube.Trace {
	t.Helper()
	cfg := socialtube.DefaultTraceConfig()
	cfg.Seed = 61
	cfg.Channels = 80
	cfg.Users = 200
	cfg.Categories = 8
	cfg.MaxInterestsPerUser = 8
	tr, err := socialtube.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPublicAPIEndToEndSimulation(t *testing.T) {
	tr := smallTrace(t)
	sys, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := socialtube.DefaultExperimentConfig()
	cfg.Sessions = 2
	cfg.VideosPerSession = 5
	cfg.WatchScale = 0.05
	cfg.MeanOffTime = 60 * time.Second
	cfg.Horizon = 6 * time.Hour
	res, err := socialtube.RunExperiment(cfg, tr, sys, socialtube.DefaultNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests through the public API")
	}
	_, p50, _ := res.NormalizedPeerBandwidthPercentiles()
	if p50 < 0 || p50 > 1 {
		t.Fatalf("median peer bandwidth %v outside [0,1]", p50)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	tr := smallTrace(t)
	if _, err := socialtube.NewNetTube(socialtube.DefaultNetTubeConfig(), tr); err != nil {
		t.Fatal(err)
	}
	if _, err := socialtube.NewPAVoD(socialtube.DefaultPAVoDConfig(), tr); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIProtocolInterface(t *testing.T) {
	tr := smallTrace(t)
	sys, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	var p socialtube.Protocol = sys
	node := int(tr.Users[0].ID)
	p.Join(node)
	rec := p.Request(node, tr.Videos[0].ID)
	if rec.Source != socialtube.SourceServer {
		t.Fatalf("first request source = %v, want server", rec.Source)
	}
	p.Finish(node, tr.Videos[0].ID)
	if rec := p.Request(node, tr.Videos[0].ID); rec.Source != socialtube.SourceCache {
		t.Fatalf("cached request source = %v", rec.Source)
	}
}

func TestPublicAPIAnalyticalModels(t *testing.T) {
	m := socialtube.DefaultMaintenanceModel()
	if m.SocialTube(5) >= m.NetTube(5) {
		t.Fatal("Fig. 15 crossover missing at m=5")
	}
	if acc := socialtube.PrefetchAccuracy(25, 1); acc < 0.25 || acc > 0.28 {
		t.Fatalf("prefetch accuracy %v, paper ≈0.262", acc)
	}
}

func TestPublicAPIEmulation(t *testing.T) {
	tr := smallTrace(t)
	cfg := socialtube.DefaultClusterConfig(socialtube.ModeSocialTube)
	cfg.Peers = 8
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.WatchTime = 5 * time.Millisecond
	res, err := socialtube.RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits+res.PeerHits+res.ServerHits == 0 {
		t.Fatal("emulated cluster served nothing")
	}
}

func TestPublicAPITraceSummary(t *testing.T) {
	tr := smallTrace(t)
	s := tr.Summarize()
	if s.Users != 200 || s.Channels != 80 {
		t.Fatalf("summary %+v does not match config", s)
	}
}
