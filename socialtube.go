// Package socialtube is a from-scratch reproduction of "An Interest-based
// Per-Community P2P Hierarchical Structure for Short Video Sharing in the
// YouTube Social Network" (Shen, Lin, Chandler — ICDCS 2014).
//
// SocialTube organizes a P2P video-on-demand swarm around the *social*
// structure of YouTube rather than around individual videos: subscribers of
// one channel form a lower-level overlay (at most N_l inner-links per node),
// all users of channels within one interest category form a higher-level
// cluster (at most N_h inter-links), queries flood the channel overlay with
// a TTL, then the category cluster, then fall back to the server, and nodes
// prefetch the first chunks of the most popular videos of the channel they
// are watching.
//
// The package exposes four layers:
//
//   - Trace: a synthetic YouTube social network whose distributions match
//     the paper's Section III crawl (GenerateTrace).
//   - Protocols: SocialTube (NewSystem) plus the NetTube and PA-VoD
//     baselines (NewNetTube, NewPAVoD), all implementing Protocol.
//   - Simulation: a discrete-event, trace-driven experiment engine
//     (RunExperiment) reproducing the PeerSim evaluation.
//   - Emulation: real TCP nodes on loopback with injected WAN latency and
//     loss (RunCluster) reproducing the PlanetLab evaluation.
//
// A minimal end-to-end run:
//
//	tr, err := socialtube.GenerateTrace(socialtube.DefaultTraceConfig())
//	if err != nil { ... }
//	sys, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
//	if err != nil { ... }
//	res, err := socialtube.RunExperiment(
//		socialtube.DefaultExperimentConfig(), tr, sys,
//		socialtube.DefaultNetworkConfig())
//	if err != nil { ... }
//	p1, p50, p99 := res.NormalizedPeerBandwidthPercentiles()
//
// # Scenarios: context, fault injection and observability
//
// RunExperimentCtx and RunClusterCtx are the context-aware forms of the
// two run entry points. Cross-cutting concerns — a deterministic fault
// plan, a trace sink, a counter snapshot destination, a non-default
// network — attach through functional options instead of extra
// positional parameters:
//
//	var ctr socialtube.Counters
//	res, err := socialtube.RunExperimentCtx(ctx,
//		socialtube.DefaultExperimentConfig(), tr, sys,
//		socialtube.WithFaults(socialtube.ChurnPlan(1, 4*time.Minute)),
//		socialtube.WithCounters(&ctr))
//	if err != nil { ... }
//	fmt.Println(res.Resilience.HitRateUnderFaults(), ctr.RepairCalls)
//
// The same FaultPlan drives both engines: compiled once per run from its
// seed, it replays identically in simulated time (RunExperimentCtx) and
// on wall-clock offsets against live TCP nodes (RunClusterCtx).
//
// Migration note: the legacy four-positional-argument RunExperiment and
// the two-argument RunCluster are retained as thin wrappers over the Ctx
// forms with context.Background() and no options; healthy runs produce
// bit-identical results through either entry point. New code should call
// the Ctx forms.
package socialtube

import (
	"context"
	"time"

	"github.com/socialtube/socialtube/internal/baseline"
	"github.com/socialtube/socialtube/internal/core"
	"github.com/socialtube/socialtube/internal/emu"
	"github.com/socialtube/socialtube/internal/exp"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// Trace layer: the synthetic YouTube social network.
type (
	// Trace is a synthetic crawl of the modelled YouTube social network.
	Trace = trace.Trace
	// TraceConfig controls synthetic trace generation.
	TraceConfig = trace.Config
	// TraceSummary aggregates a trace's headline statistics.
	TraceSummary = trace.Summary
	// Channel is one YouTube channel.
	Channel = trace.Channel
	// Video is one uploaded video.
	Video = trace.Video
	// User is one registered user.
	User = trace.User
	// ChannelID identifies a channel.
	ChannelID = trace.ChannelID
	// VideoID identifies a video.
	VideoID = trace.VideoID
	// UserID identifies a user.
	UserID = trace.UserID
	// CategoryID identifies an interest category.
	CategoryID = trace.CategoryID
)

// DefaultTraceConfig returns a laptop-scale trace configuration whose
// distributions follow the paper's Section III measurements.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// GenerateTrace builds a synthetic trace; the same configuration always
// yields the same trace.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// CrawlTrace samples a sub-trace by breadth-first search over subscription
// relationships — the paper's Section III data-collection methodology.
func CrawlTrace(tr *Trace, seed int64, maxUsers int) (*Trace, error) {
	return trace.Crawl(tr, seed, maxUsers)
}

// Protocol layer: SocialTube and the two baselines.
type (
	// Protocol is the contract every P2P VoD scheme implements.
	Protocol = vod.Protocol
	// RequestResult describes how a protocol located one video.
	RequestResult = vod.RequestResult
	// Source says who served a request.
	Source = vod.Source
	// Behavior is the video-selection model (75/15/10 in the paper).
	Behavior = vod.Behavior

	// System is the SocialTube protocol (the paper's contribution).
	System = core.System
	// SystemConfig holds SocialTube's parameters (N_l, N_h, TTL, M).
	SystemConfig = core.Config
	// MaintenanceModel is the closed-form Fig. 15 overhead model.
	MaintenanceModel = core.MaintenanceModel

	// NetTube is the per-video-overlay baseline.
	NetTube = baseline.NetTube
	// NetTubeConfig holds NetTube's parameters.
	NetTubeConfig = baseline.NetTubeConfig
	// PAVoD is the peer-assisted, cache-less baseline.
	PAVoD = baseline.PAVoD
	// PAVoDConfig holds PA-VoD's parameters.
	PAVoDConfig = baseline.PAVoDConfig
)

// Request sources.
const (
	// SourceCache means the node already held the video locally.
	SourceCache = vod.SourceCache
	// SourcePeer means another peer supplied the video.
	SourcePeer = vod.SourcePeer
	// SourceServer means the central server supplied the video.
	SourceServer = vod.SourceServer
)

// DefaultSystemConfig returns the paper's Table I protocol parameters
// (N_l=5, N_h=10, TTL=2, M=3).
func DefaultSystemConfig() SystemConfig { return core.DefaultConfig() }

// NewSystem builds a SocialTube system over the trace.
func NewSystem(cfg SystemConfig, tr *Trace) (*System, error) { return core.New(cfg, tr) }

// DefaultNetTubeConfig returns NetTube's comparison parameters.
func DefaultNetTubeConfig() NetTubeConfig { return baseline.DefaultNetTubeConfig() }

// NewNetTube builds a NetTube baseline over the trace.
func NewNetTube(cfg NetTubeConfig, tr *Trace) (*NetTube, error) {
	return baseline.NewNetTube(cfg, tr)
}

// DefaultPAVoDConfig returns PA-VoD's parameters.
func DefaultPAVoDConfig() PAVoDConfig { return baseline.DefaultPAVoDConfig() }

// NewPAVoD builds a PA-VoD baseline over the trace.
func NewPAVoD(cfg PAVoDConfig, tr *Trace) (*PAVoD, error) {
	return baseline.NewPAVoD(cfg, tr)
}

// DefaultBehavior returns the paper's 75/15/10 video-selection split.
func DefaultBehavior() Behavior { return vod.DefaultBehavior() }

// DefaultMaintenanceModel returns Fig. 15's model parameters.
func DefaultMaintenanceModel() MaintenanceModel { return core.DefaultMaintenanceModel() }

// PrefetchAccuracy returns the §IV-B probability that one of the top
// prefetchCount videos of a channelVideos-video channel is watched next.
func PrefetchAccuracy(channelVideos, prefetchCount int) float64 {
	return core.PrefetchAccuracy(channelVideos, prefetchCount)
}

// Simulation layer: the PeerSim-style trace-driven evaluation.
type (
	// ExperimentConfig sets the simulated workload (Table I).
	ExperimentConfig = exp.Config
	// ExperimentResult aggregates one simulated run.
	ExperimentResult = exp.Result
	// NetworkConfig sets the simulated network (bandwidths, latency).
	NetworkConfig = simnet.Config
	// Resilience aggregates a run's degradation-and-recovery metrics.
	Resilience = exp.Resilience
)

// Observability layer: protocol counters and event tracing.
type (
	// Counters is the protocol-wide counter set a run snapshots.
	Counters = obs.Counters
	// Tracer receives protocol events when installed on a run.
	Tracer = obs.Tracer
	// TraceEvent is one emitted protocol event.
	TraceEvent = obs.Event
)

// NopTracer discards every event; install it to measure tracing overhead.
var NopTracer = obs.Nop

// Fault layer: deterministic fault plans shared by sim and emu runs.
type (
	// FaultPlan is a seeded, declarative fault-injection plan.
	FaultPlan = faults.Plan
	// ChurnWave crashes a set of nodes around one instant.
	ChurnWave = faults.ChurnWave
	// LinkBurst degrades link latency/loss for a window.
	LinkBurst = faults.LinkBurst
	// Outage takes the tracker/server down for a window.
	Outage = faults.Outage
	// Brownout scales the server uplink down for a window.
	Brownout = faults.Brownout
	// FaultSchedule is a compiled, replayable fault event sequence.
	FaultSchedule = faults.Schedule
)

// ChurnPlan returns a canonical churn-stress plan scaled by unit.
func ChurnPlan(seed int64, unit time.Duration) *FaultPlan { return faults.ChurnPlan(seed, unit) }

// OutagePlan returns a canonical tracker-outage plan scaled by unit.
func OutagePlan(seed int64, unit time.Duration) *FaultPlan { return faults.OutagePlan(seed, unit) }

// ReplicaOutagePlan darkens one replica of one tracker shard (1-based)
// for two units — the sharded control plane's canonical outage stress.
func ReplicaOutagePlan(seed int64, unit time.Duration, shard, replica int) *FaultPlan {
	return faults.ReplicaOutagePlan(seed, unit, shard, replica)
}

// Scenario bundles a run's cross-cutting concerns: the network model,
// emulated WAN conditions, a fault plan, a tracer and a counter sink.
// Build one implicitly by passing RunOptions to RunExperimentCtx /
// RunClusterCtx, or explicitly with NewScenario.
type Scenario struct {
	network      NetworkConfig
	hasNetwork   bool
	conditions   *Conditions
	faults       *FaultPlan
	tracer       Tracer
	counters     *Counters
	controlPlane *ControlPlaneConfig
}

// RunOption configures one aspect of a Scenario.
type RunOption func(*Scenario)

// NewScenario applies the options to a fresh Scenario.
func NewScenario(opts ...RunOption) *Scenario {
	s := &Scenario{}
	for _, o := range opts {
		if o != nil {
			o(s)
		}
	}
	return s
}

// WithNetwork sets the simulated network model (simulation runs only;
// emulated clusters model the network with Conditions instead).
func WithNetwork(net NetworkConfig) RunOption {
	return func(s *Scenario) { s.network = net; s.hasNetwork = true }
}

// WithConditions sets the emulated WAN conditions (cluster runs only).
func WithConditions(cond *Conditions) RunOption {
	return func(s *Scenario) { s.conditions = cond }
}

// WithFaults attaches a deterministic fault plan to the run.
func WithFaults(plan *FaultPlan) RunOption {
	return func(s *Scenario) { s.faults = plan }
}

// WithTracer streams the run's protocol events to tr. Simulation runs
// install it on protocols that support tracing; emulated clusters emit
// the workload driver's serve/handoff/rescue/join/leave stream.
func WithTracer(tr Tracer) RunOption {
	return func(s *Scenario) { s.tracer = tr }
}

// WithCounters copies the run's final protocol-counter snapshot into dst
// when the run completes successfully.
func WithCounters(dst *Counters) RunOption {
	return func(s *Scenario) { s.counters = dst }
}

// WithControlPlane shards and replicates the cluster's tracker (cluster
// runs only): cp.Shards x cp.Replicas trackers are started, channels map
// to shards by rendezvous hashing, and peers fail over between a shard's
// replicas. Without this option the cluster runs the legacy single
// tracker.
func WithControlPlane(cp ControlPlaneConfig) RunOption {
	return func(s *Scenario) { s.controlPlane = &cp }
}

// DefaultExperimentConfig returns Table I's workload parameters.
func DefaultExperimentConfig() ExperimentConfig { return exp.DefaultConfig() }

// DefaultNetworkConfig returns Table I's network parameters.
func DefaultNetworkConfig() NetworkConfig { return simnet.DefaultConfig() }

// RunExperiment drives the protocol over the trace with churn and returns
// the paper's three evaluation metrics. It is the legacy positional form
// of RunExperimentCtx (background context, no faults, no tracing).
func RunExperiment(cfg ExperimentConfig, tr *Trace, p Protocol, net NetworkConfig) (*ExperimentResult, error) {
	return RunExperimentCtx(context.Background(), cfg, tr, p, WithNetwork(net))
}

// RunExperimentCtx drives the protocol over the trace under ctx. Options
// attach a fault plan, a tracer, a counter sink and a non-default
// network model; with no options the result is bit-identical to
// RunExperiment's.
func RunExperimentCtx(ctx context.Context, cfg ExperimentConfig, tr *Trace, p Protocol, opts ...RunOption) (*ExperimentResult, error) {
	sc := NewScenario(opts...)
	net := sc.network
	if !sc.hasNetwork {
		net = simnet.DefaultConfig()
	}
	res, err := exp.RunCtx(ctx, cfg, tr, p, net, exp.Options{Faults: sc.faults, Tracer: sc.tracer})
	if err != nil {
		return nil, err
	}
	if sc.counters != nil {
		*sc.counters = res.Obs
	}
	return res, nil
}

// Emulation layer: the PlanetLab-style TCP evaluation.
type (
	// ClusterConfig drives one emulated experiment over loopback TCP.
	ClusterConfig = emu.ClusterConfig
	// ClusterResult aggregates one emulated run.
	ClusterResult = emu.ClusterResult
	// Mode selects which protocol emulated peers speak.
	Mode = emu.Mode
	// Conditions injects WAN latency and loss into loopback TCP.
	Conditions = emu.Conditions
	// Peer is one TCP node (for hand-built topologies).
	Peer = emu.Peer
	// PeerConfig sets one TCP node's parameters.
	PeerConfig = emu.PeerConfig
	// Tracker is the central TCP server (one control-plane replica).
	Tracker = emu.Tracker
	// TrackerConfig sets the central server's parameters.
	TrackerConfig = emu.TrackerConfig
	// ControlPlane is the sharded, replicated tracker plane peers route
	// tracker-path RPCs through.
	ControlPlane = emu.ControlPlane
	// ControlPlaneConfig shapes the plane (shards, replicas per shard,
	// ring seed, gossip cadence).
	ControlPlaneConfig = emu.ControlPlaneConfig
	// ShardHandle addresses one shard's replicas for fault injection.
	ShardHandle = emu.ShardHandle
)

// Emulation protocol modes.
const (
	// ModeSocialTube runs the hierarchical per-community protocol.
	ModeSocialTube = emu.ModeSocialTube
	// ModeNetTube runs per-video overlays.
	ModeNetTube = emu.ModeNetTube
	// ModePAVoD runs server-directed peer assistance.
	ModePAVoD = emu.ModePAVoD
)

// DefaultClusterConfig returns a loopback-scaled PlanetLab workload.
func DefaultClusterConfig(mode Mode) ClusterConfig { return emu.DefaultClusterConfig(mode) }

// DefaultConditions returns WAN-like latency/loss for loopback runs.
func DefaultConditions() *Conditions { return emu.DefaultConditions() }

// DefaultTrackerConfig returns loopback-scaled tracker settings.
func DefaultTrackerConfig() TrackerConfig { return emu.DefaultTrackerConfig() }

// DefaultPeerConfig returns loopback-scaled peer settings.
func DefaultPeerConfig(id int, mode Mode) PeerConfig { return emu.DefaultPeerConfig(id, mode) }

// NewTracker builds a TCP tracker over the trace.
func NewTracker(cfg TrackerConfig, tr *Trace, cond *Conditions) (*Tracker, error) {
	return emu.NewTracker(cfg, tr, cond)
}

// NewPeer builds one TCP peer over the trace against a single tracker
// address. It is the documented single-shard shim over
// NewPeerWithControlPlane (the address becomes a 1x1 SingleTracker
// plane); new code should build a ControlPlane and use the Ctx-era form.
func NewPeer(cfg PeerConfig, tr *Trace, trackerAddr string, cond *Conditions) (*Peer, error) {
	return emu.NewPeer(cfg, tr, trackerAddr, cond)
}

// NewPeerWithControlPlane builds one TCP peer that routes tracker-path
// RPCs through the control plane's shard directory and fails over
// between a shard's replicas.
func NewPeerWithControlPlane(cfg PeerConfig, tr *Trace, cp *ControlPlane, cond *Conditions) (*Peer, error) {
	return emu.NewPeerWithControlPlane(cfg, tr, cp, cond)
}

// DefaultControlPlaneConfig returns the canonical 2x2 sharded plane.
func DefaultControlPlaneConfig() ControlPlaneConfig { return emu.DefaultControlPlaneConfig() }

// StartControlPlane launches a sharded, replicated tracker plane
// in-process; the caller owns Stop.
func StartControlPlane(cfg ControlPlaneConfig, tc TrackerConfig, tr *Trace, cond *Conditions) (*ControlPlane, error) {
	return emu.StartControlPlane(cfg, tc, tr, cond)
}

// NewControlPlaneClient builds a routing-only plane over already-running
// tracker endpoints (replicas[shard][replica] lists their addresses).
func NewControlPlaneClient(ringSeed int64, replicas [][]string) (*ControlPlane, error) {
	return emu.NewControlPlaneClient(ringSeed, replicas)
}

// SingleTracker wraps one tracker address as a 1x1 control plane — the
// legacy single-tracker topology.
func SingleTracker(addr string) *ControlPlane { return emu.SingleTracker(addr) }

// RunCluster starts a tracker plus peers, drives the session workload and
// returns aggregated metrics. It is the legacy positional form of
// RunClusterCtx (background context, no options).
func RunCluster(cfg ClusterConfig, tr *Trace) (*ClusterResult, error) {
	return RunClusterCtx(context.Background(), cfg, tr)
}

// RunClusterCtx runs the emulated cluster under ctx: cancellation stops
// the workload and releases every tracker and peer goroutine before
// returning ctx.Err(). WithConditions, WithFaults, WithTracer and
// WithCounters apply; WithNetwork is simulation-only and is ignored here
// (emulated clusters model the network with Conditions instead).
func RunClusterCtx(ctx context.Context, cfg ClusterConfig, tr *Trace, opts ...RunOption) (*ClusterResult, error) {
	sc := NewScenario(opts...)
	if sc.conditions != nil {
		cfg.Conditions = sc.conditions
	}
	if sc.faults != nil {
		cfg.Faults = sc.faults
	}
	if sc.tracer != nil {
		cfg.Tracer = sc.tracer
	}
	if sc.controlPlane != nil {
		cfg.ControlPlane = sc.controlPlane
	}
	res, err := emu.RunClusterCtx(ctx, cfg, tr)
	if err != nil {
		return nil, err
	}
	if sc.counters != nil {
		*sc.counters = res.Obs
	}
	return res, nil
}
