package socialtube_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding result through internal/figures — the same
// code path the socialtube-bench CLI uses — and reports the headline series
// via b.ReportMetric so `go test -bench=. -benchmem` prints rows comparable
// to the paper. Absolute numbers come from a laptop-scale workload; the
// shapes (who wins, by what factor) are what reproduce the paper. See
// EXPERIMENTS.md for the paper-vs-measured record.

import (
	"sync"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/core"
	"github.com/socialtube/socialtube/internal/figures"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/trace"
)

// benchScale is the workload all simulation benches share.
func benchScale() figures.Scale {
	s := figures.SmallScale()
	s.TraceUsers = 250
	s.TraceChannels = 200
	s.Sessions = 3
	s.VideosPerSession = 8
	return s
}

var (
	benchTraceOnce sync.Once
	benchTraceVal  *trace.Trace
	benchTraceErr  error
)

// benchTrace builds (once) the trace used by the trace-analysis benches.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	benchTraceOnce.Do(func() {
		benchTraceVal, benchTraceErr = benchScale().BuildTrace()
	})
	if benchTraceErr != nil {
		b.Fatal(benchTraceErr)
	}
	return benchTraceVal
}

func benchTable(b *testing.B, build func() *metrics.Table) {
	b.Helper()
	var tb *metrics.Table
	for i := 0; i < b.N; i++ {
		tb = build()
	}
	if tb == nil || len(tb.String()) == 0 {
		b.Fatal("empty table")
	}
}

// --- Section III trace-analysis figures ---

func BenchmarkFig02VideoGrowth(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig02(tr) })
}

func BenchmarkFig03ChannelViewFreq(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig03(tr) })
}

func BenchmarkFig04Subscribers(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig04(tr) })
}

func BenchmarkFig05ViewsVsSubs(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig05(tr) })
	subs, views := tr.ViewsVsSubscriptions()
	b.ReportMetric(trace.Pearson(subs, views), "pearson")
}

func BenchmarkFig06VideosPerChannel(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig06(tr) })
}

func BenchmarkFig07ViewsPerVideo(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig07(tr) })
}

func BenchmarkFig08Favorites(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig08(tr) })
	b.ReportMetric(trace.Pearson(tr.ViewsPerVideo(), tr.FavoritesPerVideo()), "views_favs_pearson")
}

func BenchmarkFig09ZipfWithinChannel(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig09(tr) })
	ch := tr.ChannelPopularityClass(1.0)
	s, r2 := trace.ZipfFit(tr.WithinChannelViews(ch.ID))
	b.ReportMetric(s, "zipf_s")
	b.ReportMetric(r2, "zipf_r2")
}

func BenchmarkFig10ChannelClusters(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig10(tr, 3) })
	b.ReportMetric(tr.IntraCategoryEdgeFraction(3), "intra_category_fraction")
}

func BenchmarkFig11InterestsPerChannel(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig11(tr) })
}

func BenchmarkFig12InterestSimilarity(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig12(tr) })
}

func BenchmarkFig13InterestsPerUser(b *testing.B) {
	tr := benchTrace(b)
	benchTable(b, func() *metrics.Table { return figures.Fig13(tr) })
}

// --- Section IV analytical models ---

func BenchmarkFig15OverheadModel(b *testing.B) {
	benchTable(b, figures.Fig15)
	m := core.DefaultMaintenanceModel()
	b.ReportMetric(m.SocialTube(10), "socialtube_links_m10")
	b.ReportMetric(m.NetTube(10), "nettube_links_m10")
}

func BenchmarkPrefetchAccuracy(b *testing.B) {
	benchTable(b, figures.PrefetchAccuracyTable)
	b.ReportMetric(core.PrefetchAccuracy(25, 1), "top1_accuracy")
	b.ReportMetric(core.PrefetchAccuracy(25, 4), "top4_accuracy")
}

// --- Section V simulation (PeerSim substitute) ---

func BenchmarkTable1Defaults(b *testing.B) {
	tr := benchTrace(b)
	s := benchScale()
	benchTable(b, func() *metrics.Table { return figures.Table1(s, tr) })
}

func BenchmarkFig16aPeerBandwidthSim(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		tb, err := figures.Fig16a(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkFig17aStartupDelaySim(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		tb, err := figures.Fig17a(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkFig18aMaintenanceSim(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		tb, err := figures.Fig18a(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkFigChurnResilienceSim(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		tb, err := figures.FigChurn(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

// --- Section V TCP emulation (PlanetLab substitute) ---

func benchEmuScale() figures.EmuScale {
	return figures.EmuScale{
		Peers:            32,
		Sessions:         2,
		VideosPerSession: 6,
		WatchTime:        10 * time.Millisecond,
		Seed:             1,
	}
}

func BenchmarkFig16bPeerBandwidthEmu(b *testing.B) {
	s := benchEmuScale()
	tr, err := s.EmuTrace()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tb, err := figures.Fig16b(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkFig17bStartupDelayEmu(b *testing.B) {
	s := benchEmuScale()
	tr, err := s.EmuTrace()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tb, err := figures.Fig17b(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkFig18bMaintenanceEmu(b *testing.B) {
	s := benchEmuScale()
	tr, err := s.EmuTrace()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tb, err := figures.Fig18b(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

func BenchmarkFigOutageResilienceEmu(b *testing.B) {
	s := benchEmuScale()
	tr, err := s.EmuTrace()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tb, err := figures.FigOutage(s, tr)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + tb.String())
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationNoInterOverlay disables the higher-level category
// cluster (N_h = 0): the channel-only structure loses the cross-channel
// rescue path.
func BenchmarkAblationNoInterOverlay(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.InterLinks = 0
		runAblation(b, s, tr, cfg, "no_inter_p50")
	}
}

// BenchmarkAblationTTL sweeps the query TTL and reports the search-overhead
// side of the tradeoff (query messages per request).
func BenchmarkAblationTTL(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for _, ttl := range []int{1, 2, 3} {
		ttl := ttl
		b.Run(ttlName(ttl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.TTL = ttl
				res, err := figures.RunSocialTube(s, tr, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, p50, _ := res.NormalizedPeerBandwidthPercentiles()
				b.ReportMetric(p50, "p50_peer_bw")
				if res.Requests > 0 {
					b.ReportMetric(float64(res.Messages.Value())/float64(res.Requests), "msgs_per_request")
				}
			}
		})
	}
}

// BenchmarkAblationLinkBudget sweeps N_l / N_h, the future-work tradeoff
// the paper's conclusion calls out.
func BenchmarkAblationLinkBudget(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	budgets := []struct {
		name   string
		nl, nh int
	}{
		{"Nl2_Nh4", 2, 4},
		{"Nl5_Nh10", 5, 10},
		{"Nl8_Nh16", 8, 16},
	}
	for _, budget := range budgets {
		budget := budget
		b.Run(budget.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.InnerLinks = budget.nl
				cfg.InterLinks = budget.nh
				runAblation(b, s, tr, cfg, "p50_peer_bw")
			}
		})
	}
}

// BenchmarkAblationCachePolicy compares the paper's unbounded session cache
// with LRU-bounded caches.
func BenchmarkAblationCachePolicy(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for _, bound := range []struct {
		name string
		max  int
	}{
		{"Unbounded", 0},
		{"LRU20", 20},
		{"LRU5", 5},
	} {
		bound := bound
		b.Run(bound.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.CacheVideos = bound.max
				runAblation(b, s, tr, cfg, "p50_peer_bw")
			}
		})
	}
}

// BenchmarkAblationPrefetch sweeps the prefetch count M and reports the
// resulting mean startup delay.
func BenchmarkAblationPrefetch(b *testing.B) {
	s := benchScale()
	tr := benchTrace(b)
	for _, m := range []int{0, 1, 3, 5} {
		m := m
		b.Run("M"+string(rune('0'+m)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.PrefetchCount = m
				res, err := figures.RunSocialTube(s, tr, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.StartupDelay.Mean(), "mean_startup_ms")
			}
		})
	}
}

func ttlName(ttl int) string {
	return "TTL" + string(rune('0'+ttl))
}

func runAblation(b *testing.B, s figures.Scale, tr *trace.Trace, cfg core.Config, metric string) {
	b.Helper()
	res, err := figures.RunSocialTube(s, tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	_, p50, _ := res.NormalizedPeerBandwidthPercentiles()
	b.ReportMetric(p50, metric)
}
