package socialtube_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	socialtube "github.com/socialtube/socialtube"
)

func quickExperimentConfig() socialtube.ExperimentConfig {
	cfg := socialtube.DefaultExperimentConfig()
	cfg.Sessions = 2
	cfg.VideosPerSession = 5
	cfg.WatchScale = 0.05
	cfg.MeanOffTime = 60 * time.Second
	cfg.Horizon = 6 * time.Hour
	return cfg
}

// TestScenarioMatchesLegacyRun pins the migration contract from the
// package doc: RunExperimentCtx with no options is bit-identical to the
// legacy RunExperiment.
func TestScenarioMatchesLegacyRun(t *testing.T) {
	tr := smallTrace(t)
	sys, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := socialtube.RunExperiment(quickExperimentConfig(), tr, sys, socialtube.DefaultNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := socialtube.RunExperimentCtx(context.Background(), quickExperimentConfig(), tr, sys2)
	if err != nil {
		t.Fatal(err)
	}
	jl, _ := json.Marshal(legacy)
	jc, _ := json.Marshal(ctxed)
	if string(jl) != string(jc) {
		t.Fatal("RunExperimentCtx without options diverged from RunExperiment")
	}
}

// TestScenarioOptionsCompose runs one simulation with faults, a tracer
// and a counter sink attached at once.
func TestScenarioOptionsCompose(t *testing.T) {
	tr := smallTrace(t)
	sys, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	var ctr socialtube.Counters
	tracer := &collectingTracer{}
	res, err := socialtube.RunExperimentCtx(context.Background(), quickExperimentConfig(), tr, sys,
		socialtube.WithNetwork(socialtube.DefaultNetworkConfig()),
		socialtube.WithFaults(socialtube.ChurnPlan(1, 4*time.Minute)),
		socialtube.WithTracer(tracer),
		socialtube.WithCounters(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience.Crashes == 0 {
		t.Fatal("fault plan applied no crashes through the Scenario API")
	}
	if ctr != res.Obs {
		t.Fatal("WithCounters sink differs from the result snapshot")
	}
	if ctr.RepairCalls == 0 {
		t.Fatal("churned SocialTube run recorded no repair calls")
	}
	if tracer.count() == 0 {
		t.Fatal("WithTracer received no events")
	}
}

func TestScenarioContextCancellation(t *testing.T) {
	tr := smallTrace(t)
	sys, err := socialtube.NewSystem(socialtube.DefaultSystemConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := socialtube.RunExperimentCtx(ctx, quickExperimentConfig(), tr, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("sim: want context.Canceled, got %v", err)
	}
	cfg := socialtube.DefaultClusterConfig(socialtube.ModeSocialTube)
	cfg.Peers = 4
	if _, err := socialtube.RunClusterCtx(ctx, cfg, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("emu: want context.Canceled, got %v", err)
	}
}

// TestScenarioClusterFaults drives the emulated cluster through the
// Scenario API with an outage plan and a counter sink.
func TestScenarioClusterFaults(t *testing.T) {
	tr := smallTrace(t)
	cfg := socialtube.DefaultClusterConfig(socialtube.ModeSocialTube)
	cfg.Peers = 6
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.WatchTime = 5 * time.Millisecond
	cfg.RPCTimeout = 30 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.RetryBackoff = 2 * time.Millisecond
	var ctr socialtube.Counters
	res, err := socialtube.RunClusterCtx(context.Background(), cfg, tr,
		socialtube.WithFaults(&socialtube.FaultPlan{
			Seed:    5,
			Outages: []socialtube.Outage{{At: 0, Duration: 150 * time.Millisecond}},
		}),
		socialtube.WithCounters(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	if res.OutageRequests == 0 {
		t.Fatal("no requests overlapped the outage")
	}
	want := int64(cfg.Peers * cfg.Sessions * cfg.VideosPerSession)
	if got := res.CacheHits + res.PeerHits + res.ServerHits; got != want {
		t.Fatalf("requests lost during outage: %d of %d", got, want)
	}
	if ctr != res.Obs {
		t.Fatal("WithCounters sink differs from the cluster snapshot")
	}
}

// collectingTracer counts events; it lives behind a mutex because sim
// runs emit from a single goroutine but the contract doesn't promise it.
type collectingTracer struct {
	mu sync.Mutex
	n  int
}

func (c *collectingTracer) Emit(socialtube.TraceEvent) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *collectingTracer) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
