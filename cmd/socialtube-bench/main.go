// Command socialtube-bench regenerates every table and figure of the
// paper's evaluation in one run: the Section III trace analysis (Figs.
// 2–13), the analytical models (Fig. 15, §IV-B), the simulation evaluation
// (Figs. 16a/17a/18a, Table I, churn resilience), the open-loop load
// sweep (offered RPS vs startup delay and shed rate, BENCH_load.json)
// and the TCP emulation (Figs. 16b/17b/18b, tracker-outage resilience).
//
// Usage:
//
//	socialtube-bench                 # small scale, seconds
//	socialtube-bench -scale paper    # Table I scale, minutes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/socialtube/socialtube/internal/figures"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "socialtube-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("socialtube-bench", flag.ContinueOnError)
	var (
		scale     = fs.String("scale", "small", "workload scale: small or paper")
		seed      = fs.Int64("seed", 1, "experiment seed")
		skipEmu   = fs.Bool("skip-emu", false, "skip the TCP emulation figures")
		skipScale = fs.Bool("skip-scale", false, "skip the small-N scalability sweep")
		skipLoad  = fs.Bool("skip-load", false, "skip the open-loop load sweep")
		shards    = fs.Int("shards", 0, "run the scalability sweep on the community-sharded engine with this many workers (0 = classic single-loop engine)")
		benchOut  = fs.String("bench-out", "BENCH_scale.json", "append scale-sweep points to this JSONL file (empty disables)")
		failOut   = fs.String("failover-out", "BENCH_failover.json", "append failover points to this JSONL file (empty disables)")
		tlOut     = fs.String("timeline-out", "BENCH_timeline.json", "append telemetry-timeline points to this JSONL file (empty disables)")
		loadOut   = fs.String("load-out", "BENCH_load.json", "append open-loop load points to this JSONL file (empty disables)")
		traceOut  = fs.String("trace-out", "", "write simulation protocol events as JSON Lines to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be ≥ 0, got %d", *shards)
	}
	var s figures.Scale
	switch *scale {
	case "small":
		s = figures.SmallScale()
	case "paper":
		s = figures.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	s.Seed = *seed
	if *traceOut != "" {
		j, err := obs.OpenJSONL(*traceOut)
		if err != nil {
			return err
		}
		s.Tracer = j
		defer func() {
			cerr := j.Close()
			if retErr == nil {
				retErr = cerr
			}
			if retErr == nil {
				fmt.Printf("trace: %d events -> %s\n", j.Total(), *traceOut)
			}
		}()
	}

	begin := time.Now()
	tr, err := s.BuildTrace()
	if err != nil {
		return err
	}
	fmt.Printf("== SocialTube full evaluation (scale %s, seed %d) ==\n", *scale, *seed)
	fmt.Printf("trace: %d channels, %d videos, %d users\n\n", len(tr.Channels), len(tr.Videos), len(tr.Users))

	fmt.Println("---- Section III: trace analysis ----")
	for _, tb := range []*metrics.Table{
		figures.Fig02(tr), figures.Fig03(tr), figures.Fig04(tr), figures.Fig05(tr),
		figures.Fig06(tr), figures.Fig07(tr), figures.Fig08(tr), figures.Fig09(tr),
		figures.Fig10(tr, 3), figures.Fig11(tr), figures.Fig12(tr), figures.Fig13(tr),
	} {
		fmt.Println(tb)
	}

	fmt.Println("---- Section IV: analytical models ----")
	fmt.Println(figures.Fig15())
	fmt.Println(figures.PrefetchAccuracyTable())

	fmt.Println("---- Section V: trace-driven simulation ----")
	fmt.Println(figures.Table1(s, tr))
	t16, err := figures.Fig16a(s, tr)
	if err != nil {
		return err
	}
	fmt.Println(t16)
	t17, err := figures.Fig17a(s, tr)
	if err != nil {
		return err
	}
	fmt.Println(t17)
	t18, err := figures.Fig18a(s, tr)
	if err != nil {
		return err
	}
	fmt.Println(t18)
	tc, err := figures.FigChurn(s, tr)
	if err != nil {
		return err
	}
	fmt.Println(tc)
	tt, err := figures.RunTimeline(s, tr)
	if err != nil {
		return err
	}
	fmt.Println(tt)
	if *tlOut != "" {
		if err := figures.AppendTimelinePoints(*tlOut, tt.Points); err != nil {
			return err
		}
		fmt.Printf("appended %d timeline points to %s\n\n", len(tt.Points), *tlOut)
	}

	if !*skipLoad {
		// The smoke columns: the full arc is socialtube-sim -fig load.
		fmt.Println("---- Section V: open-loop load sweep (smoke columns) ----")
		lw := figures.SmokeLoadSweep()
		lw.Seed = *seed
		lw.Shards = *shards
		fl, err := figures.RunLoad(lw)
		if err != nil {
			return err
		}
		fmt.Println(fl)
		if *loadOut != "" {
			if err := figures.AppendLoadPoints(*loadOut, fl.Points); err != nil {
				return err
			}
			fmt.Printf("appended %d load points to %s\n\n", len(fl.Points), *loadOut)
		}
	}

	if !*skipScale {
		// Always the smoke sizes: the full 10k..1M sweep is
		// socialtube-sim -fig scale -scale paper territory.
		fmt.Println("---- Section V: scalability sweep (smoke sizes) ----")
		sw := figures.SmokeScaleSweep()
		sw.Seed = *seed
		sw.Shards = *shards
		fsc, err := figures.RunScaleSweep(sw)
		if err != nil {
			return err
		}
		fmt.Println(fsc)
		if *benchOut != "" {
			if err := figures.AppendScalePoints(*benchOut, fsc.Points); err != nil {
				return err
			}
			fmt.Printf("appended %d scale points to %s\n\n", len(fsc.Points), *benchOut)
		}
	}

	if !*skipEmu {
		fmt.Println("---- Section V: TCP emulation (PlanetLab substitute) ----")
		es := figures.SmallEmuScale()
		es.Seed = *seed
		etr, err := es.EmuTrace()
		if err != nil {
			return err
		}
		e16, err := figures.Fig16b(es, etr)
		if err != nil {
			return err
		}
		fmt.Println(e16)
		e17, err := figures.Fig17b(es, etr)
		if err != nil {
			return err
		}
		fmt.Println(e17)
		e18, err := figures.Fig18b(es, etr)
		if err != nil {
			return err
		}
		fmt.Println(e18)
		eo, err := figures.FigOutage(es, etr)
		if err != nil {
			return err
		}
		fmt.Println(eo)
		eso, err := figures.FigShardedOutage(es, etr)
		if err != nil {
			return err
		}
		fmt.Println(eso)
		if *failOut != "" {
			if err := figures.AppendShardedOutagePoints(*failOut, eso.Points); err != nil {
				return err
			}
			fmt.Printf("appended %d sharded-outage points to %s\n\n", len(eso.Points), *failOut)
		}
		eto, err := figures.FigTakeover(es, etr)
		if err != nil {
			return err
		}
		fmt.Println(eto)
		if *failOut != "" {
			if err := figures.AppendTakeoverPoints(*failOut, eto.Points); err != nil {
				return err
			}
			fmt.Printf("appended %d takeover points to %s\n\n", len(eto.Points), *failOut)
		}
		ef, err := figures.FigFailover(es, etr)
		if err != nil {
			return err
		}
		fmt.Println(ef)
		if *failOut != "" {
			if err := figures.AppendFailoverPoints(*failOut, ef.Points); err != nil {
				return err
			}
			fmt.Printf("appended %d failover points to %s\n\n", len(ef.Points), *failOut)
		}
	}
	fmt.Printf("total wall time: %v\n", time.Since(begin).Round(time.Millisecond))
	return nil
}
