package main

import (
	"path/filepath"
	"testing"
)

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunSmallSkipEmu(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale evaluation")
	}
	// Redirect the bench logs so the test never writes BENCH_*.json
	// into the working tree.
	dir := t.TempDir()
	if err := run([]string{"-skip-emu",
		"-bench-out", filepath.Join(dir, "BENCH_scale.json"),
		"-timeline-out", filepath.Join(dir, "BENCH_timeline.json"),
		"-load-out", filepath.Join(dir, "BENCH_load.json"),
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
