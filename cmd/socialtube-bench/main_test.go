package main

import (
	"path/filepath"
	"testing"
)

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunSmallSkipEmu(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale evaluation")
	}
	// Redirect the scale-sweep bench log so the test never writes
	// BENCH_scale.json into the working tree.
	out := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := run([]string{"-skip-emu", "-bench-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
