package main

import (
	"testing"
)

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunSmallSkipEmu(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale evaluation")
	}
	if err := run([]string{"-skip-emu"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
