package main

import (
	"testing"
	"time"
)

func TestRunEmuFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster run")
	}
	args := []string{
		"-fig", "16b", "-peers", "8", "-sessions", "1", "-videos", "3",
		"-watch", (5 * time.Millisecond).String(),
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "nope", "-peers", "4"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunBadPeerCount(t *testing.T) {
	if err := run([]string{"-fig", "16b", "-peers", "0"}); err == nil {
		t.Fatal("expected error for zero peers")
	}
}
