package main

import (
	"testing"
	"time"
)

func TestRunEmuFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster run")
	}
	args := []string{
		"-fig", "16b", "-peers", "8", "-sessions", "1", "-videos", "3",
		"-watch", (5 * time.Millisecond).String(),
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "nope", "-peers", "4"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

// TestRunRejectsBadCounts pins the fail-fast flag validation: nonpositive
// workload counts error out before any TCP cluster is spun up.
func TestRunRejectsBadCounts(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"zero peers", []string{"-fig", "16b", "-peers", "0"}},
		{"negative peers", []string{"-fig", "16b", "-peers", "-8"}},
		{"zero sessions", []string{"-fig", "16b", "-sessions", "0"}},
		{"negative videos", []string{"-fig", "16b", "-videos", "-1"}},
		{"zero watch", []string{"-fig", "16b", "-watch", "0s"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
		})
	}
}
