// Command socialtube-emu runs the real-network TCP emulation (the PlanetLab
// experiments): Figs. 16(b), 17(b), 18(b) and the tracker-outage
// resilience comparison. Every peer is a real TCP node on loopback with
// injected WAN latency and loss.
//
// Usage:
//
//	socialtube-emu -fig 16b -peers 40
//	socialtube-emu -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/socialtube/socialtube/internal/figures"
	"github.com/socialtube/socialtube/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "socialtube-emu:", err)
		os.Exit(1)
	}
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("socialtube-emu", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure to regenerate: 16b, 17b, 18b, outage, outage-shard, takeover, failover or all")
		benchOut = fs.String("bench-out", "", "append failover points to this JSONL file (empty disables)")
		peers    = fs.Int("peers", 24, "number of TCP peers")
		sessions = fs.Int("sessions", 2, "sessions per peer")
		videos   = fs.Int("videos", 6, "videos per session")
		watch    = fs.Duration("watch", 25*time.Millisecond, "emulated playback per video")
		seed     = fs.Int64("seed", 1, "experiment seed")
		metrics  = fs.String("metrics", "", "serve live cluster metrics on this address while each run is in flight (e.g. 127.0.0.1:8080; append ?format=prom for Prometheus exposition)")
		pprof    = fs.Bool("pprof", false, "with -metrics, also mount net/http/pprof on the metrics listener")
		traceOut = fs.String("trace-out", "", "write every emulated run's events as JSON Lines to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast on nonsensical counts before any cluster is spun up.
	switch {
	case *peers <= 0:
		return fmt.Errorf("-peers must be > 0, got %d", *peers)
	case *sessions <= 0:
		return fmt.Errorf("-sessions must be > 0, got %d", *sessions)
	case *videos <= 0:
		return fmt.Errorf("-videos must be > 0, got %d", *videos)
	case *watch <= 0:
		return fmt.Errorf("-watch must be > 0, got %v", *watch)
	}
	s := figures.EmuScale{
		Peers:            *peers,
		Sessions:         *sessions,
		VideosPerSession: *videos,
		WatchTime:        *watch,
		Seed:             *seed,
		MetricsAddr:      *metrics,
		Pprof:            *pprof,
	}
	if *traceOut != "" {
		j, err := obs.OpenJSONL(*traceOut)
		if err != nil {
			return err
		}
		s.Tracer = j
		defer func() {
			cerr := j.Close()
			if retErr == nil {
				retErr = cerr
			}
			if retErr == nil {
				fmt.Printf("\ntrace: %d events -> %s\n", j.Total(), *traceOut)
			}
		}()
	}
	tr, err := s.EmuTrace()
	if err != nil {
		return err
	}
	fmt.Printf("emulation: %d TCP peers, %d sessions x %d videos over %d channels\n\n",
		s.Peers, s.Sessions, s.VideosPerSession, len(tr.Channels))

	show := func(id string) error {
		switch id {
		case "16b":
			t, err := figures.Fig16b(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "17b":
			t, err := figures.Fig17b(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "18b":
			t, err := figures.Fig18b(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "outage":
			t, err := figures.FigOutage(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "outage-shard":
			f, err := figures.FigShardedOutage(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(f)
			if *benchOut != "" {
				if err := figures.AppendShardedOutagePoints(*benchOut, f.Points); err != nil {
					return err
				}
				fmt.Printf("appended %d sharded-outage points to %s\n\n", len(f.Points), *benchOut)
			}
		case "takeover":
			f, err := figures.FigTakeover(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(f)
			if *benchOut != "" {
				if err := figures.AppendTakeoverPoints(*benchOut, f.Points); err != nil {
					return err
				}
				fmt.Printf("appended %d takeover points to %s\n\n", len(f.Points), *benchOut)
			}
		case "failover":
			f, err := figures.FigFailover(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(f)
			if *benchOut != "" {
				if err := figures.AppendFailoverPoints(*benchOut, f.Points); err != nil {
					return err
				}
				fmt.Printf("appended %d failover points to %s\n\n", len(f.Points), *benchOut)
			}
		default:
			return fmt.Errorf("unknown figure %q (want 16b, 17b, 18b, outage, outage-shard, takeover, failover or all)", id)
		}
		return nil
	}
	if *fig == "all" {
		for _, id := range []string{"16b", "17b", "18b", "outage", "outage-shard", "takeover", "failover"} {
			if err := show(id); err != nil {
				return err
			}
		}
		return nil
	}
	return show(*fig)
}
