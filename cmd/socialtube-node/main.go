// Command socialtube-node runs one real SocialTube network element — the
// tracker (central server) or a peer — so a cluster can be spread across
// real machines, PlanetLab-style. All elements must share the same trace
// file (generate one with `socialtube-trace -save trace.json`).
//
// Usage:
//
//	socialtube-node -role tracker -trace trace.json -addr :7070
//	socialtube-node -role peer -trace trace.json -tracker host:7070 \
//	    -id 7 -sessions 3 -videos 10
//
// A sharded, replicated control plane is a -tracker spec listing every
// tracker endpoint, shards separated by ';' and a shard's replicas by ','
// (all elements must agree on -ring-seed):
//
//	socialtube-node -role peer -trace trace.json -ring-seed 1 \
//	    -tracker 'hostA:7070,hostB:7070;hostC:7070,hostD:7070'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/emu"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

func main() {
	if err := run(os.Args[1:], make(chan struct{})); err != nil {
		fmt.Fprintln(os.Stderr, "socialtube-node:", err)
		os.Exit(1)
	}
}

// run executes the node until its work completes or stop closes (stop only
// applies to the tracker role, which otherwise serves forever).
func run(args []string, stop chan struct{}) error {
	fs := flag.NewFlagSet("socialtube-node", flag.ContinueOnError)
	var (
		role        = fs.String("role", "", "tracker or peer")
		tracePath   = fs.String("trace", "", "path to the shared trace JSON (see socialtube-trace -save)")
		addr        = fs.String("addr", "127.0.0.1:0", "listen address")
		trackerAddr = fs.String("tracker", "", "tracker endpoints (peer role): shards separated by ';', a shard's replicas by ',' (one address = legacy single tracker)")
		ringSeed    = fs.Int64("ring-seed", 0, "channel->shard ring seed; must match on every peer of a sharded plane (peer role)")
		id          = fs.Int("id", 0, "peer id — the user id this peer plays (peer role)")
		mode        = fs.String("mode", "socialtube", "protocol: socialtube, nettube or pavod")
		sessions    = fs.Int("sessions", 1, "sessions to run before exiting (peer role)")
		videos      = fs.Int("videos", 10, "videos per session (peer role)")
		watch       = fs.Duration("watch", 500*time.Millisecond, "emulated playback per video (peer role)")
		seed        = fs.Int64("seed", 1, "workload seed (peer role)")
		metrics     = fs.String("metrics", "", "serve live node metrics on this address (e.g. 127.0.0.1:8080)")
		pprof       = fs.Bool("pprof", false, "with -metrics, also mount net/http/pprof on the metrics listener")
		replicas    = fs.String("replicas", "", "comma-separated addresses of every replica of this tracker's shard, in shard order, this one included (tracker role; empty = unreplicated)")
		replicaSelf = fs.Int("replica-self", 0, "this tracker's index within -replicas (tracker role)")
		shard       = fs.Int("shard", 0, "this tracker's shard index, for the gossip seed (tracker role)")
		gossipEvery = fs.Duration("gossip-interval", 200*time.Millisecond, "anti-entropy period between shard replicas (tracker role, with -replicas)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast on nonsensical counts before the trace is loaded.
	switch {
	case *sessions <= 0:
		return fmt.Errorf("-sessions must be > 0, got %d", *sessions)
	case *videos <= 0:
		return fmt.Errorf("-videos must be > 0, got %d", *videos)
	case *watch <= 0:
		return fmt.Errorf("-watch must be > 0, got %v", *watch)
	case *id < 0:
		return fmt.Errorf("-id must be ≥ 0, got %d", *id)
	case *shard < 0:
		return fmt.Errorf("-shard must be ≥ 0, got %d", *shard)
	case *replicaSelf < 0:
		return fmt.Errorf("-replica-self must be ≥ 0, got %d", *replicaSelf)
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.Load(f)
	f.Close()
	if err != nil {
		return err
	}

	switch *role {
	case "tracker":
		return runTracker(tr, *addr, *metrics, *pprof, *replicas, *replicaSelf, *shard, *ringSeed, *gossipEvery, stop)
	case "peer":
		return runPeer(tr, *addr, *trackerAddr, *ringSeed, *id, *mode, *sessions, *videos, *watch, *seed, *metrics, *pprof)
	default:
		return fmt.Errorf("unknown role %q (want tracker or peer)", *role)
	}
}

func runTracker(tr *trace.Trace, addr, metricsAddr string, pprof bool, replicaSpec string, replicaSelf, shard int, ringSeed int64, gossipEvery time.Duration, stop chan struct{}) error {
	cfg := emu.DefaultTrackerConfig()
	cfg.Addr = addr
	tk, err := emu.NewTracker(cfg, tr, emu.DefaultConditions())
	if err != nil {
		return err
	}
	if err := tk.Start(); err != nil {
		return err
	}
	defer tk.Stop()
	if replicaSpec != "" {
		var reps []string
		for _, a := range strings.Split(replicaSpec, ",") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
		if replicaSelf < 0 || replicaSelf >= len(reps) {
			return fmt.Errorf("-replica-self %d outside -replicas (%d entries)", replicaSelf, len(reps))
		}
		// The node CLI only knows its own shard's replica list, so it runs a
		// single-shard plane view (no cross-shard liveness) with the seed
		// pre-mixed the way StartControlPlane would for this shard index —
		// mixed in-process/cross-machine planes rotate partners alike.
		tk.StartGossip(ringSeed+int64(shard)*7919, [][]string{reps}, 0, replicaSelf, gossipEvery, 0)
		fmt.Printf("gossiping as replica %d of shard %d with %v every %v\n", replicaSelf, shard, reps, gossipEvery)
	}
	if metricsAddr != "" {
		srv, err := tk.ServeMetrics(metricsAddr, pprof)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}
	fmt.Printf("tracker serving %d videos on %s\n", len(tr.Videos), tk.Addr())
	<-stop
	fmt.Printf("tracker served %d bytes\n", tk.ServedBytes())
	return nil
}

func parseMode(mode string) (emu.Mode, error) {
	switch mode {
	case "socialtube":
		return emu.ModeSocialTube, nil
	case "nettube":
		return emu.ModeNetTube, nil
	case "pavod":
		return emu.ModePAVoD, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", mode)
	}
}

// parsePlaneSpec turns a -tracker spec into a routing-only control plane:
// shards are separated by ';', a shard's replicas by ','. A single bare
// address yields the 1x1 legacy plane.
func parsePlaneSpec(spec string, ringSeed int64) (*emu.ControlPlane, error) {
	var replicas [][]string
	for _, shard := range strings.Split(spec, ";") {
		var reps []string
		for _, a := range strings.Split(shard, ",") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
		if len(reps) > 0 {
			replicas = append(replicas, reps)
		}
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("-tracker spec %q names no endpoints", spec)
	}
	return emu.NewControlPlaneClient(ringSeed, replicas)
}

func runPeer(tr *trace.Trace, addr, trackerAddr string, ringSeed int64, id int, modeName string, sessions, videos int, watch time.Duration, seed int64, metricsAddr string, pprof bool) error {
	if trackerAddr == "" {
		return fmt.Errorf("-tracker is required for the peer role")
	}
	if tr.User(trace.UserID(id)) == nil {
		return fmt.Errorf("peer id %d is not a user of the trace (0..%d)", id, len(tr.Users)-1)
	}
	mode, err := parseMode(modeName)
	if err != nil {
		return err
	}
	cp, err := parsePlaneSpec(trackerAddr, ringSeed)
	if err != nil {
		return err
	}
	cfg := emu.DefaultPeerConfig(id, mode)
	cfg.Addr = addr
	p, err := emu.NewPeerWithControlPlane(cfg, tr, cp, emu.DefaultConditions())
	if err != nil {
		return err
	}
	if err := p.Start(); err != nil {
		return err
	}
	defer p.Stop()
	if metricsAddr != "" {
		srv, err := obs.ServeMetrics(metricsAddr, func() any {
			return struct {
				Peer        int    `json:"peer"`
				Mode        string `json:"mode"`
				Links       int    `json:"links"`
				CachedVideo int    `json:"cachedVideos"`
				ServedBytes int64  `json:"servedBytes"`
			}{id, mode.String(), p.Links(), p.CacheLen(), p.ServedBytes()}
		}, nil, pprof)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	}
	fmt.Printf("peer %d (%s) on %s, tracker %s\n", id, mode, p.Addr(), trackerAddr)

	picker, err := vod.NewPicker(tr, vod.DefaultBehavior())
	if err != nil {
		return err
	}
	g := dist.NewRNG(seed + int64(id))
	user := &tr.Users[id]
	for s := 0; s < sessions; s++ {
		p.SetOnline(true)
		plan := picker.PlanSession(g, user, videos, watch)
		for _, v := range plan.Videos {
			rec := p.RequestVideo(v)
			fmt.Printf("session %d: video %d from %s in %v (links %d, msgs %d)\n",
				s+1, v, rec.Source, rec.Startup.Round(time.Millisecond), rec.Links, rec.Messages)
			time.Sleep(watch)
			p.FinishVideo(v)
		}
		p.SetOnline(false)
		p.LeaveOverlays()
	}
	fmt.Printf("peer %d done: cached %d videos, uploaded %d bytes\n", id, p.CacheLen(), p.ServedBytes())
	return nil
}
