package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/trace"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 81
	cfg.Channels = 20
	cfg.Users = 16
	cfg.Categories = 5
	cfg.MaxInterestsPerUser = 5
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresFlags(t *testing.T) {
	stop := make(chan struct{})
	if err := run([]string{}, stop); err == nil {
		t.Fatal("missing -trace accepted")
	}
	path := writeTrace(t)
	if err := run([]string{"-trace", path}, stop); err == nil {
		t.Fatal("missing role accepted")
	}
	if err := run([]string{"-trace", path, "-role", "peer"}, stop); err == nil {
		t.Fatal("peer without tracker accepted")
	}
	if err := run([]string{"-trace", path, "-role", "peer", "-tracker", "127.0.0.1:1", "-mode", "bogus"}, stop); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := run([]string{"-trace", path, "-role", "peer", "-tracker", "127.0.0.1:1", "-id", "999"}, stop); err == nil {
		t.Fatal("out-of-trace peer id accepted")
	}
	if err := run([]string{"-trace", "/nonexistent.json", "-role", "tracker"}, stop); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

// TestRunRejectsBadCounts pins the fail-fast flag validation: nonpositive
// workload counts error out before the trace is even loaded (no trace
// file is given, yet the count error must win).
func TestRunRejectsBadCounts(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"zero sessions", []string{"-role", "peer", "-sessions", "0"}},
		{"negative sessions", []string{"-role", "peer", "-sessions", "-2"}},
		{"zero videos", []string{"-role", "peer", "-videos", "0"}},
		{"zero watch", []string{"-role", "peer", "-watch", "0s"}},
		{"negative id", []string{"-role", "peer", "-id", "-1"}},
		{"negative shard", []string{"-role", "tracker", "-shard", "-1"}},
		{"negative replica-self", []string{"-role", "tracker", "-replica-self", "-1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, make(chan struct{})); err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
		})
	}
}

// TestTrackerAndPeerEndToEnd runs the daemon both ways: a tracker goroutine
// plus a peer process loop against it.
func TestTrackerAndPeerEndToEnd(t *testing.T) {
	path := writeTrace(t)
	// Reserve a port for the tracker deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	stop := make(chan struct{})
	trackerDone := make(chan error, 1)
	go func() {
		trackerDone <- run([]string{"-role", "tracker", "-trace", path, "-addr", addr}, stop)
	}()
	// Wait for the tracker to accept connections.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	err = run([]string{
		"-role", "peer", "-trace", path, "-tracker", addr,
		"-id", "1", "-sessions", "1", "-videos", "2", "-watch", "5ms",
	}, make(chan struct{}))
	if err != nil {
		t.Fatalf("peer run: %v", err)
	}
	close(stop)
	if err := <-trackerDone; err != nil {
		t.Fatalf("tracker run: %v", err)
	}
}
