package main

import (
	"testing"
)

func TestRunAnalyticalFigures(t *testing.T) {
	if err := run([]string{"-fig", "15"}); err != nil {
		t.Fatalf("fig 15: %v", err)
	}
	if err := run([]string{"-fig", "table1"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

// TestRunRejectsBadCounts pins the fail-fast flag validation: negative
// counts and misplaced flags error out before any trace is built.
func TestRunRejectsBadCounts(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"negative shards", []string{"-fig", "scale", "-shards", "-1"}},
		{"negative users", []string{"-fig", "scale", "-users", "-4"}},
		{"shards outside scale/load", []string{"-fig", "16a", "-shards", "2"}},
		{"users outside scale/load", []string{"-fig", "16a", "-users", "100"}},
		{"load flags outside fig load", []string{"-fig", "16a", "-load-rps", "3,18"}},
		{"bad load rps", []string{"-fig", "load", "-load-rps", "3,banana"}},
		{"bad load mode", []string{"-fig", "load", "-load-mode", "lunar"}},
		{"bad load scale", []string{"-fig", "load", "-scale", "10m"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
		})
	}
}

func TestRunLoadFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale load sweep")
	}
	if err := run([]string{"-fig", "load", "-bench-out", "none",
		"-load-rps", "3,18", "-load-dur", "30s", "-load-flash", "0"}); err != nil {
		t.Fatalf("fig load: %v", err)
	}
}

func TestRunSimFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale simulation")
	}
	if err := run([]string{"-fig", "18a"}); err != nil {
		t.Fatalf("fig 18a: %v", err)
	}
}

func TestRunJSONDump(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale simulation")
	}
	if err := run([]string{"-json"}); err != nil {
		t.Fatalf("json dump: %v", err)
	}
}
