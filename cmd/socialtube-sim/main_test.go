package main

import (
	"testing"
)

func TestRunAnalyticalFigures(t *testing.T) {
	if err := run([]string{"-fig", "15"}); err != nil {
		t.Fatalf("fig 15: %v", err)
	}
	if err := run([]string{"-fig", "table1"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunSimFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale simulation")
	}
	if err := run([]string{"-fig", "18a"}); err != nil {
		t.Fatalf("fig 18a: %v", err)
	}
}

func TestRunJSONDump(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale simulation")
	}
	if err := run([]string{"-json"}); err != nil {
		t.Fatalf("json dump: %v", err)
	}
}
