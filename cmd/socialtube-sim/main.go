// Command socialtube-sim runs the trace-driven simulation evaluation (the
// PeerSim experiments): Figs. 16(a), 17(a), 18(a), Table I and the
// churn-resilience comparison.
//
// Usage:
//
//	socialtube-sim -fig 16a
//	socialtube-sim -fig all -scale paper
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/socialtube/socialtube/internal/figures"
	"github.com/socialtube/socialtube/internal/load"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
)

// runScaleSweep runs the scalability sweep (-fig scale): the smoke sizes
// at -scale small, 10k..1M users at -scale paper, the single 10M-user
// point at -scale 10m. Per-point results are appended to the JSONL bench
// log when benchOut is non-empty. shards > 0 routes every point through
// the community-sharded engine with that many workers; users > 0 replaces
// the preset populations with that single size (the shard-count
// comparison runs the 1M point alone this way).
func runScaleSweep(scaleName string, seed int64, benchOut string, shards, users int) error {
	var sw figures.ScaleSweep
	switch scaleName {
	case "small":
		sw = figures.SmokeScaleSweep()
	case "paper":
		sw = figures.DefaultScaleSweep()
	case "10m":
		sw = figures.TenMScaleSweep()
	default:
		return fmt.Errorf("unknown scale %q (want small, paper or 10m)", scaleName)
	}
	sw.Seed = seed
	sw.Shards = shards
	if users > 0 {
		sw.Sizes = []int{users}
	}
	sw.Progress = func(msg string) { fmt.Println("# " + msg) }
	f, err := figures.RunScaleSweep(sw)
	if err != nil {
		return err
	}
	fmt.Println(f)
	if benchOut != "" {
		if err := figures.AppendScalePoints(benchOut, f.Points); err != nil {
			return err
		}
		fmt.Printf("appended %d points to %s\n", len(f.Points), benchOut)
	}
	return nil
}

// loadFlags carries the -fig load knobs from the flag set to the sweep.
type loadFlags struct {
	mode  string
	rps   string
	dur   time.Duration
	cap   int
	flash int
}

// runLoadSweep runs the open-loop load figure (-fig load): offered-RPS
// columns for the three protocols against the bounded-queue server, with
// per-cell points appended to the JSONL bench log. shards > 0 routes
// every cell through the community-sharded engine; users > 0 overrides
// the preset population.
func runLoadSweep(scaleName string, seed int64, benchOut string, shards, users int, lf loadFlags) error {
	var sw figures.LoadSweep
	switch scaleName {
	case "small":
		sw = figures.DefaultLoadSweep()
	case "paper":
		sw = figures.PaperLoadSweep()
	default:
		return fmt.Errorf("unknown scale %q (-fig load wants small or paper)", scaleName)
	}
	sw.Seed = seed
	sw.Shards = shards
	if users > 0 {
		sw.Users = users
	}
	if lf.mode != "" {
		sw.Mode = load.Mode(lf.mode)
	}
	if lf.rps != "" {
		sw.RPS = sw.RPS[:0]
		for _, col := range strings.Split(lf.rps, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(col), 64)
			if err != nil {
				return fmt.Errorf("-load-rps %q: %w", lf.rps, err)
			}
			sw.RPS = append(sw.RPS, v)
		}
	}
	if lf.dur > 0 {
		sw.Duration = lf.dur
	}
	if lf.cap >= 0 {
		sw.QueueCap = lf.cap
	}
	if lf.flash >= 0 {
		sw.Flash = &load.FlashCrowd{Channel: lf.flash, At: sw.Duration / 4, For: sw.Duration / 4}
	}
	sw.Progress = func(msg string) { fmt.Println("# " + msg) }
	f, err := figures.RunLoad(sw)
	if err != nil {
		return err
	}
	fmt.Println(f)
	if benchOut != "" {
		if err := figures.AppendLoadPoints(benchOut, f.Points); err != nil {
			return err
		}
		fmt.Printf("appended %d points to %s\n", len(f.Points), benchOut)
	}
	return nil
}

// dumpJSON runs the three protocols through the standard workload and
// prints one JSON object with their raw result summaries.
func dumpJSON(s figures.Scale, tr *trace.Trace) error {
	results, err := figures.RunAllProtocols(s, tr)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "socialtube-sim:", err)
		os.Exit(1)
	}
}

// checkTrace validates a JSONL event trace against the golden schema and
// prints the per-kind event counts (the -trace-check path CI runs against
// a freshly generated trace).
func checkTrace(path string) error {
	schema, err := obs.GoldenSchema()
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	counts, err := schema.ValidateJSONL(f)
	if err != nil {
		return err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return fmt.Errorf("%s: trace is empty", path)
	}
	fmt.Printf("%s: %d events valid against the golden schema %v\n", path, total, counts)
	return nil
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("socialtube-sim", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", "figure to regenerate: 16a, 17a, 18a, 15, churn, timeline, scale, load, table1 or all")
		scale      = fs.String("scale", "small", "workload scale: small or paper (-fig scale also takes 10m)")
		seed       = fs.Int64("seed", 1, "experiment seed")
		shards     = fs.Int("shards", 0, "with -fig scale or -fig load, run each point on the community-sharded engine with this many workers (0 = classic single-loop engine)")
		users      = fs.Int("users", 0, "with -fig scale or -fig load, replace the preset population with this single size (0 = preset)")
		benchOut   = fs.String("bench-out", "", "with -fig scale, timeline or load, append per-point results to this JSONL file (default BENCH_<fig>.json; empty string keeps the default, 'none' disables)")
		loadMode   = fs.String("load-mode", "", "with -fig load, the profile shape: steady, ramp, sweep, burst or diurnal (empty = preset)")
		loadRPS    = fs.String("load-rps", "", "with -fig load, comma-separated offered-RPS columns (empty = preset)")
		loadDur    = fs.Duration("load-dur", 0, "with -fig load, each column's offered window in virtual time (0 = preset)")
		loadCap    = fs.Int("load-cap", -1, "with -fig load, the server admission-queue capacity (0 = unbounded, -1 = preset)")
		loadFlash  = fs.Int("load-flash", -1, "with -fig load, layer a flash crowd on this channel id (-1 = off)")
		jsonDump   = fs.Bool("json", false, "run the three protocols once and dump raw results as JSON")
		traceOut   = fs.String("trace-out", "", "write every protocol event as JSON Lines to this file")
		tracePrint = fs.String("trace-print", "", "pretty-print an existing JSONL event trace and exit")
		traceSpans = fs.String("trace-spans", "", "pretty-print an existing JSONL event trace grouped by request span and exit")
		traceMax   = fs.Int("trace-max", 0, "with -trace-print/-trace-spans, stop after this many events/spans (0 = all)")
		traceCheck = fs.String("trace-check", "", "validate an existing JSONL event trace against the golden schema and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast on nonsensical counts before any trace is built.
	if *shards < 0 {
		return fmt.Errorf("-shards must be ≥ 0, got %d", *shards)
	}
	if *users < 0 {
		return fmt.Errorf("-users must be ≥ 0, got %d", *users)
	}
	// The bench log's default name follows the figure; "none" disables.
	switch {
	case *benchOut == "" && *fig == "timeline":
		*benchOut = "BENCH_timeline.json"
	case *benchOut == "" && *fig == "load":
		*benchOut = "BENCH_load.json"
	case *benchOut == "":
		*benchOut = "BENCH_scale.json"
	case *benchOut == "none":
		*benchOut = ""
	}
	if *traceCheck != "" {
		return checkTrace(*traceCheck)
	}
	if *tracePrint != "" {
		f, err := os.Open(*tracePrint)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := obs.Pretty(f, os.Stdout, *traceMax)
		if err != nil {
			return err
		}
		fmt.Printf("# %d events\n", n)
		return nil
	}
	if *traceSpans != "" {
		f, err := os.Open(*traceSpans)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := obs.PrettySpans(f, os.Stdout, *traceMax)
		if err != nil {
			return err
		}
		fmt.Printf("# %d spans\n", n)
		return nil
	}
	// The scale sweep builds its own shard traces (one per population),
	// so it branches off before the single-figure trace is generated.
	if *fig == "scale" {
		return runScaleSweep(*scale, *seed, *benchOut, *shards, *users)
	}
	// The load sweep likewise owns its trace sizing.
	if *fig == "load" {
		return runLoadSweep(*scale, *seed, *benchOut, *shards, *users, loadFlags{
			mode: *loadMode, rps: *loadRPS, dur: *loadDur, cap: *loadCap, flash: *loadFlash,
		})
	}
	if *shards > 0 || *users > 0 {
		return fmt.Errorf("-shards and -users apply to -fig scale and -fig load only")
	}
	if *loadMode != "" || *loadRPS != "" || *loadDur != 0 || *loadCap >= 0 || *loadFlash >= 0 {
		return fmt.Errorf("-load-* flags apply to -fig load only")
	}
	if *scale == "10m" {
		return fmt.Errorf("-scale 10m applies to -fig scale only")
	}
	var s figures.Scale
	switch *scale {
	case "small":
		s = figures.SmallScale()
	case "paper":
		s = figures.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scale)
	}
	s.Seed = *seed
	tr, err := s.BuildTrace()
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d channels, %d videos, %d users (scale %s, seed %d)\n\n",
		len(tr.Channels), len(tr.Videos), len(tr.Users), *scale, *seed)

	if *traceOut != "" {
		j, err := obs.OpenJSONL(*traceOut)
		if err != nil {
			return err
		}
		s.Tracer = j
		defer func() {
			cerr := j.Close()
			if retErr == nil {
				retErr = cerr
			}
			if retErr == nil {
				fmt.Printf("\ntrace: %d events -> %s\n", j.Total(), *traceOut)
			}
		}()
	}

	if *jsonDump {
		return dumpJSON(s, tr)
	}

	show := func(id string) error {
		switch id {
		case "15":
			fmt.Println(figures.Fig15())
		case "16a":
			t, err := figures.Fig16a(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "17a":
			t, err := figures.Fig17a(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "18a":
			t, err := figures.Fig18a(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "churn":
			t, err := figures.FigChurn(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
		case "timeline":
			t, err := figures.RunTimeline(s, tr)
			if err != nil {
				return err
			}
			fmt.Println(t)
			if *benchOut != "" {
				if err := figures.AppendTimelinePoints(*benchOut, t.Points); err != nil {
					return err
				}
				fmt.Printf("appended %d points to %s\n", len(t.Points), *benchOut)
			}
		case "table1":
			fmt.Println(figures.Table1(s, tr))
		default:
			return fmt.Errorf("unknown figure %q (want 15, 16a, 17a, 18a, churn, timeline, scale, load, table1 or all)", id)
		}
		return nil
	}
	if *fig == "all" {
		for _, id := range []string{"table1", "15", "16a", "17a", "18a", "churn"} {
			if err := show(id); err != nil {
				return err
			}
		}
		return nil
	}
	return show(*fig)
}
