// Command socialtube-trace generates a synthetic YouTube social-network
// trace and reproduces the Section III trace-analysis figures (Figs. 2–13).
//
// Usage:
//
//	socialtube-trace -fig 9 -channels 545 -users 2000 -seed 1
//	socialtube-trace -fig all
//	socialtube-trace -save trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/socialtube/socialtube/internal/figures"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "socialtube-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("socialtube-trace", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "figure to regenerate: 2..13 or all")
		seed      = fs.Int64("seed", 1, "trace generation seed")
		channels  = fs.Int("channels", 545, "number of channels")
		users     = fs.Int("users", 2000, "number of users")
		cats      = fs.Int("categories", 18, "number of interest categories")
		minShared = fs.Int("minshared", 3, "shared-subscriber threshold for fig 10")
		save      = fs.String("save", "", "write the generated trace as JSON to this file")
		crawl     = fs.Int("crawl", 0, "BFS-crawl this many users from the generated network first (the paper's Section III sampling methodology)")
		csv       = fs.Bool("csv", false, "emit figures as CSV instead of aligned tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := trace.DefaultConfig()
	cfg.Seed = *seed
	cfg.Channels = *channels
	cfg.Users = *users
	cfg.Categories = *cats
	if cfg.MaxInterestsPerUser > *cats {
		cfg.MaxInterestsPerUser = *cats
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	if *crawl > 0 {
		tr, err = trace.Crawl(tr, *seed, *crawl)
		if err != nil {
			return err
		}
		fmt.Printf("BFS crawl sampled %d users (mean degree %.2f)\n", len(tr.Users), tr.MeanDegree())
	}
	s := tr.Summarize()
	fmt.Printf("trace: %d channels, %d videos, %d users, %d categories (seed %d)\n\n",
		s.Channels, s.Videos, s.Users, s.Categories, *seed)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.Save(f); err != nil {
			return err
		}
		fmt.Printf("saved trace to %s\n", *save)
	}

	tables := map[string]func() *metrics.Table{
		"2":  func() *metrics.Table { return figures.Fig02(tr) },
		"3":  func() *metrics.Table { return figures.Fig03(tr) },
		"4":  func() *metrics.Table { return figures.Fig04(tr) },
		"5":  func() *metrics.Table { return figures.Fig05(tr) },
		"6":  func() *metrics.Table { return figures.Fig06(tr) },
		"7":  func() *metrics.Table { return figures.Fig07(tr) },
		"8":  func() *metrics.Table { return figures.Fig08(tr) },
		"9":  func() *metrics.Table { return figures.Fig09(tr) },
		"10": func() *metrics.Table { return figures.Fig10(tr, *minShared) },
		"11": func() *metrics.Table { return figures.Fig11(tr) },
		"12": func() *metrics.Table { return figures.Fig12(tr) },
		"13": func() *metrics.Table { return figures.Fig13(tr) },
	}
	show := func(t *metrics.Table) {
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title(), t.CSV())
			return
		}
		fmt.Println(t)
	}
	if *fig == "all" {
		for _, id := range []string{"2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13"} {
			show(tables[id]())
		}
		return nil
	}
	build, ok := tables[*fig]
	if !ok {
		return fmt.Errorf("unknown figure %q (want 2..13 or all)", *fig)
	}
	show(build())
	return nil
}
