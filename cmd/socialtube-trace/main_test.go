package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	args := []string{"-fig", "9", "-channels", "40", "-users", "120", "-categories", "6"}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllFigures(t *testing.T) {
	args := []string{"-fig", "all", "-channels", "30", "-users", "100", "-categories", "6"}
	if err := run(args); err != nil {
		t.Fatalf("run all: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99", "-channels", "10", "-users", "50", "-categories", "6"}); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunBadTraceConfig(t *testing.T) {
	if err := run([]string{"-channels", "0"}); err == nil {
		t.Fatal("expected trace config error")
	}
}

func TestRunSaveTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	args := []string{"-fig", "2", "-channels", "20", "-users", "60", "-categories", "6", "-save", out}
	if err := run(args); err != nil {
		t.Fatalf("run with save: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatalf("saved trace missing: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("saved trace empty")
	}
}

func TestRunCSVOutput(t *testing.T) {
	args := []string{"-fig", "6", "-channels", "20", "-users", "60", "-categories", "6", "-csv"}
	if err := run(args); err != nil {
		t.Fatalf("csv run: %v", err)
	}
}

func TestRunCrawlFlag(t *testing.T) {
	args := []string{"-fig", "13", "-channels", "30", "-users", "150", "-categories", "6", "-crawl", "60"}
	if err := run(args); err != nil {
		t.Fatalf("crawl run: %v", err)
	}
}
