GO ?= go

.PHONY: all build test race bench figures figures-paper emu cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/emu/ ./internal/vod/

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure at laptop scale (~90 s).
figures:
	$(GO) run ./cmd/socialtube-bench

# Regenerate the simulation figures at the paper's Table I scale (minutes).
figures-paper:
	$(GO) run ./cmd/socialtube-sim -fig all -scale paper

# Run the TCP emulation at the paper's 250-node PlanetLab scale.
emu:
	$(GO) run ./cmd/socialtube-emu -fig all -peers 250 -sessions 2 -videos 6 -watch 30ms

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
