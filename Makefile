GO ?= go

.PHONY: all build test race bench bench-short ci figures figures-paper scale-demo scale-paper scale-10m load-demo emu faults-demo failover-demo outage-shard-demo takeover-demo fuzz-smoke trace-demo timeline-demo cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Fast allocation-focused micro-benchmarks for the hot paths (flood search,
# mesh maintenance, per-request work), plus the small-N scale-sweep smoke
# (appends its points to BENCH_scale.json). Seconds, not minutes.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkFlood|BenchmarkMeshConnect|BenchmarkNeighbors' -benchmem ./internal/overlay/
	$(GO) test -run '^$$' -bench 'BenchmarkRequest|BenchmarkProbe' -benchmem ./internal/core/
	$(GO) run ./cmd/socialtube-sim -fig scale

# Full gate: what CI runs (see scripts/ci.sh).
ci:
	./scripts/ci.sh

# Regenerate every table and figure at laptop scale (~90 s).
figures:
	$(GO) run ./cmd/socialtube-bench

# Regenerate the simulation figures at the paper's Table I scale (minutes).
figures-paper:
	$(GO) run ./cmd/socialtube-sim -fig all -scale paper

# Scalability sweep at smoke sizes: overhead-vs-N, hit-rate-vs-N and
# bytes-per-user curves, appended to BENCH_scale.json. Seconds.
scale-demo:
	$(GO) run ./cmd/socialtube-sim -fig scale

# The full 10k..1M-user sweep (the §IV-C constant-vs-linear maintenance
# claim measured end to end). Minutes, single machine.
scale-paper:
	$(GO) run ./cmd/socialtube-sim -fig scale -scale paper

# The 10M-user point on the community-sharded engine (one loop per
# interest category, epoch-barrier mailboxes). Hours-scale on one core.
scale-10m:
	$(GO) run ./cmd/socialtube-sim -fig scale -scale 10m -shards 1

# Open-loop load sweep: steady 2/6/18 offered RPS per protocol against a
# bounded server admission queue — p50/p99/p999 startup delay, server
# offload, shed rate — appended to BENCH_load.json. Seconds.
load-demo:
	$(GO) run ./cmd/socialtube-sim -fig load

# Run the TCP emulation at the paper's 250-node PlanetLab scale.
emu:
	$(GO) run ./cmd/socialtube-emu -fig all -peers 250 -sessions 2 -videos 6 -watch 30ms

# Drive the emulated cluster through the standard tracker-outage plan (a
# crash wave, then the tracker dark for one session cycle) and print the
# per-protocol resilience comparison. Seconds, not minutes.
faults-demo:
	$(GO) run ./cmd/socialtube-emu -fig outage -peers 32 -sessions 2 -videos 6 -watch 20ms

# Crash the provider serving chunk 0 on every third request and measure
# how often each protocol still finishes without restarting delivery at
# the server (mid-stream handoff along the ranked candidate list). The
# deterministic points land in BENCH_failover.json. Seconds.
failover-demo:
	$(GO) run ./cmd/socialtube-emu -fig failover -bench-out BENCH_failover.json

# Run SocialTube on the sharded, replicated control plane (2 shards x 2
# replicas) and kill each tracker replica in turn mid-run: the hit rate
# must stay within a few percent of the no-fault baseline because peers
# fail over to the shard's surviving replica. Deterministic points land
# in BENCH_failover.json. Seconds.
outage-shard-demo:
	$(GO) run ./cmd/socialtube-emu -fig outage-shard -bench-out BENCH_failover.json

# Kill a WHOLE shard (both replicas) of the 2x2 plane mid-run, then
# separately split the cluster into two sides: gossip liveness declares
# the dead shard, peers re-rendezvous its channels onto the survivors
# and re-register their home channels, and the partition heals with zero
# lost registrations (hinted handoff + LWW merge). Every variant must
# lose zero requests. Deterministic points land in BENCH_failover.json.
# Seconds.
takeover-demo:
	$(GO) run ./cmd/socialtube-emu -fig takeover -bench-out BENCH_failover.json

# Short fuzz passes over the wire layer: the frame decoder and the peer's
# message handlers must survive arbitrary bytes without panicking.
fuzz-smoke:
	$(GO) test ./internal/emu -run '^$$' -fuzz '^FuzzReadMessage$$' -fuzztime 30s
	$(GO) test ./internal/emu -run '^$$' -fuzz '^FuzzHandleMessage$$' -fuzztime 30s

# Run the three protocols under the standard churn plan with the windowed
# sim-time telemetry recorder on: per-window hit rate, startup-delay
# p50/p99, server load and breaker opens, appended to BENCH_timeline.json.
# Seconds, not minutes.
timeline-demo:
	$(GO) run ./cmd/socialtube-sim -fig timeline

# Record a JSONL event trace from the Fig. 17(a) run, validate it against
# the golden schema, then pretty-print the first events, then group them
# by request span.
trace-demo:
	$(GO) run ./cmd/socialtube-sim -fig 17a -trace-out trace-demo.jsonl
	$(GO) run ./cmd/socialtube-sim -trace-check trace-demo.jsonl
	$(GO) run ./cmd/socialtube-sim -trace-print trace-demo.jsonl -trace-max 20
	$(GO) run ./cmd/socialtube-sim -trace-spans trace-demo.jsonl -trace-max 5

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
