module github.com/socialtube/socialtube

go 1.22
