package obs

import (
	"encoding/json"
	"math"
	"time"
)

// Hist is a fixed-size log-bucketed histogram (HDR-style): observations
// land in one of histBuckets exponential buckets with 1/histSubCount
// relative width, so memory is O(buckets) — a few KiB — no matter how
// many values are recorded. This is the aggregation type for unbounded
// paths (per-request startup delays at 1M+ users) where metrics.Sample's
// keep-every-observation layout is untenable.
//
// Quantiles are estimated deterministically by walking the cumulative
// bucket counts and interpolating inside the landing bucket, then
// clamping to the exact observed [Min, Max]; with 32 sub-buckets per
// octave the relative error is at most ~3%. Count, Sum, Mean, Min and
// Max are exact. The zero value is ready to use; Hist is mergeable
// (Merge), so per-shard histograms combine into one without losing
// precision beyond the shared bucket layout.
//
// Hist is not safe for concurrent use; callers that share one (the emu
// cluster result) must hold their own lock, exactly as they did for
// metrics.Sample.
type Hist struct {
	count uint64
	zeros uint64 // observations <= 0 (e.g. exactly-zero prefix-cache startup delays)
	sum   float64
	min   float64
	max   float64
	// counts is inline (not a slice) so embedding a Hist in a result
	// struct costs zero pointer chasing and zero allocations.
	counts [histBuckets]uint64
}

const (
	// histSubBits sets 2^histSubBits linear sub-buckets per power-of-two
	// octave: 32 sub-buckets bound the relative bucket width to 1/32 of
	// the bucket's lower bound (~3% worst case).
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histMinExp / histMaxExp bound the covered magnitude range
	// [2^(histMinExp-1), 2^histMaxExp) — for millisecond-denominated
	// delays that is ~0.0005 ms to ~12 days. Out-of-range values clamp
	// into the first/last bucket; Min/Max still record them exactly.
	histMinExp  = -10
	histMaxExp  = 30
	histBuckets = (histMaxExp - histMinExp) * histSubCount
)

// histBucketIndex maps a positive value to its bucket.
func histBucketIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp < histMinExp {
		return 0
	}
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * histSubCount))
	if sub >= histSubCount { // frac == 1-ulp rounding guard
		sub = histSubCount - 1
	}
	return (exp-histMinExp)*histSubCount + sub
}

// histBucketBounds returns the half-open value range [lo, hi) bucket i covers.
func histBucketBounds(i int) (lo, hi float64) {
	exp := histMinExp + i/histSubCount
	sub := i % histSubCount
	lo = math.Ldexp(0.5+float64(sub)/(2*histSubCount), exp)
	hi = math.Ldexp(0.5+float64(sub+1)/(2*histSubCount), exp)
	return lo, hi
}

// Add records one observation. Non-positive values are counted in a
// dedicated underflow bucket and quantile-estimated as 0 (prefix-cached
// requests legitimately report a 0 ms startup delay).
func (h *Hist) Add(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.zeros++
		return
	}
	h.counts[histBucketIndex(v)]++
}

// AddDuration records a duration in milliseconds (matching
// metrics.Sample.AddDuration, so call sites swap between the two types
// without unit drift).
func (h *Hist) AddDuration(d time.Duration) {
	h.Add(float64(d) / float64(time.Millisecond))
}

// Len returns the number of observations.
func (h *Hist) Len() int { return int(h.count) }

// Sum returns the exact sum of all observations.
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the exact arithmetic mean (0 if empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the exact smallest observation (0 if empty).
func (h *Hist) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 if empty).
func (h *Hist) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// clampObserved bounds a bucket-interpolated estimate by the exact
// observed range, so single-value and narrow distributions report exact
// quantiles.
func (h *Hist) clampObserved(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Percentile estimates the p-th percentile (p in [0, 100]) by walking
// the cumulative bucket counts and interpolating linearly inside the
// landing bucket. The estimate is deterministic for a given bucket state
// and monotonic in p.
func (h *Hist) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := p / 100 * float64(h.count)
	cum := float64(h.zeros)
	if cum >= rank {
		return h.clampObserved(0)
	}
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo, hi := histBucketBounds(i)
			return h.clampObserved(lo + (hi-lo)*(rank-prev)/float64(c))
		}
	}
	return h.Max()
}

// Merge folds other into h. Both histograms share the fixed bucket
// layout, so merging is exact: the merged histogram equals one that
// observed both value streams directly. Merging order never changes the
// result.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.zeros += other.zeros
	h.sum += other.sum
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// HistSummary is the compact derived view of a Hist. Field names and
// JSON tags match metrics.Summary, so figure code consuming either type
// reads d.Mean / d.P50 / d.P99 unchanged.
type HistSummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P1    float64 `json:"p1"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P75   float64 `json:"p75"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// Summary computes the summary statistics.
func (h *Hist) Summary() HistSummary {
	return HistSummary{
		Count: h.Len(),
		Mean:  h.Mean(),
		P1:    h.Percentile(1),
		P25:   h.Percentile(25),
		P50:   h.Percentile(50),
		P75:   h.Percentile(75),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// histJSON is the wire form: the summary plus the sparse non-zero
// buckets as [index, count] pairs in ascending index order — compact and
// byte-stable for a given bucket state, so same-seed results marshal
// identically.
type histJSON struct {
	HistSummary
	Zeros   uint64      `json:"zeros,omitempty"`
	Buckets [][2]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON emits the summary plus the sparse buckets.
func (h Hist) MarshalJSON() ([]byte, error) {
	out := histJSON{HistSummary: h.Summary(), Zeros: h.zeros}
	for i, c := range h.counts {
		if c != 0 {
			out.Buckets = append(out.Buckets, [2]uint64{uint64(i), c})
		}
	}
	return json.Marshal(out)
}

// EachBucket calls fn for every non-empty bucket in ascending value
// order with the bucket's upper bound and the cumulative count of
// observations <= that bound (the Prometheus histogram `le` convention).
// The underflow bucket reports with bound 0.
func (h *Hist) EachBucket(fn func(upperBound float64, cumulative uint64)) {
	cum := uint64(0)
	if h.zeros > 0 {
		cum += h.zeros
		fn(0, cum)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := histBucketBounds(i)
		fn(hi, cum)
	}
}
