package obs

import (
	"runtime"
	"sync/atomic"
)

// MemUsage is the memory block of a run's result. TraceBytes and
// BytesPerUser are computed from the dense trace layout (trace.Bytes) and
// are bit-identical across runs with the same seed; HeapHighWater comes
// from runtime heap sampling and is environmental — report it, but never
// compare it across runs.
type MemUsage struct {
	// TraceBytes is the deterministic in-memory footprint of the trace.
	TraceBytes uint64 `json:"traceBytes"`
	// BytesPerUser is TraceBytes divided by the user count — the scale
	// sweep's headline number (flat bytes-per-user means the dense
	// layout scales linearly in N with no per-object overhead creep).
	BytesPerUser float64 `json:"bytesPerUser"`
	// HeapHighWater is the largest live-heap sample observed during the
	// run. It is environmental (allocator and GC timing dependent), so
	// it is excluded from the JSON encoding: same-seed results must stay
	// byte-identical. Consumers that report environmental numbers anyway
	// (the emu /metrics endpoint, the scale sweep's BENCH records, which
	// carry wall-clock timings too) serve it through explicit fields.
	HeapHighWater uint64 `json:"-"`
}

// MemWatermark tracks the process heap high-water mark at bounded cost.
// Tick is called once per unit of work (a video request, a served chunk)
// and reads runtime.MemStats only on power-of-two period boundaries,
// because ReadMemStats briefly stops the world. All state is atomic, so
// the single-threaded simulator and the multi-goroutine emulation use the
// same type.
type MemWatermark struct {
	mask  uint64
	ticks atomic.Uint64
	high  atomic.Uint64
}

// NewMemWatermark returns a watermark sampling once every `every` Ticks;
// every is rounded up to a power of two (minimum 1).
func NewMemWatermark(every int) *MemWatermark {
	n := uint64(1)
	for int(n) < every {
		n <<= 1
	}
	return &MemWatermark{mask: n - 1}
}

// Tick counts one unit of work, sampling the heap on period boundaries.
func (m *MemWatermark) Tick() {
	if m.ticks.Add(1)&m.mask == 0 {
		m.Sample()
	}
}

// Sample reads the current live heap unconditionally, folds it into the
// high-water mark, and returns it. Call it at run end so short runs that
// never crossed a period boundary still report a watermark.
func (m *MemWatermark) Sample() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := m.high.Load()
		if ms.HeapAlloc <= old || m.high.CompareAndSwap(old, ms.HeapAlloc) {
			return ms.HeapAlloc
		}
	}
}

// HighWater returns the largest heap sample seen so far.
func (m *MemWatermark) HighWater() uint64 { return m.high.Load() }
