package obs

import (
	"bufio"
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// goldenSchemaJSON is the checked-in golden trace schema; the same file the
// tests load from disk is embedded so the binaries can validate traces
// without a repo checkout.
//
//go:embed testdata/trace_schema.json
var goldenSchemaJSON []byte

// GoldenSchema returns the golden trace schema every JSONL trace the
// binaries emit must satisfy.
func GoldenSchema() (*Schema, error) {
	return LoadSchema(bytes.NewReader(goldenSchemaJSON))
}

// Schema describes the JSONL trace format: the keys every event must carry
// and, per kind, the keys an event may carry. The checked-in golden copy
// lives at internal/obs/testdata/trace_schema.json; CI validates generated
// traces against it so the wire format cannot drift silently.
type Schema struct {
	// Required keys every event must have regardless of kind.
	Required []string `json:"required"`
	// Kinds maps each event kind to the full set of keys it may emit.
	Kinds map[string][]string `json:"kinds"`
}

// LoadSchema decodes a schema from r.
func LoadSchema(r io.Reader) (*Schema, error) {
	var s Schema
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace schema: %w", err)
	}
	if len(s.Required) == 0 || len(s.Kinds) == 0 {
		return nil, fmt.Errorf("trace schema: empty required/kinds")
	}
	return &s, nil
}

// LoadSchemaFile loads a schema from the file at path.
func LoadSchemaFile(path string) (*Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSchema(f)
}

func contains(keys []string, k string) bool {
	for _, key := range keys {
		if key == k {
			return true
		}
	}
	return false
}

// ValidateEvent checks one decoded event object against the schema.
func (s *Schema) ValidateEvent(obj map[string]any) error {
	kindVal, ok := obj["kind"].(string)
	if !ok {
		return fmt.Errorf("event has no string %q key", "kind")
	}
	allowed, ok := s.Kinds[kindVal]
	if !ok {
		return fmt.Errorf("unknown event kind %q", kindVal)
	}
	for _, req := range s.Required {
		if _, ok := obj[req]; !ok {
			return fmt.Errorf("kind %q missing required key %q", kindVal, req)
		}
	}
	for k := range obj {
		if !contains(allowed, k) {
			return fmt.Errorf("kind %q carries unexpected key %q", kindVal, k)
		}
	}
	return nil
}

// ValidateJSONL reads a JSONL trace from r, validates every event against
// the schema, and returns per-kind event counts. The first invalid line
// fails the whole trace.
func (s *Schema) ValidateJSONL(r io.Reader) (map[string]int, error) {
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			return counts, fmt.Errorf("line %d: %w", line, err)
		}
		if err := s.ValidateEvent(obj); err != nil {
			return counts, fmt.Errorf("line %d: %w", line, err)
		}
		counts[obj["kind"].(string)]++
	}
	if err := sc.Err(); err != nil {
		return counts, err
	}
	return counts, nil
}
