package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// Timeline is a windowed telemetry recorder keyed by *simulated* time:
// every data point is filed under window index at/window, where at is
// the engine's virtual clock. Wall-clock time never enters a Timeline,
// so same-seed runs produce byte-identical timelines regardless of host
// speed or worker count.
//
// Series are registered up front (Counter, Gauge, Hist) and addressed
// through the returned *Series handles; the hot path (Add / Observe) is
// a window-index computation plus a slice element update, with amortized
// slice growth as the simulation clock advances — no per-observation
// allocation.
//
// Timelines merge (Merge) when both sides share the same window width
// and the same series registered in the same order: counters and gauges
// add element-wise, histogram windows fold via Hist.Merge. The sharded
// engine records one Timeline per community cell and merges them in
// ascending cell order, which keeps merged timelines byte-identical for
// any worker count (merging is commutative here, but the fixed order
// makes that property checkable byte-for-byte).
//
// A Timeline is single-writer, like the engines that feed it.
type Timeline struct {
	window time.Duration
	series []*Series
}

// SeriesKind distinguishes how a Series aggregates within a window.
type SeriesKind string

// Series kinds.
const (
	// SeriesCounter sums integer deltas per window.
	SeriesCounter SeriesKind = "counter"
	// SeriesGauge also sums per window; the distinction is semantic
	// (a level sampled into the window rather than a monotonic count)
	// and is preserved in the JSON so plots label axes correctly.
	SeriesGauge SeriesKind = "gauge"
	// SeriesHist keeps a per-window Hist of observations.
	SeriesHist SeriesKind = "hist"
)

// Series is one named per-window data stream inside a Timeline.
type Series struct {
	name   string
	kind   SeriesKind
	window time.Duration
	values []int64 // counter / gauge windows
	hists  []*Hist // hist windows (lazily allocated per window)
}

// NewTimeline returns a timeline with the given window width. window
// must be positive.
func NewTimeline(window time.Duration) *Timeline {
	if window <= 0 {
		panic("obs: timeline window must be positive")
	}
	return &Timeline{window: window}
}

// Window returns the window width.
func (t *Timeline) Window() time.Duration { return t.window }

// Counter registers (or returns the existing) counter series.
func (t *Timeline) Counter(name string) *Series { return t.register(name, SeriesCounter) }

// Gauge registers (or returns the existing) gauge series.
func (t *Timeline) Gauge(name string) *Series { return t.register(name, SeriesGauge) }

// Hist registers (or returns the existing) histogram series.
func (t *Timeline) Hist(name string) *Series { return t.register(name, SeriesHist) }

func (t *Timeline) register(name string, kind SeriesKind) *Series {
	for _, s := range t.series {
		if s.name == name {
			if s.kind != kind {
				panic(fmt.Sprintf("obs: timeline series %q registered as %s and %s", name, s.kind, kind))
			}
			return s
		}
	}
	s := &Series{name: name, kind: kind, window: t.window}
	t.series = append(t.series, s)
	return s
}

// Series returns the registered series by name, or nil.
func (t *Timeline) Series(name string) *Series {
	for _, s := range t.series {
		if s.name == name {
			return s
		}
	}
	return nil
}

// Windows returns the number of windows the timeline spans: the highest
// window index any series has touched, plus one.
func (t *Timeline) Windows() int {
	n := 0
	for _, s := range t.series {
		if len(s.values) > n {
			n = len(s.values)
		}
		if len(s.hists) > n {
			n = len(s.hists)
		}
	}
	return n
}

// windowIndex maps a simulated timestamp to its window.
func (s *Series) windowIndex(at time.Duration) int {
	if at < 0 {
		return 0
	}
	return int(at / s.window)
}

// Add folds an integer delta into the window covering simulated time at.
// Valid for counter and gauge series.
func (s *Series) Add(at time.Duration, n int64) {
	idx := s.windowIndex(at)
	for len(s.values) <= idx {
		s.values = append(s.values, 0)
	}
	s.values[idx] += n
}

// Observe records a value into the histogram window covering simulated
// time at. Valid for hist series.
func (s *Series) Observe(at time.Duration, v float64) {
	idx := s.windowIndex(at)
	for len(s.hists) <= idx {
		s.hists = append(s.hists, nil)
	}
	if s.hists[idx] == nil {
		s.hists[idx] = &Hist{}
	}
	s.hists[idx].Add(v)
}

// Value returns the counter/gauge total for window idx (0 beyond the
// recorded range).
func (s *Series) Value(idx int) int64 {
	if idx < 0 || idx >= len(s.values) {
		return 0
	}
	return s.values[idx]
}

// HistAt returns the histogram for window idx, or nil if that window
// recorded nothing.
func (s *Series) HistAt(idx int) *Hist {
	if idx < 0 || idx >= len(s.hists) {
		return nil
	}
	return s.hists[idx]
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Kind returns the series kind.
func (s *Series) Kind() SeriesKind { return s.kind }

// Merge folds other into t. Both timelines must have the same window
// width and the same series (name and kind) registered in the same
// order; anything else is a programming error and is reported.
func (t *Timeline) Merge(other *Timeline) error {
	if other == nil {
		return nil
	}
	if t.window != other.window {
		return fmt.Errorf("obs: merging timelines with windows %v and %v", t.window, other.window)
	}
	if len(t.series) != len(other.series) {
		return fmt.Errorf("obs: merging timelines with %d and %d series", len(t.series), len(other.series))
	}
	for i, s := range t.series {
		o := other.series[i]
		if s.name != o.name || s.kind != o.kind {
			return fmt.Errorf("obs: timeline series %d mismatch: %s/%s vs %s/%s", i, s.name, s.kind, o.name, o.kind)
		}
		for len(s.values) < len(o.values) {
			s.values = append(s.values, 0)
		}
		for idx, v := range o.values {
			s.values[idx] += v
		}
		for len(s.hists) < len(o.hists) {
			s.hists = append(s.hists, nil)
		}
		for idx, h := range o.hists {
			if h == nil {
				continue
			}
			if s.hists[idx] == nil {
				s.hists[idx] = &Hist{}
			}
			s.hists[idx].Merge(h)
		}
	}
	return nil
}

// timelineSeriesJSON pads every series to the timeline's full window
// count so rows align column-wise across series.
type timelineSeriesJSON struct {
	Name    string         `json:"name"`
	Kind    SeriesKind     `json:"kind"`
	Values  []int64        `json:"values,omitempty"`
	Windows []*HistSummary `json:"windows,omitempty"`
}

type timelineJSON struct {
	WindowMs int64                `json:"windowMs"`
	Windows  int                  `json:"windows"`
	Series   []timelineSeriesJSON `json:"series"`
}

// MarshalJSON emits the timeline with series in registration order and
// every series padded to the full window count — deterministic bytes for
// a given recorded state.
func (t *Timeline) MarshalJSON() ([]byte, error) {
	n := t.Windows()
	out := timelineJSON{
		WindowMs: t.window.Milliseconds(),
		Windows:  n,
		Series:   make([]timelineSeriesJSON, 0, len(t.series)),
	}
	for _, s := range t.series {
		sj := timelineSeriesJSON{Name: s.name, Kind: s.kind}
		if s.kind == SeriesHist {
			sj.Windows = make([]*HistSummary, n)
			for i := 0; i < n && i < len(s.hists); i++ {
				if s.hists[i] != nil {
					sum := s.hists[i].Summary()
					sj.Windows[i] = &sum
				}
			}
		} else {
			sj.Values = make([]int64, n)
			copy(sj.Values, s.values)
		}
		out.Series = append(out.Series, sj)
	}
	return json.Marshal(out)
}
