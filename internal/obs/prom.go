package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) renderers for the
// package's aggregation types. They write plain text lines, so any
// io.Writer works; the emu MetricsServer serves them under
// `GET /metrics?format=prom`.

// promName sanitizes a JSON-tag-style name (camelCase) into a
// Prometheus metric name fragment (snake_case, [a-z0-9_] only).
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			if i > 0 {
				b.WriteByte('_')
			}
			b.WriteByte(byte(r - 'A' + 'a'))
		case (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			b.WriteByte(byte(r))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePromCounters renders every field of a Counters snapshot as a
// Prometheus counter named <prefix>_<snake_case_field>_total. Pass a
// Snapshot() when writers may race.
func WritePromCounters(w io.Writer, prefix string, c *Counters) {
	if c == nil {
		return
	}
	for _, row := range c.Rows() {
		name := prefix + "_" + promName(row.Name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, row.Value)
	}
}

// WritePromGauge renders one gauge sample.
func WritePromGauge(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(v))
}

// WritePromHist renders a Hist as a Prometheus histogram: one
// `<name>_bucket{le="..."}` line per non-empty bucket (cumulative), the
// mandatory `le="+Inf"` bucket, and `<name>_sum` / `<name>_count`.
func WritePromHist(w io.Writer, name string, h *Hist) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	h.EachBucket(func(le float64, cum uint64) {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(le), cum)
	})
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
