package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Kind discriminates trace events.
type Kind string

// Event kinds.
const (
	// KindFlood is one flood search at one hierarchy level.
	KindFlood Kind = "flood"
	// KindServe is the outcome of one video request.
	KindServe Kind = "serve"
	// KindPrefetch is one first-chunk prefix stored by prefetching.
	KindPrefetch Kind = "prefetch"
	// KindJoin / KindLeave / KindFail are session churn events.
	KindJoin  Kind = "join"
	KindLeave Kind = "leave"
	KindFail  Kind = "fail"
	// KindProbe is one maintenance round of a node.
	KindProbe Kind = "probe"
	// KindRepair is one active self-repair round after a detected
	// crash: the dead node's neighbors replace their lost links.
	KindRepair Kind = "repair"
	// KindQuery is a cross-community lookup forwarded to the video's
	// home cell (core.RemoteLookup across the sharded-engine mailbox) or
	// a tracker query on the emulated wire.
	KindQuery Kind = "query"
	// KindHandoff is a mid-stream provider handoff along the ranked
	// candidate list (emulation delivery path).
	KindHandoff Kind = "handoff"
	// KindRescue is the server rescuing the remainder of a delivery
	// after the candidate list is exhausted.
	KindRescue Kind = "rescue"
)

// Hierarchy levels for KindFlood events.
const (
	LevelChannel  = "channel"
	LevelCategory = "category"
	LevelServer   = "server"
)

// Event is one trace record. Every field is fixed-size or a constant string,
// so constructing and emitting an Event allocates nothing. T, Proto, Kind,
// Node, Video and Provider are always emitted (Video/Provider are -1 when
// not applicable, because 0 is a valid id); the rest are omitted when empty.
type Event struct {
	// T is the virtual time of the event in nanoseconds.
	T        int64  `json:"t"`
	Proto    string `json:"proto"`
	Kind     Kind   `json:"kind"`
	Node     int    `json:"node"`
	Video    int64  `json:"video"`    // -1 when not applicable
	Provider int    `json:"provider"` // -1 when none
	// Level is the hierarchy level of a flood (channel|category|server).
	Level string `json:"level,omitempty"`
	// Source is the serve outcome (cache|peer|server).
	Source string `json:"source,omitempty"`
	Hops   int    `json:"hops,omitempty"`
	Msgs   int    `json:"msgs,omitempty"`
	OK     bool   `json:"ok,omitempty"`
	// Span links every event in one request's causal chain (flood →
	// serve, query across a shard mailbox, handoff, server rescue). 0
	// means the event is not part of a request span (schema v1 traces
	// predate the field and decode with Span 0).
	Span uint64 `json:"span,omitempty"`
}

// String renders the event human-readably — the format `socialtube-sim
// -trace-print` and `make trace-demo` display.
func (e Event) String() string {
	at := time.Duration(e.T).Round(time.Millisecond)
	switch e.Kind {
	case KindFlood:
		return fmt.Sprintf("%-12v %-10s node %-5d flood %-8s video %-6d ok=%-5v hops=%d msgs=%d",
			at, e.Proto, e.Node, e.Level, e.Video, e.OK, e.Hops, e.Msgs)
	case KindServe:
		return fmt.Sprintf("%-12v %-10s node %-5d serve %-8s video %-6d provider=%-5d hops=%d msgs=%d",
			at, e.Proto, e.Node, e.Source, e.Video, e.Provider, e.Hops, e.Msgs)
	case KindPrefetch:
		return fmt.Sprintf("%-12v %-10s node %-5d prefetch video %d", at, e.Proto, e.Node, e.Video)
	case KindProbe:
		return fmt.Sprintf("%-12v %-10s node %-5d probe msgs=%d", at, e.Proto, e.Node, e.Msgs)
	case KindRepair:
		return fmt.Sprintf("%-12v %-10s node %-5d repair links=%d msgs=%d", at, e.Proto, e.Node, e.Hops, e.Msgs)
	case KindQuery:
		return fmt.Sprintf("%-12v %-10s node %-5d query video %-6d ok=%-5v hops=%d msgs=%d",
			at, e.Proto, e.Node, e.Video, e.OK, e.Hops, e.Msgs)
	case KindHandoff:
		return fmt.Sprintf("%-12v %-10s node %-5d handoff video %-6d provider=%-5d ok=%v",
			at, e.Proto, e.Node, e.Video, e.Provider, e.OK)
	case KindRescue:
		return fmt.Sprintf("%-12v %-10s node %-5d rescue video %-6d", at, e.Proto, e.Node, e.Video)
	default:
		return fmt.Sprintf("%-12v %-10s node %-5d %s", at, e.Proto, e.Node, e.Kind)
	}
}

// Tracer receives protocol events. Implementations must be safe for
// concurrent Emit calls: the parallel figure runner shares one tracer across
// simulations. A nil Tracer means tracing is disabled; call sites nil-check
// before constructing the event, which keeps disabled tracing free.
type Tracer interface {
	Emit(Event)
}

// Nop is the package-level no-op tracer: Emit discards the event. It exists
// for the hot-path guard benchmarks, which install it to prove that the
// tracing seam itself (nil check passed, event constructed, dynamic call
// made) does not allocate.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Emit(Event) {}

// Ring is a bounded in-memory tracer: it keeps the most recent capacity
// events, overwriting the oldest. The buffer is allocated up front, so a
// steady-state Emit allocates nothing (it takes a mutex and copies one
// struct).
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRing returns a ring tracer holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns how many events were emitted over the ring's lifetime.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events oldest-first (a copy).
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// JSONL is a tracer that appends one JSON object per line to a writer — the
// `-trace-out` format. Writes are buffered; call Close (or Flush) to ensure
// everything reaches the underlying writer. Write errors are sticky and
// reported by Err/Close rather than panicking mid-simulation.
type JSONL struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	c     io.Closer
	total uint64
	err   error
}

// NewJSONL returns a JSONL tracer writing to w. If w is an io.Closer, Close
// closes it.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// OpenJSONL creates (or truncates) the file at path and returns a JSONL
// tracer writing to it.
func OpenJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace out: %w", err)
	}
	return NewJSONL(f), nil
}

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(e)
		j.total++
	}
	j.mu.Unlock()
}

// Total returns how many events were written.
func (j *JSONL) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush forces buffered events to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying writer (when it is closeable). It
// returns the first error the tracer encountered.
func (j *JSONL) Close() error {
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Pretty reads JSONL trace events from r and writes up to max (0 = all) of
// them human-readably to w, returning how many events it printed.
func Pretty(r io.Reader, w io.Writer, max int) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for max <= 0 || n < max {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			return n, fmt.Errorf("trace event %d: %w", n+1, err)
		}
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// PrettySpans reads JSONL trace events from r, groups the span-stamped
// ones by (protocol, span id) — span sequences restart per engine, so a
// multi-protocol figure trace would alias ids across protocols — and
// writes up to max (0 = all) reconstructed request chains to w in
// first-appearance order — the `-trace-spans` view. Within a span,
// events keep their emission order, so the printed chain is the
// request's causal path (flood → query → serve → handoff → rescue).
// Events without a span (schema v1 traces, churn events) are skipped.
// It returns how many spans it printed.
func PrettySpans(r io.Reader, w io.Writer, max int) (int, error) {
	type spanKey struct {
		proto string
		id    uint64
	}
	dec := json.NewDecoder(r)
	spans := make(map[spanKey][]Event)
	var order []spanKey
	n := 0
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			return 0, fmt.Errorf("trace event %d: %w", n+1, err)
		}
		n++
		if e.Span == 0 {
			continue
		}
		k := spanKey{e.Proto, e.Span}
		if _, seen := spans[k]; !seen {
			order = append(order, k)
		}
		spans[k] = append(spans[k], e)
	}
	printed := 0
	for _, k := range order {
		if max > 0 && printed >= max {
			break
		}
		events := spans[k]
		if _, err := fmt.Fprintf(w, "span %s/%d (%d events)\n", k.proto, k.id, len(events)); err != nil {
			return printed, err
		}
		for _, e := range events {
			if _, err := fmt.Fprintf(w, "  %s\n", e.String()); err != nil {
				return printed, err
			}
		}
		printed++
	}
	return printed, nil
}
