package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsServer serves live counter snapshots as JSON at /metrics
// (expvar-style: one JSON object per GET) and, when enabled, the standard
// net/http/pprof endpoints under /debug/pprof/. It binds its own listener so
// an emu cluster — or a real tracker/peer — can expose metrics without
// touching the global default mux.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeMetrics starts a metrics server on addr (use "127.0.0.1:0" for an
// ephemeral port). snapshot is called per /metrics request and its result is
// rendered as indented JSON; it must be safe for concurrent use. prom, when
// non-nil, renders the Prometheus text exposition format and is served for
// `GET /metrics?format=prom` (see WritePromCounters / WritePromHist for the
// standard renderers); it too must be safe for concurrent use. When
// pprofEnabled is true the /debug/pprof/ handlers are mounted too.
func ServeMetrics(addr string, snapshot func() any, prom func(io.Writer), pprofEnabled bool) (*MetricsServer, error) {
	if snapshot == nil {
		return nil, fmt.Errorf("obs: nil metrics snapshot")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if prom != nil && r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			prom(w)
			return
		}
		buf, err := json.MarshalIndent(snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(buf, '\n'))
	})
	if pprofEnabled {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s := &MetricsServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *MetricsServer) Close() error { return s.srv.Close() }
