package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestCountersSnapshotAndRows(t *testing.T) {
	var c Counters
	// Give every field a distinct value through reflection so a skipped or
	// swapped field in Snapshot/Rows cannot go unnoticed.
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(uint64(i + 1))
	}
	snap := c.Snapshot()
	if snap != c {
		t.Fatalf("snapshot differs from source:\n%+v\n%+v", snap, c)
	}
	rows := snap.Rows()
	if len(rows) != v.NumField() {
		t.Fatalf("Rows covers %d of %d fields", len(rows), v.NumField())
	}
	seen := make(map[string]bool)
	for i, row := range rows {
		if row.Name == "" || strings.Contains(row.Name, ",") {
			t.Fatalf("row %d has bad name %q (missing or malformed json tag)", i, row.Name)
		}
		if seen[row.Name] {
			t.Fatalf("duplicate row name %q", row.Name)
		}
		seen[row.Name] = true
		if row.Value != uint64(i+1) {
			t.Fatalf("row %q = %d, want %d (declaration order broken)", row.Name, row.Value, i+1)
		}
	}
}

func TestCountersJSONStable(t *testing.T) {
	var c Counters
	c.LookupsChannel = 7
	a, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("marshal not stable:\n%s\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"lookupsChannel":7`)) {
		t.Fatalf("missing tagged field: %s", a)
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	// Distinct per-field values so a skipped or swapped field in Merge
	// cannot cancel out.
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	for i := 0; i < va.NumField(); i++ {
		va.Field(i).SetUint(uint64(i + 1))
		vb.Field(i).SetUint(uint64(100 * (i + 1)))
	}
	a.Merge(b)
	for i := 0; i < va.NumField(); i++ {
		want := uint64(i+1) + uint64(100*(i+1))
		if got := va.Field(i).Uint(); got != want {
			t.Fatalf("field %d after merge = %d, want %d", i, got, want)
		}
	}
	// Merging a zero block changes nothing.
	before := a
	a.Merge(Counters{})
	if a != before {
		t.Fatal("merging zero counters changed the block")
	}
}

func TestAddHops(t *testing.T) {
	var c Counters
	for _, h := range []int{0, 1, 2, 3, 4, 5, 9} {
		c.AddHops(h)
	}
	want := Counters{Hops1: 2, Hops2: 1, Hops3: 1, Hops4: 1, HopsMore: 2}
	if c != want {
		t.Fatalf("histogram = %+v, want %+v", c, want)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Node: i})
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	got := r.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Node != 6+i {
			t.Fatalf("event %d is node %d, want %d (oldest-first order broken)", i, e.Node, 6+i)
		}
	}
	// A partially filled ring returns only what was emitted.
	r2 := NewRing(8)
	r2.Emit(Event{Node: 42})
	if got := r2.Events(); len(got) != 1 || got[0].Node != 42 {
		t.Fatalf("partial ring events = %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	in := []Event{
		{T: 1, Proto: "SocialTube", Kind: KindFlood, Node: 3, Video: 0, Provider: 5, Level: LevelChannel, OK: true, Hops: 2, Msgs: 7},
		{T: 2, Proto: "NetTube", Kind: KindServe, Node: 4, Video: 1, Provider: -1, Source: "server"},
		{T: 3, Proto: "PA-VoD", Kind: KindJoin, Node: 5, Video: -1, Provider: -1},
	}
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Total() != uint64(len(in)) {
		t.Fatalf("total = %d, want %d", j.Total(), len(in))
	}
	dec := json.NewDecoder(&buf)
	for i, want := range in {
		var got Event
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d round-trip = %+v, want %+v", i, got, want)
		}
	}
}

type failWriter struct{ err error }

func (w *failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(&failWriter{err: io.ErrClosedPipe})
	for i := 0; i < 10000; i++ { // enough to overflow the bufio buffer
		j.Emit(Event{Node: i})
	}
	if err := j.Flush(); err == nil {
		t.Fatal("expected sticky write error")
	}
	if j.Err() == nil {
		t.Fatal("Err lost the failure")
	}
}

func TestOpenJSONLAndPretty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	j, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		j.Emit(Event{T: int64(i), Proto: "SocialTube", Kind: KindPrefetch, Node: i, Video: int64(i), Provider: -1})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	n, err := Pretty(f, &out, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("printed %d events, want 3 (max honoured)", n)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 3 {
		t.Fatalf("output has %d lines:\n%s", lines, out.String())
	}
	if !strings.Contains(out.String(), "prefetch") {
		t.Fatalf("output misses event kind:\n%s", out.String())
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: KindFlood, Level: LevelChannel, Msgs: 4}, "flood"},
		{Event{Kind: KindServe, Source: "peer", Provider: 9}, "serve"},
		{Event{Kind: KindPrefetch, Video: 12}, "prefetch"},
		{Event{Kind: KindProbe, Msgs: 3}, "probe"},
		{Event{Kind: KindJoin}, "join"},
		{Event{Kind: KindLeave}, "leave"},
		{Event{Kind: KindFail}, "fail"},
	}
	for _, c := range cases {
		if s := c.e.String(); !strings.Contains(s, c.want) {
			t.Fatalf("String() = %q, want it to mention %q", s, c.want)
		}
	}
}

func TestSchemaValidate(t *testing.T) {
	s, err := LoadSchemaFile(filepath.Join("testdata", "trace_schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	base := func() map[string]any {
		return map[string]any{
			"t": 1.0, "proto": "SocialTube", "kind": "flood",
			"node": 1.0, "video": 0.0, "provider": -1.0,
		}
	}
	if err := s.ValidateEvent(base()); err != nil {
		t.Fatalf("minimal flood event rejected: %v", err)
	}
	ev := base()
	ev["level"] = "channel"
	ev["ok"] = true
	ev["msgs"] = 3.0
	if err := s.ValidateEvent(ev); err != nil {
		t.Fatalf("full flood event rejected: %v", err)
	}
	bad := base()
	bad["kind"] = "teleport"
	if err := s.ValidateEvent(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
	missing := base()
	delete(missing, "video")
	if err := s.ValidateEvent(missing); err == nil {
		t.Fatal("missing required key accepted")
	}
	extra := base()
	extra["source"] = "peer" // serve-only key on a flood event
	if err := s.ValidateEvent(extra); err == nil {
		t.Fatal("extra key accepted")
	}
}

func TestValidateJSONL(t *testing.T) {
	s, err := LoadSchemaFile(filepath.Join("testdata", "trace_schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{Proto: "SocialTube", Kind: KindFlood, Video: -1, Provider: -1, Level: LevelChannel, Msgs: 2})
	j.Emit(Event{Proto: "SocialTube", Kind: KindServe, Video: 3, Provider: 7, Source: "peer", Hops: 1, Msgs: 2})
	j.Emit(Event{Proto: "SocialTube", Kind: KindServe, Video: 3, Provider: -1, Source: "server"})
	j.Emit(Event{Proto: "SocialTube", Kind: KindPrefetch, Video: 4, Provider: -1})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	counts, err := s.ValidateJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"flood": 1, "serve": 2, "prefetch": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	// A malformed trace fails with a line number.
	if _, err := s.ValidateJSONL(strings.NewReader("{\"kind\":\"flood\"}\n")); err == nil {
		t.Fatal("trace missing required keys accepted")
	}
}

func TestServeMetrics(t *testing.T) {
	var c Counters
	c.RequestsPeer = 11
	srv, err := ServeMetrics("127.0.0.1:0", func() any {
		return map[string]any{"counters": c.Snapshot()}
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := httpGet(t, "http://"+srv.Addr()+"/metrics", http.StatusOK)
	var got struct {
		Counters Counters `json:"counters"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if got.Counters.RequestsPeer != 11 {
		t.Fatalf("metrics counters = %+v", got.Counters)
	}
	// pprof is opt-in: absent here...
	httpGet(t, "http://"+srv.Addr()+"/debug/pprof/", http.StatusNotFound)

	// ...and mounted when enabled.
	srv2, err := ServeMetrics("127.0.0.1:0", func() any { return struct{}{} }, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	httpGet(t, "http://"+srv2.Addr()+"/debug/pprof/", http.StatusOK)

	if _, err := ServeMetrics("127.0.0.1:0", nil, nil, false); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func httpGet(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d\n%s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

func ExampleEvent_String() {
	e := Event{T: int64(1500e6), Proto: "SocialTube", Kind: KindProbe, Node: 7, Video: -1, Provider: -1, Msgs: 5}
	fmt.Println(e.String())
	// Output: 1.5s         SocialTube node 7     probe msgs=5
}
