package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func buildTimeline(vals [][3]int64) *Timeline {
	tl := NewTimeline(time.Minute)
	req := tl.Counter("requests")
	del := tl.Hist("startupMs")
	load := tl.Gauge("serverBytes")
	for _, v := range vals {
		at := time.Duration(v[0])
		req.Add(at, 1)
		del.Observe(at, float64(v[1]))
		load.Add(at, v[2])
	}
	return tl
}

func TestTimelineWindowing(t *testing.T) {
	tl := NewTimeline(time.Minute)
	req := tl.Counter("requests")
	req.Add(0, 1)
	req.Add(59*time.Second, 1)
	req.Add(60*time.Second, 1)
	req.Add(5*time.Minute, 2)
	if got := tl.Windows(); got != 6 {
		t.Fatalf("Windows = %d, want 6", got)
	}
	for i, want := range []int64{2, 1, 0, 0, 0, 2} {
		if got := req.Value(i); got != want {
			t.Fatalf("window %d = %d, want %d", i, got, want)
		}
	}
	// Re-registering a name returns the same series; a kind clash panics.
	if tl.Counter("requests") != req {
		t.Fatal("re-registering returned a new series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	tl.Hist("requests")
}

func TestTimelineHistSeries(t *testing.T) {
	tl := NewTimeline(time.Minute)
	d := tl.Hist("startupMs")
	d.Observe(10*time.Second, 100)
	d.Observe(20*time.Second, 200)
	d.Observe(90*time.Second, 400)
	h := d.HistAt(0)
	if h == nil || h.Len() != 2 {
		t.Fatalf("window 0 hist = %+v", h)
	}
	if d.HistAt(1).Len() != 1 {
		t.Fatal("window 1 should hold one observation")
	}
	if d.HistAt(5) != nil {
		t.Fatal("untouched window should have nil hist")
	}
}

// TestTimelineMergeOrderIndependent: merging per-shard timelines must
// equal direct recording, and (for the worker-invariance contract) the
// merged JSON must not depend on which shard recorded what.
func TestTimelineMergeMatchesDirect(t *testing.T) {
	vals := make([][3]int64, 0, 300)
	for i := 0; i < 300; i++ {
		vals = append(vals, [3]int64{int64(i) * int64(7 * time.Second), int64(i % 50 * 13), int64(i * 100)})
	}
	direct := buildTimeline(vals)
	var parts [3]*Timeline
	for p := range parts {
		var sub [][3]int64
		for i, v := range vals {
			if i%3 == p {
				sub = append(sub, v)
			}
		}
		parts[p] = buildTimeline(sub)
	}
	merged := buildTimeline(nil)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	dj, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	mj, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dj, mj) {
		t.Fatalf("merged timeline != direct\nmerged: %s\ndirect: %s", mj, dj)
	}
}

func TestTimelineMergeRejectsMismatch(t *testing.T) {
	a := NewTimeline(time.Minute)
	a.Counter("x")
	b := NewTimeline(time.Second)
	b.Counter("x")
	if err := a.Merge(b); err == nil {
		t.Fatal("window mismatch accepted")
	}
	c := NewTimeline(time.Minute)
	c.Gauge("x")
	if err := a.Merge(c); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	d := NewTimeline(time.Minute)
	if err := a.Merge(d); err == nil {
		t.Fatal("series-count mismatch accepted")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestTimelineJSONShape(t *testing.T) {
	tl := buildTimeline([][3]int64{{int64(30 * time.Second), 120, 4096}})
	buf, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		WindowMs int64 `json:"windowMs"`
		Windows  int   `json:"windows"`
		Series   []struct {
			Name    string         `json:"name"`
			Kind    string         `json:"kind"`
			Values  []int64        `json:"values"`
			Windows []*HistSummary `json:"windows"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.WindowMs != 60_000 || got.Windows != 1 || len(got.Series) != 3 {
		t.Fatalf("timeline JSON = %s", buf)
	}
	if got.Series[0].Name != "requests" || got.Series[1].Name != "startupMs" || got.Series[2].Name != "serverBytes" {
		t.Fatalf("series not in registration order: %s", buf)
	}
	if got.Series[1].Windows[0] == nil || got.Series[1].Windows[0].Count != 1 {
		t.Fatalf("hist window missing: %s", buf)
	}
}

func TestPrettySpans(t *testing.T) {
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	events := []Event{
		{T: 1, Proto: "SocialTube", Kind: KindJoin, Node: 1, Video: -1, Provider: -1},                              // no span: skipped
		{T: 2, Proto: "SocialTube", Kind: KindFlood, Node: 1, Video: 7, Provider: -1, Span: 42, Level: "channel"},  // span 42
		{T: 3, Proto: "SocialTube", Kind: KindServe, Node: 1, Video: 7, Provider: 9, Span: 42, Source: "peer"},     // span 42
		{T: 4, Proto: "SocialTube", Kind: KindFlood, Node: 2, Video: 8, Provider: -1, Span: 43, Level: "category"}, // span 43
		{T: 5, Proto: "NetTube", Kind: KindServe, Node: 3, Video: 7, Provider: -1, Span: 42, Source: "server"},    // same id, other protocol: distinct span
	}
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	n, err := PrettySpans(bytes.NewReader(in.Bytes()), &out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("printed %d spans, want 3", n)
	}
	s := out.String()
	if !bytes.Contains(out.Bytes(), []byte("span SocialTube/42 (2 events)")) {
		t.Fatalf("span 42 not reconstructed:\n%s", s)
	}
	// Span ids restart per engine: the NetTube event with the same id
	// must not fold into the SocialTube chain.
	if !bytes.Contains(out.Bytes(), []byte("span NetTube/42 (1 events)")) {
		t.Fatalf("protocols sharing a span id were merged:\n%s", s)
	}
	// max bounds the span count.
	out.Reset()
	if n, err := PrettySpans(bytes.NewReader(in.Bytes()), &out, 1); err != nil || n != 1 {
		t.Fatalf("max=1 printed %d spans (err %v)", n, err)
	}
}
