package obs_test

// Counter-correctness tests: drive each protocol over a trace small enough
// that every counter value can be derived by hand from the protocol
// definitions, then assert the full counter block. Any accounting drift —
// a double-counted flood message, a lookup attributed to the wrong
// hierarchy level — fails these tests with the exact field that moved.

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/baseline"
	"github.com/socialtube/socialtube/internal/core"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// tinyTrace is one category, one channel with two videos (ids 0 and 1, most
// popular first), and two users A=0 and B=1, both subscribed to the channel.
func tinyTrace() *trace.Trace {
	mkVideo := func(id trace.VideoID, rank int) trace.Video {
		return trace.Video{
			ID: id, Channel: 0, Category: 0,
			Views: int64(100 / rank), Length: 4 * time.Minute, Rank: rank,
		}
	}
	return &trace.Trace{
		Categories: 1,
		Channels: []trace.Channel{{
			ID: 0, Primary: 0, Categories: []trace.CategoryID{0},
			Videos:      []trace.VideoID{0, 1},
			Subscribers: []trace.UserID{0, 1},
		}},
		Videos: []trace.Video{mkVideo(0, 1), mkVideo(1, 2)},
		Users: []trace.User{
			{ID: 0, Interests: []trace.CategoryID{0}, Subscriptions: []trace.ChannelID{0}},
			{ID: 1, Interests: []trace.CategoryID{0}, Subscriptions: []trace.ChannelID{0}},
		},
	}
}

const (
	nodeA = 0
	nodeB = 1
	v0    = trace.VideoID(0)
	v1    = trace.VideoID(1)
)

// driveChurnAndRequests runs the shared scenario skeleton: join both nodes,
// then the given request/finish schedule, then a graceful leave of A and an
// abrupt failure of B.
func driveChurn(p vod.Protocol, steps func()) {
	p.Join(nodeA)
	p.Join(nodeB)
	steps()
	p.Leave(nodeA)
	p.Fail(nodeB)
}

func requireCounters(t *testing.T, got, want obs.Counters) {
	t.Helper()
	if got == want {
		return
	}
	// Report the exact fields that moved, not two opaque structs.
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		if gv.Field(i).Uint() != wv.Field(i).Uint() {
			t.Errorf("%s = %d, want %d", gv.Type().Field(i).Name, gv.Field(i).Uint(), wv.Field(i).Uint())
		}
	}
	t.FailNow()
}

func TestSocialTubeCounters(t *testing.T) {
	sys, err := core.New(core.DefaultConfig(), tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tracer := obs.NewJSONL(&buf)
	sys.SetTracer(tracer)

	probeMsgs := 0
	driveChurn(sys, func() {
		// A requests v0: its channel flood finds nobody (no neighbours,
		// 0 messages, TTL exhausted), the category level is empty, the
		// server serves.
		if res := sys.Request(nodeA, v0); res.Source != vod.SourceServer {
			t.Fatalf("A req v0 = %+v, want server", res)
		}
		// A finishes v0 and prefetches the channel's top videos: only
		// v1's prefix is new.
		sys.Finish(nodeA, v0)
		// B requests v0: joining the channel overlay linked B to A, so
		// the flood hits A at hop 1 for exactly 1 message.
		if res := sys.Request(nodeB, v0); res.Source != vod.SourcePeer || res.Provider != nodeA || res.Hops != 1 {
			t.Fatalf("B req v0 = %+v, want peer A at hop 1", res)
		}
		sys.Finish(nodeB, v0)
		// B requests v1 with its prefix prefetched: the flood over the
		// B–A edge misses (2 messages: the query and its echo back),
		// and the server serves.
		res := sys.Request(nodeB, v1)
		if res.Source != vod.SourceServer || !res.PrefixCached {
			t.Fatalf("B req v1 = %+v, want server with prefix cached", res)
		}
		// B requests v0 again: a local cache hit, touching no level.
		if res := sys.Request(nodeB, v0); res.Source != vod.SourceCache {
			t.Fatalf("B req v0 again = %+v, want cache", res)
		}
		// One maintenance round on A probes its single live neighbour.
		probeMsgs = sys.Probe(nodeA)
	})

	if probeMsgs != 1 {
		t.Fatalf("probe sent %d messages, want 1 (A's only neighbour is B)", probeMsgs)
	}
	want := obs.Counters{
		LookupsChannel: 3, LookupsCategory: 2, LookupsServer: 2,
		HitsChannel:      1,
		FloodMsgsChannel: 3, // 0 (A misses alone) + 1 (B hits A) + 2 (B misses for v1)
		TTLExhausted:     2,
		Hops1:            1,
		RequestsCache:    1, RequestsPeer: 1, RequestsServer: 2,
		PrefetchHits: 1, PrefetchMisses: 2, PrefetchStored: 2,
		OverlayJoins: 2, OverlayLeaves: 1, OverlayFails: 1,
		ProbeMsgs: uint64(probeMsgs),
	}
	requireCounters(t, sys.ObsCounters().Snapshot(), want)

	// The emitted trace validates against the checked-in golden schema and
	// contains exactly the hand-counted events.
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	schema, err := obs.LoadSchemaFile(filepath.Join("testdata", "trace_schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	counts, err := schema.ValidateJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := map[string]int{
		"join": 2, "leave": 1, "fail": 1,
		"flood": 3, "serve": 4, "prefetch": 2, "probe": 1,
	}
	if !reflect.DeepEqual(counts, wantCounts) {
		t.Fatalf("trace event counts = %v, want %v", counts, wantCounts)
	}
}

func TestNetTubeCounters(t *testing.T) {
	nt, err := baseline.NewNetTube(baseline.DefaultNetTubeConfig(), tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	driveChurn(nt, func() {
		// A requests v0 fresh: no overlays joined, the server finds no
		// provider in v0's (empty) overlay and serves.
		if res := nt.Request(nodeA, v0); res.Source != vod.SourceServer {
			t.Fatalf("A req v0 = %+v, want server", res)
		}
		// A finishes v0; it has no neighbours, so nothing prefetches.
		nt.Finish(nodeA, v0)
		// B requests v0 fresh: the server directs it to A (server-level
		// assist, one contact message).
		if res := nt.Request(nodeB, v0); res.Source != vod.SourcePeer || res.Provider != nodeA {
			t.Fatalf("B req v0 = %+v, want server-directed peer A", res)
		}
		// B finishes v0; its only neighbour A caches only v0, which B
		// just watched — nothing prefetches.
		nt.Finish(nodeB, v0)
		// B requests v1 with overlay links: the cross-overlay flood
		// misses over the B–A edge (2 messages), the server serves.
		if res := nt.Request(nodeB, v1); res.Source != vod.SourceServer || res.PrefixCached {
			t.Fatalf("B req v1 = %+v, want server without prefix", res)
		}
	})
	want := obs.Counters{
		LookupsChannel: 1, LookupsServer: 3,
		HitsServerAssist: 1,
		FloodMsgsChannel: 2, FloodMsgsServer: 1,
		TTLExhausted:     1,
		Hops1:            1,
		RequestsPeer:     1, RequestsServer: 2,
		PrefetchMisses: 3,
		OverlayJoins:   2, OverlayLeaves: 1, OverlayFails: 1,
	}
	requireCounters(t, nt.ObsCounters().Snapshot(), want)
}

func TestPAVoDCounters(t *testing.T) {
	pa, err := baseline.NewPAVoD(baseline.PAVoDConfig{Seed: 1}, tinyTrace())
	if err != nil {
		t.Fatal(err)
	}
	driveChurn(pa, func() {
		// A requests v0: nobody watches it yet, the server serves.
		if res := pa.Request(nodeA, v0); res.Source != vod.SourceServer {
			t.Fatalf("A req v0 = %+v, want server", res)
		}
		// B requests v0 while A still watches it: server-directed
		// assist from the concurrent watcher.
		if res := pa.Request(nodeB, v0); res.Source != vod.SourcePeer || res.Provider != nodeA {
			t.Fatalf("B req v0 = %+v, want watcher A", res)
		}
		pa.Finish(nodeA, v0)
		// B requests v1: no watchers (PA-VoD has no cache), server again.
		if res := pa.Request(nodeB, v1); res.Source != vod.SourceServer {
			t.Fatalf("B req v1 = %+v, want server", res)
		}
	})
	want := obs.Counters{
		LookupsServer: 3, FloodMsgsServer: 3,
		HitsServerAssist: 1,
		Hops1:            1,
		RequestsPeer:     1, RequestsServer: 2,
		PrefetchMisses: 3,
		OverlayJoins:   2, OverlayLeaves: 1, OverlayFails: 1,
	}
	requireCounters(t, pa.ObsCounters().Snapshot(), want)
}
