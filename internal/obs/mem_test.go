package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestMemWatermarkSamples pins the sampler contract: Sample always
// observes the heap, the high-water mark never decreases, and Tick only
// samples on its power-of-two boundaries.
func TestMemWatermarkSamples(t *testing.T) {
	m := NewMemWatermark(4)
	if m.HighWater() != 0 {
		t.Fatal("fresh watermark already has a high-water mark")
	}
	got := m.Sample()
	if got == 0 {
		t.Fatal("Sample read a zero heap")
	}
	if hw := m.HighWater(); hw < got {
		t.Fatalf("high water %d below last sample %d", hw, got)
	}
	before := m.HighWater()
	for i := 0; i < 64; i++ {
		m.Tick()
	}
	if m.HighWater() < before {
		t.Fatal("high-water mark decreased")
	}
}

// TestMemWatermarkPeriodRounding: any requested period becomes the next
// power of two, minimum 1 (every Tick samples).
func TestMemWatermarkPeriodRounding(t *testing.T) {
	for _, tc := range []struct {
		every int
		mask  uint64
	}{{0, 0}, {1, 0}, {3, 3}, {4, 3}, {5, 7}, {4096, 4095}} {
		if m := NewMemWatermark(tc.every); m.mask != tc.mask {
			t.Errorf("NewMemWatermark(%d).mask = %d, want %d", tc.every, m.mask, tc.mask)
		}
	}
}

// TestMemUsageJSONDeterministic pins the serialization split: the
// deterministic fields marshal, the environmental heap watermark does
// not, so same-seed results containing a MemUsage stay byte-identical.
func TestMemUsageJSONDeterministic(t *testing.T) {
	u := MemUsage{TraceBytes: 1000, BytesPerUser: 2.5, HeapHighWater: 12345}
	b, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"traceBytes":1000`) || !strings.Contains(s, `"bytesPerUser":2.5`) {
		t.Fatalf("deterministic fields missing: %s", s)
	}
	if strings.Contains(s, "12345") || strings.Contains(strings.ToLower(s), "heap") {
		t.Fatalf("environmental heap watermark leaked into JSON: %s", s)
	}
}
