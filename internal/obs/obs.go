// Package obs is the zero-overhead-when-disabled observability layer: dense
// protocol counters, an event tracer and a tiny HTTP metrics server. The
// protocols (internal/core, internal/baseline), the experiment engine
// (internal/exp) and the TCP emulation (internal/emu) all report through the
// types in this package so every run can explain *why* it produced its
// numbers — hop counts, TTL exhaustion, prefetch hits versus server
// fallbacks, overlay churn.
//
// Design rules:
//
//   - Counters are a plain struct of uint64 fields. The single-threaded
//     simulator increments them with ordinary ++; the multi-goroutine
//     emulation uses atomic.AddUint64 on the same fields. Snapshot reads
//     every field atomically, so a snapshot taken while an emulation runs is
//     field-wise consistent.
//   - Tracing is an interface with nil meaning disabled. Call sites guard
//     every Emit with a nil check, so a disabled tracer costs one predictable
//     branch and zero allocations on the hot paths (guarded by
//     BenchmarkRequestTraced and the alloc tests).
package obs

import (
	"reflect"
	"sync/atomic"
)

// Counters is the dense per-protocol counter block. Field order is the JSON
// field order (encoding/json emits struct fields in declaration order), so
// marshalled snapshots are byte-stable across runs — a requirement of the
// figure runner's determinism tests.
//
// Lookup levels follow the paper's hierarchy: a request first floods the
// node's channel overlay (channel level), then its interest-category cluster
// (category level), and finally consults the server (server level), which
// may still rescue the request with a recommended peer ("server assist")
// before serving the video itself. For the baselines the levels degenerate:
// NetTube's cross-overlay flood counts as channel level and its
// server-directed provider lookup as server level; PA-VoD only ever has
// server-level lookups.
type Counters struct {
	// Lookup attempts and hits by hierarchy level.
	LookupsChannel   uint64 `json:"lookupsChannel"`
	LookupsCategory  uint64 `json:"lookupsCategory"`
	LookupsServer    uint64 `json:"lookupsServer"`
	HitsChannel      uint64 `json:"hitsChannel"`
	HitsCategory     uint64 `json:"hitsCategory"`
	HitsServerAssist uint64 `json:"hitsServerAssist"`
	// Flood message volume by level, plus floods that ran out of TTL (or
	// of reachable neighbours) without a match.
	FloodMsgsChannel  uint64 `json:"floodMsgsChannel"`
	FloodMsgsCategory uint64 `json:"floodMsgsCategory"`
	FloodMsgsServer   uint64 `json:"floodMsgsServer"`
	TTLExhausted      uint64 `json:"ttlExhausted"`
	// Hops histogram of successful peer lookups (AddHops).
	Hops1    uint64 `json:"hops1"`
	Hops2    uint64 `json:"hops2"`
	Hops3    uint64 `json:"hops3"`
	Hops4    uint64 `json:"hops4"`
	HopsMore uint64 `json:"hopsMore"`
	// Request outcomes by source.
	RequestsCache  uint64 `json:"requestsCache"`
	RequestsPeer   uint64 `json:"requestsPeer"`
	RequestsServer uint64 `json:"requestsServer"`
	// Prefetching: requests that arrived with/without the first chunk
	// already local, and prefixes stored by Finish.
	PrefetchHits   uint64 `json:"prefetchHits"`
	PrefetchMisses uint64 `json:"prefetchMisses"`
	PrefetchStored uint64 `json:"prefetchStored"`
	// Overlay churn and maintenance.
	OverlayJoins  uint64 `json:"overlayJoins"`
	OverlayLeaves uint64 `json:"overlayLeaves"`
	OverlayFails  uint64 `json:"overlayFails"`
	LinksPruned   uint64 `json:"linksPruned"`
	ProbeMsgs     uint64 `json:"probeMsgs"`
	// Chunk delivery split, filled by the driver that knows chunk counts
	// (the experiment runner or the emu tracker/peers).
	ChunksPeer   uint64 `json:"chunksPeer"`
	ChunksServer uint64 `json:"chunksServer"`
	// Active self-repair under fault injection (internal/faults):
	// repair rounds run after detected crashes, replacement links
	// created by those rounds, and prefetch prefixes re-seeded when a
	// crashed node rejoins.
	RepairCalls     uint64 `json:"repairCalls"`
	RepairedLinks   uint64 `json:"repairedLinks"`
	PrefetchReseeds uint64 `json:"prefetchReseeds"`
	// Resilient delivery: provider handoffs on mid-stream failure.
	// HandoffAttempts counts candidate switches tried, Handoffs the ones
	// that resumed the download from the last received chunk, and
	// HandoffServerRescues the downloads the server had to complete after
	// every candidate (and a re-query) failed.
	HandoffAttempts      uint64 `json:"handoffAttempts"`
	Handoffs             uint64 `json:"handoffs"`
	HandoffServerRescues uint64 `json:"handoffServerRescues"`
	// Per-peer circuit breakers (internal/health): closed→open
	// transitions, calls short-circuited by an open breaker, half-open
	// probation probes, and probes that closed the breaker again.
	BreakerOpens      uint64 `json:"breakerOpens"`
	BreakerSkips      uint64 `json:"breakerSkips"`
	BreakerProbes     uint64 `json:"breakerProbes"`
	BreakerRecoveries uint64 `json:"breakerRecoveries"`
	// Wire hardening: frames that failed to decode (bad length prefix,
	// truncated body, invalid JSON), frames that decoded but failed strict
	// field validation, and tracker-path RPCs that exhausted their retry
	// budget.
	FramesMalformed uint64 `json:"framesMalformed"`
	FramesRejected  uint64 `json:"framesRejected"`
	RPCFailures     uint64 `json:"rpcFailures"`
	// Frame-level chaos injected by the emu transport (faults.ChaosBurst):
	// responses corrupted, truncated, duplicated or stalled on the wire.
	ChaosCorrupted  uint64 `json:"chaosCorrupted"`
	ChaosTruncated  uint64 `json:"chaosTruncated"`
	ChaosDuplicated uint64 `json:"chaosDuplicated"`
	ChaosStalled    uint64 `json:"chaosStalled"`
	// Bounded server admission queue (open-loop load engine):
	// server-sourced requests admitted to the queue, and requests shed
	// on arrival with the queue full.
	ServerAdmitted uint64 `json:"serverAdmitted"`
	ServerShed     uint64 `json:"serverShed"`
	// Partition-tolerant control plane (whole-shard takeover): shard
	// death/revival verdicts observed per tracker replica, requests a
	// peer rerouted to a takeover owner, home channels re-registered
	// after an epoch change, and hinted-handoff writes queued for an
	// unreachable replica / replayed after heal.
	ShardsDeclaredDead uint64 `json:"shardsDeclaredDead"`
	ShardsRevived      uint64 `json:"shardsRevived"`
	TakeoverReroutes   uint64 `json:"takeoverReroutes"`
	TakeoverRejoins    uint64 `json:"takeoverRejoins"`
	HintsQueued        uint64 `json:"hintsQueued"`
	HintsReplayed      uint64 `json:"hintsReplayed"`
}

// Merge adds every field of o into c (plain addition, not atomic). Used by
// the emu cluster to fold tracker and per-peer counter blocks into one
// result snapshot; call on snapshots when writers may still be running.
func (c *Counters) Merge(o Counters) {
	dst := reflect.ValueOf(c).Elem()
	src := reflect.ValueOf(&o).Elem()
	for i := 0; i < dst.NumField(); i++ {
		dst.Field(i).SetUint(dst.Field(i).Uint() + src.Field(i).Uint())
	}
}

// AddHops records one successful peer lookup at the given hop distance.
func (c *Counters) AddHops(h int) {
	switch {
	case h <= 1:
		c.Hops1++
	case h == 2:
		c.Hops2++
	case h == 3:
		c.Hops3++
	case h == 4:
		c.Hops4++
	default:
		c.HopsMore++
	}
}

// Snapshot returns a copy of the counters with every field read atomically —
// safe to call while emu goroutines keep incrementing. Not a hot path.
func (c *Counters) Snapshot() Counters {
	var out Counters
	src := reflect.ValueOf(c).Elem()
	dst := reflect.ValueOf(&out).Elem()
	for i := 0; i < src.NumField(); i++ {
		p := src.Field(i).Addr().Interface().(*uint64)
		dst.Field(i).SetUint(atomic.LoadUint64(p))
	}
	return out
}

// CounterRow is one (name, value) pair of a counter snapshot.
type CounterRow struct {
	Name  string
	Value uint64
}

// Rows returns the counters as (name, value) pairs in declaration order,
// named by their JSON tags — the stable row order the figure summaries use.
// Values are read non-atomically; call on a Snapshot when racing writers.
func (c *Counters) Rows() []CounterRow {
	v := reflect.ValueOf(c).Elem()
	t := v.Type()
	out := make([]CounterRow, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		out = append(out, CounterRow{
			Name:  t.Field(i).Tag.Get("json"),
			Value: v.Field(i).Uint(),
		})
	}
	return out
}

// Instrumented is implemented by protocols that expose dense counters.
type Instrumented interface {
	// ObsCounters returns the protocol's live counter block. The pointer
	// stays valid for the protocol's lifetime; drivers may add their own
	// accounting (e.g. chunk counts) through it.
	ObsCounters() *Counters
}

// Traceable is implemented by components that accept an event tracer.
type Traceable interface {
	// SetTracer installs the tracer (nil disables tracing).
	SetTracer(Tracer)
}
