package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestSchemaV1TracesStillValidate: the schema bump (span field, query/
// handoff/rescue kinds) is strictly additive — a trace written before
// the span field existed must still pass validation untouched.
func TestSchemaV1TracesStillValidate(t *testing.T) {
	s, err := GoldenSchema()
	if err != nil {
		t.Fatal(err)
	}
	v1 := strings.Join([]string{
		`{"t":1000,"proto":"SocialTube","kind":"flood","node":3,"video":7,"provider":-1,"level":"channel","ok":true,"hops":2,"msgs":5}`,
		`{"t":2000,"proto":"SocialTube","kind":"serve","node":3,"video":7,"provider":9,"source":"peer","hops":2,"msgs":5}`,
		`{"t":3000,"proto":"NetTube","kind":"join","node":4,"video":-1,"provider":-1}`,
		`{"t":4000,"proto":"PA-VoD","kind":"probe","node":5,"video":-1,"provider":-1,"msgs":3}`,
	}, "\n") + "\n"
	counts, err := s.ValidateJSONL(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 trace rejected by v2 schema: %v", err)
	}
	if counts["flood"] != 1 || counts["serve"] != 1 || counts["join"] != 1 || counts["probe"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestSchemaV2SpansAndNewKinds: span-stamped events and the new causal-
// chain kinds validate; an unknown field still fails.
func TestSchemaV2SpansAndNewKinds(t *testing.T) {
	s, err := GoldenSchema()
	if err != nil {
		t.Fatal(err)
	}
	v2 := strings.Join([]string{
		`{"t":1000,"proto":"SocialTube","kind":"flood","node":3,"video":7,"provider":-1,"level":"channel","ok":true,"hops":2,"msgs":5,"span":77}`,
		`{"t":1500,"proto":"SocialTube","kind":"query","node":3,"video":7,"provider":-1,"ok":true,"hops":1,"msgs":2,"span":77}`,
		`{"t":2000,"proto":"SocialTube","kind":"serve","node":3,"video":7,"provider":9,"source":"peer","hops":2,"msgs":5,"span":77}`,
		`{"t":2500,"proto":"SocialTube","kind":"handoff","node":3,"video":7,"provider":10,"ok":true,"span":77}`,
		`{"t":3000,"proto":"SocialTube","kind":"rescue","node":3,"video":7,"provider":-1,"source":"server","span":77}`,
	}, "\n") + "\n"
	counts, err := s.ValidateJSONL(strings.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 trace rejected: %v", err)
	}
	if counts["query"] != 1 || counts["handoff"] != 1 || counts["rescue"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	bad := `{"t":1,"proto":"x","kind":"flood","node":1,"video":-1,"provider":-1,"bogus":1}` + "\n"
	if _, err := s.ValidateJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestServeMetricsProm scrapes `GET /metrics?format=prom` and checks the
// exposition parses as well-formed lines for at least one counter and
// one histogram — the acceptance pin for the Prometheus surface.
func TestServeMetricsProm(t *testing.T) {
	var c Counters
	c.RequestsPeer = 5
	var h Hist
	h.Add(12)
	h.Add(340)
	srv, err := ServeMetrics("127.0.0.1:0", func() any { return c.Snapshot() }, func(w io.Writer) {
		WritePromCounters(w, "socialtube", &c)
		WritePromHist(w, "socialtube_startup_delay_ms", &h)
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := httpGet(t, "http://"+srv.Addr()+"/metrics?format=prom", http.StatusOK)
	var counterLine, histBucket, histCount bool
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		switch {
		case fields[0] == "socialtube_requests_peer_total" && fields[1] == "5":
			counterLine = true
		case strings.HasPrefix(fields[0], "socialtube_startup_delay_ms_bucket{le="):
			histBucket = true
		case fields[0] == "socialtube_startup_delay_ms_count" && fields[1] == "2":
			histCount = true
		}
	}
	if !counterLine || !histBucket || !histCount {
		t.Fatalf("prom exposition missing counter=%v bucket=%v count=%v:\n%s",
			counterLine, histBucket, histCount, body)
	}
	// The JSON view is untouched by the prom branch.
	jsonBody := httpGet(t, "http://"+srv.Addr()+"/metrics", http.StatusOK)
	if !strings.Contains(string(jsonBody), "requestsPeer") {
		t.Fatalf("JSON view broken: %s", jsonBody)
	}
}
