package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistExactStats(t *testing.T) {
	var h Hist
	if h.Len() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty hist should report zeros everywhere")
	}
	vals := []float64{3, 1, 4, 1.5, 9, 2.6, 5, 3.5}
	sum := 0.0
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if h.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(vals))
	}
	if got := h.Mean(); math.Abs(got-sum/float64(len(vals))) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want exact 1/9", h.Min(), h.Max())
	}
	if h.Percentile(0) != 1 || h.Percentile(100) != 9 {
		t.Fatal("percentile endpoints must be the exact min/max")
	}
}

// TestHistQuantileAccuracy: with 32 sub-buckets per octave the relative
// quantile error against an exact sorted-sample quantile stays within a
// few percent across three orders of magnitude.
func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	n := 10_000
	for i := 1; i <= n; i++ {
		h.Add(float64(i)) // uniform 1..n
	}
	for _, p := range []float64{1, 25, 50, 75, 90, 99} {
		exact := p / 100 * float64(n)
		got := h.Percentile(p)
		if rel := math.Abs(got-exact) / exact; rel > 0.04 {
			t.Fatalf("p%v = %v, exact %v (rel err %.3f)", p, got, exact, rel)
		}
	}
	// Monotonic in p.
	prev := -1.0
	for p := 0.0; p <= 100; p += 0.5 {
		q := h.Percentile(p)
		if q < prev {
			t.Fatalf("quantiles not monotonic: p%v=%v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestHistZeroAndNegative(t *testing.T) {
	var h Hist
	h.Add(0) // a prefix-cached request's startup delay
	h.Add(0)
	h.Add(10)
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want exact 0", h.Min())
	}
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("p50 = %v, want 0 (two of three observations are 0)", got)
	}
	if got := h.Percentile(99); math.Abs(got-10) > 0.4 {
		t.Fatalf("p99 = %v, want ~10", got)
	}
}

func TestHistAddDurationIsMilliseconds(t *testing.T) {
	var h Hist
	h.AddDuration(1500 * time.Millisecond)
	if got := h.Mean(); got != 1500 {
		t.Fatalf("AddDuration(1.5s) mean = %v ms, want 1500", got)
	}
}

// TestHistMergeMatchesDirect: merging shard histograms must equal one
// histogram that observed every value directly — byte-for-byte in JSON.
func TestHistMergeMatchesDirect(t *testing.T) {
	var all, a, b Hist
	for i := 0; i < 1000; i++ {
		// Dyadic values add exactly in any order, so the merged sum is
		// bit-identical to the direct sum.
		v := float64(i%97) * 0.25
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	allj, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, allj) {
		t.Fatalf("merged != direct\nmerged: %s\ndirect: %s", aj, allj)
	}
	// Merging an empty or nil histogram is a no-op.
	before := a.Summary()
	a.Merge(&Hist{})
	a.Merge(nil)
	if a.Summary() != before {
		t.Fatal("merging empty/nil changed the histogram")
	}
}

func TestHistJSONShape(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(2)
	h.Add(250)
	buf, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "mean", "p50", "p99", "min", "max", "zeros", "buckets"} {
		if _, ok := got[k]; !ok {
			t.Fatalf("hist JSON missing %q: %s", k, buf)
		}
	}
	if got["count"].(float64) != 3 || got["zeros"].(float64) != 1 {
		t.Fatalf("hist JSON counts wrong: %s", buf)
	}
}

// TestHistBoundedMemoryAtScale is the metrics.Sample replacement
// regression pin: one million observations — the 1M-user scale sweep's
// per-request startup-delay volume — must not grow the histogram at all.
// metrics.Sample would hold 8 MB of float64s here (plus the sorted
// copy); the histogram stays at its fixed footprint.
func TestHistBoundedMemoryAtScale(t *testing.T) {
	var h Hist
	for i := 0; i < 1_000_000; i++ {
		h.Add(float64(i%100_000) / 3.0)
	}
	if h.Len() != 1_000_000 {
		t.Fatalf("Len = %d", h.Len())
	}
	// The struct is fixed-size by construction; pin that the JSON stays
	// compact too (sparse buckets, not observations).
	buf, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 64<<10 {
		t.Fatalf("hist JSON is %d bytes for 1M observations; the encoding must be O(buckets)", len(buf))
	}
}

func TestHistEachBucketCumulative(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.Add(100)
	var lastLE float64 = -1
	var lastCum uint64
	calls := 0
	h.EachBucket(func(le float64, cum uint64) {
		calls++
		if le <= lastLE {
			t.Fatalf("bucket bounds not increasing: %v after %v", le, lastLE)
		}
		if cum < lastCum {
			t.Fatalf("cumulative counts decreasing: %d after %d", cum, lastCum)
		}
		lastLE, lastCum = le, cum
	})
	if calls != 3 { // zeros, ~1, ~100
		t.Fatalf("EachBucket visited %d buckets, want 3", calls)
	}
	if lastCum != 4 {
		t.Fatalf("final cumulative %d, want 4", lastCum)
	}
}

func TestWritePromHistAndCounters(t *testing.T) {
	var h Hist
	h.Add(3)
	h.Add(700)
	var buf bytes.Buffer
	WritePromHist(&buf, "socialtube_startup_delay_ms", &h)
	out := buf.String()
	for _, want := range []string{
		"# TYPE socialtube_startup_delay_ms histogram",
		`socialtube_startup_delay_ms_bucket{le="+Inf"} 2`,
		"socialtube_startup_delay_ms_sum 703",
		"socialtube_startup_delay_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom hist missing %q:\n%s", want, out)
		}
	}

	var c Counters
	c.RequestsPeer = 7
	buf.Reset()
	WritePromCounters(&buf, "socialtube", &c)
	out = buf.String()
	if !strings.Contains(out, "socialtube_requests_peer_total 7") {
		t.Fatalf("prom counters missing requests_peer line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE socialtube_requests_peer_total counter") {
		t.Fatalf("prom counters missing TYPE line:\n%s", out)
	}
}
