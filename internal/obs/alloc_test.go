// Alloc assertions are meaningless under the race detector (its
// instrumentation allocates), so this file is build-tagged out of -race runs.

//go:build !race

package obs

import (
	"testing"
	"time"
)

// TestHistObserveAllocFree pins the histogram's zero-allocation
// contract: the buckets are inline in the struct, so recording — even a
// million observations — allocates nothing.
func TestHistObserveAllocFree(t *testing.T) {
	var h Hist
	i := 0
	avg := testing.AllocsPerRun(100_000, func() {
		i++
		h.Add(float64(i % 10_000))
	})
	if avg != 0 {
		t.Fatalf("Hist.Add allocates %.2f allocs/op, want 0", avg)
	}
}

// TestTimelineRecordAllocFree pins the timeline hot path: once a window
// exists, Add and Observe into it allocate nothing; growth to new
// windows amortizes below one alloc per recorded point even when the
// clock sweeps hundreds of windows.
func TestTimelineRecordAllocFree(t *testing.T) {
	tl := NewTimeline(time.Second)
	req := tl.Counter("requests")
	del := tl.Hist("startupMs")
	// Warm: materialize the windows the loop below will touch.
	req.Add(512*time.Second, 0)
	del.Observe(512*time.Second, 1)
	for w := 0; w <= 512; w++ {
		del.Observe(time.Duration(w)*time.Second, 1)
	}
	i := 0
	avg := testing.AllocsPerRun(100_000, func() {
		i++
		at := time.Duration(i%512) * time.Second
		req.Add(at, 1)
		del.Observe(at, float64(i%1000))
	})
	if avg != 0 {
		t.Fatalf("timeline record path allocates %.2f allocs/op in steady state, want 0", avg)
	}
}
