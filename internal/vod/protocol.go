package vod

import (
	"github.com/socialtube/socialtube/internal/trace"
)

// Source says where a requested video was obtained.
type Source int

// Request sources.
const (
	// SourceCache means the node already held the full video locally.
	SourceCache Source = iota + 1
	// SourcePeer means another peer supplied the video.
	SourcePeer
	// SourceServer means the central server supplied the video.
	SourceServer
)

// String returns the source name.
func (s Source) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourcePeer:
		return "peer"
	case SourceServer:
		return "server"
	default:
		return "unknown"
	}
}

// RequestResult describes how a protocol located one requested video.
type RequestResult struct {
	// Source is where the video came from.
	Source Source
	// Provider is the peer that serves the video when Source is
	// SourcePeer.
	Provider int
	// Hops is the number of overlay hops the successful query travelled
	// (0 for cache hits and direct server requests).
	Hops int
	// Messages is the number of query messages sent while searching.
	Messages int
	// PrefixCached reports that the node already held the video's first
	// chunk (a prefetch hit), eliminating the startup delay.
	PrefixCached bool
	// Span is the request's trace span id: every obs.Event in this
	// request's causal chain carries it, and the sharded runner passes
	// it across cell boundaries so a remote lookup's events link back to
	// the originating request. 0 when the protocol does not assign spans.
	Span uint64
}

// Protocol is the contract every P2P VoD scheme implements over the
// simulator: SocialTube (internal/core) and the NetTube / PA-VoD baselines
// (internal/baseline). The experiment engine (internal/exp) drives these
// callbacks and layers network timing on top.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Join brings a node online at the start of a session.
	Join(node int)
	// Leave takes a node offline at the end of a session (graceful
	// departure: neighbours may clean up immediately).
	Leave(node int)
	// Fail takes a node offline abruptly: neighbours discover the loss
	// only via maintenance probes.
	Fail(node int)
	// Request locates the given video for the node.
	Request(node int, v trace.VideoID) RequestResult
	// Finish records that the node completed watching the video; the
	// protocol updates caches, overlay links and prefetches here.
	Finish(node int, v trace.VideoID)
	// Links returns the node's current maintenance overhead measured, as
	// in the paper, by the number of overlay links it must maintain.
	Links(node int) int
}
