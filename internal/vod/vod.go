// Package vod holds the video-on-demand abstractions shared by every
// protocol: chunked videos, the session cache peers serve from, and the
// viewing-behaviour model that drives trace-driven experiments.
package vod

import (
	"fmt"
	"sync"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/trace"
)

// DefaultBitrateBps is the average YouTube video bitrate the paper cites
// (330 kbps per Cheng et al.; Table I uses 320 kbps).
const DefaultBitrateBps = 320_000

// DefaultChunksPerVideo is Table I's chunk count per video.
const DefaultChunksPerVideo = 2

// Chunk identifies one piece of a video.
type Chunk struct {
	Video trace.VideoID `json:"video"`
	Index int           `json:"index"`
}

// ChunkBytes returns the size in bytes of one chunk of a video of the given
// length at the given bitrate, split into chunks equal parts.
func ChunkBytes(length time.Duration, bitrateBps int64, chunks int) int64 {
	if chunks <= 0 || length <= 0 || bitrateBps <= 0 {
		return 0
	}
	total := int64(length.Seconds() * float64(bitrateBps) / 8)
	return total / int64(chunks)
}

// Cache is a peer's video store. The paper's protocols cache every video
// watched during a session (NetTube, SocialTube) plus prefetched first
// chunks; MaxVideos=0 reproduces that unbounded session cache, while a
// positive bound turns it into an LRU cache for the ablation benches.
type Cache struct {
	maxVideos int
	full      map[trace.VideoID]bool
	prefix    map[trace.VideoID]bool
	order     []trace.VideoID // LRU order of full videos, oldest first
}

// NewCache returns a cache bounded to maxVideos full videos (0 = unbounded).
func NewCache(maxVideos int) *Cache {
	return &Cache{
		maxVideos: maxVideos,
		full:      make(map[trace.VideoID]bool),
		prefix:    make(map[trace.VideoID]bool),
	}
}

// AddFull stores a complete video, evicting the least recently used video
// if the bound is exceeded. Storing a full video supersedes its prefix.
func (c *Cache) AddFull(v trace.VideoID) {
	if c.full[v] {
		c.touch(v)
		return
	}
	c.full[v] = true
	c.order = append(c.order, v)
	delete(c.prefix, v)
	if c.maxVideos > 0 && len(c.full) > c.maxVideos {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.full, oldest)
	}
}

func (c *Cache) touch(v trace.VideoID) {
	for i, id := range c.order {
		if id == v {
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.order = append(c.order, v)
			return
		}
	}
}

// AddPrefix stores only the first chunk of a video (a prefetch). A prefix
// never evicts full videos; prefetched chunks are tiny (~15 KB per the
// paper) so they are not counted against the video bound.
func (c *Cache) AddPrefix(v trace.VideoID) {
	if c.full[v] {
		return
	}
	c.prefix[v] = true
}

// HasFull reports whether the complete video is cached.
func (c *Cache) HasFull(v trace.VideoID) bool { return c.full[v] }

// HasPrefix reports whether at least the first chunk is cached.
func (c *Cache) HasPrefix(v trace.VideoID) bool { return c.full[v] || c.prefix[v] }

// FullLen returns the number of complete videos cached.
func (c *Cache) FullLen() int { return len(c.full) }

// PrefixLen returns the number of prefix-only entries.
func (c *Cache) PrefixLen() int { return len(c.prefix) }

// FullVideos returns the ids of all fully cached videos (copy).
func (c *Cache) FullVideos() []trace.VideoID {
	out := make([]trace.VideoID, len(c.order))
	copy(out, c.order)
	return out
}

// Clear empties the cache.
func (c *Cache) Clear() {
	c.full = make(map[trace.VideoID]bool)
	c.prefix = make(map[trace.VideoID]bool)
	c.order = nil
}

// Behavior holds the probabilities of the paper's video-selection mechanism
// (§V): when choosing the next video, a node picks from the same channel
// with PSameChannel, the same category with PSameCategory, and anywhere
// else with the remainder.
type Behavior struct {
	PSameChannel  float64
	PSameCategory float64
}

// DefaultBehavior is the paper's 75% / 15% / 10% split.
func DefaultBehavior() Behavior {
	return Behavior{PSameChannel: 0.75, PSameCategory: 0.15}
}

// Validate reports the first problem with the behaviour probabilities.
func (b Behavior) Validate() error {
	if b.PSameChannel < 0 || b.PSameCategory < 0 || b.PSameChannel+b.PSameCategory > 1 {
		return fmt.Errorf("%w: behavior %+v", dist.ErrBadParameter, b)
	}
	return nil
}

// Picker selects videos according to the behaviour model over a trace. It
// precomputes popularity indexes so repeated picks are cheap.
type Picker struct {
	tr       *trace.Trace
	behavior Behavior
	// Per-category video lists and weights.
	byCat        [][]trace.VideoID
	byCatWeights [][]float64
	allWeights   []float64
	// zipfBySize caches Zipf samplers keyed by channel size; building
	// the CDF is O(n) and channel sizes repeat constantly. zipfMu guards
	// the cache: the emulator shares one Picker across peer goroutines.
	zipfMu     sync.Mutex
	zipfBySize map[int]*dist.Zipf
}

// NewPicker builds a picker over the trace with the given behaviour.
func NewPicker(tr *trace.Trace, b Behavior) (*Picker, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || len(tr.Videos) == 0 {
		return nil, fmt.Errorf("%w: picker needs a non-empty trace", dist.ErrBadParameter)
	}
	p := &Picker{
		tr:           tr,
		behavior:     b,
		byCat:        make([][]trace.VideoID, tr.Categories),
		byCatWeights: make([][]float64, tr.Categories),
		allWeights:   make([]float64, len(tr.Videos)),
		zipfBySize:   make(map[int]*dist.Zipf),
	}
	for i, v := range tr.Videos {
		p.allWeights[i] = float64(v.Views)
		c := int(v.Category)
		if c >= 0 && c < tr.Categories {
			p.byCat[c] = append(p.byCat[c], v.ID)
			p.byCatWeights[c] = append(p.byCatWeights[c], float64(v.Views))
		}
	}
	return p, nil
}

// First picks a session's first video: a popularity-weighted draw from the
// user's subscribed channels, falling back to a global draw when the user
// has no subscriptions.
func (p *Picker) First(g *dist.RNG, u *trace.User) trace.VideoID {
	if u != nil && len(u.Subscriptions) > 0 {
		ch := p.tr.Channel(u.Subscriptions[g.Intn(len(u.Subscriptions))])
		if ch != nil && len(ch.Videos) > 0 {
			return p.fromChannel(g, ch)
		}
	}
	return p.global(g)
}

// Next picks the video to watch after current using the 75/15/10 rule.
func (p *Picker) Next(g *dist.RNG, current trace.VideoID) trace.VideoID {
	v := p.tr.Video(current)
	if v == nil {
		return p.global(g)
	}
	u := g.Float64()
	switch {
	case u < p.behavior.PSameChannel:
		if ch := p.tr.Channel(v.Channel); ch != nil && len(ch.Videos) > 1 {
			return p.fromChannel(g, ch)
		}
	case u < p.behavior.PSameChannel+p.behavior.PSameCategory:
		if picked, ok := p.fromCategory(g, v.Category); ok {
			return picked
		}
	default:
		// A different category, if one exists.
		if p.tr.Categories > 1 {
			for attempts := 0; attempts < 10; attempts++ {
				c := trace.CategoryID(g.Intn(p.tr.Categories))
				if c == v.Category {
					continue
				}
				if picked, ok := p.fromCategory(g, c); ok {
					return picked
				}
			}
		}
	}
	return p.global(g)
}

// fromChannel draws a video from the channel, Zipf-weighted by rank — the
// within-channel popularity distribution of Fig. 9.
func (p *Picker) fromChannel(g *dist.RNG, ch *trace.Channel) trace.VideoID {
	p.zipfMu.Lock()
	z, ok := p.zipfBySize[len(ch.Videos)]
	if !ok {
		var err error
		z, err = dist.NewZipf(len(ch.Videos), 1)
		if err != nil {
			p.zipfMu.Unlock()
			return ch.Videos[0]
		}
		p.zipfBySize[len(ch.Videos)] = z
	}
	p.zipfMu.Unlock()
	return ch.Videos[z.Sample(g)-1]
}

func (p *Picker) fromCategory(g *dist.RNG, c trace.CategoryID) (trace.VideoID, bool) {
	ci := int(c)
	if ci < 0 || ci >= len(p.byCat) || len(p.byCat[ci]) == 0 {
		return 0, false
	}
	idx := dist.WeightedChoice(g, p.byCatWeights[ci])
	if idx < 0 {
		return 0, false
	}
	return p.byCat[ci][idx], true
}

func (p *Picker) global(g *dist.RNG) trace.VideoID {
	idx := dist.WeightedChoice(g, p.allWeights)
	if idx < 0 {
		return p.tr.Videos[g.Intn(len(p.tr.Videos))].ID
	}
	return p.tr.Videos[idx].ID
}

// SessionPlan is one user session: which videos get watched and when the
// node goes back offline.
type SessionPlan struct {
	Videos  []trace.VideoID
	OffTime time.Duration
}

// PlanSession builds a session of nVideos views for the user, with an
// exponentially distributed off-time afterwards (the paper's Poisson
// session-arrival model, mean 500 s in simulation).
func (p *Picker) PlanSession(g *dist.RNG, u *trace.User, nVideos int, meanOff time.Duration) SessionPlan {
	plan := SessionPlan{
		Videos:  make([]trace.VideoID, 0, nVideos),
		OffTime: time.Duration(dist.Exponential(g, float64(meanOff))),
	}
	if nVideos <= 0 {
		return plan
	}
	cur := p.First(g, u)
	plan.Videos = append(plan.Videos, cur)
	for len(plan.Videos) < nVideos {
		cur = p.Next(g, cur)
		plan.Videos = append(plan.Videos, cur)
	}
	return plan
}
