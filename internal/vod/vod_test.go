package vod

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/trace"
)

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 11
	cfg.Channels = 80
	cfg.Users = 400
	cfg.Categories = 10
	cfg.MaxInterestsPerUser = 10
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestChunkBytes(t *testing.T) {
	tests := []struct {
		name    string
		length  time.Duration
		bitrate int64
		chunks  int
		want    int64
	}{
		{"four minutes two chunks", 4 * time.Minute, 320_000, 2, 4_800_000},
		{"zero length", 0, 320_000, 2, 0},
		{"zero chunks", time.Minute, 320_000, 0, 0},
		{"zero bitrate", time.Minute, 0, 2, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ChunkBytes(tt.length, tt.bitrate, tt.chunks); got != tt.want {
				t.Errorf("ChunkBytes = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCacheAddFullAndPrefix(t *testing.T) {
	c := NewCache(0)
	c.AddPrefix(1)
	if !c.HasPrefix(1) || c.HasFull(1) {
		t.Fatal("prefix should be present, full absent")
	}
	c.AddFull(1)
	if !c.HasFull(1) || !c.HasPrefix(1) {
		t.Fatal("full video should satisfy both")
	}
	if c.PrefixLen() != 0 {
		t.Fatal("full video should supersede its prefix entry")
	}
	c.AddPrefix(1)
	if c.PrefixLen() != 0 {
		t.Fatal("prefix after full should be a no-op")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for v := trace.VideoID(1); v <= 4; v++ {
		c.AddFull(v)
	}
	if c.HasFull(1) {
		t.Fatal("oldest video should be evicted")
	}
	for v := trace.VideoID(2); v <= 4; v++ {
		if !c.HasFull(v) {
			t.Fatalf("video %d should remain", v)
		}
	}
	if c.FullLen() != 3 {
		t.Fatalf("cache holds %d, want 3", c.FullLen())
	}
}

func TestCacheTouchRefreshesLRU(t *testing.T) {
	c := NewCache(2)
	c.AddFull(1)
	c.AddFull(2)
	c.AddFull(1) // touch 1, making 2 the oldest
	c.AddFull(3)
	if c.HasFull(2) {
		t.Fatal("video 2 should have been evicted after touch")
	}
	if !c.HasFull(1) || !c.HasFull(3) {
		t.Fatal("videos 1 and 3 should remain")
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewCache(0)
	for v := trace.VideoID(0); v < 1000; v++ {
		c.AddFull(v)
	}
	if c.FullLen() != 1000 {
		t.Fatalf("unbounded cache holds %d, want 1000", c.FullLen())
	}
}

func TestCacheClear(t *testing.T) {
	c := NewCache(0)
	c.AddFull(1)
	c.AddPrefix(2)
	c.Clear()
	if c.FullLen() != 0 || c.PrefixLen() != 0 || c.HasPrefix(2) {
		t.Fatal("clear left residue")
	}
}

func TestCacheFullVideosCopy(t *testing.T) {
	c := NewCache(0)
	c.AddFull(1)
	c.AddFull(2)
	vids := c.FullVideos()
	vids[0] = 99
	if !c.HasFull(1) {
		t.Fatal("mutating the returned slice affected the cache")
	}
}

// Property: the cache never exceeds its bound, and cached videos are always
// reported present.
func TestCacheBoundProperty(t *testing.T) {
	f := func(ops []uint8, boundRaw uint8) bool {
		bound := int(boundRaw%10) + 1
		c := NewCache(bound)
		for _, op := range ops {
			v := trace.VideoID(op % 32)
			if op%2 == 0 {
				c.AddFull(v)
				if !c.HasFull(v) {
					return false
				}
			} else {
				c.AddPrefix(v)
				if !c.HasPrefix(v) {
					return false
				}
			}
			if c.FullLen() > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBehaviorValidate(t *testing.T) {
	if err := DefaultBehavior().Validate(); err != nil {
		t.Fatalf("default behaviour invalid: %v", err)
	}
	bad := []Behavior{
		{PSameChannel: -0.1},
		{PSameCategory: -0.1},
		{PSameChannel: 0.8, PSameCategory: 0.3},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("behaviour %+v should be invalid", b)
		}
	}
}

func TestNewPickerRejectsEmptyTrace(t *testing.T) {
	if _, err := NewPicker(nil, DefaultBehavior()); err == nil {
		t.Fatal("expected error for nil trace")
	}
	if _, err := NewPicker(&trace.Trace{}, DefaultBehavior()); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestPickerFirstPrefersSubscriptions(t *testing.T) {
	tr := testTrace(t)
	p, err := NewPicker(tr, DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewRNG(1)
	var u *trace.User
	for i := range tr.Users {
		if len(tr.Users[i].Subscriptions) > 0 {
			u = &tr.Users[i]
			break
		}
	}
	if u == nil {
		t.Skip("no subscribed user in trace")
	}
	subbed := make(map[trace.ChannelID]bool)
	for _, c := range u.Subscriptions {
		subbed[c] = true
	}
	hits := 0
	const n = 200
	for i := 0; i < n; i++ {
		vid := p.First(g, u)
		if subbed[tr.Video(vid).Channel] {
			hits++
		}
	}
	if hits < n*9/10 {
		t.Errorf("first video from subscriptions %d/%d, want nearly all", hits, n)
	}
}

func TestPickerNextFollows751510(t *testing.T) {
	tr := testTrace(t)
	p, err := NewPicker(tr, DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewRNG(2)
	// Find a current video in a channel with several videos.
	var cur *trace.Video
	for i := range tr.Videos {
		if len(tr.Channel(tr.Videos[i].Channel).Videos) >= 10 {
			cur = &tr.Videos[i]
			break
		}
	}
	if cur == nil {
		t.Skip("no big channel")
	}
	const n = 5000
	sameChannel, sameCategory, other := 0, 0, 0
	for i := 0; i < n; i++ {
		nxt := tr.Video(p.Next(g, cur.ID))
		switch {
		case nxt.Channel == cur.Channel:
			sameChannel++
		case nxt.Category == cur.Category:
			sameCategory++
		default:
			other++
		}
	}
	fc := float64(sameChannel) / n
	if fc < 0.70 || fc > 0.82 {
		t.Errorf("same-channel fraction %v, want ≈0.75", fc)
	}
	// Category picks can land back in the same channel occasionally, so the
	// bands are loose.
	if float64(other)/n > 0.15 {
		t.Errorf("other-category fraction %v, want ≈0.10", float64(other)/n)
	}
}

func TestPickerNextUnknownVideoFallsBack(t *testing.T) {
	tr := testTrace(t)
	p, err := NewPicker(tr, DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewRNG(3)
	vid := p.Next(g, trace.VideoID(1<<30))
	if tr.Video(vid) == nil {
		t.Fatal("fallback pick not in trace")
	}
}

func TestPlanSession(t *testing.T) {
	tr := testTrace(t)
	p, err := NewPicker(tr, DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewRNG(4)
	u := &tr.Users[0]
	plan := p.PlanSession(g, u, 10, 500*time.Second)
	if len(plan.Videos) != 10 {
		t.Fatalf("session has %d videos, want 10", len(plan.Videos))
	}
	for _, vid := range plan.Videos {
		if tr.Video(vid) == nil {
			t.Fatalf("session video %d not in trace", vid)
		}
	}
	if plan.OffTime < 0 {
		t.Fatalf("negative off time %v", plan.OffTime)
	}
}

func TestPlanSessionZeroVideos(t *testing.T) {
	tr := testTrace(t)
	p, err := NewPicker(tr, DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewRNG(5)
	plan := p.PlanSession(g, &tr.Users[0], 0, time.Second)
	if len(plan.Videos) != 0 {
		t.Fatalf("zero-video session has %d videos", len(plan.Videos))
	}
}

func TestSessionOffTimesExponential(t *testing.T) {
	tr := testTrace(t)
	p, err := NewPicker(tr, DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewRNG(6)
	const n = 2000
	var sum time.Duration
	for i := 0; i < n; i++ {
		plan := p.PlanSession(g, &tr.Users[i%len(tr.Users)], 1, 500*time.Second)
		sum += plan.OffTime
	}
	mean := sum / n
	if mean < 400*time.Second || mean > 600*time.Second {
		t.Errorf("mean off time %v, want ≈500s", mean)
	}
}
