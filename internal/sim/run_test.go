package sim

import (
	"testing"
	"time"
)

// TestRunResumesAfterHorizon guards the documented contract: a horizon
// return leaves unfired events queued, and a later Run with a larger
// horizon resumes exactly where the previous call left off.
func TestRunResumesAfterHorizon(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	record := func(now time.Duration) { fired = append(fired, now) }
	e.At(1*time.Minute, record)
	e.At(3*time.Minute, record)

	if err := e.Run(2*time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 1*time.Minute {
		t.Fatalf("first run fired %v, want [1m]", fired)
	}
	if e.Now() != 2*time.Minute {
		t.Fatalf("clock %v after horizon return, want 2m", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d after horizon return, want 1", e.Pending())
	}

	// Same horizon again: nothing to do, clock stays put.
	if err := e.Run(2*time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || e.Pending() != 1 {
		t.Fatalf("same-horizon rerun fired events: %v pending %d", fired, e.Pending())
	}

	// Larger horizon: the queued event fires at its original time.
	if err := e.Run(4*time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 3*time.Minute {
		t.Fatalf("resumed run fired %v, want [1m 3m]", fired)
	}
}

// TestMaxEventsIsLifetimeBudget guards the documented contract: maxEvents
// counts events fired across the engine's lifetime, so a Run whose budget
// is already met fires nothing.
func TestMaxEventsIsLifetimeBudget(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 3; i++ {
		e.At(time.Duration(i)*time.Second, func(time.Duration) { count++ })
	}
	if err := e.Run(0, 1); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("budget 1 fired %d events", count)
	}
	// Budget already exhausted: the second run must not fire the next event.
	if err := e.Run(0, 1); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("exhausted budget fired an extra event (count %d)", count)
	}
	// A raised budget resumes.
	if err := e.Run(0, 2); err != nil {
		t.Fatal(err)
	}
	if count != 2 || e.Pending() != 1 {
		t.Fatalf("raised budget: count %d pending %d, want 2 and 1", count, e.Pending())
	}
}

// TestBudgetReturnClockMatchesHorizon guards the clock-consistency fix:
// when the event budget runs out and every remaining event lies beyond the
// horizon, the horizon check wins and the clock advances to the horizon —
// exactly what an unbudgeted run of the same schedule reports. Before the
// fix the budget path returned first and left the clock at the last fired
// event, so the two returns disagreed about virtual time.
func TestBudgetReturnClockMatchesHorizon(t *testing.T) {
	build := func() *Engine {
		e := NewEngine()
		e.At(5*time.Second, func(time.Duration) {})
		e.At(15*time.Second, func(time.Duration) {})
		return e
	}
	budgeted := build()
	if err := budgeted.Run(10*time.Second, 1); err != nil {
		t.Fatal(err)
	}
	unbudgeted := build()
	if err := unbudgeted.Run(10*time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if budgeted.Now() != unbudgeted.Now() {
		t.Fatalf("budget return clock %v, horizon return clock %v — want identical",
			budgeted.Now(), unbudgeted.Now())
	}
	if budgeted.Now() != 10*time.Second {
		t.Fatalf("clock %v after budget+horizon return, want 10s", budgeted.Now())
	}
	// The schedule is intact and resumes exactly where it left off.
	if err := budgeted.Run(20*time.Second, 2); err != nil {
		t.Fatal(err)
	}
	if budgeted.Fired() != 2 || budgeted.Now() != 15*time.Second {
		t.Fatalf("resume fired=%d now=%v, want 2 events with clock 15s", budgeted.Fired(), budgeted.Now())
	}
}

// TestBudgetReturnWithinHorizonKeepsClock pins the complementary case: a
// budget return with the next event still inside the horizon must NOT
// advance the clock past the last fired event — unfired events ahead of
// the clock would fire in the past on resume.
func TestBudgetReturnWithinHorizonKeepsClock(t *testing.T) {
	e := NewEngine()
	e.At(5*time.Second, func(time.Duration) {})
	e.At(6*time.Second, func(time.Duration) {})
	if err := e.Run(10*time.Second, 1); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock %v after in-horizon budget return, want 5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
}

// TestStopHonoredOnResumedRun: Stop set by the last event of a run must not
// leak into the next run (Run clears it), but Stop during a run still
// interrupts before the next event fires.
func TestStopHonoredOnResumedRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(time.Second, func(time.Duration) { count++; e.Stop() })
	e.At(2*time.Second, func(time.Duration) { count++ })
	if err := e.Run(0, 0); err != ErrStopped {
		t.Fatalf("run = %v, want ErrStopped", err)
	}
	if count != 1 || e.Pending() != 1 {
		t.Fatalf("stop mid-run: count %d pending %d", count, e.Pending())
	}
	// The stop is consumed: a fresh Run proceeds.
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("resumed run fired %d events, want 2", count)
	}
}

// TestStopInsideEventDuringResumedRun: a run interrupted by a horizon and
// resumed later must still honor Stop called from inside an event that
// fires during the resumed run — the resume path clears the previous stop
// but must not swallow a fresh one.
func TestStopInsideEventDuringResumedRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1*time.Second, func(time.Duration) { count++ })
	e.At(3*time.Second, func(time.Duration) { count++; e.Stop() })
	e.At(4*time.Second, func(time.Duration) { count++ })

	// First run ends on the horizon, leaving two events queued.
	if err := e.Run(2*time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if count != 1 || e.Pending() != 2 {
		t.Fatalf("horizon run: count %d pending %d, want 1 and 2", count, e.Pending())
	}
	// The resumed run fires the 3s event, whose Stop interrupts before 4s.
	if err := e.Run(0, 0); err != ErrStopped {
		t.Fatalf("resumed run = %v, want ErrStopped", err)
	}
	if count != 2 || e.Pending() != 1 {
		t.Fatalf("stop in resumed run: count %d pending %d, want 2 and 1", count, e.Pending())
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock %v after mid-resume stop, want 3s", e.Now())
	}
	// A further resume consumes the stop and drains the schedule.
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if count != 3 || e.Pending() != 0 {
		t.Fatalf("final resume: count %d pending %d, want 3 and 0", count, e.Pending())
	}
}
