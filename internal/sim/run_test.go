package sim

import (
	"testing"
	"time"
)

// TestRunResumesAfterHorizon guards the documented contract: a horizon
// return leaves unfired events queued, and a later Run with a larger
// horizon resumes exactly where the previous call left off.
func TestRunResumesAfterHorizon(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	record := func(now time.Duration) { fired = append(fired, now) }
	e.At(1*time.Minute, record)
	e.At(3*time.Minute, record)

	if err := e.Run(2*time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 1*time.Minute {
		t.Fatalf("first run fired %v, want [1m]", fired)
	}
	if e.Now() != 2*time.Minute {
		t.Fatalf("clock %v after horizon return, want 2m", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d after horizon return, want 1", e.Pending())
	}

	// Same horizon again: nothing to do, clock stays put.
	if err := e.Run(2*time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || e.Pending() != 1 {
		t.Fatalf("same-horizon rerun fired events: %v pending %d", fired, e.Pending())
	}

	// Larger horizon: the queued event fires at its original time.
	if err := e.Run(4*time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 3*time.Minute {
		t.Fatalf("resumed run fired %v, want [1m 3m]", fired)
	}
}

// TestMaxEventsIsLifetimeBudget guards the documented contract: maxEvents
// counts events fired across the engine's lifetime, so a Run whose budget
// is already met fires nothing.
func TestMaxEventsIsLifetimeBudget(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 3; i++ {
		e.At(time.Duration(i)*time.Second, func(time.Duration) { count++ })
	}
	if err := e.Run(0, 1); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("budget 1 fired %d events", count)
	}
	// Budget already exhausted: the second run must not fire the next event.
	if err := e.Run(0, 1); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("exhausted budget fired an extra event (count %d)", count)
	}
	// A raised budget resumes.
	if err := e.Run(0, 2); err != nil {
		t.Fatal(err)
	}
	if count != 2 || e.Pending() != 1 {
		t.Fatalf("raised budget: count %d pending %d, want 2 and 1", count, e.Pending())
	}
}

// TestStopHonoredOnResumedRun: Stop set by the last event of a run must not
// leak into the next run (Run clears it), but Stop during a run still
// interrupts before the next event fires.
func TestStopHonoredOnResumedRun(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(time.Second, func(time.Duration) { count++; e.Stop() })
	e.At(2*time.Second, func(time.Duration) { count++ })
	if err := e.Run(0, 0); err != ErrStopped {
		t.Fatalf("run = %v, want ErrStopped", err)
	}
	if count != 1 || e.Pending() != 1 {
		t.Fatalf("stop mid-run: count %d pending %d", count, e.Pending())
	}
	// The stop is consumed: a fresh Run proceeds.
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("resumed run fired %d events, want 2", count)
	}
}
