package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// firing is one recorded event execution: which shard, when, which tag.
type firing struct {
	shard int
	at    time.Duration
	tag   uint64
}

// buildShardedProgram wires a deterministic workload onto a sharded
// engine: every shard runs a periodic local chain, and each chain tick
// sends a cross-shard event to the next shard keyed by a logical id. The
// recorded firings are the program's observable behavior.
func buildShardedProgram(t *testing.T, shards, workers int) (*ShardedEngine, *[][]firing) {
	t.Helper()
	se, err := NewShardedEngine(ShardedConfig{Shards: shards, Epoch: 100 * time.Millisecond, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	log := make([][]firing, shards)
	logs := &log
	for s := 0; s < shards; s++ {
		s := s
		ticks := 0
		var chain func(now time.Duration)
		chain = func(now time.Duration) {
			log[s] = append(log[s], firing{shard: s, at: now, tag: uint64(ticks)})
			ticks++
			if ticks >= 20 {
				return
			}
			se.Shard(s).After(37*time.Millisecond, chain)
			// Cross-shard hop keyed by a logical id (shard-stable here
			// because the program itself is defined per shard).
			dst := (s + 1) % shards
			key := uint64(s)<<32 | uint64(ticks)
			se.Send(s, dst, now+10*time.Millisecond, key, func(at time.Duration) {
				log[dst] = append(log[dst], firing{shard: dst, at: at, tag: key})
			})
		}
		se.Shard(s).At(time.Duration(s+1)*7*time.Millisecond, chain)
	}
	return se, logs
}

// TestShardedParallelMatchesSequential pins the core determinism claim:
// the same program run with Workers=1 (plain loop, no goroutines) and
// with parallel workers fires identical events at identical virtual times
// on every shard.
func TestShardedParallelMatchesSequential(t *testing.T) {
	const shards = 4
	seqEng, seqLog := buildShardedProgram(t, shards, 1)
	if err := seqEng.Run(0); err != nil {
		t.Fatal(err)
	}
	parEng, parLog := buildShardedProgram(t, shards, shards)
	if err := parEng.Run(0); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		a, b := (*seqLog)[s], (*parLog)[s]
		if len(a) != len(b) {
			t.Fatalf("shard %d: sequential fired %d events, parallel %d", s, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shard %d event %d diverged: sequential %+v, parallel %+v", s, i, a[i], b[i])
			}
		}
	}
	if seqEng.Now() != parEng.Now() || seqEng.Stats() != parEng.Stats() {
		t.Fatalf("engine state diverged: seq(now=%v stats=%+v) par(now=%v stats=%+v)",
			seqEng.Now(), seqEng.Stats(), parEng.Now(), parEng.Stats())
	}
}

// TestShardedMailboxOrdering pins barrier delivery order: all sends
// buffered in an epoch are delivered in ascending (at, key) order no
// matter which shard sent them or in what order, and never before the
// barrier ending the epoch they were sent in.
func TestShardedMailboxOrdering(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 3, Epoch: time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	recv := func(key uint64) Event {
		return func(now time.Duration) {
			got = append(got, key)
			// Delivery is clamped to the barrier: a send targeting a time
			// inside its own epoch fires exactly at the barrier.
			if now < time.Second {
				t.Errorf("key %d delivered at %v, before the 1s barrier", key, now)
			}
		}
	}
	// Shard 2 sends keys out of order, shard 1 interleaves; all target
	// shard 0 with at-times inside the first epoch.
	se.Shard(2).At(10*time.Millisecond, func(now time.Duration) {
		se.Send(2, 0, now, 40, recv(40))
		se.Send(2, 0, now, 10, recv(10))
	})
	se.Shard(1).At(20*time.Millisecond, func(now time.Duration) {
		se.Send(1, 0, now-10*time.Millisecond, 30, recv(30)) // earlier at wins over lower key
		se.Send(1, 0, now, 20, recv(20))
	})
	if err := se.Run(0); err != nil {
		t.Fatal(err)
	}
	// Ordering is (at, key): at=10ms carries keys 10, 30, 40; at=20ms
	// carries key 20.
	want := []uint64{10, 30, 40, 20}
	if len(got) != len(want) {
		t.Fatalf("delivered %d events, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

// TestShardedEpochGridSkipsEmptyStretches pins the sparse-schedule
// optimization: barriers land only on grid points covering pending work,
// so a schedule with two events a long gap apart costs two epochs, not
// gap/epoch epochs.
func TestShardedEpochGridSkipsEmptyStretches(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, Epoch: time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fired []time.Duration
	se.Shard(0).At(500*time.Millisecond, func(now time.Duration) { fired = append(fired, now) })
	se.Shard(1).At(3*time.Hour+300*time.Millisecond, func(now time.Duration) { fired = append(fired, now) })
	if err := se.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 500*time.Millisecond || fired[1] != 3*time.Hour+300*time.Millisecond {
		t.Fatalf("fired %v", fired)
	}
	if se.Epochs() != 2 {
		t.Fatalf("executed %d epochs for a 2-event sparse schedule, want 2", se.Epochs())
	}
	if se.Now() != 3*time.Hour+time.Second {
		t.Fatalf("final barrier %v, want 3h1s (grid ceil of last event)", se.Now())
	}
}

// TestShardedHorizonAndResume pins horizon semantics: the clock advances
// to the horizon, the remaining schedule (including undelivered mail sent
// in the final partial epoch) survives, and a later Run resumes it.
func TestShardedHorizonAndResume(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, Epoch: time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	se.Shard(0).At(300*time.Millisecond, func(now time.Duration) {
		fired = append(fired, fmt.Sprintf("a@%v", now))
	})
	se.Shard(0).At(5*time.Second, func(now time.Duration) {
		fired = append(fired, fmt.Sprintf("b@%v", now))
	})
	if err := se.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if se.Now() != 2*time.Second {
		t.Fatalf("clock %v after horizon return, want 2s", se.Now())
	}
	if len(fired) != 1 || fired[0] != "a@300ms" {
		t.Fatalf("horizon run fired %v", fired)
	}
	if err := se.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != "b@5s" {
		t.Fatalf("resumed run fired %v", fired)
	}
}

// TestShardedHorizonInsidePartialEpoch pins the partial-epoch case: a
// horizon that is not a grid point still fires in-horizon events, with
// the final barrier on the horizon itself.
func TestShardedHorizonInsidePartialEpoch(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 1, Epoch: time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	se.Shard(0).At(1500*time.Millisecond, func(time.Duration) { n++ })
	se.Shard(0).At(1800*time.Millisecond, func(time.Duration) { n++ })
	if err := se.Run(1600 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("fired %d events inside partial-epoch horizon, want 1", n)
	}
	if se.Now() != 1600*time.Millisecond {
		t.Fatalf("clock %v, want the 1.6s horizon", se.Now())
	}
	if se.Shard(0).Pending() != 1 {
		t.Fatalf("pending %d, want the 1.8s event intact", se.Shard(0).Pending())
	}
}

// TestShardedStopAtBarrier pins Stop semantics: Stop from inside an event
// takes effect at the barrier ending that epoch — the rest of the epoch
// still runs (shards are independent mid-epoch) but no further epoch
// starts, and the remaining schedule survives.
func TestShardedStopAtBarrier(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, Epoch: time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	se.Shard(0).At(100*time.Millisecond, func(time.Duration) { n++; se.Stop() })
	se.Shard(1).At(200*time.Millisecond, func(time.Duration) { n++ }) // same epoch: still fires
	se.Shard(0).At(5*time.Second, func(time.Duration) { n++ })        // later epoch: must not fire
	if err := se.Run(0); !errors.Is(err, ErrStopped) {
		t.Fatalf("run = %v, want ErrStopped", err)
	}
	if n != 2 {
		t.Fatalf("fired %d events before the stop barrier, want 2", n)
	}
	if se.Shard(0).Pending() != 1 {
		t.Fatalf("pending %d after stop, want the 5s event intact", se.Shard(0).Pending())
	}
	// Resume consumes the stop and drains.
	if err := se.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("resume fired %d total, want 3", n)
	}
}

// TestShardedRunCtxCancelled pins barrier-grained cancellation: a context
// cancelled from inside an event stops the run at that epoch's barrier
// with the remaining schedule intact.
func TestShardedRunCtxCancelled(t *testing.T) {
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, Epoch: time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	se.Shard(0).At(100*time.Millisecond, func(time.Duration) { n++; cancel() })
	se.Shard(1).At(3*time.Second, func(time.Duration) { n++ })
	if err := se.RunCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("run = %v, want context.Canceled", err)
	}
	if n != 1 {
		t.Fatalf("fired %d events before cancellation barrier, want 1", n)
	}
	if err := se.RunCtx(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("resume fired %d total, want 2", n)
	}
}

// TestShardedStatsMerge pins the merged accounting: event counts sum
// across shards, heap high-water takes the per-shard max, and per-shard
// mail counters balance (sent == received in a drained run).
func TestShardedStatsMerge(t *testing.T) {
	se, _ := buildShardedProgram(t, 4, 1)
	if err := se.Run(0); err != nil {
		t.Fatal(err)
	}
	merged := se.Stats()
	per := se.ShardStats()
	var fired, sched, sent, recv uint64
	maxHwm := 0
	for _, s := range per {
		fired += s.EventsFired
		sched += s.EventsScheduled
		sent += s.MailSent
		recv += s.MailRecv
		if s.HeapHighWater > maxHwm {
			maxHwm = s.HeapHighWater
		}
	}
	if merged.EventsFired != fired || merged.EventsScheduled != sched || merged.HeapHighWater != maxHwm {
		t.Fatalf("merged stats %+v disagree with per-shard sums (fired=%d sched=%d hwm=%d)",
			merged, fired, sched, maxHwm)
	}
	if sent == 0 || sent != recv {
		t.Fatalf("mail imbalance in drained run: sent %d, received %d", sent, recv)
	}
}

// TestShardedConfigValidation pins constructor errors and worker capping.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := NewShardedEngine(ShardedConfig{Shards: 0, Epoch: time.Second}); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewShardedEngine(ShardedConfig{Shards: 2, Epoch: 0}); err == nil {
		t.Fatal("0 epoch accepted")
	}
	se, err := NewShardedEngine(ShardedConfig{Shards: 2, Epoch: time.Second, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if se.Workers() != 2 {
		t.Fatalf("workers %d, want capped at shard count 2", se.Workers())
	}
}
