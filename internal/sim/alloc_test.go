// Alloc assertions are meaningless under the race detector (its
// instrumentation allocates), so this file is build-tagged out of -race
// runs — same convention as internal/core/alloc_test.go.

//go:build !race

package sim

import (
	"testing"
	"time"
)

// TestScheduledNodesRecycled pins the freelist contract: once a run
// reaches steady state (queue length oscillating around a plateau), the
// schedule-fire-reschedule cycle reuses popped event nodes instead of
// allocating fresh ones, so the per-event allocation on the hot loop is
// gone. Each measured iteration fires exactly one event which reschedules
// exactly one — Pop feeds Push through the freelist.
func TestScheduledNodesRecycled(t *testing.T) {
	e := NewEngine()
	var chain func(now time.Duration)
	chain = func(now time.Duration) { e.After(time.Millisecond, chain) }
	e.At(0, chain)
	// Warm up past any one-time growth (heap backing array, freelist).
	if err := e.Run(0, 64); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := e.Run(0, e.Fired()+1); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 1 {
		t.Fatalf("steady-state event loop allocates %.2f allocs/op, want <1 (freelist regression)", avg)
	}
}

// BenchmarkEngineSteadyState measures the steady-state event loop: one
// fire plus one reschedule per iteration. The b.ReportAllocs output is the
// regression pin next to the wall-clock number: 0 allocs/op with the
// freelist, 1 alloc/op without it.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	var chain func(now time.Duration)
	chain = func(now time.Duration) { e.After(time.Millisecond, chain) }
	e.At(0, chain)
	if err := e.Run(0, 64); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(0, e.Fired()+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBurst measures a bursty pattern — schedule a batch, drain
// it — where the freelist turns the burst's node churn into reuse after
// the first burst sizes the pool.
func BenchmarkEngineBurst(b *testing.B) {
	e := NewEngine()
	nop := func(time.Duration) {}
	// First burst sizes heap and freelist.
	for i := 0; i < 256; i++ {
		e.After(time.Duration(i)*time.Microsecond, nop)
	}
	if err := e.Run(0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			e.After(time.Duration(j)*time.Microsecond, nop)
		}
		if err := e.Run(0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
