// Package sim is a discrete-event simulation engine — the PeerSim
// substitute used by all trace-driven experiments. It provides a virtual
// clock, a binary-heap event queue with deterministic tie-breaking and a
// run loop bounded by either a horizon or an event budget.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"time"
)

// Engine runs errors.
var (
	// ErrStopped is returned by Run when Stop was called.
	ErrStopped = errors.New("sim: stopped")
)

// Event is a callback scheduled to fire at a virtual time.
type Event func(now time.Duration)

type scheduled struct {
	at   time.Duration
	seq  uint64 // insertion order breaks ties deterministically
	fire Event
}

type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface. It is only ever called by container/heap
// with *scheduled values; anything else is a programming error, so the type
// assertion is allowed to panic rather than silently dropping the event.
func (q *eventQueue) Push(x any) {
	*q = append(*q, x.(*scheduled))
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return item
}

// Engine is the simulation core. The zero value is not usable; construct
// with NewEngine. Engine is not safe for concurrent use: a simulation runs
// single-threaded, which is what makes it deterministic.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	// hwm is the largest queue length ever reached — the heap's
	// high-water mark, reported via Stats.
	hwm int
	// free recycles fired *scheduled nodes back into At: Pop feeds Push,
	// so a steady-state run (queue length oscillating around a plateau)
	// allocates no event nodes at all. The freelist never exceeds the
	// queue's high-water mark.
	free []*scheduled
}

// Stats is the engine's lifetime accounting, reported alongside protocol
// counters in experiment results. Field order is the JSON order.
type Stats struct {
	// EventsFired counts events executed.
	EventsFired uint64 `json:"eventsFired"`
	// EventsScheduled counts events ever pushed (the sequence counter).
	EventsScheduled uint64 `json:"eventsScheduled"`
	// HeapHighWater is the maximum number of simultaneously queued events.
	HeapHighWater int `json:"heapHighWater"`
}

// Stats returns the engine's accounting snapshot.
func (e *Engine) Stats() Stats {
	return Stats{EventsFired: e.fired, EventsScheduled: e.seq, HeapHighWater: e.hwm}
}

// NewEngine returns an engine with an empty queue at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute virtual time at. Events scheduled
// in the past fire immediately at the current time (time never goes
// backwards).
func (e *Engine) At(at time.Duration, fn Event) {
	if fn == nil {
		return
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	var node *scheduled
	if n := len(e.free); n > 0 {
		node = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		node.at, node.seq, node.fire = at, e.seq, fn
	} else {
		node = &scheduled{at: at, seq: e.seq, fire: fn}
	}
	heap.Push(&e.queue, node)
	if len(e.queue) > e.hwm {
		e.hwm = len(e.queue)
	}
}

// After schedules fn to run delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in non-decreasing time order until the queue drains,
// the virtual clock passes horizon (0 means no horizon), or maxEvents have
// fired in total across this engine's lifetime (0 means unbounded).
//
// Returning for any reason leaves unfired events queued: a horizon or
// event-budget return keeps the remaining schedule intact, so calling Run
// again with a larger horizon (or budget) resumes exactly where the
// previous call left off. On a horizon return the clock advances to the
// horizon itself; a second Run with the same horizon fires nothing and
// returns immediately. The horizon check precedes the event-budget check,
// so when the budget runs out with only beyond-horizon events left the
// clock still advances to the horizon — a budget return and a horizon
// return report consistent clocks. Stop is checked before every event,
// including the first of a resumed run; entering Run clears a previous
// stop. It returns ErrStopped if Stop was called.
func (e *Engine) Run(horizon time.Duration, maxEvents uint64) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if horizon > 0 && next.at > horizon {
			e.now = horizon
			return nil
		}
		if maxEvents > 0 && e.fired >= maxEvents {
			return nil
		}
		popped := heap.Pop(&e.queue).(*scheduled)
		e.now = popped.at
		popped.fire(e.now)
		e.fired++
		// Recycle the node only after fire returns: the callback may
		// schedule (and so reuse freelist nodes) while running. Dropping
		// the closure reference here keeps fired events from pinning
		// their captures until the node's next reuse.
		popped.fire = nil
		e.free = append(e.free, popped)
	}
	return nil
}

// ctxCheckInterval is how many events RunCtx fires between context
// checks: frequent enough for prompt cancellation, rare enough to keep
// the check off the per-event fast path.
const ctxCheckInterval = 256

// RunCtx is Run with cooperative cancellation: it executes the same
// schedule with identical semantics, checking ctx between batches of
// events (every ctxCheckInterval fires). On cancellation it returns
// ctx.Err(), leaving the remaining schedule intact like every other
// early return. A nil ctx behaves like context.Background().
func (e *Engine) RunCtx(ctx context.Context, horizon time.Duration, maxEvents uint64) error {
	if ctx == nil {
		return e.Run(horizon, maxEvents)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := e.fired + ctxCheckInterval
		if maxEvents > 0 && maxEvents < chunk {
			chunk = maxEvents
		}
		if err := e.Run(horizon, chunk); err != nil {
			return err
		}
		switch {
		case len(e.queue) == 0:
			return nil // drained
		case e.fired < chunk:
			return nil // horizon reached with budget to spare
		case maxEvents > 0 && e.fired >= maxEvents:
			return nil // lifetime event budget exhausted
		}
	}
}
