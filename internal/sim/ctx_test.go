package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunCtxMatchesRun pins that cancellation support does not change
// scheduling semantics: the same event chain fires identically.
func TestRunCtxMatchesRun(t *testing.T) {
	build := func() (*Engine, *[]time.Duration) {
		e := NewEngine()
		var fired []time.Duration
		var chain func(now time.Duration)
		chain = func(now time.Duration) {
			fired = append(fired, now)
			if len(fired) < 1000 {
				e.After(time.Millisecond, chain)
			}
		}
		e.At(0, chain)
		return e, &fired
	}

	plain, plainFired := build()
	if err := plain.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	ctxed, ctxFired := build()
	if err := ctxed.RunCtx(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if len(*plainFired) != len(*ctxFired) {
		t.Fatalf("Run fired %d events, RunCtx fired %d", len(*plainFired), len(*ctxFired))
	}
	for i := range *plainFired {
		if (*plainFired)[i] != (*ctxFired)[i] {
			t.Fatalf("event %d fired at %v under Run, %v under RunCtx", i, (*plainFired)[i], (*ctxFired)[i])
		}
	}
	if plain.Now() != ctxed.Now() || plain.Fired() != ctxed.Fired() {
		t.Fatalf("engine state diverged: Run(now=%v fired=%d) RunCtx(now=%v fired=%d)",
			plain.Now(), plain.Fired(), ctxed.Now(), ctxed.Fired())
	}
}

func TestRunCtxHonorsHorizonAndBudget(t *testing.T) {
	e := NewEngine()
	n := 0
	var chain func(now time.Duration)
	chain = func(now time.Duration) {
		n++
		e.After(time.Second, chain)
	}
	e.At(0, chain)
	if err := e.RunCtx(context.Background(), 2*time.Second, 0); err != nil {
		t.Fatal(err)
	}
	if n != 3 || e.Now() != 2*time.Second {
		t.Fatalf("horizon run fired %d events, now %v", n, e.Now())
	}
	// Resume under an event budget far past one ctx-check chunk.
	if err := e.RunCtx(context.Background(), 0, 600); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 600 {
		t.Fatalf("budget run fired %d events, want 600", e.Fired())
	}
}

// TestRunCtxCancelExactlyOnChunkBoundary pins the edge where cancellation
// lands on the ctxCheckInterval boundary itself: the event that cancels is
// the last event of a chunk, so the run must stop at exactly that fire
// count — the boundary check must not fire a single event of the next
// chunk, and the remaining schedule must survive for a later resume.
func TestRunCtxCancelExactlyOnChunkBoundary(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	for i := 1; i <= ctxCheckInterval+10; i++ {
		i := i
		e.At(time.Duration(i)*time.Millisecond, func(time.Duration) {
			fired++
			if i == ctxCheckInterval {
				cancel() // cancellation lands exactly on the chunk boundary
			}
		})
	}
	if err := e.RunCtx(ctx, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if fired != ctxCheckInterval {
		t.Fatalf("fired %d events, want exactly %d (the chunk boundary)", fired, ctxCheckInterval)
	}
	if e.Pending() != 10 {
		t.Fatalf("pending %d after boundary cancel, want 10", e.Pending())
	}
	// The schedule stays intact: a fresh context resumes and drains.
	if err := e.RunCtx(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if fired != ctxCheckInterval+10 || e.Pending() != 0 {
		t.Fatalf("resume after boundary cancel: fired %d pending %d", fired, e.Pending())
	}
}

func TestRunCtxCancelled(t *testing.T) {
	e := NewEngine()
	var chain func(now time.Duration)
	chain = func(now time.Duration) { e.After(time.Millisecond, chain) }
	e.At(0, chain)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunCtx(ctx, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if e.Pending() == 0 {
		t.Fatal("cancellation drained the queue; schedule should stay intact")
	}
	// Cancellation mid-run: cancel from inside an event; the run stops
	// at the next chunk boundary.
	fired := e.Fired()
	ctx2, cancel2 := context.WithCancel(context.Background())
	e.At(e.Now(), func(time.Duration) { cancel2() })
	if err := e.RunCtx(ctx2, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled mid-run, got %v", err)
	}
	if e.Fired() == fired {
		t.Fatal("mid-run cancel fired nothing")
	}
}
