package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// ShardedEngine runs N independent Engine event loops in bounded time
// epochs, exchanging the rare cross-shard events through ordered mailboxes
// drained at epoch barriers. It is the multi-core substrate for
// community-partitioned simulations: each shard hosts one or more
// near-disjoint communities, shards advance in parallel between barriers,
// and every cross-community interaction crosses a barrier.
//
// Determinism contract. Within an epoch a shard touches only its own
// engine and its own mailbox buffer, so shard execution is bitwise
// independent of goroutine scheduling. At a barrier, buffered sends are
// merged and delivered in ascending (at, key) order — the caller-supplied
// key, not the shard that happened to buffer first, breaks ties — and a
// send from epoch e is never delivered before the barrier that ends e.
// Consequently a parallel run and a Workers=1 sequential run of the same
// program fire exactly the same events at exactly the same virtual times,
// and a program whose keys are layout-independent (derived from a logical
// community id rather than a shard index) produces identical results
// under any shard count.
//
// Epoch barriers lie on the fixed grid t_k = k*Epoch. Empty stretches are
// skipped: the next barrier is the grid point at or after the earliest
// pending event across all shards, so a sparse schedule costs barriers
// proportional to occupied epochs, not to the horizon.
type ShardedEngine struct {
	shards  []*Engine
	epoch   time.Duration
	workers int
	now     time.Duration
	stopped bool

	// outbox[s] buffers shard s's cross-shard sends during the current
	// epoch; only shard s's goroutine appends to it between barriers.
	outbox [][]mailItem
	// scratch is the barrier-time merge buffer, reused across epochs.
	scratch []mailItem
	// epochBusy[s] is shard s's wall-clock busy time in the epoch being
	// executed, used to attribute barrier wait.
	epochBusy []time.Duration

	stats  []ShardStat
	epochs uint64
}

// mailItem is one buffered cross-shard event.
type mailItem struct {
	dst int
	at  time.Duration
	key uint64
	fn  Event
}

// ShardStat is one shard's load accounting, surfaced so experiments can
// report per-shard imbalance. The wall-clock fields (Busy, BarrierWait)
// measure real time and are therefore environmental: they carry json:"-"
// so same-seed results marshal byte-identically regardless of machine
// load — the same convention as obs.MemUsage.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// EventsFired / EventsScheduled / HeapHighWater mirror Engine.Stats
	// for this shard.
	EventsFired     uint64 `json:"eventsFired"`
	EventsScheduled uint64 `json:"eventsScheduled"`
	HeapHighWater   int    `json:"heapHighWater"`
	// MailSent counts cross-shard events this shard buffered; MailRecv
	// counts barrier deliveries into this shard.
	MailSent uint64 `json:"mailSent"`
	MailRecv uint64 `json:"mailRecv"`
	// Busy is the wall-clock time this shard's engine spent executing
	// epochs; BarrierWait is the wall-clock time the epoch barrier spent
	// waiting past this shard's own work for the slowest shard — the
	// load-imbalance signal.
	Busy        time.Duration `json:"-"`
	BarrierWait time.Duration `json:"-"`
}

// ShardedConfig configures a ShardedEngine.
type ShardedConfig struct {
	// Shards is the number of per-shard event loops (≥1).
	Shards int
	// Epoch is the barrier interval (>0). Cross-shard sends are delivered
	// at the barrier ending the epoch they were sent in, so Epoch bounds
	// the extra virtual latency a cross-shard event observes.
	Epoch time.Duration
	// Workers bounds the goroutines running shard epochs; 0 means
	// GOMAXPROCS. Workers=1 runs every epoch on the calling goroutine —
	// the sequential mode the determinism tests compare against.
	Workers int
}

// NewShardedEngine builds a sharded engine with empty queues at virtual
// time zero.
func NewShardedEngine(cfg ShardedConfig) (*ShardedEngine, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("sim: sharded engine needs ≥1 shard, got %d", cfg.Shards)
	}
	if cfg.Epoch <= 0 {
		return nil, fmt.Errorf("sim: sharded engine needs a positive epoch, got %v", cfg.Epoch)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	se := &ShardedEngine{
		shards:    make([]*Engine, cfg.Shards),
		epoch:     cfg.Epoch,
		workers:   workers,
		outbox:    make([][]mailItem, cfg.Shards),
		epochBusy: make([]time.Duration, cfg.Shards),
		stats:     make([]ShardStat, cfg.Shards),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
		se.stats[i].Shard = i
	}
	return se, nil
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard i's engine. Schedule local events through it; during
// Run, an event firing on shard i may only touch shard i's engine, and
// must use Send for everything cross-shard.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Now returns the last completed barrier time.
func (se *ShardedEngine) Now() time.Duration { return se.now }

// EpochLen returns the barrier interval.
func (se *ShardedEngine) EpochLen() time.Duration { return se.epoch }

// Epochs returns the number of executed (non-skipped) epochs.
func (se *ShardedEngine) Epochs() uint64 { return se.epochs }

// Workers returns the resolved parallelism.
func (se *ShardedEngine) Workers() int { return se.workers }

// Send buffers a cross-shard event from shard src to shard dst. It is safe
// to call from inside an event firing on shard src while Run is in
// progress (each shard owns its buffer between barriers) and from the
// driving goroutine before Run. The event is delivered into dst's engine
// at the barrier ending the current epoch, to fire no earlier than
// max(at, barrier time); deliveries are ordered by ascending (at, key)
// across all sources. Keys should be unique per barrier for a total
// order, and derived from logical ids (not shard indexes) when results
// must be independent of the community→shard layout. Sending to the local
// shard is allowed and still crosses the barrier — that is what makes a
// partition-keyed program's results independent of how partitions map to
// shards.
func (se *ShardedEngine) Send(src, dst int, at time.Duration, key uint64, fn Event) {
	if src < 0 || src >= len(se.shards) || dst < 0 || dst >= len(se.shards) || fn == nil {
		return
	}
	se.outbox[src] = append(se.outbox[src], mailItem{dst: dst, at: at, key: key, fn: fn})
	se.stats[src].MailSent++
}

// Stop makes Run return ErrStopped at the next barrier. Safe to call from
// inside an event: the flag is only read between epochs, so it takes
// effect at the barrier ending the epoch that set it.
func (se *ShardedEngine) Stop() { se.stopped = true }

// pendingMail reports whether any outbox holds undelivered events (only
// possible from pre-run Sends; in-run sends drain at their own barrier).
func (se *ShardedEngine) pendingMail() bool {
	for _, box := range se.outbox {
		if len(box) > 0 {
			return true
		}
	}
	return false
}

// nextEventAt returns the earliest queued event time across shards, or
// false when every queue is empty.
func (se *ShardedEngine) nextEventAt() (time.Duration, bool) {
	var (
		best  time.Duration
		found bool
	)
	for _, e := range se.shards {
		if len(e.queue) == 0 {
			continue
		}
		if at := e.queue[0].at; !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}

// gridCeil returns the epoch-grid point at or after t.
func (se *ShardedEngine) gridCeil(t time.Duration) time.Duration {
	if t <= 0 {
		return 0
	}
	k := (t + se.epoch - 1) / se.epoch
	return k * se.epoch
}

// Run executes the sharded schedule until every queue drains and no mail
// is in flight, the barrier clock reaches horizon (0 means no horizon), or
// Stop is called (ErrStopped). Unlike Engine.Run there is no event budget:
// epochs are the unit of progress. A horizon return leaves the remaining
// schedule (and any undelivered mail) intact for a later resume; like
// Engine.Run, the clock advances to the horizon itself.
func (se *ShardedEngine) Run(horizon time.Duration) error {
	return se.RunCtx(context.Background(), horizon)
}

// RunCtx is Run with cooperative cancellation, checked at every barrier.
// On cancellation it returns ctx.Err() with the remaining schedule intact.
func (se *ShardedEngine) RunCtx(ctx context.Context, horizon time.Duration) error {
	se.stopped = false
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if se.stopped {
			return ErrStopped
		}
		next, ok := se.nextEventAt()
		if !ok && !se.pendingMail() {
			return nil // drained
		}
		if !ok {
			// Mail only: it delivers at the next barrier.
			next = se.now
		}
		// Skip empty stretches: barrier at the grid point covering the
		// earliest pending work, but always strictly past the current
		// clock so every epoch advances time.
		barrier := se.gridCeil(next)
		if barrier <= se.now {
			barrier = se.gridCeil(se.now + 1)
		}
		if horizon > 0 && barrier > horizon {
			if next > horizon && !se.pendingMail() {
				// All remaining work lies beyond the horizon.
				se.now = horizon
				return nil
			}
			// In-horizon events remain: run a final partial epoch ending
			// on the horizon itself.
			barrier = horizon
		}
		se.runEpoch(barrier)
		se.deliver(barrier)
		se.now = barrier
		se.epochs++
		if se.stopped {
			return ErrStopped
		}
		if horizon > 0 && se.now >= horizon {
			return nil
		}
	}
}

// runEpoch advances every shard's engine to the barrier, in parallel when
// workers > 1. A direct Engine.Stop on a shard (returning ErrStopped)
// stops the whole sharded run at this barrier.
func (se *ShardedEngine) runEpoch(barrier time.Duration) {
	for i := range se.epochBusy {
		se.epochBusy[i] = 0
	}
	if se.workers == 1 {
		for i, e := range se.shards {
			start := time.Now()
			if err := e.Run(barrier, 0); err != nil {
				se.stopped = true
			}
			busy := time.Since(start)
			se.epochBusy[i] = busy
			se.stats[i].Busy += busy
		}
		return
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		work = make(chan int, len(se.shards))
	)
	epochStart := time.Now()
	for i := range se.shards {
		work <- i
	}
	close(work)
	for w := 0; w < se.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				start := time.Now()
				err := se.shards[i].Run(barrier, 0)
				busy := time.Since(start)
				mu.Lock()
				if err != nil {
					se.stopped = true
				}
				se.epochBusy[i] = busy
				se.stats[i].Busy += busy
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Barrier wait: the idle tail each shard spends waiting for the
	// slowest one. With workers < shards the work queue serializes some
	// shards, so this is an upper bound per shard; it still ranks hot
	// shards correctly.
	span := time.Since(epochStart)
	for i := range se.stats {
		if wait := span - se.epochBusy[i]; wait > 0 {
			se.stats[i].BarrierWait += wait
		}
	}
}

// deliver drains every outbox into the destination engines in ascending
// (at, key) order, clamping fire times to the barrier.
func (se *ShardedEngine) deliver(barrier time.Duration) {
	se.scratch = se.scratch[:0]
	for s := range se.outbox {
		se.scratch = append(se.scratch, se.outbox[s]...)
		se.outbox[s] = se.outbox[s][:0]
	}
	if len(se.scratch) == 0 {
		return
	}
	sort.SliceStable(se.scratch, func(i, j int) bool {
		if se.scratch[i].at != se.scratch[j].at {
			return se.scratch[i].at < se.scratch[j].at
		}
		return se.scratch[i].key < se.scratch[j].key
	})
	for i := range se.scratch {
		m := &se.scratch[i]
		at := m.at
		if at < barrier {
			at = barrier
		}
		se.shards[m.dst].At(at, m.fn)
		se.stats[m.dst].MailRecv++
		// Drop the closure so the reusable scratch buffer does not pin it
		// until the next barrier overwrites this slot.
		m.fn = nil
	}
}

// Stats returns the merged engine accounting: event counts summed across
// shards, heap high-water the maximum of any shard (per-shard queues are
// disjoint, so the max is each loop's true peak).
func (se *ShardedEngine) Stats() Stats {
	var st Stats
	for _, e := range se.shards {
		es := e.Stats()
		st.EventsFired += es.EventsFired
		st.EventsScheduled += es.EventsScheduled
		if es.HeapHighWater > st.HeapHighWater {
			st.HeapHighWater = es.HeapHighWater
		}
	}
	return st
}

// ShardStats returns per-shard load accounting (a copy), refreshed from
// the underlying engines.
func (se *ShardedEngine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(se.stats))
	for i, e := range se.shards {
		s := se.stats[i]
		es := e.Stats()
		s.EventsFired = es.EventsFired
		s.EventsScheduled = es.EventsScheduled
		s.HeapHighWater = es.HeapHighWater
		out[i] = s
	}
	return out
}
