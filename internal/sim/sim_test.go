package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		e.At(d*time.Second, func(now time.Duration) {
			order = append(order, now)
		})
	}
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events out of order: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order %v, want insertion order", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var firedAt time.Duration
	e.At(10*time.Second, func(time.Duration) {
		e.After(5*time.Second, func(now time.Duration) { firedAt = now })
	})
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if firedAt != 15*time.Second {
		t.Fatalf("fired at %v, want 15s", firedAt)
	}
}

func TestPastEventsFireNow(t *testing.T) {
	e := NewEngine()
	var firedAt time.Duration
	e.At(10*time.Second, func(time.Duration) {
		e.At(2*time.Second, func(now time.Duration) { firedAt = now })
	})
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if firedAt != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamped to 10s", firedAt)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5*time.Second, func(now time.Duration) {
		if now != 0 {
			t.Errorf("fired at %v, want 0", now)
		}
		fired = true
	})
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
}

func TestHorizonStopsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(time.Second, func(time.Duration) { fired++ })
	e.At(time.Hour, func(time.Duration) { fired++ })
	if err := e.Run(time.Minute, 0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d events within horizon, want 1", fired)
	}
	if e.Now() != time.Minute {
		t.Fatalf("clock = %v, want horizon", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 beyond-horizon event retained", e.Pending())
	}
}

func TestMaxEventsBudget(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.At(time.Duration(i)*time.Second, func(time.Duration) {})
	}
	if err := e.Run(0, 10); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 10 {
		t.Fatalf("fired %d, want 10", e.Fired())
	}
}

func TestStopInterruptsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(time.Second, func(time.Duration) {
		fired++
		e.Stop()
	})
	e.At(2*time.Second, func(time.Duration) { fired++ })
	err := e.Run(0, 0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
}

func TestNilEventIgnored(t *testing.T) {
	e := NewEngine()
	e.At(time.Second, nil)
	if e.Pending() != 0 {
		t.Fatal("nil event was queued")
	}
}

func TestClockNeverGoesBackwards(t *testing.T) {
	e := NewEngine()
	var last time.Duration
	for i := 0; i < 50; i++ {
		d := time.Duration(50-i) * time.Second
		e.At(d, func(now time.Duration) {
			if now < last {
				t.Fatalf("clock moved backwards: %v after %v", now, last)
			}
			last = now
		})
	}
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCascadingEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		count++
		if count < 100 {
			e.After(time.Second, tick)
		}
	}
	e.After(time.Second, tick)
	if err := e.Run(0, 0); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("cascade fired %d, want 100", count)
	}
	if e.Now() != 100*time.Second {
		t.Fatalf("clock = %v, want 100s", e.Now())
	}
}

// Property: however events are scheduled, execution order is sorted by time
// with insertion-order tie-break and the engine drains completely.
func TestRunOrderProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) > 200 {
			delaysRaw = delaysRaw[:200]
		}
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delaysRaw {
			e.At(time.Duration(d)*time.Millisecond, func(now time.Duration) {
				fired = append(fired, now)
			})
		}
		if err := e.Run(0, 0); err != nil {
			return false
		}
		if len(fired) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
