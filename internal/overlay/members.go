package overlay

import (
	"github.com/socialtube/socialtube/internal/dist"
)

// Members tracks the online members of one overlay with O(1) insert, delete
// and uniform random selection — the operations the tracking server performs
// when it assists joins. The zero value is unusable; construct with
// NewMembers.
type Members struct {
	items []int
	index map[int]int
}

// NewMembers returns an empty member set.
func NewMembers() *Members {
	return &Members{index: make(map[int]int)}
}

// Add inserts n if absent.
func (m *Members) Add(n int) {
	if _, ok := m.index[n]; ok {
		return
	}
	m.index[n] = len(m.items)
	m.items = append(m.items, n)
}

// Remove deletes n if present.
func (m *Members) Remove(n int) {
	i, ok := m.index[n]
	if !ok {
		return
	}
	last := len(m.items) - 1
	m.items[i] = m.items[last]
	m.index[m.items[i]] = i
	m.items = m.items[:last]
	delete(m.index, n)
}

// Has reports membership of n.
func (m *Members) Has(n int) bool {
	_, ok := m.index[n]
	return ok
}

// Len returns the member count.
func (m *Members) Len() int { return len(m.items) }

// List returns the members in insertion-compacted order (a copy).
func (m *Members) List() []int {
	out := make([]int, len(m.items))
	copy(out, m.items)
	return out
}

// View returns the members in insertion-compacted order without copying.
// The slice is live: it is invalidated by the next Add/Remove and must not
// be mutated or retained across mutations.
func (m *Members) View() []int { return m.items }

// Random returns a uniformly random member, excluding the given node. It
// returns -1 when no eligible member exists.
func (m *Members) Random(g *dist.RNG, exclude int) int {
	switch len(m.items) {
	case 0:
		return -1
	case 1:
		if m.items[0] == exclude {
			return -1
		}
		return m.items[0]
	}
	for attempts := 0; attempts < 8; attempts++ {
		n := m.items[g.Intn(len(m.items))]
		if n != exclude {
			return n
		}
	}
	// Deterministic fallback scan.
	for _, n := range m.items {
		if n != exclude {
			return n
		}
	}
	return -1
}
