package overlay

import (
	"testing"
	"testing/quick"
)

func TestLinksAddRemove(t *testing.T) {
	l := NewLinks(2)
	if !l.Add(1) || !l.Add(2) {
		t.Fatal("adds within capacity should succeed")
	}
	if l.Add(3) {
		t.Fatal("add beyond capacity should fail")
	}
	if l.Add(1) {
		t.Fatal("duplicate add should fail")
	}
	if !l.Full() || l.Len() != 2 || l.Max() != 2 {
		t.Fatal("capacity accounting wrong")
	}
	l.Remove(1)
	if l.Has(1) || l.Len() != 1 || l.Full() {
		t.Fatal("remove did not take effect")
	}
	if !l.Add(3) {
		t.Fatal("add after remove should succeed")
	}
}

func TestLinksUnbounded(t *testing.T) {
	l := NewLinks(0)
	for i := 0; i < 100; i++ {
		if !l.Add(i) {
			t.Fatalf("unbounded add %d failed", i)
		}
	}
	if l.Full() {
		t.Fatal("unbounded links reported full")
	}
}

func TestLinksListSortedCopy(t *testing.T) {
	l := NewLinks(0)
	for _, n := range []int{5, 1, 3} {
		l.Add(n)
	}
	got := l.List()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List() = %v, want %v", got, want)
		}
	}
	got[0] = 99
	if !l.Has(1) {
		t.Fatal("mutating List() result affected the set")
	}
}

func TestLinksClear(t *testing.T) {
	l := NewLinks(3)
	l.Add(1)
	l.Clear()
	if l.Len() != 0 || l.Has(1) {
		t.Fatal("clear left residue")
	}
}

func TestMeshConnectSymmetric(t *testing.T) {
	m := NewMesh(5)
	if !m.Connect(1, 2) {
		t.Fatal("connect failed")
	}
	if !m.Connected(1, 2) || !m.Connected(2, 1) {
		t.Fatal("edge not symmetric")
	}
	if m.Connect(1, 2) {
		t.Fatal("duplicate edge should fail")
	}
	if m.Connect(1, 1) {
		t.Fatal("self edge should fail")
	}
}

func TestMeshCapacityRespected(t *testing.T) {
	m := NewMesh(2)
	if !m.Connect(0, 1) || !m.Connect(0, 2) {
		t.Fatal("connects within capacity failed")
	}
	if m.Connect(0, 3) {
		t.Fatal("connect beyond node 0's capacity succeeded")
	}
	// Node 3 is empty but node 0 is full, so the edge must not appear on
	// either side.
	if m.Degree(3) != 0 {
		t.Fatal("one-sided edge created")
	}
	if !m.Symmetric() {
		t.Fatal("mesh asymmetric")
	}
}

func TestMeshDisconnect(t *testing.T) {
	m := NewMesh(0)
	m.Connect(1, 2)
	m.Disconnect(1, 2)
	if m.Connected(1, 2) || m.Connected(2, 1) {
		t.Fatal("disconnect left an edge")
	}
	// Disconnecting a non-edge is a no-op.
	m.Disconnect(7, 8)
}

func TestMeshRemoveNode(t *testing.T) {
	m := NewMesh(0)
	m.Connect(1, 2)
	m.Connect(1, 3)
	m.RemoveNode(1)
	if m.Degree(1) != 0 || m.Connected(2, 1) || m.Connected(3, 1) {
		t.Fatal("remove node left dangling links")
	}
	if !m.Symmetric() {
		t.Fatal("asymmetric after node removal")
	}
	m.RemoveNode(99) // unknown node is a no-op
}

func TestMeshNeighborsAndNodes(t *testing.T) {
	m := NewMesh(0)
	m.Connect(2, 5)
	m.Connect(2, 3)
	nbs := m.Neighbors(2)
	if len(nbs) != 2 || nbs[0] != 3 || nbs[1] != 5 {
		t.Fatalf("Neighbors = %v, want [3 5]", nbs)
	}
	if m.Neighbors(42) != nil {
		t.Fatal("unknown node should have nil neighbours")
	}
	nodes := m.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("Nodes = %v, want 3 entries", nodes)
	}
}

// Property: after arbitrary connect/disconnect/remove operations, the mesh
// stays symmetric and respects its per-node capacity.
func TestMeshInvariantsProperty(t *testing.T) {
	type op struct {
		Kind uint8
		A, B uint8
	}
	f := func(ops []op, capRaw uint8) bool {
		capacity := int(capRaw%6) + 1
		m := NewMesh(capacity)
		for _, o := range ops {
			a, b := int(o.A%20), int(o.B%20)
			switch o.Kind % 3 {
			case 0:
				m.Connect(a, b)
			case 1:
				m.Disconnect(a, b)
			case 2:
				m.RemoveNode(a)
			}
		}
		if !m.Symmetric() {
			return false
		}
		for _, n := range m.Nodes() {
			if m.Degree(n) > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func ringMesh(n int) *Mesh {
	m := NewMesh(0)
	for i := 0; i < n; i++ {
		m.Connect(i, (i+1)%n)
	}
	return m
}

func TestFloodFindsWithinTTL(t *testing.T) {
	m := ringMesh(10)
	res := Flood(0, 2, m.Neighbors, func(n int) bool { return n == 2 })
	if !res.OK || res.Found != 2 {
		t.Fatalf("flood missed node 2: %+v", res)
	}
	if res.Hops != 2 {
		t.Fatalf("hops = %d, want 2", res.Hops)
	}
}

func TestFloodRespectsTTL(t *testing.T) {
	m := ringMesh(10)
	res := Flood(0, 2, m.Neighbors, func(n int) bool { return n == 5 })
	if res.OK {
		t.Fatalf("node 5 is 5 hops away, found within TTL 2: %+v", res)
	}
}

func TestFloodDirectNeighborIsOneHop(t *testing.T) {
	m := ringMesh(10)
	res := Flood(0, 2, m.Neighbors, func(n int) bool { return n == 1 })
	if !res.OK || res.Hops != 1 {
		t.Fatalf("direct neighbour: %+v", res)
	}
}

func TestFloodOriginNotMatched(t *testing.T) {
	m := ringMesh(5)
	res := Flood(0, 3, m.Neighbors, func(n int) bool { return n == 0 })
	if res.OK {
		t.Fatal("flood matched its own origin")
	}
}

func TestFloodNoDuplicateVisits(t *testing.T) {
	// Dense mesh: many redundant edges, but each node processes the query
	// once.
	m := NewMesh(0)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			m.Connect(i, j)
		}
	}
	res := Flood(0, 3, m.Neighbors, func(int) bool { return false })
	if res.Visited != 5 {
		t.Fatalf("visited %d distinct nodes, want 5", res.Visited)
	}
	if res.Messages < 5 {
		t.Fatalf("messages %d, want at least one per neighbour", res.Messages)
	}
}

func TestFloodDegenerateInputs(t *testing.T) {
	m := ringMesh(5)
	if res := Flood(0, 0, m.Neighbors, func(int) bool { return true }); res.OK {
		t.Fatal("zero TTL should find nothing")
	}
	if res := Flood(0, 2, nil, func(int) bool { return true }); res.OK {
		t.Fatal("nil neighbours should find nothing")
	}
	if res := Flood(0, 2, m.Neighbors, nil); res.OK {
		t.Fatal("nil match should find nothing")
	}
}

// Property: flood never revisits a node, never exceeds its hop budget, and
// message count is bounded by edges reachable within TTL.
func TestFloodInvariantsProperty(t *testing.T) {
	f := func(edges []uint16, ttlRaw, target uint8) bool {
		m := NewMesh(0)
		for _, e := range edges {
			a, b := int(e%31), int((e>>5)%31)
			m.Connect(a, b)
		}
		ttl := int(ttlRaw%4) + 1
		want := int(target % 31)
		res := Flood(0, ttl, m.Neighbors, func(n int) bool { return n == want })
		if res.OK && (res.Hops < 1 || res.Hops > ttl) {
			return false
		}
		if res.OK && res.Found != want {
			return false
		}
		return res.Visited <= 31
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
