package overlay

import (
	"testing"

	"github.com/socialtube/socialtube/internal/dist"
)

func TestMembersAddRemoveRandom(t *testing.T) {
	m := NewMembers()
	g := dist.NewRNG(1)
	if m.Random(g, -1) != -1 {
		t.Fatal("empty set should return -1")
	}
	m.Add(1)
	m.Add(2)
	m.Add(2) // duplicate is a no-op
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if !m.Has(1) || m.Has(3) {
		t.Fatal("membership wrong")
	}
	if got := m.Random(g, 2); got != 1 {
		t.Fatalf("random excluding 2 = %d, want 1", got)
	}
	m.Remove(1)
	if got := m.Random(g, 2); got != -1 {
		t.Fatalf("random with everything excluded = %d, want -1", got)
	}
	m.Remove(42) // unknown is a no-op
	m.Remove(2)
	if m.Len() != 0 {
		t.Fatal("set not empty after removals")
	}
}

func TestMembersListIsCopy(t *testing.T) {
	m := NewMembers()
	m.Add(5)
	m.Add(7)
	list := m.List()
	if len(list) != 2 {
		t.Fatalf("list = %v", list)
	}
	list[0] = 99
	if !m.Has(5) && !m.Has(7) {
		t.Fatal("mutating List() affected the set")
	}
}

func TestMembersRandomSpread(t *testing.T) {
	m := NewMembers()
	for i := 0; i < 10; i++ {
		m.Add(i)
	}
	g := dist.NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		seen[m.Random(g, -1)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("random selection covers only %d members", len(seen))
	}
}

func TestMeshFull(t *testing.T) {
	m := NewMesh(1)
	if m.Full(0) {
		t.Fatal("unknown node reported full")
	}
	m.Connect(0, 1)
	if !m.Full(0) || !m.Full(1) {
		t.Fatal("capacity-1 nodes should be full after one edge")
	}
}
