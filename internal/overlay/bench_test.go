package overlay

import (
	"testing"

	"github.com/socialtube/socialtube/internal/dist"
)

// benchMesh builds a connected random mesh of n nodes with the given link
// bound — the shape of one channel overlay at paper scale.
func benchMesh(n, maxLinks int) *Mesh {
	m := NewMesh(maxLinks)
	g := dist.NewRNG(1)
	// Ring for connectivity, then random chords up to the bound.
	for i := 0; i < n; i++ {
		m.Connect(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for attempts := 0; m.Degree(i) < maxLinks && attempts < 4*maxLinks; attempts++ {
			m.Connect(i, g.Intn(n))
		}
	}
	return m
}

// BenchmarkFlood measures one TTL-scoped flood query over a 10k-node
// channel-overlay-shaped mesh — the hot path behind every figure run.
func BenchmarkFlood(b *testing.B) {
	const n = 10_000
	m := benchMesh(n, 8)
	neighbors := m.Neighbors
	match := func(v int) bool { return v == n-1 } // far away: full expansion
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Flood(i%n, 3, neighbors, match)
	}
}

// BenchmarkFloodScratch measures the same query through a reusable
// FloodScratch, the zero-allocation path the simulator uses.
func BenchmarkFloodScratch(b *testing.B) {
	const n = 10_000
	m := benchMesh(n, 8)
	neighbors := m.NeighborsView
	match := func(v int) bool { return v == n-1 }
	scratch := NewFloodScratch(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Flood(i%n, 3, neighbors, match)
	}
}

// BenchmarkMeshConnect measures building a bounded mesh edge by edge —
// the join/replenish path.
func BenchmarkMeshConnect(b *testing.B) {
	const n = 1024
	g := dist.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMesh(8)
		for e := 0; e < 4*n; e++ {
			m.Connect(g.Intn(n), g.Intn(n))
		}
	}
}

// BenchmarkNeighbors measures adjacency listing during query forwarding.
func BenchmarkNeighbors(b *testing.B) {
	m := benchMesh(1024, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Neighbors(i % 1024)
	}
}
