package overlay

import (
	"testing"
	"testing/quick"
)

// TestFloodScratchMatchesFlood: the scratch-based flood and the allocating
// wrapper must produce identical results on arbitrary meshes — the
// bit-for-bit guarantee the simulator's figures rely on.
func TestFloodScratchMatchesFlood(t *testing.T) {
	scratch := NewFloodScratch(0) // deliberately undersized: must grow
	f := func(edges []uint16, ttlRaw, target uint8) bool {
		m := NewMesh(0)
		for _, e := range edges {
			m.Connect(int(e%31), int((e>>5)%31))
		}
		ttl := int(ttlRaw%4) + 1
		want := int(target % 31)
		match := func(n int) bool { return n == want }
		a := Flood(0, ttl, m.Neighbors, match)
		b := scratch.Flood(0, ttl, m.NeighborsView, match)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFloodScratchReuse: repeated floods through one scratch stay correct —
// the epoch stamp must isolate queries without clearing the visited array.
func TestFloodScratchReuse(t *testing.T) {
	m := ringMesh(10)
	s := NewFloodScratch(10)
	for i := 0; i < 100; i++ {
		res := s.Flood(0, 2, m.NeighborsView, func(n int) bool { return n == 2 })
		if !res.OK || res.Found != 2 || res.Hops != 2 {
			t.Fatalf("iteration %d: %+v", i, res)
		}
		miss := s.Flood(0, 2, m.NeighborsView, func(n int) bool { return n == 5 })
		if miss.OK {
			t.Fatalf("iteration %d: found node 5 beyond TTL: %+v", i, miss)
		}
	}
}

// TestFloodScratchEpochWrap: when the epoch counter wraps around, stale
// stamps from older floods must not masquerade as visits.
func TestFloodScratchEpochWrap(t *testing.T) {
	m := ringMesh(6)
	s := NewFloodScratch(6)
	s.epoch = ^uint32(0) - 1 // two floods from wrapping
	for i := 0; i < 4; i++ {
		res := s.Flood(0, 3, m.NeighborsView, func(int) bool { return false })
		if res.Visited != 5 {
			t.Fatalf("flood %d across epoch wrap visited %d, want 5", i, res.Visited)
		}
	}
}

// TestFloodScratchRejectsNegativeOrigin documents that dense node ids are
// non-negative.
func TestFloodScratchRejectsNegativeOrigin(t *testing.T) {
	m := ringMesh(4)
	var s FloodScratch
	if res := s.Flood(-1, 2, m.NeighborsView, func(int) bool { return true }); res.OK {
		t.Fatal("negative origin should find nothing")
	}
}

// TestLinksClearReusesStorage: Clear must keep the backing array so churny
// overlays do not reallocate.
func TestLinksClearReusesStorage(t *testing.T) {
	l := NewLinks(8)
	for i := 0; i < 8; i++ {
		l.Add(i)
	}
	before := cap(l.items)
	l.Clear()
	if l.Len() != 0 {
		t.Fatal("clear left entries")
	}
	if cap(l.items) != before {
		t.Fatalf("clear reallocated backing storage: cap %d -> %d", before, cap(l.items))
	}
	if !l.Add(3) || !l.Has(3) {
		t.Fatal("links unusable after clear")
	}
}

// TestLinksViewIsLiveAndSorted pins the zero-copy read contract.
func TestLinksViewIsLiveAndSorted(t *testing.T) {
	l := NewLinks(0)
	for _, n := range []int{9, 1, 5} {
		l.Add(n)
	}
	v := l.View()
	if len(v) != 3 || v[0] != 1 || v[1] != 5 || v[2] != 9 {
		t.Fatalf("View() = %v, want [1 5 9]", v)
	}
	l.Add(3)
	v = l.View()
	if len(v) != 4 || v[1] != 3 {
		t.Fatalf("View() after Add = %v, want [1 3 5 9]", v)
	}
}

// TestMeshPrune: pruning drops exactly the edges whose neighbour fails the
// predicate, on both endpoints, and reports the examined count.
func TestMeshPrune(t *testing.T) {
	m := NewMesh(0)
	for _, b := range []int{1, 2, 3, 4, 5} {
		m.Connect(0, b)
	}
	examined := m.Prune(0, func(n int) bool { return n%2 == 0 })
	if examined != 5 {
		t.Fatalf("examined %d, want 5", examined)
	}
	for _, odd := range []int{1, 3, 5} {
		if m.Connected(0, odd) || m.Connected(odd, 0) {
			t.Fatalf("edge to %d survived prune", odd)
		}
	}
	for _, even := range []int{2, 4} {
		if !m.Connected(0, even) {
			t.Fatalf("edge to %d wrongly pruned", even)
		}
	}
	if !m.Symmetric() {
		t.Fatal("mesh asymmetric after prune")
	}
	if m.Prune(99, func(int) bool { return true }) != 0 {
		t.Fatal("pruning an unknown node examined neighbours")
	}
}

// TestMeshPruneAll: removing every neighbour in one pass must not skip
// entries as the underlying slice shrinks.
func TestMeshPruneAll(t *testing.T) {
	m := NewMesh(0)
	for b := 1; b <= 6; b++ {
		m.Connect(0, b)
	}
	m.Prune(0, func(int) bool { return false })
	if m.Degree(0) != 0 {
		t.Fatalf("degree %d after pruning all, want 0", m.Degree(0))
	}
	if !m.Symmetric() {
		t.Fatal("mesh asymmetric after pruning all")
	}
}
