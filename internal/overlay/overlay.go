// Package overlay provides the unstructured-P2P building blocks shared by
// SocialTube and the baseline protocols: bounded neighbour sets, symmetric
// link meshes and TTL-scoped flood search.
package overlay

import (
	"sort"
)

// Links is a bounded set of neighbour node ids. The zero value is unusable;
// construct with NewLinks.
type Links struct {
	max int
	set map[int]bool
}

// NewLinks returns a neighbour set bounded to max entries (max <= 0 means
// unbounded).
func NewLinks(max int) *Links {
	return &Links{max: max, set: make(map[int]bool)}
}

// Add inserts a neighbour. It reports false when the set is full or the
// neighbour is already present.
func (l *Links) Add(n int) bool {
	if l.set[n] {
		return false
	}
	if l.max > 0 && len(l.set) >= l.max {
		return false
	}
	l.set[n] = true
	return true
}

// Remove deletes a neighbour if present.
func (l *Links) Remove(n int) { delete(l.set, n) }

// Has reports whether n is a neighbour.
func (l *Links) Has(n int) bool { return l.set[n] }

// Len returns the number of neighbours.
func (l *Links) Len() int { return len(l.set) }

// Full reports whether the set is at capacity.
func (l *Links) Full() bool { return l.max > 0 && len(l.set) >= l.max }

// Max returns the capacity (0 = unbounded).
func (l *Links) Max() int { return l.max }

// List returns the neighbours in ascending order (a copy).
func (l *Links) List() []int {
	out := make([]int, 0, len(l.set))
	for n := range l.set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Clear removes all neighbours.
func (l *Links) Clear() {
	l.set = make(map[int]bool)
}

// Mesh maintains symmetric bounded links between nodes: an edge exists on
// both endpoints or not at all, which is the paper's structure-maintenance
// invariant (neighbours probe each other and drop dead links on both sides).
type Mesh struct {
	max   int
	nodes map[int]*Links
}

// NewMesh returns a mesh whose nodes each hold at most max links
// (max <= 0 means unbounded).
func NewMesh(max int) *Mesh {
	return &Mesh{max: max, nodes: make(map[int]*Links)}
}

func (m *Mesh) links(n int) *Links {
	l, ok := m.nodes[n]
	if !ok {
		l = NewLinks(m.max)
		m.nodes[n] = l
	}
	return l
}

// Connect adds the symmetric edge (a, b). It reports false — and changes
// nothing — when a == b, the edge exists, or either endpoint is full.
func (m *Mesh) Connect(a, b int) bool {
	if a == b {
		return false
	}
	la, lb := m.links(a), m.links(b)
	if la.Has(b) || la.Full() || lb.Full() {
		return false
	}
	la.Add(b)
	lb.Add(a)
	return true
}

// Disconnect removes the symmetric edge (a, b) if present.
func (m *Mesh) Disconnect(a, b int) {
	if la, ok := m.nodes[a]; ok {
		la.Remove(b)
	}
	if lb, ok := m.nodes[b]; ok {
		lb.Remove(a)
	}
}

// Connected reports whether the edge (a, b) exists.
func (m *Mesh) Connected(a, b int) bool {
	la, ok := m.nodes[a]
	return ok && la.Has(b)
}

// Neighbors returns a's neighbours in ascending order.
func (m *Mesh) Neighbors(a int) []int {
	la, ok := m.nodes[a]
	if !ok {
		return nil
	}
	return la.List()
}

// Degree returns the number of links a holds.
func (m *Mesh) Degree(a int) int {
	la, ok := m.nodes[a]
	if !ok {
		return 0
	}
	return la.Len()
}

// Full reports whether a cannot take more links.
func (m *Mesh) Full(a int) bool {
	la, ok := m.nodes[a]
	return ok && la.Full()
}

// RemoveNode drops a and all its edges (both directions).
func (m *Mesh) RemoveNode(a int) {
	la, ok := m.nodes[a]
	if !ok {
		return
	}
	for _, b := range la.List() {
		if lb, ok := m.nodes[b]; ok {
			lb.Remove(a)
		}
	}
	delete(m.nodes, a)
}

// Nodes returns all node ids with at least one link record, ascending.
func (m *Mesh) Nodes() []int {
	out := make([]int, 0, len(m.nodes))
	for n := range m.nodes {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Symmetric verifies the mesh invariant: every link is present on both
// endpoints. It returns true for a consistent mesh.
func (m *Mesh) Symmetric() bool {
	for a, la := range m.nodes {
		for _, b := range la.List() {
			lb, ok := m.nodes[b]
			if !ok || !lb.Has(a) {
				return false
			}
		}
	}
	return true
}

// FloodResult reports the outcome of a TTL-scoped flood search.
type FloodResult struct {
	// Found is the first node matching the predicate, in BFS order.
	Found int
	// OK reports whether any node matched.
	OK bool
	// Hops is the BFS depth at which the match was found (1 = direct
	// neighbour). Zero when no match.
	Hops int
	// Messages counts query transmissions: every edge traversal from an
	// expanded node, duplicates included — the cost the TTL exists to
	// bound.
	Messages int
	// Visited counts distinct nodes that processed the query.
	Visited int
}

// Flood performs the paper's query forwarding: origin sends the query to its
// neighbours with the given TTL; each receiver that does not match forwards
// to its own neighbours while TTL remains. neighbors supplies adjacency and
// match is the "has the video" predicate. The origin itself is not matched.
func Flood(origin int, ttl int, neighbors func(int) []int, match func(int) bool) FloodResult {
	var res FloodResult
	if ttl <= 0 || neighbors == nil || match == nil {
		return res
	}
	visited := map[int]bool{origin: true}
	frontier := []int{origin}
	for depth := 1; depth <= ttl; depth++ {
		var next []int
		for _, sender := range frontier {
			for _, nb := range neighbors(sender) {
				res.Messages++
				if visited[nb] {
					continue
				}
				visited[nb] = true
				res.Visited++
				if match(nb) {
					res.Found = nb
					res.OK = true
					res.Hops = depth
					return res
				}
				next = append(next, nb)
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return res
}
