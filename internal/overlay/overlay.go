// Package overlay provides the unstructured-P2P building blocks shared by
// SocialTube and the baseline protocols: bounded neighbour sets, symmetric
// link meshes and TTL-scoped flood search.
//
// Data layout: neighbour sets are small (the paper's N_l=5, N_h=10 bounds),
// so Links stores a single sorted []int instead of a map. Membership is a
// binary search, iteration is allocation-free and already in ascending
// order, and the flood hot path reads adjacency through View/NeighborsView
// without copying.
package overlay

import (
	"sort"
)

// Links is a bounded set of neighbour node ids, kept sorted ascending. The
// zero value is unusable; construct with NewLinks.
type Links struct {
	max   int
	items []int // sorted ascending
}

// NewLinks returns a neighbour set bounded to max entries (max <= 0 means
// unbounded). Small bounded sets (the common N_l/N_h case) allocate their
// full backing array up front so Add never reallocates.
func NewLinks(max int) *Links {
	l := &Links{max: max}
	if max > 0 && max <= 64 {
		l.items = make([]int, 0, max)
	}
	return l
}

// search returns the insertion index of n and whether n is present.
func (l *Links) search(n int) (int, bool) {
	i := sort.SearchInts(l.items, n)
	return i, i < len(l.items) && l.items[i] == n
}

// Add inserts a neighbour. It reports false when the set is full or the
// neighbour is already present.
func (l *Links) Add(n int) bool {
	i, ok := l.search(n)
	if ok {
		return false
	}
	if l.max > 0 && len(l.items) >= l.max {
		return false
	}
	l.items = append(l.items, 0)
	copy(l.items[i+1:], l.items[i:])
	l.items[i] = n
	return true
}

// Remove deletes a neighbour if present.
func (l *Links) Remove(n int) {
	i, ok := l.search(n)
	if !ok {
		return
	}
	l.items = append(l.items[:i], l.items[i+1:]...)
}

// Has reports whether n is a neighbour.
func (l *Links) Has(n int) bool {
	_, ok := l.search(n)
	return ok
}

// Len returns the number of neighbours.
func (l *Links) Len() int { return len(l.items) }

// Full reports whether the set is at capacity.
func (l *Links) Full() bool { return l.max > 0 && len(l.items) >= l.max }

// Max returns the capacity (0 = unbounded).
func (l *Links) Max() int { return l.max }

// List returns the neighbours in ascending order (a copy the caller owns).
func (l *Links) List() []int {
	out := make([]int, len(l.items))
	copy(out, l.items)
	return out
}

// View returns the neighbours in ascending order without copying. The slice
// is live: it is invalidated by the next Add/Remove/Clear and must not be
// mutated or retained across mutations. Use List for a stable copy.
func (l *Links) View() []int { return l.items }

// Clear removes all neighbours, reusing the backing storage.
func (l *Links) Clear() {
	l.items = l.items[:0]
}

// Mesh maintains symmetric bounded links between nodes: an edge exists on
// both endpoints or not at all, which is the paper's structure-maintenance
// invariant (neighbours probe each other and drop dead links on both sides).
type Mesh struct {
	max   int
	nodes map[int]*Links
}

// NewMesh returns a mesh whose nodes each hold at most max links
// (max <= 0 means unbounded).
func NewMesh(max int) *Mesh {
	return &Mesh{max: max, nodes: make(map[int]*Links)}
}

func (m *Mesh) links(n int) *Links {
	l, ok := m.nodes[n]
	if !ok {
		l = NewLinks(m.max)
		m.nodes[n] = l
	}
	return l
}

// Connect adds the symmetric edge (a, b). It reports false — and changes
// nothing — when a == b, the edge exists, or either endpoint is full.
func (m *Mesh) Connect(a, b int) bool {
	if a == b {
		return false
	}
	la, lb := m.links(a), m.links(b)
	if la.Has(b) || la.Full() || lb.Full() {
		return false
	}
	la.Add(b)
	lb.Add(a)
	return true
}

// Disconnect removes the symmetric edge (a, b) if present.
func (m *Mesh) Disconnect(a, b int) {
	if la, ok := m.nodes[a]; ok {
		la.Remove(b)
	}
	if lb, ok := m.nodes[b]; ok {
		lb.Remove(a)
	}
}

// Connected reports whether the edge (a, b) exists.
func (m *Mesh) Connected(a, b int) bool {
	la, ok := m.nodes[a]
	return ok && la.Has(b)
}

// Neighbors returns a's neighbours in ascending order (a copy the caller
// owns).
func (m *Mesh) Neighbors(a int) []int {
	la, ok := m.nodes[a]
	if !ok || len(la.items) == 0 {
		return nil
	}
	return la.List()
}

// NeighborsView returns a's neighbours in ascending order without copying —
// the allocation-free adjacency read the flood hot path uses. The slice is
// live: it is invalidated by the next mutation of a's links and must not be
// mutated or retained across Connect/Disconnect/RemoveNode.
func (m *Mesh) NeighborsView(a int) []int {
	la, ok := m.nodes[a]
	if !ok {
		return nil
	}
	return la.View()
}

// Degree returns the number of links a holds.
func (m *Mesh) Degree(a int) int {
	la, ok := m.nodes[a]
	if !ok {
		return 0
	}
	return la.Len()
}

// Full reports whether a cannot take more links.
func (m *Mesh) Full(a int) bool {
	la, ok := m.nodes[a]
	return ok && la.Full()
}

// RemoveNode drops a and all its edges (both directions).
func (m *Mesh) RemoveNode(a int) {
	la, ok := m.nodes[a]
	if !ok {
		return
	}
	for _, b := range la.View() {
		if lb, ok := m.nodes[b]; ok {
			lb.Remove(a)
		}
	}
	delete(m.nodes, a)
}

// Prune removes a's edges to every neighbour failing keep and reports the
// number of neighbours examined — the probe/repair primitive. It runs
// without allocating: the neighbour list is walked in descending order so
// in-place removals never shift an unvisited entry.
func (m *Mesh) Prune(a int, keep func(int) bool) int {
	la, ok := m.nodes[a]
	if !ok {
		return 0
	}
	nbs := la.View()
	examined := len(nbs)
	for i := len(nbs) - 1; i >= 0; i-- {
		b := nbs[i]
		if keep(b) {
			continue
		}
		la.Remove(b)
		if lb, ok := m.nodes[b]; ok {
			lb.Remove(a)
		}
	}
	return examined
}

// Nodes returns all node ids with at least one link record, ascending.
func (m *Mesh) Nodes() []int {
	out := make([]int, 0, len(m.nodes))
	for n := range m.nodes {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Symmetric verifies the mesh invariant: every link is present on both
// endpoints. It returns true for a consistent mesh.
func (m *Mesh) Symmetric() bool {
	for a, la := range m.nodes {
		for _, b := range la.View() {
			lb, ok := m.nodes[b]
			if !ok || !lb.Has(a) {
				return false
			}
		}
	}
	return true
}

// FloodResult reports the outcome of a TTL-scoped flood search.
type FloodResult struct {
	// Found is the first node matching the predicate, in BFS order.
	Found int
	// OK reports whether any node matched.
	OK bool
	// Hops is the BFS depth at which the match was found (1 = direct
	// neighbour). Zero when no match.
	Hops int
	// Messages counts query transmissions: every edge traversal from an
	// expanded node, duplicates included — the cost the TTL exists to
	// bound.
	Messages int
	// Visited counts distinct nodes that processed the query.
	Visited int
}

// FloodScratch is reusable flood-search state: an epoch-stamped visited
// array plus two frontier buffers. One scratch serves any number of
// sequential floods with zero steady-state allocation — the visited array
// grows to the highest node id seen and is never cleared (bumping the epoch
// invalidates all stamps at once). The zero value is ready to use. A
// scratch must not be shared between concurrent floods.
type FloodScratch struct {
	epoch    uint32
	visited  []uint32 // visited[n] == epoch ⇔ n visited this flood
	frontier []int
	next     []int
}

// NewFloodScratch returns a scratch pre-sized for node ids below n, so the
// first floods do not grow the visited array incrementally.
func NewFloodScratch(n int) *FloodScratch {
	if n < 0 {
		n = 0
	}
	return &FloodScratch{visited: make([]uint32, n)}
}

// mark stamps n as visited in the current epoch, growing the array when n
// is beyond its current bound.
func (s *FloodScratch) mark(n int) {
	if n >= len(s.visited) {
		grown := make([]uint32, n+1+n/2)
		copy(grown, s.visited)
		s.visited = grown
	}
	s.visited[n] = s.epoch
}

func (s *FloodScratch) seen(n int) bool {
	return n < len(s.visited) && s.visited[n] == s.epoch
}

// Flood runs one TTL-scoped flood search reusing the scratch buffers; see
// the package-level Flood for the search semantics. Negative node ids are
// not supported (node ids are dense user indices).
func (s *FloodScratch) Flood(origin int, ttl int, neighbors func(int) []int, match func(int) bool) FloodResult {
	var res FloodResult
	if ttl <= 0 || origin < 0 || neighbors == nil || match == nil {
		return res
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could collide, so reset all
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	s.mark(origin)
	s.frontier = append(s.frontier[:0], origin)
	for depth := 1; depth <= ttl; depth++ {
		s.next = s.next[:0]
		for _, sender := range s.frontier {
			for _, nb := range neighbors(sender) {
				res.Messages++
				if s.seen(nb) {
					continue
				}
				s.mark(nb)
				res.Visited++
				if match(nb) {
					res.Found = nb
					res.OK = true
					res.Hops = depth
					return res
				}
				s.next = append(s.next, nb)
			}
		}
		s.frontier, s.next = s.next, s.frontier
		if len(s.frontier) == 0 {
			break
		}
	}
	return res
}

// Flood performs the paper's query forwarding: origin sends the query to its
// neighbours with the given TTL; each receiver that does not match forwards
// to its own neighbours while TTL remains. neighbors supplies adjacency and
// match is the "has the video" predicate. The origin itself is not matched.
//
// This wrapper allocates fresh scratch state per call; hot paths should
// hold a FloodScratch and call its Flood method instead.
func Flood(origin int, ttl int, neighbors func(int) []int, match func(int) bool) FloodResult {
	var s FloodScratch
	return s.Flood(origin, ttl, neighbors, match)
}
