package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func ioTrace(t *testing.T) *Trace {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 17
	cfg.Users = 300
	cfg.Channels = 60
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// mustJSON canonicalizes a trace through the legacy document encoding:
// two traces with identical exported content render identically.
func mustJSON(t *testing.T, tr *Trace) string {
	t.Helper()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStreamRoundTrip pins the chunked codec against itself and the
// legacy codec: the same seeded trace survives either encoding with
// byte-identical JSON content and identical deterministic accounting.
func TestStreamRoundTrip(t *testing.T) {
	tr := ioTrace(t)
	want := mustJSON(t, tr)

	var legacy, stream bytes.Buffer
	if err := tr.Save(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveStream(&stream); err != nil {
		t.Fatal(err)
	}
	fromLegacy, err := Load(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	fromStream, err := Load(&stream) // Load must sniff the stream header
	if err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, fromLegacy); got != want {
		t.Error("legacy round-trip changed the trace")
	}
	if got := mustJSON(t, fromStream); got != want {
		t.Error("stream round-trip changed the trace")
	}
	if got, want := fromStream.Bytes(), fromLegacy.Bytes(); got != want {
		t.Errorf("accounting differs across codecs: stream %d bytes, legacy %d", got, want)
	}
}

// TestStreamDeterministic pins the encoding itself: one trace always
// streams to the same bytes.
func TestStreamDeterministic(t *testing.T) {
	tr := ioTrace(t)
	var a, b bytes.Buffer
	if err := tr.SaveStream(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveStream(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two SaveStream runs of one trace differ")
	}
}

// TestStreamTruncated covers the partial-file error paths: a missing
// eof trailer and a cut mid-chunk must both fail loudly, never return a
// silently smaller trace.
func TestStreamTruncated(t *testing.T) {
	tr := ioTrace(t)
	var buf bytes.Buffer
	if err := tr.SaveStream(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.SplitAfter(full, "\n")
	if len(lines) < 3 {
		t.Fatalf("stream has %d lines, want header+chunks+trailer", len(lines))
	}

	noTrailer := strings.Join(lines[:len(lines)-2], "")
	if _, err := LoadStream(strings.NewReader(noTrailer)); !errors.Is(err, ErrTruncated) {
		t.Errorf("missing trailer: err = %v, want ErrTruncated", err)
	}

	midChunk := full[:len(full)/2]
	if _, err := LoadStream(strings.NewReader(midChunk)); err == nil {
		t.Error("cut mid-chunk loaded without error")
	}

	if _, err := LoadStream(strings.NewReader(lines[0])); !errors.Is(err, ErrTruncated) {
		t.Errorf("header only: err = %v, want ErrTruncated", err)
	}
}

// TestStreamCorrupt covers malformed inputs: garbage chunk lines, a
// wrong format tag, and header/stream count mismatches.
func TestStreamCorrupt(t *testing.T) {
	tr := ioTrace(t)
	var buf bytes.Buffer
	if err := tr.SaveStream(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")

	corrupt := lines[0] + "{not json}\n"
	if _, err := LoadStream(strings.NewReader(corrupt)); err == nil {
		t.Error("garbage chunk line loaded without error")
	}

	badTag := strings.Replace(lines[0], StreamFormat, "socialtube-trace/v999", 1)
	if _, err := LoadStream(strings.NewReader(badTag + strings.Join(lines[1:], ""))); err == nil {
		t.Error("wrong format tag loaded without error")
	}

	// Understate the user count: the stream then carries more users
	// than promised, which must be reported, not absorbed.
	lied := strings.Replace(lines[0],
		`"users":`+itoa(len(tr.Users)), `"users":`+itoa(len(tr.Users)-1), 1)
	if lied == lines[0] {
		t.Fatal("test bug: header rewrite did not change the user count")
	}
	if _, err := LoadStream(strings.NewReader(lied + strings.Join(lines[1:], ""))); !errors.Is(err, ErrTruncated) {
		t.Errorf("count mismatch: err = %v, want ErrTruncated", err)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestLegacyLoadStillWorks pins the legacy path for documents that do
// not start with the stream header.
func TestLegacyLoadStillWorks(t *testing.T) {
	tr := ioTrace(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Users) != len(tr.Users) {
		t.Fatalf("legacy load: %d users, want %d", len(loaded.Users), len(tr.Users))
	}
}
