package trace

import (
	"errors"
	"testing"

	"github.com/socialtube/socialtube/internal/dist"
)

// subGenerator hand-builds a minimal generator: nPerCat channels in each
// of nCats categories, uniform popularity, no users or videos yet.
func subGenerator(t *testing.T, nCats, nPerCat int) *generator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Categories = nCats
	gen := &generator{
		cfg:   cfg,
		g:     dist.NewRNG(3),
		tr:    &Trace{Categories: nCats},
		byCat: make([][]ChannelID, nCats),
	}
	for c := 0; c < nCats; c++ {
		for i := 0; i < nPerCat; i++ {
			id := ChannelID(len(gen.tr.Channels))
			gen.tr.Channels = append(gen.tr.Channels, Channel{
				ID:         id,
				Primary:    CategoryID(c),
				Categories: []CategoryID{CategoryID(c)},
			})
			gen.chanPop = append(gen.chanPop, 1)
			gen.byCat[c] = append(gen.byCat[c], id)
		}
	}
	return gen
}

// TestPickSubscriptionSingleInterest pins the single-interest path: a
// user with exactly one interest and a fully aligned draw must always
// subscribe inside that category (the 1-element Zipf is valid, not an
// error to be swallowed into a popularity-weighted global fallback).
func TestPickSubscriptionSingleInterest(t *testing.T) {
	gen := subGenerator(t, 3, 4)
	gen.cfg.InterestAlignedSubscriptionP = 1
	u := &User{Interests: []CategoryID{2}}
	for i := 0; i < 100; i++ {
		ch, err := gen.pickSubscription(u)
		if err != nil {
			t.Fatal(err)
		}
		if ch < 0 {
			t.Fatalf("draw %d: no channel picked", i)
		}
		if got := gen.tr.Channels[ch].Primary; got != 2 {
			t.Fatalf("draw %d: subscribed to category %d, want the user's single interest 2", i, got)
		}
	}
}

// TestPickSubscriptionEmptyCategoryFallsBack pins the explicit
// fallback: when no channel has the drawn category as its primary, the
// subscription comes from the global popularity-weighted draw instead.
func TestPickSubscriptionEmptyCategoryFallsBack(t *testing.T) {
	gen := subGenerator(t, 3, 4)
	gen.cfg.InterestAlignedSubscriptionP = 1
	// Empty out category 1: its channels move nowhere, the index just
	// stops listing them.
	gen.byCat[1] = nil
	u := &User{Interests: []CategoryID{1}}
	for i := 0; i < 20; i++ {
		ch, err := gen.pickSubscription(u)
		if err != nil {
			t.Fatal(err)
		}
		if ch < 0 {
			t.Fatalf("draw %d: fallback picked no channel", i)
		}
	}
}

// TestZipfForSurfacesBadParameters pins the error path that
// pickSubscription used to swallow: impossible Zipf parameters are
// reported, not silently absorbed.
func TestZipfForSurfacesBadParameters(t *testing.T) {
	gen := subGenerator(t, 2, 1)
	if _, err := gen.zipfFor(0, interestZipfS); !errors.Is(err, dist.ErrBadParameter) {
		t.Fatalf("zipfFor(0, s) error = %v, want ErrBadParameter", err)
	}
	if _, err := gen.zipfFor(5, -1); !errors.Is(err, dist.ErrBadParameter) {
		t.Fatalf("zipfFor(n, -1) error = %v, want ErrBadParameter", err)
	}
}

// TestZipfForCaches pins the sampler cache: repeated (n, s) pairs reuse
// one sampler (construction is O(n) — per-draw construction made 1M-user
// generation quadratic) and distinct pairs get distinct samplers.
func TestZipfForCaches(t *testing.T) {
	gen := subGenerator(t, 2, 1)
	a, err := gen.zipfFor(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.zipfFor(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same (n, s) returned a new sampler; cache miss")
	}
	c, err := gen.zipfFor(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different n returned the cached sampler")
	}
}
