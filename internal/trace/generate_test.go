package trace

import (
	"testing"
	"testing/quick"
	"time"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Channels = 60
	cfg.Users = 300
	cfg.Categories = 8
	cfg.MaxInterestsPerUser = 8
	cfg.MaxVideosPerChannel = 100
	return cfg
}

func mustGenerate(t *testing.T, cfg Config) *Trace {
	t.Helper()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero categories", func(c *Config) { c.Categories = 0 }},
		{"zero channels", func(c *Config) { c.Channels = 0 }},
		{"zero users", func(c *Config) { c.Users = 0 }},
		{"tiny max videos", func(c *Config) { c.MaxVideosPerChannel = 1 }},
		{"zero zipf", func(c *Config) { c.ZipfExponent = 0 }},
		{"zero interests", func(c *Config) { c.MaxInterestsPerUser = 0 }},
		{"interests above categories", func(c *Config) { c.MaxInterestsPerUser = c.Categories + 1 }},
		{"negative align p", func(c *Config) { c.InterestAlignedSubscriptionP = -0.1 }},
		{"align p above one", func(c *Config) { c.InterestAlignedSubscriptionP = 1.1 }},
		{"zero span", func(c *Config) { c.Span = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error, got nil")
			}
			if _, err := Generate(cfg); err == nil {
				t.Fatal("Generate accepted invalid config")
			}
		})
	}
}

func TestDefaultConfigIsValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestGenerateProducesRequestedCounts(t *testing.T) {
	cfg := smallConfig(1)
	tr := mustGenerate(t, cfg)
	if got := len(tr.Channels); got != cfg.Channels {
		t.Errorf("channels = %d, want %d", got, cfg.Channels)
	}
	if got := len(tr.Users); got != cfg.Users {
		t.Errorf("users = %d, want %d", got, cfg.Users)
	}
	if len(tr.Videos) == 0 {
		t.Error("no videos generated")
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := mustGenerate(t, smallConfig(7))
	b := mustGenerate(t, smallConfig(7))
	if len(a.Videos) != len(b.Videos) {
		t.Fatalf("video counts differ: %d vs %d", len(a.Videos), len(b.Videos))
	}
	for i := range a.Videos {
		if a.Videos[i].Views != b.Videos[i].Views || a.Videos[i].Uploaded != b.Videos[i].Uploaded {
			t.Fatalf("video %d differs between same-seed runs", i)
		}
	}
	for i := range a.Users {
		if len(a.Users[i].Subscriptions) != len(b.Users[i].Subscriptions) {
			t.Fatalf("user %d subscriptions differ", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := mustGenerate(t, smallConfig(1))
	b := mustGenerate(t, smallConfig(2))
	if len(a.Videos) == len(b.Videos) {
		same := true
		for i := range a.Videos {
			if a.Videos[i].Views != b.Videos[i].Views {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGeneratedTraceValidates(t *testing.T) {
	tr := mustGenerate(t, smallConfig(3))
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace fails validation: %v", err)
	}
}

// TestVideoTotalsConserved: the union of per-channel video lists is exactly
// the global video list.
func TestVideoTotalsConserved(t *testing.T) {
	tr := mustGenerate(t, smallConfig(4))
	total := 0
	seen := make(map[VideoID]bool)
	for _, ch := range tr.Channels {
		total += len(ch.Videos)
		for _, vid := range ch.Videos {
			if seen[vid] {
				t.Fatalf("video %d listed in two channels", vid)
			}
			seen[vid] = true
		}
	}
	if total != len(tr.Videos) {
		t.Errorf("sum of channel videos = %d, want %d", total, len(tr.Videos))
	}
}

// TestWithinChannelZipfRanks: within each channel, views are non-increasing
// in rank (rank 1 most popular), matching Fig. 9.
func TestWithinChannelZipfRanks(t *testing.T) {
	tr := mustGenerate(t, smallConfig(5))
	for _, ch := range tr.Channels {
		var prev int64 = 1<<62 - 1
		for _, vid := range ch.Videos {
			v := tr.Videos[vid]
			if v.Views > prev {
				t.Fatalf("channel %d: views increase with rank (%d > %d)", ch.ID, v.Views, prev)
			}
			prev = v.Views
		}
	}
}

// TestSubscriptionsSymmetric: channel.Subscribers and user.Subscriptions are
// mutually consistent.
func TestSubscriptionsSymmetric(t *testing.T) {
	tr := mustGenerate(t, smallConfig(6))
	subs := make(map[ChannelID]map[UserID]bool)
	for _, ch := range tr.Channels {
		m := make(map[UserID]bool, len(ch.Subscribers))
		for _, u := range ch.Subscribers {
			m[u] = true
		}
		subs[ch.ID] = m
	}
	for _, u := range tr.Users {
		for _, cid := range u.Subscriptions {
			if !subs[cid][u.ID] {
				t.Fatalf("user %d subscribes to channel %d but is not in its subscriber list", u.ID, cid)
			}
		}
	}
	// Reverse direction: every subscriber appears in the user's list.
	userSubs := make(map[UserID]map[ChannelID]bool)
	for _, u := range tr.Users {
		m := make(map[ChannelID]bool, len(u.Subscriptions))
		for _, c := range u.Subscriptions {
			m[c] = true
		}
		userSubs[u.ID] = m
	}
	for _, ch := range tr.Channels {
		for _, uid := range ch.Subscribers {
			if !userSubs[uid][ch.ID] {
				t.Fatalf("channel %d lists subscriber %d who does not subscribe", ch.ID, uid)
			}
		}
	}
}

func TestInterestsBounded(t *testing.T) {
	cfg := smallConfig(8)
	tr := mustGenerate(t, cfg)
	for _, u := range tr.Users {
		if len(u.Interests) == 0 {
			t.Fatalf("user %d has no interests", u.ID)
		}
		if len(u.Interests) > cfg.MaxInterestsPerUser {
			t.Fatalf("user %d has %d interests, cap %d", u.ID, len(u.Interests), cfg.MaxInterestsPerUser)
		}
		seen := make(map[CategoryID]bool)
		for _, c := range u.Interests {
			if seen[c] {
				t.Fatalf("user %d has duplicate interest %d", u.ID, c)
			}
			seen[c] = true
		}
	}
}

func TestChannelCategoriesIncludePrimary(t *testing.T) {
	tr := mustGenerate(t, smallConfig(9))
	for _, ch := range tr.Channels {
		found := false
		for _, c := range ch.Categories {
			if c == ch.Primary {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("channel %d categories %v missing primary %d", ch.ID, ch.Categories, ch.Primary)
		}
		if len(ch.Categories) > 5 {
			t.Fatalf("channel %d spans %d categories, cap 5", ch.ID, len(ch.Categories))
		}
	}
}

func TestUploadDatesWithinSpan(t *testing.T) {
	cfg := smallConfig(10)
	tr := mustGenerate(t, cfg)
	for _, v := range tr.Videos {
		if v.Uploaded.Before(tr.Start) || v.Uploaded.After(tr.End) {
			t.Fatalf("video %d uploaded %v outside [%v, %v]", v.ID, v.Uploaded, tr.Start, tr.End)
		}
	}
}

func TestVideoLengthsShortForm(t *testing.T) {
	tr := mustGenerate(t, smallConfig(11))
	for _, v := range tr.Videos {
		if v.Length < 10*time.Second || v.Length > 30*time.Minute {
			t.Fatalf("video %d length %v outside short-video bounds", v.ID, v.Length)
		}
	}
}

// Property: any valid random configuration yields a trace that passes
// Validate and conserves totals.
func TestGeneratePropertyValidTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("property test with repeated generation")
	}
	f := func(seed int64, chRaw, userRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Channels = 5 + int(chRaw%40)
		cfg.Users = 20 + int(userRaw)
		cfg.Categories = 6
		cfg.MaxInterestsPerUser = 6
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		n := 0
		for _, ch := range tr.Channels {
			n += len(ch.Videos)
		}
		return n == len(tr.Videos)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestVideoCountMultiplier(t *testing.T) {
	base := smallConfig(15)
	tr1, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.VideoCountMultiplier = 4
	scaled.MaxVideosPerChannel = base.MaxVideosPerChannel * 4
	tr4, err := Generate(scaled)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(tr4.Videos)) / float64(len(tr1.Videos))
	if ratio < 2.5 || ratio > 12 {
		t.Fatalf("multiplier 4 scaled videos by %.2f (from %d to %d)", ratio, len(tr1.Videos), len(tr4.Videos))
	}
	if err := tr4.Validate(); err != nil {
		t.Fatalf("scaled trace invalid: %v", err)
	}
}

func TestVideoCountMultiplierRejectsNegative(t *testing.T) {
	cfg := smallConfig(16)
	cfg.VideoCountMultiplier = -1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("negative multiplier accepted")
	}
}

// TestInterestsDerivedFromFavorites mirrors the paper's methodology: a
// user's interests are the categories of its favourite videos.
func TestInterestsDerivedFromFavorites(t *testing.T) {
	tr := mustGenerate(t, smallConfig(17))
	checked := 0
	for _, u := range tr.Users {
		if len(u.Favorites) == 0 {
			continue
		}
		favCats := make(map[CategoryID]bool)
		for _, vid := range u.Favorites {
			favCats[tr.Videos[vid].Category] = true
		}
		for _, c := range u.Interests {
			if !favCats[c] {
				t.Fatalf("user %d interest %d not among favourite categories", u.ID, c)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no users with favourites")
	}
}
