package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
)

// Config controls synthetic trace generation. The defaults reproduce the
// shape of the paper's crawl (Section III) at laptop scale; the benches grow
// a trace toward the paper's 10,000-node simulations by raising Users and
// Channels together.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Categories is the number of interest categories. YouTube has ~18;
	// the paper's PlanetLab runs use 6.
	Categories int
	// Channels is the number of channels to generate (paper sim: 545).
	Channels int
	// Users is the number of users (paper sim: 10,000).
	Users int
	// MaxVideosPerChannel caps the heavy per-channel tail (Fig. 6).
	MaxVideosPerChannel int
	// VideoCountMultiplier scales the per-channel video count draw
	// (0 or 1 = none). The paper's simulation uses 545 channels holding
	// 101,121 videos — a mean of ≈185/channel, far above the crawl-wide
	// Fig. 6 median of 9, because the simulated channels are the
	// video-rich popular ones. Paper-scale runs set this multiplier to
	// recover that catalog size.
	VideoCountMultiplier float64
	// ZipfExponent is the within-channel popularity exponent s (Fig. 9
	// measures s ≈ 1).
	ZipfExponent float64
	// MaxInterestsPerUser bounds user interests (Fig. 13: max ≈18).
	MaxInterestsPerUser int
	// MeanSubscriptionsPerUser sets the average number of channels a user
	// subscribes to.
	MeanSubscriptionsPerUser float64
	// InterestAlignedSubscriptionP is the probability a subscription is
	// drawn from the user's own interest categories (Fig. 12: median
	// similarity 1.0, i.e. most subscriptions align with interests).
	InterestAlignedSubscriptionP float64
	// MeanFavoritesPerUser sets how many favourites each user marks.
	MeanFavoritesPerUser float64
	// Span is the period the trace covers (Fig. 2 plots uploads over it).
	Span time.Duration
	// Start is the first upload date.
	Start time.Time
}

// DefaultConfig returns a laptop-scale configuration whose ratios follow the
// paper's simulation settings (Table I): 545 channels holding ~101k videos
// watched by 10k users is the full scale; the default shrinks users while
// keeping the distributions' shape.
func DefaultConfig() Config {
	return Config{
		Seed:                         1,
		Categories:                   18,
		Channels:                     545,
		Users:                        2000,
		MaxVideosPerChannel:          400,
		ZipfExponent:                 1.0,
		MaxInterestsPerUser:          18,
		MeanSubscriptionsPerUser:     6,
		InterestAlignedSubscriptionP: 0.85,
		MeanFavoritesPerUser:         8,
		Span:                         2 * 365 * 24 * time.Hour,
		Start:                        time.Date(2008, time.January, 18, 0, 0, 0, 0, time.UTC),
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Categories <= 0:
		return fmt.Errorf("%w: categories=%d", dist.ErrBadParameter, c.Categories)
	case c.Channels <= 0:
		return fmt.Errorf("%w: channels=%d", dist.ErrBadParameter, c.Channels)
	case c.Users <= 0:
		return fmt.Errorf("%w: users=%d", dist.ErrBadParameter, c.Users)
	case c.MaxVideosPerChannel < 2:
		return fmt.Errorf("%w: maxVideosPerChannel=%d", dist.ErrBadParameter, c.MaxVideosPerChannel)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("%w: zipfExponent=%v", dist.ErrBadParameter, c.ZipfExponent)
	case c.MaxInterestsPerUser <= 0 || c.MaxInterestsPerUser > c.Categories:
		return fmt.Errorf("%w: maxInterestsPerUser=%d", dist.ErrBadParameter, c.MaxInterestsPerUser)
	case c.InterestAlignedSubscriptionP < 0 || c.InterestAlignedSubscriptionP > 1:
		return fmt.Errorf("%w: interestAlignedSubscriptionP=%v", dist.ErrBadParameter, c.InterestAlignedSubscriptionP)
	case c.Span <= 0:
		return fmt.Errorf("%w: span=%v", dist.ErrBadParameter, c.Span)
	case c.VideoCountMultiplier < 0:
		return fmt.Errorf("%w: videoCountMultiplier=%v", dist.ErrBadParameter, c.VideoCountMultiplier)
	}
	return nil
}

// generator holds the per-run state of a single Generate call so concurrent
// generations never share mutable state.
type generator struct {
	cfg        Config
	g          *dist.RNG
	tr         *Trace
	catWeights []float64
	chanPop    []float64     // per-channel popularity weight
	byCat      [][]ChannelID // channels indexed by primary category
	zipfCache  map[zipfKey]*dist.Zipf
}

type zipfKey struct {
	n int
	s float64
}

// zipfFor returns a cached Zipf sampler for (n, s). Constructing a
// sampler is O(n) and draws nothing from the RNG, so caching keeps the
// generation stream bit-identical while turning the per-favourite
// construction from quadratic to linear at paper scale (1M users drawing
// from channels holding hundreds of videos each).
func (gen *generator) zipfFor(n int, s float64) (*dist.Zipf, error) {
	k := zipfKey{n, s}
	if z, ok := gen.zipfCache[k]; ok {
		return z, nil
	}
	z, err := dist.NewZipf(n, s)
	if err != nil {
		return nil, err
	}
	if gen.zipfCache == nil {
		gen.zipfCache = make(map[zipfKey]*dist.Zipf)
	}
	gen.zipfCache[k] = z
	return z, nil
}

// Generate builds a synthetic trace from the configuration. The same
// configuration always yields the same trace.
func Generate(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("trace config: %w", err)
	}
	gen := &generator{
		cfg: cfg,
		g:   dist.NewRNG(cfg.Seed),
		tr: &Trace{
			Seed:       cfg.Seed,
			Categories: cfg.Categories,
			Start:      cfg.Start,
			End:        cfg.Start.Add(cfg.Span),
		},
	}
	gen.catWeights = categoryWeights(gen.g, cfg.Categories)
	if err := gen.channels(); err != nil {
		return nil, err
	}
	// Users (and their subscriptions) come before videos so channel view
	// counts can scale with real subscriber counts — the strong positive
	// correlation of Fig. 5.
	if err := gen.users(); err != nil {
		return nil, err
	}
	if err := gen.videos(); err != nil {
		return nil, err
	}
	for i := range gen.tr.Users {
		u := &gen.tr.Users[i]
		if err := gen.favorites(u); err != nil {
			return nil, err
		}
		gen.deriveInterests(u)
	}
	// Pack the per-object lists into shared arenas: from here on the
	// trace is read-only for every consumer.
	gen.tr.Compact()
	return gen.tr, nil
}

// deriveInterests replaces the user's latent preference list with the
// interests the paper actually measures: the categories of the user's
// favourite videos, most frequent first. Users without favourites keep
// their latent preferences.
func (gen *generator) deriveInterests(u *User) {
	if len(u.Favorites) == 0 {
		return
	}
	counts := make(map[CategoryID]int)
	for _, vid := range u.Favorites {
		counts[gen.tr.Videos[vid].Category]++
	}
	derived := make([]CategoryID, 0, len(counts))
	for c := range counts {
		derived = append(derived, c)
	}
	sort.Slice(derived, func(i, j int) bool {
		if counts[derived[i]] != counts[derived[j]] {
			return counts[derived[i]] > counts[derived[j]]
		}
		return derived[i] < derived[j]
	})
	if len(derived) > gen.cfg.MaxInterestsPerUser {
		derived = derived[:gen.cfg.MaxInterestsPerUser]
	}
	u.Interests = derived
}

// categoryWeights gives each category a popularity weight so some categories
// (e.g. Music, Entertainment) attract more channels and users than others.
func categoryWeights(g *dist.RNG, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Exp(g.NormFloat64() * 0.8)
	}
	return w
}

func (gen *generator) channels() error {
	// Channel popularity weight: heavy-tailed so subscriber counts and
	// view counts span several orders of magnitude (Figs. 3, 4). The
	// tail index is calibrated so per-video views reproduce Fig. 7's
	// quantile ratios (p90/p50 ≈ 70) after the subscription coupling
	// roughly squares the skew.
	popDist, err := dist.NewBoundedPareto(1.3, 1, 2000)
	if err != nil {
		return err
	}
	cfg, g, tr := gen.cfg, gen.g, gen.tr
	tr.Channels = make([]Channel, 0, cfg.Channels)
	gen.chanPop = make([]float64, 0, cfg.Channels)
	gen.byCat = make([][]ChannelID, cfg.Categories)
	for i := 0; i < cfg.Channels; i++ {
		primary := CategoryID(dist.WeightedChoice(g, gen.catWeights))
		// Channels focus on few categories (Fig. 11): 1 + Poisson(0.9)
		// extra categories, capped at 5.
		nCats := 1 + dist.Poisson(g, 0.9)
		if nCats > 5 {
			nCats = 5
		}
		if nCats > cfg.Categories {
			nCats = cfg.Categories
		}
		tr.Channels = append(tr.Channels, Channel{
			ID:         ChannelID(i),
			Primary:    primary,
			Categories: pickCategories(g, cfg.Categories, int(primary), nCats),
		})
		gen.chanPop = append(gen.chanPop, popDist.Sample(g))
		gen.byCat[primary] = append(gen.byCat[primary], ChannelID(i))
	}
	return nil
}

func pickCategories(g *dist.RNG, total, primary, n int) []CategoryID {
	cats := make([]CategoryID, 0, n)
	cats = append(cats, CategoryID(primary))
	seen := map[int]bool{primary: true}
	for len(cats) < n {
		c := g.Intn(total)
		if seen[c] {
			continue
		}
		seen[c] = true
		cats = append(cats, CategoryID(c))
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	return cats
}

func (gen *generator) videos() error {
	cfg, g, tr := gen.cfg, gen.g, gen.tr
	lengthDist, err := dist.NewLogNormal(math.Log(240), 0.7) // ≈4 min median
	if err != nil {
		return err
	}
	// Videos per channel (Fig. 6): heavy-tailed, median around 9.
	// Calibrated to Fig. 6: median ≈9 videos per channel, top 10% above
	// ≈116, bounded by the configured maximum.
	countDist, err := dist.NewBoundedPareto(0.65, 3.1, float64(cfg.MaxVideosPerChannel))
	if err != nil {
		return err
	}
	spanSec := cfg.Span.Seconds()
	for ci := range tr.Channels {
		ch := &tr.Channels[ci]
		mult := cfg.VideoCountMultiplier
		if mult <= 0 {
			mult = 1
		}
		nVideos := int(countDist.Sample(g) * mult)
		if nVideos < 1 {
			nVideos = 1
		}
		zipf, err := gen.zipfFor(nVideos, cfg.ZipfExponent)
		if err != nil {
			return err
		}
		// Total channel views scale with the channel's subscriber count
		// (Fig. 5's strong positive correlation) plus a popularity
		// floor so unsubscribed channels still accrue some views.
		// Total views grow with the audience (subscribers, Fig. 5) and
		// sublinearly with catalog size: a channel's viewers
		// concentrate on its top-ranked videos, so doubling the
		// catalog does not double total views.
		nSubs := float64(len(ch.Subscribers))
		totalViews := (gen.chanPop[ci] + 40*nSubs*(0.75+0.5*g.Float64())) * math.Sqrt(float64(nVideos)) * 12
		ch.Videos = make([]VideoID, 0, nVideos)
		for r := 1; r <= nVideos; r++ {
			views := int64(totalViews * zipf.P(r))
			if views < 1 {
				views = 1
			}
			// Favourites correlate strongly with views (Fig. 8;
			// Chatzopoulou et al. report Pearson > 0.9).
			favRate := 0.002 + 0.003*g.Float64()
			favs := int64(float64(views) * favRate)
			// Upload dates grow superlinearly toward the end of
			// the span (Fig. 2): sqrt-transform of a uniform puts
			// more uploads late in the period.
			u := g.Float64()
			at := gen.cfg.Start.Add(time.Duration(math.Sqrt(u) * spanSec * float64(time.Second)))
			length := time.Duration(lengthDist.Sample(g) * float64(time.Second))
			if length < 10*time.Second {
				length = 10 * time.Second
			}
			if length > 30*time.Minute {
				length = 30 * time.Minute
			}
			id := VideoID(len(tr.Videos))
			tr.Videos = append(tr.Videos, Video{
				ID:        id,
				Channel:   ch.ID,
				Category:  videoCategory(g, ch),
				Views:     views,
				Favorites: favs,
				Uploaded:  at,
				Length:    length,
				Rank:      r,
			})
			ch.Videos = append(ch.Videos, id)
		}
	}
	return nil
}

func videoCategory(g *dist.RNG, ch *Channel) CategoryID {
	// Most videos belong to the channel's primary category; the rest are
	// spread over its secondary categories.
	if len(ch.Categories) == 1 || g.Bool(0.7) {
		return ch.Primary
	}
	return ch.Categories[g.Intn(len(ch.Categories))]
}

func (gen *generator) users() error {
	cfg, g, tr := gen.cfg, gen.g, gen.tr
	tr.Users = make([]User, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		u := User{ID: UserID(i)}
		// Interests per user (Fig. 13): ~60% below 10, max ≈18.
		nInterests := 1 + dist.Poisson(g, 6.5)
		if nInterests > cfg.MaxInterestsPerUser {
			nInterests = cfg.MaxInterestsPerUser
		}
		u.Interests = sampleInterests(g, gen.catWeights, nInterests)

		nSubs := 1 + dist.Poisson(g, cfg.MeanSubscriptionsPerUser-1)
		subscribed := make(map[ChannelID]bool, nSubs)
		for s := 0; s < nSubs; s++ {
			ch, err := gen.pickSubscription(&u)
			if err != nil {
				return err
			}
			if ch < 0 || subscribed[ch] {
				continue
			}
			subscribed[ch] = true
			u.Subscriptions = append(u.Subscriptions, ch)
			tr.Channels[ch].Subscribers = append(tr.Channels[ch].Subscribers, u.ID)
		}
		tr.Users = append(tr.Users, u)
	}
	return nil
}

// sampleInterests draws n distinct categories in preference order: the first
// entries are the user's dominant interests, which receive most of the
// user's subscriptions.
func sampleInterests(g *dist.RNG, catWeights []float64, n int) []CategoryID {
	seen := make(map[int]bool, n)
	out := make([]CategoryID, 0, n)
	for attempts := 0; len(out) < n && attempts < 20*n; attempts++ {
		c := dist.WeightedChoice(g, catWeights)
		if c < 0 || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, CategoryID(c))
	}
	return out
}

// interestZipfS is the Zipf exponent concentrating subscriptions on the
// user's dominant interests (calibrated to Fig. 12's similarity median).
const interestZipfS = 2.2

func (gen *generator) pickSubscription(u *User) (ChannelID, error) {
	g := gen.g
	if len(u.Interests) > 0 && g.Bool(gen.cfg.InterestAlignedSubscriptionP) {
		// Subscriptions concentrate on the user's dominant interests:
		// a Zipf draw over the preference-ordered interest list. This
		// concentration is what produces the per-category channel
		// clusters of Fig. 10. A single-interest user draws from a
		// 1-element Zipf — always its one interest, but the draw is
		// still consumed so the stream does not depend on list length.
		z, err := gen.zipfFor(len(u.Interests), interestZipfS)
		if err != nil {
			// The interest list is non-empty and the exponent is a
			// positive constant, so this is a programming error —
			// surface it instead of silently mis-shaping Fig. 10.
			return -1, fmt.Errorf("interest zipf (%d interests): %w", len(u.Interests), err)
		}
		cat := u.Interests[z.Sample(g)-1]
		if chans := gen.byCat[cat]; len(chans) > 0 {
			return gen.weightedChannel(chans), nil
		}
		// Explicit fallback: no channel has this category as its
		// primary, so the aligned draw cannot be honored — fall
		// through to the global popularity-weighted draw.
	}
	if len(gen.tr.Channels) == 0 {
		return -1, nil
	}
	// Popularity-weighted global draw: users sometimes subscribe
	// outside their interests (1-InterestAlignedSubscriptionP of draws).
	all := make([]ChannelID, len(gen.tr.Channels))
	for i := range all {
		all[i] = ChannelID(i)
	}
	return gen.weightedChannel(all), nil
}

func (gen *generator) weightedChannel(chans []ChannelID) ChannelID {
	weights := make([]float64, len(chans))
	for i, id := range chans {
		weights[i] = gen.chanPop[id]
	}
	idx := dist.WeightedChoice(gen.g, weights)
	if idx < 0 {
		return -1
	}
	return chans[idx]
}

func (gen *generator) favorites(u *User) error {
	cfg, g, tr := gen.cfg, gen.g, gen.tr
	nFavs := dist.Poisson(g, cfg.MeanFavoritesPerUser)
	if nFavs == 0 || len(tr.Videos) == 0 {
		return nil
	}
	seen := make(map[VideoID]bool, nFavs)
	for attempts := 0; len(u.Favorites) < nFavs && attempts < 20*nFavs; attempts++ {
		var vid VideoID
		// Favourites come mostly from subscribed channels (popular
		// ranks first), occasionally anywhere. The paper derives user
		// interests from favourite videos; generating favourites from
		// subscriptions keeps that relationship consistent.
		if len(u.Subscriptions) > 0 && g.Bool(0.8) {
			ch := tr.Channels[u.Subscriptions[g.Intn(len(u.Subscriptions))]]
			if len(ch.Videos) == 0 {
				continue
			}
			z, err := gen.zipfFor(len(ch.Videos), 1)
			if err != nil {
				return fmt.Errorf("favourite zipf (%d videos): %w", len(ch.Videos), err)
			}
			vid = ch.Videos[z.Sample(g)-1]
		} else {
			vid = VideoID(g.Intn(len(tr.Videos)))
		}
		if seen[vid] {
			continue
		}
		seen[vid] = true
		u.Favorites = append(u.Favorites, vid)
	}
	return nil
}
