//go:build !race

// The heap-budget guard is skipped under the race detector (ci.sh runs
// -race), whose instrumentation inflates allocation accounting — the
// same convention as the other alloc guards in this repo.

package trace

import (
	"bytes"
	"runtime"
	"testing"
)

// TestLoadStreamHeapBudget guards the dense layout's reason to exist:
// a streamed trace's live heap must stay close to its deterministic
// Bytes() accounting (one struct array per kind plus four arenas), not
// balloon with per-object allocations. The 2x budget leaves room for
// allocator rounding and map/bookkeeping slack while still failing if
// the loader regresses to pointer-heavy per-object slices.
func TestLoadStreamHeapBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 23
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.SaveStream(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Two collections settle finalizer-held and lazily-swept garbage
	// from generation before the baseline is read.
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	loaded, err := LoadStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	accounted := loaded.Bytes()
	if got, want := accounted, tr.Bytes(); got != want {
		t.Fatalf("Bytes() not deterministic across load: %d, want %d", got, want)
	}
	live := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if budget := int64(2 * accounted); live > budget {
		t.Fatalf("loaded trace holds %d bytes live, budget %d (2x accounted %d)", live, budget, accounted)
	}
	runtime.KeepAlive(loaded)
}
