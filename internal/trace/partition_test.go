package trace

import (
	"testing"
	"time"
)

// partitionFixture builds a tiny hand-wired trace: 3 categories, 3
// channels (one per category), 6 users with varied subscription shapes.
func partitionFixture(t *testing.T) *Trace {
	t.Helper()
	tr := &Trace{
		Seed:       7,
		Categories: 3,
		Start:      time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC),
		End:        time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	// Channels 0-2 cover categories 0-2; channel 3 is a second category-1
	// channel so a user can hold a category majority across channels.
	for c, cat := range []CategoryID{0, 1, 2, 1} {
		tr.Channels = append(tr.Channels, Channel{
			ID:         ChannelID(c),
			Primary:    cat,
			Categories: []CategoryID{cat},
		})
	}
	for v := 0; v < 6; v++ {
		ch := ChannelID(v % 3)
		tr.Videos = append(tr.Videos, Video{ID: VideoID(v), Channel: ch, Category: CategoryID(v % 3)})
		tr.Channels[ch].Videos = append(tr.Channels[ch].Videos, VideoID(v))
	}
	sub := func(u UserID, chans ...ChannelID) User {
		usr := User{ID: u, Subscriptions: chans}
		for _, ch := range chans {
			tr.Channels[ch].Subscribers = append(tr.Channels[ch].Subscribers, u)
		}
		return usr
	}
	tr.Users = []User{
		sub(0, 0),                           // home 0 (single subscription)
		sub(1, 1, 3, 2),                     // two category-1 channels → home 1 (majority)
		sub(2, 0, 1),                        // tie 0 vs 1 → smallest id → home 0
		sub(3, 2),                           // home 2
		{ID: 4, Interests: []CategoryID{2}}, // no subs → first interest → home 2
		{ID: 5},                             // nothing → 5 % 3 = 2
	}
	return tr
}

func TestPartitionByCategoryHomes(t *testing.T) {
	tr := partitionFixture(t)
	p, err := PartitionByCategory(tr)
	if err != nil {
		t.Fatal(err)
	}
	wantHome := []int{0, 1, 0, 2, 2, 2}
	for u, want := range wantHome {
		if p.Home[u] != want {
			t.Fatalf("user %d home %d, want %d", u, p.Home[u], want)
		}
	}
	// Cells hold their users in ascending global order, renumbered densely.
	if got := p.Cells[0].Users; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("cell 0 users %v, want [0 2]", got)
	}
	if got := p.Cells[2].Users; len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("cell 2 users %v, want [3 4 5]", got)
	}
	for c := range p.Cells {
		cell := p.Cells[c].Trace
		for i := range cell.Users {
			if int(cell.Users[i].ID) != i {
				t.Fatalf("cell %d user %d has local id %d (dense ids broken)", c, i, cell.Users[i].ID)
			}
		}
	}
}

func TestPartitionRemapsSubscribers(t *testing.T) {
	tr := partitionFixture(t)
	p, err := PartitionByCategory(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0's global subscribers are users 0 and 2, both home cell 0
	// with local ids 0 and 1. Channel 1's subscriber user 1 lives in cell
	// 1 as local id 0; user 2's channel-1 subscription lands in cell 0,
	// so cell 0's channel 1 lists local id 1 (user 2).
	c0 := p.Cells[0].Trace
	if got := c0.Channels[0].Subscribers; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("cell 0 channel 0 subscribers %v, want [0 1]", got)
	}
	if got := c0.Channels[1].Subscribers; len(got) != 1 || got[0] != 1 {
		t.Fatalf("cell 0 channel 1 subscribers %v, want [1] (user 2's local id)", got)
	}
	c1 := p.Cells[1].Trace
	if got := c1.Channels[1].Subscribers; len(got) != 1 || got[0] != 0 {
		t.Fatalf("cell 1 channel 1 subscribers %v, want [0] (user 1's local id)", got)
	}
	// The catalog is shared, not copied.
	if &c0.Videos[0] != &tr.Videos[0] {
		t.Fatal("cell trace copied the video catalog; it must share the parent slice")
	}
	// The parent's channels are untouched.
	if got := tr.Channels[0].Subscribers; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("parent channel 0 subscribers mutated: %v", got)
	}
}

func TestPartitionHomeOfVideo(t *testing.T) {
	tr := partitionFixture(t)
	p, err := PartitionByCategory(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Video v lives on channel v%3 whose primary category is v%3.
	for v := 0; v < 6; v++ {
		if got := p.HomeOfVideo(VideoID(v)); got != v%3 {
			t.Fatalf("video %d home %d, want %d", v, got, v%3)
		}
	}
	if got := p.HomeOfVideo(VideoID(99)); got != -1 {
		t.Fatalf("unknown video home %d, want -1", got)
	}
}

// TestPartitionCoversGeneratedTrace runs the partition over a generated
// trace and checks the global invariants: every user lands in exactly one
// cell, cell populations sum to the parent's, and every cell channel's
// subscriber ids are valid dense local ids.
func TestPartitionCoversGeneratedTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 500
	cfg.Channels = 40
	cfg.Seed = 11
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionByCategory(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != tr.Categories {
		t.Fatalf("%d cells for %d categories", len(p.Cells), tr.Categories)
	}
	total := 0
	for c := range p.Cells {
		cell := p.Cells[c].Trace
		total += len(cell.Users)
		if len(cell.Users) != len(p.Cells[c].Users) {
			t.Fatalf("cell %d trace has %d users but %d global ids", c, len(cell.Users), len(p.Cells[c].Users))
		}
		for i := range cell.Channels {
			for _, s := range cell.Channels[i].Subscribers {
				if int(s) < 0 || int(s) >= len(cell.Users) {
					t.Fatalf("cell %d channel %d subscriber %d out of local range [0,%d)", c, i, s, len(cell.Users))
				}
			}
		}
	}
	if total != len(tr.Users) {
		t.Fatalf("cells hold %d users, parent has %d", total, len(tr.Users))
	}
	for u := range tr.Users {
		c := p.Home[u]
		if c < 0 || c >= len(p.Cells) {
			t.Fatalf("user %d home %d out of range", u, c)
		}
	}
}
