package trace

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

func statsTrace(t *testing.T) *Trace {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.Channels = 200
	cfg.Users = 1200
	return mustGenerate(t, cfg)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestCDFEmpty(t *testing.T) {
	if got := CDF(nil, []float64{0.5}); got != nil {
		t.Errorf("CDF(nil) = %v, want nil", got)
	}
}

func TestCDFIsMonotone(t *testing.T) {
	values := []float64{5, 1, 9, 3, 7, 2, 8}
	fracs := []float64{0.01, 0.25, 0.5, 0.75, 0.99}
	pts := CDF(values, fracs)
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Fatalf("CDF not monotone at %d: %v < %v", i, pts[i].Value, pts[i-1].Value)
		}
	}
}

// TestFig2VideoGrowthIsIncreasing: cumulative uploads grow over time and
// accelerate (second half adds more than the first half), matching Fig. 2.
func TestFig2VideoGrowthIsIncreasing(t *testing.T) {
	tr := statsTrace(t)
	growth := tr.VideoGrowth(10)
	if len(growth) != 10 {
		t.Fatalf("buckets = %d, want 10", len(growth))
	}
	for i := 1; i < len(growth); i++ {
		if growth[i] < growth[i-1] {
			t.Fatalf("cumulative growth decreased at bucket %d", i)
		}
	}
	if growth[9] != len(tr.Videos) {
		t.Errorf("final cumulative count %d, want %d", growth[9], len(tr.Videos))
	}
	firstHalf := growth[4]
	secondHalf := growth[9] - growth[4]
	if secondHalf <= firstHalf {
		t.Errorf("upload rate did not accelerate: first half %d, second half %d", firstHalf, secondHalf)
	}
}

func TestVideoGrowthDegenerate(t *testing.T) {
	tr := &Trace{}
	if got := tr.VideoGrowth(0); got != nil {
		t.Errorf("VideoGrowth(0) = %v, want nil", got)
	}
}

// TestFig3ChannelViewFrequencySpread: per-channel view frequency spans
// multiple orders of magnitude.
func TestFig3ChannelViewFrequencySpread(t *testing.T) {
	tr := statsTrace(t)
	freqs := tr.ChannelViewFrequencies()
	if len(freqs) == 0 {
		t.Fatal("no view frequencies")
	}
	sort.Float64s(freqs)
	// The paper's crawl (2M users) spans five orders of magnitude; a
	// thousand-user synthetic trace compresses that, but popularity must
	// still vary by more than an order of magnitude.
	lo, hi := Quantile(freqs, 0.2), Quantile(freqs, 0.99)
	if hi < lo*20 {
		t.Errorf("view frequency spread too narrow: p20=%v p99=%v", lo, hi)
	}
}

// TestFig4SubscriberHeavyTail: top quartile channels have far more
// subscribers than the bottom quartile.
func TestFig4SubscriberHeavyTail(t *testing.T) {
	tr := statsTrace(t)
	subs := tr.SubscriberCounts()
	sort.Float64s(subs)
	p25, p75 := Quantile(subs, 0.25), Quantile(subs, 0.75)
	if p75 < p25*2+2 {
		t.Errorf("subscriber distribution not heavy-tailed: p25=%v p75=%v", p25, p75)
	}
}

// TestFig5ViewsSubscriptionsCorrelated: strong positive correlation, the
// paper's key O2 observation.
func TestFig5ViewsSubscriptionsCorrelated(t *testing.T) {
	tr := statsTrace(t)
	subs, views := tr.ViewsVsSubscriptions()
	// Fig. 5 is a log-log scatter; the correlation lives in log space.
	if r := LogPearson(subs, views); r < 0.5 {
		t.Errorf("views/subscriptions log-Pearson = %v, want strongly positive", r)
	}
	if r := Pearson(subs, views); r <= 0 {
		t.Errorf("raw Pearson = %v, want positive", r)
	}
}

// TestFig9WithinChannelZipf: the most popular channel's view counts fit a
// Zipf distribution with s near 1.
func TestFig9WithinChannelZipf(t *testing.T) {
	tr := statsTrace(t)
	ch := tr.ChannelPopularityClass(1.0)
	if ch == nil {
		t.Fatal("no channel")
	}
	views := tr.WithinChannelViews(ch.ID)
	if len(views) < 5 {
		// Popularity class may select a small channel; pick a big one.
		for _, c := range tr.Channels {
			if len(c.Videos) >= 20 {
				views = tr.WithinChannelViews(c.ID)
				break
			}
		}
	}
	if len(views) < 5 {
		t.Skip("no channel large enough for a Zipf fit")
	}
	s, r2 := ZipfFit(views)
	if s < 0.5 || s > 2 {
		t.Errorf("Zipf exponent %v outside plausible range around 1", s)
	}
	if r2 < 0.8 {
		t.Errorf("Zipf fit R² = %v, want good fit", r2)
	}
}

func TestZipfFitDegenerate(t *testing.T) {
	if s, r2 := ZipfFit(nil); s != 0 || r2 != 0 {
		t.Errorf("ZipfFit(nil) = %v, %v", s, r2)
	}
	if s, r2 := ZipfFit([]float64{5}); s != 0 || r2 != 0 {
		t.Errorf("ZipfFit(single) = %v, %v", s, r2)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("mismatched lengths: %v", got)
	}
	if got := Pearson([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Errorf("zero variance: %v", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect correlation: %v", got)
	}
}

// TestFig10ChannelsClusterByCategory: shared-subscriber edges connect
// same-category channels far more often than chance.
func TestFig10ChannelsClusterByCategory(t *testing.T) {
	tr := statsTrace(t)
	// Threshold scaled down from the paper's 50 because our default trace
	// has fewer users.
	const minShared = 3
	edges := tr.SharedSubscriberGraph(minShared)
	if len(edges) == 0 {
		t.Skip("no shared-subscriber edges at this scale")
	}
	frac := tr.IntraCategoryEdgeFraction(minShared)
	// Chance baseline: the fraction of *all* channel pairs that share a
	// primary category. Clustering should beat chance by a wide margin.
	same, pairs := 0, 0
	for i := 0; i < len(tr.Channels); i++ {
		for j := i + 1; j < len(tr.Channels); j++ {
			pairs++
			if tr.Channels[i].Primary == tr.Channels[j].Primary {
				same++
			}
		}
	}
	baseline := float64(same) / float64(pairs)
	if frac < 1.5*baseline {
		t.Errorf("intra-category edge fraction = %v, chance baseline = %v; want clustering well above chance", frac, baseline)
	}
}

func TestSharedSubscriberGraphSymmetricAndOrdered(t *testing.T) {
	tr := statsTrace(t)
	edges := tr.SharedSubscriberGraph(2)
	for _, e := range edges {
		if e.A >= e.B {
			t.Fatalf("edge (%d,%d) not ordered", e.A, e.B)
		}
		if e.Shared < 2 {
			t.Fatalf("edge below threshold: %d", e.Shared)
		}
	}
}

// TestFig11ChannelsFocusOnFewCategories: median channel spans few categories.
func TestFig11ChannelsFocusOnFewCategories(t *testing.T) {
	tr := statsTrace(t)
	counts := tr.InterestsPerChannel()
	sort.Float64s(counts)
	if med := Quantile(counts, 0.5); med > 4 {
		t.Errorf("median categories per channel = %v, want small", med)
	}
}

// TestFig12InterestSimilarityHigh: users subscribe within their interests —
// the paper reports a median similarity of 1.0.
func TestFig12InterestSimilarityHigh(t *testing.T) {
	tr := statsTrace(t)
	sims := tr.InterestSimilarities()
	sort.Float64s(sims)
	for _, s := range sims {
		if s < 0 || s > 1 {
			t.Fatalf("similarity %v outside [0,1]", s)
		}
	}
	if med := Quantile(sims, 0.5); med < 0.5 {
		t.Errorf("median interest similarity = %v, want high", med)
	}
}

// TestFig13InterestsPerUserBounded: around 60% of users have fewer than 10
// interests; the maximum stays at the configured cap.
func TestFig13InterestsPerUserBounded(t *testing.T) {
	tr := statsTrace(t)
	counts := tr.InterestsPerUser()
	below10 := 0
	maxSeen := 0.0
	for _, c := range counts {
		if c < 10 {
			below10++
		}
		if c > maxSeen {
			maxSeen = c
		}
	}
	frac := float64(below10) / float64(len(counts))
	if frac < 0.4 {
		t.Errorf("fraction of users with <10 interests = %v, paper says ≈0.6", frac)
	}
	if maxSeen > 18 {
		t.Errorf("max interests = %v, paper max ≈18", maxSeen)
	}
}

// TestFig8FavoritesCorrelateWithViews mirrors the Chatzopoulou et al.
// observation the paper cites.
func TestFig8FavoritesCorrelateWithViews(t *testing.T) {
	tr := statsTrace(t)
	views := tr.ViewsPerVideo()
	favs := tr.FavoritesPerVideo()
	if r := Pearson(views, favs); r < 0.8 {
		t.Errorf("views/favorites Pearson = %v, want > 0.8", r)
	}
}

func TestSummarize(t *testing.T) {
	tr := statsTrace(t)
	s := tr.Summarize()
	if s.Channels != len(tr.Channels) || s.Users != len(tr.Users) || s.Videos != len(tr.Videos) {
		t.Error("summary counts do not match trace")
	}
	if s.ViewsSubsCorr <= 0 {
		t.Errorf("summary correlation %v, want positive", s.ViewsSubsCorr)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := smallConfig(12)
	tr := mustGenerate(t, cfg)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Videos) != len(tr.Videos) || len(got.Users) != len(tr.Users) {
		t.Fatal("round trip lost entities")
	}
	if got.Videos[0].Views != tr.Videos[0].Views {
		t.Error("round trip changed video data")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadRejectsBrokenReferences(t *testing.T) {
	bad := `{"seed":1,"categories":2,"channels":[{"id":0,"primary":0,"categories":[0],"videos":[99],"subscribers":[]}],"videos":[],"users":[]}`
	if _, err := Load(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("expected validation error for dangling video reference")
	}
}

func TestTraceAccessorsOutOfRange(t *testing.T) {
	tr := mustGenerate(t, smallConfig(13))
	if tr.Channel(-1) != nil || tr.Channel(ChannelID(len(tr.Channels))) != nil {
		t.Error("Channel out-of-range should be nil")
	}
	if tr.Video(-1) != nil || tr.Video(VideoID(len(tr.Videos))) != nil {
		t.Error("Video out-of-range should be nil")
	}
	if tr.User(-1) != nil || tr.User(UserID(len(tr.Users))) != nil {
		t.Error("User out-of-range should be nil")
	}
	if tr.ChannelViews(-1) != 0 {
		t.Error("ChannelViews out-of-range should be 0")
	}
}

func TestChannelsInCategory(t *testing.T) {
	tr := mustGenerate(t, smallConfig(14))
	total := 0
	for c := 0; c < tr.Categories; c++ {
		ids := tr.ChannelsInCategory(CategoryID(c))
		total += len(ids)
		for _, id := range ids {
			if tr.Channels[id].Primary != CategoryID(c) {
				t.Fatalf("channel %d primary mismatch", id)
			}
		}
	}
	if total != len(tr.Channels) {
		t.Errorf("per-category channel counts sum to %d, want %d", total, len(tr.Channels))
	}
}
