// Package trace models the YouTube social network the paper measures in
// Section III — interest categories, channels, videos, users, subscriptions
// and favourites — and generates synthetic traces whose marginal
// distributions match the paper's crawl (O1–O5). It also computes the
// Section III statistics so every trace-analysis figure can be regenerated.
package trace

import (
	"time"
	"unsafe"
)

// CategoryID identifies an interest category (e.g. Gaming, Sports, Comedy).
type CategoryID int

// ChannelID identifies a channel (a user's page of uploaded videos).
type ChannelID int

// VideoID identifies a single video.
type VideoID int

// UserID identifies a registered user (a prospective peer).
type UserID int

// Video is one uploaded clip together with the metadata the paper's crawler
// collected: total views, upload date, length and favourite count.
type Video struct {
	ID       VideoID    `json:"id"`
	Channel  ChannelID  `json:"channel"`
	Category CategoryID `json:"category"`
	// Views is the total view count; within a channel the view counts of
	// its videos follow a Zipf distribution (Fig. 9).
	Views int64 `json:"views"`
	// Favorites is the number of times the video was marked as a
	// favourite; it correlates strongly with Views (Fig. 8).
	Favorites int64 `json:"favorites"`
	// Uploaded is the upload date (Fig. 2 plots uploads over time).
	Uploaded time.Time `json:"uploaded"`
	// Length is the playback duration. YouTube short videos average a
	// 320 kbps bitrate and a few minutes of content.
	Length time.Duration `json:"lengthNanos"`
	// Rank is the video's popularity rank within its channel (1 = most
	// popular). The prefetching algorithm orders a channel's videos by
	// this rank.
	Rank int `json:"rank"`
}

// Channel is a user's channel: a set of videos focused on a small number of
// interest categories (Fig. 11).
type Channel struct {
	ID ChannelID `json:"id"`
	// Primary is the channel's dominant interest category; YouTube lists
	// the channel under this category.
	Primary CategoryID `json:"primary"`
	// Categories are all categories the channel's videos span, Primary
	// included. Channels focus on few categories (median 1–3).
	Categories []CategoryID `json:"categories"`
	// Videos are the channel's uploads ordered by popularity rank.
	Videos []VideoID `json:"videos"`
	// Subscribers are the users subscribed to this channel.
	Subscribers []UserID `json:"subscribers"`
}

// User is a registered user with personal interests and channel
// subscriptions. Users tend to subscribe to channels matching their
// interests (Fig. 12) and have a bounded number of interests (Fig. 13).
type User struct {
	ID UserID `json:"id"`
	// Interests are the user's personal interest categories, derived in
	// the paper from the categories of the user's favourite videos.
	Interests []CategoryID `json:"interests"`
	// Subscriptions are the channels the user subscribes to.
	Subscriptions []ChannelID `json:"subscriptions"`
	// Favorites are videos the user marked as favourites.
	Favorites []VideoID `json:"favorites"`
}

// Trace is a complete synthetic crawl of the modelled social network.
//
// The layout is dense and index-addressed: objects live in value slices
// (id == index, enforced by Validate), and after Compact() every
// per-object variable-length list is a view into one of four shared
// arenas. At paper scale (1M users) this removes millions of individual
// allocations and pointer targets, cutting both the heap footprint and
// GC scan time; the JSON encoding is unchanged.
type Trace struct {
	Seed       int64     `json:"seed"`
	Categories int       `json:"categories"`
	Channels   []Channel `json:"channels"`
	Videos     []Video   `json:"videos"`
	Users      []User    `json:"users"`
	// Start and End bound the upload dates in the trace.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Arenas backing the per-object lists after Compact. Unexported:
	// they are a storage detail, rebuilt on demand, never serialized.
	catArena  []CategoryID
	vidArena  []VideoID
	userArena []UserID
	chanArena []ChannelID
}

// Channel returns the channel with the given id, or nil when out of range.
// The pointer aliases the trace's backing array: it stays valid as long
// as the trace itself, with no per-call allocation.
func (t *Trace) Channel(id ChannelID) *Channel {
	if int(id) < 0 || int(id) >= len(t.Channels) {
		return nil
	}
	return &t.Channels[id]
}

// Video returns the video with the given id, or nil when out of range.
func (t *Trace) Video(id VideoID) *Video {
	if int(id) < 0 || int(id) >= len(t.Videos) {
		return nil
	}
	return &t.Videos[id]
}

// User returns the user with the given id, or nil when out of range.
func (t *Trace) User(id UserID) *User {
	if int(id) < 0 || int(id) >= len(t.Users) {
		return nil
	}
	return &t.Users[id]
}

// ChannelViews returns the total views across a channel's videos.
func (t *Trace) ChannelViews(id ChannelID) int64 {
	ch := t.Channel(id)
	if ch == nil {
		return 0
	}
	var total int64
	for _, vid := range ch.Videos {
		total += t.Videos[vid].Views
	}
	return total
}

// ChannelsInCategory returns the ids of channels whose primary category is c.
func (t *Trace) ChannelsInCategory(c CategoryID) []ChannelID {
	var out []ChannelID
	for i := range t.Channels {
		if t.Channels[i].Primary == c {
			out = append(out, t.Channels[i].ID)
		}
	}
	return out
}

// Compact repacks every per-object variable-length list (a channel's
// categories/videos/subscribers, a user's interests/subscriptions/
// favourites) into four shared arenas, replacing millions of small
// heap allocations with a handful of large ones. Each list becomes a
// full-capacity three-index view arena[off:end:end], so a stray append
// reallocates instead of bleeding into the next object's list. Safe to
// call repeatedly; content is unchanged.
func (t *Trace) Compact() {
	var nCat, nVid, nUser, nChan int
	for i := range t.Channels {
		nCat += len(t.Channels[i].Categories)
		nVid += len(t.Channels[i].Videos)
		nUser += len(t.Channels[i].Subscribers)
	}
	for i := range t.Users {
		nCat += len(t.Users[i].Interests)
		nChan += len(t.Users[i].Subscriptions)
		nVid += len(t.Users[i].Favorites)
	}
	t.catArena = make([]CategoryID, 0, nCat)
	t.vidArena = make([]VideoID, 0, nVid)
	t.userArena = make([]UserID, 0, nUser)
	t.chanArena = make([]ChannelID, 0, nChan)
	for i := range t.Channels {
		ch := &t.Channels[i]
		ch.Categories = packCat(&t.catArena, ch.Categories)
		ch.Videos = packVid(&t.vidArena, ch.Videos)
		ch.Subscribers = packUser(&t.userArena, ch.Subscribers)
	}
	for i := range t.Users {
		u := &t.Users[i]
		u.Interests = packCat(&t.catArena, u.Interests)
		u.Subscriptions = packChan(&t.chanArena, u.Subscriptions)
		u.Favorites = packVid(&t.vidArena, u.Favorites)
	}
}

// The pack helpers append one list to its arena and return the
// capacity-clamped view. (Go has no generics-free way to share one body
// across element types without reflection; four tiny copies beat an
// interface indirection on a million-element path.)

func packCat(arena *[]CategoryID, list []CategoryID) []CategoryID {
	off := len(*arena)
	*arena = append(*arena, list...)
	return (*arena)[off:len(*arena):len(*arena)]
}

func packVid(arena *[]VideoID, list []VideoID) []VideoID {
	off := len(*arena)
	*arena = append(*arena, list...)
	return (*arena)[off:len(*arena):len(*arena)]
}

func packUser(arena *[]UserID, list []UserID) []UserID {
	off := len(*arena)
	*arena = append(*arena, list...)
	return (*arena)[off:len(*arena):len(*arena)]
}

func packChan(arena *[]ChannelID, list []ChannelID) []ChannelID {
	off := len(*arena)
	*arena = append(*arena, list...)
	return (*arena)[off:len(*arena):len(*arena)]
}

// Bytes returns the trace's in-memory footprint in bytes, computed from
// the layout itself (struct sizes plus every list element) rather than
// runtime heap sampling, so it is bit-identical across runs and
// platforms with the same word size. It is the numerator of the
// bytes-per-user figure the scale sweep reports.
func (t *Trace) Bytes() uint64 {
	const (
		idSize   = uint64(unsafe.Sizeof(CategoryID(0)))
		chSize   = uint64(unsafe.Sizeof(Channel{}))
		vidSize  = uint64(unsafe.Sizeof(Video{}))
		userSize = uint64(unsafe.Sizeof(User{}))
	)
	// len, not cap: the measure reflects content, not allocator growth
	// slack, so it matches across codecs and runs.
	b := uint64(unsafe.Sizeof(*t))
	b += uint64(len(t.Channels)) * chSize
	b += uint64(len(t.Videos)) * vidSize
	b += uint64(len(t.Users)) * userSize
	for i := range t.Channels {
		ch := &t.Channels[i]
		b += uint64(len(ch.Categories)+len(ch.Videos)+len(ch.Subscribers)) * idSize
	}
	for i := range t.Users {
		u := &t.Users[i]
		b += uint64(len(u.Interests)+len(u.Subscriptions)+len(u.Favorites)) * idSize
	}
	return b
}
