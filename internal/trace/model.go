// Package trace models the YouTube social network the paper measures in
// Section III — interest categories, channels, videos, users, subscriptions
// and favourites — and generates synthetic traces whose marginal
// distributions match the paper's crawl (O1–O5). It also computes the
// Section III statistics so every trace-analysis figure can be regenerated.
package trace

import (
	"time"
)

// CategoryID identifies an interest category (e.g. Gaming, Sports, Comedy).
type CategoryID int

// ChannelID identifies a channel (a user's page of uploaded videos).
type ChannelID int

// VideoID identifies a single video.
type VideoID int

// UserID identifies a registered user (a prospective peer).
type UserID int

// Video is one uploaded clip together with the metadata the paper's crawler
// collected: total views, upload date, length and favourite count.
type Video struct {
	ID       VideoID    `json:"id"`
	Channel  ChannelID  `json:"channel"`
	Category CategoryID `json:"category"`
	// Views is the total view count; within a channel the view counts of
	// its videos follow a Zipf distribution (Fig. 9).
	Views int64 `json:"views"`
	// Favorites is the number of times the video was marked as a
	// favourite; it correlates strongly with Views (Fig. 8).
	Favorites int64 `json:"favorites"`
	// Uploaded is the upload date (Fig. 2 plots uploads over time).
	Uploaded time.Time `json:"uploaded"`
	// Length is the playback duration. YouTube short videos average a
	// 320 kbps bitrate and a few minutes of content.
	Length time.Duration `json:"lengthNanos"`
	// Rank is the video's popularity rank within its channel (1 = most
	// popular). The prefetching algorithm orders a channel's videos by
	// this rank.
	Rank int `json:"rank"`
}

// Channel is a user's channel: a set of videos focused on a small number of
// interest categories (Fig. 11).
type Channel struct {
	ID ChannelID `json:"id"`
	// Primary is the channel's dominant interest category; YouTube lists
	// the channel under this category.
	Primary CategoryID `json:"primary"`
	// Categories are all categories the channel's videos span, Primary
	// included. Channels focus on few categories (median 1–3).
	Categories []CategoryID `json:"categories"`
	// Videos are the channel's uploads ordered by popularity rank.
	Videos []VideoID `json:"videos"`
	// Subscribers are the users subscribed to this channel.
	Subscribers []UserID `json:"subscribers"`
}

// User is a registered user with personal interests and channel
// subscriptions. Users tend to subscribe to channels matching their
// interests (Fig. 12) and have a bounded number of interests (Fig. 13).
type User struct {
	ID UserID `json:"id"`
	// Interests are the user's personal interest categories, derived in
	// the paper from the categories of the user's favourite videos.
	Interests []CategoryID `json:"interests"`
	// Subscriptions are the channels the user subscribes to.
	Subscriptions []ChannelID `json:"subscriptions"`
	// Favorites are videos the user marked as favourites.
	Favorites []VideoID `json:"favorites"`
}

// Trace is a complete synthetic crawl of the modelled social network.
type Trace struct {
	Seed       int64      `json:"seed"`
	Categories int        `json:"categories"`
	Channels   []*Channel `json:"channels"`
	Videos     []*Video   `json:"videos"`
	Users      []*User    `json:"users"`
	// Start and End bound the upload dates in the trace.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Channel returns the channel with the given id, or nil when out of range.
func (t *Trace) Channel(id ChannelID) *Channel {
	if int(id) < 0 || int(id) >= len(t.Channels) {
		return nil
	}
	return t.Channels[id]
}

// Video returns the video with the given id, or nil when out of range.
func (t *Trace) Video(id VideoID) *Video {
	if int(id) < 0 || int(id) >= len(t.Videos) {
		return nil
	}
	return t.Videos[id]
}

// User returns the user with the given id, or nil when out of range.
func (t *Trace) User(id UserID) *User {
	if int(id) < 0 || int(id) >= len(t.Users) {
		return nil
	}
	return t.Users[id]
}

// ChannelViews returns the total views across a channel's videos.
func (t *Trace) ChannelViews(id ChannelID) int64 {
	ch := t.Channel(id)
	if ch == nil {
		return 0
	}
	var total int64
	for _, vid := range ch.Videos {
		total += t.Videos[vid].Views
	}
	return total
}

// ChannelsInCategory returns the ids of channels whose primary category is c.
func (t *Trace) ChannelsInCategory(c CategoryID) []ChannelID {
	var out []ChannelID
	for _, ch := range t.Channels {
		if ch.Primary == c {
			out = append(out, ch.ID)
		}
	}
	return out
}
