package trace

import "fmt"

// Partition splits a trace into per-interest-category community cells —
// the unit the sharded experiment engine runs one event loop per. The
// split is a pure function of the trace (no RNG, no shard count), so the
// cell layout and every cell's contents are identical no matter how many
// worker loops later execute them: that is what lets sharded runs produce
// byte-identical results across shard counts.
//
// Each cell holds the users whose home community is that category,
// renumbered to dense local ids (the experiment engine's node ids). The
// catalog is shared: the Videos slice is the parent's, and channels keep
// their global ids, with only their Subscribers lists rewritten to the
// cell's local user ids. A user's cross-category subscriptions therefore
// still resolve inside the cell — they are simply backed by the cell's
// own subscriber population.
type Partition struct {
	parent *Trace
	// Cells has one entry per category; Cells[c].Trace may hold zero
	// users when no one's home is category c.
	Cells []CellTrace
	// Home maps each global user id to its cell index.
	Home []int
}

// CellTrace is one community cell of a partition.
type CellTrace struct {
	// Cell is the cell index — the interest category id.
	Cell int
	// Trace holds the cell's users under dense local ids, over the shared
	// global catalog (channel and video ids are global).
	Trace *Trace
	// Users lists the cell's global user ids in ascending order; local id
	// i is global id Users[i].
	Users []UserID
}

// PartitionByCategory builds the per-category partition. A user's home
// cell is the majority primary category among its subscribed channels
// (ties break to the smallest category id); users with no subscriptions
// fall back to their first interest, and users with neither spread by
// id modulo the category count. Every rule reads only the user's own
// row, so home assignment is trivially parallel-safe and layout-free.
func PartitionByCategory(t *Trace) (*Partition, error) {
	if t == nil || t.Categories <= 0 {
		return nil, fmt.Errorf("trace: partition needs a trace with categories")
	}
	cells := t.Categories
	p := &Partition{
		parent: t,
		Cells:  make([]CellTrace, cells),
		Home:   make([]int, len(t.Users)),
	}
	counts := make([]int, cells) // subscription tally, reused per user
	cellSize := make([]int, cells)
	for i := range t.Users {
		home := t.userHome(&t.Users[i], counts)
		p.Home[i] = home
		cellSize[home]++
	}
	// local[u] is u's dense id within its home cell.
	local := make([]int, len(t.Users))
	for c := range p.Cells {
		p.Cells[c] = CellTrace{Cell: c, Users: make([]UserID, 0, cellSize[c])}
	}
	for i := range t.Users {
		c := p.Home[i]
		local[i] = len(p.Cells[c].Users)
		p.Cells[c].Users = append(p.Cells[c].Users, t.Users[i].ID)
	}
	for c := range p.Cells {
		p.Cells[c].Trace = t.cellTrace(p, c, local)
	}
	return p, nil
}

// userHome computes one user's home cell; counts is a zeroed scratch
// tally of length Categories, left zeroed on return.
func (t *Trace) userHome(u *User, counts []int) int {
	best, bestN := -1, 0
	for _, chID := range u.Subscriptions {
		ch := t.Channel(chID)
		if ch == nil || int(ch.Primary) < 0 || int(ch.Primary) >= len(counts) {
			continue
		}
		c := int(ch.Primary)
		counts[c]++
		if counts[c] > bestN || (counts[c] == bestN && c < best) {
			best, bestN = c, counts[c]
		}
	}
	for _, chID := range u.Subscriptions {
		if ch := t.Channel(chID); ch != nil && int(ch.Primary) >= 0 && int(ch.Primary) < len(counts) {
			counts[ch.Primary] = 0
		}
	}
	if best >= 0 {
		return best
	}
	if len(u.Interests) > 0 && int(u.Interests[0]) >= 0 && int(u.Interests[0]) < len(counts) {
		return int(u.Interests[0])
	}
	return int(u.ID) % len(counts)
}

// cellTrace materializes cell c: users renumbered to local ids, channels
// copied with subscriber lists filtered to the cell, everything else a
// shared view of the parent.
func (t *Trace) cellTrace(p *Partition, c int, local []int) *Trace {
	cell := &Trace{
		Seed:       t.Seed,
		Categories: t.Categories,
		Channels:   make([]Channel, len(t.Channels)),
		Videos:     t.Videos, // read-only shared catalog
		Users:      make([]User, len(p.Cells[c].Users)),
		Start:      t.Start,
		End:        t.End,
	}
	// One subscriber arena for the whole cell keeps the copy dense.
	var nSubs int
	for i := range t.Channels {
		for _, u := range t.Channels[i].Subscribers {
			if p.Home[u] == c {
				nSubs++
			}
		}
	}
	arena := make([]UserID, 0, nSubs)
	for i := range t.Channels {
		src := &t.Channels[i]
		dst := &cell.Channels[i]
		*dst = *src // Categories and Videos lists stay shared views
		off := len(arena)
		for _, u := range src.Subscribers {
			if p.Home[u] == c {
				arena = append(arena, UserID(local[u]))
			}
		}
		dst.Subscribers = arena[off:len(arena):len(arena)]
	}
	for li, gid := range p.Cells[c].Users {
		u := t.Users[gid] // struct copy; the id lists stay shared views
		u.ID = UserID(li)
		cell.Users[li] = u
	}
	return cell
}

// HomeOfVideo returns the home cell of a video — the primary category of
// its channel — or -1 when the video is unknown. Cross-community lookups
// route to this cell's community server.
func (p *Partition) HomeOfVideo(v VideoID) int {
	video := p.parent.Video(v)
	if video == nil {
		return -1
	}
	ch := p.parent.Channel(video.Channel)
	if ch == nil || int(ch.Primary) < 0 || int(ch.Primary) >= len(p.Cells) {
		return -1
	}
	return int(ch.Primary)
}

// Parent returns the partitioned trace.
func (p *Partition) Parent() *Trace { return p.parent }
