package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Save writes the trace as JSON to w.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("encode trace: %w", err)
	}
	return nil
}

// Load reads a JSON trace from r and validates its internal references.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("decode trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks referential integrity: every channel's video and
// subscriber ids resolve, every video's channel resolves, and rank ordering
// within each channel is 1..n.
func (t *Trace) Validate() error {
	for _, ch := range t.Channels {
		if ch == nil {
			return fmt.Errorf("trace: nil channel entry")
		}
		for _, vid := range ch.Videos {
			v := t.Video(vid)
			if v == nil {
				return fmt.Errorf("trace: channel %d references missing video %d", ch.ID, vid)
			}
			if v.Channel != ch.ID {
				return fmt.Errorf("trace: video %d claims channel %d, listed under %d", vid, v.Channel, ch.ID)
			}
		}
		for i, vid := range ch.Videos {
			if want := i + 1; t.Videos[vid].Rank != want {
				return fmt.Errorf("trace: channel %d video %d has rank %d, want %d", ch.ID, vid, t.Videos[vid].Rank, want)
			}
		}
		for _, uid := range ch.Subscribers {
			if t.User(uid) == nil {
				return fmt.Errorf("trace: channel %d references missing user %d", ch.ID, uid)
			}
		}
	}
	for _, u := range t.Users {
		if u == nil {
			return fmt.Errorf("trace: nil user entry")
		}
		for _, cid := range u.Subscriptions {
			if t.Channel(cid) == nil {
				return fmt.Errorf("trace: user %d subscribed to missing channel %d", u.ID, cid)
			}
		}
		for _, vid := range u.Favorites {
			if t.Video(vid) == nil {
				return fmt.Errorf("trace: user %d favourites missing video %d", u.ID, vid)
			}
		}
		for _, c := range u.Interests {
			if int(c) < 0 || int(c) >= t.Categories {
				return fmt.Errorf("trace: user %d has out-of-range interest %d", u.ID, c)
			}
		}
	}
	return nil
}
