package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Save writes the trace as one JSON document to w — the legacy codec,
// kept for interoperability and as the round-trip oracle for the
// streaming format. For paper-scale traces prefer SaveStream: encoding
// one document materializes the whole output tree at once.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("encode trace: %w", err)
	}
	return nil
}

// Load reads a trace from r and validates its internal references. It
// accepts both codecs: a StreamFormat header on the first line selects
// the chunked JSONL decoder, anything else the legacy single-document
// decoder.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(streamProbe)
	if bytes.Contains(head, []byte(StreamFormat)) {
		return LoadStream(br)
	}
	var t Trace
	dec := json.NewDecoder(br)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("decode trace: %w", err)
	}
	t.Compact()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// StreamFormat tags the first line of the chunked JSONL trace encoding.
const StreamFormat = "socialtube-trace/v2"

// streamProbe bounds how many header bytes Load peeks at when sniffing
// the codec: the format tag must appear within the first line's fixed
// prefix.
const streamProbe = len(`{"format":"`) + len(StreamFormat) + 4

// streamChunkSize is how many objects each JSONL chunk line carries.
// Decoding buffers one chunk at a time, so this bounds the decoder's
// transient allocations independently of trace size.
const streamChunkSize = 4096

// streamHeader is the first line of the chunked encoding. The counts
// let the decoder preallocate every slice and arena exactly, so loading
// a 1M-user trace performs a handful of large allocations up front and
// only bounded chunk-sized ones after.
type streamHeader struct {
	Format     string    `json:"format"`
	Seed       int64     `json:"seed"`
	Categories int       `json:"categories"`
	Channels   int       `json:"channels"`
	Videos     int       `json:"videos"`
	Users      int       `json:"users"`
	CatArena   int       `json:"catArena"`
	VidArena   int       `json:"vidArena"`
	UserArena  int       `json:"userArena"`
	ChanArena  int       `json:"chanArena"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
}

// streamChunk is one JSONL body line: a batch of objects of a single
// kind, or the eof trailer that proves the file was written completely.
type streamChunk struct {
	Channels []Channel `json:"channels,omitempty"`
	Videos   []Video   `json:"videos,omitempty"`
	Users    []User    `json:"users,omitempty"`
	EOF      bool      `json:"eof,omitempty"`
}

// ErrTruncated reports a stream that ended before its eof trailer — a
// partial download or an interrupted writer.
var ErrTruncated = errors.New("trace stream truncated")

// SaveStream writes the trace in the chunked JSONL format: a header
// line with exact object and arena counts, batches of streamChunkSize
// objects per line (channels, then videos, then users), and an eof
// trailer. The writer never buffers more than one chunk beyond bufio,
// so encoding memory is flat in trace size.
func (t *Trace) SaveStream(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	var nCat, nVid, nUser, nChan int
	for i := range t.Channels {
		nCat += len(t.Channels[i].Categories)
		nVid += len(t.Channels[i].Videos)
		nUser += len(t.Channels[i].Subscribers)
	}
	for i := range t.Users {
		nCat += len(t.Users[i].Interests)
		nChan += len(t.Users[i].Subscriptions)
		nVid += len(t.Users[i].Favorites)
	}
	hdr := streamHeader{
		Format:     StreamFormat,
		Seed:       t.Seed,
		Categories: t.Categories,
		Channels:   len(t.Channels),
		Videos:     len(t.Videos),
		Users:      len(t.Users),
		CatArena:   nCat,
		VidArena:   nVid,
		UserArena:  nUser,
		ChanArena:  nChan,
		Start:      t.Start,
		End:        t.End,
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("encode trace header: %w", err)
	}
	for off := 0; off < len(t.Channels); off += streamChunkSize {
		end := min(off+streamChunkSize, len(t.Channels))
		if err := enc.Encode(streamChunk{Channels: t.Channels[off:end]}); err != nil {
			return fmt.Errorf("encode channel chunk at %d: %w", off, err)
		}
	}
	for off := 0; off < len(t.Videos); off += streamChunkSize {
		end := min(off+streamChunkSize, len(t.Videos))
		if err := enc.Encode(streamChunk{Videos: t.Videos[off:end]}); err != nil {
			return fmt.Errorf("encode video chunk at %d: %w", off, err)
		}
	}
	for off := 0; off < len(t.Users); off += streamChunkSize {
		end := min(off+streamChunkSize, len(t.Users))
		if err := enc.Encode(streamChunk{Users: t.Users[off:end]}); err != nil {
			return fmt.Errorf("encode user chunk at %d: %w", off, err)
		}
	}
	if err := enc.Encode(streamChunk{EOF: true}); err != nil {
		return fmt.Errorf("encode trace trailer: %w", err)
	}
	return bw.Flush()
}

// LoadStream reads the chunked JSONL format, packing each object's
// lists into the trace arenas as it goes: peak decoder memory is the
// final trace plus one chunk, regardless of trace size.
func LoadStream(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	var hdr streamHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("decode trace header: %w", err)
	}
	if hdr.Format != StreamFormat {
		return nil, fmt.Errorf("trace stream format %q, want %q", hdr.Format, StreamFormat)
	}
	if hdr.Channels < 0 || hdr.Videos < 0 || hdr.Users < 0 ||
		hdr.CatArena < 0 || hdr.VidArena < 0 || hdr.UserArena < 0 || hdr.ChanArena < 0 {
		return nil, fmt.Errorf("trace stream header has negative counts")
	}
	t := &Trace{
		Seed:       hdr.Seed,
		Categories: hdr.Categories,
		Start:      hdr.Start,
		End:        hdr.End,
		Channels:   make([]Channel, 0, hdr.Channels),
		Videos:     make([]Video, 0, hdr.Videos),
		Users:      make([]User, 0, hdr.Users),
		catArena:   make([]CategoryID, 0, hdr.CatArena),
		vidArena:   make([]VideoID, 0, hdr.VidArena),
		userArena:  make([]UserID, 0, hdr.UserArena),
		chanArena:  make([]ChannelID, 0, hdr.ChanArena),
	}
	sawEOF := false
	for !sawEOF {
		var chunk streamChunk
		if err := dec.Decode(&chunk); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("%w: no eof trailer (%d/%d channels, %d/%d videos, %d/%d users)",
					ErrTruncated, len(t.Channels), hdr.Channels, len(t.Videos), hdr.Videos, len(t.Users), hdr.Users)
			}
			return nil, fmt.Errorf("decode trace chunk: %w", err)
		}
		sawEOF = chunk.EOF
		for i := range chunk.Channels {
			ch := chunk.Channels[i]
			ch.Categories = packCat(&t.catArena, ch.Categories)
			ch.Videos = packVid(&t.vidArena, ch.Videos)
			ch.Subscribers = packUser(&t.userArena, ch.Subscribers)
			t.Channels = append(t.Channels, ch)
		}
		for i := range chunk.Videos {
			t.Videos = append(t.Videos, chunk.Videos[i])
		}
		for i := range chunk.Users {
			u := chunk.Users[i]
			u.Interests = packCat(&t.catArena, u.Interests)
			u.Subscriptions = packChan(&t.chanArena, u.Subscriptions)
			u.Favorites = packVid(&t.vidArena, u.Favorites)
			t.Users = append(t.Users, u)
		}
	}
	if len(t.Channels) != hdr.Channels || len(t.Videos) != hdr.Videos || len(t.Users) != hdr.Users {
		return nil, fmt.Errorf("%w: header promised %d/%d/%d channels/videos/users, stream carried %d/%d/%d",
			ErrTruncated, hdr.Channels, hdr.Videos, hdr.Users, len(t.Channels), len(t.Videos), len(t.Users))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks the dense layout (every id equals its index) and
// referential integrity: every channel's video and subscriber ids
// resolve, every video's channel resolves, and rank ordering within
// each channel is 1..n.
func (t *Trace) Validate() error {
	for i := range t.Videos {
		if t.Videos[i].ID != VideoID(i) {
			return fmt.Errorf("trace: video at index %d has id %d (dense layout violated)", i, t.Videos[i].ID)
		}
	}
	for i := range t.Channels {
		ch := &t.Channels[i]
		if ch.ID != ChannelID(i) {
			return fmt.Errorf("trace: channel at index %d has id %d (dense layout violated)", i, ch.ID)
		}
		for _, vid := range ch.Videos {
			v := t.Video(vid)
			if v == nil {
				return fmt.Errorf("trace: channel %d references missing video %d", ch.ID, vid)
			}
			if v.Channel != ch.ID {
				return fmt.Errorf("trace: video %d claims channel %d, listed under %d", vid, v.Channel, ch.ID)
			}
		}
		for i, vid := range ch.Videos {
			if want := i + 1; t.Videos[vid].Rank != want {
				return fmt.Errorf("trace: channel %d video %d has rank %d, want %d", ch.ID, vid, t.Videos[vid].Rank, want)
			}
		}
		for _, uid := range ch.Subscribers {
			if t.User(uid) == nil {
				return fmt.Errorf("trace: channel %d references missing user %d", ch.ID, uid)
			}
		}
	}
	for i := range t.Users {
		u := &t.Users[i]
		if u.ID != UserID(i) {
			return fmt.Errorf("trace: user at index %d has id %d (dense layout violated)", i, u.ID)
		}
		for _, cid := range u.Subscriptions {
			if t.Channel(cid) == nil {
				return fmt.Errorf("trace: user %d subscribed to missing channel %d", u.ID, cid)
			}
		}
		for _, vid := range u.Favorites {
			if t.Video(vid) == nil {
				return fmt.Errorf("trace: user %d favourites missing video %d", u.ID, vid)
			}
		}
		for _, c := range u.Interests {
			if int(c) < 0 || int(c) >= t.Categories {
				return fmt.Errorf("trace: user %d has out-of-range interest %d", u.ID, c)
			}
		}
	}
	return nil
}
