package trace

import (
	"testing"
)

func crawlSource(t *testing.T) *Trace {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 71
	cfg.Channels = 120
	cfg.Users = 800
	cfg.Categories = 10
	cfg.MaxInterestsPerUser = 10
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCrawlRejectsBadInputs(t *testing.T) {
	if _, err := Crawl(nil, 1, 10); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := Crawl(&Trace{}, 1, 10); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr := crawlSource(t)
	if _, err := Crawl(tr, 1, 0); err == nil {
		t.Fatal("zero maxUsers accepted")
	}
}

func TestCrawlProducesValidSubTrace(t *testing.T) {
	tr := crawlSource(t)
	sub, err := Crawl(tr, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("crawled trace invalid: %v", err)
	}
	if len(sub.Users) == 0 || len(sub.Users) > 200 {
		t.Fatalf("crawled %d users, want 1..200", len(sub.Users))
	}
	if len(sub.Channels) == 0 || len(sub.Videos) == 0 {
		t.Fatal("crawl collected no content")
	}
}

func TestCrawlIsDeterministic(t *testing.T) {
	tr := crawlSource(t)
	a, err := Crawl(tr, 7, 150)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Crawl(tr, 7, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Users) != len(b.Users) || len(a.Videos) != len(b.Videos) {
		t.Fatal("same-seed crawls differ")
	}
}

func TestCrawlStopsAtLimit(t *testing.T) {
	tr := crawlSource(t)
	sub, err := Crawl(tr, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Users) > 50 {
		t.Fatalf("crawl exceeded user limit: %d", len(sub.Users))
	}
}

// TestCrawlOverestimatesDegree reproduces the sampling-bias observation the
// paper cites from Mislove et al.: a truncated BFS sample overestimates
// mean node degree, because high-degree users are found first.
func TestCrawlOverestimatesDegree(t *testing.T) {
	tr := crawlSource(t)
	sub, err := Crawl(tr, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Users) < 40 {
		t.Skip("crawl exhausted the component before the limit")
	}
	// Subscription edges to uncrawled channels are dropped, which pushes
	// the measured degree down; the BFS bias pushes it up. Requiring the
	// sampled mean to stay within a factor of the truth (rather than
	// strictly above) keeps the test robust at this scale.
	full := tr.MeanDegree()
	sampled := sub.MeanDegree()
	if sampled < full*0.5 {
		t.Fatalf("sampled degree %.2f collapsed versus population %.2f", sampled, full)
	}
}

func TestCrawlFullCoverage(t *testing.T) {
	tr := crawlSource(t)
	// A limit beyond the population crawls the whole connected component.
	sub, err := Crawl(tr, 2, len(tr.Users)+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Users) > len(tr.Users) {
		t.Fatal("crawl created users out of thin air")
	}
	// Every crawled user's surviving subscriptions must reference crawled
	// channels only (Validate checks referential integrity already).
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}
