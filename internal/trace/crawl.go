package trace

import (
	"fmt"

	"github.com/socialtube/socialtube/internal/dist"
)

// Crawl reproduces the paper's Section III data-collection methodology on a
// synthetic network: starting from a random user, perform a breadth-first
// search over subscription relationships (user → subscribed channels →
// their subscribers), collecting users, channels and videos until maxUsers
// users have been crawled or the queue empties. The paper notes (citing
// Mislove et al.) that truncated BFS sampling overestimates node degree but
// preserves other metrics; Crawl exists so that exact claim can be tested
// against ground truth here.
//
// The returned trace is self-contained: ids are re-numbered densely and all
// references (subscriptions, favourites, subscriber lists) are restricted
// to crawled entities.
func Crawl(tr *Trace, seed int64, maxUsers int) (*Trace, error) {
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: crawl needs a non-empty trace", dist.ErrBadParameter)
	}
	if maxUsers <= 0 {
		return nil, fmt.Errorf("%w: maxUsers=%d", dist.ErrBadParameter, maxUsers)
	}
	g := dist.NewRNG(seed)

	visited := make(map[UserID]bool)
	queue := []UserID{tr.Users[g.Intn(len(tr.Users))].ID}
	visited[queue[0]] = true
	var crawled []UserID
	chanSeen := make(map[ChannelID]bool)

	for len(queue) > 0 && len(crawled) < maxUsers {
		uid := queue[0]
		queue = queue[1:]
		crawled = append(crawled, uid)
		u := tr.User(uid)
		for _, cid := range u.Subscriptions {
			chanSeen[cid] = true
			for _, sub := range tr.Channel(cid).Subscribers {
				if !visited[sub] {
					visited[sub] = true
					queue = append(queue, sub)
				}
			}
		}
	}

	return subTrace(tr, crawled, chanSeen)
}

// subTrace builds a dense, self-consistent trace restricted to the given
// users and channels.
func subTrace(tr *Trace, users []UserID, chans map[ChannelID]bool) (*Trace, error) {
	userIdx := make(map[UserID]UserID, len(users))
	for i, uid := range users {
		userIdx[uid] = UserID(i)
	}
	chanIdx := make(map[ChannelID]ChannelID, len(chans))
	out := &Trace{
		Seed:       tr.Seed,
		Categories: tr.Categories,
		Start:      tr.Start,
		End:        tr.End,
	}
	// Channels in ascending old-id order for determinism.
	for i := range tr.Channels {
		ch := &tr.Channels[i]
		if !chans[ch.ID] {
			continue
		}
		chanIdx[ch.ID] = ChannelID(len(out.Channels))
		out.Channels = append(out.Channels, Channel{
			ID:         chanIdx[ch.ID],
			Primary:    ch.Primary,
			Categories: append([]CategoryID(nil), ch.Categories...),
		})
	}
	videoIdx := make(map[VideoID]VideoID)
	for i := range tr.Channels {
		ch := &tr.Channels[i]
		if !chans[ch.ID] {
			continue
		}
		newCh := &out.Channels[chanIdx[ch.ID]]
		for _, vid := range ch.Videos {
			v := tr.Video(vid)
			id := VideoID(len(out.Videos))
			out.Videos = append(out.Videos, Video{
				ID:        id,
				Channel:   newCh.ID,
				Category:  v.Category,
				Views:     v.Views,
				Favorites: v.Favorites,
				Uploaded:  v.Uploaded,
				Length:    v.Length,
				Rank:      v.Rank,
			})
			videoIdx[vid] = id
			newCh.Videos = append(newCh.Videos, id)
		}
	}
	for _, uid := range users {
		u := tr.User(uid)
		nu := User{
			ID:        userIdx[uid],
			Interests: append([]CategoryID(nil), u.Interests...),
		}
		for _, cid := range u.Subscriptions {
			nc, ok := chanIdx[cid]
			if !ok {
				continue
			}
			nu.Subscriptions = append(nu.Subscriptions, nc)
			out.Channels[nc].Subscribers = append(out.Channels[nc].Subscribers, nu.ID)
		}
		for _, vid := range u.Favorites {
			if nv, ok := videoIdx[vid]; ok {
				nu.Favorites = append(nu.Favorites, nv)
			}
		}
		out.Users = append(out.Users, nu)
	}
	out.Compact()
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("crawl produced inconsistent trace: %w", err)
	}
	return out, nil
}

// MeanDegree returns the average number of subscriptions per user — the
// degree metric BFS sampling is known to overestimate.
func (t *Trace) MeanDegree() float64 {
	if len(t.Users) == 0 {
		return 0
	}
	total := 0
	for _, u := range t.Users {
		total += len(u.Subscriptions)
	}
	return float64(total) / float64(len(t.Users))
}
