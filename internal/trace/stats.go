package trace

import (
	"math"
	"sort"
	"time"
)

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	Value    float64 `json:"value"`
	Fraction float64 `json:"fraction"`
}

// CDF returns the empirical CDF of values at the given fractions
// (e.g. 0.01, 0.25, 0.50, 0.75, 0.99). Values need not be sorted.
func CDF(values []float64, fractions []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(fractions))
	for _, f := range fractions {
		out = append(out, CDFPoint{Value: Quantile(sorted, f), Fraction: f})
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted slice
// using nearest-rank interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// VideoGrowth returns cumulative video-upload counts over nBuckets equal
// intervals of the trace span (Fig. 2).
func (t *Trace) VideoGrowth(nBuckets int) []int {
	if nBuckets <= 0 {
		return nil
	}
	counts := make([]int, nBuckets)
	span := t.End.Sub(t.Start)
	if span <= 0 {
		return counts
	}
	for _, v := range t.Videos {
		frac := float64(v.Uploaded.Sub(t.Start)) / float64(span)
		idx := int(frac * float64(nBuckets))
		if idx < 0 {
			idx = 0
		}
		if idx >= nBuckets {
			idx = nBuckets - 1
		}
		counts[idx]++
	}
	for i := 1; i < nBuckets; i++ {
		counts[i] += counts[i-1]
	}
	return counts
}

// ChannelViewFrequencies returns, per channel, total views divided by the
// average days its videos have been online (Fig. 3).
func (t *Trace) ChannelViewFrequencies() []float64 {
	out := make([]float64, 0, len(t.Channels))
	for _, ch := range t.Channels {
		if len(ch.Videos) == 0 {
			continue
		}
		var views int64
		var onlineDays float64
		for _, vid := range ch.Videos {
			v := t.Videos[vid]
			views += v.Views
			days := t.End.Sub(v.Uploaded).Hours() / 24
			if days < 1 {
				days = 1
			}
			onlineDays += days
		}
		avgDays := onlineDays / float64(len(ch.Videos))
		out = append(out, float64(views)/avgDays)
	}
	return out
}

// SubscriberCounts returns subscribers per channel (Fig. 4).
func (t *Trace) SubscriberCounts() []float64 {
	out := make([]float64, len(t.Channels))
	for i, ch := range t.Channels {
		out[i] = float64(len(ch.Subscribers))
	}
	return out
}

// ViewsVsSubscriptions returns paired (subscribers, totalViews) samples per
// channel (Fig. 5) for correlation analysis.
func (t *Trace) ViewsVsSubscriptions() (subs, views []float64) {
	subs = make([]float64, len(t.Channels))
	views = make([]float64, len(t.Channels))
	for i, ch := range t.Channels {
		subs[i] = float64(len(ch.Subscribers))
		views[i] = float64(t.ChannelViews(ch.ID))
	}
	return subs, views
}

// VideosPerChannel returns video counts per channel (Fig. 6).
func (t *Trace) VideosPerChannel() []float64 {
	out := make([]float64, len(t.Channels))
	for i, ch := range t.Channels {
		out[i] = float64(len(ch.Videos))
	}
	return out
}

// ViewsPerVideo returns per-video view counts (Fig. 7).
func (t *Trace) ViewsPerVideo() []float64 {
	out := make([]float64, len(t.Videos))
	for i, v := range t.Videos {
		out[i] = float64(v.Views)
	}
	return out
}

// FavoritesPerVideo returns per-video favourite counts (Fig. 8).
func (t *Trace) FavoritesPerVideo() []float64 {
	out := make([]float64, len(t.Videos))
	for i, v := range t.Videos {
		out[i] = float64(v.Favorites)
	}
	return out
}

// ChannelPopularityClass selects the channel at the given quantile of total
// views (1.0 = most popular) — used by Fig. 9 to pick a high-, medium- and
// low-popularity channel.
func (t *Trace) ChannelPopularityClass(quantile float64) *Channel {
	if len(t.Channels) == 0 {
		return nil
	}
	type cv struct {
		ch    *Channel
		views int64
	}
	ranked := make([]cv, len(t.Channels))
	for i := range t.Channels {
		ranked[i] = cv{ch: &t.Channels[i], views: t.ChannelViews(t.Channels[i].ID)}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].views < ranked[j].views })
	idx := int(quantile * float64(len(ranked)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ranked) {
		idx = len(ranked) - 1
	}
	return ranked[idx].ch
}

// WithinChannelViews returns the per-rank view counts of a channel, ordered
// by rank (Fig. 9: these approximate a Zipf distribution).
func (t *Trace) WithinChannelViews(id ChannelID) []float64 {
	ch := t.Channel(id)
	if ch == nil {
		return nil
	}
	out := make([]float64, len(ch.Videos))
	for i, vid := range ch.Videos {
		out[i] = float64(t.Videos[vid].Views)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// ZipfFit estimates the Zipf exponent s of rank-ordered (descending) counts
// by least squares on log-log coordinates, returning s and the R² of the fit.
func ZipfFit(counts []float64) (s, r2 float64) {
	var xs, ys []float64
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(c))
	}
	if len(xs) < 2 {
		return 0, 0
	}
	slope, intercept := linearFit(xs, ys)
	// Residual analysis for R².
	meanY := mean(ys)
	var ssTot, ssRes float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		return -slope, 1
	}
	return -slope, 1 - ssRes/ssTot
}

func linearFit(xs, ys []float64) (slope, intercept float64) {
	mx, my := mean(xs), mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples (Fig. 5 reports a strong positive correlation between channel
// subscriptions and views).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := mean(xs), mean(ys)
	var num, dx, dy float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		dx += (xs[i] - mx) * (xs[i] - mx)
		dy += (ys[i] - my) * (ys[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// LogPearson returns the Pearson correlation of log(1+x) transformed
// samples — the correlation visible in Fig. 5's log-log scatter plot.
func LogPearson(xs, ys []float64) float64 {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = math.Log1p(xs[i])
	}
	for i := range ys {
		ly[i] = math.Log1p(ys[i])
	}
	return Pearson(lx, ly)
}

// SharedSubscriberEdge is a pair of channels linked by at least the
// threshold number of shared subscribers (Fig. 10).
type SharedSubscriberEdge struct {
	A      ChannelID `json:"a"`
	B      ChannelID `json:"b"`
	Shared int       `json:"shared"`
}

// SharedSubscriberGraph returns edges between channels that share at least
// minShared subscribers. The paper's Fig. 10 uses a threshold of 50 and
// observes that the resulting graph clusters by interest category.
func (t *Trace) SharedSubscriberGraph(minShared int) []SharedSubscriberEdge {
	// Build per-user subscription lists, then count pairs.
	pairCount := make(map[[2]ChannelID]int)
	for _, u := range t.Users {
		subs := u.Subscriptions
		for i := 0; i < len(subs); i++ {
			for j := i + 1; j < len(subs); j++ {
				a, b := subs[i], subs[j]
				if a > b {
					a, b = b, a
				}
				pairCount[[2]ChannelID{a, b}]++
			}
		}
	}
	var edges []SharedSubscriberEdge
	for pair, n := range pairCount {
		if n >= minShared {
			edges = append(edges, SharedSubscriberEdge{A: pair[0], B: pair[1], Shared: n})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// IntraCategoryEdgeFraction returns the fraction of shared-subscriber edges
// whose endpoints share a primary category — the clustering Fig. 10 shows
// visually.
func (t *Trace) IntraCategoryEdgeFraction(minShared int) float64 {
	edges := t.SharedSubscriberGraph(minShared)
	if len(edges) == 0 {
		return 0
	}
	same := 0
	for _, e := range edges {
		if t.Channels[e.A].Primary == t.Channels[e.B].Primary {
			same++
		}
	}
	return float64(same) / float64(len(edges))
}

// InterestsPerChannel returns the number of video categories each channel
// spans (Fig. 11).
func (t *Trace) InterestsPerChannel() []float64 {
	out := make([]float64, len(t.Channels))
	for i, ch := range t.Channels {
		cats := make(map[CategoryID]bool)
		for _, vid := range ch.Videos {
			cats[t.Videos[vid].Category] = true
		}
		out[i] = float64(len(cats))
	}
	return out
}

// InterestSimilarities returns, per user, |C_u ∩ C_c| / |C_u| where C_u is
// the user's interest set and C_c the categories of the user's subscribed
// channels (Fig. 12).
func (t *Trace) InterestSimilarities() []float64 {
	out := make([]float64, 0, len(t.Users))
	for _, u := range t.Users {
		if len(u.Interests) == 0 {
			continue
		}
		chanCats := make(map[CategoryID]bool)
		for _, cid := range u.Subscriptions {
			for _, c := range t.Channels[cid].Categories {
				chanCats[c] = true
			}
		}
		match := 0
		for _, c := range u.Interests {
			if chanCats[c] {
				match++
			}
		}
		out = append(out, float64(match)/float64(len(u.Interests)))
	}
	return out
}

// InterestsPerUser returns the number of interest categories per user
// (Fig. 13).
func (t *Trace) InterestsPerUser() []float64 {
	out := make([]float64, len(t.Users))
	for i, u := range t.Users {
		out[i] = float64(len(u.Interests))
	}
	return out
}

// Summary aggregates the headline statistics of a trace.
type Summary struct {
	Channels        int           `json:"channels"`
	Videos          int           `json:"videos"`
	Users           int           `json:"users"`
	Categories      int           `json:"categories"`
	MedianVideos    float64       `json:"medianVideosPerChannel"`
	MedianSubs      float64       `json:"medianSubscribersPerChannel"`
	ViewsSubsCorr   float64       `json:"viewsSubsPearson"`
	MedianInterests float64       `json:"medianInterestsPerUser"`
	Span            time.Duration `json:"spanNanos"`
}

// Summarize computes the trace's headline statistics.
func (t *Trace) Summarize() Summary {
	videos := t.VideosPerChannel()
	sort.Float64s(videos)
	subs := t.SubscriberCounts()
	sort.Float64s(subs)
	interests := t.InterestsPerUser()
	sort.Float64s(interests)
	s, v := t.ViewsVsSubscriptions()
	return Summary{
		Channels:        len(t.Channels),
		Videos:          len(t.Videos),
		Users:           len(t.Users),
		Categories:      t.Categories,
		MedianVideos:    Quantile(videos, 0.5),
		MedianSubs:      Quantile(subs, 0.5),
		ViewsSubsCorr:   Pearson(s, v),
		MedianInterests: Quantile(interests, 0.5),
		Span:            t.End.Sub(t.Start),
	}
}
