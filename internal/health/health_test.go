package health

import (
	"testing"
	"time"
)

func cfg() Config { return Config{Threshold: 3, OpenFor: 10 * time.Second} }

func TestClosedAdmitsAndFailureStreakOpens(t *testing.T) {
	s := NewSet(cfg(), 4)
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		if !s.Allow(1, now) {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		s.Failure(1, now)
		if got := s.State(1); got != Closed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	s.Failure(1, now)
	if got := s.State(1); got != Open {
		t.Fatalf("after threshold failures state = %v, want open", got)
	}
	if s.Opens != 1 {
		t.Fatalf("Opens = %d, want 1", s.Opens)
	}
	if s.Allow(1, now+time.Second) {
		t.Fatal("open breaker admitted a call inside the window")
	}
	if s.Skips != 1 {
		t.Fatalf("Skips = %d, want 1", s.Skips)
	}
}

func TestSuccessResetsStreak(t *testing.T) {
	s := NewSet(cfg(), 2)
	s.Failure(0, 0)
	s.Failure(0, 0)
	s.Success(0)
	s.Failure(0, 0)
	s.Failure(0, 0)
	if got := s.State(0); got != Closed {
		t.Fatalf("state = %v, want closed (streak should reset on success)", got)
	}
	s.Failure(0, 0)
	if got := s.State(0); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
}

func TestHalfOpenProbation(t *testing.T) {
	s := NewSet(cfg(), 2)
	for i := 0; i < 3; i++ {
		s.Failure(0, 0)
	}
	// Window not elapsed: rejected.
	if s.Allow(0, 9*time.Second) {
		t.Fatal("admitted before OpenFor elapsed")
	}
	// Window elapsed: exactly one probe admitted.
	if !s.Allow(0, 11*time.Second) {
		t.Fatal("half-open breaker rejected the probation probe")
	}
	if got := s.State(0); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if s.Allow(0, 11*time.Second) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	if s.Probes != 1 {
		t.Fatalf("Probes = %d, want 1", s.Probes)
	}

	// Probe failure re-opens for another full window.
	s.Failure(0, 11*time.Second)
	if got := s.State(0); got != Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if s.Allow(0, 20*time.Second) {
		t.Fatal("re-opened breaker admitted a call before the new window elapsed")
	}

	// Probe success closes.
	if !s.Allow(0, 22*time.Second) {
		t.Fatal("rejected probe after re-open window elapsed")
	}
	s.Success(0)
	if got := s.State(0); got != Closed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	if s.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", s.Recoveries)
	}
	if !s.Allow(0, 22*time.Second) {
		t.Fatal("closed breaker rejected a call")
	}
}

func TestResetClearsState(t *testing.T) {
	s := NewSet(cfg(), 1)
	for i := 0; i < 3; i++ {
		s.Failure(0, 0)
	}
	s.Reset(0)
	if got := s.State(0); got != Closed {
		t.Fatalf("state after reset = %v, want closed", got)
	}
	if !s.Allow(0, 0) {
		t.Fatal("reset breaker rejected a call")
	}
}

func TestUntrackedIDsAlwaysAdmitted(t *testing.T) {
	s := NewSet(cfg(), 2)
	for _, id := range []int{-1, 2, 99} {
		for i := 0; i < 10; i++ {
			s.Failure(id, 0)
		}
		if !s.Allow(id, 0) {
			t.Fatalf("untracked id %d rejected", id)
		}
		s.Success(id) // must not panic
	}
}

func TestOperationsAllocationFree(t *testing.T) {
	s := NewSet(cfg(), 8)
	allocs := testing.AllocsPerRun(100, func() {
		for id := 0; id < 8; id++ {
			s.Allow(id, 0)
			s.Failure(id, 0)
			s.Success(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("breaker ops allocated %.1f times per run, want 0", allocs)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open", State(9): "unknown"} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
