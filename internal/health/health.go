// Package health tracks per-peer delivery health with a small circuit
// breaker, so dead neighbours stop eating the retry budget on the query,
// connect and chunk paths.
//
// The state machine per tracked peer is the classic three-state breaker:
//
//	closed ──K consecutive failures──▶ open ──OpenFor elapses──▶ half-open
//	  ▲                                                              │
//	  ├──────────────────── probe succeeds ──────────────────────────┘
//	  └─ open again on probe failure ◀───────────────────────────────┘
//
// Closed admits every call. Open short-circuits every call until OpenFor
// has elapsed. Half-open admits exactly one probation probe: success
// closes the breaker, failure re-opens it for another OpenFor window.
//
// Time is passed explicitly as a time.Duration offset rather than read
// from a clock, so the simulator drives breakers with virtual timestamps
// and the emulator with wall-clock offsets from its epoch — the same
// deterministic state machine either way. All operations are
// allocation-free after construction, which keeps the breaker check legal
// on the sim's zero-allocation Request hot path.
package health

import "time"

// Config parameterises a breaker set.
type Config struct {
	// Threshold is K: consecutive failures before the breaker opens.
	Threshold int
	// OpenFor is how long an open breaker rejects calls before allowing
	// a half-open probation probe.
	OpenFor time.Duration
}

// DefaultConfig mirrors the emulator's retry budget: three strikes, then
// back off for well over an RPC timeout before probing again.
func DefaultConfig() Config {
	return Config{Threshold: 3, OpenFor: 30 * time.Second}
}

// State is a breaker's position in the closed/open/half-open machine.
type State uint8

// Breaker states.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the per-peer record. Kept small: the sim allocates one per
// node up front and never again.
type breaker struct {
	fails     int           // consecutive failures while closed
	openUntil time.Duration // when an open breaker may probe again
	state     State
	probing   bool // half-open probe currently in flight
}

// Set tracks one breaker per dense integer peer id. Not safe for
// concurrent use; callers that share a Set across goroutines (the
// emulator) wrap it in their own mutex. The zero Set is unusable — use
// NewSet.
type Set struct {
	cfg Config
	b   []breaker

	// Opens, Skips, Probes and Recoveries count state transitions and
	// short-circuited calls since construction; callers snapshot them
	// into obs.Counters.
	Opens      uint64
	Skips      uint64
	Probes     uint64
	Recoveries uint64
}

// NewSet sizes a breaker table for ids in [0, n). Ids beyond n are
// admitted unconditionally and never tracked (Allow true, Success/Failure
// no-ops), so callers never have to bounds-check.
func NewSet(cfg Config, n int) *Set {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultConfig().Threshold
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = DefaultConfig().OpenFor
	}
	if n < 0 {
		n = 0
	}
	return &Set{cfg: cfg, b: make([]breaker, n)}
}

// Len reports the number of tracked ids.
func (s *Set) Len() int { return len(s.b) }

// Ensure grows the table so id is tracked. Amortized-allocating — callers
// on allocation-free hot paths must pre-size with NewSet instead.
func (s *Set) Ensure(id int) {
	if id < len(s.b) {
		return
	}
	nb := make([]breaker, id+1)
	copy(nb, s.b)
	s.b = nb
}

// State reports the breaker state for id (Closed for untracked ids).
func (s *Set) State(id int) State {
	if id < 0 || id >= len(s.b) {
		return Closed
	}
	return s.b[id].state
}

// Allow reports whether a call to id should proceed at time now. An open
// breaker whose window has elapsed transitions to half-open and admits
// exactly one probation probe; further calls are rejected until that
// probe resolves via Success or Failure.
func (s *Set) Allow(id int, now time.Duration) bool {
	if id < 0 || id >= len(s.b) {
		return true
	}
	b := &s.b[id]
	switch b.state {
	case Closed:
		return true
	case Open:
		if now < b.openUntil {
			s.Skips++
			return false
		}
		b.state = HalfOpen
		b.probing = true
		s.Probes++
		return true
	default: // HalfOpen
		if b.probing {
			s.Skips++
			return false
		}
		b.probing = true
		s.Probes++
		return true
	}
}

// Success records a successful call to id, closing a half-open breaker
// and clearing the failure streak.
func (s *Set) Success(id int) {
	if id < 0 || id >= len(s.b) {
		return
	}
	b := &s.b[id]
	if b.state == HalfOpen {
		s.Recoveries++
	}
	b.state = Closed
	b.fails = 0
	b.probing = false
	b.openUntil = 0
}

// Failure records a failed call to id at time now. The Threshold'th
// consecutive failure (or any half-open probe failure) opens the breaker
// until now+OpenFor.
func (s *Set) Failure(id int, now time.Duration) {
	if id < 0 || id >= len(s.b) {
		return
	}
	b := &s.b[id]
	switch b.state {
	case Open:
		// Concurrent callers may report a failure for a call admitted
		// before the breaker opened; the window simply slides.
		b.openUntil = now + s.cfg.OpenFor
		return
	case HalfOpen:
		b.state = Open
		b.probing = false
		b.openUntil = now + s.cfg.OpenFor
		s.Opens++
		return
	}
	b.fails++
	if b.fails >= s.cfg.Threshold {
		b.state = Open
		b.fails = 0
		b.openUntil = now + s.cfg.OpenFor
		s.Opens++
	}
}

// Reset returns id's breaker to pristine closed state. Used when a peer
// announces itself again after rejoining: the re-registration is positive
// evidence, so probation is skipped.
func (s *Set) Reset(id int) {
	if id < 0 || id >= len(s.b) {
		return
	}
	s.b[id] = breaker{}
}
