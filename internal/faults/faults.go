// Package faults is the deterministic fault-injection layer: a seeded
// Plan of adversarial conditions (churn waves, correlated regional
// departures, link latency/loss bursts, tracker outages, server
// brownouts) compiles into a flat, time-ordered Schedule of events.
//
// The same compiled Schedule drives both halves of the evaluation: the
// discrete-event simulator applies each event at its virtual timestamp
// (internal/exp), and the TCP emulation replays the identical event
// list over wall-clock offsets (internal/emu). Compilation is a pure
// function of (Plan, nodes): every random choice — which nodes a wave
// takes down, the jitter inside a wave's spread, the per-crash
// detection delay — comes from one dist.RNG seeded with Plan.Seed, so
// one seed replays bit-identically everywhere.
package faults

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
)

// ChurnWave takes a batch of nodes down (crash, not graceful leave)
// around the same time — the paper's node-dynamism stressor.
type ChurnWave struct {
	// At is when the wave begins.
	At time.Duration
	// Spread jitters each crash uniformly over [At, At+Spread].
	Spread time.Duration
	// Fraction of eligible nodes to crash (used when Count is 0).
	Fraction float64
	// Count of nodes to crash; overrides Fraction when positive.
	Count int
	// DownFor is how long each crashed node stays gone before it
	// rejoins; 0 means it never comes back.
	DownFor time.Duration
	// Region, when positive, restricts the wave to one latency region
	// (a correlated regional departure, e.g. an ISP failure). Regions
	// are 1-based here: Region r targets nodes with node%Regions ==
	// r-1, matching emu.Conditions region assignment. 0 means any.
	Region int
}

// LinkBurst degrades every link for a window: latencies multiply by
// LatencyFactor and peer fetches fail with probability LossP.
type LinkBurst struct {
	At       time.Duration
	Duration time.Duration
	// LatencyFactor scales link latency during the burst. Factors > 1
	// degrade propagation; factors in (0,1) model a recovery/boost
	// window. 0 means unchanged (treated as 1); negatives are
	// rejected at Validate.
	LatencyFactor float64
	// LossP is the probability a located provider is unreachable
	// through the degraded links, forcing server fallback.
	LossP float64
}

// Outage takes the tracker/server offline for a window: requests to it
// go unanswered until the window closes. On a sharded control plane the
// outage can be narrowed to one shard, or one replica of one shard; the
// zero targeting (legacy plans) darkens the whole plane.
type Outage struct {
	At       time.Duration
	Duration time.Duration
	// Shard targets one tracker shard, 1-based (Shard s darkens shard
	// s-1). 0 targets the whole control plane — the legacy whole-tracker
	// outage.
	Shard int
	// Replica narrows a sharded outage to one replica of the shard,
	// 1-based. 0 takes every replica of the targeted shard down.
	// Replica > 0 requires Shard > 0.
	Replica int
}

// Brownout throttles the server uplink to CapacityFactor×nominal for a
// window without taking it offline.
type Brownout struct {
	At       time.Duration
	Duration time.Duration
	// CapacityFactor is the remaining fraction of server capacity,
	// in (0, 1).
	CapacityFactor float64
}

// ChaosBurst injects frame-level wire faults for a window: each frame a
// node writes is independently corrupted, truncated, duplicated or
// stalled with the given probabilities (at most one fault per frame,
// evaluated in that order). The emu transport applies these literally on
// its sockets; the simulator, which has no frames, accounts the window
// as a degraded period like a link burst.
type ChaosBurst struct {
	At       time.Duration
	Duration time.Duration
	// CorruptP flips bytes inside the frame body, so the receiver sees a
	// well-framed but undecodable (or invalid) message.
	CorruptP float64
	// TruncateP writes a header promising more bytes than follow, so the
	// receiver blocks until EOF and sees an unexpected-EOF error.
	TruncateP float64
	// DuplicateP writes the frame twice; one-shot RPC readers must
	// tolerate trailing data on the connection.
	DuplicateP float64
	// StallP delays the frame by StallFor before writing it, driving
	// receivers into their timeout path.
	StallP float64
	// StallFor is the stall delay (required when StallP > 0).
	StallFor time.Duration
}

// FlashCrowd slams one channel's most popular video with a sudden
// extra request stream for a window — the "viral video" stressor. The
// experiment engine turns the window into a seeded open-loop arrival
// stream at RPS requests per second, all for the channel's top-ranked
// video, layered on top of the run's normal workload. The emulation,
// which has no per-channel request synthesizer, ignores flash events.
type FlashCrowd struct {
	At       time.Duration
	Duration time.Duration
	// Channel is the channel whose top video goes viral.
	Channel int
	// RPS is the flash stream's request rate (simulated seconds).
	RPS float64
}

// Partition splits the cluster — tracker replicas and peers alike —
// into Groups sides for a window: traffic within a side flows normally,
// traffic across the cut is dropped at the sender (and backstopped at
// the receiver). Gossip must not converge across the cut; both sides
// keep serving whatever shards they can reach, and the versioned LWW
// merge re-converges the member tables after the heal. The emulation
// applies the cut literally on its RPC paths; the simulator, which has
// one global tracker state, ignores partition events.
type Partition struct {
	At       time.Duration
	Duration time.Duration
	// Groups is how many sides the cut creates (≥ 2). Node n — peer id
	// or tracker replica index — lands on side n%Groups, matching
	// emu.Conditions region assignment so sides are stable and seeded
	// placement stays deterministic.
	Groups int
}

// Plan is a declarative, seeded description of every fault a run
// suffers. The zero value is a healthy run.
type Plan struct {
	// Seed drives every random choice made during compilation.
	Seed int64
	// Regions is the number of latency regions nodes are spread over
	// (matching emu.Conditions.Regions); only consulted when a wave
	// targets a specific region. Nodes map to regions as node%Regions.
	Regions int
	// DetectDelay bounds how long neighbors take to notice a crash:
	// each crash schedules a repair event a uniform (0, DetectDelay]
	// later. 0 disables repair events (recovery rides probes alone).
	DetectDelay time.Duration
	Waves       []ChurnWave
	Bursts      []LinkBurst
	Outages     []Outage
	Brownouts   []Brownout
	Chaos       []ChaosBurst
	Flash       []FlashCrowd
	Partitions  []Partition
}

// Kind identifies what a compiled fault event does.
type Kind uint8

const (
	// KindCrash takes one node down abruptly.
	KindCrash Kind = iota + 1
	// KindRejoin brings a crashed node back.
	KindRejoin
	// KindRepair fires when the dead node's neighbors have detected
	// the crash and run replacement-link selection.
	KindRepair
	// KindBurstStart / KindBurstEnd bracket a link degradation window.
	KindBurstStart
	KindBurstEnd
	// KindOutageStart / KindOutageEnd bracket a tracker/server outage.
	KindOutageStart
	KindOutageEnd
	// KindBrownoutStart / KindBrownoutEnd bracket a server capacity
	// throttle window.
	KindBrownoutStart
	KindBrownoutEnd
	// KindChaosStart / KindChaosEnd bracket a frame-level wire-fault
	// window (corrupt/truncate/duplicate/stall).
	KindChaosStart
	KindChaosEnd
	// KindFlashStart / KindFlashEnd bracket a viral-video flash crowd
	// (an extra open-loop request stream against one channel).
	KindFlashStart
	KindFlashEnd
	// KindPartitionStart / KindPartitionEnd bracket a network split: the
	// cluster divides into Groups sides that cannot talk across the cut.
	KindPartitionStart
	KindPartitionEnd
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRejoin:
		return "rejoin"
	case KindRepair:
		return "repair"
	case KindBurstStart:
		return "burst-start"
	case KindBurstEnd:
		return "burst-end"
	case KindOutageStart:
		return "outage-start"
	case KindOutageEnd:
		return "outage-end"
	case KindBrownoutStart:
		return "brownout-start"
	case KindBrownoutEnd:
		return "brownout-end"
	case KindChaosStart:
		return "chaos-start"
	case KindChaosEnd:
		return "chaos-end"
	case KindFlashStart:
		return "flash-start"
	case KindFlashEnd:
		return "flash-end"
	case KindPartitionStart:
		return "partition-start"
	case KindPartitionEnd:
		return "partition-end"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one compiled fault action. Consumers switch on Kind; fields
// beyond At/Kind are populated only where meaningful.
type Event struct {
	At   time.Duration `json:"at"`
	Kind Kind          `json:"kind"`
	// Node is the target of crash/rejoin/repair events; -1 for
	// window events.
	Node int `json:"node"`
	// CrashedAt, on a repair event, is when the node it repairs went
	// down (repair latency = At - CrashedAt).
	CrashedAt time.Duration `json:"crashedAt,omitempty"`
	// Until, on a *Start event, is when the window closes.
	Until time.Duration `json:"until,omitempty"`
	// LatencyFactor and LossP carry a burst's parameters.
	LatencyFactor float64 `json:"latencyFactor,omitempty"`
	LossP         float64 `json:"lossP,omitempty"`
	// CapacityFactor carries a brownout's remaining capacity.
	CapacityFactor float64 `json:"capacityFactor,omitempty"`
	// Shard and Replica carry an outage's control-plane targeting
	// (1-based; 0 = whole plane / all replicas). Both appear on the
	// start and end events, so replays never have to pair windows to
	// find the target. omitempty keeps legacy whole-plane schedules
	// byte-identical.
	Shard   int `json:"shard,omitempty"`
	Replica int `json:"replica,omitempty"`
	// CorruptP, TruncateP, DuplicateP, StallP and StallFor carry a chaos
	// burst's frame-fault mix.
	CorruptP   float64       `json:"corruptP,omitempty"`
	TruncateP  float64       `json:"truncateP,omitempty"`
	DuplicateP float64       `json:"duplicateP,omitempty"`
	StallP     float64       `json:"stallP,omitempty"`
	StallFor   time.Duration `json:"stallFor,omitempty"`
	// Channel and RPS carry a flash crowd's target and request rate
	// (both on the start and end events). omitempty keeps archived
	// flashless schedules byte-identical.
	Channel int     `json:"channel,omitempty"`
	RPS     float64 `json:"rps,omitempty"`
	// Groups carries a partition's side count (on both the start and end
	// events). omitempty keeps archived partitionless schedules
	// byte-identical.
	Groups int `json:"groups,omitempty"`
}

// Schedule is a compiled plan: events sorted by At (insertion order
// breaks ties), ready to be replayed by either runtime.
type Schedule struct {
	Events []Event
	// Crashes counts the KindCrash events, for quick sanity checks.
	Crashes int
}

// Validate rejects plans that cannot compile into a sane schedule.
func (p *Plan) Validate() error {
	if p.Regions < 0 {
		return fmt.Errorf("faults: Regions %d negative", p.Regions)
	}
	if p.DetectDelay < 0 {
		return fmt.Errorf("faults: DetectDelay %v negative", p.DetectDelay)
	}
	for i, w := range p.Waves {
		switch {
		case w.At < 0 || w.Spread < 0 || w.DownFor < 0:
			return fmt.Errorf("faults: wave %d has a negative time", i)
		case w.Count < 0:
			return fmt.Errorf("faults: wave %d Count %d negative", i, w.Count)
		case w.Fraction < 0 || w.Fraction > 1:
			return fmt.Errorf("faults: wave %d Fraction %g outside [0,1]", i, w.Fraction)
		case w.Count == 0 && w.Fraction == 0:
			return fmt.Errorf("faults: wave %d selects no nodes (Count and Fraction both zero)", i)
		case w.Region < 0:
			return fmt.Errorf("faults: wave %d Region %d negative (regions are 1-based, 0 = any)", i, w.Region)
		case w.Region > 0 && p.Regions == 0:
			return fmt.Errorf("faults: wave %d targets region %d but the plan has no Regions", i, w.Region)
		case w.Region > p.Regions:
			return fmt.Errorf("faults: wave %d region %d out of range [1,%d]", i, w.Region, p.Regions)
		}
	}
	for i, b := range p.Bursts {
		switch {
		case b.At < 0 || b.Duration <= 0:
			return fmt.Errorf("faults: burst %d needs At ≥ 0 and Duration > 0", i)
		case b.LossP < 0 || b.LossP > 1:
			return fmt.Errorf("faults: burst %d LossP %g outside [0,1]", i, b.LossP)
		case b.LatencyFactor < 0:
			return fmt.Errorf("faults: burst %d LatencyFactor %g negative", i, b.LatencyFactor)
		}
	}
	for i, o := range p.Outages {
		switch {
		case o.At < 0 || o.Duration <= 0:
			return fmt.Errorf("faults: outage %d needs At ≥ 0 and Duration > 0", i)
		case o.Shard < 0 || o.Replica < 0:
			return fmt.Errorf("faults: outage %d targeting is 1-based (0 = whole plane), got shard %d replica %d",
				i, o.Shard, o.Replica)
		case o.Replica > 0 && o.Shard == 0:
			return fmt.Errorf("faults: outage %d targets replica %d without a shard", i, o.Replica)
		}
	}
	for i, b := range p.Brownouts {
		switch {
		case b.At < 0 || b.Duration <= 0:
			return fmt.Errorf("faults: brownout %d needs At ≥ 0 and Duration > 0", i)
		case b.CapacityFactor <= 0 || b.CapacityFactor >= 1:
			return fmt.Errorf("faults: brownout %d CapacityFactor %g outside (0,1)", i, b.CapacityFactor)
		}
	}
	for i, c := range p.Chaos {
		switch {
		case c.At < 0 || c.Duration <= 0:
			return fmt.Errorf("faults: chaos burst %d needs At ≥ 0 and Duration > 0", i)
		case bad01(c.CorruptP) || bad01(c.TruncateP) || bad01(c.DuplicateP) || bad01(c.StallP):
			return fmt.Errorf("faults: chaos burst %d has a probability outside [0,1]", i)
		case c.CorruptP+c.TruncateP+c.DuplicateP+c.StallP == 0:
			return fmt.Errorf("faults: chaos burst %d injects nothing (all probabilities zero)", i)
		case c.CorruptP+c.TruncateP+c.DuplicateP+c.StallP > 1:
			return fmt.Errorf("faults: chaos burst %d probabilities sum to %g > 1",
				i, c.CorruptP+c.TruncateP+c.DuplicateP+c.StallP)
		case c.StallP > 0 && c.StallFor <= 0:
			return fmt.Errorf("faults: chaos burst %d has StallP %g but no StallFor", i, c.StallP)
		case c.StallFor < 0:
			return fmt.Errorf("faults: chaos burst %d StallFor %v negative", i, c.StallFor)
		}
	}
	for i, f := range p.Flash {
		switch {
		case f.At < 0 || f.Duration <= 0:
			return fmt.Errorf("faults: flash crowd %d needs At ≥ 0 and Duration > 0", i)
		case f.Channel < 0:
			return fmt.Errorf("faults: flash crowd %d Channel %d negative", i, f.Channel)
		case f.RPS <= 0:
			return fmt.Errorf("faults: flash crowd %d RPS %g must be positive", i, f.RPS)
		}
	}
	for i, pt := range p.Partitions {
		switch {
		case pt.At < 0 || pt.Duration <= 0:
			return fmt.Errorf("faults: partition %d needs At ≥ 0 and Duration > 0", i)
		case pt.Groups < 2:
			return fmt.Errorf("faults: partition %d Groups %d must be ≥ 2", i, pt.Groups)
		}
	}
	return nil
}

func bad01(p float64) bool { return p < 0 || p > 1 }

// Compile expands the plan against a population of nodes (ids
// 0..nodes-1) into a time-ordered Schedule. Compilation is
// deterministic: the same plan and node count always yield the same
// event list, byte for byte.
func (p *Plan) Compile(nodes int) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("faults: compile against %d nodes", nodes)
	}
	g := dist.NewRNG(p.Seed)
	var evs []Event
	crashes := 0
	for _, w := range p.Waves {
		var eligible []int
		for n := 0; n < nodes; n++ {
			if w.Region > 0 && p.Regions > 0 && n%p.Regions != w.Region-1 {
				continue
			}
			eligible = append(eligible, n)
		}
		count := w.Count
		if count == 0 {
			count = int(math.Ceil(w.Fraction * float64(len(eligible))))
		}
		if count > len(eligible) {
			count = len(eligible)
		}
		perm := g.Perm(len(eligible))
		for _, pi := range perm[:count] {
			node := eligible[pi]
			at := w.At
			if w.Spread > 0 {
				at += time.Duration(g.Float64() * float64(w.Spread))
			}
			evs = append(evs, Event{At: at, Kind: KindCrash, Node: node})
			crashes++
			if p.DetectDelay > 0 {
				detect := time.Duration(g.Float64()*float64(p.DetectDelay)) + 1
				evs = append(evs, Event{At: at + detect, Kind: KindRepair, Node: node, CrashedAt: at})
			}
			if w.DownFor > 0 {
				evs = append(evs, Event{At: at + w.DownFor, Kind: KindRejoin, Node: node})
			}
		}
	}
	for _, b := range p.Bursts {
		f := b.LatencyFactor
		if f == 0 {
			// Unset means latency unchanged; factors in (0,1) are
			// preserved — they model a recovery/boost window.
			f = 1
		}
		end := b.At + b.Duration
		evs = append(evs,
			Event{At: b.At, Kind: KindBurstStart, Node: -1, Until: end, LatencyFactor: f, LossP: b.LossP},
			Event{At: end, Kind: KindBurstEnd, Node: -1})
	}
	for _, o := range p.Outages {
		end := o.At + o.Duration
		evs = append(evs,
			Event{At: o.At, Kind: KindOutageStart, Node: -1, Until: end, Shard: o.Shard, Replica: o.Replica},
			Event{At: end, Kind: KindOutageEnd, Node: -1, Shard: o.Shard, Replica: o.Replica})
	}
	for _, b := range p.Brownouts {
		end := b.At + b.Duration
		evs = append(evs,
			Event{At: b.At, Kind: KindBrownoutStart, Node: -1, Until: end, CapacityFactor: b.CapacityFactor},
			Event{At: end, Kind: KindBrownoutEnd, Node: -1})
	}
	for _, c := range p.Chaos {
		end := c.At + c.Duration
		evs = append(evs,
			Event{At: c.At, Kind: KindChaosStart, Node: -1, Until: end,
				CorruptP: c.CorruptP, TruncateP: c.TruncateP,
				DuplicateP: c.DuplicateP, StallP: c.StallP, StallFor: c.StallFor},
			Event{At: end, Kind: KindChaosEnd, Node: -1})
	}
	for _, f := range p.Flash {
		end := f.At + f.Duration
		evs = append(evs,
			Event{At: f.At, Kind: KindFlashStart, Node: -1, Until: end, Channel: f.Channel, RPS: f.RPS},
			Event{At: end, Kind: KindFlashEnd, Node: -1, Channel: f.Channel})
	}
	for _, pt := range p.Partitions {
		end := pt.At + pt.Duration
		evs = append(evs,
			Event{At: pt.At, Kind: KindPartitionStart, Node: -1, Until: end, Groups: pt.Groups},
			Event{At: end, Kind: KindPartitionEnd, Node: -1, Groups: pt.Groups})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return &Schedule{Events: evs, Crashes: crashes}, nil
}

// Span returns the timestamp of the last event, i.e. how long a replay
// needs to run for the whole schedule to fire.
func (s *Schedule) Span() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// ChurnPlan is the standard churn-resilience stress used by the churn
// figure and demos: a 30% crash wave that rejoins after two units, a
// tracker outage, then a lossy high-latency burst, with neighbor crash
// detection within a quarter unit. The unit sets the time base — pick
// roughly one session cycle of the workload being stressed.
func ChurnPlan(seed int64, unit time.Duration) *Plan {
	return &Plan{
		Seed:        seed,
		DetectDelay: unit / 4,
		Waves: []ChurnWave{
			{At: unit, Spread: unit / 2, Fraction: 0.3, DownFor: 2 * unit},
		},
		Outages: []Outage{
			{At: 2 * unit, Duration: unit / 2},
		},
		Bursts: []LinkBurst{
			{At: 3 * unit, Duration: unit / 2, LatencyFactor: 3, LossP: 0.25},
		},
	}
}

// FailoverPlan is the provider-crash stress behind the failover figure:
// two crash waves that together take down half the provider population
// while downloads are in flight, with no rejoins — every handoff has to
// find a still-live candidate or fall back to the server. The unit is
// one chunk-delivery step in the figure's progress-keyed replay (the
// requester advances the clock by one unit per chunk received), so the
// same compiled schedule also replays on wall-clock offsets.
func FailoverPlan(seed int64, unit time.Duration) *Plan {
	return &Plan{
		Seed: seed,
		Waves: []ChurnWave{
			{At: unit, Spread: 2 * unit, Fraction: 0.25},
			{At: 4 * unit, Spread: 2 * unit, Fraction: 0.34},
		},
	}
}

// ChaosPlan is the wire-fault stress used by chaos tests and demos: one
// window mixing corrupted, truncated, duplicated and stalled frames.
func ChaosPlan(seed int64, unit time.Duration) *Plan {
	return &Plan{
		Seed: seed,
		Chaos: []ChaosBurst{
			{At: unit, Duration: 2 * unit,
				CorruptP: 0.1, TruncateP: 0.05, DuplicateP: 0.05,
				StallP: 0.05, StallFor: unit / 2},
		},
	}
}

// ReplicaOutagePlan darkens one replica of one tracker shard (1-based)
// for two units starting at one unit, with no churn and no other faults.
// It is the sharded-outage figure's stressor: with a replicated control
// plane the expected effect on the hit rate is ~zero, because peers fail
// over to the shard's surviving replica, and the absence of churn keeps
// request totals deterministic for the comparison.
func ReplicaOutagePlan(seed int64, unit time.Duration, shard, replica int) *Plan {
	return &Plan{
		Seed: seed,
		Outages: []Outage{
			{At: unit, Duration: 2 * unit, Shard: shard, Replica: replica},
		},
	}
}

// FlashPlan is the viral-video stressor: the channel's top video draws
// an extra rps-requests-per-second open-loop stream for two units
// starting at one unit, with no other faults.
func FlashPlan(seed int64, unit time.Duration, channel int, rps float64) *Plan {
	return &Plan{
		Seed: seed,
		Flash: []FlashCrowd{
			{At: unit, Duration: 2 * unit, Channel: channel, RPS: rps},
		},
	}
}

// ShardOutagePlan darkens EVERY replica of one tracker shard (1-based)
// for two units starting at one unit — the whole-shard-death stressor
// behind the takeover figure. Unlike ReplicaOutagePlan there is no
// surviving sibling: recovery requires the other shards' replicas to
// declare the shard dead via gossip liveness and for peers to
// re-rendezvous its channels onto the survivors.
func ShardOutagePlan(seed int64, unit time.Duration, shard int) *Plan {
	return &Plan{
		Seed: seed,
		Outages: []Outage{
			{At: unit, Duration: 2 * unit, Shard: shard, Replica: 0},
		},
	}
}

// PartitionPlan splits the cluster into groups sides for two units
// starting at one unit, with no churn and no other faults — the
// split-brain stressor behind the takeover figure's partition variant.
// Both sides keep serving their reachable replicas; the versioned LWW
// merge plus hinted handoff must re-converge the member tables after
// the heal with zero lost registrations.
func PartitionPlan(seed int64, unit time.Duration, groups int) *Plan {
	return &Plan{
		Seed: seed,
		Partitions: []Partition{
			{At: unit, Duration: 2 * unit, Groups: groups},
		},
	}
}

// OutagePlan is a tracker-outage scenario with background churn: a
// small crash wave, then the tracker goes dark for one unit starting at
// 2×unit. Used by `make faults-demo` and the emu outage figure.
func OutagePlan(seed int64, unit time.Duration) *Plan {
	return &Plan{
		Seed:        seed,
		DetectDelay: unit / 4,
		Waves: []ChurnWave{
			{At: unit, Spread: unit / 2, Fraction: 0.2, DownFor: 2 * unit},
		},
		Outages: []Outage{
			{At: 2 * unit, Duration: unit},
		},
	}
}
