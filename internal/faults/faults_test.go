package faults

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func stressPlan(seed int64) *Plan {
	return &Plan{
		Seed:        seed,
		Regions:     4,
		DetectDelay: 30 * time.Second,
		Waves: []ChurnWave{
			{At: time.Minute, Spread: 30 * time.Second, Fraction: 0.3, DownFor: 2 * time.Minute},
			{At: 5 * time.Minute, Count: 3, Region: 3},
		},
		Bursts:    []LinkBurst{{At: 3 * time.Minute, Duration: time.Minute, LatencyFactor: 3, LossP: 0.25}},
		Outages:   []Outage{{At: 2 * time.Minute, Duration: time.Minute}},
		Brownouts: []Brownout{{At: 6 * time.Minute, Duration: time.Minute, CapacityFactor: 0.5}},
	}
}

// TestCompileDeterministic pins the core contract: the same plan and
// node count compile to a byte-identical schedule every time.
func TestCompileDeterministic(t *testing.T) {
	a, err := stressPlan(7).Compile(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stressPlan(7).Compile(100)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("same seed compiled to different schedules:\n%s\nvs\n%s", ja, jb)
	}
	if len(a.Events) == 0 {
		t.Fatal("stress plan compiled to an empty schedule")
	}
}

// TestCompileSeedMatters guards against the RNG being ignored.
func TestCompileSeedMatters(t *testing.T) {
	a, err := stressPlan(1).Compile(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stressPlan(2).Compile(100)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) == string(jb) {
		t.Fatal("different seeds compiled to identical schedules")
	}
}

func TestCompileOrderingAndPairing(t *testing.T) {
	s, err := stressPlan(3).Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := make(map[int]time.Duration)
	var last time.Duration
	for i, ev := range s.Events {
		if ev.At < last {
			t.Fatalf("event %d at %v fires before predecessor at %v", i, ev.At, last)
		}
		last = ev.At
		switch ev.Kind {
		case KindCrash:
			crashAt[ev.Node] = ev.At
		case KindRejoin:
			at, ok := crashAt[ev.Node]
			if !ok {
				t.Fatalf("node %d rejoins without crashing", ev.Node)
			}
			if ev.At <= at {
				t.Fatalf("node %d rejoins at %v, before its crash at %v", ev.Node, ev.At, at)
			}
		case KindRepair:
			at, ok := crashAt[ev.Node]
			if !ok {
				t.Fatalf("repair for node %d without a crash", ev.Node)
			}
			if ev.CrashedAt != at {
				t.Fatalf("repair CrashedAt %v != crash time %v", ev.CrashedAt, at)
			}
			if ev.At <= at {
				t.Fatalf("repair fires at %v, not after the crash at %v", ev.At, at)
			}
		case KindBurstStart, KindOutageStart, KindBrownoutStart:
			if ev.Until <= ev.At {
				t.Fatalf("%v window closes at %v, not after it opens at %v", ev.Kind, ev.Until, ev.At)
			}
		}
	}
	if s.Crashes == 0 {
		t.Fatal("no crashes compiled")
	}
	if got := s.Span(); got != last {
		t.Fatalf("Span %v != last event %v", got, last)
	}
}

func TestCompileRegionFilter(t *testing.T) {
	p := &Plan{
		Seed:    1,
		Regions: 4,
		Waves:   []ChurnWave{{At: time.Second, Count: 5, Region: 3}},
	}
	s, err := p.Compile(40)
	if err != nil {
		t.Fatal(err)
	}
	if s.Crashes != 5 {
		t.Fatalf("want 5 crashes, got %d", s.Crashes)
	}
	for _, ev := range s.Events {
		if ev.Kind == KindCrash && ev.Node%4 != 2 {
			t.Fatalf("node %d crashed outside region 3 (node%%4 == 2)", ev.Node)
		}
	}
}

func TestCompileFractionCeil(t *testing.T) {
	p := &Plan{Seed: 1, Waves: []ChurnWave{{At: time.Second, Fraction: 0.5}}}
	s, err := p.Compile(7)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(0.5 * 7) = 4.
	if s.Crashes != 4 {
		t.Fatalf("want 4 crashes from Fraction 0.5 of 7 nodes, got %d", s.Crashes)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []*Plan{
		{Regions: -1},
		{DetectDelay: -time.Second},
		{Waves: []ChurnWave{{At: -time.Second, Count: 1}}},
		{Waves: []ChurnWave{{At: time.Second}}},                                              // no Count, no Fraction
		{Waves: []ChurnWave{{At: time.Second, Fraction: 1.5}}},                               // Fraction > 1
		{Waves: []ChurnWave{{At: time.Second, Count: 1, Region: 1}}},                         // region without Regions
		{Waves: []ChurnWave{{At: time.Second, Count: 1, Region: -1}}},                        // negative region
		{Regions: 2, Waves: []ChurnWave{{At: 0, Count: 1, Region: 3}}},                       // region out of range
		{Bursts: []LinkBurst{{At: time.Second}}},                                             // zero duration
		{Bursts: []LinkBurst{{At: 0, Duration: time.Second, LossP: 2}}},                      // LossP > 1
		{Outages: []Outage{{At: 0}}},                                                         // zero duration
		{Brownouts: []Brownout{{At: 0, Duration: time.Second}}},                              // zero capacity
		{Brownouts: []Brownout{{At: 0, Duration: time.Second, CapacityFactor: 1}}},           // no-op capacity
		{Chaos: []ChaosBurst{{At: 0, CorruptP: 0.1}}},                                        // zero duration
		{Chaos: []ChaosBurst{{At: 0, Duration: time.Second}}},                                // injects nothing
		{Chaos: []ChaosBurst{{At: 0, Duration: time.Second, CorruptP: 1.5}}},                 // P > 1
		{Chaos: []ChaosBurst{{At: 0, Duration: time.Second, CorruptP: 0.6, TruncateP: 0.6}}}, // sum > 1
		{Chaos: []ChaosBurst{{At: 0, Duration: time.Second, StallP: 0.5}}},                   // stall without StallFor
		{Partitions: []Partition{{At: 0, Groups: 2}}},                                       // zero duration
		{Partitions: []Partition{{At: 0, Duration: time.Second, Groups: 1}}},                // one side is no cut
		{Partitions: []Partition{{At: -time.Second, Duration: time.Second, Groups: 2}}},     // negative At
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
		if _, err := p.Compile(10); err == nil {
			t.Errorf("bad plan %d compiled", i)
		}
	}
	if _, err := (&Plan{Waves: []ChurnWave{{Count: 1}}}).Compile(0); err == nil {
		t.Error("compile against zero nodes accepted")
	}
}

func TestHelperPlansCompile(t *testing.T) {
	for name, p := range map[string]*Plan{
		"churn":  ChurnPlan(9, time.Minute),
		"outage": OutagePlan(9, time.Minute),
	} {
		s, err := p.Compile(50)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Crashes == 0 || len(s.Events) <= s.Crashes {
			t.Fatalf("%s: degenerate schedule (%d events, %d crashes)", name, len(s.Events), s.Crashes)
		}
	}

	// FailoverPlan is crash-only: no rejoins, no repair events — every
	// lost provider stays lost for the rest of the run.
	fs, err := FailoverPlan(9, time.Minute).Compile(8)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if fs.Crashes == 0 || len(fs.Events) != fs.Crashes {
		t.Fatalf("failover: want crash-only schedule, got %d events, %d crashes", len(fs.Events), fs.Crashes)
	}
	if fs.Crashes >= 8 {
		t.Fatalf("failover: all %d providers crash — no candidate can survive", fs.Crashes)
	}
	for _, ev := range fs.Events {
		if ev.Kind != KindCrash {
			t.Fatalf("failover: unexpected %v event", ev.Kind)
		}
	}

	// ChaosPlan compiles to one paired chaos window carrying the mix.
	cs, err := ChaosPlan(9, time.Minute).Compile(8)
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	if len(cs.Events) != 2 {
		t.Fatalf("chaos: want start/end pair, got %d events", len(cs.Events))
	}
	start, end := cs.Events[0], cs.Events[1]
	if start.Kind != KindChaosStart || end.Kind != KindChaosEnd {
		t.Fatalf("chaos: kinds = %v, %v", start.Kind, end.Kind)
	}
	if start.Until != end.At || start.Until <= start.At {
		t.Fatalf("chaos: window [%v, until %v] vs end at %v", start.At, start.Until, end.At)
	}
	if start.CorruptP <= 0 || start.TruncateP <= 0 || start.DuplicateP <= 0 || start.StallP <= 0 || start.StallFor <= 0 {
		t.Fatalf("chaos: parameters not carried: %+v", start)
	}
}

// TestReplicaOutageTargeting pins the control-plane addressing added for
// the sharded tracker: shard/replica targets survive compilation on both
// the start and end events, and a targetless plan's wire form stays
// byte-identical to the pre-sharding schema (omitempty fields).
func TestReplicaOutageTargeting(t *testing.T) {
	plan := ReplicaOutagePlan(3, time.Minute, 2, 1)
	sched, err := plan.Compile(10)
	if err != nil {
		t.Fatal(err)
	}
	var starts, ends int
	for _, ev := range sched.Events {
		switch ev.Kind {
		case KindOutageStart:
			starts++
		case KindOutageEnd:
			ends++
		default:
			continue
		}
		if ev.Shard != 2 || ev.Replica != 1 {
			t.Fatalf("%s lost its target: shard %d replica %d", ev.Kind, ev.Shard, ev.Replica)
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("replica outage compiled to %d starts / %d ends", starts, ends)
	}

	// A legacy whole-plane outage event must serialize without any
	// shard/replica keys at all, so archived schedules stay comparable.
	legacy, err := (&Plan{Seed: 1, Outages: []Outage{{At: time.Minute, Duration: time.Minute}}}).Compile(10)
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shard", "replica"} {
		if bytes.Contains(j, []byte(`"`+key+`"`)) {
			t.Fatalf("legacy schedule wire form grew a %q field:\n%s", key, j)
		}
	}
}

// TestValidateRejectsBadTargets covers the new Outage target rules: no
// negative indices, and a replica target needs a shard to live in.
func TestValidateRejectsBadTargets(t *testing.T) {
	for name, o := range map[string]Outage{
		"negative shard":        {At: time.Minute, Duration: time.Minute, Shard: -1},
		"negative replica":      {At: time.Minute, Duration: time.Minute, Replica: -1},
		"replica without shard": {At: time.Minute, Duration: time.Minute, Replica: 2},
	} {
		p := &Plan{Seed: 1, Outages: []Outage{o}}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, o)
		}
	}
	ok := &Plan{Seed: 1, Outages: []Outage{{At: time.Minute, Duration: time.Minute, Shard: 1, Replica: 2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid target rejected: %v", err)
	}
}

// TestPartitionCompile pins the split-brain window added for the
// partition-tolerant control plane: Groups survives compilation on both
// the start and end events, the helper plans compile to sane schedules,
// and a partitionless plan's wire form never mentions the new field.
func TestPartitionCompile(t *testing.T) {
	sched, err := PartitionPlan(5, time.Minute, 2).Compile(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 2 {
		t.Fatalf("partition plan compiled to %d events", len(sched.Events))
	}
	start, end := sched.Events[0], sched.Events[1]
	if start.Kind != KindPartitionStart || end.Kind != KindPartitionEnd {
		t.Fatalf("kinds = %v, %v", start.Kind, end.Kind)
	}
	if start.Groups != 2 || end.Groups != 2 {
		t.Fatalf("partition lost its side count: start %d end %d", start.Groups, end.Groups)
	}
	if start.Until != end.At || start.Until <= start.At {
		t.Fatalf("window [%v, until %v] vs end at %v", start.At, start.Until, end.At)
	}

	// ShardOutagePlan darkens every replica of the shard: Replica stays 0.
	ss, err := ShardOutagePlan(5, time.Minute, 1).Compile(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Events) != 2 {
		t.Fatalf("shard outage compiled to %d events", len(ss.Events))
	}
	for _, ev := range ss.Events {
		if ev.Shard != 1 || ev.Replica != 0 {
			t.Fatalf("%s targeting: shard %d replica %d", ev.Kind, ev.Shard, ev.Replica)
		}
	}

	// A partitionless schedule must serialize without any groups key, so
	// archived schedules stay byte-comparable.
	legacy, err := OutagePlan(5, time.Minute).Compile(10)
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(j, []byte(`"groups"`)) {
		t.Fatalf("legacy schedule wire form grew a groups field:\n%s", j)
	}
}
