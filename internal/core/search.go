package core

import (
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/overlay"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// flood runs one TTL-scoped flood over mesh through the system's reusable
// scratch and hoisted closures — zero allocation per query.
func (s *System) flood(origin int, mesh *overlay.Mesh) overlay.FloodResult {
	s.floodMesh = mesh
	return s.scratch.Flood(origin, s.cfg.TTL, s.floodNeighbors, s.matchNode)
}

// breakerAllow / breakerFail / breakerOK wrap the breaker set, mirroring
// its transition statistics into the dense counter block so snapshots
// always carry them. Healthy runs only ever take the closed-breaker path,
// so message counts and RNG draws stay bit-identical with PR-1 runs; all
// three are allocation-free (the set is pre-sized to the population).
func (s *System) breakerAllow(id int) bool {
	ok := s.brk.Allow(id, s.now)
	s.ctr.BreakerSkips = s.brk.Skips
	s.ctr.BreakerProbes = s.brk.Probes
	return ok
}

func (s *System) breakerFail(id int) {
	s.brk.Failure(id, s.now)
	s.ctr.BreakerOpens = s.brk.Opens
}

func (s *System) breakerOK(id int) {
	s.brk.Success(id)
	s.ctr.BreakerRecoveries = s.brk.Recoveries
}

// Request implements vod.Protocol: locate the video per Algorithm 1, then
// account the outcome (request source, hop histogram, prefetch hit/miss) and
// emit the serve event. The accounting is hoisted out of locate so the
// search phases stay exactly the PR-1 hot path plus counter increments.
func (s *System) Request(node int, v trace.VideoID) vod.RequestResult {
	// One span id per request: every event in the causal chain (the
	// floods below, a cross-cell query, the final serve) carries it so a
	// JSONL trace reconstructs per-request paths (obs.PrettySpans).
	s.span = s.nextSpan()
	res := s.locate(node, v)
	res.Span = s.span
	switch res.Source {
	case vod.SourceCache:
		s.ctr.RequestsCache++
	case vod.SourcePeer:
		s.ctr.RequestsPeer++
		s.ctr.AddHops(res.Hops)
	default:
		s.ctr.RequestsServer++
	}
	if res.Source != vod.SourceCache {
		if res.PrefixCached {
			s.ctr.PrefetchHits++
		} else {
			s.ctr.PrefetchMisses++
		}
	}
	if s.tracer != nil {
		provider := -1
		if res.Source == vod.SourcePeer {
			provider = res.Provider
		}
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindServe, Node: node,
			Video: int64(v), Provider: provider, Source: res.Source.String(), Hops: res.Hops, Msgs: res.Messages,
			Span: s.span})
	}
	return res
}

// locate follows Algorithm 1 of the paper: the node queries its channel
// overlay with the TTL, then its category cluster (each inter-neighbour
// forwards within its own channel overlay with the TTL), and finally resorts
// to the server.
func (s *System) locate(node int, v trace.VideoID) vod.RequestResult {
	st := s.state(node)
	video := s.tr.Video(v)
	if st == nil || !st.online || video == nil {
		return vod.RequestResult{Source: vod.SourceServer}
	}
	res := vod.RequestResult{PrefixCached: st.cache.HasPrefix(v)}
	if st.cache.HasFull(v) {
		res.Source = vod.SourceCache
		return res
	}
	s.ensureAttached(node, video.Channel)
	s.matchVideo = v

	// Phase 1: flood the node's channel overlay along inner-links.
	if st.home >= 0 {
		mesh := s.innerMesh(st.home)
		s.ctr.LookupsChannel++
		fr := s.flood(node, mesh)
		res.Messages += fr.Messages
		s.ctr.FloodMsgsChannel += uint64(fr.Messages)
		if s.tracer != nil {
			provider := -1
			if fr.OK {
				provider = fr.Found
			}
			s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindFlood, Node: node,
				Video: int64(v), Provider: provider, Level: obs.LevelChannel, OK: fr.OK, Hops: fr.Hops, Msgs: fr.Messages,
				Span: s.span})
		}
		if fr.OK {
			s.ctr.HitsChannel++
			res.Source = vod.SourcePeer
			res.Provider = fr.Found
			res.Hops = fr.Hops
			// The requester connects to the provider it found
			// (§IV-A), building inner-links up to N_l.
			mesh.Connect(node, fr.Found)
			return res
		}
		s.ctr.TTLExhausted++
	}

	// Phase 2: query inter-neighbours; each forwards within its own
	// channel overlay for TTL hops. The view is safe to range over: the
	// inter mesh is only mutated right before returning. catMsgs tracks
	// the category-level message volume for the counters and the flood
	// event (a request that never leaves its channel emits none).
	s.ctr.LookupsCategory++
	catMsgs := 0
	for _, j := range s.inter.NeighborsView(node) {
		if !s.breakerAllow(j) {
			continue // open breaker: no message spent on a dead link
		}
		res.Messages++
		catMsgs++
		if !s.online(j) {
			// The contact timed out: the breaker absorbs the strike so
			// repeated requests stop paying for this neighbour before
			// the next probe round prunes it.
			s.breakerFail(j)
			continue
		}
		s.breakerOK(j)
		if s.matchNode(j) {
			res.Source = vod.SourcePeer
			res.Provider = j
			res.Hops = 1
			s.ctr.FloodMsgsCategory += uint64(catMsgs)
			s.ctr.HitsCategory++
			if s.tracer != nil {
				s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindFlood, Node: node,
					Video: int64(v), Provider: j, Level: obs.LevelCategory, OK: true, Hops: 1, Msgs: catMsgs,
					Span: s.span})
			}
			return res
		}
		jHome := s.nodes[j].home
		if jHome < 0 {
			continue
		}
		fr := s.flood(j, s.innerMesh(jHome))
		res.Messages += fr.Messages
		catMsgs += fr.Messages
		if fr.OK {
			res.Source = vod.SourcePeer
			res.Provider = fr.Found
			res.Hops = 1 + fr.Hops
			s.ctr.FloodMsgsCategory += uint64(catMsgs)
			s.ctr.HitsCategory++
			if s.tracer != nil {
				s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindFlood, Node: node,
					Video: int64(v), Provider: fr.Found, Level: obs.LevelCategory, OK: true, Hops: res.Hops, Msgs: catMsgs,
					Span: s.span})
			}
			// Connect to the provider if inter-link budget remains.
			s.inter.Connect(node, fr.Found)
			return res
		}
		s.ctr.TTLExhausted++
	}
	s.ctr.FloodMsgsCategory += uint64(catMsgs)
	if s.tracer != nil && catMsgs > 0 {
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindFlood, Node: node,
			Video: int64(v), Provider: -1, Level: obs.LevelCategory, OK: false, Msgs: catMsgs, Span: s.span})
	}

	// The request now reaches the server, whether it assists (phase 2.5)
	// or serves the video itself (phase 3).
	s.ctr.LookupsServer++

	// Phase 2.5: before serving the video itself, the server recommends
	// a node in the video's own channel overlay ("including a node with
	// the video", §IV-A) — the path that rescues non-subscribers and
	// cross-channel views.
	if st.home != video.Channel {
		provider, hops, msgs, ok := s.searchChannelOverlay(node, video.Channel)
		res.Messages += msgs
		s.ctr.FloodMsgsServer += uint64(msgs)
		if s.tracer != nil && msgs > 0 {
			p := -1
			if ok {
				p = provider
			}
			s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindFlood, Node: node,
				Video: int64(v), Provider: p, Level: obs.LevelServer, OK: ok, Hops: hops, Msgs: msgs,
				Span: s.span})
		}
		if ok {
			s.ctr.HitsServerAssist++
			res.Source = vod.SourcePeer
			res.Provider = provider
			res.Hops = hops
			s.inter.Connect(node, provider)
			return res
		}
		if msgs > 0 {
			s.ctr.TTLExhausted++
		}
	}

	// Phase 3: the server serves the video.
	res.Source = vod.SourceServer
	return res
}

// searchChannelOverlay queries a server-recommended member of the channel's
// overlay and lets the query flood that overlay with the TTL, matching the
// video set by the caller through s.matchVideo.
func (s *System) searchChannelOverlay(node int, ch trace.ChannelID) (provider, hops, msgs int, ok bool) {
	entry := s.memberSetOf(ch).Random(s.g, node)
	if entry < 0 || !s.breakerAllow(entry) {
		return 0, 0, 0, false
	}
	if !s.online(entry) {
		// Member sets shed failed nodes, but a recommendation can race a
		// crash; the breaker remembers the dead entry point.
		s.breakerFail(entry)
		return 0, 0, 0, false
	}
	s.breakerOK(entry)
	msgs = 1 // the contact with the recommended entry node
	if s.matchNode(entry) {
		return entry, 1, msgs, true
	}
	fr := s.flood(entry, s.innerMesh(ch))
	msgs += fr.Messages
	if fr.OK {
		return fr.Found, 1 + fr.Hops, msgs, true
	}
	return 0, 0, msgs, false
}

// ensureAttached places the node in the overlays relevant to the requested
// channel. Subscribers join (or switch to) the channel's lower-level
// overlay; non-subscribers are instead given inter-links into the channel's
// category by the server, per §IV-A.
func (s *System) ensureAttached(node int, ch trace.ChannelID) {
	st := s.state(node)
	cat := s.channelCategory(ch)
	if !s.subscribed(node, ch) {
		// Non-subscriber: keep the current home overlay; the server
		// recommends common-interest peers (one per channel in the
		// category) for inter-links.
		s.seedInterLinks(node, cat)
		return
	}
	if st.home == ch {
		s.memberSetOf(ch).Add(node)
		s.replenish(node)
		return
	}
	// Switching channel overlays: leave the old one; drop inter-links
	// too when the interest category changes, since the node maintains
	// links only within its channel and category (§IV-A).
	oldCat := trace.CategoryID(-1)
	if st.home >= 0 {
		oldCat = s.channelCategory(st.home)
	}
	s.detach(node)
	if oldCat != cat {
		s.inter.RemoveNode(node)
	}
	st.home = ch
	s.memberSetOf(ch).Add(node)
	// The server assists the join with inner neighbours from the channel
	// overlay and inter neighbours across the category's channels; links
	// reach the steady-state N_l + N_h Fig. 18 observes ("15 links at
	// all times through their sessions after the initial phase").
	s.replenish(node)
}

// seedInterLinks asks the server for one random online node per channel in
// the category until the node's inter-link budget N_h is filled.
func (s *System) seedInterLinks(node int, cat trace.CategoryID) {
	if s.cfg.InterLinks == 0 || cat < 0 {
		return
	}
	if s.inter.Full(node) {
		return
	}
	chans := s.byCat[cat]
	if len(chans) == 0 {
		return
	}
	st := s.state(node)
	// Random channel order, bounded attempts: the server recommends one
	// node per sibling channel.
	perm := s.g.Perm(len(chans))
	for _, idx := range perm {
		if s.inter.Full(node) {
			return
		}
		ch := chans[idx]
		if st.home == ch {
			continue // inner overlay already covers the home channel
		}
		cand := s.memberSetOf(ch).Random(s.g, node)
		if cand < 0 || !s.online(cand) {
			continue
		}
		s.inter.Connect(node, cand)
	}
}

// subscribed reports whether the node's user subscribes to the channel.
func (s *System) subscribed(node int, ch trace.ChannelID) bool {
	return node >= 0 && node < len(s.subs) && s.subs[node][ch]
}

// Finish implements vod.Protocol: the node caches the watched video and
// prefetches the first chunks of the M most popular videos of the channel
// it is watching (§IV-B's channel-facilitated prefetching).
func (s *System) Finish(node int, v trace.VideoID) {
	st := s.state(node)
	video := s.tr.Video(v)
	if st == nil || video == nil {
		return
	}
	st.cache.AddFull(v)
	if s.cfg.PrefetchCount <= 0 {
		return
	}
	ch := s.tr.Channel(video.Channel)
	if ch == nil {
		return
	}
	// Channel videos are ordered by popularity rank, so the top-M list
	// the server publishes is simply the prefix.
	for i := 0; i < len(ch.Videos) && i < s.cfg.PrefetchCount; i++ {
		if ch.Videos[i] == v {
			continue
		}
		if st.cache.HasPrefix(ch.Videos[i]) {
			continue // already local: nothing new to prefetch
		}
		st.cache.AddPrefix(ch.Videos[i])
		s.ctr.PrefetchStored++
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindPrefetch, Node: node,
				Video: int64(ch.Videos[i]), Provider: -1})
		}
	}
}
