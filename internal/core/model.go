package core

import (
	"math"

	"github.com/socialtube/socialtube/internal/dist"
)

// MaintenanceModel is the closed-form overhead comparison of §IV-C
// (Fig. 15). With random links, the optimal hop/link tradeoff sets
// N_l = log(u_c) and N_h = log(u_t), so SocialTube's overhead is
// log(u_c) + log(u_t) regardless of viewing activity, while NetTube's is
// m·log(u): one overlay of log(u) links per video watched.
type MaintenanceModel struct {
	// UsersPerVideo is u, the viewers of one video (paper: 500).
	UsersPerVideo int
	// UsersPerChannel is u_c, the subscribers of one channel
	// (paper: 5,000).
	UsersPerChannel int
	// UsersPerInterest is u_t, all users within one interest category
	// (paper: 25,000).
	UsersPerInterest int
}

// DefaultMaintenanceModel returns the parameters used for Fig. 15.
func DefaultMaintenanceModel() MaintenanceModel {
	return MaintenanceModel{
		UsersPerVideo:    500,
		UsersPerChannel:  5_000,
		UsersPerInterest: 25_000,
	}
}

// SocialTube returns the modelled number of links a SocialTube node
// maintains — constant in the number of videos watched.
func (m MaintenanceModel) SocialTube(videosWatched int) float64 {
	if videosWatched <= 0 {
		return 0
	}
	return math.Log2(float64(m.UsersPerChannel)) + math.Log2(float64(m.UsersPerInterest))
}

// NetTube returns the modelled number of links a NetTube node maintains
// after watching the given number of videos: m·log(u), linear in m.
func (m MaintenanceModel) NetTube(videosWatched int) float64 {
	if videosWatched <= 0 {
		return 0
	}
	return float64(videosWatched) * math.Log2(float64(m.UsersPerVideo))
}

// PrefetchAccuracy returns the probability that one of the top
// prefetchCount videos of a channel with channelVideos videos is watched
// next, under the Zipf(s=1) within-channel popularity of §IV-B. For a
// 25-video channel the paper quotes 26.2% for a single prefetch and 54.6%
// for 3–4 prefetches.
func PrefetchAccuracy(channelVideos, prefetchCount int) float64 {
	if channelVideos <= 0 || prefetchCount <= 0 {
		return 0
	}
	z, err := dist.NewZipf(channelVideos, 1)
	if err != nil {
		return 0
	}
	return z.TopP(prefetchCount)
}
