package core

import (
	"math"
	"testing"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/overlay"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

func coreTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 21
	cfg.Channels = 60
	cfg.Users = 500
	cfg.Categories = 6
	cfg.MaxInterestsPerUser = 6
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func newSystem(t *testing.T, tr *trace.Trace, mutate func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// subscribedVideo returns a node id together with a video from one of its
// subscribed channels.
func subscribedVideo(t *testing.T, tr *trace.Trace) (int, trace.VideoID) {
	t.Helper()
	for _, u := range tr.Users {
		for _, cid := range u.Subscriptions {
			ch := tr.Channel(cid)
			if len(ch.Videos) > 0 {
				return int(u.ID), ch.Videos[0]
			}
		}
	}
	t.Fatal("no subscribed user with videos")
	return 0, 0
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", nil, true},
		{"zero inner", func(c *Config) { c.InnerLinks = 0 }, false},
		{"negative inter", func(c *Config) { c.InterLinks = -1 }, false},
		{"zero inter allowed", func(c *Config) { c.InterLinks = 0 }, true},
		{"zero ttl", func(c *Config) { c.TTL = 0 }, false},
		{"negative prefetch", func(c *Config) { c.PrefetchCount = -1 }, false},
		{"zero prefetch allowed", func(c *Config) { c.PrefetchCount = 0 }, true},
		{"negative cache", func(c *Config) { c.CacheVideos = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			err := cfg.Validate()
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestNewRejectsEmptyTrace(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("expected error for nil trace")
	}
	if _, err := New(DefaultConfig(), &trace.Trace{}); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestProtocolInterfaceCompliance(t *testing.T) {
	var _ vod.Protocol = (*System)(nil)
}

func TestCacheHitAfterFinish(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	s.Join(node)
	res := s.Request(node, v)
	if res.Source != vod.SourceServer {
		t.Fatalf("first request source = %v, want server (empty system)", res.Source)
	}
	s.Finish(node, v)
	res = s.Request(node, v)
	if res.Source != vod.SourceCache {
		t.Fatalf("request after finish source = %v, want cache", res.Source)
	}
}

func TestPeerServesAfterCaching(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	ch := tr.Video(v).Channel
	// Bring another subscriber of the same channel online with the video.
	var other int = -1
	for _, uid := range tr.Channel(ch).Subscribers {
		if int(uid) != node {
			other = int(uid)
			break
		}
	}
	if other < 0 {
		t.Skip("channel has a single subscriber")
	}
	s.Join(other)
	if got := s.Request(other, v); got.Source != vod.SourceServer {
		t.Fatalf("seeding request source = %v", got.Source)
	}
	s.Finish(other, v)

	s.Join(node)
	res := s.Request(node, v)
	if res.Source != vod.SourcePeer {
		t.Fatalf("source = %v, want peer", res.Source)
	}
	if res.Provider != other {
		t.Fatalf("provider = %d, want %d", res.Provider, other)
	}
	if res.Hops < 1 || res.Hops > DefaultConfig().TTL {
		t.Fatalf("hops = %d outside [1, TTL]", res.Hops)
	}
	if res.Messages == 0 {
		t.Fatal("peer search sent no messages")
	}
}

func TestLinkBoundsNeverExceeded(t *testing.T) {
	tr := coreTrace(t)
	cfg := DefaultConfig()
	s := newSystem(t, tr, nil)
	g := dist.NewRNG(5)
	picker, err := vod.NewPicker(tr, vod.DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	// Drive many nodes through several requests each.
	for i := 0; i < 300; i++ {
		node := int(tr.Users[i%len(tr.Users)].ID)
		s.Join(node)
		v := picker.First(g, &tr.Users[node])
		for k := 0; k < 4; k++ {
			s.Request(node, v)
			s.Finish(node, v)
			v = picker.Next(g, v)
		}
	}
	for _, u := range tr.Users {
		node := int(u.ID)
		if got := s.InnerLinks(node); got > cfg.InnerLinks {
			t.Fatalf("node %d inner links %d > N_l %d", node, got, cfg.InnerLinks)
		}
		if got := s.InterLinks(node); got > cfg.InterLinks {
			t.Fatalf("node %d inter links %d > N_h %d", node, got, cfg.InterLinks)
		}
		if got := s.Links(node); got > cfg.InnerLinks+cfg.InterLinks {
			t.Fatalf("node %d total links %d exceed budget", node, got)
		}
	}
}

func TestGracefulLeaveClearsLinks(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	s.Join(node)
	s.Request(node, v)
	s.Finish(node, v)
	s.Leave(node)
	if s.Links(node) != 0 {
		t.Fatalf("links after graceful leave = %d, want 0", s.Links(node))
	}
	// Neighbours must not retain links to the departed node.
	for _, u := range tr.Users {
		other := int(u.ID)
		if other == node {
			continue
		}
		if st := s.state(other); st.home >= 0 {
			for _, nb := range s.innerMesh(st.home).Neighbors(other) {
				if nb == node {
					t.Fatalf("node %d retains link to departed %d", other, node)
				}
			}
		}
	}
}

func TestFailKeepsNeighborLinksUntilProbe(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	ch := tr.Video(v).Channel
	var other int = -1
	for _, uid := range tr.Channel(ch).Subscribers {
		if int(uid) != node {
			other = int(uid)
			break
		}
	}
	if other < 0 {
		t.Skip("channel has a single subscriber")
	}
	// Both nodes join the channel overlay and link up.
	s.Join(other)
	s.Request(other, v)
	s.Finish(other, v)
	s.Join(node)
	res := s.Request(node, v)
	if res.Source != vod.SourcePeer {
		t.Skip("nodes did not link up in this topology")
	}
	before := s.Links(node)
	if before == 0 {
		t.Fatal("requester holds no links")
	}
	s.Fail(other)
	if got := s.Links(node); got != before {
		t.Fatalf("links changed on abrupt failure before probe: %d -> %d", before, got)
	}
	msgs := s.Probe(node)
	if msgs == 0 {
		t.Fatal("probe sent no messages")
	}
	// The dead link must be gone (replenish may add fresh live links).
	if st := s.state(node); st.home >= 0 {
		for _, nb := range s.innerMesh(st.home).Neighbors(node) {
			if nb == other {
				t.Fatal("probe left a dead link")
			}
		}
	}
}

func TestRejoinReconnectsToPreviousNeighbors(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	ch := tr.Video(v).Channel
	var other int = -1
	for _, uid := range tr.Channel(ch).Subscribers {
		if int(uid) != node {
			other = int(uid)
			break
		}
	}
	if other < 0 {
		t.Skip("channel has a single subscriber")
	}
	s.Join(other)
	s.Request(other, v)
	s.Finish(other, v)
	s.Join(node)
	if got := s.Request(node, v); got.Source != vod.SourcePeer {
		t.Skip("nodes did not link up")
	}
	s.Leave(node)
	s.Join(node)
	if s.Links(node) == 0 {
		t.Fatal("rejoin did not reconnect to previous neighbours")
	}
	if s.Home(node) != ch {
		t.Fatalf("rejoined home = %d, want %d", s.Home(node), ch)
	}
}

func TestCachePersistsAcrossSessions(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	s.Join(node)
	s.Request(node, v)
	s.Finish(node, v)
	s.Leave(node)
	s.Join(node)
	if res := s.Request(node, v); res.Source != vod.SourceCache {
		t.Fatalf("cached video lost across sessions: source %v", res.Source)
	}
}

func TestPrefetchMarksTopChannelVideos(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	// Find a subscribed channel with enough videos.
	var node int
	var ch *trace.Channel
	for _, u := range tr.Users {
		for _, cid := range u.Subscriptions {
			if c := tr.Channel(cid); len(c.Videos) >= 5 {
				node, ch = int(u.ID), c
				break
			}
		}
		if ch != nil {
			break
		}
	}
	if ch == nil {
		t.Skip("no subscribed channel with >=5 videos")
	}
	s.Join(node)
	watched := ch.Videos[4]
	s.Request(node, watched)
	s.Finish(node, watched)
	cache := s.Cache(node)
	for i := 0; i < DefaultConfig().PrefetchCount; i++ {
		if !cache.HasPrefix(ch.Videos[i]) {
			t.Fatalf("top-%d video %d not prefetched", i+1, ch.Videos[i])
		}
	}
	// A later request for a prefetched video reports the prefix hit.
	res := s.Request(node, ch.Videos[0])
	if !res.PrefixCached {
		t.Fatal("request did not report prefetch hit")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, func(c *Config) { c.PrefetchCount = 0 })
	node, v := subscribedVideo(t, tr)
	s.Join(node)
	s.Request(node, v)
	s.Finish(node, v)
	if got := s.Cache(node).PrefixLen(); got != 0 {
		t.Fatalf("prefetch disabled but %d prefixes cached", got)
	}
}

func TestInterLinksDisabledAblation(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, func(c *Config) { c.InterLinks = 0 })
	node, v := subscribedVideo(t, tr)
	s.Join(node)
	s.Request(node, v)
	if got := s.InterLinks(node); got != 0 {
		t.Fatalf("inter links = %d with N_h = 0", got)
	}
}

func TestDoubleJoinAndLeaveAreIdempotent(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	s.Join(node)
	s.Join(node)
	s.Request(node, v)
	s.Leave(node)
	s.Leave(node)
	s.Fail(node) // offline fail is a no-op
	if s.Links(node) != 0 {
		t.Fatal("links after repeated leave")
	}
}

func TestRequestUnknownNodeOrVideo(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	if res := s.Request(1<<30, 0); res.Source != vod.SourceServer {
		t.Fatal("unknown node should fall back to server")
	}
	node := int(tr.Users[0].ID)
	s.Join(node)
	if res := s.Request(node, trace.VideoID(1<<30)); res.Source != vod.SourceServer {
		t.Fatal("unknown video should fall back to server")
	}
	if got := s.Links(1 << 30); got != 0 {
		t.Fatal("unknown node has links")
	}
	if s.Cache(1<<30) != nil {
		t.Fatal("unknown node has a cache")
	}
}

func TestOfflineNodeRequestGoesToServer(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	if res := s.Request(node, v); res.Source != vod.SourceServer {
		t.Fatal("offline node should be served by the server")
	}
}

func TestMeshesStaySymmetricUnderChurn(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	g := dist.NewRNG(9)
	picker, err := vod.NewPicker(tr, vod.DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 200; i++ {
			node := int(tr.Users[g.Intn(len(tr.Users))].ID)
			switch g.Intn(5) {
			case 0:
				s.Join(node)
			case 1:
				s.Leave(node)
			case 2:
				s.Fail(node)
			case 3:
				s.Probe(node)
			default:
				if s.online(node) {
					v := picker.First(g, &tr.Users[node])
					s.Request(node, v)
					s.Finish(node, v)
				}
			}
		}
		for ch, mesh := range s.inner {
			if !mesh.Symmetric() {
				t.Fatalf("inner mesh of channel %d asymmetric after round %d", ch, round)
			}
		}
		if !s.inter.Symmetric() {
			t.Fatalf("inter mesh asymmetric after round %d", round)
		}
	}
}

func TestMaintenanceModelShapes(t *testing.T) {
	m := DefaultMaintenanceModel()
	if got := m.SocialTube(0); got != 0 {
		t.Errorf("SocialTube(0) = %v, want 0", got)
	}
	if got := m.NetTube(0); got != 0 {
		t.Errorf("NetTube(0) = %v, want 0", got)
	}
	// SocialTube is constant in videos watched.
	if m.SocialTube(1) != m.SocialTube(100) {
		t.Error("SocialTube overhead should be constant")
	}
	// NetTube is linear: doubling m doubles overhead.
	if math.Abs(m.NetTube(20)-2*m.NetTube(10)) > 1e-9 {
		t.Error("NetTube overhead should be linear in videos watched")
	}
	// Crossover: for small m NetTube is cheaper, for large m SocialTube wins.
	if m.NetTube(1) >= m.SocialTube(1) {
		t.Error("for m=1 NetTube should be cheaper (Fig. 15)")
	}
	if m.NetTube(10) <= m.SocialTube(10) {
		t.Error("for m=10 SocialTube should be cheaper (Fig. 15)")
	}
}

func TestPrefetchAccuracyMatchesPaper(t *testing.T) {
	if got := PrefetchAccuracy(25, 1); math.Abs(got-0.262) > 0.005 {
		t.Errorf("PrefetchAccuracy(25, 1) = %v, paper ≈0.262", got)
	}
	if got := PrefetchAccuracy(25, 4); math.Abs(got-0.546) > 0.01 {
		t.Errorf("PrefetchAccuracy(25, 4) = %v, paper ≈0.546", got)
	}
	if got := PrefetchAccuracy(0, 3); got != 0 {
		t.Errorf("degenerate accuracy = %v", got)
	}
	if got := PrefetchAccuracy(10, 0); got != 0 {
		t.Errorf("zero prefetch accuracy = %v", got)
	}
}

func TestMemberSet(t *testing.T) {
	m := overlay.NewMembers()
	g := dist.NewRNG(1)
	if m.Random(g, -1) != -1 {
		t.Fatal("empty set should return -1")
	}
	m.Add(1)
	m.Add(2)
	m.Add(2) // duplicate
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if !m.Has(1) || m.Has(3) {
		t.Fatal("membership wrong")
	}
	if got := m.Random(g, 2); got != 1 {
		t.Fatalf("random excluding 2 = %d, want 1", got)
	}
	m.Remove(1)
	if got := m.Random(g, 2); got != -1 {
		t.Fatalf("random with everything excluded = %d, want -1", got)
	}
	m.Remove(42) // no-op
	m.Remove(2)
	if m.Len() != 0 {
		t.Fatal("set not empty after removals")
	}
}
