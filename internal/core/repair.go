package core

import (
	"github.com/socialtube/socialtube/internal/obs"
)

// RepairNeighbors runs active overlay self-repair around a crashed
// node: once the fault layer decides the crash has been detected (a
// plan's DetectDelay after the abrupt Fail), every surviving neighbor
// drops its edge to the dead node and immediately selects replacement
// inner/inter-links instead of waiting for its next probe round. It
// returns the number of replacement links created and the repair
// messages exchanged (one death confirmation per surviving neighbor).
//
// This is the hook internal/exp drives through its Repairer interface;
// it is never called on the request hot path.
func (s *System) RepairNeighbors(dead int) (links, msgs int) {
	st := s.state(dead)
	if st == nil || st.online {
		return 0, 0
	}
	var nbs []int
	if st.home >= 0 {
		nbs = append(nbs, s.innerMesh(st.home).Neighbors(dead)...)
	}
	nbs = append(nbs, s.inter.Neighbors(dead)...)
	if len(nbs) == 0 {
		return 0, 0
	}
	// Drop the dead node's stale edges from both meshes. Fail already
	// saved them in prevInner/prevInter, so a later rejoin can still
	// try to reconnect.
	if st.home >= 0 {
		s.innerMesh(st.home).RemoveNode(dead)
	}
	s.inter.RemoveNode(dead)
	s.ctr.LinksPruned += uint64(len(nbs))
	// A pair linked in both meshes appears twice; each neighbor runs
	// one repair round regardless.
	seen := make(map[int]struct{}, len(nbs))
	for _, nb := range nbs {
		if _, dup := seen[nb]; dup || !s.online(nb) {
			continue
		}
		seen[nb] = struct{}{}
		msgs++
		before := s.Links(nb)
		s.replenish(nb)
		if d := s.Links(nb) - before; d > 0 {
			links += d
		}
	}
	s.ctr.RepairCalls++
	s.ctr.RepairedLinks += uint64(links)
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindRepair,
			Node: dead, Video: -1, Provider: -1, Hops: links, Msgs: msgs})
	}
	return links, msgs
}

// Reseed refreshes a rejoining node's prefetched prefixes: §IV-B's
// channel-facilitated prefetching re-runs against the home channel's
// current top-M list, which the downtime may have left stale. It
// returns the number of prefixes newly stored. This is the hook
// internal/exp drives through its Reseeder interface on rejoin.
func (s *System) Reseed(node int) int {
	st := s.state(node)
	if st == nil || !st.online || st.home < 0 || s.cfg.PrefetchCount <= 0 {
		return 0
	}
	ch := s.tr.Channel(st.home)
	if ch == nil {
		return 0
	}
	n := 0
	for i := 0; i < len(ch.Videos) && i < s.cfg.PrefetchCount; i++ {
		if st.cache.HasPrefix(ch.Videos[i]) {
			continue
		}
		st.cache.AddPrefix(ch.Videos[i])
		n++
	}
	if n > 0 {
		s.ctr.PrefetchReseeds += uint64(n)
	}
	return n
}
