// Package core implements SocialTube, the paper's primary contribution: an
// interest-based per-community hierarchical P2P structure for short-video
// sharing. Subscribers of one channel form a lower-level overlay bounded to
// N_l inner-links per node; all users watching channels of one interest
// category form a higher-level cluster bounded to N_h inter-links. Queries
// flood the channel overlay with a TTL, then the category overlay, then fall
// back to the server, and nodes prefetch the first chunks of the most
// popular videos of the channel they are watching.
package core

import (
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/health"
)

// Config holds SocialTube's protocol parameters. Defaults are the paper's
// Table I settings.
type Config struct {
	// InnerLinks is N_l, the bound on links in the lower-level channel
	// overlay (paper: 5).
	InnerLinks int
	// InterLinks is N_h, the bound on links in the higher-level category
	// cluster (paper: 10).
	InterLinks int
	// TTL bounds query forwarding hops in each overlay level (paper: 2).
	TTL int
	// PrefetchCount is M, the number of top-popularity channel videos
	// whose first chunks a node prefetches (paper: 3; 0 disables
	// prefetching).
	PrefetchCount int
	// CacheVideos bounds each node's cache in full videos (0 reproduces
	// the paper's unbounded session cache).
	CacheVideos int
	// BreakerThreshold / BreakerOpenFor parameterise the per-peer
	// circuit breaker that stops dead neighbours from eating the query
	// message budget (zero fields select health.DefaultConfig). The
	// window is virtual time: the experiment engine's clock drives it.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// Seed drives the protocol's random choices (server peer selection).
	Seed int64
}

// DefaultConfig returns the paper's Table I protocol parameters.
func DefaultConfig() Config {
	return Config{
		InnerLinks:       5,
		InterLinks:       10,
		TTL:              2,
		PrefetchCount:    3,
		BreakerThreshold: health.DefaultConfig().Threshold,
		BreakerOpenFor:   health.DefaultConfig().OpenFor,
		Seed:             1,
	}
}

// Validate reports the first problem with the configuration. InterLinks may
// be zero: that disables the higher-level overlay, the channel-only
// ablation discussed in DESIGN.md.
func (c Config) Validate() error {
	switch {
	case c.InnerLinks <= 0:
		return fmt.Errorf("%w: innerLinks=%d", dist.ErrBadParameter, c.InnerLinks)
	case c.InterLinks < 0:
		return fmt.Errorf("%w: interLinks=%d", dist.ErrBadParameter, c.InterLinks)
	case c.TTL <= 0:
		return fmt.Errorf("%w: ttl=%d", dist.ErrBadParameter, c.TTL)
	case c.PrefetchCount < 0:
		return fmt.Errorf("%w: prefetchCount=%d", dist.ErrBadParameter, c.PrefetchCount)
	case c.CacheVideos < 0:
		return fmt.Errorf("%w: cacheVideos=%d", dist.ErrBadParameter, c.CacheVideos)
	case c.BreakerThreshold < 0 || c.BreakerOpenFor < 0:
		return fmt.Errorf("%w: breaker policy", dist.ErrBadParameter)
	}
	return nil
}
