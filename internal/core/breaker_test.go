package core

import (
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/trace"
)

// TestBreakerStopsPayingForDeadInterNeighbor pins the breaker's message
// economics: a dead inter-neighbour costs one query message per request
// only until the breaker opens, then nothing until the probation window,
// and a rejoin resets the breaker so contact resumes immediately.
func TestBreakerStopsPayingForDeadInterNeighbor(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, func(c *Config) { c.BreakerOpenFor = time.Second })

	// A video nobody caches, so every request walks the inter loop and
	// finds nothing.
	var v trace.VideoID
	var ch trace.ChannelID
	found := false
	for _, c := range tr.Channels {
		if len(c.Videos) > 0 {
			v, ch, found = c.Videos[0], c.ID, true
			break
		}
	}
	if !found {
		t.Fatal("trace has no videos")
	}
	// Two non-subscribers of that channel: the requester and its
	// soon-to-die inter-neighbour.
	a, b := -1, -1
	for _, u := range tr.Users {
		if s.subscribed(int(u.ID), ch) {
			continue
		}
		if a < 0 {
			a = int(u.ID)
		} else {
			b = int(u.ID)
			break
		}
	}
	if b < 0 {
		t.Skip("trace too dense: every user subscribes to the channel")
	}
	s.Join(a)
	s.Join(b)
	if !s.inter.Connect(a, b) {
		t.Fatal("could not build the inter link")
	}
	s.Fail(b) // abrupt: a keeps the dangling link until probed

	th := DefaultConfig().BreakerThreshold
	for i := 0; i < th; i++ {
		if got := s.Request(a, v).Messages; got != 1 {
			t.Fatalf("request %d spent %d messages, want 1 (dead contact)", i, got)
		}
	}
	if got := s.ObsCounters().BreakerOpens; got != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", got)
	}
	// Open breaker: the dead neighbour now costs nothing.
	if got := s.Request(a, v).Messages; got != 0 {
		t.Fatalf("open breaker still spent %d messages", got)
	}
	if s.ObsCounters().BreakerSkips == 0 {
		t.Fatal("BreakerSkips not accounted")
	}
	// Past the window one probation probe is admitted — and fails again.
	s.SetNow(2 * time.Second)
	if got := s.Request(a, v).Messages; got != 1 {
		t.Fatalf("half-open probe spent %d messages, want 1", got)
	}
	if o, p := s.ObsCounters().BreakerOpens, s.ObsCounters().BreakerProbes; o != 2 || p != 1 {
		t.Fatalf("probe accounting: opens=%d probes=%d, want 2 and 1", o, p)
	}
	// Rejoining is positive evidence: the breaker resets, no probation.
	s.Join(b)
	if got := s.Request(a, v).Messages; got != 1 {
		t.Fatalf("post-rejoin request spent %d messages, want 1", got)
	}
	if got := s.brk.State(b); got.String() != "closed" {
		t.Fatalf("breaker for rejoined node is %v, want closed", got)
	}
}
