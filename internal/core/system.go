package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/health"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/overlay"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// System is the SocialTube protocol over a trace. Node ids are user ids
// from the trace. System implements vod.Protocol; it is single-threaded,
// driven by the experiment engine.
//
// Node ids are dense (trace users are 0..len(Users)-1), so all per-node
// state lives in slices indexed by node id rather than maps — the flood
// hot path touches no hash buckets and does no per-query allocation.
type System struct {
	cfg Config
	tr  *trace.Trace
	g   *dist.RNG

	// inner holds one lower-level mesh per channel overlay, each node
	// bounded to N_l inner-links.
	inner map[trace.ChannelID]*overlay.Mesh
	// inter is the higher-level mesh; links connect nodes across channels
	// of the same category, bounded to N_h per node.
	inter *overlay.Mesh
	// members tracks online nodes per channel overlay — the state the
	// server keeps so it can assist joins (much less than NetTube's
	// per-video tracking, as §IV-A notes).
	members map[trace.ChannelID]*overlay.Members
	// nodes is indexed by node id.
	nodes []nodeState
	// byCat indexes channels by primary category for inter-link seeding.
	byCat map[trace.CategoryID][]trace.ChannelID
	// subs is each node's subscription set, indexed by node id.
	subs []map[trace.ChannelID]bool

	// scratch is the reusable flood state; one flood runs at a time, so a
	// single scratch serves every query the system issues.
	scratch overlay.FloodScratch
	// floodMesh is the mesh floodNeighbors reads; Request points it at the
	// overlay being searched so the closure is built once, not per flood.
	floodMesh      *overlay.Mesh
	floodNeighbors func(int) []int
	// matchVideo is the video matchNode tests for, set per request.
	matchVideo trace.VideoID
	matchNode  func(int) bool
	// keepOnline is the probe/repair predicate for Mesh.Prune.
	keepOnline func(int) bool

	// brk is the per-peer circuit breaker, pre-sized to the population so
	// every operation stays allocation-free on the Request hot path. The
	// sim is single-threaded and omniscient, so one shared Set stands in
	// for every node's local view; virtual time (s.now) drives windows.
	brk *health.Set

	// ctr is the dense observability counter block; the simulator
	// increments it single-threaded (plain ++), see obs.Counters.
	ctr obs.Counters
	// tracer receives protocol events; nil (the default) disables tracing
	// at the cost of one branch per emit site.
	tracer obs.Tracer
	// now is the experiment engine's virtual clock (SetNow), stamping
	// trace events.
	now time.Duration

	// spanBase is OR-ed into every span id this system assigns
	// (SetSpanBase gives each sharded cell a disjoint id range);
	// spanSeq counts requests; span is the id of the request currently
	// being served, stamped on every event in its causal chain.
	spanBase uint64
	spanSeq  uint64
	span     uint64
}

var _ vod.Protocol = (*System)(nil)

// nodeState is one peer's protocol state. The cache survives offline
// periods ("nodes store their cached videos for their next session").
type nodeState struct {
	user   *trace.User
	online bool
	cache  *vod.Cache
	// home is the channel overlay the node currently belongs to (the
	// channel it is watching); -1 when unattached.
	home trace.ChannelID
	// prevInner/prevInter remember neighbours across sessions so a
	// returning node can reconnect without the server.
	prevInner []int
	prevInter []int
}

// New builds a SocialTube system over the trace.
func New(cfg Config, tr *trace.Trace) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("socialtube config: %w", err)
	}
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: socialtube needs a non-empty trace", dist.ErrBadParameter)
	}
	s := &System{
		cfg:     cfg,
		tr:      tr,
		g:       dist.NewRNG(cfg.Seed),
		inner:   make(map[trace.ChannelID]*overlay.Mesh),
		inter:   overlay.NewMesh(cfg.InterLinks),
		members: make(map[trace.ChannelID]*overlay.Members),
		nodes:   make([]nodeState, len(tr.Users)),
		byCat:   make(map[trace.CategoryID][]trace.ChannelID),
		subs:    make([]map[trace.ChannelID]bool, len(tr.Users)),
		scratch: *overlay.NewFloodScratch(len(tr.Users)),
		brk: health.NewSet(health.Config{
			Threshold: cfg.BreakerThreshold,
			OpenFor:   cfg.BreakerOpenFor,
		}, len(tr.Users)),
	}
	for i := range tr.Channels {
		ch := &tr.Channels[i]
		s.byCat[ch.Primary] = append(s.byCat[ch.Primary], ch.ID)
	}
	for i := range tr.Users {
		u := &tr.Users[i]
		node := int(u.ID)
		s.nodes[node] = nodeState{
			user:  u,
			cache: vod.NewCache(cfg.CacheVideos),
			home:  -1,
		}
		set := make(map[trace.ChannelID]bool, len(u.Subscriptions))
		for _, ch := range u.Subscriptions {
			set[ch] = true
		}
		s.subs[node] = set
	}
	// The flood and probe closures are built once and steered through
	// System fields, so the per-request hot path allocates nothing.
	s.floodNeighbors = func(n int) []int {
		if !s.online(n) {
			return nil // a failed node cannot forward
		}
		return s.floodMesh.NeighborsView(n)
	}
	s.matchNode = func(n int) bool {
		st := s.state(n)
		return st != nil && st.online && st.cache.HasFull(s.matchVideo)
	}
	s.keepOnline = s.online
	return s, nil
}

// Name implements vod.Protocol.
func (s *System) Name() string { return "SocialTube" }

// ObsCounters implements obs.Instrumented.
func (s *System) ObsCounters() *obs.Counters { return &s.ctr }

// SetTracer implements obs.Traceable; a nil tracer disables tracing.
func (s *System) SetTracer(t obs.Tracer) { s.tracer = t }

// SetNow implements the experiment engine's clock hook (exp.Timed) so trace
// events carry virtual timestamps.
func (s *System) SetNow(now time.Duration) { s.now = now }

// SetSpanBase namespaces the span ids this system assigns: every id is
// base|seq. The sharded runner gives each community cell a disjoint
// base so spans stay unique across one merged trace; single-engine runs
// keep the zero base. Span ids depend only on request order, so they
// are deterministic for a given seed.
func (s *System) SetSpanBase(base uint64) { s.spanBase = base }

// nextSpan assigns the span id for a new request's causal chain.
func (s *System) nextSpan() uint64 {
	s.spanSeq++
	return s.spanBase | s.spanSeq
}

func (s *System) state(node int) *nodeState {
	if node < 0 || node >= len(s.nodes) {
		return nil
	}
	return &s.nodes[node]
}

func (s *System) innerMesh(ch trace.ChannelID) *overlay.Mesh {
	m, ok := s.inner[ch]
	if !ok {
		m = overlay.NewMesh(s.cfg.InnerLinks)
		s.inner[ch] = m
	}
	return m
}

func (s *System) memberSetOf(ch trace.ChannelID) *overlay.Members {
	m, ok := s.members[ch]
	if !ok {
		m = overlay.NewMembers()
		s.members[ch] = m
	}
	return m
}

// online reports whether a node is currently in the system.
func (s *System) online(node int) bool {
	return node >= 0 && node < len(s.nodes) && s.nodes[node].online
}

// Join implements vod.Protocol: the node comes online and first tries to
// reconnect to its previous neighbours; if none remain, it stays unattached
// until its first request, which contacts the server as an initial join.
func (s *System) Join(node int) {
	st := s.state(node)
	if st == nil || st.online {
		return
	}
	st.online = true
	// Re-registration is positive evidence of liveness: clear every
	// observer's breaker for this node, skipping probation.
	s.brk.Reset(node)
	s.ctr.OverlayJoins++
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindJoin, Node: node, Video: -1, Provider: -1})
	}
	if st.home >= 0 {
		// Drop stale mesh edges left by an earlier abrupt failure.
		s.dropDeadLinks(node)
		reconnected := false
		mesh := s.innerMesh(st.home)
		for _, nb := range st.prevInner {
			if s.online(nb) && s.sameHome(nb, st.home) {
				if mesh.Connected(node, nb) || mesh.Connect(node, nb) {
					reconnected = true
				}
			}
		}
		for _, nb := range st.prevInter {
			if s.online(nb) {
				if s.inter.Connected(node, nb) || s.inter.Connect(node, nb) {
					reconnected = true
				}
			}
		}
		if reconnected {
			s.memberSetOf(st.home).Add(node)
			return
		}
		// No previous neighbour survived: rejoin from scratch via the
		// server on the next request.
		s.detach(node)
	}
}

func (s *System) sameHome(node int, ch trace.ChannelID) bool {
	st := s.state(node)
	return st != nil && st.home == ch
}

// Leave implements vod.Protocol: a graceful departure notifies neighbours,
// which update their links immediately.
func (s *System) Leave(node int) {
	st := s.state(node)
	if st == nil || !st.online {
		return
	}
	s.rememberNeighbors(node)
	if st.home >= 0 {
		s.innerMesh(st.home).RemoveNode(node)
		s.memberSetOf(st.home).Remove(node)
	}
	s.inter.RemoveNode(node)
	st.online = false
	s.ctr.OverlayLeaves++
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindLeave, Node: node, Video: -1, Provider: -1})
	}
}

// Fail implements vod.Protocol: an abrupt departure. The node disappears
// from the member sets (it no longer answers), but neighbours keep their
// dead links until a maintenance probe notices.
func (s *System) Fail(node int) {
	st := s.state(node)
	if st == nil || !st.online {
		return
	}
	s.rememberNeighbors(node)
	if st.home >= 0 {
		s.memberSetOf(st.home).Remove(node)
	}
	st.online = false
	s.ctr.OverlayFails++
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindFail, Node: node, Video: -1, Provider: -1})
	}
}

func (s *System) rememberNeighbors(node int) {
	st := s.state(node)
	st.prevInner = nil
	if st.home >= 0 {
		st.prevInner = s.innerMesh(st.home).Neighbors(node)
	}
	st.prevInter = s.inter.Neighbors(node)
}

// detach removes a node from its overlays entirely (used when switching
// channels or when a rejoin falls back to the server path).
func (s *System) detach(node int) {
	st := s.state(node)
	if st.home >= 0 {
		s.innerMesh(st.home).RemoveNode(node)
		s.memberSetOf(st.home).Remove(node)
	}
	st.home = -1
}

// dropDeadLinks removes the node's mesh edges to offline neighbours — what
// a probe round or a fresh session's reconnection attempt discovers.
func (s *System) dropDeadLinks(node int) {
	st := s.state(node)
	before := s.Links(node)
	if st.home >= 0 {
		s.innerMesh(st.home).Prune(node, s.keepOnline)
	}
	s.inter.Prune(node, s.keepOnline)
	s.ctr.LinksPruned += uint64(before - s.Links(node))
}

// Probe implements the periodic structure maintenance of §IV-A: the node
// checks its neighbours, drops the dead ones and replenishes links. It
// returns the number of probe messages sent.
func (s *System) Probe(node int) int {
	st := s.state(node)
	if st == nil || !st.online {
		return 0
	}
	msgs := 0
	before := s.Links(node)
	if st.home >= 0 {
		msgs += s.innerMesh(st.home).Prune(node, s.keepOnline)
	}
	msgs += s.inter.Prune(node, s.keepOnline)
	s.ctr.LinksPruned += uint64(before - s.Links(node))
	s.replenish(node)
	s.ctr.ProbeMsgs += uint64(msgs)
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindProbe, Node: node, Video: -1, Provider: -1, Msgs: msgs})
	}
	return msgs
}

// replenish tops up inner links from the home channel's online members and
// inter links from sibling channels of the home category.
func (s *System) replenish(node int) {
	st := s.state(node)
	if st.home < 0 {
		return
	}
	mesh := s.innerMesh(st.home)
	members := s.memberSetOf(st.home)
	for attempts := 0; !mesh.Full(node) && attempts < 2*s.cfg.InnerLinks; attempts++ {
		cand := members.Random(s.g, node)
		if cand < 0 {
			break
		}
		mesh.Connect(node, cand)
	}
	s.seedInterLinks(node, s.channelCategory(st.home))
}

// Links implements vod.Protocol: the node's maintenance overhead is the
// total number of overlay links it holds (inner + inter).
func (s *System) Links(node int) int {
	st := s.state(node)
	if st == nil {
		return 0
	}
	n := s.inter.Degree(node)
	if st.home >= 0 {
		n += s.innerMesh(st.home).Degree(node)
	}
	return n
}

// InnerLinks returns the node's lower-level link count (tests/ablations).
func (s *System) InnerLinks(node int) int {
	st := s.state(node)
	if st == nil || st.home < 0 {
		return 0
	}
	return s.innerMesh(st.home).Degree(node)
}

// InterLinks returns the node's higher-level link count (tests/ablations).
func (s *System) InterLinks(node int) int { return s.inter.Degree(node) }

// Home returns the channel overlay the node currently belongs to (-1 when
// unattached).
func (s *System) Home(node int) trace.ChannelID {
	st := s.state(node)
	if st == nil {
		return -1
	}
	return st.home
}

// Cache exposes the node's cache (read-mostly; used by tests and the
// experiment engine for accounting).
func (s *System) Cache(node int) *vod.Cache {
	st := s.state(node)
	if st == nil {
		return nil
	}
	return st.cache
}

func (s *System) channelCategory(ch trace.ChannelID) trace.CategoryID {
	c := s.tr.Channel(ch)
	if c == nil {
		return -1
	}
	return c.Primary
}

// Subscribe adds a channel subscription at runtime. The paper requires
// users to "report their changes of subscribed channels" so the server can
// assist joins accurately; the server-side view updates immediately.
func (s *System) Subscribe(node int, ch trace.ChannelID) bool {
	st := s.state(node)
	if st == nil || s.tr.Channel(ch) == nil {
		return false
	}
	set := s.subs[node]
	if set == nil {
		set = make(map[trace.ChannelID]bool, 1)
		s.subs[node] = set
	}
	if set[ch] {
		return false
	}
	set[ch] = true
	return true
}

// Unsubscribe removes a channel subscription at runtime. A node
// unsubscribed from its home channel leaves that overlay: it no longer
// tends to watch the channel's videos, so keeping inner-links there would
// waste the link budget.
func (s *System) Unsubscribe(node int, ch trace.ChannelID) bool {
	st := s.state(node)
	if st == nil || !s.subs[node][ch] {
		return false
	}
	delete(s.subs[node], ch)
	if st.home == ch {
		s.detach(node)
	}
	return true
}

// Subscriptions returns the node's current subscription set in ascending
// order (a copy).
func (s *System) Subscriptions(node int) []trace.ChannelID {
	if node < 0 || node >= len(s.subs) {
		return nil
	}
	set := s.subs[node]
	out := make([]trace.ChannelID, 0, len(set))
	for ch := range set {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
