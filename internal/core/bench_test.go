package core

import (
	"testing"

	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
)

// benchSystem builds a populated SocialTube system: everyone online and
// attached, with enough watched videos that floods traverse real overlays.
func benchSystem(tb testing.TB) (*System, *trace.Trace) {
	tb.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 1
	cfg.Users = 1000
	cfg.Channels = 120
	tr, err := trace.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := New(DefaultConfig(), tr)
	if err != nil {
		tb.Fatal(err)
	}
	for _, u := range tr.Users {
		sys.Join(int(u.ID))
	}
	// Warm the overlays and caches: each user requests and finishes one
	// video from its first subscribed channel.
	for _, u := range tr.Users {
		if len(u.Subscriptions) == 0 {
			continue
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			continue
		}
		v := ch.Videos[int(u.ID)%len(ch.Videos)]
		sys.Request(int(u.ID), v)
		sys.Finish(int(u.ID), v)
	}
	return sys, tr
}

// BenchmarkRequest measures Algorithm 1 end to end — the flood-dominated
// hot path every simulated video request takes.
func BenchmarkRequest(b *testing.B) {
	sys, tr := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := tr.Users[i%len(tr.Users)]
		node := int(u.ID)
		if len(u.Subscriptions) == 0 {
			continue
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			continue
		}
		// A video the node has not cached: rotate through the channel.
		v := ch.Videos[(i+1)%len(ch.Videos)]
		sys.Request(node, v)
	}
}

// BenchmarkRequestTraced is BenchmarkRequest with a no-op tracer installed:
// it prices the tracing seam itself (one nil-check per emit site plus the
// Event construction and interface call) and guards the hot path against a
// tracer-induced allocation creeping in.
func BenchmarkRequestTraced(b *testing.B) {
	sys, tr := benchSystem(b)
	sys.SetTracer(obs.Nop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := tr.Users[i%len(tr.Users)]
		node := int(u.ID)
		if len(u.Subscriptions) == 0 {
			continue
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			continue
		}
		v := ch.Videos[(i+1)%len(ch.Videos)]
		sys.Request(node, v)
	}
}

// BenchmarkRequestRingTraced prices live tracing into an in-memory ring
// buffer — the upper bound users pay for `-trace` style introspection
// without a file sink.
func BenchmarkRequestRingTraced(b *testing.B) {
	sys, tr := benchSystem(b)
	sys.SetTracer(obs.NewRing(4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := tr.Users[i%len(tr.Users)]
		node := int(u.ID)
		if len(u.Subscriptions) == 0 {
			continue
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			continue
		}
		v := ch.Videos[(i+1)%len(ch.Videos)]
		sys.Request(node, v)
	}
}

// BenchmarkProbe measures one maintenance round for an attached node.
func BenchmarkProbe(b *testing.B) {
	sys, tr := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Probe(i % len(tr.Users))
	}
}
