package core

import (
	"testing"

	"github.com/socialtube/socialtube/internal/trace"
)

// failCluster brings a node and enough channel-mates online that the
// node holds inner links, then crashes it abruptly. It returns the
// system, the crashed node and the node's link count at crash time.
func failCluster(t *testing.T, tr *trace.Trace) (*System, int, int) {
	t.Helper()
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	video := tr.Video(v)
	// Bring every subscriber of the video's channel online and attach
	// them so the overlay has real inner meshes.
	var members []int
	for _, u := range tr.Users {
		for _, cid := range u.Subscriptions {
			if cid == video.Channel {
				members = append(members, int(u.ID))
			}
		}
	}
	if len(members) < 3 {
		t.Skip("channel too small for a repair scenario")
	}
	for _, m := range members {
		s.Join(m)
		s.Request(m, v)
	}
	links := s.Links(node)
	if links == 0 {
		t.Fatalf("node %d built no links", node)
	}
	s.Fail(node)
	return s, node, links
}

func TestRepairNeighborsReplacesLinks(t *testing.T) {
	tr := coreTrace(t)
	s, node, _ := failCluster(t, tr)

	// Abrupt failure leaves the dead node's edges dangling.
	neighbors := 0
	if home := s.Home(node); home >= 0 {
		neighbors += s.innerMesh(home).Degree(node)
	}
	neighbors += s.inter.Degree(node)
	if neighbors == 0 {
		t.Fatal("Fail dropped edges eagerly; repair has nothing to do")
	}

	links, msgs := s.RepairNeighbors(node)
	if msgs == 0 {
		t.Fatal("repair contacted no neighbors")
	}
	if got := s.innerMesh(s.Home(node)).Degree(node) + s.inter.Degree(node); got != 0 {
		t.Fatalf("repair left %d stale edges to the dead node", got)
	}
	ctr := s.ObsCounters()
	if ctr.RepairCalls != 1 {
		t.Fatalf("RepairCalls = %d, want 1", ctr.RepairCalls)
	}
	if uint64(links) != ctr.RepairedLinks {
		t.Fatalf("returned links %d != RepairedLinks counter %d", links, ctr.RepairedLinks)
	}
	// Repairing an already-repaired (or never-failed) node is a no-op.
	if l, m := s.RepairNeighbors(node); l != 0 || m != 0 {
		t.Fatalf("second repair did work: links=%d msgs=%d", l, m)
	}
	online, _ := subscribedVideo(t, tr)
	if online != node {
		if l, m := s.RepairNeighbors(online); l != 0 || m != 0 {
			t.Fatalf("repairing an online node did work: links=%d msgs=%d", l, m)
		}
	}
}

func TestReseedRestoresPrefixes(t *testing.T) {
	tr := coreTrace(t)
	s, node, _ := failCluster(t, tr)
	s.Join(node)
	home := s.Home(node)
	if home < 0 {
		t.Fatal("rejoined node has no home channel")
	}
	n := s.Reseed(node)
	total := n
	// The prefix list is idempotent: a second reseed adds nothing.
	if again := s.Reseed(node); again != 0 {
		t.Fatalf("second reseed stored %d prefixes", again)
	}
	ch := tr.Channel(home)
	want := s.cfg.PrefetchCount
	if len(ch.Videos) < want {
		want = len(ch.Videos)
	}
	have := 0
	for i := 0; i < want; i++ {
		if s.Cache(node).HasPrefix(ch.Videos[i]) {
			have++
		}
	}
	if have != want {
		t.Fatalf("after reseed %d of top-%d prefixes local", have, want)
	}
	if got := s.ObsCounters().PrefetchReseeds; got != uint64(total) {
		t.Fatalf("PrefetchReseeds = %d, want %d", got, total)
	}
	// Offline nodes cannot reseed.
	s.Fail(node)
	if got := s.Reseed(node); got != 0 {
		t.Fatalf("offline reseed stored %d prefixes", got)
	}
}
