package core

import (
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
)

// RemoteLookup answers a cross-community lookup arriving at this
// community's server: it runs the server-assisted phase of Algorithm 1 —
// pick a member of the video's channel overlay and flood it with the TTL —
// on behalf of a requester that lives in another community partition. The
// requester is not a node here, so no requester-side links are built; the
// provider id it returns is local to this community and only meaningful
// for accounting. msgs counts the query messages spent inside this
// community (the forwarding layer adds its own inter-community messages).
//
// span is the requester's span id (assigned by its home cell's Request);
// the query event this side emits carries it, so a merged trace links the
// hop across the shard mailbox back to the originating request.
func (s *System) RemoteLookup(span uint64, v trace.VideoID) (provider, hops, msgs int, ok bool) {
	video := s.tr.Video(v)
	if video == nil {
		return 0, 0, 0, false
	}
	s.matchVideo = v
	s.ctr.LookupsServer++
	provider, hops, msgs, ok = s.searchChannelOverlay(-1, video.Channel)
	s.ctr.FloodMsgsServer += uint64(msgs)
	if ok {
		s.ctr.HitsServerAssist++
	} else if msgs > 0 {
		s.ctr.TTLExhausted++
	}
	if s.tracer != nil {
		p := -1
		if ok {
			p = provider
		}
		s.tracer.Emit(obs.Event{T: int64(s.now), Proto: "SocialTube", Kind: obs.KindQuery, Node: -1,
			Video: int64(v), Provider: p, OK: ok, Hops: hops, Msgs: msgs, Span: span})
	}
	return provider, hops, msgs, ok
}
