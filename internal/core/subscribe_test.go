package core

import (
	"testing"

	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// unsubscribedChannel finds a channel with videos the node does not
// subscribe to.
func unsubscribedChannel(t *testing.T, tr *trace.Trace, node int) *trace.Channel {
	t.Helper()
	subbed := make(map[trace.ChannelID]bool)
	for _, ch := range tr.Users[node].Subscriptions {
		subbed[ch] = true
	}
	for i := range tr.Channels {
		ch := &tr.Channels[i]
		if !subbed[ch.ID] && len(ch.Videos) > 0 {
			return ch
		}
	}
	t.Skip("node subscribes to every channel")
	return nil
}

func TestSubscribeAddsChannel(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node := int(tr.Users[0].ID)
	ch := unsubscribedChannel(t, tr, node)
	before := len(s.Subscriptions(node))
	if !s.Subscribe(node, ch.ID) {
		t.Fatal("subscribe failed")
	}
	if s.Subscribe(node, ch.ID) {
		t.Fatal("duplicate subscribe should report false")
	}
	if got := len(s.Subscriptions(node)); got != before+1 {
		t.Fatalf("subscriptions = %d, want %d", got, before+1)
	}
}

func TestSubscribeRejectsUnknown(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	if s.Subscribe(1<<30, 0) {
		t.Fatal("unknown node subscribed")
	}
	if s.Subscribe(0, trace.ChannelID(1<<30)) {
		t.Fatal("unknown channel subscribed")
	}
}

// TestSubscribeChangesJoinBehavior: after subscribing, a request for the
// channel's video makes the node a member of that channel overlay (home
// switches), which it would not as a non-subscriber.
func TestSubscribeChangesJoinBehavior(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node := int(tr.Users[0].ID)
	ch := unsubscribedChannel(t, tr, node)
	v := ch.Videos[0]

	s.Join(node)
	s.Request(node, v)
	if s.Home(node) == ch.ID {
		t.Fatal("non-subscriber joined the channel overlay")
	}
	s.Subscribe(node, ch.ID)
	s.Request(node, v)
	if s.Home(node) != ch.ID {
		t.Fatalf("subscriber's home = %d, want %d", s.Home(node), ch.ID)
	}
}

func TestUnsubscribeDetachesHomeOverlay(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node, v := subscribedVideo(t, tr)
	ch := tr.Video(v).Channel
	s.Join(node)
	s.Request(node, v)
	if s.Home(node) != ch {
		t.Skip("node did not join its subscribed channel")
	}
	if !s.Unsubscribe(node, ch) {
		t.Fatal("unsubscribe failed")
	}
	if s.Home(node) == ch {
		t.Fatal("unsubscribed node still in the channel overlay")
	}
	if s.InnerLinks(node) != 0 {
		t.Fatal("unsubscribed node keeps inner links")
	}
	if s.Unsubscribe(node, ch) {
		t.Fatal("double unsubscribe should report false")
	}
}

func TestUnsubscribeUnknown(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	if s.Unsubscribe(1<<30, 0) {
		t.Fatal("unknown node unsubscribed")
	}
	node := int(tr.Users[0].ID)
	ch := unsubscribedChannel(t, tr, node)
	if s.Unsubscribe(node, ch.ID) {
		t.Fatal("unsubscribing a non-subscription should report false")
	}
}

// TestSubscriptionsSnapshotIsCopy guards against aliasing internal state.
func TestSubscriptionsSnapshotIsCopy(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	node := int(tr.Users[0].ID)
	subs := s.Subscriptions(node)
	if len(subs) == 0 {
		t.Skip("user has no subscriptions")
	}
	subs[0] = trace.ChannelID(1 << 20)
	for _, ch := range s.Subscriptions(node) {
		if ch == trace.ChannelID(1<<20) {
			t.Fatal("mutating the snapshot affected internal state")
		}
	}
}

// TestRequestAfterCategorySwitchDropsInterLinks: moving to a channel in a
// different category rebuilds the inter-link set for the new category.
func TestRequestAfterCategorySwitchDropsInterLinks(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	// Find a user subscribed to channels in two different categories.
	var node int = -1
	var chA, chB *trace.Channel
	for _, u := range tr.Users {
		var cats = map[trace.CategoryID]*trace.Channel{}
		for _, cid := range u.Subscriptions {
			ch := tr.Channel(cid)
			if len(ch.Videos) == 0 {
				continue
			}
			cats[ch.Primary] = ch
		}
		if len(cats) >= 2 {
			node = int(u.ID)
			for _, ch := range cats {
				if chA == nil {
					chA = ch
				} else if chB == nil && ch.Primary != chA.Primary {
					chB = ch
				}
			}
			break
		}
	}
	if node < 0 || chB == nil {
		t.Skip("no user subscribed across categories")
	}
	// Populate both categories with other online nodes so links can form.
	for i := 0; i < 50 && i < len(tr.Users); i++ {
		s.Join(int(tr.Users[i].ID))
	}
	s.Join(node)
	s.Request(node, chA.Videos[0])
	s.Request(node, chB.Videos[0])
	if s.Home(node) != chB.ID {
		t.Fatalf("home = %d, want %d after switch", s.Home(node), chB.ID)
	}
	// All inter links must now point into chB's category.
	for _, nb := range s.inter.Neighbors(node) {
		nbHome := s.Home(nb)
		if nbHome < 0 {
			continue
		}
		if got := tr.Channel(nbHome).Primary; got != chB.Primary {
			t.Fatalf("inter neighbour %d is in category %d, want %d", nb, got, chB.Primary)
		}
	}
}

// TestNonSubscriberServedViaCategory checks the §IV-A promise that
// SocialTube "still helps [non-subscribers] locate peer video providers by
// using the high-level interest-based overlay".
func TestNonSubscriberServedViaCategory(t *testing.T) {
	tr := coreTrace(t)
	s := newSystem(t, tr, nil)
	// Seed: subscribers of some channel cache its top video.
	var ch *trace.Channel
	for i := range tr.Channels {
		if len(tr.Channels[i].Subscribers) >= 3 && len(tr.Channels[i].Videos) > 0 {
			ch = &tr.Channels[i]
			break
		}
	}
	if ch == nil {
		t.Skip("no channel with three subscribers")
	}
	v := ch.Videos[0]
	for _, uid := range ch.Subscribers {
		s.Join(int(uid))
		s.Request(int(uid), v)
		s.Finish(int(uid), v)
	}
	// A non-subscriber asks for the same video.
	var outsider int = -1
	for _, u := range tr.Users {
		subbed := false
		for _, cid := range u.Subscriptions {
			if cid == ch.ID {
				subbed = true
				break
			}
		}
		if !subbed {
			outsider = int(u.ID)
			break
		}
	}
	if outsider < 0 {
		t.Skip("everyone subscribes to the channel")
	}
	s.Join(outsider)
	res := s.Request(outsider, v)
	if res.Source != vod.SourcePeer {
		t.Fatalf("non-subscriber source = %v, want peer via category overlay", res.Source)
	}
	if s.Home(outsider) == ch.ID {
		t.Fatal("non-subscriber must not join the channel overlay")
	}
}
