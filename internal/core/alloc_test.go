// Alloc assertions are meaningless under the race detector (its
// instrumentation allocates), so this file is build-tagged out of -race runs.

//go:build !race

package core

import (
	"testing"

	"github.com/socialtube/socialtube/internal/obs"
)

// TestRequestStaysAllocFree pins the zero-overhead contract of the
// instrumentation layer: the request hot path allocates nothing per
// operation, with tracing disabled AND with the no-op tracer installed.
// (The threshold is <1 alloc on average: cache-map growth inside the
// protocol itself amortizes to ~0 but is not exactly 0 on every run.)
// TestRequestAllocFreeAfterRepair pins that the fault layer costs the
// request hot path nothing when no plan is active: even after a churn
// episode (abrupt failures, active repair, rejoin + reseed), Request
// stays below 1 alloc/op on average.
func TestRequestAllocFreeAfterRepair(t *testing.T) {
	sys, tr := benchSystem(t)
	// A churn episode over a slice of the population.
	for id := 0; id < 50 && id < len(tr.Users); id++ {
		sys.Fail(id)
		sys.RepairNeighbors(id)
	}
	for id := 0; id < 50 && id < len(tr.Users); id++ {
		sys.Join(id)
		sys.Reseed(id)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		i++
		u := tr.Users[i%len(tr.Users)]
		if len(u.Subscriptions) == 0 {
			return
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			return
		}
		sys.Request(int(u.ID), ch.Videos[(i+1)%len(ch.Videos)])
	})
	if avg >= 1 {
		t.Fatalf("request path allocates %.2f allocs/op after a repair episode, want <1", avg)
	}
}

// TestRequestAllocFreeWithOpenBreakers pins that the circuit-breaker
// check costs the hot path nothing in its worst state: a population with
// permanently dead nodes, every surviving requester's breakers driven
// open by a warm-up pass, and no rejoin — so requests keep taking the
// breaker's skip path rather than the RPC path.
func TestRequestAllocFreeWithOpenBreakers(t *testing.T) {
	sys, tr := benchSystem(t)
	for id := 0; id < 50 && id < len(tr.Users); id++ {
		sys.Fail(id) // abrupt: neighbours keep dangling links
	}
	drive := func(i int) {
		u := tr.Users[i%len(tr.Users)]
		if len(u.Subscriptions) == 0 {
			return
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			return
		}
		sys.Request(int(u.ID), ch.Videos[(i+1)%len(ch.Videos)])
	}
	// Warm-up: enough strikes against every dead contact to open the
	// breakers (and grow every breaker-set map to its final size).
	for i := 0; i < 4000; i++ {
		drive(i)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		i++
		drive(i)
	})
	if avg >= 1 {
		t.Fatalf("request path allocates %.2f allocs/op with open breakers, want <1", avg)
	}
}

func TestRequestStaysAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		tracer obs.Tracer
	}{
		{"untraced", nil},
		{"nop-tracer", obs.Nop},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, tr := benchSystem(t)
			if tc.tracer != nil {
				sys.SetTracer(tc.tracer)
			}
			i := 0
			avg := testing.AllocsPerRun(2000, func() {
				i++
				u := tr.Users[i%len(tr.Users)]
				if len(u.Subscriptions) == 0 {
					return
				}
				ch := tr.Channel(u.Subscriptions[0])
				if ch == nil || len(ch.Videos) == 0 {
					return
				}
				sys.Request(int(u.ID), ch.Videos[(i+1)%len(ch.Videos)])
			})
			if avg >= 1 {
				t.Fatalf("request path allocates %.2f allocs/op with %s, want <1", avg, tc.name)
			}
		})
	}
}
