// Alloc assertions are meaningless under the race detector (its
// instrumentation allocates), so this file is build-tagged out of -race runs.

//go:build !race

package core

import (
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/obs"
)

// TestRequestStaysAllocFree pins the zero-overhead contract of the
// instrumentation layer: the request hot path allocates nothing per
// operation, with tracing disabled AND with the no-op tracer installed.
// (The threshold is <1 alloc on average: cache-map growth inside the
// protocol itself amortizes to ~0 but is not exactly 0 on every run.)
// TestRequestAllocFreeAfterRepair pins that the fault layer costs the
// request hot path nothing when no plan is active: even after a churn
// episode (abrupt failures, active repair, rejoin + reseed), Request
// stays below 1 alloc/op on average.
func TestRequestAllocFreeAfterRepair(t *testing.T) {
	sys, tr := benchSystem(t)
	// A churn episode over a slice of the population.
	for id := 0; id < 50 && id < len(tr.Users); id++ {
		sys.Fail(id)
		sys.RepairNeighbors(id)
	}
	for id := 0; id < 50 && id < len(tr.Users); id++ {
		sys.Join(id)
		sys.Reseed(id)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		i++
		u := tr.Users[i%len(tr.Users)]
		if len(u.Subscriptions) == 0 {
			return
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			return
		}
		sys.Request(int(u.ID), ch.Videos[(i+1)%len(ch.Videos)])
	})
	if avg >= 1 {
		t.Fatalf("request path allocates %.2f allocs/op after a repair episode, want <1", avg)
	}
}

// TestRequestAllocFreeWithOpenBreakers pins that the circuit-breaker
// check costs the hot path nothing in its worst state: a population with
// permanently dead nodes, every surviving requester's breakers driven
// open by a warm-up pass, and no rejoin — so requests keep taking the
// breaker's skip path rather than the RPC path.
func TestRequestAllocFreeWithOpenBreakers(t *testing.T) {
	sys, tr := benchSystem(t)
	for id := 0; id < 50 && id < len(tr.Users); id++ {
		sys.Fail(id) // abrupt: neighbours keep dangling links
	}
	drive := func(i int) {
		u := tr.Users[i%len(tr.Users)]
		if len(u.Subscriptions) == 0 {
			return
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			return
		}
		sys.Request(int(u.ID), ch.Videos[(i+1)%len(ch.Videos)])
	}
	// Warm-up: enough strikes against every dead contact to open the
	// breakers (and grow every breaker-set map to its final size).
	for i := 0; i < 4000; i++ {
		drive(i)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		i++
		drive(i)
	})
	if avg >= 1 {
		t.Fatalf("request path allocates %.2f allocs/op with open breakers, want <1", avg)
	}
}

// TestRequestAllocFreeWithTelemetry pins the full instrumented hot path:
// every Request is accompanied by the bounded histogram and the windowed
// timeline updates the experiment recorder performs per request (counter
// Add plus startup-delay Observe into an already-touched window), and the
// combination stays below 1 alloc/op. Hist is an inline bucket array and
// Series.Add/Observe are index-plus-update once a window exists; only the
// first observation in a fresh window allocates, which the warm-up below
// pays for up front exactly as a long-running simulation would.
func TestRequestAllocFreeWithTelemetry(t *testing.T) {
	sys, tr := benchSystem(t)
	var hist obs.Hist
	tl := obs.NewTimeline(10 * time.Minute)
	requests := tl.Counter("requests")
	delays := tl.Hist("startupDelayMs")
	// Warm the windows the loop will touch so slice growth and the lazy
	// per-window Hist allocation happen before the measured region.
	const horizon = time.Hour
	for at := time.Duration(0); at <= horizon; at += 10 * time.Minute {
		requests.Add(at, 0)
		delays.Observe(at, 0)
	}
	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		i++
		u := tr.Users[i%len(tr.Users)]
		if len(u.Subscriptions) == 0 {
			return
		}
		ch := tr.Channel(u.Subscriptions[0])
		if ch == nil || len(ch.Videos) == 0 {
			return
		}
		res := sys.Request(int(u.ID), ch.Videos[(i+1)%len(ch.Videos)])
		at := time.Duration(i%60) * time.Minute
		requests.Add(at, 1)
		// The exp layer derives the startup delay from hop count and
		// network timing; hops stands in for it here — what matters is
		// that a float lands in both histograms every iteration.
		hist.Add(float64(res.Hops))
		delays.Observe(at, float64(res.Hops))
	})
	if avg >= 1 {
		t.Fatalf("instrumented request path allocates %.2f allocs/op, want <1", avg)
	}
	if hist.Len() == 0 {
		t.Fatal("histogram recorded nothing")
	}
}

func TestRequestStaysAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		tracer obs.Tracer
	}{
		{"untraced", nil},
		{"nop-tracer", obs.Nop},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, tr := benchSystem(t)
			if tc.tracer != nil {
				sys.SetTracer(tc.tracer)
			}
			i := 0
			avg := testing.AllocsPerRun(2000, func() {
				i++
				u := tr.Users[i%len(tr.Users)]
				if len(u.Subscriptions) == 0 {
					return
				}
				ch := tr.Channel(u.Subscriptions[0])
				if ch == nil || len(ch.Videos) == 0 {
					return
				}
				sys.Request(int(u.ID), ch.Videos[(i+1)%len(ch.Videos)])
			})
			if avg >= 1 {
				t.Fatalf("request path allocates %.2f allocs/op with %s, want <1", avg, tc.name)
			}
		})
	}
}
