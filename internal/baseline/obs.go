package baseline

import (
	"time"

	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// accountRequest applies the per-request accounting shared by both
// baselines (and mirrored by SocialTube): the request-source counters, the
// hop histogram of peer hits, the prefetch hit/miss split, and the serve
// trace event.
func accountRequest(ctr *obs.Counters, tracer obs.Tracer, proto string, now time.Duration,
	node int, v trace.VideoID, res vod.RequestResult) {
	switch res.Source {
	case vod.SourceCache:
		ctr.RequestsCache++
	case vod.SourcePeer:
		ctr.RequestsPeer++
		ctr.AddHops(res.Hops)
	default:
		ctr.RequestsServer++
	}
	if res.Source != vod.SourceCache {
		if res.PrefixCached {
			ctr.PrefetchHits++
		} else {
			ctr.PrefetchMisses++
		}
	}
	if tracer != nil {
		provider := -1
		if res.Source == vod.SourcePeer {
			provider = res.Provider
		}
		tracer.Emit(obs.Event{T: int64(now), Proto: proto, Kind: obs.KindServe, Node: node,
			Video: int64(v), Provider: provider, Source: res.Source.String(), Hops: res.Hops, Msgs: res.Messages,
			Span: res.Span})
	}
}

// churnEvent emits a join/leave/fail event when a tracer is installed.
func churnEvent(tracer obs.Tracer, proto string, now time.Duration, kind obs.Kind, node int) {
	if tracer != nil {
		tracer.Emit(obs.Event{T: int64(now), Proto: proto, Kind: kind, Node: node, Video: -1, Provider: -1})
	}
}
