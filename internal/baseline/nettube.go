// Package baseline reimplements the two comparison systems of the paper's
// evaluation on the same simulator interfaces as SocialTube: NetTube
// (Cheng & Liu, INFOCOM'09 — per-video overlays with a session cache and
// random neighbour prefetching) and PA-VoD (Huang, Li & Ross, SIGCOMM'07 —
// server-directed peer assistance from current watchers, no cache).
package baseline

import (
	"fmt"
	"sort"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/overlay"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// NetTubeConfig holds NetTube's protocol parameters.
type NetTubeConfig struct {
	// LinksPerOverlay bounds a node's links within one per-video overlay
	// (the paper's analysis assumes ≈log(u) links per overlay).
	LinksPerOverlay int
	// TTL bounds query forwarding; NetTube queries neighbours within two
	// hops.
	TTL int
	// PrefetchCount is how many videos a node randomly prefetches from
	// its neighbours' caches (the paper's experiments use 3; 0 disables).
	PrefetchCount int
	// CacheVideos bounds the cache (0 = unbounded session cache).
	CacheVideos int
	// Seed drives random choices.
	Seed int64
}

// DefaultNetTubeConfig returns the parameters used in the paper's
// comparison.
func DefaultNetTubeConfig() NetTubeConfig {
	return NetTubeConfig{
		LinksPerOverlay: 6,
		TTL:             2,
		PrefetchCount:   3,
		Seed:            1,
	}
}

// Validate reports the first problem with the configuration.
func (c NetTubeConfig) Validate() error {
	switch {
	case c.LinksPerOverlay <= 0:
		return fmt.Errorf("%w: linksPerOverlay=%d", dist.ErrBadParameter, c.LinksPerOverlay)
	case c.TTL <= 0:
		return fmt.Errorf("%w: ttl=%d", dist.ErrBadParameter, c.TTL)
	case c.PrefetchCount < 0:
		return fmt.Errorf("%w: prefetchCount=%d", dist.ErrBadParameter, c.PrefetchCount)
	case c.CacheVideos < 0:
		return fmt.Errorf("%w: cacheVideos=%d", dist.ErrBadParameter, c.CacheVideos)
	}
	return nil
}

// NetTube implements the per-video-overlay baseline over a trace. Node ids
// are dense user indices, so per-node state is slice-indexed.
type NetTube struct {
	cfg NetTubeConfig
	tr  *trace.Trace
	g   *dist.RNG
	// overlays holds one mesh per video; a node that watched the video
	// stays in its overlay as a provider.
	overlays map[trace.VideoID]*overlay.Mesh
	// members tracks the online members of each per-video overlay — the
	// per-video state the central server must keep (contrast §IV-A).
	members map[trace.VideoID]*overlay.Members
	nodes   []ntNode

	// scratch is the reusable flood state; unionSeen/unionBuf back the
	// allocation-free cross-overlay neighbour union.
	scratch    overlay.FloodScratch
	unionSeen  []uint32
	unionEpoch uint32
	unionBuf   []int

	// ctr/tracer/now are the observability hooks; see internal/obs.
	ctr    obs.Counters
	tracer obs.Tracer
	now    time.Duration
	// spanSeq numbers request spans for trace linkage (obs.Event.Span).
	spanSeq uint64
}

var _ vod.Protocol = (*NetTube)(nil)

type ntNode struct {
	online bool
	cache  *vod.Cache
	// joined lists the per-video overlays the node currently has links
	// in, sorted ascending so every iteration order is deterministic.
	joined []trace.VideoID
}

// joinedHas reports whether v is in the node's sorted joined list.
func (st *ntNode) joinedHas(v trace.VideoID) bool {
	i := sort.Search(len(st.joined), func(i int) bool { return st.joined[i] >= v })
	return i < len(st.joined) && st.joined[i] == v
}

// joinedAdd inserts v into the sorted joined list if absent.
func (st *ntNode) joinedAdd(v trace.VideoID) {
	i := sort.Search(len(st.joined), func(i int) bool { return st.joined[i] >= v })
	if i < len(st.joined) && st.joined[i] == v {
		return
	}
	st.joined = append(st.joined, 0)
	copy(st.joined[i+1:], st.joined[i:])
	st.joined[i] = v
}

// NewNetTube builds a NetTube system over the trace.
func NewNetTube(cfg NetTubeConfig, tr *trace.Trace) (*NetTube, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("nettube config: %w", err)
	}
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: nettube needs a non-empty trace", dist.ErrBadParameter)
	}
	n := &NetTube{
		cfg:       cfg,
		tr:        tr,
		g:         dist.NewRNG(cfg.Seed),
		overlays:  make(map[trace.VideoID]*overlay.Mesh),
		members:   make(map[trace.VideoID]*overlay.Members),
		nodes:     make([]ntNode, len(tr.Users)),
		scratch:   *overlay.NewFloodScratch(len(tr.Users)),
		unionSeen: make([]uint32, len(tr.Users)),
	}
	for i := range n.nodes {
		n.nodes[i] = ntNode{cache: vod.NewCache(cfg.CacheVideos)}
	}
	return n, nil
}

func (n *NetTube) state(node int) *ntNode {
	if node < 0 || node >= len(n.nodes) {
		return nil
	}
	return &n.nodes[node]
}

// Name implements vod.Protocol.
func (n *NetTube) Name() string { return "NetTube" }

// ObsCounters implements obs.Instrumented.
func (n *NetTube) ObsCounters() *obs.Counters { return &n.ctr }

// SetTracer implements obs.Traceable; a nil tracer disables tracing.
func (n *NetTube) SetTracer(t obs.Tracer) { n.tracer = t }

// SetNow implements the experiment engine's clock hook so trace events carry
// virtual timestamps.
func (n *NetTube) SetNow(now time.Duration) { n.now = now }

func (n *NetTube) mesh(v trace.VideoID) *overlay.Mesh {
	m, ok := n.overlays[v]
	if !ok {
		m = overlay.NewMesh(n.cfg.LinksPerOverlay)
		n.overlays[v] = m
	}
	return m
}

func (n *NetTube) memberSet(v trace.VideoID) *overlay.Members {
	m, ok := n.members[v]
	if !ok {
		m = overlay.NewMembers()
		n.members[v] = m
	}
	return m
}

func (n *NetTube) online(node int) bool {
	st := n.state(node)
	return st != nil && st.online
}

// Join implements vod.Protocol. A returning NetTube node starts with no
// overlay links and accumulates them as it watches videos — the behaviour
// behind the growing curve of Fig. 18.
func (n *NetTube) Join(node int) {
	st := n.state(node)
	if st == nil || st.online {
		return
	}
	st.online = true
	n.ctr.OverlayJoins++
	churnEvent(n.tracer, "NetTube", n.now, obs.KindJoin, node)
}

// Leave implements vod.Protocol: graceful departure from every overlay.
func (n *NetTube) Leave(node int) {
	st := n.state(node)
	if st == nil || !st.online {
		return
	}
	for _, v := range st.joined {
		n.mesh(v).RemoveNode(node)
		n.memberSet(v).Remove(node)
	}
	st.joined = st.joined[:0]
	st.online = false
	n.ctr.OverlayLeaves++
	churnEvent(n.tracer, "NetTube", n.now, obs.KindLeave, node)
}

// Fail implements vod.Protocol: the node vanishes from member sets but its
// mesh links linger until neighbours probe.
func (n *NetTube) Fail(node int) {
	st := n.state(node)
	if st == nil || !st.online {
		return
	}
	for _, v := range st.joined {
		n.memberSet(v).Remove(node)
	}
	st.online = false
	n.ctr.OverlayFails++
	churnEvent(n.tracer, "NetTube", n.now, obs.KindFail, node)
}

// unionNeighbors returns the node's neighbours across every overlay it has
// joined — NetTube nodes forward queries over all their links. The result
// is a reusable buffer, valid until the next unionNeighbors call; the
// joined list is sorted, so the order is deterministic.
func (n *NetTube) unionNeighbors(node int) []int {
	st := n.state(node)
	if st == nil || !st.online {
		return nil
	}
	n.unionEpoch++
	if n.unionEpoch == 0 {
		for i := range n.unionSeen {
			n.unionSeen[i] = 0
		}
		n.unionEpoch = 1
	}
	out := n.unionBuf[:0]
	for _, v := range st.joined {
		for _, nb := range n.mesh(v).NeighborsView(node) {
			if nb < len(n.unionSeen) && n.unionSeen[nb] == n.unionEpoch {
				continue
			}
			if nb < len(n.unionSeen) {
				n.unionSeen[nb] = n.unionEpoch
			}
			out = append(out, nb)
		}
	}
	n.unionBuf = out
	return out
}

// Request implements vod.Protocol: locate the video, then account the
// outcome and emit the serve event (shared with PA-VoD via accountRequest).
func (n *NetTube) Request(node int, v trace.VideoID) vod.RequestResult {
	res := n.locate(node, v)
	n.spanSeq++
	res.Span = n.spanSeq
	accountRequest(&n.ctr, n.tracer, "NetTube", n.now, node, v, res)
	return res
}

// locate queries neighbours within TTL hops across the node's overlays; on a
// miss the server serves the video and directs the node into the video's
// overlay.
func (n *NetTube) locate(node int, v trace.VideoID) vod.RequestResult {
	st := n.state(node)
	video := n.tr.Video(v)
	if st == nil || !st.online || video == nil {
		return vod.RequestResult{Source: vod.SourceServer}
	}
	res := vod.RequestResult{PrefixCached: st.cache.HasPrefix(v)}
	if st.cache.HasFull(v) {
		res.Source = vod.SourceCache
		return res
	}
	match := func(m int) bool {
		other := n.state(m)
		return other != nil && other.online && other.cache.HasFull(v)
	}
	// A node with overlay links queries its neighbours within TTL hops;
	// a fresh node (first request of a session) instead asks the server,
	// which directs it to providers in the video's overlay. On a miss the
	// server serves the video itself. NetTube has no hierarchy, so its
	// cross-overlay flood counts at the channel level and its
	// server-directed provider lookup at the server level.
	if len(st.joined) > 0 {
		n.ctr.LookupsChannel++
		fr := n.scratch.Flood(node, n.cfg.TTL, n.unionNeighbors, match)
		res.Messages += fr.Messages
		n.ctr.FloodMsgsChannel += uint64(fr.Messages)
		if n.tracer != nil {
			provider := -1
			if fr.OK {
				provider = fr.Found
			}
			n.tracer.Emit(obs.Event{T: int64(n.now), Proto: "NetTube", Kind: obs.KindFlood, Node: node,
				Video: int64(v), Provider: provider, Level: obs.LevelChannel, OK: fr.OK, Hops: fr.Hops, Msgs: fr.Messages})
		}
		if fr.OK {
			n.ctr.HitsChannel++
			res.Source = vod.SourcePeer
			res.Provider = fr.Found
			res.Hops = fr.Hops
			n.joinOverlay(node, v, fr.Found)
			return res
		}
		n.ctr.TTLExhausted++
	}
	// The request reaches the server either way: it serves the video, and
	// for a fresh node it first tries to direct the request to a provider
	// already in the video's overlay.
	n.ctr.LookupsServer++
	if len(st.joined) == 0 {
		if provider := n.memberSet(v).Random(n.g, node); provider >= 0 && match(provider) {
			res.Source = vod.SourcePeer
			res.Provider = provider
			res.Hops = 1
			res.Messages++ // the server-directed contact
			n.ctr.FloodMsgsServer++
			n.ctr.HitsServerAssist++
			if n.tracer != nil {
				n.tracer.Emit(obs.Event{T: int64(n.now), Proto: "NetTube", Kind: obs.KindFlood, Node: node,
					Video: int64(v), Provider: provider, Level: obs.LevelServer, OK: true, Hops: 1, Msgs: 1})
			}
			n.joinOverlay(node, v, provider)
			return res
		}
	}
	res.Source = vod.SourceServer
	n.joinOverlay(node, v, -1)
	return res
}

// joinOverlay places the node in the video's overlay, linking it to the
// provider (when given) and to random overlay members up to the bound.
func (n *NetTube) joinOverlay(node int, v trace.VideoID, provider int) {
	st := n.state(node)
	mesh := n.mesh(v)
	members := n.memberSet(v)
	st.joinedAdd(v)
	members.Add(node)
	if provider >= 0 {
		mesh.Connect(node, provider)
	}
	for attempts := 0; !mesh.Full(node) && attempts < 2*n.cfg.LinksPerOverlay; attempts++ {
		cand := members.Random(n.g, node)
		if cand < 0 {
			break
		}
		if n.online(cand) {
			mesh.Connect(node, cand)
		}
	}
}

// Finish implements vod.Protocol: cache the video, stay in its overlay as a
// provider, and prefetch the first chunks of randomly chosen videos from
// neighbours' caches (NetTube's related-video prefetching).
func (n *NetTube) Finish(node int, v trace.VideoID) {
	st := n.state(node)
	if st == nil || n.tr.Video(v) == nil {
		return
	}
	st.cache.AddFull(v)
	if n.cfg.PrefetchCount <= 0 {
		return
	}
	neighbors := n.unionNeighbors(node)
	if len(neighbors) == 0 {
		return
	}
	prefetched := 0
	for attempts := 0; prefetched < n.cfg.PrefetchCount && attempts < 4*n.cfg.PrefetchCount; attempts++ {
		nb := neighbors[n.g.Intn(len(neighbors))]
		other := n.state(nb)
		if other == nil {
			continue
		}
		vids := other.cache.FullVideos()
		if len(vids) == 0 {
			continue
		}
		pick := vids[n.g.Intn(len(vids))]
		if pick == v || st.cache.HasPrefix(pick) {
			continue
		}
		st.cache.AddPrefix(pick)
		n.ctr.PrefetchStored++
		if n.tracer != nil {
			n.tracer.Emit(obs.Event{T: int64(n.now), Proto: "NetTube", Kind: obs.KindPrefetch, Node: node,
				Video: int64(pick), Provider: -1})
		}
		prefetched++
	}
}

// Links implements vod.Protocol: total links across all per-video overlays,
// counting redundant links to the same neighbour in different overlays
// separately — exactly the overhead §IV-C criticizes.
func (n *NetTube) Links(node int) int {
	st := n.state(node)
	if st == nil {
		return 0
	}
	total := 0
	for _, v := range st.joined {
		total += n.mesh(v).Degree(node)
	}
	return total
}

// Probe drops dead links in every joined overlay and returns the number of
// probe messages sent.
func (n *NetTube) Probe(node int) int {
	st := n.state(node)
	if st == nil || !st.online {
		return 0
	}
	before := n.Links(node)
	msgs := 0
	for _, v := range st.joined {
		msgs += n.mesh(v).Prune(node, n.online)
	}
	n.ctr.LinksPruned += uint64(before - n.Links(node))
	n.ctr.ProbeMsgs += uint64(msgs)
	if n.tracer != nil {
		n.tracer.Emit(obs.Event{T: int64(n.now), Proto: "NetTube", Kind: obs.KindProbe, Node: node,
			Video: -1, Provider: -1, Msgs: msgs})
	}
	return msgs
}

// Cache exposes the node's cache for accounting.
func (n *NetTube) Cache(node int) *vod.Cache {
	st := n.state(node)
	if st == nil {
		return nil
	}
	return st.cache
}

// Overlays returns how many per-video overlays the node currently belongs
// to (tests and ablations).
func (n *NetTube) Overlays(node int) int {
	st := n.state(node)
	if st == nil {
		return 0
	}
	return len(st.joined)
}
