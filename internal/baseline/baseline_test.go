package baseline

import (
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

func baselineTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 31
	cfg.Channels = 50
	cfg.Users = 400
	cfg.Categories = 6
	cfg.MaxInterestsPerUser = 6
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNetTubeConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*NetTubeConfig)
	}{
		{"zero links", func(c *NetTubeConfig) { c.LinksPerOverlay = 0 }},
		{"zero ttl", func(c *NetTubeConfig) { c.TTL = 0 }},
		{"negative prefetch", func(c *NetTubeConfig) { c.PrefetchCount = -1 }},
		{"negative cache", func(c *NetTubeConfig) { c.CacheVideos = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultNetTubeConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if err := DefaultNetTubeConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestNetTubeRejectsEmptyTrace(t *testing.T) {
	if _, err := NewNetTube(DefaultNetTubeConfig(), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestPAVoDRejectsEmptyTrace(t *testing.T) {
	if _, err := NewPAVoD(DefaultPAVoDConfig(), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestProtocolCompliance(t *testing.T) {
	var _ vod.Protocol = (*NetTube)(nil)
	var _ vod.Protocol = (*PAVoD)(nil)
}

func TestNetTubeCacheHit(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	node := int(tr.Users[0].ID)
	v := tr.Videos[0].ID
	nt.Join(node)
	if res := nt.Request(node, v); res.Source != vod.SourceServer {
		t.Fatalf("first request = %v, want server", res.Source)
	}
	nt.Finish(node, v)
	if res := nt.Request(node, v); res.Source != vod.SourceCache {
		t.Fatalf("cached request = %v, want cache", res.Source)
	}
}

func TestNetTubeServerDirectsToOverlayProvider(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Videos[0].ID
	a, b := int(tr.Users[0].ID), int(tr.Users[1].ID)
	nt.Join(a)
	nt.Request(a, v)
	nt.Finish(a, v)
	nt.Join(b)
	res := nt.Request(b, v)
	if res.Source != vod.SourcePeer || res.Provider != a {
		t.Fatalf("expected server-directed peer %d, got %+v", a, res)
	}
	// b should now be linked into the overlay of v.
	if nt.Overlays(b) != 1 {
		t.Fatalf("b joined %d overlays, want 1", nt.Overlays(b))
	}
	if nt.Links(b) == 0 {
		t.Fatal("b has no links after joining the overlay")
	}
}

func TestNetTubeNeighborSearchWithinTwoHops(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := tr.Videos[0].ID, tr.Videos[1].ID
	a, b := int(tr.Users[0].ID), int(tr.Users[1].ID)
	// a watches v1 and v2; b watches v1 and links to a, then asks for v2.
	nt.Join(a)
	nt.Request(a, v1)
	nt.Finish(a, v1)
	nt.Request(a, v2)
	nt.Finish(a, v2)
	nt.Join(b)
	nt.Request(b, v1)
	nt.Finish(b, v1)
	res := nt.Request(b, v2)
	if res.Source != vod.SourcePeer {
		t.Fatalf("neighbour search failed: %+v", res)
	}
	if res.Provider != a {
		t.Fatalf("provider = %d, want %d", res.Provider, a)
	}
	if res.Hops < 1 || res.Hops > 2 {
		t.Fatalf("hops = %d, want within 2", res.Hops)
	}
}

// TestNetTubeLinksGrowWithVideosWatched verifies the core claim of Fig. 15 /
// Fig. 18: NetTube overhead accumulates with distinct videos watched.
func TestNetTubeLinksGrowWithVideosWatched(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Seed providers: several nodes watch a set of videos.
	seedNodes := []int{0, 1, 2, 3, 4}
	var vids []trace.VideoID
	for i := 0; i < 12; i++ {
		vids = append(vids, tr.Videos[i].ID)
	}
	for _, n := range seedNodes {
		nt.Join(n)
		for _, v := range vids {
			nt.Request(n, v)
			nt.Finish(n, v)
		}
	}
	// A fresh node watches more and more videos; its links must grow.
	probe := 10
	nt.Join(probe)
	linksAfter := make([]int, 0, len(vids))
	for _, v := range vids {
		nt.Request(probe, v)
		nt.Finish(probe, v)
		linksAfter = append(linksAfter, nt.Links(probe))
	}
	if linksAfter[len(linksAfter)-1] <= linksAfter[0] {
		t.Fatalf("NetTube links did not grow: %v", linksAfter)
	}
	if nt.Overlays(probe) != len(vids) {
		t.Fatalf("probe joined %d overlays, want %d", nt.Overlays(probe), len(vids))
	}
}

func TestNetTubeLeaveDropsAllOverlays(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0, 1
	v := tr.Videos[0].ID
	nt.Join(a)
	nt.Request(a, v)
	nt.Finish(a, v)
	nt.Join(b)
	nt.Request(b, v)
	nt.Finish(b, v)
	nt.Leave(a)
	if nt.Links(a) != 0 || nt.Overlays(a) != 0 {
		t.Fatal("leave did not clear overlays")
	}
	if nt.Links(b) != 0 {
		// b's only neighbour was a; symmetric removal must clear it.
		t.Fatalf("b retains %d links to departed node", nt.Links(b))
	}
}

func TestNetTubeFailThenProbe(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0, 1
	v := tr.Videos[0].ID
	for _, n := range []int{a, b} {
		nt.Join(n)
		nt.Request(n, v)
		nt.Finish(n, v)
	}
	if nt.Links(b) == 0 {
		t.Skip("nodes did not link")
	}
	nt.Fail(a)
	if nt.Links(b) == 0 {
		t.Fatal("abrupt failure should leave dead links until probe")
	}
	if msgs := nt.Probe(b); msgs == 0 {
		t.Fatal("probe sent no messages")
	}
	if nt.Links(b) != 0 {
		t.Fatal("probe did not clear dead link")
	}
}

func TestNetTubeCachePersistsAcrossSessions(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	node := 0
	v := tr.Videos[0].ID
	nt.Join(node)
	nt.Request(node, v)
	nt.Finish(node, v)
	nt.Leave(node)
	// Links are gone but the cache survives.
	if nt.Links(node) != 0 {
		t.Fatal("links survived leave")
	}
	nt.Join(node)
	if res := nt.Request(node, v); res.Source != vod.SourceCache {
		t.Fatalf("cache lost across sessions: %v", res.Source)
	}
}

func TestNetTubePrefetchFromNeighbors(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	a, b := 0, 1
	v1, v2, v3 := tr.Videos[0].ID, tr.Videos[1].ID, tr.Videos[2].ID
	nt.Join(a)
	for _, v := range []trace.VideoID{v1, v2, v3} {
		nt.Request(a, v)
		nt.Finish(a, v)
	}
	nt.Join(b)
	nt.Request(b, v1)
	nt.Finish(b, v1)
	// b linked to a in v1's overlay; prefetch should have drawn from a's
	// cache.
	if nt.Cache(b).PrefixLen() == 0 {
		t.Fatal("no prefetch happened despite neighbour with cache")
	}
}

func TestNetTubeDegenerateRequests(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res := nt.Request(1<<30, 0); res.Source != vod.SourceServer {
		t.Fatal("unknown node should fall to server")
	}
	nt.Join(0)
	if res := nt.Request(0, trace.VideoID(1<<30)); res.Source != vod.SourceServer {
		t.Fatal("unknown video should fall to server")
	}
	nt.Join(0) // double join no-op
	nt.Leave(99999)
	nt.Fail(99999)
	if nt.Cache(99999) != nil {
		t.Fatal("unknown node has cache")
	}
}

func TestPAVoDConcurrentWatcherServes(t *testing.T) {
	tr := baselineTrace(t)
	pv, err := NewPAVoD(DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Videos[0].ID
	a, b := 0, 1
	pv.Join(a)
	pv.Join(b)
	if res := pv.Request(a, v); res.Source != vod.SourceServer {
		t.Fatalf("first watcher source = %v, want server", res.Source)
	}
	// a is still watching; once it has downloaded the leading chunk
	// (ReadyDelay), b must be served by a.
	pv.SetNow(DefaultPAVoDConfig().ReadyDelay + time.Second)
	res := pv.Request(b, v)
	if res.Source != vod.SourcePeer || res.Provider != a {
		t.Fatalf("expected peer %d, got %+v", a, res)
	}
	if pv.Links(b) != 1 {
		t.Fatalf("b links = %d, want 1 (active provider)", pv.Links(b))
	}
}

// TestPAVoDNoProviderAfterFinish captures PA-VoD's key weakness: once the
// watcher finishes, the video has no peer provider.
func TestPAVoDNoProviderAfterFinish(t *testing.T) {
	tr := baselineTrace(t)
	pv, err := NewPAVoD(DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Videos[0].ID
	a, b := 0, 1
	pv.Join(a)
	pv.Join(b)
	pv.Request(a, v)
	pv.Finish(a, v)
	if pv.Watchers(v) != 0 {
		t.Fatalf("watchers after finish = %d, want 0", pv.Watchers(v))
	}
	if res := pv.Request(b, v); res.Source != vod.SourceServer {
		t.Fatalf("source = %v, want server (no concurrent watcher)", res.Source)
	}
}

func TestPAVoDNoCache(t *testing.T) {
	tr := baselineTrace(t)
	pv, err := NewPAVoD(DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Videos[0].ID
	node := 0
	pv.Join(node)
	pv.Request(node, v)
	pv.Finish(node, v)
	// Re-request: no cache, so the server (or a concurrent watcher, of
	// which there are none) must serve again.
	if res := pv.Request(node, v); res.Source != vod.SourceServer {
		t.Fatalf("PA-VoD should not cache: %v", res.Source)
	}
}

func TestPAVoDLeaveClearsWatcher(t *testing.T) {
	tr := baselineTrace(t)
	pv, err := NewPAVoD(DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Videos[0].ID
	pv.Join(0)
	pv.Request(0, v)
	pv.Leave(0)
	if pv.Watchers(v) != 0 {
		t.Fatal("leave did not clear watcher registration")
	}
	pv.Fail(0) // offline fail is a no-op
	if pv.Links(0) != 0 {
		t.Fatal("links after leave")
	}
}

func TestPAVoDSwitchingVideosMovesWatcher(t *testing.T) {
	tr := baselineTrace(t)
	pv, err := NewPAVoD(DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := tr.Videos[0].ID, tr.Videos[1].ID
	pv.Join(0)
	pv.Request(0, v1)
	pv.Request(0, v2)
	if pv.Watchers(v1) != 0 {
		t.Fatal("moving to a new video should stop providing the old one")
	}
	if pv.Watchers(v2) != 1 {
		t.Fatal("node not registered as watcher of new video")
	}
}

func TestPAVoDDegenerate(t *testing.T) {
	tr := baselineTrace(t)
	pv, err := NewPAVoD(DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res := pv.Request(1<<30, 0); res.Source != vod.SourceServer {
		t.Fatal("unknown node should fall to server")
	}
	pv.Join(0)
	if res := pv.Request(0, trace.VideoID(1<<30)); res.Source != vod.SourceServer {
		t.Fatal("unknown video should fall to server")
	}
	pv.Finish(0, tr.Videos[5].ID) // finishing an unwatched video is a no-op
}

// TestThreeProtocolAvailabilityOrdering is a cross-protocol sanity check of
// the paper's headline result: with identical workloads, SocialTube-style
// caching (NetTube here vs PA-VoD) finds more peer providers.
func TestCachingBeatsNoCaching(t *testing.T) {
	tr := baselineTrace(t)
	nt, err := NewNetTube(DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := NewPAVoD(DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	g := dist.NewRNG(7)
	picker, err := vod.NewPicker(tr, vod.DefaultBehavior())
	if err != nil {
		t.Fatal(err)
	}
	// Same request sequence for both systems.
	type req struct {
		node int
		v    trace.VideoID
	}
	var seq []req
	for i := 0; i < 2000; i++ {
		node := int(tr.Users[g.Intn(len(tr.Users))].ID)
		v := picker.First(g, &tr.Users[node])
		seq = append(seq, req{node, v})
	}
	peerNT, peerPV := 0, 0
	for _, r := range seq {
		nt.Join(r.node)
		pv.Join(r.node)
		if res := nt.Request(r.node, r.v); res.Source == vod.SourcePeer {
			peerNT++
		}
		nt.Finish(r.node, r.v)
		if res := pv.Request(r.node, r.v); res.Source == vod.SourcePeer {
			peerPV++
		}
		pv.Finish(r.node, r.v)
	}
	if peerNT <= peerPV {
		t.Fatalf("NetTube peer hits %d should exceed PA-VoD %d", peerNT, peerPV)
	}
}
