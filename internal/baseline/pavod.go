package baseline

import (
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/overlay"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// PAVoDConfig holds PA-VoD's parameters.
type PAVoDConfig struct {
	// Seed drives the server's random watcher selection.
	Seed int64
	// ReadyDelay is how long after starting a video a watcher can serve
	// it to others: it must first download the leading chunk itself
	// (≈ chunk size / peer uplink). Zero disables the constraint.
	ReadyDelay time.Duration
	// MaxUploads bounds a watcher's concurrent uploads (a 1 Mbps uplink
	// sustains about three 320 kbps streams). Zero means unlimited.
	MaxUploads int
	// ISPs partitions peers into that many ISPs; PA-VoD (Huang et al.)
	// "localizes P2P traffic within an ISP", so a requester is only
	// directed to concurrent watchers in its own ISP. Values below 2
	// disable locality.
	ISPs int
}

// DefaultPAVoDConfig returns the defaults: a 320 kbps × 4 min video has
// ≈4.8 MB chunks, which a 1 Mbps peer uplink downloads in ≈38 s.
func DefaultPAVoDConfig() PAVoDConfig {
	return PAVoDConfig{
		Seed:       1,
		ReadyDelay: 38 * time.Second,
		MaxUploads: 3,
	}
}

// Validate reports the first problem with the configuration.
func (c PAVoDConfig) Validate() error {
	if c.ReadyDelay < 0 || c.MaxUploads < 0 || c.ISPs < 0 {
		return fmt.Errorf("%w: pa-vod config %+v", dist.ErrBadParameter, c)
	}
	return nil
}

// PAVoD implements the peer-assisted VoD baseline: when a user requests a
// video, the server directs the request to users *currently watching* it;
// when a user finishes watching, it stops being a provider. There is no
// cache and no prefetching, which is why videos without concurrent watchers
// always fall back to the server.
type PAVoD struct {
	cfg PAVoDConfig
	tr  *trace.Trace
	g   *dist.RNG
	now time.Duration
	// watchers tracks who is currently watching each video — the
	// server-side state PA-VoD needs.
	watchers map[trace.VideoID]*overlay.Members
	// startedAt records when each node began its current watch, for the
	// readiness constraint (indexed by node id).
	startedAt []time.Duration
	// uploads counts each node's concurrent uploads (indexed by node id).
	uploads []int
	nodes   []paNode
	// eligible is the reusable candidate buffer of eligibleProvider.
	eligible []int

	// ctr/tracer are the observability hooks; see internal/obs.
	ctr    obs.Counters
	tracer obs.Tracer
	// spanSeq numbers request spans for trace linkage (obs.Event.Span).
	spanSeq uint64
}

var (
	_ vod.Protocol = (*PAVoD)(nil)
)

type paNode struct {
	online   bool
	watching trace.VideoID
	// provider is the peer currently streaming to this node (-1 when the
	// server serves it); it is the node's only "link".
	provider int
}

// NewPAVoD builds a PA-VoD system over the trace.
func NewPAVoD(cfg PAVoDConfig, tr *trace.Trace) (*PAVoD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("pa-vod config: %w", err)
	}
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: pa-vod needs a non-empty trace", dist.ErrBadParameter)
	}
	p := &PAVoD{
		cfg:       cfg,
		tr:        tr,
		g:         dist.NewRNG(cfg.Seed),
		watchers:  make(map[trace.VideoID]*overlay.Members),
		startedAt: make([]time.Duration, len(tr.Users)),
		uploads:   make([]int, len(tr.Users)),
		nodes:     make([]paNode, len(tr.Users)),
	}
	for i := range p.nodes {
		p.nodes[i] = paNode{watching: -1, provider: -1}
	}
	return p, nil
}

func (p *PAVoD) state(node int) *paNode {
	if node < 0 || node >= len(p.nodes) {
		return nil
	}
	return &p.nodes[node]
}

// Name implements vod.Protocol.
func (p *PAVoD) Name() string { return "PA-VoD" }

// SetNow implements the experiment engine's optional clock hook so the
// readiness constraint can reason about elapsed watch time.
func (p *PAVoD) SetNow(now time.Duration) { p.now = now }

// ObsCounters implements obs.Instrumented.
func (p *PAVoD) ObsCounters() *obs.Counters { return &p.ctr }

// SetTracer implements obs.Traceable; a nil tracer disables tracing.
func (p *PAVoD) SetTracer(t obs.Tracer) { p.tracer = t }

func (p *PAVoD) watcherSet(v trace.VideoID) *overlay.Members {
	m, ok := p.watchers[v]
	if !ok {
		m = overlay.NewMembers()
		p.watchers[v] = m
	}
	return m
}

// Join implements vod.Protocol.
func (p *PAVoD) Join(node int) {
	st := p.state(node)
	if st == nil || st.online {
		return
	}
	st.online = true
	st.watching = -1
	st.provider = -1
	p.ctr.OverlayJoins++
	churnEvent(p.tracer, "PA-VoD", p.now, obs.KindJoin, node)
}

// depart takes the node out of the system; it reports whether the node was
// online so Leave/Fail can account gracefully-left versus failed sessions.
func (p *PAVoD) depart(node int) bool {
	st := p.state(node)
	if st == nil || !st.online {
		return false
	}
	p.stopWatching(node)
	st.online = false
	return true
}

// Leave implements vod.Protocol.
func (p *PAVoD) Leave(node int) {
	if p.depart(node) {
		p.ctr.OverlayLeaves++
		churnEvent(p.tracer, "PA-VoD", p.now, obs.KindLeave, node)
	}
}

// Fail implements vod.Protocol. PA-VoD keeps no overlay links, so an abrupt
// failure behaves like a departure from the server's perspective.
func (p *PAVoD) Fail(node int) {
	if p.depart(node) {
		p.ctr.OverlayFails++
		churnEvent(p.tracer, "PA-VoD", p.now, obs.KindFail, node)
	}
}

func (p *PAVoD) stopWatching(node int) {
	st := p.state(node)
	if st.watching >= 0 {
		p.watcherSet(st.watching).Remove(node)
		p.startedAt[node] = 0
		st.watching = -1
	}
	if st.provider >= 0 {
		if p.uploads[st.provider] > 0 {
			p.uploads[st.provider]--
		}
		st.provider = -1
	}
}

// eligibleProvider picks a current watcher that (a) has watched long enough
// to hold the leading chunk and (b) has upload capacity left.
func (p *PAVoD) eligibleProvider(v trace.VideoID, exclude int) int {
	eligible := p.eligible[:0]
	for _, id := range p.watcherSet(v).View() {
		if id == exclude {
			continue
		}
		other := p.state(id)
		if other == nil || !other.online {
			continue
		}
		if p.cfg.ISPs > 1 && id%p.cfg.ISPs != exclude%p.cfg.ISPs {
			continue // ISP-localized peer assistance
		}
		if p.cfg.ReadyDelay > 0 && p.now-p.startedAt[id] < p.cfg.ReadyDelay {
			continue
		}
		if p.cfg.MaxUploads > 0 && p.uploads[id] >= p.cfg.MaxUploads {
			continue
		}
		eligible = append(eligible, id)
	}
	p.eligible = eligible
	if len(eligible) == 0 {
		return -1
	}
	return eligible[p.g.Intn(len(eligible))]
}

// Request implements vod.Protocol: locate a provider via the server, then
// account the outcome and emit the serve event.
func (p *PAVoD) Request(node int, v trace.VideoID) vod.RequestResult {
	res := p.locate(node, v)
	p.spanSeq++
	res.Span = p.spanSeq
	accountRequest(&p.ctr, p.tracer, "PA-VoD", p.now, node, v, res)
	return res
}

// locate asks the server to direct the request to a current watcher of the
// video, if any; otherwise the server serves the video itself. The node
// becomes a watcher (and thus a prospective provider) until Finish.
func (p *PAVoD) locate(node int, v trace.VideoID) vod.RequestResult {
	st := p.state(node)
	video := p.tr.Video(v)
	if st == nil || !st.online || video == nil {
		return vod.RequestResult{Source: vod.SourceServer}
	}
	// Moving to a new video ends the previous watch.
	p.stopWatching(node)
	res := vod.RequestResult{Messages: 1} // the request to the server
	// PA-VoD has no overlay to flood: every lookup is server-level.
	p.ctr.LookupsServer++
	p.ctr.FloodMsgsServer++
	provider := p.eligibleProvider(v, node)
	if p.tracer != nil {
		p.tracer.Emit(obs.Event{T: int64(p.now), Proto: "PA-VoD", Kind: obs.KindFlood, Node: node,
			Video: int64(v), Provider: provider, Level: obs.LevelServer, OK: provider >= 0, Hops: 1, Msgs: 1})
	}
	if provider >= 0 {
		p.ctr.HitsServerAssist++
		res.Source = vod.SourcePeer
		res.Provider = provider
		res.Hops = 1
		st.provider = provider
		p.uploads[provider]++
	} else {
		res.Source = vod.SourceServer
	}
	st.watching = v
	p.startedAt[node] = p.now
	p.watcherSet(v).Add(node)
	return res
}

// Finish implements vod.Protocol: the node stops being a provider for the
// video; nothing is cached.
func (p *PAVoD) Finish(node int, v trace.VideoID) {
	st := p.state(node)
	if st == nil || st.watching != v {
		return
	}
	p.stopWatching(node)
}

// Links implements vod.Protocol: a PA-VoD node maintains at most one active
// peer connection (to its current provider).
func (p *PAVoD) Links(node int) int {
	st := p.state(node)
	if st == nil || st.provider < 0 {
		return 0
	}
	return 1
}

// Watchers returns how many nodes currently watch the video (tests).
func (p *PAVoD) Watchers(v trace.VideoID) int {
	return p.watcherSet(v).Len()
}
