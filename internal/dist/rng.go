// Package dist provides the deterministic random samplers that back the
// synthetic YouTube trace generator, the discrete-event simulator and the
// emulator's latency model. Every sampler is seeded explicitly so experiments
// are reproducible bit-for-bit.
package dist

import (
	"math/rand"
)

// RNG is a seeded source of randomness shared by samplers. It wraps
// math/rand.Rand so that every component of an experiment draws from a
// single, explicitly seeded stream.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork returns a new RNG derived from this one. Forked streams are
// independent: consuming from the child does not perturb the parent beyond
// the single draw used to derive the child's seed.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential sample with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }
