package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Common sampler construction errors.
var (
	// ErrBadParameter indicates an out-of-range distribution parameter.
	ErrBadParameter = errors.New("dist: bad parameter")
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^s.
//
// The paper observes (Fig. 9) that video view counts within a channel follow
// a Zipf distribution with characteristic exponent s ≈ 1, and the prefetching
// analysis in §IV-B uses exactly this form.
type Zipf struct {
	n   int
	s   float64
	cdf []float64 // cdf[k] = P(rank <= k+1)
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: zipf n=%d", ErrBadParameter, n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("%w: zipf s=%v", ErrBadParameter, s)
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{n: n, s: s, cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// S returns the characteristic exponent.
func (z *Zipf) S() float64 { return z.s }

// Sample draws a rank in [1, N].
func (z *Zipf) Sample(g *RNG) int {
	u := g.Float64()
	idx := sort.SearchFloat64s(z.cdf, u)
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx + 1
}

// P returns the probability mass of rank k (1-based).
func (z *Zipf) P(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}

// TopP returns the total probability mass of ranks 1..m, i.e. the chance a
// Zipf draw lands in the top m ranks. This is the paper's prefetch-accuracy
// formula: for a 25-video channel, TopP(1) ≈ 0.262 and TopP(3..4) ≈ 0.546.
func (z *Zipf) TopP(m int) float64 {
	if m <= 0 {
		return 0
	}
	if m >= z.n {
		return 1
	}
	return z.cdf[m-1]
}

// BoundedPareto samples from a Pareto distribution truncated to [lo, hi].
// It models the heavy-tailed quantities of the trace: subscribers per
// channel, views per video, videos per channel.
type BoundedPareto struct {
	alpha  float64
	lo, hi float64
}

// NewBoundedPareto builds a bounded Pareto sampler with tail index alpha on
// the interval [lo, hi].
func NewBoundedPareto(alpha, lo, hi float64) (*BoundedPareto, error) {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: pareto alpha=%v lo=%v hi=%v", ErrBadParameter, alpha, lo, hi)
	}
	return &BoundedPareto{alpha: alpha, lo: lo, hi: hi}, nil
}

// Sample draws a value in [lo, hi] by inverse-CDF transform.
func (p *BoundedPareto) Sample(g *RNG) float64 {
	u := g.Float64()
	la := math.Pow(p.lo, p.alpha)
	ha := math.Pow(p.hi, p.alpha)
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
	if x < p.lo {
		x = p.lo
	}
	if x > p.hi {
		x = p.hi
	}
	return x
}

// LogNormal samples exp(mu + sigma*Z). It models video lengths, whose
// distribution on YouTube is approximately lognormal around the short-video
// regime the paper targets.
type LogNormal struct {
	mu, sigma float64
}

// NewLogNormal builds a lognormal sampler with location mu and scale sigma.
func NewLogNormal(mu, sigma float64) (*LogNormal, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("%w: lognormal sigma=%v", ErrBadParameter, sigma)
	}
	return &LogNormal{mu: mu, sigma: sigma}, nil
}

// Sample draws a lognormal value.
func (l *LogNormal) Sample(g *RNG) float64 {
	return math.Exp(l.mu + l.sigma*g.NormFloat64())
}

// Exponential returns an exponential sample with the given mean. The paper
// draws user off-times between sessions from a Poisson process, i.e.
// exponential inter-arrival gaps (mean 500 s in simulation, 2 min on
// PlanetLab).
func Exponential(g *RNG, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.ExpFloat64() * mean
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func Poisson(g *RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := mean + math.Sqrt(mean)*g.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// WeightedChoice selects an index with probability proportional to its
// weight. It returns -1 when weights is empty or sums to zero.
func WeightedChoice(g *RNG, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return -1
	}
	u := g.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
