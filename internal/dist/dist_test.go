package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZipfRejectsBadParameters(t *testing.T) {
	tests := []struct {
		name string
		n    int
		s    float64
	}{
		{name: "zero n", n: 0, s: 1},
		{name: "negative n", n: -5, s: 1},
		{name: "zero s", n: 10, s: 0},
		{name: "negative s", n: 10, s: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewZipf(tt.n, tt.s); err == nil {
				t.Fatalf("NewZipf(%d, %v) expected error, got nil", tt.n, tt.s)
			}
		})
	}
}

func TestZipfMassSumsToOne(t *testing.T) {
	z, err := NewZipf(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for k := 1; k <= 25; k++ {
		sum += z.P(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("zipf mass sums to %v, want 1", sum)
	}
}

func TestZipfMassIsMonotoneDecreasing(t *testing.T) {
	z, err := NewZipf(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 100; k++ {
		if z.P(k) > z.P(k-1)+1e-12 {
			t.Fatalf("P(%d)=%v > P(%d)=%v", k, z.P(k), k-1, z.P(k-1))
		}
	}
}

func TestZipfPOutOfRange(t *testing.T) {
	z, err := NewZipf(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.P(0); got != 0 {
		t.Errorf("P(0) = %v, want 0", got)
	}
	if got := z.P(11); got != 0 {
		t.Errorf("P(11) = %v, want 0", got)
	}
}

// TestZipfPrefetchAccuracyMatchesPaper reproduces the §IV-B analysis: for a
// channel with 25 videos and s=1, a single prefetch of the top video is
// watched next with probability ≈26.2%, and prefetching the top 3-4 raises
// accuracy to ≈54.6%.
func TestZipfPrefetchAccuracyMatchesPaper(t *testing.T) {
	z, err := NewZipf(25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.TopP(1); math.Abs(got-0.262) > 0.005 {
		t.Errorf("TopP(1) = %.4f, paper says ≈0.262", got)
	}
	// 3-4 prefetches: the paper quotes 54.6%, which matches TopP(4).
	if got := z.TopP(4); math.Abs(got-0.546) > 0.01 {
		t.Errorf("TopP(4) = %.4f, paper says ≈0.546", got)
	}
}

func TestZipfTopPBoundaries(t *testing.T) {
	z, err := NewZipf(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.TopP(0); got != 0 {
		t.Errorf("TopP(0) = %v, want 0", got)
	}
	if got := z.TopP(10); got != 1 {
		t.Errorf("TopP(n) = %v, want 1", got)
	}
	if got := z.TopP(99); got != 1 {
		t.Errorf("TopP(>n) = %v, want 1", got)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	z, err := NewZipf(50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(1)
	for i := 0; i < 10000; i++ {
		k := z.Sample(g)
		if k < 1 || k > 50 {
			t.Fatalf("sample %d out of [1,50]", k)
		}
	}
}

func TestZipfSampleFrequencyTracksMass(t *testing.T) {
	z, err := NewZipf(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(7)
	const n = 200000
	counts := make([]int, 21)
	for i := 0; i < n; i++ {
		counts[z.Sample(g)]++
	}
	for k := 1; k <= 20; k++ {
		want := z.P(k)
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v, want %v", k, got, want)
		}
	}
}

func TestBoundedParetoRejectsBadParameters(t *testing.T) {
	tests := []struct {
		name          string
		alpha, lo, hi float64
	}{
		{name: "zero alpha", alpha: 0, lo: 1, hi: 10},
		{name: "zero lo", alpha: 1, lo: 0, hi: 10},
		{name: "hi below lo", alpha: 1, lo: 10, hi: 5},
		{name: "hi equals lo", alpha: 1, lo: 10, hi: 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewBoundedPareto(tt.alpha, tt.lo, tt.hi); err == nil {
				t.Fatalf("expected error for alpha=%v lo=%v hi=%v", tt.alpha, tt.lo, tt.hi)
			}
		})
	}
}

func TestBoundedParetoSamplesWithinBounds(t *testing.T) {
	p, err := NewBoundedPareto(0.8, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(2)
	for i := 0; i < 10000; i++ {
		x := p.Sample(g)
		if x < 1 || x > 1e6 {
			t.Fatalf("sample %v outside [1, 1e6]", x)
		}
	}
}

func TestBoundedParetoIsHeavyTailed(t *testing.T) {
	p, err := NewBoundedPareto(0.7, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(3)
	const n = 50000
	small, large := 0, 0
	for i := 0; i < n; i++ {
		x := p.Sample(g)
		if x < 10 {
			small++
		}
		if x > 1e4 {
			large++
		}
	}
	if small < n/2 {
		t.Errorf("expected most mass near lo: %d/%d below 10", small, n)
	}
	if large == 0 {
		t.Error("expected a heavy tail: no samples above 1e4")
	}
}

func TestLogNormalRejectsBadSigma(t *testing.T) {
	if _, err := NewLogNormal(0, 0); err == nil {
		t.Fatal("expected error for sigma=0")
	}
	if _, err := NewLogNormal(0, -1); err == nil {
		t.Fatal("expected error for sigma=-1")
	}
}

func TestLogNormalIsPositive(t *testing.T) {
	l, err := NewLogNormal(5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	g := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if x := l.Sample(g); x <= 0 {
			t.Fatalf("lognormal sample %v not positive", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(g, 500)
	}
	mean := sum / n
	if math.Abs(mean-500) > 10 {
		t.Errorf("exponential mean %v, want ≈500", mean)
	}
}

func TestExponentialNonPositiveMean(t *testing.T) {
	g := NewRNG(5)
	if got := Exponential(g, 0); got != 0 {
		t.Errorf("Exponential(g, 0) = %v, want 0", got)
	}
	if got := Exponential(g, -3); got != 0 {
		t.Errorf("Exponential(g, -3) = %v, want 0", got)
	}
}

func TestPoissonMeanSmallAndLarge(t *testing.T) {
	g := NewRNG(6)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += Poisson(g, mean)
		}
		got := float64(sum) / n
		tol := 4 * math.Sqrt(mean/float64(n)) * 3 // generous CLT bound
		if tol < 0.05 {
			tol = 0.05
		}
		if math.Abs(got-mean) > mean*0.05+tol {
			t.Errorf("poisson mean=%v: empirical %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	g := NewRNG(6)
	if got := Poisson(g, 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(g, -1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestWeightedChoice(t *testing.T) {
	g := NewRNG(8)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		idx := WeightedChoice(g, weights)
		if idx < 0 || idx > 2 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight index selected %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio %v, want ≈3", ratio)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	g := NewRNG(9)
	if got := WeightedChoice(g, nil); got != -1 {
		t.Errorf("WeightedChoice(nil) = %d, want -1", got)
	}
	if got := WeightedChoice(g, []float64{0, 0}); got != -1 {
		t.Errorf("WeightedChoice(zeros) = %d, want -1", got)
	}
}

func TestRNGDeterminismUnderSeed(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Fork()
	// The child must be deterministic given the parent's seed.
	parent2 := NewRNG(42)
	child2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if child.Int63() != child2.Int63() {
			t.Fatal("forked RNGs not reproducible")
		}
	}
}

// Property: Zipf.TopP is monotone non-decreasing in m and bounded by [0, 1].
func TestZipfTopPMonotoneProperty(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%100) + 1
		s := 0.1 + float64(sRaw%30)/10
		z, err := NewZipf(n, s)
		if err != nil {
			return false
		}
		prev := 0.0
		for m := 0; m <= n+1; m++ {
			cur := z.TopP(m)
			if cur < prev-1e-12 || cur < 0 || cur > 1+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bounded Pareto samples always stay within [lo, hi].
func TestBoundedParetoRangeProperty(t *testing.T) {
	f := func(seed int64, aRaw, loRaw, spanRaw uint16) bool {
		alpha := 0.1 + float64(aRaw%40)/10
		lo := 1 + float64(loRaw%1000)
		hi := lo + 1 + float64(spanRaw)
		p, err := NewBoundedPareto(alpha, lo, hi)
		if err != nil {
			return false
		}
		g := NewRNG(seed)
		for i := 0; i < 50; i++ {
			x := p.Sample(g)
			if x < lo || x > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
