package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero server uplink", func(c *Config) { c.ServerUplinkBps = 0 }},
		{"zero peer uplink", func(c *Config) { c.PeerUplinkBps = 0 }},
		{"zero min latency", func(c *Config) { c.MinLatency = 0 }},
		{"max below min", func(c *Config) { c.MaxLatency = c.MinLatency - 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
}

func TestLatencySymmetricDeterministicBounded(t *testing.T) {
	n := mustNew(t, DefaultConfig())
	for a := NodeID(-1); a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			l1 := n.Latency(a, b)
			l2 := n.Latency(b, a)
			if l1 != l2 {
				t.Fatalf("latency not symmetric for (%d,%d)", a, b)
			}
			if l1 < n.cfg.MinLatency || l1 > n.cfg.MaxLatency {
				t.Fatalf("latency %v outside bounds", l1)
			}
			if l1 != n.Latency(a, b) {
				t.Fatal("latency not deterministic")
			}
		}
	}
}

func TestLatencySelfIsZero(t *testing.T) {
	n := mustNew(t, DefaultConfig())
	if got := n.Latency(3, 3); got != 0 {
		t.Fatalf("self latency %v, want 0", got)
	}
}

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeerUplinkBps = 1_000_000 // 1 Mbps
	n := mustNew(t, cfg)
	// 125,000 bytes at 1 Mbps = exactly 1 s transmission.
	done := n.Transfer(1, 2, 125_000, 0)
	wantTx := time.Second
	lat := n.Latency(1, 2)
	if done != wantTx+lat {
		t.Fatalf("transfer done at %v, want %v", done, wantTx+lat)
	}
}

func TestFIFOQueueingDelaysSecondTransfer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeerUplinkBps = 1_000_000
	n := mustNew(t, cfg)
	first := n.Transfer(1, 2, 125_000, 0)
	second := n.Transfer(1, 3, 125_000, 0)
	// Second transfer starts only after the first finishes transmitting.
	wantStart := first - n.Latency(1, 2) // end of transmission
	wantDone := wantStart + time.Second + n.Latency(1, 3)
	if second != wantDone {
		t.Fatalf("second transfer done at %v, want %v", second, wantDone)
	}
}

func TestServerOverloadGrowsQueueDelay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServerUplinkBps = 1_000_000
	n := mustNew(t, cfg)
	for i := 0; i < 10; i++ {
		n.Transfer(ServerID, NodeID(i), 125_000, 0)
	}
	// After 10 one-second transfers queued at t=0, the queue delay is 10s.
	if got := n.QueueDelay(ServerID, 0); got != 10*time.Second {
		t.Fatalf("queue delay %v, want 10s", got)
	}
	if got := n.QueueDelay(ServerID, 20*time.Second); got != 0 {
		t.Fatalf("queue delay after drain %v, want 0", got)
	}
}

func TestServerFasterThanPeers(t *testing.T) {
	n := mustNew(t, DefaultConfig())
	serverDone := n.Transfer(ServerID, 5, 1_000_000, 0) - n.Latency(ServerID, 5)
	n2 := mustNew(t, DefaultConfig())
	peerDone := n2.Transfer(1, 5, 1_000_000, 0) - n2.Latency(1, 5)
	if serverDone >= peerDone {
		t.Fatalf("server transmission %v not faster than peer %v", serverDone, peerDone)
	}
}

func TestByteAccounting(t *testing.T) {
	n := mustNew(t, DefaultConfig())
	n.Transfer(ServerID, 1, 1000, 0)
	n.Transfer(2, 1, 500, 0)
	n.Transfer(3, 1, 500, 0)
	if n.ServerBytes() != 1000 {
		t.Errorf("server bytes %d, want 1000", n.ServerBytes())
	}
	if n.PeerBytes() != 1000 {
		t.Errorf("peer bytes %d, want 1000", n.PeerBytes())
	}
}

func TestNegativeBytesClamped(t *testing.T) {
	n := mustNew(t, DefaultConfig())
	done := n.Transfer(1, 2, -100, 0)
	if done != n.Latency(1, 2) {
		t.Fatalf("negative-size transfer took %v, want latency only", done)
	}
	if n.PeerBytes() != 0 {
		t.Errorf("peer bytes %d, want 0", n.PeerBytes())
	}
}

func TestReset(t *testing.T) {
	n := mustNew(t, DefaultConfig())
	n.Transfer(ServerID, 1, 1_000_000, 0)
	n.Reset()
	if n.ServerBytes() != 0 || n.PeerBytes() != 0 {
		t.Error("reset did not clear byte counters")
	}
	if n.QueueDelay(ServerID, 0) != 0 {
		t.Error("reset did not clear occupancy")
	}
}

// Property: a transfer never completes before its transmission time plus
// propagation latency, and uplink occupancy is monotone.
func TestTransferNeverTooFastProperty(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		n, err := New(cfg)
		if err != nil {
			return false
		}
		if len(sizes) > 100 {
			sizes = sizes[:100]
		}
		now := time.Duration(0)
		var lastDone time.Duration
		for i, s := range sizes {
			bytes := int64(s)
			to := NodeID(i%7 + 1)
			done := n.Transfer(ServerID, to, bytes, now)
			minTx := time.Duration(float64(bytes*8) / float64(cfg.ServerUplinkBps) * float64(time.Second))
			if done < now+minTx+n.Latency(ServerID, to) {
				return false
			}
			txEnd := done - n.Latency(ServerID, to)
			if txEnd < lastDone {
				return false // uplink transmissions overlap
			}
			lastDone = txEnd
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestServerQueueNeverExceedsCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServerUplinkBps = 1_000_000 // ~8 s per MB: easy to saturate
	cfg.ServerQueueCap = 4
	n := mustNew(t, cfg)
	var admitted, shed int64
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		if _, ok := n.ServerTransfer(NodeID(i%7), 64_000, 1_000_000, now); ok {
			admitted++
		} else {
			shed++
		}
		if l := n.ServerQueueLen(now); l > cfg.ServerQueueCap {
			t.Fatalf("queue length %d exceeds cap %d at arrival %d", l, cfg.ServerQueueCap, i)
		}
		now += 100 * time.Millisecond
	}
	if n.ServerQueuePeak() > cfg.ServerQueueCap {
		t.Fatalf("queue peak %d exceeds cap %d", n.ServerQueuePeak(), cfg.ServerQueueCap)
	}
	if shed == 0 {
		t.Fatal("saturating arrival pattern shed nothing")
	}
	if n.ServerShed() != shed {
		t.Fatalf("ServerShed %d, counted %d", n.ServerShed(), shed)
	}
	if admitted+shed != 200 {
		t.Fatalf("admitted %d + shed %d != offered 200", admitted, shed)
	}
	// Shed requests must not move bytes.
	if got, want := n.ServerBytes(), admitted*1_000_000; got != want {
		t.Fatalf("server bytes %d, want %d (admitted requests only)", got, want)
	}
}

func TestServerQueueDrainsAndReadmits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServerUplinkBps = 8_000_000 // 1 MB/s
	cfg.ServerQueueCap = 2
	n := mustNew(t, cfg)
	// Two 1 MB requests fill the queue; a third at t=0 is shed.
	if _, ok := n.ServerTransfer(0, 0, 1_000_000, 0); !ok {
		t.Fatal("first request shed")
	}
	if _, ok := n.ServerTransfer(1, 0, 1_000_000, 0); !ok {
		t.Fatal("second request shed")
	}
	if _, ok := n.ServerTransfer(2, 0, 1_000_000, 0); ok {
		t.Fatal("third request admitted with the queue full")
	}
	// By t=1.5s the first request (1 s of service) has drained.
	if _, ok := n.ServerTransfer(2, 0, 1_000_000, 1500*time.Millisecond); !ok {
		t.Fatal("request shed after the queue drained a slot")
	}
	if n.ServerShed() != 1 {
		t.Fatalf("shed count %d, want 1", n.ServerShed())
	}
}

func TestServerTransferUnboundedMatchesLegacyTransfers(t *testing.T) {
	cfg := DefaultConfig()
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	const head, total = 40_000, 400_000
	now := 3 * time.Second
	gotHead, ok := a.ServerTransfer(5, head, total, now)
	if !ok {
		t.Fatal("unbounded admission refused")
	}
	wantHead := b.Transfer(ServerID, 5, head, now)
	b.Transfer(ServerID, 5, total-head, now)
	if gotHead != wantHead {
		t.Fatalf("head completion %v, legacy %v", gotHead, wantHead)
	}
	if a.ServerBytes() != b.ServerBytes() {
		t.Fatalf("bytes %d, legacy %d", a.ServerBytes(), b.ServerBytes())
	}
	if a.QueueDelay(ServerID, now) != b.QueueDelay(ServerID, now) {
		t.Fatal("uplink occupancy diverged from legacy transfers")
	}
}

func TestConfigRejectsNegativeQueueCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ServerQueueCap = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("expected config error for negative queue cap")
	}
}
