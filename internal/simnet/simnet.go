// Package simnet models the network underneath the discrete-event
// simulator: per-pair propagation latency, finite peer upload capacity and a
// finite server uplink with FIFO queueing. Server overload — the mechanism
// behind PA-VoD's long startup delays in Fig. 17 — emerges naturally from
// the queueing model.
package simnet

import (
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
)

// NodeID identifies an endpoint. ServerID is reserved for the central
// server; peers use non-negative ids.
type NodeID int

// ServerID is the NodeID of the central VoD server.
const ServerID NodeID = -1

// Config sets the physical parameters of the modelled network. They default
// to the paper's Table I: 320 kbps video bitrate, 50 Mbps server uplink and
// residential peer uplinks of roughly twice the bitrate.
type Config struct {
	// Seed drives the deterministic latency model.
	Seed int64
	// ServerUplinkBps is the server's total upload capacity (Table I:
	// 50 Mbps).
	ServerUplinkBps int64
	// PeerUplinkBps is a peer's upload capacity. The paper notes typical
	// download bandwidth is at least twice the 320 kbps bitrate; uploads
	// are modelled at 1 Mbps.
	PeerUplinkBps int64
	// MinLatency and MaxLatency bound one-way propagation delay between
	// any two endpoints.
	MinLatency time.Duration
	MaxLatency time.Duration
	// ServerQueueCap bounds the server's admission queue: the maximum
	// number of admitted requests that may still be draining through
	// the server uplink when a new request arrives. Arrivals beyond
	// the bound are shed (see ServerTransfer). 0 keeps the legacy
	// unbounded FIFO, whose queueing delay grows without limit under
	// overload. The queue's service rate is the (brownout-scaled)
	// server uplink, so SetServerUplinkFactor also slows draining.
	ServerQueueCap int
}

// DefaultConfig returns the Table I network parameters.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		ServerUplinkBps: 50_000_000,
		PeerUplinkBps:   1_000_000,
		MinLatency:      10 * time.Millisecond,
		MaxLatency:      150 * time.Millisecond,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.ServerUplinkBps <= 0:
		return fmt.Errorf("%w: serverUplinkBps=%d", dist.ErrBadParameter, c.ServerUplinkBps)
	case c.PeerUplinkBps <= 0:
		return fmt.Errorf("%w: peerUplinkBps=%d", dist.ErrBadParameter, c.PeerUplinkBps)
	case c.MinLatency <= 0 || c.MaxLatency < c.MinLatency:
		return fmt.Errorf("%w: latency range [%v, %v]", dist.ErrBadParameter, c.MinLatency, c.MaxLatency)
	case c.ServerQueueCap < 0:
		return fmt.Errorf("%w: serverQueueCap=%d", dist.ErrBadParameter, c.ServerQueueCap)
	}
	return nil
}

// Network tracks uplink occupancy and answers latency/transfer queries. It
// is single-threaded, like the simulator that drives it.
type Network struct {
	cfg       Config
	busyUntil map[NodeID]time.Duration
	// serverFactor throttles the server uplink during a brownout
	// window (0 or 1 = full capacity). See SetServerUplinkFactor.
	serverFactor float64
	// serverQ holds the uplink-free times of admitted server requests,
	// in ascending order, when ServerQueueCap > 0.
	serverQ []time.Duration
	// Stats.
	serverBytes int64
	peerBytes   int64
	serverShed  int64
	queuePeak   int
}

// New builds a network model from cfg.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("simnet config: %w", err)
	}
	return &Network{
		cfg:       cfg,
		busyUntil: make(map[NodeID]time.Duration),
	}, nil
}

// Latency returns the one-way propagation delay between a and b. It is
// symmetric and deterministic under the configured seed.
func (n *Network) Latency(a, b NodeID) time.Duration {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	// Hash the ordered pair with the seed into a per-pair RNG so latency
	// is stable without storing an O(N²) matrix.
	h := int64(a)*1_000_003 + int64(b)*7919 + n.cfg.Seed*104_729
	g := dist.NewRNG(h)
	span := n.cfg.MaxLatency - n.cfg.MinLatency
	return n.cfg.MinLatency + time.Duration(g.Float64()*float64(span))
}

// SetServerUplinkFactor throttles the server uplink to factor×configured
// capacity — the fault layer's brownout hook. Factors outside (0, 1]
// restore full capacity. Transfers already reserved keep their slots;
// only subsequent transfers see the reduced rate.
func (n *Network) SetServerUplinkFactor(factor float64) {
	if factor <= 0 || factor > 1 {
		factor = 1
	}
	n.serverFactor = factor
}

// uplinkBps returns the upload capacity of the given endpoint.
func (n *Network) uplinkBps(id NodeID) int64 {
	if id == ServerID {
		bps := n.cfg.ServerUplinkBps
		if n.serverFactor > 0 && n.serverFactor < 1 {
			if bps = int64(float64(bps) * n.serverFactor); bps < 1 {
				bps = 1
			}
		}
		return bps
	}
	return n.cfg.PeerUplinkBps
}

// Transfer reserves from's uplink for a transfer of size bytes starting no
// earlier than now and returns the absolute virtual time at which the last
// byte arrives at to (queueing + transmission + propagation). Uplinks are
// FIFO: concurrent transfers from the same endpoint queue behind each other,
// so an overloaded server exhibits growing delays.
func (n *Network) Transfer(from, to NodeID, bytes int64, now time.Duration) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	start := now
	if busy := n.busyUntil[from]; busy > start {
		start = busy
	}
	bps := n.uplinkBps(from)
	tx := time.Duration(float64(bytes*8) / float64(bps) * float64(time.Second))
	done := start + tx
	n.busyUntil[from] = done
	if from == ServerID {
		n.serverBytes += bytes
	} else {
		n.peerBytes += bytes
	}
	return done + n.Latency(from, to)
}

// drainServerQ drops admitted requests whose transfers have fully
// drained through the server uplink by now.
func (n *Network) drainServerQ(now time.Duration) {
	i := 0
	for i < len(n.serverQ) && n.serverQ[i] <= now {
		i++
	}
	if i > 0 {
		n.serverQ = append(n.serverQ[:0], n.serverQ[i:]...)
	}
}

// ServerTransfer delivers one server-served video request through the
// bounded admission queue: head bytes fill the playout buffer (the
// returned time is when they land at to) and the remaining
// total − head bytes stream behind them on the same FIFO reservation.
// With ServerQueueCap > 0, a request arriving while the queue already
// holds cap draining requests is shed — no bytes move and ok is
// false. With cap 0 admission always succeeds and the call is
// byte-identical to two legacy Transfer calls (head, then remainder).
func (n *Network) ServerTransfer(to NodeID, head, total int64, now time.Duration) (headDone time.Duration, ok bool) {
	if total < 0 {
		total = 0
	}
	if head > total {
		head = total
	}
	if qcap := n.cfg.ServerQueueCap; qcap > 0 {
		n.drainServerQ(now)
		if len(n.serverQ) >= qcap {
			n.serverShed++
			return 0, false
		}
	}
	headDone = n.Transfer(ServerID, to, head, now)
	if rest := total - head; rest > 0 {
		n.Transfer(ServerID, to, rest, now)
	}
	if n.cfg.ServerQueueCap > 0 {
		// The request occupies its slot until the uplink has pushed
		// its last byte; busyUntil is monotonic, so the queue stays
		// sorted by completion time.
		n.serverQ = append(n.serverQ, n.busyUntil[ServerID])
		if len(n.serverQ) > n.queuePeak {
			n.queuePeak = len(n.serverQ)
		}
	}
	return headDone, true
}

// QueueDelay returns how long a transfer from the endpoint would wait before
// starting at virtual time now.
func (n *Network) QueueDelay(id NodeID, now time.Duration) time.Duration {
	if busy := n.busyUntil[id]; busy > now {
		return busy - now
	}
	return 0
}

// ServerBytes returns the total bytes served by the server so far.
func (n *Network) ServerBytes() int64 { return n.serverBytes }

// PeerBytes returns the total bytes served by peers so far.
func (n *Network) PeerBytes() int64 { return n.peerBytes }

// ServerShed returns how many requests the bounded admission queue has
// turned away so far.
func (n *Network) ServerShed() int64 { return n.serverShed }

// ServerQueuePeak returns the high-water occupancy of the bounded
// admission queue (0 when unbounded).
func (n *Network) ServerQueuePeak() int { return n.queuePeak }

// ServerQueueLen returns the admission-queue occupancy at virtual time
// now (0 when unbounded).
func (n *Network) ServerQueueLen(now time.Duration) int {
	n.drainServerQ(now)
	return len(n.serverQ)
}

// Reset clears occupancy and statistics, keeping the latency model.
func (n *Network) Reset() {
	n.busyUntil = make(map[NodeID]time.Duration)
	n.serverBytes = 0
	n.peerBytes = 0
	n.serverQ = nil
	n.serverShed = 0
	n.queuePeak = 0
}
