package figures

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/socialtube/socialtube/internal/exp"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// ScaleSweep configures the scalability sweep: the §IV-C / Fig. 15
// "constant-vs-linear maintenance" claim measured end to end rather than
// modelled. The user population grows across Sizes while the catalog
// (channels, videos) stays fixed, so a growing audience shares a fixed
// content base. Under that regime NetTube's per-video overlays densify
// with N — every extra concurrent watcher is another neighbour candidate,
// so per-node links and probe traffic grow — while SocialTube's per-node
// link budget (N_l inner + N_h inter) is a protocol constant, so its
// per-node maintenance must stay flat.
type ScaleSweep struct {
	// Sizes are the user populations, one shard per entry.
	Sizes []int
	// Channels / Categories / VideoCountMultiplier fix the catalog
	// shared by every shard.
	Channels             int
	Categories           int
	VideoCountMultiplier float64
	// Sessions / VideosPerSession / WatchScale size the per-point
	// workload. The sweep default is deliberately small per user — the
	// total is Sizes summed, times three protocols.
	Sessions         int
	VideosPerSession int
	WatchScale       float64
	// ProbeInterval is the maintenance period, compressed to match
	// WatchScale so every session sees several probe rounds.
	ProbeInterval time.Duration
	// Seed drives every shard (trace and workload).
	Seed int64
	// Shards selects the engine: 0 runs each point on the classic
	// single-loop exp.Run; ≥1 runs it community-sharded (exp.RunSharded)
	// with that many worker goroutines advancing the per-category loops.
	// Deterministic point fields are byte-identical across Shards ≥ 1 (the
	// worker count is wall-clock only); they differ from the Shards=0
	// engine, whose RNG streams are global rather than per-community.
	Shards int
	// Progress, when non-nil, receives one line per trace build and per
	// completed point; paper-size sweeps run for minutes.
	Progress func(msg string)
}

// DefaultScaleSweep is the paper-scale sweep: 10k to 1M users over the
// Table I catalog (545 channels, ~100k videos).
func DefaultScaleSweep() ScaleSweep {
	return ScaleSweep{
		Sizes:                []int{10_000, 50_000, 100_000, 500_000, 1_000_000},
		Channels:             545,
		Categories:           18,
		VideoCountMultiplier: 4.4,
		Sessions:             1,
		VideosPerSession:     3,
		WatchScale:           0.05,
		ProbeInterval:        time.Minute,
		Seed:                 1,
	}
}

// TenMScaleSweep is the 10M-user scale point: one population an order of
// magnitude past the paper sweep's 1M ceiling, over the same fixed
// Table I catalog. The workload is trimmed to one video per session so
// the point stays at ~10M requests per protocol; it is meant to run on
// the sharded engine (Shards ≥ 1 via the -shards flag).
func TenMScaleSweep() ScaleSweep {
	sw := DefaultScaleSweep()
	sw.Sizes = []int{10_000_000}
	sw.Sessions = 1
	sw.VideosPerSession = 1
	return sw
}

// SmokeScaleSweep is the seconds-long variant for unit tests, CI and
// bench-short: same shape, toy populations.
func SmokeScaleSweep() ScaleSweep {
	return ScaleSweep{
		Sizes:            []int{200, 400, 800},
		Channels:         60,
		Categories:       8,
		Sessions:         1,
		VideosPerSession: 3,
		WatchScale:       0.05,
		ProbeInterval:    time.Minute,
		Seed:             1,
	}
}

// scaleFor assembles the per-shard Scale: the sweep's fixed catalog with
// one entry of Sizes as the population.
func (sw ScaleSweep) scaleFor(users int) Scale {
	return Scale{
		TraceChannels:        sw.Channels,
		TraceUsers:           users,
		Categories:           sw.Categories,
		Sessions:             sw.Sessions,
		VideosPerSession:     sw.VideosPerSession,
		WatchScale:           sw.WatchScale,
		VideoCountMultiplier: sw.VideoCountMultiplier,
		ProbeInterval:        sw.ProbeInterval,
		Seed:                 sw.Seed,
	}
}

func (sw ScaleSweep) progress(msg string) {
	if sw.Progress != nil {
		sw.Progress(msg)
	}
}

// ScaleEnv carries a point's environmental measurements — real heap and
// wall clock. They are recorded in BENCH_scale.json next to the
// deterministic fields but never enter the figure tables, so same-seed
// sweeps render identical tables.
type ScaleEnv struct {
	HeapHighWaterBytes uint64  `json:"heapHighWaterBytes"`
	WallMs             float64 `json:"wallMs"`
	// Workers and ShardLoad appear on sharded-engine points only: the
	// worker-pool size the run was launched with and the per-community
	// loop load. They live in Env — Canonical() zeroes them — because
	// busy/barrier-wait are wall-clock and Workers is a launch parameter;
	// the EventsFired column rides along to give the times a denominator.
	Workers   int            `json:"workers,omitempty"`
	ShardLoad []ShardLoadEnv `json:"shardLoad,omitempty"`
}

// ShardLoadEnv is one community loop's load in a sharded point: the
// events it fired, the wall time its engine ran, and the wall time the
// epoch barriers spent waiting past its own work for the slowest loop —
// the load-imbalance signal of the sharded engine.
type ShardLoadEnv struct {
	Shard         int     `json:"shard"`
	EventsFired   uint64  `json:"eventsFired"`
	BusyMs        float64 `json:"busyMs"`
	BarrierWaitMs float64 `json:"barrierWaitMs"`
}

// ScalePoint is one (population, protocol) cell of the sweep. Every field
// except Env is deterministic under a fixed seed.
type ScalePoint struct {
	Users    int    `json:"users"`
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Requests int64  `json:"requests"`
	// Hit rates by source, as fractions of all requests.
	CacheHitRate  float64 `json:"cacheHitRate"`
	PeerHitRate   float64 `json:"peerHitRate"`
	ServerHitRate float64 `json:"serverHitRate"`
	// Per-node overhead: query messages, maintenance probe messages
	// (run total and per probe round — the round rate is the Fig. 15
	// y-axis, independent of how long the run happened to last), and the
	// mean link count right after a session's last video.
	MessagesPerNode    float64 `json:"messagesPerNode"`
	ProbesPerNode      float64 `json:"probesPerNode"`
	ProbesPerNodeRound float64 `json:"probesPerNodeRound"`
	MeanLinks          float64 `json:"meanLinks"`
	// Memory accounting from the dense trace layout.
	TraceBytes   uint64  `json:"traceBytes"`
	BytesPerUser float64 `json:"bytesPerUser"`
	// Sharded-engine points only: the community cell count and the
	// cross-community lookup totals. Deterministic — byte-identical for
	// any worker count — so they sit outside Env.
	Cells         int   `json:"cells,omitempty"`
	RemoteLookups int64 `json:"remoteLookups,omitempty"`
	RemoteHits    int64 `json:"remoteHits,omitempty"`

	Env ScaleEnv `json:"env"`
}

// Canonical returns the point with its environmental block zeroed — the
// form determinism comparisons use.
func (p ScalePoint) Canonical() ScalePoint {
	p.Env = ScaleEnv{}
	return p
}

// sweepPoint reduces one run result to its sweep cell. probeInterval is
// the run's maintenance period, used to convert the probe total into a
// per-node per-round rate; workers is the sharded worker-pool size (0 on
// the single-engine path).
func sweepPoint(users int, protocol string, seed int64, probeInterval time.Duration, workers int, res *exp.Result, wall time.Duration) ScalePoint {
	p := ScalePoint{
		Users:        users,
		Protocol:     protocol,
		Seed:         seed,
		Requests:     res.Requests,
		TraceBytes:   res.Mem.TraceBytes,
		BytesPerUser: res.Mem.BytesPerUser,
		Env: ScaleEnv{
			HeapHighWaterBytes: res.Mem.HeapHighWater,
			WallMs:             float64(wall.Nanoseconds()) / 1e6,
		},
	}
	if res.Requests > 0 {
		p.CacheHitRate = float64(res.CacheHits.Value()) / float64(res.Requests)
		p.PeerHitRate = float64(res.PeerHits.Value()) / float64(res.Requests)
		p.ServerHitRate = float64(res.ServerHits.Value()) / float64(res.Requests)
	}
	if users > 0 {
		p.MessagesPerNode = float64(res.Messages.Value()) / float64(users)
		p.ProbesPerNode = float64(res.ProbeMessages.Value()) / float64(users)
		if rounds := float64(res.SimulatedTime) / float64(probeInterval); rounds > 0 {
			p.ProbesPerNodeRound = p.ProbesPerNode / rounds
		}
	}
	if k := len(res.LinksByVideoIndex); k > 0 {
		p.MeanLinks = res.LinksByVideoIndex[k-1].Mean()
	}
	if info := res.Sharded; info != nil {
		p.Cells = info.Cells
		p.RemoteLookups = info.RemoteLookups
		p.RemoteHits = info.RemoteHits
		p.Env.Workers = workers
		p.Env.ShardLoad = make([]ShardLoadEnv, 0, len(info.ShardLoad))
		for _, s := range info.ShardLoad {
			p.Env.ShardLoad = append(p.Env.ShardLoad, ShardLoadEnv{
				Shard:         s.Shard,
				EventsFired:   s.EventsFired,
				BusyMs:        float64(s.Busy.Nanoseconds()) / 1e6,
				BarrierWaitMs: float64(s.BarrierWait.Nanoseconds()) / 1e6,
			})
		}
	}
	return p
}

// FigScale bundles the sweep's output: the overhead-vs-N and
// hit-rate-vs-N curves, the memory curve, and the raw per-cell points
// (environmental block included) for BENCH_scale.json.
type FigScale struct {
	Overhead *metrics.Table
	HitRates *metrics.Table
	Memory   *metrics.Table
	Points   []ScalePoint
}

// String renders the three curve tables.
func (f *FigScale) String() string {
	return f.Overhead.String() + "\n" + f.HitRates.String() + "\n" + f.Memory.String()
}

// RunScaleSweep executes the sweep. Shards run strictly one population at
// a time — the sweep's live heap is bounded by its largest shard, not the
// sum — while the protocols inside a shard share one read-only trace and
// go through the GOMAXPROCS-bounded worker pool. Each cell is an
// independent single-threaded deterministic simulation, so the tables and
// the points' deterministic fields are bit-identical run over run.
func RunScaleSweep(sw ScaleSweep) (*FigScale, error) {
	if len(sw.Sizes) == 0 {
		return nil, fmt.Errorf("scale sweep: no sizes")
	}
	points := make([]ScalePoint, 0, len(sw.Sizes)*len(protoOrder))
	for _, n := range sw.Sizes {
		shard, err := sw.runShard(n)
		if err != nil {
			return nil, err
		}
		points = append(points, shard...)
	}
	return &FigScale{
		Overhead: scaleOverheadTable(points),
		HitRates: scaleHitRateTable(points),
		Memory:   scaleMemoryTable(points),
		Points:   points,
	}, nil
}

// runShard builds one shard's trace and runs every protocol over it,
// returning the cells in protoOrder. Protocols are built inside their
// worker so each one's node state is released as soon as its run ends.
func (sw ScaleSweep) runShard(users int) ([]ScalePoint, error) {
	s := sw.scaleFor(users)
	begin := time.Now()
	tr, err := s.BuildTrace()
	if err != nil {
		return nil, fmt.Errorf("scale %d: trace: %w", users, err)
	}
	tb := tr.Bytes()
	sw.progress(fmt.Sprintf("N=%d: trace %d channels / %d videos, %d bytes (%.1f/user), built in %v",
		users, len(tr.Channels), len(tr.Videos), tb, float64(tb)/float64(users),
		time.Since(begin).Round(time.Millisecond)))

	// The server's capacity keeps Table I's per-capita ratio (50 Mbps
	// per 10k users) as the population grows. With a fixed uplink the
	// queue at the server stretches the virtual timeline linearly in N,
	// and every per-run total inflates with it — the sweep would measure
	// server meltdown, not overlay scale. Server offload at fixed N is
	// Fig. 16's experiment, not this one's.
	netCfg := simnet.DefaultConfig()
	if users > 10_000 {
		netCfg.ServerUplinkBps = netCfg.ServerUplinkBps * int64(users) / 10_000
	}
	expCfg := s.expConfig()
	pts := make([]ScalePoint, len(protoOrder))
	runPoint := func(i int) error {
		name := protoOrder[i]
		start := time.Now()
		var (
			res    *exp.Result
			runErr error
		)
		if sw.Shards > 0 {
			res, runErr = exp.RunSharded(expCfg, tr, s.cellProtocol(name), netCfg,
				exp.ShardedOptions{Workers: sw.Shards})
		} else {
			proto, perr := s.Protocol(name, tr)
			if perr != nil {
				return fmt.Errorf("scale %d: build %s: %w", users, name, perr)
			}
			res, runErr = exp.Run(expCfg, tr, proto, netCfg)
		}
		if runErr != nil {
			return fmt.Errorf("scale %d: run %s: %w", users, name, runErr)
		}
		pts[i] = sweepPoint(users, name, sw.Seed, expCfg.ProbeInterval, sw.Shards, res, time.Since(start))
		sw.progress(fmt.Sprintf("N=%d %s: %d requests, peer %.3f, probes/node %.2f, heap %.1f MB, %v",
			users, name, pts[i].Requests, pts[i].PeerHitRate, pts[i].ProbesPerNode,
			float64(pts[i].Env.HeapHighWaterBytes)/1e6, time.Since(start).Round(time.Millisecond)))
		return nil
	}
	if sw.Shards > 0 {
		// The worker budget belongs to each point's shard loops; running
		// protocols concurrently on top would oversubscribe it.
		for i := range pts {
			if err := runPoint(i); err != nil {
				return nil, err
			}
		}
	} else if err := runConcurrently(len(protoOrder), runPoint); err != nil {
		return nil, err
	}
	return pts, nil
}

// cellProtocol adapts Scale.Protocol to the sharded runner's per-cell
// factory: each community cell gets its own protocol instance over the
// cell's renumbered trace, with the protocol RNG reseeded per cell (the
// same seed-and-cell derivation the sharded runner uses for its own
// streams) and the population-derived knobs — PA-VoD's ISP count —
// computed from the cell's own size.
func (s Scale) cellProtocol(name string) exp.CellProtocol {
	return func(cell int, cellTr *trace.Trace) (vod.Protocol, error) {
		cs := s
		cs.Seed = s.Seed*1_000_003 + int64(cell+1)
		cs.TraceUsers = len(cellTr.Users)
		return cs.Protocol(name, cellTr)
	}
}

// cell returns the sweep point for (users, protocol); the runner emits
// every cell, so a miss is a bug.
func cell(points []ScalePoint, users int, protocol string) ScalePoint {
	for _, p := range points {
		if p.Users == users && p.Protocol == protocol {
			return p
		}
	}
	return ScalePoint{Users: users, Protocol: protocol}
}

// sizesOf lists the distinct populations in first-seen (ascending) order.
func sizesOf(points []ScalePoint) []int {
	var sizes []int
	for _, p := range points {
		if len(sizes) == 0 || sizes[len(sizes)-1] != p.Users {
			sizes = append(sizes, p.Users)
		}
	}
	return sizes
}

func scaleOverheadTable(points []ScalePoint) *metrics.Table {
	t := metrics.NewTable(
		"Scale sweep — per-node maintenance vs N (probe msgs/node/round; links after last video)",
		"users", "st.probes", "nt.probes", "st.links", "nt.links", "st.msgs", "nt.msgs")
	for _, n := range sizesOf(points) {
		st := cell(points, n, "SocialTube")
		nt := cell(points, n, "NetTube")
		t.AddRow(n, st.ProbesPerNodeRound, nt.ProbesPerNodeRound, st.MeanLinks, nt.MeanLinks,
			st.MessagesPerNode, nt.MessagesPerNode)
	}
	return t
}

func scaleHitRateTable(points []ScalePoint) *metrics.Table {
	t := metrics.NewTable("Scale sweep — hit rates vs N",
		"users", "st.peer", "nt.peer", "pv.peer", "st.server", "nt.server", "pv.server")
	for _, n := range sizesOf(points) {
		st := cell(points, n, "SocialTube")
		nt := cell(points, n, "NetTube")
		pv := cell(points, n, "PA-VoD")
		t.AddRow(n, st.PeerHitRate, nt.PeerHitRate, pv.PeerHitRate,
			st.ServerHitRate, nt.ServerHitRate, pv.ServerHitRate)
	}
	return t
}

func scaleMemoryTable(points []ScalePoint) *metrics.Table {
	t := metrics.NewTable("Scale sweep — dense trace memory vs N",
		"users", "traceBytes", "bytesPerUser")
	for _, n := range sizesOf(points) {
		p := cell(points, n, "SocialTube")
		t.AddRow(n, p.TraceBytes, p.BytesPerUser)
	}
	return t
}

// AppendScalePoints appends one JSON line per point to path — the
// BENCH_scale.json convention: a grow-only JSONL log of sweep cells,
// environmental fields included, one run appended after another.
func AppendScalePoints(path string, points []ScalePoint) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
