package figures

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/socialtube/socialtube/internal/emu"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/trace"
)

// TakeoverEnv carries a takeover point's environmental measurements:
// wall time, time-to-takeover and every counter decided by real-socket
// races (when a survivor's gossip round declares the shard, which
// requests land before or after the declaration). They ride along in the
// bench file but stay out of determinism comparisons.
type TakeoverEnv struct {
	WallMs float64 `json:"wallMs"`
	// TakeoverMs is the delay between the shard outage beginning and the
	// first surviving replica declaring it dead (0 on variants without a
	// whole-shard outage).
	TakeoverMs float64 `json:"takeoverMs"`
	PeerHits   int64   `json:"peerHits"`
	ServerHits int64   `json:"serverHits"`
	CacheHits  int64   `json:"cacheHits"`
	// Failure-detection and re-registration traffic.
	DeclaredDead uint64 `json:"declaredDead"`
	Revived      uint64 `json:"revived"`
	Reroutes     uint64 `json:"reroutes"`
	Rejoins      uint64 `json:"rejoins"`
	HintsQueued  uint64 `json:"hintsQueued"`
	HintsReplay  uint64 `json:"hintsReplayed"`
	BreakerOpens uint64 `json:"breakerOpens"`
	RPCFailures  uint64 `json:"rpcFailures"`
}

// TakeoverPoint is one cell of the takeover figure: SocialTube on a
// sharded, replicated control plane losing a WHOLE shard (every replica)
// or suffering a 2-way partition mid-run. HitRate is the fraction of
// requests served at all; the figure's headline is that whole-shard
// death costs ~nothing because the survivors adopt the dead shard's
// channels, and a partition heals with zero lost registrations.
type TakeoverPoint struct {
	Variant  string `json:"variant"` // "baseline", "shardS-dead" or "partition-Gway"
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`
	// DeadShard names the killed shard (1-based; 0 when none) and Groups
	// the partition's side count (0 when none).
	DeadShard int `json:"deadShard,omitempty"`
	Groups    int `json:"groups,omitempty"`
	// Deterministic outcomes: the run is closed-loop, so the request
	// total is fixed by the workload and the failure count by the fault
	// schedule plus takeover.
	Requests int64   `json:"requests"`
	Failed   int64   `json:"failed"`
	HitRate  float64 `json:"hitRate"`

	Env TakeoverEnv `json:"env"`
}

// Canonical returns the point with its environmental block zeroed — the
// form determinism comparisons use.
func (p TakeoverPoint) Canonical() TakeoverPoint {
	p.Env = TakeoverEnv{}
	return p
}

// FigTakeoverResult bundles the figure's table with the raw points for
// BENCH_failover.json.
type FigTakeoverResult struct {
	Table  *metrics.Table
	Points []TakeoverPoint
}

// String renders the table.
func (f *FigTakeoverResult) String() string { return f.Table.String() }

func takeoverPoint(s EmuScale, cp emu.ControlPlaneConfig, variant string,
	deadShard, groups int, res *emu.ClusterResult) TakeoverPoint {
	requests := res.CacheHits + res.PeerHits + res.ServerHits
	hitRate := 1.0
	if requests > 0 {
		hitRate = 1 - float64(res.FailedRequests)/float64(requests)
	}
	return TakeoverPoint{
		Variant:   variant,
		Protocol:  res.Protocol,
		Seed:      s.Seed,
		Shards:    cp.Shards,
		Replicas:  cp.Replicas,
		DeadShard: deadShard,
		Groups:    groups,
		Requests:  requests,
		Failed:    res.FailedRequests,
		HitRate:   hitRate,
		Env: TakeoverEnv{
			WallMs:       float64(res.Elapsed.Nanoseconds()) / 1e6,
			TakeoverMs:   res.TakeoverMs,
			PeerHits:     res.PeerHits,
			ServerHits:   res.ServerHits,
			CacheHits:    res.CacheHits,
			DeclaredDead: res.Obs.ShardsDeclaredDead,
			Revived:      res.Obs.ShardsRevived,
			Reroutes:     res.Obs.TakeoverReroutes,
			Rejoins:      res.Obs.TakeoverRejoins,
			HintsQueued:  res.Obs.HintsQueued,
			HintsReplay:  res.Obs.HintsReplayed,
			BreakerOpens: res.Obs.BreakerOpens,
			RPCFailures:  res.Obs.RPCFailures,
		},
	}
}

// FigTakeover measures the partition-tolerant control plane end to end
// (default 2 shards x 2 replicas): one no-fault baseline, one run with a
// WHOLE shard (both replicas) dead for two workload units — recovery
// must come from gossip liveness declaring the shard dead and the
// survivors adopting its channels — and one run with a 2-way partition
// for two units, where both sides keep serving and hinted handoff plus
// the LWW merge re-converge the tables on heal. The plans inject no
// churn, so request totals are deterministic and hit rates compare
// directly against the baseline.
func FigTakeover(s EmuScale, tr *trace.Trace) (*FigTakeoverResult, error) {
	cp := emu.DefaultControlPlaneConfig()
	cp.RingSeed = s.Seed
	unit := s.outageUnit()
	// Suspicion timing scaled to the workload unit: gossip every unit/16
	// with sync exchanges bounded by unit/8, so three suspicion rounds
	// declare a dead shard well inside its two-unit outage even when
	// every round stalls on a dark partner.
	cp.GossipInterval = unit / 16
	cp.GossipTimeout = unit / 8
	cp.SuspicionRounds = 3
	t := metrics.NewTable(
		fmt.Sprintf("SocialTube hit rate, %dx%d control plane, whole-shard death and split brain for 2x%s (TCP emulation)",
			cp.Shards, cp.Replicas, unit),
		"variant", "requests", "failed", "hitRate", "deltaVsBaseline", "takeoverMs", "reroutes", "rejoins")
	run := func(plan *faults.Plan) (*emu.ClusterResult, error) {
		return s.runMode(tr, emu.ModeSocialTube, func(c *emu.ClusterConfig) {
			c.ControlPlane = &cp
			c.Faults = plan
			// Same tight retry policy as FigShardedOutage: a request's
			// budget is on the order of the suspicion window, so survival
			// comes from the fallback walk and takeover, not patience.
			c.RPCTimeout = 250 * time.Millisecond
			c.MaxRetries = 1
			c.RetryBackoff = 25 * time.Millisecond
		})
	}
	addRow := func(pt, base TakeoverPoint) {
		t.AddRow(pt.Variant, pt.Requests, pt.Failed, pt.HitRate,
			pt.HitRate-base.HitRate, pt.Env.TakeoverMs, pt.Env.Reroutes, pt.Env.Rejoins)
	}

	base, err := run(nil)
	if err != nil {
		return nil, err
	}
	basePoint := takeoverPoint(s, cp, "baseline", 0, 0, base)
	points := []TakeoverPoint{basePoint}
	addRow(basePoint, basePoint)

	dead, err := run(faults.ShardOutagePlan(s.Seed, unit, 1))
	if err != nil {
		return nil, err
	}
	deadPoint := takeoverPoint(s, cp, "shard1-dead", 1, 0, dead)
	points = append(points, deadPoint)
	addRow(deadPoint, basePoint)

	part, err := run(faults.PartitionPlan(s.Seed, unit, 2))
	if err != nil {
		return nil, err
	}
	partPoint := takeoverPoint(s, cp, "partition-2way", 0, 2, part)
	points = append(points, partPoint)
	addRow(partPoint, basePoint)

	return &FigTakeoverResult{Table: t, Points: points}, nil
}

// AppendTakeoverPoints appends one JSON line per point to path — same
// JSONL convention as AppendShardedOutagePoints, and by default the same
// BENCH_failover.json file (the points are self-describing via Variant).
func AppendTakeoverPoints(path string, points []TakeoverPoint) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
