package figures

import (
	"context"
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/exp"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
)

// churnUnit derives the fault plan's time base from the workload: one
// session cycle, i.e. a session's playback under time compression (the
// generated catalog has a ≈4-minute median video) plus the mean off
// period. ChurnPlan's wave, outage and burst then all land while nodes
// are still active regardless of scale.
func (s Scale) churnUnit() time.Duration {
	cfg := s.expConfig()
	watch := time.Duration(float64(s.VideosPerSession) * float64(4*time.Minute) * cfg.WatchScale)
	return watch + cfg.MeanOffTime
}

// peerHitRate is the fraction of requests the server never served
// (cache, prefix or peer delivery).
func peerHitRate(r *exp.Result) float64 {
	if r.Requests == 0 {
		return 0
	}
	return 1 - float64(r.ServerHits.Value())/float64(r.Requests)
}

// FigChurn compares churn resilience across the three protocols on the
// simulator: each protocol runs the standard workload twice — healthy,
// then under the standard ChurnPlan (a 30% crash wave, a tracker outage
// and a lossy latency burst) — and the table reports how far the peer
// hit rate degrades, how fast SocialTube's active repair reattaches
// neighbors, and the orphan fraction left behind after each crash.
// Baselines recover through probing alone, which is exactly the
// asymmetry the paper's §IV-C maintenance argument predicts.
func FigChurn(s Scale, tr *trace.Trace) (*FigSim, error) {
	// Protocols are stateful: every run needs a fresh instance.
	healthy, err := s.Protocols(tr)
	if err != nil {
		return nil, err
	}
	faulted, err := s.Protocols(tr)
	if err != nil {
		return nil, err
	}
	unit := s.churnUnit()
	n := len(protoOrder)
	results := make([]*exp.Result, 2*n) // [0,n): healthy, [n,2n): faulted
	err = runConcurrently(2*n, func(i int) error {
		name := protoOrder[i%n]
		var res *exp.Result
		var err error
		if i < n {
			res, err = exp.Run(s.expConfig(), tr, healthy[name], simnet.DefaultConfig())
		} else {
			res, err = exp.RunCtx(context.Background(), s.expConfig(), tr, faulted[name],
				simnet.DefaultConfig(), exp.Options{Faults: faults.ChurnPlan(s.Seed, unit)})
		}
		if err != nil {
			return fmt.Errorf("run %s: %w", name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Churn resilience under ChurnPlan(unit=%s) (simulator)", unit),
		"protocol", "healthyHit", "faultHit", "degradation", "repairMs", "orphanFrac", "crashes", "rejoins")
	for i, name := range protoOrder {
		hh := peerHitRate(results[i])
		rz := &results[n+i].Resilience
		fh := rz.HitRateUnderFaults()
		t.AddRow(name, hh, fh, hh-fh,
			rz.RepairLatencyMs.Mean(), rz.OrphanFraction.Mean(), rz.Crashes, rz.Rejoins)
	}
	return &FigSim{
		Table:    t,
		Counters: countersTable("Churn resilience — protocol counters (faulted runs)", protoOrder, results[n:]),
	}, nil
}
