package figures

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/socialtube/socialtube/internal/emu"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/trace"
)

// FailoverEnv carries a point's environmental measurements — wall clock
// and the measured handoff stall. They ride along in BENCH_failover.json
// but never enter determinism comparisons: handoff latency is real
// socket timing, different on every host.
type FailoverEnv struct {
	WallMs            float64 `json:"wallMs"`
	MeanHandoffWaitMs float64 `json:"meanHandoffWaitMs"`
}

// FailoverPoint is one protocol's cell of the failover figure. Every
// field except Env is deterministic under a fixed seed.
type FailoverPoint struct {
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	// Schedule parameters.
	Providers       int `json:"providers"`
	CachersPerVideo int `json:"cachersPerVideo"`
	Requests        int `json:"requests"`
	CrashEvery      int `json:"crashEvery"`
	// Outcomes of crashed requests.
	Crashed        int     `json:"crashed"`
	PeerCompleted  int     `json:"peerCompleted"`
	ServerRescues  int     `json:"serverRescues"`
	ServerRestarts int     `json:"serverRestarts"`
	NoRestartFrac  float64 `json:"noRestartFrac"`
	// Failover mechanics.
	HandoffAttempts int    `json:"handoffAttempts"`
	Handoffs        int    `json:"handoffs"`
	Messages        int    `json:"messages"`
	BreakerOpens    uint64 `json:"breakerOpens"`
	BreakerSkips    uint64 `json:"breakerSkips"`
	RPCFailures     uint64 `json:"rpcFailures"`

	Env FailoverEnv `json:"env"`
}

// Canonical returns the point with its environmental block zeroed — the
// form determinism comparisons use.
func (p FailoverPoint) Canonical() FailoverPoint {
	p.Env = FailoverEnv{}
	return p
}

// failoverPoint reduces one run to its figure cell.
func failoverPoint(cfg emu.FailoverConfig, res *emu.FailoverResult) FailoverPoint {
	waitMs := 0.0 // Mean is NaN when the protocol never handed off
	if res.Handoffs > 0 {
		waitMs = res.HandoffWaitMs.Mean()
	}
	return FailoverPoint{
		Protocol:        res.Protocol,
		Seed:            cfg.Seed,
		Providers:       cfg.Providers,
		CachersPerVideo: cfg.CachersPerVideo,
		Requests:        cfg.Requests,
		CrashEvery:      cfg.CrashEvery,
		Crashed:         res.Crashed,
		PeerCompleted:   res.PeerCompleted,
		ServerRescues:   res.ServerRescues,
		ServerRestarts:  res.ServerRestarts,
		NoRestartFrac:   res.NoRestartFraction(),
		HandoffAttempts: res.HandoffAttempts,
		Handoffs:        res.Handoffs,
		Messages:        res.Messages,
		BreakerOpens:    res.Obs.BreakerOpens,
		BreakerSkips:    res.Obs.BreakerSkips,
		RPCFailures:     res.Obs.RPCFailures,
		Env: FailoverEnv{
			WallMs:            float64(res.Elapsed.Nanoseconds()) / 1e6,
			MeanHandoffWaitMs: waitMs,
		},
	}
}

// FigFailoverResult bundles the figure's table with the raw per-protocol
// points for BENCH_failover.json.
type FigFailoverResult struct {
	Table  *metrics.Table
	Points []FailoverPoint
}

// String renders the table.
func (f *FigFailoverResult) String() string { return f.Table.String() }

// FigFailover measures delivery resilience under a seeded mid-stream
// provider-crash schedule: on every second request the provider serving
// chunk 0 is crashed the moment the chunk lands, and the table reports
// how often each protocol still finished without restarting delivery at
// the server. Replica placement is identical across protocols; what
// differs is discovery. SocialTube's channel overlay floods only peers
// that answer right now, so its candidate lists are live by
// construction; NetTube mixes live links with the tracker's stale
// per-video member lists; PA-VoD depends entirely on the tracker's
// watcher lists, which crashed watchers never leave.
func FigFailover(s EmuScale, tr *trace.Trace) (*FigFailoverResult, error) {
	t := metrics.NewTable(
		"Failover resilience under mid-stream provider crashes (TCP emulation)",
		"protocol", "crashed", "noRestart", "peerDone", "rescues", "restarts", "handoffs", "waitMs", "brkSkips")
	points := make([]FailoverPoint, 0, 3)
	for _, mode := range []emu.Mode{emu.ModePAVoD, emu.ModeSocialTube, emu.ModeNetTube} {
		cfg := emu.DefaultFailoverConfig(mode)
		cfg.Seed = s.Seed
		res, err := emu.RunFailover(cfg, tr)
		if err != nil {
			return nil, fmt.Errorf("failover %s: %w", mode, err)
		}
		t.AddRow(res.Protocol, res.Crashed, res.NoRestartFraction(), res.PeerCompleted,
			res.ServerRescues, res.ServerRestarts, res.Handoffs,
			res.HandoffWaitMs.Mean(), res.Obs.BreakerSkips)
		points = append(points, failoverPoint(cfg, res))
	}
	return &FigFailoverResult{Table: t, Points: points}, nil
}

// AppendFailoverPoints appends one JSON line per point to path — the
// BENCH_failover.json convention, mirroring AppendScalePoints.
func AppendFailoverPoints(path string, points []FailoverPoint) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
