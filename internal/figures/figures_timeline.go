package figures

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/socialtube/socialtube/internal/exp"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
)

// timelineWindow is the per-window width of the timeline figure: one
// session cycle (playback plus mean off period), so each window covers
// roughly one generation of sessions and the churn plan's crash wave,
// outage and burst each land in distinct windows.
func (s Scale) timelineWindow() time.Duration {
	return s.churnUnit()
}

// TimelinePoint is one (protocol, window) cell of the timeline figure.
// Every field is deterministic under a fixed seed — windows are keyed by
// simulated time, so the same seed yields byte-identical points for any
// engine layout — which is why the struct carries no environmental block.
type TimelinePoint struct {
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	// WindowMs is the window width; StartMs the window's start offset —
	// both in simulated milliseconds.
	WindowMs int64 `json:"windowMs"`
	StartMs  int64 `json:"startMs"`
	// Requests issued in the window and the fraction the server never
	// served (cache, prefix or peer delivery).
	Requests int64   `json:"requests"`
	HitRate  float64 `json:"hitRate"`
	// P50Ms / P99Ms summarize the window's startup-delay histogram
	// (0 when the window saw no non-cache request).
	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
	// ServerBytes is the server load filed into the window.
	ServerBytes int64 `json:"serverBytes"`
	// BreakerOpens counts circuit-breaker opens filed into the window.
	BreakerOpens int64 `json:"breakerOpens"`
}

// FigTimeline bundles the timeline figure's output: the per-window table,
// the faulted runs' counter summary, and the raw points for
// BENCH_timeline.json.
type FigTimeline struct {
	Table    *metrics.Table
	Counters *metrics.Table
	Points   []TimelinePoint
}

// String renders the window table followed by the counter summary.
func (f *FigTimeline) String() string {
	return f.Table.String() + "\n" + f.Counters.String()
}

// timelinePoints reduces one run's Timeline to its figure cells, one per
// window in ascending window order.
func timelinePoints(protocol string, seed int64, tl *obs.Timeline) []TimelinePoint {
	if tl == nil {
		return nil
	}
	var (
		requests     = tl.Series("requests")
		cacheHits    = tl.Series("cacheHits")
		peerHits     = tl.Series("peerHits")
		startup      = tl.Series("startupDelayMs")
		serverBytes  = tl.Series("serverBytes")
		breakerOpens = tl.Series("breakerOpens")
	)
	windowMs := tl.Window().Milliseconds()
	pts := make([]TimelinePoint, 0, tl.Windows())
	for i := 0; i < tl.Windows(); i++ {
		p := TimelinePoint{
			Protocol:     protocol,
			Seed:         seed,
			WindowMs:     windowMs,
			StartMs:      int64(i) * windowMs,
			Requests:     requests.Value(i),
			ServerBytes:  serverBytes.Value(i),
			BreakerOpens: breakerOpens.Value(i),
		}
		if p.Requests > 0 {
			p.HitRate = float64(cacheHits.Value(i)+peerHits.Value(i)) / float64(p.Requests)
		}
		if h := startup.HistAt(i); h != nil && h.Len() > 0 {
			p.P50Ms = h.Percentile(50)
			p.P99Ms = h.Percentile(99)
		}
		pts = append(pts, p)
	}
	return pts
}

// RunTimeline runs the three protocols through the standard workload under
// the standard ChurnPlan with the per-window telemetry recorder on, and
// renders hit rate, startup-delay percentiles, server load and breaker
// opens per simulated-time window — the degradation-and-recovery arc of
// the churn figure resolved in time instead of collapsed into run totals.
func RunTimeline(s Scale, tr *trace.Trace) (*FigTimeline, error) {
	protos, err := s.Protocols(tr)
	if err != nil {
		return nil, err
	}
	unit := s.churnUnit()
	window := s.timelineWindow()
	n := len(protoOrder)
	results := make([]*exp.Result, n)
	err = runConcurrently(n, func(i int) error {
		name := protoOrder[i]
		res, err := exp.RunCtx(context.Background(), s.expConfig(), tr, protos[name],
			simnet.DefaultConfig(), exp.Options{
				Faults:         faults.ChurnPlan(s.Seed, unit),
				TimelineWindow: window,
			})
		if err != nil {
			return fmt.Errorf("run %s: %w", name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Telemetry timeline under ChurnPlan(unit=%s), window=%s (simulator)", unit, window),
		"protocol", "window", "startMs", "requests", "hitRate", "p50Ms", "p99Ms", "serverMB", "brkOpens")
	var points []TimelinePoint
	for i, name := range protoOrder {
		pts := timelinePoints(name, s.Seed, results[i].Timeline)
		for w, p := range pts {
			t.AddRow(name, w, p.StartMs, p.Requests, p.HitRate, p.P50Ms, p.P99Ms,
				float64(p.ServerBytes)/1e6, p.BreakerOpens)
		}
		points = append(points, pts...)
	}
	return &FigTimeline{
		Table:    t,
		Counters: countersTable("Telemetry timeline — protocol counters", protoOrder, results),
		Points:   points,
	}, nil
}

// AppendTimelinePoints appends one JSON line per point to path — the
// BENCH_timeline.json convention, mirroring BENCH_scale.json: a grow-only
// JSONL log of timeline cells, one run appended after another.
func AppendTimelinePoints(path string, points []TimelinePoint) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
