package figures

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/socialtube/socialtube/internal/exp"
	"github.com/socialtube/socialtube/internal/load"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/simnet"
)

// LoadSweep configures the open-loop load figure: the three protocols
// driven by a rate profile (internal/load) instead of the closed-loop
// session replay, against a server with a bounded admission queue. Each
// RPS entry is one column of the figure; the sweep reports how startup
// delay (p50/p99/p999), server offload and shed rate move as the offered
// rate crosses the system's service capacity.
type LoadSweep struct {
	// RPS are the offered arrival rates, one sweep column per entry.
	RPS []float64
	// Mode shapes the profile around each RPS value (steady, ramp,
	// sweep, burst, diurnal — see the profile builder for how each
	// mode's knobs derive from the column's rate).
	Mode load.Mode
	// Duration is each column's offered-arrival window in virtual time.
	Duration time.Duration
	// QueueCap bounds the server's admission queue; 0 keeps the legacy
	// unbounded server and nothing is ever shed.
	QueueCap int
	// Flash, when non-nil, layers a flash crowd on every column: the
	// channel's viral video is slammed by the profile's flash share.
	Flash *load.FlashCrowd
	// Channels / Users / Categories size the fixed trace shared by
	// every column.
	Channels   int
	Users      int
	Categories int
	// WatchScale compresses playback (and chunk sizes) as in Scale.
	WatchScale float64
	// Seed drives the trace, the protocols and the arrival streams.
	Seed int64
	// Shards selects the engine, as in ScaleSweep: 0 runs each cell on
	// the classic single-loop exp.Run; ≥1 runs it community-sharded
	// with that many workers (deterministic fields byte-identical
	// across worker counts, different from the classic engine's).
	Shards int
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(msg string)
}

// DefaultLoadSweep is the standard overload arc at a small population:
// the low column is comfortably inside capacity, the middle sits near
// saturation, and the top column overruns the admission queue so the
// shed path is exercised on every run.
func DefaultLoadSweep() LoadSweep {
	return LoadSweep{
		RPS:        []float64{2, 6, 18},
		Mode:       load.Steady,
		Duration:   90 * time.Second,
		QueueCap:   32,
		Channels:   100,
		Users:      300,
		Categories: 10,
		WatchScale: 0.05,
		Seed:       1,
	}
}

// PaperLoadSweep widens the arc to the Table I catalog shape (545
// channels, 18 categories) over a 2k-user population, with columns
// scaled so the top one still overruns the default 50 Mbps uplink.
func PaperLoadSweep() LoadSweep {
	sw := DefaultLoadSweep()
	sw.RPS = []float64{4, 12, 36}
	sw.Duration = 120 * time.Second
	sw.Channels = 545
	sw.Users = 2000
	sw.Categories = 18
	return sw
}

// SmokeLoadSweep is the seconds-long variant for unit tests and CI:
// two columns, the top one saturating, over a toy trace.
func SmokeLoadSweep() LoadSweep {
	sw := DefaultLoadSweep()
	sw.RPS = []float64{3, 18}
	sw.Duration = 45 * time.Second
	sw.Channels = 60
	sw.Users = 200
	sw.Categories = 8
	return sw
}

// scale assembles the Scale the sweep's cells share. Sessions and
// VideosPerSession still size the exp.Config, but under Options.Load the
// session chains are driven by arrivals: one video per arrival keeps the
// offered rate and the request rate identical.
func (sw LoadSweep) scale() Scale {
	return Scale{
		TraceChannels:    sw.Channels,
		TraceUsers:       sw.Users,
		Categories:       sw.Categories,
		Sessions:         1,
		VideosPerSession: 1,
		WatchScale:       sw.WatchScale,
		Seed:             sw.Seed,
	}
}

// profile shapes one column's rate profile around its RPS value. Every
// mode averages roughly rps over the window so columns stay comparable
// across modes; the shapes differ in how the rate gets there.
func (sw LoadSweep) profile(rps float64) *load.Profile {
	p := &load.Profile{
		Mode:     sw.Mode,
		Seed:     sw.Seed,
		RPS:      rps,
		Duration: sw.Duration,
		Flash:    sw.Flash,
	}
	switch sw.Mode {
	case load.Ramp:
		// Climb through the column's rate: 20% to 180%.
		p.RPS = rps * 0.2
		p.EndRPS = rps * 1.8
	case load.Sweep:
		// Three plateaus bracketing the column's rate.
		p.RPS = rps * 0.5
		p.EndRPS = rps * 1.5
		p.Steps = 3
	case load.Burst:
		// A 3x spike over the middle fifth of the window.
		p.BurstRPS = rps * 3
		p.BurstAt = sw.Duration * 2 / 5
		p.BurstFor = sw.Duration / 5
	case load.Diurnal:
		// Two full day-cycles across the window, ±50%.
		p.Period = sw.Duration / 2
		p.Swing = 0.5
	}
	return p
}

func (sw LoadSweep) progress(msg string) {
	if sw.Progress != nil {
		sw.Progress(msg)
	}
}

// LoadEnv carries a cell's environmental measurements — wall clock and
// the sharded worker count. They ride along in BENCH_load.json but never
// enter the figure tables; Canonical() zeroes them for determinism
// comparisons.
type LoadEnv struct {
	WallMs  float64 `json:"wallMs"`
	Workers int     `json:"workers,omitempty"`
}

// LoadPoint is one (offered RPS, protocol) cell of the load figure.
// Every field except Env is deterministic under a fixed seed — in
// sharded cells for any worker count.
type LoadPoint struct {
	Protocol string  `json:"protocol"`
	Seed     int64   `json:"seed"`
	Mode     string  `json:"mode"`
	RPS      float64 `json:"rps"`
	QueueCap int     `json:"queueCap"`
	// Offered arrivals, the flash-crowd subset, and arrivals dropped
	// because every node was already mid-session.
	Offered      int64 `json:"offered"`
	FlashOffered int64 `json:"flashOffered,omitempty"`
	Busy         int64 `json:"busy"`
	// Requests the protocol actually saw (offered minus busy drops).
	Requests int64 `json:"requests"`
	// Startup-delay percentiles over served (non-shed) requests.
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	// ServerOffload is the fraction of requests peers or the local
	// cache served — the load the overlay absorbed.
	ServerOffload float64 `json:"serverOffload"`
	// Admission-queue accounting: requests served vs turned away, the
	// shed fraction of server-bound requests, and the queue's
	// high-water occupancy.
	ServerAdmitted int64   `json:"serverAdmitted"`
	ServerShed     int64   `json:"serverShed"`
	ShedRate       float64 `json:"shedRate"`
	QueuePeak      int     `json:"queuePeak"`

	Env LoadEnv `json:"env"`
}

// Canonical returns the point with its environmental block zeroed — the
// form determinism comparisons use.
func (p LoadPoint) Canonical() LoadPoint {
	p.Env = LoadEnv{}
	return p
}

// loadPoint reduces one cell's run result to its figure point.
func (sw LoadSweep) loadPoint(protocol string, rps float64, res *exp.Result, wall time.Duration) LoadPoint {
	p := LoadPoint{
		Protocol: protocol,
		Seed:     sw.Seed,
		Mode:     string(sw.Mode),
		RPS:      rps,
		QueueCap: sw.QueueCap,
		Requests: res.Requests,
		P50Ms:    res.StartupDelay.Percentile(50),
		P99Ms:    res.StartupDelay.Percentile(99),
		P999Ms:   res.StartupDelay.Percentile(99.9),
		Env: LoadEnv{
			WallMs:  float64(wall.Nanoseconds()) / 1e6,
			Workers: sw.Shards,
		},
	}
	if info := res.Load; info != nil {
		p.Offered = info.Offered
		p.FlashOffered = info.FlashOffered
		p.Busy = info.Busy
		p.QueuePeak = info.QueuePeak
	}
	if res.Requests > 0 {
		p.ServerOffload = float64(res.CacheHits.Value()+res.PeerHits.Value()) / float64(res.Requests)
	}
	p.ServerAdmitted = int64(res.Obs.ServerAdmitted)
	p.ServerShed = int64(res.Obs.ServerShed)
	if bound := p.ServerAdmitted + p.ServerShed; bound > 0 {
		p.ShedRate = float64(p.ServerShed) / float64(bound)
	}
	return p
}

// FigLoad bundles the load figure's output: the per-cell table and the
// raw points for BENCH_load.json.
type FigLoad struct {
	Table  *metrics.Table
	Points []LoadPoint
}

// String renders the figure table.
func (f *FigLoad) String() string {
	return f.Table.String()
}

// RunLoad executes the sweep: one fixed trace, len(RPS)×3 cells. Classic
// cells are independent single-threaded deterministic simulations and run
// concurrently; sharded cells run one at a time so the worker budget
// belongs to each cell's community loops.
func RunLoad(sw LoadSweep) (*FigLoad, error) {
	if len(sw.RPS) == 0 {
		return nil, fmt.Errorf("load sweep: no RPS columns")
	}
	for _, rps := range sw.RPS {
		if err := sw.profile(rps).Validate(); err != nil {
			return nil, fmt.Errorf("load sweep: rps %g: %w", rps, err)
		}
	}
	s := sw.scale()
	tr, err := s.BuildTrace()
	if err != nil {
		return nil, fmt.Errorf("load sweep: trace: %w", err)
	}
	netCfg := simnet.DefaultConfig()
	netCfg.ServerQueueCap = sw.QueueCap
	expCfg := s.expConfig()

	n := len(sw.RPS) * len(protoOrder)
	points := make([]LoadPoint, n)
	runCell := func(i int) error {
		rps := sw.RPS[i/len(protoOrder)]
		name := protoOrder[i%len(protoOrder)]
		prof := sw.profile(rps)
		start := time.Now()
		var (
			res    *exp.Result
			runErr error
		)
		if sw.Shards > 0 {
			res, runErr = exp.RunSharded(expCfg, tr, s.cellProtocol(name), netCfg,
				exp.ShardedOptions{Workers: sw.Shards, Load: prof})
		} else {
			proto, perr := s.Protocol(name, tr)
			if perr != nil {
				return fmt.Errorf("load rps %g: build %s: %w", rps, name, perr)
			}
			res, runErr = exp.RunCtx(context.Background(), expCfg, tr, proto, netCfg,
				exp.Options{Load: prof})
		}
		if runErr != nil {
			return fmt.Errorf("load rps %g: run %s: %w", rps, name, runErr)
		}
		points[i] = sw.loadPoint(name, rps, res, time.Since(start))
		p := points[i]
		sw.progress(fmt.Sprintf("rps %g %s: offered %d, shed %d (%.3f), p99 %.0f ms, %v",
			rps, name, p.Offered, p.ServerShed, p.ShedRate, p.P99Ms,
			time.Since(start).Round(time.Millisecond)))
		return nil
	}
	if sw.Shards > 0 {
		for i := 0; i < n; i++ {
			if err := runCell(i); err != nil {
				return nil, err
			}
		}
	} else if err := runConcurrently(n, runCell); err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Open-loop load — %s profile over %s, server queue cap %d (simulator)",
			sw.Mode, sw.Duration, sw.QueueCap),
		"rps", "protocol", "offered", "busy", "requests", "offload",
		"p50Ms", "p99Ms", "p999Ms", "shed", "shedRate", "qPeak")
	for _, p := range points {
		t.AddRow(p.RPS, p.Protocol, p.Offered, p.Busy, p.Requests, p.ServerOffload,
			p.P50Ms, p.P99Ms, p.P999Ms, p.ServerShed, p.ShedRate, p.QueuePeak)
	}
	return &FigLoad{Table: t, Points: points}, nil
}

// AppendLoadPoints appends one JSON line per point to path — the
// BENCH_load.json convention, mirroring BENCH_scale.json: a grow-only
// JSONL log of load cells, environmental fields included, one run
// appended after another.
func AppendLoadPoints(path string, points []LoadPoint) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
