package figures

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/trace"
)

func tinyScale() Scale {
	return Scale{
		TraceChannels:    60,
		TraceUsers:       150,
		Categories:       8,
		Sessions:         2,
		VideosPerSession: 5,
		WatchScale:       0.05,
		Seed:             1,
	}
}

func tinyTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := tinyScale().BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func requireRows(t *testing.T, tb fmt.Stringer, wantSubstring string) {
	t.Helper()
	out := tb.String()
	if !strings.Contains(out, wantSubstring) {
		t.Fatalf("table missing %q:\n%s", wantSubstring, out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Fatalf("table has no data rows:\n%s", out)
	}
}

func TestTraceFigures(t *testing.T) {
	tr := tinyTrace(t)
	tests := []struct {
		name string
		tb   *metrics.Table
		want string
	}{
		{"fig2", Fig02(tr), "Fig. 2"},
		{"fig3", Fig03(tr), "Fig. 3"},
		{"fig4", Fig04(tr), "Fig. 4"},
		{"fig5", Fig05(tr), "pearson"},
		{"fig6", Fig06(tr), "Fig. 6"},
		{"fig7", Fig07(tr), "Fig. 7"},
		{"fig8", Fig08(tr), "Fig. 8"},
		{"fig9", Fig09(tr), "zipf"},
		{"fig10", Fig10(tr, 2), "intraCategoryFraction"},
		{"fig11", Fig11(tr), "Fig. 11"},
		{"fig12", Fig12(tr), "similarity"},
		{"fig13", Fig13(tr), "interests"},
		{"fig15", Fig15(), "NetTube"},
		{"prefetch", PrefetchAccuracyTable(), "accuracy"},
		{"table1", Table1(tinyScale(), tr), "Table I"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			requireRows(t, tt.tb, tt.want)
		})
	}
}

func TestSimFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol simulation")
	}
	s := tinyScale()
	tr := tinyTrace(t)
	f16, err := Fig16a(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, f16, "SocialTube")
	f17, err := Fig17a(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, f17, "w/ PF")
	f18, err := Fig18a(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, f18, "NetTube")
	fc, err := FigChurn(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, fc, "repairMs")
}

func TestEmuFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster runs")
	}
	s := SmallEmuScale()
	s.Peers = 10
	s.Sessions = 1
	s.VideosPerSession = 4
	s.WatchTime = 5 * time.Millisecond
	tr, err := s.EmuTrace()
	if err != nil {
		t.Fatal(err)
	}
	f16, err := Fig16b(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, f16, "SocialTube")
	f18, err := Fig18b(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, f18, "NetTube")
	fo, err := FigOutage(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, fo, "outageServed")
}

func TestPaperScaleParameters(t *testing.T) {
	p := PaperScale()
	if p.TraceUsers != 10_000 || p.TraceChannels != 545 || p.Sessions != 25 || p.VideosPerSession != 10 {
		t.Fatalf("paper scale drifted from Table I: %+v", p)
	}
}
