package figures

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/socialtube/socialtube/internal/load"
)

// TestLoadSweepDeterminism pins the figure's reproducibility: two
// same-seed sweeps (flash crowd included) must render identical tables
// and byte-identical canonical points.
func TestLoadSweepDeterminism(t *testing.T) {
	sw := SmokeLoadSweep()
	sw.Flash = &load.FlashCrowd{Channel: 0, At: sw.Duration / 4, For: sw.Duration / 4}
	a, err := RunLoad(sw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(sw)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same-seed sweeps rendered different tables:\n%s\nvs\n%s", a, b)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		ja, _ := json.Marshal(a.Points[i].Canonical())
		jb, _ := json.Marshal(b.Points[i].Canonical())
		if string(ja) != string(jb) {
			t.Fatalf("point %d differs across same-seed sweeps:\n%s\nvs\n%s", i, ja, jb)
		}
	}
	var flash int64
	for _, p := range a.Points {
		flash += p.FlashOffered
	}
	if flash == 0 {
		t.Fatal("flash crowd configured but no flash arrivals offered")
	}
}

// TestLoadSweepShape pins the overload arc's structural invariants over
// the smoke sweep: every (rps, protocol) cell present in order, offered
// arrivals conserved into busy drops plus protocol requests, the bounded
// queue honored, and the top column actually saturating (sheds on every
// protocol) while the bottom column stays clean.
func TestLoadSweepShape(t *testing.T) {
	sw := SmokeLoadSweep()
	fig, err := RunLoad(sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sw.RPS) * len(protoOrder); len(fig.Points) != want {
		t.Fatalf("%d points, want %d", len(fig.Points), want)
	}
	for i, p := range fig.Points {
		wantRPS := sw.RPS[i/len(protoOrder)]
		wantProto := protoOrder[i%len(protoOrder)]
		if p.RPS != wantRPS || p.Protocol != wantProto {
			t.Fatalf("point %d is (%g, %s), want (%g, %s)", i, p.RPS, p.Protocol, wantRPS, wantProto)
		}
		if p.Offered == 0 {
			t.Errorf("%g %s: no offered arrivals", p.RPS, p.Protocol)
		}
		if p.Offered != p.Busy+p.Requests {
			t.Errorf("%g %s: offered %d != busy %d + requests %d",
				p.RPS, p.Protocol, p.Offered, p.Busy, p.Requests)
		}
		if p.QueuePeak > sw.QueueCap {
			t.Errorf("%g %s: queue peak %d exceeds cap %d", p.RPS, p.Protocol, p.QueuePeak, sw.QueueCap)
		}
		if p.ServerShed > 0 && p.ShedRate <= 0 {
			t.Errorf("%g %s: shed %d but shed rate %g", p.RPS, p.Protocol, p.ServerShed, p.ShedRate)
		}
		low, high := i/len(protoOrder) == 0, i/len(protoOrder) == len(sw.RPS)-1
		if low && p.ServerShed != 0 {
			t.Errorf("%g %s: bottom column shed %d requests", p.RPS, p.Protocol, p.ServerShed)
		}
		if high && p.ServerShed == 0 {
			t.Errorf("%g %s: top column shed nothing — sweep no longer saturates", p.RPS, p.Protocol)
		}
	}
}

// TestLoadSweepShardedWorkerInvariance pins the sharded engine's
// layout-independence on the load figure: 1 vs 4 workers over the same
// seed must produce byte-identical canonical points.
func TestLoadSweepShardedWorkerInvariance(t *testing.T) {
	sw := SmokeLoadSweep()
	sw.RPS = sw.RPS[len(sw.RPS)-1:] // the saturating column exercises shed merging
	sw.Shards = 1
	a, err := RunLoad(sw)
	if err != nil {
		t.Fatal(err)
	}
	sw.Shards = 4
	b, err := RunLoad(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(protoOrder) || len(b.Points) != len(a.Points) {
		t.Fatalf("point counts: %d and %d, want %d", len(a.Points), len(b.Points), len(protoOrder))
	}
	for i := range a.Points {
		ja, _ := json.Marshal(a.Points[i].Canonical())
		jb, _ := json.Marshal(b.Points[i].Canonical())
		if string(ja) != string(jb) {
			t.Fatalf("point %d differs between 1 and 4 workers:\n%s\nvs\n%s", i, ja, jb)
		}
	}
}

// TestAppendLoadPoints pins the BENCH_load.json convention: appending
// twice grows the JSONL log, every line parses back into a LoadPoint, and
// the canonical form round-trips byte-identically.
func TestAppendLoadPoints(t *testing.T) {
	sw := SmokeLoadSweep()
	sw.RPS = sw.RPS[:1]
	fig, err := RunLoad(sw)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	if err := AppendLoadPoints(path, fig.Points); err != nil {
		t.Fatal(err)
	}
	if err := AppendLoadPoints(path, fig.Points); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []LoadPoint
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var p LoadPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		got = append(got, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(fig.Points); len(got) != want {
		t.Fatalf("%d lines, want %d", len(got), want)
	}
	for i, p := range got {
		ja, _ := json.Marshal(p.Canonical())
		jb, _ := json.Marshal(fig.Points[i%len(fig.Points)].Canonical())
		if string(ja) != string(jb) {
			t.Fatalf("line %d did not round-trip:\n%s\nvs\n%s", i, ja, jb)
		}
	}
}
