package figures

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func failoverScale() EmuScale {
	return EmuScale{
		Peers:            24,
		Sessions:         2,
		VideosPerSession: 6,
		WatchTime:        5 * time.Millisecond,
		Seed:             1,
	}
}

// TestFailoverOrdering pins the figure's headline: under the standard
// mid-stream provider-crash schedule, SocialTube's community cache keeps
// delivery off the server better than NetTube's bounded per-video
// replicas, which in turn beat PA-VoD's cache-less watcher lists. The
// schedule is progress-keyed and seeded, so the ordering is exact, not
// statistical.
func TestFailoverOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster runs")
	}
	s := failoverScale()
	tr, err := s.EmuTrace()
	if err != nil {
		t.Fatal(err)
	}
	f, err := FigFailover(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	requireRows(t, f, "noRestart")
	frac := map[string]float64{}
	for _, p := range f.Points {
		frac[p.Protocol] = p.NoRestartFrac
		if p.Crashed == 0 {
			t.Errorf("%s: schedule crashed no providers", p.Protocol)
		}
	}
	st, nt, pv := frac["SocialTube"], frac["NetTube"], frac["PA-VoD"]
	if !(st > nt && nt > pv) {
		t.Fatalf("no-restart ordering broken: SocialTube %.3f, NetTube %.3f, PA-VoD %.3f", st, nt, pv)
	}
	for _, p := range f.Points {
		if p.Protocol == "SocialTube" && p.Handoffs == 0 {
			t.Error("SocialTube never handed off mid-stream despite crashes")
		}
	}
}

// TestFailoverDeterministic runs the whole figure twice under one seed
// and requires the canonical points (environmental block zeroed) to be
// byte-identical JSON.
func TestFailoverDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster runs")
	}
	s := failoverScale()
	tr, err := s.EmuTrace()
	if err != nil {
		t.Fatal(err)
	}
	canonical := func() []byte {
		t.Helper()
		f, err := FigFailover(s, tr)
		if err != nil {
			t.Fatal(err)
		}
		pts := make([]FailoverPoint, len(f.Points))
		for i, p := range f.Points {
			pts[i] = p.Canonical()
		}
		b, err := json.Marshal(pts)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := canonical(), canonical()
	if string(a) != string(b) {
		t.Fatalf("same-seed failover points differ:\n%s\n%s", a, b)
	}
}

// TestAppendFailoverPoints checks the BENCH_failover.json appender writes
// one parseable JSON line per point and appends across calls.
func TestAppendFailoverPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failover.json")
	pts := []FailoverPoint{
		{Protocol: "SocialTube", Seed: 1, Requests: 16, NoRestartFrac: 1},
		{Protocol: "NetTube", Seed: 1, Requests: 16, NoRestartFrac: 0.75},
	}
	if err := AppendFailoverPoints(path, pts); err != nil {
		t.Fatal(err)
	}
	if err := AppendFailoverPoints(path, pts[:1]); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var p FailoverPoint
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("appended %d lines, want 3", n)
	}
}
