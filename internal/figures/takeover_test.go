package figures

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func takeoverScale() EmuScale {
	return EmuScale{
		Peers:            24,
		Sessions:         2,
		VideosPerSession: 6,
		WatchTime:        5 * time.Millisecond,
		Seed:             1,
	}
}

// TestTakeoverRecovers pins the takeover figure's headline on a small
// scale: with a whole shard (every replica) dead for two units, the
// survivors declare the shard, peers reroute onto them, and the run
// loses zero requests — same for the 2-way partition variant.
func TestTakeoverRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster runs")
	}
	s := takeoverScale()
	tr, err := s.EmuTrace()
	if err != nil {
		t.Fatal(err)
	}
	f, err := FigTakeover(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != 3 {
		t.Fatalf("want baseline + shard-dead + partition points, got %d", len(f.Points))
	}
	for _, p := range f.Points {
		if p.Failed != 0 {
			t.Errorf("%s: lost %d requests; want 0", p.Variant, p.Failed)
		}
		if p.Requests == 0 {
			t.Errorf("%s: served nothing", p.Variant)
		}
	}
	dead := f.Points[1]
	if dead.Variant != "shard1-dead" {
		t.Fatalf("point order changed: %q", dead.Variant)
	}
	if dead.Env.DeclaredDead == 0 || dead.Env.TakeoverMs <= 0 {
		t.Errorf("shard death never declared: declared=%d takeoverMs=%v",
			dead.Env.DeclaredDead, dead.Env.TakeoverMs)
	}
	if dead.Env.Reroutes == 0 {
		t.Error("no request rerouted to a takeover owner")
	}
}

// TestTakeoverDeterministic runs the figure twice under one seed and
// requires the canonical points (environmental block zeroed) to be
// byte-identical JSON — the determinism contract of the bench file.
func TestTakeoverDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster runs")
	}
	s := takeoverScale()
	tr, err := s.EmuTrace()
	if err != nil {
		t.Fatal(err)
	}
	canonical := func() []byte {
		t.Helper()
		f, err := FigTakeover(s, tr)
		if err != nil {
			t.Fatal(err)
		}
		pts := make([]TakeoverPoint, len(f.Points))
		for i, p := range f.Points {
			pts[i] = p.Canonical()
		}
		b, err := json.Marshal(pts)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := canonical(), canonical()
	if string(a) != string(b) {
		t.Fatalf("same-seed takeover points differ:\n%s\n%s", a, b)
	}
}

// TestAppendTakeoverPoints checks the BENCH_failover.json appender
// writes one parseable JSON line per point and appends across calls.
func TestAppendTakeoverPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "takeover.json")
	pts := []TakeoverPoint{
		{Variant: "baseline", Protocol: "SocialTube", Seed: 1, Shards: 2, Replicas: 2, Requests: 16, HitRate: 1},
		{Variant: "shard1-dead", Protocol: "SocialTube", Seed: 1, Shards: 2, Replicas: 2, DeadShard: 1, Requests: 16, HitRate: 1,
			Env: TakeoverEnv{TakeoverMs: 12.5, Reroutes: 3}},
	}
	if err := AppendTakeoverPoints(path, pts); err != nil {
		t.Fatal(err)
	}
	if err := AppendTakeoverPoints(path, pts[:1]); err != nil {
		t.Fatal(err)
	}
	fl, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	var lines int
	sc := bufio.NewScanner(fl)
	for sc.Scan() {
		var p TakeoverPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("line %d unparseable: %v", lines, err)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("want 3 JSONL lines, got %d", lines)
	}
}
