package figures

import (
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/emu"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
)

// EmuScale sizes the TCP emulation (the PlanetLab substitute).
type EmuScale struct {
	// Peers is the number of TCP nodes (paper: 250 PlanetLab hosts).
	Peers int
	// Sessions per peer (paper: 50).
	Sessions int
	// VideosPerSession per session (paper: 10).
	VideosPerSession int
	// WatchTime is the emulated playback per video.
	WatchTime time.Duration
	// Seed drives the workload.
	Seed int64
	// MetricsAddr, when non-empty, serves live cluster metrics on
	// GET <addr>/metrics while each emulated run is in flight (append
	// ?format=prom for Prometheus exposition).
	MetricsAddr string
	// Pprof mounts net/http/pprof on the metrics listener.
	Pprof bool
	// Tracer, when non-nil, receives every emulated run's event stream
	// (the -trace-out path). It must be safe for concurrent Emit: peer
	// session loops emit in parallel.
	Tracer obs.Tracer
}

// SmallEmuScale returns a seconds-long emulation.
func SmallEmuScale() EmuScale {
	return EmuScale{
		Peers:            64,
		Sessions:         3,
		VideosPerSession: 8,
		WatchTime:        20 * time.Millisecond,
		Seed:             1,
	}
}

// EmuTrace generates the PlanetLab-style trace of §V: 6 categories of 10
// channels with 40 videos each (2,400 videos), scaled to the peer count.
func (s EmuScale) EmuTrace() (*trace.Trace, error) {
	cfg := trace.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Categories = 6
	cfg.Channels = 60
	cfg.Users = s.Peers
	cfg.MaxVideosPerChannel = 40
	cfg.MaxInterestsPerUser = 6
	return trace.Generate(cfg)
}

func (s EmuScale) clusterConfig(mode emu.Mode) emu.ClusterConfig {
	cfg := emu.DefaultClusterConfig(mode)
	cfg.Peers = s.Peers
	cfg.Sessions = s.Sessions
	cfg.VideosPerSession = s.VideosPerSession
	cfg.WatchTime = s.WatchTime
	cfg.MeanOffTime = s.WatchTime
	cfg.Seed = s.Seed
	// PA-VoD's ISP-localized assistance, as in the simulator baseline:
	// one ISP per ≈50 emulated peers once the cluster is big enough.
	if s.Peers >= 100 {
		cfg.Tracker.ISPs = s.Peers / 50
	}
	cfg.MetricsAddr = s.MetricsAddr
	cfg.PprofEnabled = s.Pprof
	cfg.Tracer = s.Tracer
	if s.MetricsAddr != "" {
		cfg.OnMetricsAddr = func(addr string) {
			fmt.Printf("# live metrics: http://%s/metrics\n", addr)
		}
	}
	return cfg
}

func (s EmuScale) runMode(tr *trace.Trace, mode emu.Mode, mutate func(*emu.ClusterConfig)) (*emu.ClusterResult, error) {
	cfg := s.clusterConfig(mode)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := emu.RunCluster(cfg, tr)
	if err != nil {
		return nil, fmt.Errorf("emulate %s: %w", mode, err)
	}
	return res, nil
}

// Fig16b prints normalized peer bandwidth percentiles per protocol over the
// TCP emulation.
func Fig16b(s EmuScale, tr *trace.Trace) (*metrics.Table, error) {
	t := metrics.NewTable("Fig. 16(b) — normalized peer bandwidth (TCP emulation)",
		"protocol", "p1", "p50", "p99")
	for _, mode := range []emu.Mode{emu.ModePAVoD, emu.ModeSocialTube, emu.ModeNetTube} {
		res, err := s.runMode(tr, mode, nil)
		if err != nil {
			return nil, err
		}
		p1, p50, p99 := res.NormalizedPeerBandwidthPercentiles()
		t.AddRow(res.Protocol, p1, p50, p99)
	}
	return t, nil
}

// Fig17b prints startup delay with and without prefetching per protocol
// over the TCP emulation.
func Fig17b(s EmuScale, tr *trace.Trace) (*metrics.Table, error) {
	t := metrics.NewTable("Fig. 17(b) — startup delay (TCP emulation)",
		"variant", "meanMs", "p50Ms", "p99Ms")
	variants := []struct {
		name     string
		mode     emu.Mode
		prefetch bool
	}{
		{"PA-VoD", emu.ModePAVoD, false},
		{"SocialTube w/ PF", emu.ModeSocialTube, true},
		{"SocialTube w/o PF", emu.ModeSocialTube, false},
		{"NetTube w/ PF", emu.ModeNetTube, true},
		{"NetTube w/o PF", emu.ModeNetTube, false},
	}
	for _, variant := range variants {
		variant := variant
		res, err := s.runMode(tr, variant.mode, func(c *emu.ClusterConfig) {
			if !variant.prefetch {
				c.PrefetchCount = 0
			}
		})
		if err != nil {
			return nil, err
		}
		d := res.StartupDelay.Summary()
		t.AddRow(variant.name, d.Mean, d.P50, d.P99)
	}
	return t, nil
}

// outageUnit derives the emu fault plan's time base from the workload:
// one session of playback (the cluster sets MeanOffTime equal to
// WatchTime), floored so the outage window stays wide enough to matter
// against real socket timing.
func (s EmuScale) outageUnit() time.Duration {
	u := time.Duration(s.VideosPerSession) * 2 * s.WatchTime
	if u < 100*time.Millisecond {
		u = 100 * time.Millisecond
	}
	return u
}

// FigOutage measures service continuity through the standard OutagePlan
// (a 20% crash wave, then the tracker dark for one unit) over the TCP
// emulation. The retry policy is tightened so a request's budget is on
// the order of the outage window: what survives did so via the local
// cache, peer links formed before the outage, or a late retry.
func FigOutage(s EmuScale, tr *trace.Trace) (*metrics.Table, error) {
	unit := s.outageUnit()
	t := metrics.NewTable(
		fmt.Sprintf("Tracker outage resilience under OutagePlan(unit=%s) (TCP emulation)", unit),
		"protocol", "outageReqs", "outageServed", "failed", "crashes", "rejoins", "serverHits")
	for _, mode := range []emu.Mode{emu.ModePAVoD, emu.ModeSocialTube, emu.ModeNetTube} {
		res, err := s.runMode(tr, mode, func(c *emu.ClusterConfig) {
			c.Faults = faults.OutagePlan(s.Seed, unit)
			c.RPCTimeout = 250 * time.Millisecond
			c.MaxRetries = 1
			c.RetryBackoff = 25 * time.Millisecond
		})
		if err != nil {
			return nil, err
		}
		served := 0.0
		if res.OutageRequests > 0 {
			served = float64(res.OutageServed) / float64(res.OutageRequests)
		}
		t.AddRow(res.Protocol, res.OutageRequests, served, res.FailedRequests,
			res.Crashes, res.Rejoins, res.ServerHits)
	}
	return t, nil
}

// Fig18b prints maintenance overhead versus videos watched over the TCP
// emulation.
func Fig18b(s EmuScale, tr *trace.Trace) (*metrics.Table, error) {
	st, err := s.runMode(tr, emu.ModeSocialTube, nil)
	if err != nil {
		return nil, err
	}
	nt, err := s.runMode(tr, emu.ModeNetTube, nil)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Fig. 18(b) — maintenance overhead vs videos watched (TCP emulation)",
		"videosWatched", "SocialTube", "NetTube")
	for k := 0; k < s.VideosPerSession; k++ {
		t.AddRow(k+1, st.LinksByVideoIndex[k].Mean(), nt.LinksByVideoIndex[k].Mean())
	}
	return t, nil
}
