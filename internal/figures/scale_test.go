package figures

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/socialtube/socialtube/internal/core"
)

// testSweep trims the smoke sweep to two shards so the determinism test's
// two full executions stay inside the unit-test budget.
func testSweep() ScaleSweep {
	sw := SmokeScaleSweep()
	sw.Sizes = []int{150, 450}
	return sw
}

// TestScaleSweepDeterministic pins the acceptance criterion: at a fixed
// seed the sweep's tables and every deterministic point field are
// bit-identical run over run (only the Env block — wall clock, heap — may
// differ).
func TestScaleSweepDeterministic(t *testing.T) {
	a, err := RunScaleSweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScaleSweep(testSweep())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same-seed sweeps rendered different tables:\n%s\nvs\n%s", a, b)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		ja, _ := json.Marshal(a.Points[i].Canonical())
		jb, _ := json.Marshal(b.Points[i].Canonical())
		if string(ja) != string(jb) {
			t.Fatalf("point %d differs across same-seed sweeps:\n%s\nvs\n%s", i, ja, jb)
		}
	}
}

// TestScaleSweepShape pins the sweep's structural invariants: every
// (population, protocol) cell present in order, full workloads completing,
// memory accounting consistent, and the protocols' maintenance fingerprints
// (SocialTube's link budget bounded by N_l+N_h, PA-VoD with no overlay at
// all, NetTube's links growing with the audience on a fixed catalog).
func TestScaleSweepShape(t *testing.T) {
	sw := testSweep()
	f, err := RunScaleSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sw.Sizes) * len(protoOrder); len(f.Points) != want {
		t.Fatalf("%d points, want %d", len(f.Points), want)
	}
	budget := float64(core.DefaultConfig().InnerLinks + core.DefaultConfig().InterLinks)
	for i, p := range f.Points {
		wantUsers := sw.Sizes[i/len(protoOrder)]
		wantProto := protoOrder[i%len(protoOrder)]
		if p.Users != wantUsers || p.Protocol != wantProto {
			t.Fatalf("point %d is (%d, %s), want (%d, %s)", i, p.Users, p.Protocol, wantUsers, wantProto)
		}
		if want := int64(p.Users * sw.Sessions * sw.VideosPerSession); p.Requests != want {
			t.Errorf("(%d, %s): %d requests, want %d", p.Users, p.Protocol, p.Requests, want)
		}
		if p.TraceBytes == 0 || p.BytesPerUser != float64(p.TraceBytes)/float64(p.Users) {
			t.Errorf("(%d, %s): inconsistent memory accounting: %d bytes, %f/user",
				p.Users, p.Protocol, p.TraceBytes, p.BytesPerUser)
		}
		if sum := p.CacheHitRate + p.PeerHitRate + p.ServerHitRate; sum < 0.999 || sum > 1.001 {
			t.Errorf("(%d, %s): hit rates sum to %f", p.Users, p.Protocol, sum)
		}
		switch p.Protocol {
		case "SocialTube":
			if p.MeanLinks > budget {
				t.Errorf("N=%d: SocialTube mean links %f exceed the N_l+N_h budget %f",
					p.Users, p.MeanLinks, budget)
			}
			if p.ProbesPerNode == 0 {
				t.Errorf("N=%d: SocialTube ran no maintenance probes", p.Users)
			}
			if p.ProbesPerNodeRound == 0 {
				t.Errorf("N=%d: SocialTube per-round probe rate not normalized", p.Users)
			}
		case "PA-VoD":
			if p.ProbesPerNode != 0 || p.MeanLinks != 0 {
				t.Errorf("N=%d: PA-VoD has overlay maintenance (probes %f, links %f)",
					p.Users, p.ProbesPerNode, p.MeanLinks)
			}
		}
	}
	// The sweep's reason to exist: on a fixed catalog, NetTube's per-node
	// links grow with the audience.
	small := cell(f.Points, sw.Sizes[0], "NetTube")
	large := cell(f.Points, sw.Sizes[len(sw.Sizes)-1], "NetTube")
	if large.MeanLinks <= small.MeanLinks {
		t.Errorf("NetTube links did not grow with N: %f at N=%d, %f at N=%d",
			small.MeanLinks, small.Users, large.MeanLinks, large.Users)
	}
}

// TestScaleSweepSharded pins the sharded sweep path: points carry the
// community-cell block, full workloads still complete, and the
// deterministic fields are byte-identical across worker counts — the
// Shards knob may only move wall clock and the Env block.
func TestScaleSweepSharded(t *testing.T) {
	sw := testSweep()
	sw.Sizes = []int{150}
	sw.Shards = 1
	a, err := RunScaleSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	sw.Shards = 4
	b, err := RunScaleSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(protoOrder) || len(b.Points) != len(a.Points) {
		t.Fatalf("point counts: %d and %d, want %d", len(a.Points), len(b.Points), len(protoOrder))
	}
	for i := range a.Points {
		ja, _ := json.Marshal(a.Points[i].Canonical())
		jb, _ := json.Marshal(b.Points[i].Canonical())
		if string(ja) != string(jb) {
			t.Fatalf("point %d differs between 1 and 4 workers:\n%s\nvs\n%s", i, ja, jb)
		}
	}
	for _, p := range b.Points {
		if p.Cells != sw.Categories {
			t.Errorf("%s: %d cells, want %d", p.Protocol, p.Cells, sw.Categories)
		}
		if want := int64(p.Users * sw.Sessions * sw.VideosPerSession); p.Requests != want {
			t.Errorf("%s: %d requests, want %d", p.Protocol, p.Requests, want)
		}
		if sum := p.CacheHitRate + p.PeerHitRate + p.ServerHitRate; sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: hit rates sum to %f", p.Protocol, sum)
		}
		if p.Env.Workers != 4 {
			t.Errorf("%s: env records %d workers, want 4", p.Protocol, p.Env.Workers)
		}
		if len(p.Env.ShardLoad) != p.Cells {
			t.Errorf("%s: %d shard-load rows for %d cells", p.Protocol, len(p.Env.ShardLoad), p.Cells)
		}
		if p.Protocol == "SocialTube" && p.RemoteHits > p.RemoteLookups {
			t.Errorf("remote hits %d exceed lookups %d", p.RemoteHits, p.RemoteLookups)
		}
	}
	// The legacy path's points must not grow the sharded block.
	legacy := testSweep()
	legacy.Sizes = []int{150}
	c, err := RunScaleSweep(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Cells != 0 || p.Env.Workers != 0 || p.Env.ShardLoad != nil {
			t.Fatalf("%s: single-engine point carries sharded fields: %+v", p.Protocol, p)
		}
	}
}

// TestAppendScalePoints pins the BENCH_scale.json convention: one JSON
// line per point, appended across runs, decodable back into points.
func TestAppendScalePoints(t *testing.T) {
	pts := []ScalePoint{
		{Users: 100, Protocol: "SocialTube", Seed: 1, Requests: 300},
		{Users: 100, Protocol: "NetTube", Seed: 1, Requests: 300},
	}
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := AppendScalePoints(path, pts); err != nil {
		t.Fatal(err)
	}
	if err := AppendScalePoints(path, pts[:1]); err != nil {
		t.Fatal(err)
	}
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	var got []ScalePoint
	sc := bufio.NewScanner(file)
	for sc.Scan() {
		var p ScalePoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		got = append(got, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d lines after two appends, want 3", len(got))
	}
	if got[2].Protocol != "SocialTube" || got[1].Protocol != "NetTube" {
		t.Fatalf("append order lost: %+v", got)
	}
}
