package figures

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/socialtube/socialtube/internal/emu"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/trace"
)

// ShardedOutageEnv carries a point's environmental measurements; like
// FailoverEnv they ride along in the bench file but stay out of
// determinism comparisons. The cache/peer/server source split and the
// breaker counters live here because they are decided by real-socket
// races (which replica answers first, when a breaker trips) — only the
// request total and the failure count are schedule-determined.
type ShardedOutageEnv struct {
	WallMs       float64 `json:"wallMs"`
	PeerHits     int64   `json:"peerHits"`
	ServerHits   int64   `json:"serverHits"`
	CacheHits    int64   `json:"cacheHits"`
	BreakerOpens uint64  `json:"breakerOpens"`
	BreakerSkips uint64  `json:"breakerSkips"`
	RPCFailures  uint64  `json:"rpcFailures"`
}

// ShardedOutagePoint is one cell of the sharded-outage figure: SocialTube
// on a sharded, replicated control plane with at most one tracker replica
// dark. HitRate is the fraction of requests that were served at all
// (1 - failed/requests); the figure's headline is that it stays ~flat
// across every choice of dead replica.
type ShardedOutagePoint struct {
	Variant  string `json:"variant"` // "baseline" or "shardS-replicaR-down"
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`
	// DownShard/DownReplica name the darkened replica (1-based; 0 on the
	// baseline).
	DownShard   int `json:"downShard,omitempty"`
	DownReplica int `json:"downReplica,omitempty"`
	// Deterministic outcomes: the run is closed-loop, so the request
	// total is fixed by the workload and the failure count by the fault
	// schedule plus failover.
	Requests int64   `json:"requests"`
	Failed   int64   `json:"failed"`
	HitRate  float64 `json:"hitRate"`

	Env ShardedOutageEnv `json:"env"`
}

// Canonical returns the point with its environmental block zeroed — the
// form determinism comparisons use.
func (p ShardedOutagePoint) Canonical() ShardedOutagePoint {
	p.Env = ShardedOutageEnv{}
	return p
}

// FigShardedOutageResult bundles the figure's table with the raw points
// for BENCH_failover.json.
type FigShardedOutageResult struct {
	Table  *metrics.Table
	Points []ShardedOutagePoint
}

// String renders the table.
func (f *FigShardedOutageResult) String() string { return f.Table.String() }

func shardedOutagePoint(s EmuScale, cp emu.ControlPlaneConfig, variant string,
	shard, replica int, res *emu.ClusterResult) ShardedOutagePoint {
	requests := res.CacheHits + res.PeerHits + res.ServerHits
	hitRate := 1.0
	if requests > 0 {
		hitRate = 1 - float64(res.FailedRequests)/float64(requests)
	}
	return ShardedOutagePoint{
		Variant:     variant,
		Protocol:    res.Protocol,
		Seed:        s.Seed,
		Shards:      cp.Shards,
		Replicas:    cp.Replicas,
		DownShard:   shard,
		DownReplica: replica,
		Requests:    requests,
		Failed:      res.FailedRequests,
		HitRate:     hitRate,
		Env: ShardedOutageEnv{
			WallMs:       float64(res.Elapsed.Nanoseconds()) / 1e6,
			PeerHits:     res.PeerHits,
			ServerHits:   res.ServerHits,
			CacheHits:    res.CacheHits,
			BreakerOpens: res.Obs.BreakerOpens,
			BreakerSkips: res.Obs.BreakerSkips,
			RPCFailures:  res.Obs.RPCFailures,
		},
	}
}

// FigShardedOutage measures SocialTube's service continuity on a sharded,
// replicated control plane (default 2 shards x 2 replicas) when a single
// tracker replica goes dark mid-run: one no-fault baseline, then one run
// per replica with exactly that replica down for two workload units. The
// plan injects no churn, so request totals are deterministic and the hit
// rates compare directly. With peers failing over to the shard's
// surviving replica, every down-one-replica hit rate should sit within a
// few percent of the baseline — the headline of the control-plane
// redesign, versus the whole-plane outage of FigOutage where the dark
// window visibly costs requests.
func FigShardedOutage(s EmuScale, tr *trace.Trace) (*FigShardedOutageResult, error) {
	cp := emu.DefaultControlPlaneConfig()
	cp.RingSeed = s.Seed
	unit := s.outageUnit()
	t := metrics.NewTable(
		fmt.Sprintf("SocialTube hit rate, %dx%d control plane, one replica dark for 2x%s (TCP emulation)",
			cp.Shards, cp.Replicas, unit),
		"variant", "requests", "failed", "hitRate", "deltaVsBaseline", "brkOpens")
	run := func(plan *faults.Plan) (*emu.ClusterResult, error) {
		return s.runMode(tr, emu.ModeSocialTube, func(c *emu.ClusterConfig) {
			c.ControlPlane = &cp
			c.Faults = plan
			// Same tight retry policy as FigOutage: a request's budget is
			// on the order of the outage window, so survival comes from
			// failover, not patience.
			c.RPCTimeout = 250 * time.Millisecond
			c.MaxRetries = 1
			c.RetryBackoff = 25 * time.Millisecond
		})
	}
	base, err := run(nil)
	if err != nil {
		return nil, err
	}
	points := make([]ShardedOutagePoint, 0, 1+cp.Shards*cp.Replicas)
	basePoint := shardedOutagePoint(s, cp, "baseline", 0, 0, base)
	points = append(points, basePoint)
	t.AddRow(basePoint.Variant, basePoint.Requests, basePoint.Failed, basePoint.HitRate, 0.0,
		basePoint.Env.BreakerOpens)
	for shard := 1; shard <= cp.Shards; shard++ {
		for replica := 1; replica <= cp.Replicas; replica++ {
			res, err := run(faults.ReplicaOutagePlan(s.Seed, unit, shard, replica))
			if err != nil {
				return nil, err
			}
			variant := fmt.Sprintf("shard%d-replica%d-down", shard, replica)
			pt := shardedOutagePoint(s, cp, variant, shard, replica, res)
			points = append(points, pt)
			t.AddRow(pt.Variant, pt.Requests, pt.Failed, pt.HitRate,
				pt.HitRate-basePoint.HitRate, pt.Env.BreakerOpens)
		}
	}
	return &FigShardedOutageResult{Table: t, Points: points}, nil
}

// AppendShardedOutagePoints appends one JSON line per point to path —
// same JSONL convention as AppendFailoverPoints, and by default the same
// BENCH_failover.json file (the points are self-describing via Variant).
func AppendShardedOutagePoints(path string, points []ShardedOutagePoint) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
