package figures

import (
	"encoding/json"
	"testing"
)

// determinismScale is small enough that two full three-protocol runs stay
// in the unit-test budget.
func determinismScale() Scale {
	return Scale{
		TraceChannels:    60,
		TraceUsers:       150,
		Categories:       8,
		Sessions:         2,
		VideosPerSession: 5,
		WatchScale:       0.05,
		Seed:             7,
	}
}

// TestRunAllProtocolsDeterministic guards the parallel figure runner: each
// exp.Run is an independent single-threaded simulation with its own seeded
// RNG, so two same-seed invocations must produce byte-identical results no
// matter how the goroutines interleave.
func TestRunAllProtocolsDeterministic(t *testing.T) {
	s := determinismScale()
	tr, err := s.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunAllProtocols(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh trace too: the generator must be seed-stable as well.
	tr2, err := s.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunAllProtocols(s, tr2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("same-seed runs differ:\nfirst:  %s\nsecond: %s", a, b)
	}
	for _, name := range []string{"SocialTube", "NetTube", "PA-VoD"} {
		if first[name] == nil || first[name].Requests == 0 {
			t.Fatalf("protocol %s produced no requests", name)
		}
	}
}

// TestFig17aDeterministic pins the concurrent variant runner the same way:
// identical tables on repeated same-seed invocations.
func TestFig17aDeterministic(t *testing.T) {
	s := determinismScale()
	tr, err := s.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Fig17a(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Fig17a(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Fatalf("same-seed Fig17a tables differ:\n%s\nvs\n%s", t1, t2)
	}
}
