package figures

import (
	"context"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/emu"
	"github.com/socialtube/socialtube/internal/exp"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/simnet"
)

// TestSimAndEmuAgreeOnWinner is the cross-environment check the paper makes
// implicitly by publishing both PeerSim and PlanetLab results: the
// discrete-event simulator and the real TCP emulator must agree that
// SocialTube's median normalized peer bandwidth beats PA-VoD's.
func TestSimAndEmuAgreeOnWinner(t *testing.T) {
	if testing.Short() {
		t.Skip("runs both environments")
	}
	// Simulator side.
	s := SmallScale()
	tr, err := s.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	simResults, err := RunAllProtocols(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	_, simST, _ := simResults["SocialTube"].NormalizedPeerBandwidthPercentiles()
	_, simPV, _ := simResults["PA-VoD"].NormalizedPeerBandwidthPercentiles()
	if simST <= simPV {
		t.Fatalf("simulator: SocialTube %.3f not above PA-VoD %.3f", simST, simPV)
	}

	// Emulator side (scaled down to keep the test fast).
	es := EmuScale{
		Peers:            40,
		Sessions:         2,
		VideosPerSession: 6,
		WatchTime:        8 * time.Millisecond,
		Seed:             1,
	}
	etr, err := es.EmuTrace()
	if err != nil {
		t.Fatal(err)
	}
	stRes, err := es.runMode(etr, emu.ModeSocialTube, nil)
	if err != nil {
		t.Fatal(err)
	}
	pvRes, err := es.runMode(etr, emu.ModePAVoD, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, emuST, _ := stRes.NormalizedPeerBandwidthPercentiles()
	_, emuPV, _ := pvRes.NormalizedPeerBandwidthPercentiles()
	// A small emulation is timing-noisy (real sockets under test load);
	// require agreement in direction within a noise band rather than a
	// strict ordering.
	const noise = 0.1
	if emuST < emuPV-noise {
		t.Fatalf("emulator disagrees with simulator beyond noise: SocialTube %.3f vs PA-VoD %.3f", emuST, emuPV)
	}
}

// TestChurnResilienceOrdering is the headline claim of the churn figure:
// under the standard ChurnPlan, SocialTube's interest-clustered overlay
// plus active repair keeps serving from peers better than NetTube's
// friend overlay, which in turn beats PA-VoD's ISP assistance; and the
// repair hook — which only SocialTube implements — is what keeps its
// orphan fraction an order of magnitude below the baselines'. The runs
// are seeded and single-threaded, so the ordering is deterministic.
func TestChurnResilienceOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three faulted simulations")
	}
	s := tinyScale()
	tr := tinyTrace(t)
	protos, err := s.Protocols(tr)
	if err != nil {
		t.Fatal(err)
	}
	res := make(map[string]*exp.Resilience)
	for name, p := range protos {
		r, err := exp.RunCtx(context.Background(), s.expConfig(), tr, p,
			simnet.DefaultConfig(), exp.Options{Faults: faults.ChurnPlan(s.Seed, s.churnUnit())})
		if err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
		res[name] = &r.Resilience
	}
	st, nt, pv := res["SocialTube"], res["NetTube"], res["PA-VoD"]
	for name, r := range res {
		if r.Crashes == 0 || r.Rejoins != r.Crashes {
			t.Fatalf("%s: crashes=%d rejoins=%d, want a full crash/rejoin cycle", name, r.Crashes, r.Rejoins)
		}
	}
	if st.HitRateUnderFaults() <= nt.HitRateUnderFaults() || nt.HitRateUnderFaults() <= pv.HitRateUnderFaults() {
		t.Fatalf("fault-time hit rates out of order: SocialTube %.3f, NetTube %.3f, PA-VoD %.3f",
			st.HitRateUnderFaults(), nt.HitRateUnderFaults(), pv.HitRateUnderFaults())
	}
	if st.OrphanFraction.Mean() >= nt.OrphanFraction.Mean() || nt.OrphanFraction.Mean() >= pv.OrphanFraction.Mean() {
		t.Fatalf("orphan fractions out of order: SocialTube %.4f, NetTube %.4f, PA-VoD %.4f",
			st.OrphanFraction.Mean(), nt.OrphanFraction.Mean(), pv.OrphanFraction.Mean())
	}
	if st.RepairedLinks == 0 {
		t.Fatal("SocialTube's repair hook reattached no links under churn")
	}
	if nt.RepairedLinks != 0 || pv.RepairedLinks != 0 {
		t.Fatalf("baselines report repaired links (NetTube %d, PA-VoD %d) but implement no repair hook",
			nt.RepairedLinks, pv.RepairedLinks)
	}
}

// TestScaleBuildTraceAppliesMultiplier guards the paper-scale catalog
// dilution knob.
func TestScaleBuildTraceAppliesMultiplier(t *testing.T) {
	base := SmallScale()
	tr1, err := base.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.VideoCountMultiplier = 3
	tr3, err := scaled.BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr3.Videos) < 2*len(tr1.Videos) {
		t.Fatalf("multiplier 3 grew catalog only from %d to %d", len(tr1.Videos), len(tr3.Videos))
	}
}

// TestPaperScaleCatalogNearTableOne pins the paper-scale catalog to Table
// I's 101,121 videos within a tolerance.
func TestPaperScaleCatalogNearTableOne(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 100k-video trace")
	}
	tr, err := PaperScale().BuildTrace()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Videos); got < 70_000 || got > 140_000 {
		t.Fatalf("paper-scale catalog %d videos, want near Table I's 101,121", got)
	}
}
