// Package figures regenerates every table and figure of the paper's
// evaluation. Each FigNN function runs the relevant workload and returns a
// plain-text table whose rows mirror what the paper plots; the bench
// harness and the CLIs both call into this package so the numbers are
// produced by exactly one code path.
package figures

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/socialtube/socialtube/internal/baseline"
	"github.com/socialtube/socialtube/internal/core"
	"github.com/socialtube/socialtube/internal/exp"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// Scale sizes a run. Small finishes in seconds (unit tests, quick benches);
// Paper approaches the paper's Table I scale.
type Scale struct {
	// TraceChannels / TraceUsers size the synthetic trace.
	TraceChannels int
	TraceUsers    int
	Categories    int
	// Sessions / VideosPerSession size the workload.
	Sessions         int
	VideosPerSession int
	// WatchScale compresses playback in the simulator.
	WatchScale float64
	// MeanOffTime overrides the between-session off period (0 keeps the
	// Table I default of 500 s).
	MeanOffTime time.Duration
	// ProbeInterval overrides the maintenance probe period (0 keeps the
	// Table I default of 10 min). Compressed-time workloads need a
	// proportionally compressed period or sessions end before the first
	// probe round ever fires.
	ProbeInterval time.Duration
	// VideoCountMultiplier scales the catalog toward the paper's 101k
	// videos (see trace.Config.VideoCountMultiplier).
	VideoCountMultiplier float64
	// Seed drives everything.
	Seed int64
	// Tracer, when non-nil, is installed on every protocol the scale
	// builds (the -trace-out path). It must be safe for concurrent Emit:
	// the figure runner runs protocols in parallel.
	Tracer obs.Tracer
}

// attach installs the scale's tracer on protocols that accept one.
func (s Scale) attach(p vod.Protocol) {
	if s.Tracer == nil {
		return
	}
	if t, ok := p.(obs.Traceable); ok {
		t.SetTracer(s.Tracer)
	}
}

// SmallScale returns a seconds-long configuration.
func SmallScale() Scale {
	return Scale{
		TraceChannels:    100,
		TraceUsers:       300,
		Categories:       10,
		Sessions:         4,
		VideosPerSession: 8,
		WatchScale:       0.05,
		Seed:             1,
	}
}

// PaperScale returns the paper's Table I proportions (545 channels, 10,000
// nodes, 25 sessions of 10 videos). Running all three protocols at this
// scale takes minutes.
func PaperScale() Scale {
	return Scale{
		TraceChannels:    545,
		TraceUsers:       10_000,
		Categories:       18,
		Sessions:         25,
		VideosPerSession: 10,
		WatchScale:       1,
		// Table I's 101,121 videos over 545 channels: the simulated
		// channels hold ≈6× the crawl-wide Fig. 6 distribution.
		VideoCountMultiplier: 4.4,
		Seed:                 1,
	}
}

// BuildTrace generates the scale's synthetic trace.
func (s Scale) BuildTrace() (*trace.Trace, error) {
	cfg := trace.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Channels = s.TraceChannels
	cfg.Users = s.TraceUsers
	cfg.Categories = s.Categories
	if cfg.MaxInterestsPerUser > s.Categories {
		cfg.MaxInterestsPerUser = s.Categories
	}
	if s.VideoCountMultiplier > 0 {
		cfg.VideoCountMultiplier = s.VideoCountMultiplier
		// Keep the per-channel cap above the scaled tail.
		cfg.MaxVideosPerChannel = int(float64(cfg.MaxVideosPerChannel) * s.VideoCountMultiplier)
	}
	return trace.Generate(cfg)
}

func (s Scale) expConfig() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Sessions = s.Sessions
	cfg.VideosPerSession = s.VideosPerSession
	cfg.WatchScale = s.WatchScale
	if s.WatchScale < 1 {
		// Compressed playback shrinks sessions; shrink off-times to
		// keep the on/off duty cycle comparable.
		cfg.MeanOffTime = 60 * time.Second
		cfg.Horizon = 24 * time.Hour
	}
	if s.MeanOffTime > 0 {
		cfg.MeanOffTime = s.MeanOffTime
	}
	if s.ProbeInterval > 0 {
		cfg.ProbeInterval = s.ProbeInterval
	}
	return cfg
}

// cdfFractions are the quantiles the CDF figures report.
var cdfFractions = []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99}

func cdfTable(title, valueName string, values []float64) *metrics.Table {
	t := metrics.NewTable(title, "fraction", valueName)
	for _, pt := range trace.CDF(values, cdfFractions) {
		t.AddRow(pt.Fraction, pt.Value)
	}
	return t
}

// Fig02 prints cumulative video uploads over time (scalability, O1).
func Fig02(tr *trace.Trace) *metrics.Table {
	t := metrics.NewTable("Fig. 2 — videos added over time (cumulative)", "bucket", "date", "cumulativeVideos")
	growth := tr.VideoGrowth(12)
	span := tr.End.Sub(tr.Start)
	for i, n := range growth {
		at := tr.Start.Add(span * time.Duration(i+1) / 12)
		t.AddRow(i+1, at.Format("2006-01"), n)
	}
	return t
}

// Fig03 prints the CDF of per-channel view frequency.
func Fig03(tr *trace.Trace) *metrics.Table {
	return cdfTable("Fig. 3 — CDF of channel view frequency (views/day)", "viewsPerDay", tr.ChannelViewFrequencies())
}

// Fig04 prints the CDF of subscribers per channel.
func Fig04(tr *trace.Trace) *metrics.Table {
	return cdfTable("Fig. 4 — CDF of subscribers per channel", "subscribers", tr.SubscriberCounts())
}

// Fig05 prints the channel views vs subscriptions correlation.
func Fig05(tr *trace.Trace) *metrics.Table {
	subs, views := tr.ViewsVsSubscriptions()
	t := metrics.NewTable("Fig. 5 — channel views vs subscriptions", "metric", "value")
	t.AddRow("channels", len(subs))
	t.AddRow("pearson", trace.Pearson(subs, views))
	t.AddRow("logPearson", trace.LogPearson(subs, views))
	// A few representative scatter points, ordered by subscribers.
	type pt struct{ s, v float64 }
	pts := make([]pt, len(subs))
	for i := range subs {
		pts[i] = pt{subs[i], views[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].s < pts[j].s })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		idx := int(q * float64(len(pts)-1))
		t.AddRow(fmt.Sprintf("subs@p%.0f", q*100), pts[idx].s)
		t.AddRow(fmt.Sprintf("views@p%.0f", q*100), pts[idx].v)
	}
	return t
}

// Fig06 prints the CDF of videos per channel.
func Fig06(tr *trace.Trace) *metrics.Table {
	return cdfTable("Fig. 6 — CDF of videos per channel", "videos", tr.VideosPerChannel())
}

// Fig07 prints the CDF of views per video.
func Fig07(tr *trace.Trace) *metrics.Table {
	return cdfTable("Fig. 7 — CDF of views per video", "views", tr.ViewsPerVideo())
}

// Fig08 prints the CDF of favourites per video plus the views correlation.
func Fig08(tr *trace.Trace) *metrics.Table {
	t := cdfTable("Fig. 8 — CDF of favourites per video", "favorites", tr.FavoritesPerVideo())
	t.AddRow(0, trace.Pearson(tr.ViewsPerVideo(), tr.FavoritesPerVideo()))
	return t
}

// Fig09 prints within-channel view counts for a high-, medium- and
// low-popularity channel together with Zipf fits.
func Fig09(tr *trace.Trace) *metrics.Table {
	t := metrics.NewTable("Fig. 9 — video popularity within channels (Zipf)", "channel", "rank", "views")
	classes := []struct {
		name     string
		quantile float64
	}{
		{"high", 1.0}, {"medium", 0.5}, {"low", 0.1},
	}
	for _, c := range classes {
		ch := tr.ChannelPopularityClass(c.quantile)
		if ch == nil {
			continue
		}
		views := tr.WithinChannelViews(ch.ID)
		for i, v := range views {
			if i >= 10 {
				break
			}
			t.AddRow(c.name, i+1, v)
		}
		s, r2 := trace.ZipfFit(views)
		t.AddRow(c.name+"-zipf-s", 0, s)
		t.AddRow(c.name+"-zipf-r2", 0, r2)
	}
	return t
}

// Fig10 prints the shared-subscriber channel graph's clustering statistics.
func Fig10(tr *trace.Trace, minShared int) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Fig. 10 — channel graph via ≥%d shared subscribers", minShared),
		"metric", "value")
	edges := tr.SharedSubscriberGraph(minShared)
	t.AddRow("edges", len(edges))
	t.AddRow("intraCategoryFraction", tr.IntraCategoryEdgeFraction(minShared))
	same, pairs := 0, 0
	for i := 0; i < len(tr.Channels); i++ {
		for j := i + 1; j < len(tr.Channels); j++ {
			pairs++
			if tr.Channels[i].Primary == tr.Channels[j].Primary {
				same++
			}
		}
	}
	if pairs > 0 {
		t.AddRow("chanceBaseline", float64(same)/float64(pairs))
	}
	return t
}

// Fig11 prints the CDF of interest categories per channel.
func Fig11(tr *trace.Trace) *metrics.Table {
	return cdfTable("Fig. 11 — CDF of categories per channel", "categories", tr.InterestsPerChannel())
}

// Fig12 prints the CDF of user-interest / subscription similarity.
func Fig12(tr *trace.Trace) *metrics.Table {
	return cdfTable("Fig. 12 — CDF of interest similarity |Cu∩Cc|/|Cu|", "similarity", tr.InterestSimilarities())
}

// Fig13 prints the CDF of interests per user.
func Fig13(tr *trace.Trace) *metrics.Table {
	return cdfTable("Fig. 13 — CDF of interests per user", "interests", tr.InterestsPerUser())
}

// Fig15 prints the analytical maintenance-overhead model.
func Fig15() *metrics.Table {
	m := core.DefaultMaintenanceModel()
	t := metrics.NewTable(
		"Fig. 15 — modelled overlay maintenance overhead (u=500, u_c=5000, u_t=25000)",
		"videosWatched", "SocialTube", "NetTube")
	for _, videos := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		t.AddRow(videos, m.SocialTube(videos), m.NetTube(videos))
	}
	return t
}

// pavodConfig scales PA-VoD's readiness delay with the compressed playback
// so its physics stay consistent under time compression.
func (s Scale) pavodConfig() baseline.PAVoDConfig {
	cfg := baseline.DefaultPAVoDConfig()
	cfg.Seed = s.Seed
	cfg.ReadyDelay = time.Duration(float64(cfg.ReadyDelay) * s.WatchScale)
	// PA-VoD localizes peer assistance within an ISP (Huang et al.); an
	// ISP serves on the order of 500 of the experiment's users, so the
	// ISP count grows with the population. Below ~1000 users locality is
	// left off: a small sample effectively shares one access network.
	if s.TraceUsers >= 1000 {
		cfg.ISPs = s.TraceUsers / 500
	}
	return cfg
}

// Protocol builds one comparison system by name ("SocialTube", "NetTube"
// or "PA-VoD") over a trace at this scale, tracer attached. The scale
// sweep builds protocols one at a time through this so each run's node
// state can be released before the next protocol's is allocated.
func (s Scale) Protocol(name string, tr *trace.Trace) (vod.Protocol, error) {
	var (
		p   vod.Protocol
		err error
	)
	switch name {
	case "SocialTube":
		cfg := core.DefaultConfig()
		cfg.Seed = s.Seed
		p, err = core.New(cfg, tr)
	case "NetTube":
		cfg := baseline.DefaultNetTubeConfig()
		cfg.Seed = s.Seed
		p, err = baseline.NewNetTube(cfg, tr)
	case "PA-VoD":
		p, err = baseline.NewPAVoD(s.pavodConfig(), tr)
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
	if err != nil {
		return nil, err
	}
	s.attach(p)
	return p, nil
}

// Protocols builds the three comparison systems over a trace at this scale.
func (s Scale) Protocols(tr *trace.Trace) (map[string]vod.Protocol, error) {
	protos := make(map[string]vod.Protocol, len(protoOrder))
	for _, name := range protoOrder {
		p, err := s.Protocol(name, tr)
		if err != nil {
			return nil, err
		}
		protos[name] = p
	}
	return protos, nil
}

// RunSocialTube runs one SocialTube variant through the standard workload —
// the entry point of the ablation benches (TTL sweep, link-budget sweep,
// channel-only overlay).
func RunSocialTube(s Scale, tr *trace.Trace, cfg core.Config) (*exp.Result, error) {
	sys, err := core.New(cfg, tr)
	if err != nil {
		return nil, err
	}
	s.attach(sys)
	return exp.Run(s.expConfig(), tr, sys, simnet.DefaultConfig())
}

// RunAllProtocols executes the standard workload for each of the three
// protocols and returns the raw results keyed by protocol name (the
// socialtube-sim -json path).
func RunAllProtocols(s Scale, tr *trace.Trace) (map[string]*exp.Result, error) {
	protos, err := s.Protocols(tr)
	if err != nil {
		return nil, err
	}
	return runAll(s, tr, protos)
}

// runConcurrently executes fn(i) for i in [0, n) across goroutines bounded
// by GOMAXPROCS and returns the first error by index order. Each exp.Run is
// an independent single-threaded deterministic simulation (own RNG, own
// simnet, read-only trace), so running them side by side changes nothing
// but wall-clock time.
func runConcurrently(n int, fn func(i int) error) error {
	if n <= 1 {
		if n == 1 {
			return fn(0)
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runAll executes the standard workload for each named protocol, running
// the independent simulations concurrently. Results are keyed exactly as
// the sequential version keyed them.
func runAll(s Scale, tr *trace.Trace, protos map[string]vod.Protocol) (map[string]*exp.Result, error) {
	names := make([]string, 0, len(protos))
	for name := range protos {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]*exp.Result, len(names))
	err := runConcurrently(len(names), func(i int) error {
		res, err := exp.Run(s.expConfig(), tr, protos[names[i]], simnet.DefaultConfig())
		if err != nil {
			return fmt.Errorf("run %s: %w", names[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*exp.Result, len(names))
	for i, name := range names {
		out[name] = results[i]
	}
	return out, nil
}

var protoOrder = []string{"PA-VoD", "SocialTube", "NetTube"}

// FigSim bundles a simulator figure's main table with the per-run counter
// summary produced by the same simulations — every simulator figure reports
// not just its metric but the protocol activity that generated it.
type FigSim struct {
	Table    *metrics.Table
	Counters *metrics.Table
}

// String renders the figure table followed by its counter summary.
func (f *FigSim) String() string {
	return f.Table.String() + "\n" + f.Counters.String()
}

// countersTable renders the runs' counter snapshots side by side, one column
// per run in the given order, one row per counter (declaration order, so the
// output is byte-stable), followed by the engine's accounting.
func countersTable(title string, names []string, results []*exp.Result) *metrics.Table {
	headers := make([]string, 0, len(names)+1)
	headers = append(headers, "counter")
	headers = append(headers, names...)
	t := metrics.NewTable(title, headers...)
	if len(results) == 0 {
		return t
	}
	perRun := make([][]obs.CounterRow, len(results))
	for i, r := range results {
		perRun[i] = r.Obs.Rows()
	}
	for ri, row := range perRun[0] {
		cells := make([]any, 0, len(results)+1)
		cells = append(cells, row.Name)
		for i := range results {
			cells = append(cells, perRun[i][ri].Value)
		}
		t.AddRow(cells...)
	}
	engineRows := []struct {
		name string
		get  func(r *exp.Result) any
	}{
		{"engineEventsFired", func(r *exp.Result) any { return r.Engine.EventsFired }},
		{"engineEventsScheduled", func(r *exp.Result) any { return r.Engine.EventsScheduled }},
		{"engineHeapHighWater", func(r *exp.Result) any { return r.Engine.HeapHighWater }},
	}
	for _, er := range engineRows {
		cells := make([]any, 0, len(results)+1)
		cells = append(cells, er.name)
		for _, r := range results {
			cells = append(cells, er.get(r))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig16a prints the normalized peer bandwidth percentiles per protocol on
// the simulator, with the per-protocol counter summary.
func Fig16a(s Scale, tr *trace.Trace) (*FigSim, error) {
	protos, err := s.Protocols(tr)
	if err != nil {
		return nil, err
	}
	results, err := runAll(s, tr, protos)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Fig. 16(a) — normalized peer bandwidth (simulator)",
		"protocol", "p1", "p50", "p99")
	ordered := make([]*exp.Result, 0, len(protoOrder))
	for _, name := range protoOrder {
		p1, p50, p99 := results[name].NormalizedPeerBandwidthPercentiles()
		t.AddRow(name, p1, p50, p99)
		ordered = append(ordered, results[name])
	}
	return &FigSim{
		Table:    t,
		Counters: countersTable("Fig. 16(a) — protocol counters", protoOrder, ordered),
	}, nil
}

// Fig17a prints startup delay with and without prefetching per protocol on
// the simulator, with the per-variant counter summary.
func Fig17a(s Scale, tr *trace.Trace) (*FigSim, error) {
	t := metrics.NewTable("Fig. 17(a) — startup delay (simulator)",
		"variant", "meanMs", "p50Ms", "p99Ms")
	variants := []struct {
		name  string
		build func() (vod.Protocol, error)
	}{
		{"PA-VoD", func() (vod.Protocol, error) {
			return baseline.NewPAVoD(s.pavodConfig(), tr)
		}},
		{"SocialTube w/ PF", func() (vod.Protocol, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			return core.New(cfg, tr)
		}},
		{"SocialTube w/o PF", func() (vod.Protocol, error) {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.PrefetchCount = 0
			return core.New(cfg, tr)
		}},
		{"NetTube w/ PF", func() (vod.Protocol, error) {
			cfg := baseline.DefaultNetTubeConfig()
			cfg.Seed = s.Seed
			return baseline.NewNetTube(cfg, tr)
		}},
		{"NetTube w/o PF", func() (vod.Protocol, error) {
			cfg := baseline.DefaultNetTubeConfig()
			cfg.Seed = s.Seed
			cfg.PrefetchCount = 0
			return baseline.NewNetTube(cfg, tr)
		}},
	}
	// Each variant is an independent deterministic simulation: build and
	// run them concurrently, then emit rows in the declared order.
	results := make([]*exp.Result, len(variants))
	err := runConcurrently(len(variants), func(i int) error {
		p, err := variants[i].build()
		if err != nil {
			return err
		}
		s.attach(p)
		res, err := exp.Run(s.expConfig(), tr, p, simnet.DefaultConfig())
		if err != nil {
			return fmt.Errorf("run %s: %w", variants[i].name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, len(variants))
	for i, variant := range variants {
		names[i] = variant.name
		d := results[i].StartupDelay.Summary()
		t.AddRow(variant.name, d.Mean, d.P50, d.P99)
	}
	return &FigSim{
		Table:    t,
		Counters: countersTable("Fig. 17(a) — protocol counters", names, results),
	}, nil
}

// Fig18a prints maintenance overhead versus videos watched per protocol on
// the simulator, with the per-protocol counter summary.
func Fig18a(s Scale, tr *trace.Trace) (*FigSim, error) {
	protos, err := s.Protocols(tr)
	if err != nil {
		return nil, err
	}
	delete(protos, "PA-VoD") // the paper plots SocialTube vs NetTube
	results, err := runAll(s, tr, protos)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Fig. 18(a) — maintenance overhead vs videos watched (simulator)",
		"videosWatched", "SocialTube", "NetTube")
	for k := 0; k < s.VideosPerSession; k++ {
		t.AddRow(k+1,
			results["SocialTube"].LinksByVideoIndex[k].Mean(),
			results["NetTube"].LinksByVideoIndex[k].Mean())
	}
	names := []string{"SocialTube", "NetTube"}
	return &FigSim{
		Table: t,
		Counters: countersTable("Fig. 18(a) — protocol counters", names,
			[]*exp.Result{results["SocialTube"], results["NetTube"]}),
	}, nil
}

// Table1 prints the experiment's default parameters alongside the paper's.
func Table1(s Scale, tr *trace.Trace) *metrics.Table {
	cfg := s.expConfig()
	net := simnet.DefaultConfig()
	t := metrics.NewTable("Table I — experiment parameters (paper default / this run)",
		"parameter", "paper", "thisRun")
	t.AddRow("simulation duration", "3 days", cfg.Horizon.String())
	t.AddRow("number of nodes", 10000, len(tr.Users))
	t.AddRow("number of videos", 101121, len(tr.Videos))
	t.AddRow("number of channels", 545, len(tr.Channels))
	t.AddRow("chunks per video", 2, cfg.ChunksPerVideo)
	t.AddRow("video bitrate (kbps)", 320, cfg.BitrateBps/1000)
	t.AddRow("server bandwidth (mbps)", 50, net.ServerUplinkBps/1_000_000)
	t.AddRow("inner links N_l", 5, core.DefaultConfig().InnerLinks)
	t.AddRow("inter links N_h", 10, core.DefaultConfig().InterLinks)
	t.AddRow("TTL", 2, core.DefaultConfig().TTL)
	t.AddRow("videos per session", 10, cfg.VideosPerSession)
	t.AddRow("sessions per user", 25, cfg.Sessions)
	t.AddRow("mean off time (s)", 500, int(cfg.MeanOffTime.Seconds()))
	t.AddRow("probe interval (min)", 10, int(cfg.ProbeInterval.Minutes()))
	return t
}

// PrefetchAccuracyTable prints the §IV-B prefetch-accuracy analysis.
func PrefetchAccuracyTable() *metrics.Table {
	t := metrics.NewTable("§IV-B — prefetch accuracy (Zipf s=1, 25-video channel)",
		"prefetchedVideos", "accuracy")
	for m := 1; m <= 6; m++ {
		t.AddRow(m, core.PrefetchAccuracy(25, m))
	}
	return t
}
