package exp

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/baseline"
	"github.com/socialtube/socialtube/internal/core"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// socialTubeFactory builds one SocialTube instance per community cell,
// seeding each cell's protocol RNG from its cell id.
func socialTubeFactory(seed int64) CellProtocol {
	return func(cell int, cellTr *trace.Trace) (vod.Protocol, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seed*1_000_003 + int64(cell+1)
		return core.New(cfg, cellTr)
	}
}

func netTubeFactory(seed int64) CellProtocol {
	return func(cell int, cellTr *trace.Trace) (vod.Protocol, error) {
		cfg := baseline.DefaultNetTubeConfig()
		cfg.Seed = seed*1_000_003 + int64(cell+1)
		return baseline.NewNetTube(cfg, cellTr)
	}
}

func shardedConfig() Config {
	cfg := DefaultConfig()
	cfg.Sessions = 2
	cfg.VideosPerSession = 5
	cfg.WatchScale = 0.05
	cfg.MeanOffTime = 60 * time.Second
	cfg.Horizon = 12 * time.Hour
	return cfg
}

func runSharded(t *testing.T, workers int) *Result {
	t.Helper()
	tr := expTrace(t)
	res, err := RunSharded(shardedConfig(), tr, socialTubeFactory(1), simnet.DefaultConfig(),
		ShardedOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedWorkerCountInvariance is the acceptance pin: the same seed
// run under worker counts {1, 2, 4, 8} — from the fully sequential loop
// to more workers than cores — marshals to byte-identical JSON. The
// worker count decides only which OS thread advances which community
// loop; it must never leak into results.
func TestShardedWorkerCountInvariance(t *testing.T) {
	ref := runSharded(t, 1)
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Requests == 0 {
		t.Fatal("sharded reference run issued no requests")
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := json.Marshal(runSharded(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(refJSON) {
			t.Fatalf("workers=%d result diverged from the sequential reference\nseq: %s\ngot: %s",
				workers, refJSON, got)
		}
	}
}

// TestShardedTimelineWorkerCountInvariance extends the worker-invariance
// acceptance pin to the telemetry timeline: with TimelineWindow set, the
// per-cell recorders merge in cell order into one Timeline whose JSON —
// per-window counters and startup-delay histogram summaries alike — is
// byte-identical for worker counts {1, 2, 4, 8}.
func TestShardedTimelineWorkerCountInvariance(t *testing.T) {
	tr := expTrace(t)
	run := func(workers int) *Result {
		t.Helper()
		res, err := RunSharded(shardedConfig(), tr, socialTubeFactory(1), simnet.DefaultConfig(),
			ShardedOptions{Workers: workers, TimelineWindow: 30 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if ref.Timeline == nil || ref.Timeline.Windows() == 0 {
		t.Fatal("sharded timeline run recorded no windows")
	}
	// The merged per-window request counts must re-sum to the run total.
	reqs := ref.Timeline.Series("requests")
	if reqs == nil {
		t.Fatal("timeline is missing the requests series")
	}
	var total int64
	for i := 0; i < ref.Timeline.Windows(); i++ {
		total += reqs.Value(i)
	}
	if total != ref.Requests {
		t.Fatalf("timeline windows sum to %d requests, run counted %d", total, ref.Requests)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := json.Marshal(run(workers))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(refJSON) {
			t.Fatalf("workers=%d timeline result diverged from the sequential reference", workers)
		}
	}
}

// TestShardedAccountingConsistency checks the merged result's internal
// arithmetic: hits partition the requests, remote accounting is coherent,
// and the per-shard load block covers every cell.
func TestShardedAccountingConsistency(t *testing.T) {
	res := runSharded(t, 0) // default worker count
	if res.Sharded == nil {
		t.Fatal("sharded run returned no ShardedInfo")
	}
	hits := res.CacheHits.Value() + res.PeerHits.Value() + res.ServerHits.Value()
	if hits != res.Requests {
		t.Fatalf("hits %d != requests %d", hits, res.Requests)
	}
	info := res.Sharded
	if info.Cells != 10 { // expTrace uses 10 categories
		t.Fatalf("cells %d, want 10", info.Cells)
	}
	if len(info.ShardLoad) != info.Cells {
		t.Fatalf("shard load has %d entries for %d cells", len(info.ShardLoad), info.Cells)
	}
	if info.RemoteLookups == 0 {
		t.Fatal("no cross-community lookups in a multi-category workload (75/15/10 behavior guarantees some)")
	}
	if info.RemoteHits > info.RemoteLookups {
		t.Fatalf("remote hits %d exceed lookups %d", info.RemoteHits, info.RemoteLookups)
	}
	if info.RemoteHits > 0 && info.RemoteBytes == 0 {
		t.Fatal("remote hits served zero bytes")
	}
	var fired uint64
	for _, s := range info.ShardLoad {
		fired += s.EventsFired
	}
	if fired != res.Engine.EventsFired {
		t.Fatalf("per-shard events %d != merged %d", fired, res.Engine.EventsFired)
	}
	if res.SimulatedTime <= 0 || res.SimulatedTime > shardedConfig().Horizon {
		t.Fatalf("simulated time %v outside (0, horizon]", res.SimulatedTime)
	}
}

// TestShardedBaselineFallsBackToServer: a protocol without RemoteSearcher
// (NetTube) still runs sharded — cross-community misses go to the origin
// community's server instead of crossing the barrier.
func TestShardedBaselineFallsBackToServer(t *testing.T) {
	tr := expTrace(t)
	res, err := RunSharded(shardedConfig(), tr, netTubeFactory(1), simnet.DefaultConfig(), ShardedOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharded.RemoteLookups != 0 {
		t.Fatalf("NetTube forwarded %d remote lookups without implementing RemoteSearcher", res.Sharded.RemoteLookups)
	}
	if res.Requests == 0 || res.ServerHits.Value() == 0 {
		t.Fatalf("baseline sharded run: %d requests, %d server hits", res.Requests, res.ServerHits.Value())
	}
}

// TestShardedRejectsBadInputs pins the constructor errors.
func TestShardedRejectsBadInputs(t *testing.T) {
	tr := expTrace(t)
	if _, err := RunSharded(shardedConfig(), tr, nil, simnet.DefaultConfig(), ShardedOptions{}); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := RunSharded(shardedConfig(), nil, socialTubeFactory(1), simnet.DefaultConfig(), ShardedOptions{}); err == nil {
		t.Fatal("nil trace accepted")
	}
	bad := shardedConfig()
	bad.Sessions = 0
	if _, err := RunSharded(bad, tr, socialTubeFactory(1), simnet.DefaultConfig(), ShardedOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// BenchmarkShardedRun compares the sequential and parallel sharded paths
// over the same workload; the allocs/op column doubles as a regression
// pin on the per-epoch overhead.
func BenchmarkShardedRun(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.Seed = 41
	cfg.Channels = 40
	cfg.Users = 400
	cfg.Categories = 10
	cfg.MaxInterestsPerUser = 10
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunSharded(shardedConfig(), tr, socialTubeFactory(1), simnet.DefaultConfig(),
					ShardedOptions{Workers: bench.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
