package exp

import (
	"context"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/vod"
)

// joinCounter wraps a protocol and counts Join calls per node — one Join
// per started session, so completed-session accounting is exact.
type joinCounter struct {
	vod.Protocol
	joins []int
}

func (p *joinCounter) Join(node int) { p.joins[node]++; p.Protocol.Join(node) }

// Probe forwards maintenance rounds so wrapping a protocol does not
// hide its Maintainer interface from the runner.
func (p *joinCounter) Probe(node int) int {
	if m, ok := p.Protocol.(Maintainer); ok {
		return m.Probe(node)
	}
	return 0
}

// TestProbesSurviveFullPopulationCrash pins the probeAll starvation fix:
// when a probe tick lands while the entire population is crashed, the
// probe loop used to stop rescheduling itself, so maintenance probing
// never resumed after the nodes rejoined — ProbeMessages stayed at zero
// for the rest of the run, silently zeroing the paper's headline
// maintenance-overhead measurement. With Spread 0 the whole wave crashes
// at exactly 1m and rejoins at exactly 11m; the first probe tick at 2m
// therefore sees zero online nodes.
func TestProbesSurviveFullPopulationCrash(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	cfg.Sessions = 3
	cfg.VideosPerSession = 4
	cfg.ProbeInterval = 2 * time.Minute
	cfg.Horizon = 0 // run until every session has completed
	plan := &faults.Plan{
		Seed: 7,
		Waves: []faults.ChurnWave{
			{At: time.Minute, Fraction: 1.0, DownFor: 10 * time.Minute},
		},
	}
	p := &joinCounter{Protocol: socialTube(t, tr), joins: make([]int, len(tr.Users))}
	res, err := RunCtx(context.Background(), cfg, tr, p, simnet.DefaultConfig(), Options{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ProbeMessages.Value(); got == 0 {
		t.Fatalf("probe loop starved: 0 probe messages over %v with all rejoins pending", res.SimulatedTime)
	}
	for node, got := range p.joins {
		if got != cfg.Sessions {
			t.Errorf("node %d ran %d sessions, want %d", node, got, cfg.Sessions)
		}
	}
}

// TestSessionsCompleteUnderChurn counts completed sessions under an
// aggressive multi-wave churn plan (repeated full-population crashes
// with staggered rejoins): no leave/crash/rejoin interleaving may
// strand a node's remaining sessionsLeft.
func TestSessionsCompleteUnderChurn(t *testing.T) {
	tr := expTrace(t)
	for seed := int64(1); seed <= 3; seed++ {
		cfg := quickConfig()
		cfg.Seed = seed
		cfg.Sessions = 3
		cfg.VideosPerSession = 4
		cfg.Horizon = 0
		plan := &faults.Plan{
			Seed:        seed,
			DetectDelay: 30 * time.Second,
			Waves: []faults.ChurnWave{
				{At: 2 * time.Minute, Spread: 4 * time.Minute, Fraction: 1.0, DownFor: 90 * time.Second},
				{At: 5 * time.Minute, Spread: 4 * time.Minute, Fraction: 1.0, DownFor: 45 * time.Second},
				{At: 8 * time.Minute, Spread: 8 * time.Minute, Fraction: 1.0, DownFor: 2 * time.Minute},
				{At: 20 * time.Minute, Fraction: 1.0, DownFor: 70 * time.Second},
			},
		}
		p := &joinCounter{Protocol: socialTube(t, tr), joins: make([]int, len(tr.Users))}
		if _, err := RunCtx(context.Background(), cfg, tr, p, simnet.DefaultConfig(), Options{Faults: plan}); err != nil {
			t.Fatal(err)
		}
		stranded := 0
		for _, got := range p.joins {
			if got < cfg.Sessions {
				stranded++
			}
		}
		if stranded > 0 {
			t.Errorf("seed %d: %d nodes stranded with sessions left", seed, stranded)
		}
	}
}

// TestEndSessionOfflineReschedules pins the endSession offline path at
// the unit level: a node whose online flag dropped mid-chain (without a
// crash) still owns its remaining sessionsLeft, so endSession must
// schedule the off-time wake-up instead of returning early and
// stranding the node forever.
func TestEndSessionOfflineReschedules(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	cfg.Sessions = 2
	cfg.VideosPerSession = 2
	p := &joinCounter{Protocol: socialTube(t, tr), joins: make([]int, len(tr.Users))}
	r, err := newRunner(cfg, tr, p, simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const node = 0
	r.sessionsLeft[node] = cfg.Sessions
	// The node is offline and not crashed — the state watch() sees when
	// it ends a chain whose online flag was dropped out from under it.
	r.engine.At(0, func(time.Duration) { r.endSession(node, time.Minute) })
	if err := r.engine.RunCtx(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if r.sessionsLeft[node] != 0 {
		t.Fatalf("node stranded: %d sessions left after engine drained", r.sessionsLeft[node])
	}
	if p.joins[node] != cfg.Sessions {
		t.Fatalf("node ran %d sessions, want %d", p.joins[node], cfg.Sessions)
	}
	// A crashed node's restart belongs to its rejoin event: endSession
	// must NOT double-book a wake-up for it.
	r2, err := newRunner(cfg, tr, socialTube(t, tr), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2.sessionsLeft[node] = cfg.Sessions
	r2.crashed[node] = true
	r2.engine.At(0, func(time.Duration) { r2.endSession(node, time.Minute) })
	if err := r2.engine.RunCtx(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if r2.sessionsLeft[node] != cfg.Sessions {
		t.Fatalf("crashed node consumed %d sessions via endSession; rejoin owns the restart",
			cfg.Sessions-r2.sessionsLeft[node])
	}
}
