// Package exp is the trace-driven experiment engine: it drives any
// vod.Protocol (SocialTube or a baseline) over the discrete-event simulator
// with session churn and the simnet bandwidth/latency model, and collects
// the paper's three evaluation metrics — startup delay, normalized peer
// bandwidth and overlay maintenance overhead (Figs. 16–18).
package exp

import (
	"context"
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/load"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/sim"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// Maintainer is implemented by protocols with periodic neighbour probing.
type Maintainer interface {
	// Probe runs one maintenance round for the node and returns the
	// number of probe messages sent.
	Probe(node int) int
}

// Timed is implemented by protocols whose behaviour depends on elapsed
// virtual time (e.g. PA-VoD's watcher-readiness constraint). The engine
// calls SetNow before every protocol callback.
type Timed interface {
	SetNow(now time.Duration)
}

// Config sets the workload parameters. Defaults follow Table I of the
// paper, scaled by the caller through the trace size.
type Config struct {
	// Seed drives session scheduling and churn decisions.
	Seed int64
	// Sessions is how many sessions each user runs (paper: 25).
	Sessions int
	// VideosPerSession is how many videos a node watches per session
	// (paper: 10).
	VideosPerSession int
	// MeanOffTime is the mean of the exponential off-period between a
	// user's sessions (paper: 500 s).
	MeanOffTime time.Duration
	// ProbeInterval is the neighbour-probing period (paper: 10 min).
	ProbeInterval time.Duration
	// Horizon bounds simulated time (paper: 3 days). 0 disables.
	Horizon time.Duration
	// ChunksPerVideo splits each video into chunks (paper: 2).
	ChunksPerVideo int
	// BitrateBps is the video bitrate (paper: 320 kbps).
	BitrateBps int64
	// AbruptLeaveP is the probability a session ends with an abrupt
	// failure instead of a graceful departure, exercising the
	// probe-based repair path.
	AbruptLeaveP float64
	// PlayoutBuffer is how much content must arrive before playback
	// starts. Peers' uplinks exceed the bitrate (§IV-B: "most Internet
	// users have typical download bandwidths of at least twice that
	// bitrate"), so startup is buffering plus query time, not a full
	// chunk download.
	PlayoutBuffer time.Duration
	// Behavior is the video-selection model (paper: 75/15/10).
	Behavior vod.Behavior
	// WatchScale compresses playback time: a video of length L occupies
	// L*WatchScale of virtual time. 1.0 reproduces real playback; small
	// values shorten experiments without changing request ordering.
	WatchScale float64
}

// DefaultConfig returns Table I's workload parameters.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Sessions:         25,
		VideosPerSession: 10,
		MeanOffTime:      500 * time.Second,
		ProbeInterval:    10 * time.Minute,
		Horizon:          3 * 24 * time.Hour,
		ChunksPerVideo:   vod.DefaultChunksPerVideo,
		BitrateBps:       vod.DefaultBitrateBps,
		AbruptLeaveP:     0.3,
		PlayoutBuffer:    2 * time.Second,
		Behavior:         vod.DefaultBehavior(),
		WatchScale:       1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Sessions <= 0:
		return fmt.Errorf("%w: sessions=%d", dist.ErrBadParameter, c.Sessions)
	case c.VideosPerSession <= 0:
		return fmt.Errorf("%w: videosPerSession=%d", dist.ErrBadParameter, c.VideosPerSession)
	case c.MeanOffTime <= 0:
		return fmt.Errorf("%w: meanOffTime=%v", dist.ErrBadParameter, c.MeanOffTime)
	case c.ProbeInterval <= 0:
		return fmt.Errorf("%w: probeInterval=%v", dist.ErrBadParameter, c.ProbeInterval)
	case c.Horizon < 0:
		return fmt.Errorf("%w: horizon=%v", dist.ErrBadParameter, c.Horizon)
	case c.ChunksPerVideo <= 0:
		return fmt.Errorf("%w: chunksPerVideo=%d", dist.ErrBadParameter, c.ChunksPerVideo)
	case c.BitrateBps <= 0:
		return fmt.Errorf("%w: bitrateBps=%d", dist.ErrBadParameter, c.BitrateBps)
	case c.AbruptLeaveP < 0 || c.AbruptLeaveP > 1:
		return fmt.Errorf("%w: abruptLeaveP=%v", dist.ErrBadParameter, c.AbruptLeaveP)
	case c.PlayoutBuffer < 0:
		return fmt.Errorf("%w: playoutBuffer=%v", dist.ErrBadParameter, c.PlayoutBuffer)
	case c.WatchScale <= 0:
		return fmt.Errorf("%w: watchScale=%v", dist.ErrBadParameter, c.WatchScale)
	}
	return c.Behavior.Validate()
}

// Result aggregates one experiment run. It marshals to JSON with samples
// rendered as percentile summaries, for downstream analysis tooling.
type Result struct {
	Protocol string `json:"protocol"`
	// StartupDelay has one observation (in milliseconds) per video
	// request, excluding local cache hits. It is a bounded log-bucketed
	// histogram, not a raw sample: request volume grows with N (1M+
	// users at the top of the scale sweep), so the unbounded
	// keep-every-observation layout of metrics.Sample is untenable here.
	StartupDelay obs.Hist `json:"startupDelayMs"`
	// PeerBandwidth has one observation per node: the fraction of that
	// node's downloaded chunks served by peers.
	PeerBandwidth metrics.Sample `json:"peerBandwidth"`
	// LinksByVideoIndex[k] samples a node's link count right after it
	// watched its (k+1)-th video of a session — the Fig. 18 series.
	LinksByVideoIndex []metrics.Sample `json:"linksByVideoIndex"`
	// Hit counters by source.
	CacheHits  metrics.Counter `json:"cacheHits"`
	PrefixHits metrics.Counter `json:"prefixHits"`
	PeerHits   metrics.Counter `json:"peerHits"`
	ServerHits metrics.Counter `json:"serverHits"`
	// Messages counts query messages sent by the protocol.
	Messages metrics.Counter `json:"messages"`
	// ProbeMessages counts maintenance probe messages.
	ProbeMessages metrics.Counter `json:"probeMessages"`
	// ServerBytes / PeerBytes are total bytes served.
	ServerBytes int64 `json:"serverBytes"`
	PeerBytes   int64 `json:"peerBytes"`
	// Requests is the total number of video requests issued.
	Requests int64 `json:"requests"`
	// SimulatedTime is the virtual time the run covered.
	SimulatedTime time.Duration `json:"simulatedTimeNanos"`
	// Obs is the protocol's dense counter snapshot at the end of the run
	// (zero when the protocol is not obs.Instrumented), plus the chunk
	// split the runner accounts itself.
	Obs obs.Counters `json:"obs"`
	// Engine is the discrete-event engine's accounting.
	Engine sim.Stats `json:"engine"`
	// Resilience aggregates the fault layer's degradation metrics; every
	// field is zero when no fault plan was installed.
	Resilience Resilience `json:"resilience"`
	// Mem is the run's memory accounting: deterministic trace footprint
	// (bytes, bytes-per-user) plus the environmental heap high-water
	// mark, which MemUsage keeps out of the JSON encoding so same-seed
	// Results marshal byte-identically.
	Mem obs.MemUsage `json:"mem"`
	// Sharded carries the community-sharded run's extra accounting
	// (RunSharded); nil for single-engine runs, whose JSON is unchanged.
	Sharded *ShardedInfo `json:"sharded,omitempty"`
	// Timeline is the per-window telemetry recorded when
	// Options.TimelineWindow (or ShardedOptions.TimelineWindow) is set;
	// nil otherwise, keeping the JSON of untimed runs unchanged. Windows
	// are keyed by simulated time, so same-seed timelines are
	// byte-identical — in sharded runs for any worker count.
	Timeline *obs.Timeline `json:"timeline,omitempty"`
	// Load carries the open-loop engine's accounting when Options.Load
	// (or ShardedOptions.Load) installed an offered-load profile, or
	// when a fault plan fired a flash crowd; nil otherwise, keeping the
	// JSON of closed-loop runs unchanged.
	Load *LoadInfo `json:"load,omitempty"`
}

// NormalizedPeerBandwidthPercentiles returns the paper's Fig. 16 triplet:
// the 1st, 50th and 99th percentile of per-node normalized peer bandwidth.
func (r *Result) NormalizedPeerBandwidthPercentiles() (p1, p50, p99 float64) {
	return r.PeerBandwidth.Percentile(1), r.PeerBandwidth.Percentile(50), r.PeerBandwidth.Percentile(99)
}

// String summarizes the run in one human-readable line.
func (r *Result) String() string {
	_, p50, _ := r.NormalizedPeerBandwidthPercentiles()
	return fmt.Sprintf(
		"%s: %d requests (cache %d / peer %d / server %d), peer-bw p50 %.2f, startup p50 %.0f ms over %v",
		r.Protocol, r.Requests, r.CacheHits.Value(), r.PeerHits.Value(), r.ServerHits.Value(),
		p50, r.StartupDelay.Percentile(50), r.SimulatedTime.Round(time.Second))
}

// runner carries one experiment's mutable state.
type runner struct {
	cfg    Config
	tr     *trace.Trace
	proto  vod.Protocol
	net    *simnet.Network
	engine *sim.Engine
	g      *dist.RNG
	picker *vod.Picker
	timed  Timed // non-nil when the protocol wants clock callbacks
	// ctr is the protocol's counter block when it is obs.Instrumented,
	// otherwise a private scratch block, so the runner's own accounting
	// (chunk split) never needs a nil check.
	ctr *obs.Counters
	res *Result
	// Per-node chunk accounting for normalized peer bandwidth.
	peerChunks   []int64
	serverChunks []int64
	sessionsLeft []int
	online       []bool
	// gen is a per-node session generation: a crash abandons the
	// session chain, and the generation check stops its still-queued
	// finish events from resurrecting after a rejoin.
	gen []uint64
	// Fault-injection state (internal/faults). All of it stays
	// zero-valued without a plan, so a healthy run pays only cheap
	// comparisons on the hot path and draws no extra randomness.
	crashed      []bool
	crashedCount int
	// rejoinsPending counts scheduled-but-unfired rejoin events, so the
	// probe loop knows crashed nodes will come back (see probeAll).
	rejoinsPending int
	windows        int // open burst/outage/brownout/chaos windows
	latencyFactor  float64
	burstLossP     float64
	// chaosLossP is the per-request probability a located provider's
	// delivery dies to frame-level chaos (corrupt/truncate/stall — the
	// sim has no frames, so the window degrades like a lossy burst;
	// duplicated frames are harmless and not counted).
	chaosLossP  float64
	outageUntil time.Duration
	repairer    Repairer
	reseeder    Reseeder
	// mem samples the heap high-water mark once per watermarkEvery
	// requests (power of two, so the hot path pays one mask test).
	mem *obs.MemWatermark
	// remote routes cross-community lookups in sharded runs (RunSharded);
	// nil for single-engine runs, whose hot path pays one comparison.
	remote *remoteRouter
	// cell is this runner's community cell index in a sharded run.
	cell int
	// tl is the per-window telemetry recorder; nil unless
	// Options.TimelineWindow is set, so untimed runs pay one comparison.
	tl *timelineRec
	// Open-loop load state (Options.Load / flash-crowd fault events);
	// all nil/zero in closed-loop runs.
	loadGen *load.Gen
	// loadG is a dedicated RNG for arrival-side decisions (idle-node
	// choice, session sampling) so installing a load profile never
	// perturbs the main stream's draws.
	loadG *dist.RNG
	// flashChannel is the channel whose top video a flash arrival
	// requests.
	flashChannel int
	// flashGens counts plan-driven flash generators still emitting.
	flashGens int
}

// timelineRec bundles the runner's timeline series handles. The series
// set and registration order are fixed — every cell of a sharded run
// builds the same layout, which is what makes cell-order merging valid.
type timelineRec struct {
	tl           *obs.Timeline
	requests     *obs.Series
	cacheHits    *obs.Series
	peerHits     *obs.Series
	serverHits   *obs.Series
	startup      *obs.Series
	serverBytes  *obs.Series
	breakerOpens *obs.Series
	// offered counts open-loop arrivals per window; shed counts
	// requests the bounded server queue turned away. Both stay flat
	// zero in closed-loop, unbounded runs.
	offered *obs.Series
	shed    *obs.Series
	// lastOpens is the previous breaker-open total, so each request
	// files the delta into its own window.
	lastOpens uint64
}

func newTimelineRec(window time.Duration) *timelineRec {
	tl := obs.NewTimeline(window)
	return &timelineRec{
		tl:           tl,
		requests:     tl.Counter("requests"),
		cacheHits:    tl.Counter("cacheHits"),
		peerHits:     tl.Counter("peerHits"),
		serverHits:   tl.Counter("serverHits"),
		startup:      tl.Hist("startupDelayMs"),
		serverBytes:  tl.Counter("serverBytes"),
		breakerOpens: tl.Counter("breakerOpens"),
		offered:      tl.Counter("offered"),
		shed:         tl.Counter("serverShed"),
	}
}

// record files one completed request into the window of its *issue* time
// (reqAt): the request belongs to the load of the window that produced
// it, even when a cross-cell barrier delays the reply.
func (t *timelineRec) record(ctr *obs.Counters, res vod.RequestResult, reqAt, ready time.Duration, servedBytes int64, shed bool) {
	t.requests.Add(reqAt, 1)
	if shed {
		t.shed.Add(reqAt, 1)
		if opens := ctr.BreakerOpens; opens != t.lastOpens {
			t.breakerOpens.Add(reqAt, int64(opens-t.lastOpens))
			t.lastOpens = opens
		}
		return
	}
	switch res.Source {
	case vod.SourceCache:
		t.cacheHits.Add(reqAt, 1)
	case vod.SourcePeer:
		t.peerHits.Add(reqAt, 1)
	default:
		t.serverHits.Add(reqAt, 1)
	}
	if res.Source != vod.SourceCache {
		t.startup.Observe(reqAt, float64(ready-reqAt)/float64(time.Millisecond))
	}
	if servedBytes > 0 {
		t.serverBytes.Add(reqAt, servedBytes)
	}
	if opens := ctr.BreakerOpens; opens != t.lastOpens {
		t.breakerOpens.Add(reqAt, int64(opens-t.lastOpens))
		t.lastOpens = opens
	}
}

// watermarkEvery is the request period between heap samples. ReadMemStats
// stops the world, so the period trades watermark resolution against run
// slowdown; 4096 keeps the cost invisible even at 1M users.
const watermarkEvery = 4096

// Run drives the protocol over the trace and returns aggregated metrics.
// The protocol must be driven by at most one Run at a time.
func Run(cfg Config, tr *trace.Trace, proto vod.Protocol, netCfg simnet.Config) (*Result, error) {
	return RunCtx(context.Background(), cfg, tr, proto, netCfg, Options{})
}

// RunCtx is Run with cooperative cancellation and cross-cutting options:
// a deterministic fault plan and/or a tracer. A healthy RunCtx (zero
// Options) is bit-identical to Run — fault support draws no randomness
// and schedules no events unless a plan is installed.
func RunCtx(ctx context.Context, cfg Config, tr *trace.Trace, proto vod.Protocol, netCfg simnet.Config, opts Options) (*Result, error) {
	r, err := newRunner(cfg, tr, proto, netCfg)
	if err != nil {
		return nil, err
	}
	if opts.Tracer != nil {
		if traceable, ok := proto.(obs.Traceable); ok {
			traceable.SetTracer(opts.Tracer)
		}
	}
	if opts.TimelineWindow > 0 {
		r.tl = newTimelineRec(opts.TimelineWindow)
		r.res.Timeline = r.tl.tl
	}
	if opts.Load != nil {
		// Open loop: arrivals come from the rate profile instead of
		// per-user session chains (sessionsLeft stays 0 everywhere).
		if err := r.installLoad(opts.Load); err != nil {
			return nil, err
		}
	} else {
		for i := range tr.Users {
			r.sessionsLeft[i] = cfg.Sessions
			// Stagger initial arrivals across one mean off-period.
			delay := time.Duration(dist.Exponential(r.g, float64(cfg.MeanOffTime)))
			node := i
			r.engine.At(delay, func(now time.Duration) { r.startSession(node, now) })
		}
	}
	if m, ok := proto.(Maintainer); ok {
		r.engine.After(cfg.ProbeInterval, func(now time.Duration) { r.probeAll(m, now) })
	}
	if opts.Faults != nil {
		sched, err := opts.Faults.Compile(len(tr.Users))
		if err != nil {
			return nil, fmt.Errorf("fault plan: %w", err)
		}
		for _, ev := range sched.Events {
			if ev.Kind == faults.KindFlashStart {
				if err := r.checkFlashChannel(ev.Channel); err != nil {
					return nil, fmt.Errorf("fault plan: %w", err)
				}
			}
		}
		if rp, ok := proto.(Repairer); ok {
			r.repairer = rp
		}
		if rs, ok := proto.(Reseeder); ok {
			r.reseeder = rs
		}
		r.scheduleFaults(sched)
	}
	if err := r.engine.RunCtx(ctx, cfg.Horizon, 0); err != nil {
		return nil, err
	}
	r.finalize()
	return r.res, nil
}

// newRunner validates the inputs and builds a fully wired runner with no
// events scheduled yet. Split from RunCtx so lifecycle unit tests can
// drive individual transitions (startSession/watch/endSession) directly.
func newRunner(cfg Config, tr *trace.Trace, proto vod.Protocol, netCfg simnet.Config) (*runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("exp config: %w", err)
	}
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: experiment needs a non-empty trace", dist.ErrBadParameter)
	}
	if proto == nil {
		return nil, fmt.Errorf("%w: nil protocol", dist.ErrBadParameter)
	}
	network, err := simnet.New(netCfg)
	if err != nil {
		return nil, err
	}
	picker, err := vod.NewPicker(tr, cfg.Behavior)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:    cfg,
		tr:     tr,
		proto:  proto,
		net:    network,
		engine: sim.NewEngine(),
		g:      dist.NewRNG(cfg.Seed),
		picker: picker,
		res: &Result{
			Protocol:          proto.Name(),
			LinksByVideoIndex: make([]metrics.Sample, cfg.VideosPerSession),
		},
		peerChunks:    make([]int64, len(tr.Users)),
		serverChunks:  make([]int64, len(tr.Users)),
		sessionsLeft:  make([]int, len(tr.Users)),
		online:        make([]bool, len(tr.Users)),
		gen:           make([]uint64, len(tr.Users)),
		crashed:       make([]bool, len(tr.Users)),
		latencyFactor: 1,
		mem:           obs.NewMemWatermark(watermarkEvery),
		flashChannel:  -1,
	}
	if timed, ok := proto.(Timed); ok {
		r.timed = timed
	}
	if inst, ok := proto.(obs.Instrumented); ok {
		r.ctr = inst.ObsCounters()
	} else {
		r.ctr = &obs.Counters{}
	}
	return r, nil
}

// tick forwards the virtual clock to Timed protocols.
func (r *runner) tick(now time.Duration) {
	if r.timed != nil {
		r.timed.SetNow(now)
	}
}

func (r *runner) startSession(node int, now time.Duration) {
	// A crashed node's wake-up events are swallowed until it rejoins;
	// an online guard stops a late wake-up (consumed by an earlier
	// rejoin) from nesting a second session. Neither can trigger
	// without a fault plan.
	if r.sessionsLeft[node] <= 0 || r.crashed[node] || r.online[node] {
		return
	}
	r.tick(now)
	r.sessionsLeft[node]--
	r.online[node] = true
	r.gen[node]++
	r.proto.Join(node)
	user := &r.tr.Users[node]
	plan := r.picker.PlanSession(r.g, user, r.cfg.VideosPerSession, r.cfg.MeanOffTime)
	r.watch(node, plan, 0, r.gen[node], now)
}

// watch requests plan.Videos[idx], accounts its delivery, and schedules the
// next step after playback. gen is the session generation the chain
// belongs to; a crash+rejoin supersedes it and orphans the old chain.
func (r *runner) watch(node int, plan vod.SessionPlan, idx int, gen uint64, now time.Duration) {
	if r.gen[node] != gen {
		return
	}
	if idx >= len(plan.Videos) || !r.online[node] {
		r.endSession(node, plan.OffTime)
		return
	}
	v := plan.Videos[idx]
	r.tick(now)
	res := r.proto.Request(node, v)
	r.res.Requests++
	r.mem.Tick()
	r.res.Messages.Addn(int64(res.Messages))
	r.accountFaults(&res)
	if r.remote != nil && res.Source == vod.SourceServer &&
		r.remote.forward(r, node, plan, idx, gen, v, res, now) {
		// The lookup is in flight to the video's home community; the
		// session chain resumes in watchAccount when the reply event
		// arrives after the epoch barrier.
		return
	}
	r.watchAccount(node, plan, idx, gen, v, res, now, now, false)
}

// watchAccount is the second half of watch: account the located result's
// delivery and schedule the post-playback step. reqAt is when the request
// was issued and now when the result became known — they differ only for
// cross-community lookups, whose barrier wait is real startup delay.
// remotePeer marks a provider living in another community cell, delivered
// by the analytic cross-community path instead of the local simnet.
func (r *runner) watchAccount(node int, plan vod.SessionPlan, idx int, gen uint64, v trace.VideoID, res vod.RequestResult, reqAt, now time.Duration, remotePeer bool) {
	if r.gen[node] != gen {
		return
	}
	video := r.tr.Video(v)
	// Chunk sizes scale with WatchScale so compressed timelines offer the
	// server a proportionally compressed load; otherwise time compression
	// would multiply the offered bitrate without scaling capacity.
	chunkBytes := int64(float64(vod.ChunkBytes(video.Length, r.cfg.BitrateBps, r.cfg.ChunksPerVideo)) * r.cfg.WatchScale)
	var ready time.Duration // when playback can start
	var shed bool           // server admission queue turned the request away
	switch res.Source {
	case vod.SourceCache:
		r.res.CacheHits.Inc()
		ready = now
	case vod.SourcePeer:
		r.res.PeerHits.Inc()
		if remotePeer {
			ready = r.remote.deliverRemote(r, node, res, chunkBytes, now)
		} else {
			ready, _ = r.deliver(node, simnet.NodeID(res.Provider), res, chunkBytes, now)
		}
		r.peerChunks[node] += int64(r.cfg.ChunksPerVideo)
		r.ctr.ChunksPeer += uint64(r.cfg.ChunksPerVideo)
	case vod.SourceServer:
		at := now
		if r.outageUntil > now {
			// The server is dark: the request retries until the
			// outage lifts, then is served (graceful fallback). The
			// wait shows up as startup delay.
			at = r.outageUntil
			r.res.Resilience.ServerDeferred++
		}
		ready, shed = r.deliver(node, simnet.ServerID, res, chunkBytes, at)
		if shed {
			// Queue full: the viewer gives up on this video. No bytes
			// moved, so it counts neither as a server hit nor toward
			// the node's chunk split or the startup-delay histogram.
			r.ctr.ServerShed++
			if r.res.Load != nil {
				r.res.Load.ServerShed++
			}
		} else {
			r.res.ServerHits.Inc()
			r.ctr.ServerAdmitted++
			if r.res.Load != nil {
				r.res.Load.ServerAdmitted++
			}
			r.serverChunks[node] += int64(r.cfg.ChunksPerVideo)
			r.ctr.ChunksServer += uint64(r.cfg.ChunksPerVideo)
		}
	default:
		ready = now
	}
	if res.Source != vod.SourceCache && !shed {
		r.res.StartupDelay.AddDuration(ready - reqAt)
		if res.PrefixCached {
			r.res.PrefixHits.Inc()
		}
	}
	if r.tl != nil {
		served := int64(0)
		if res.Source == vod.SourceServer && !shed {
			served = chunkBytes * int64(r.cfg.ChunksPerVideo)
			if res.PrefixCached {
				served -= chunkBytes
			}
		}
		r.tl.record(r.ctr, res, reqAt, ready, served, shed)
	}
	if shed {
		// The abandoned video still advances the session chain: the
		// viewer moves on to the next one immediately.
		r.engine.At(ready, func(at time.Duration) {
			if !r.online[node] || r.gen[node] != gen {
				return
			}
			r.tick(at)
			r.watch(node, plan, idx+1, gen, at)
		})
		return
	}

	playback := time.Duration(float64(video.Length) * r.cfg.WatchScale)
	finishAt := ready + playback
	r.engine.At(finishAt, func(at time.Duration) {
		if !r.online[node] || r.gen[node] != gen {
			return
		}
		r.tick(at)
		r.proto.Finish(node, v)
		if idx < len(r.res.LinksByVideoIndex) {
			r.res.LinksByVideoIndex[idx].Add(float64(r.proto.Links(node)))
		}
		r.watch(node, plan, idx+1, gen, at)
	})
}

// deliver models the network path of one video: the query travels the
// overlay hops, then the video streams from the provider. Playback starts
// once the playout buffer has arrived; the rest of the video streams during
// playback (it still occupies the provider's uplink, so overload shows up
// as queueing delay). A prefetched first chunk starts playback immediately,
// and only the remainder — total minus the local chunk — crosses the
// provider's uplink. Server deliveries pass through the bounded admission
// queue when the simnet configures one: shed=true means the queue was full,
// no bytes moved and the viewer abandoned this video.
func (r *runner) deliver(node int, from simnet.NodeID, res vod.RequestResult, chunkBytes int64, now time.Duration) (ready time.Duration, shed bool) {
	to := simnet.NodeID(node)
	// Query path: one one-way latency per overlay hop (server requests
	// pay one round trip to the server).
	lat := r.net.Latency(from, to)
	if r.latencyFactor != 1 && r.latencyFactor > 0 {
		// A link burst is open: propagation is degraded (factor > 1) or
		// boosted (recovery factors in (0,1)) everywhere.
		lat = time.Duration(float64(lat) * r.latencyFactor)
	}
	queryDelay := time.Duration(res.Hops+1) * lat
	start := now + queryDelay

	total := chunkBytes * int64(r.cfg.ChunksPerVideo)
	fetch := total
	if res.PrefixCached {
		// The leading chunk is already local: only the remainder is
		// fetched over the provider's uplink.
		fetch = total - chunkBytes
		if fetch < 0 {
			fetch = 0
		}
	}
	buffer := int64(float64(r.cfg.BitrateBps) * r.cfg.PlayoutBuffer.Seconds() / 8 * r.cfg.WatchScale)
	if buffer > fetch {
		buffer = fetch
	}
	if from == simnet.ServerID {
		head := buffer
		if res.PrefixCached {
			// Playback starts from the local chunk; the whole fetch
			// streams behind it.
			head = 0
		}
		headDone, ok := r.net.ServerTransfer(to, head, fetch, start)
		if !ok {
			return now, true
		}
		if res.PrefixCached {
			return now, false
		}
		return headDone, false
	}
	if res.PrefixCached {
		if fetch > 0 {
			r.net.Transfer(from, to, fetch, start)
		}
		return now, false
	}
	bufferDone := r.net.Transfer(from, to, buffer, start)
	if rest := fetch - buffer; rest > 0 {
		r.net.Transfer(from, to, rest, start)
	}
	return bufferDone, false
}

// endSession closes a node's session chain. The usual caller is watch()
// on an online node that ran out of videos; the departure (graceful or
// abrupt) is announced to the protocol there. watch() can also land here
// with the node already offline — its online flag dropped mid-chain —
// and in that case the departure already happened, but the remaining
// sessionsLeft must still be rescheduled or the node is stranded
// forever. Crashed nodes are the exception: their restart belongs to
// the pending rejoin event, so rescheduling here would double-book.
func (r *runner) endSession(node int, offTime time.Duration) {
	if r.online[node] {
		r.online[node] = false
		if r.g.Bool(r.cfg.AbruptLeaveP) {
			r.proto.Fail(node)
		} else {
			r.proto.Leave(node)
		}
	} else if r.crashed[node] {
		return
	}
	if r.sessionsLeft[node] > 0 {
		r.engine.After(offTime, func(now time.Duration) { r.startSession(node, now) })
	}
}

func (r *runner) probeAll(m Maintainer, now time.Duration) {
	for node := range r.online {
		if r.online[node] {
			r.res.ProbeMessages.Addn(int64(m.Probe(node)))
		}
	}
	// Keep probing while any session work remains. A permanently
	// crashed node (a wave with DownFor 0) no longer counts as work —
	// but while rejoin events are still pending, crashed nodes with
	// sessions left will come back, so the probe loop must stay alive.
	// (Without that clause a probe tick landing while the whole
	// population is down ends maintenance for the rest of the run.)
	// An open-loop arrival stream (or a still-running flash crowd) is
	// future work too, even at an instant when nobody is online.
	if (r.loadGen != nil && !r.loadGen.Done()) || r.flashGens > 0 {
		r.engine.After(r.cfg.ProbeInterval, func(at time.Duration) { r.probeAll(m, at) })
		return
	}
	rejoinable := r.rejoinsPending > 0
	for node := range r.sessionsLeft {
		if r.online[node] || (r.sessionsLeft[node] > 0 && (!r.crashed[node] || rejoinable)) {
			r.engine.After(r.cfg.ProbeInterval, func(at time.Duration) { r.probeAll(m, at) })
			return
		}
	}
}

func (r *runner) finalize() {
	for node := range r.tr.Users {
		total := r.peerChunks[node] + r.serverChunks[node]
		if total == 0 {
			continue
		}
		r.res.PeerBandwidth.Add(float64(r.peerChunks[node]) / float64(total))
	}
	r.res.ServerBytes = r.net.ServerBytes()
	r.res.PeerBytes = r.net.PeerBytes()
	if r.res.Load != nil {
		r.res.Load.QueuePeak = r.net.ServerQueuePeak()
	}
	r.res.SimulatedTime = r.engine.Now()
	r.res.Obs = r.ctr.Snapshot()
	r.res.Engine = r.engine.Stats()
	r.res.Mem = obs.MemUsage{
		TraceBytes:    r.tr.Bytes(),
		HeapHighWater: r.mem.Sample(),
	}
	r.res.Mem.BytesPerUser = float64(r.res.Mem.TraceBytes) / float64(len(r.tr.Users))
}
