package exp

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// testPlan stresses a quickConfig workload: the churn wave, outage and
// burst all land inside the first hour, where sessions are dense.
func testPlan(seed int64) *faults.Plan {
	return faults.ChurnPlan(seed, 4*time.Minute)
}

func runWithPlan(t *testing.T, tr *trace.Trace, proto vod.Protocol, plan *faults.Plan) *Result {
	t.Helper()
	res, err := RunCtx(context.Background(), quickConfig(), tr, proto, simnet.DefaultConfig(), Options{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultPlanDeterministic pins the acceptance criterion: the same
// seed and plan produce a bit-identical Result (counter snapshot
// included) run over run.
func TestFaultPlanDeterministic(t *testing.T) {
	tr := expTrace(t)
	a := runWithPlan(t, tr, socialTube(t, tr), testPlan(5))
	b := runWithPlan(t, tr, socialTube(t, tr), testPlan(5))
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("same plan+seed produced different results:\n%s\nvs\n%s", ja, jb)
	}
	if a.Obs != b.Obs {
		t.Fatal("counter snapshots diverged")
	}
	if a.Resilience.Crashes == 0 {
		t.Fatal("plan applied no crashes; the determinism check is vacuous")
	}
}

// TestHealthyRunUnchangedByFaultSupport pins that RunCtx with zero
// Options is bit-identical to the legacy Run path.
func TestHealthyRunUnchangedByFaultSupport(t *testing.T) {
	tr := expTrace(t)
	legacy := runProto(t, tr, socialTube(t, tr))
	ctxed, err := RunCtx(context.Background(), quickConfig(), tr, socialTube(t, tr), simnet.DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	jl, _ := json.Marshal(legacy)
	jc, _ := json.Marshal(ctxed)
	if string(jl) != string(jc) {
		t.Fatal("healthy RunCtx diverged from Run")
	}
	rz := legacy.Resilience
	if rz.Crashes != 0 || rz.RequestsDuringFaults != 0 || rz.RepairLatencyMs.Len() != 0 {
		t.Fatal("healthy run recorded resilience activity")
	}
}

// TestFaultsDegradeAndRepair checks the fault machinery end to end on
// SocialTube: crashes and rejoins happen, repair rounds run, repair
// latency is sampled and fault-time hit rate is measured.
func TestFaultsDegradeAndRepair(t *testing.T) {
	tr := expTrace(t)
	res := runWithPlan(t, tr, socialTube(t, tr), testPlan(5))
	rz := res.Resilience
	if rz.Crashes == 0 || rz.Rejoins == 0 {
		t.Fatalf("no churn applied: %+v", rz)
	}
	if rz.Rejoins > rz.Crashes {
		t.Fatalf("more rejoins (%d) than crashes (%d)", rz.Rejoins, rz.Crashes)
	}
	if rz.RepairRounds == 0 {
		t.Fatal("SocialTube ran no repair rounds")
	}
	if rz.RepairMsgs == 0 {
		t.Fatal("repair rounds exchanged no messages")
	}
	if rz.RepairLatencyMs.Len() == 0 {
		t.Fatal("no repair latency samples")
	}
	if maxMs := rz.RepairLatencyMs.Max(); maxMs > float64(testPlan(5).DetectDelay/time.Millisecond) {
		t.Fatalf("repair latency %v ms exceeds the plan's detection delay", maxMs)
	}
	if rz.RequestsDuringFaults == 0 {
		t.Fatal("no requests overlapped the fault windows; plan timing is off")
	}
	if hr := rz.HitRateUnderFaults(); hr <= 0 || hr > 1 {
		t.Fatalf("hit rate under faults %v outside (0,1]", hr)
	}
	if res.Obs.RepairCalls == 0 || res.Obs.OverlayFails == 0 {
		t.Fatalf("protocol counters missed the churn: %+v", res.Obs)
	}
}

// TestBaselineRunsUnderSamePlan ensures protocols without repair hooks
// survive the identical plan (they recover via probing alone).
func TestBaselineRunsUnderSamePlan(t *testing.T) {
	tr := expTrace(t)
	for _, proto := range []vod.Protocol{netTube(t, tr), paVoD(t, tr)} {
		res := runWithPlan(t, tr, proto, testPlan(5))
		rz := res.Resilience
		if rz.Crashes == 0 {
			t.Fatalf("%s: no crashes applied", proto.Name())
		}
		if rz.RepairRounds != 0 || rz.RepairMsgs != 0 {
			t.Fatalf("%s: baseline reported repair work: %+v", proto.Name(), rz)
		}
		if rz.OrphanFraction.Len() == 0 {
			t.Fatalf("%s: orphan fraction never sampled", proto.Name())
		}
	}
}

// TestOutageDefersServerRequests pins the graceful-fallback model: an
// outage window defers (never drops) server requests.
func TestOutageDefersServerRequests(t *testing.T) {
	tr := expTrace(t)
	plan := &faults.Plan{
		Seed:    3,
		Outages: []faults.Outage{{At: 2 * time.Minute, Duration: 20 * time.Minute}},
	}
	res := runWithPlan(t, tr, socialTube(t, tr), plan)
	if res.Resilience.ServerDeferred == 0 {
		t.Fatal("20-minute outage deferred no server requests")
	}
	total := res.CacheHits.Value() + res.PeerHits.Value() + res.ServerHits.Value()
	if total != res.Requests {
		t.Fatalf("requests lost during outage: %d served of %d", total, res.Requests)
	}
}

func TestRunCtxCancelled(t *testing.T) {
	tr := expTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, quickConfig(), tr, socialTube(t, tr), simnet.DefaultConfig(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunCtxRejectsBadPlan(t *testing.T) {
	tr := expTrace(t)
	bad := &faults.Plan{Waves: []faults.ChurnWave{{At: time.Second}}}
	if _, err := RunCtx(context.Background(), quickConfig(), tr, socialTube(t, tr), simnet.DefaultConfig(), Options{Faults: bad}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
