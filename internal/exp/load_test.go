package exp

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/load"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// scriptedProto is a minimal protocol whose Request answers come from a
// fixed function — the byte-accounting tests need exact control over the
// located source, which real protocols don't give.
type scriptedProto struct {
	request func(node int, v trace.VideoID) vod.RequestResult
}

func (s *scriptedProto) Name() string              { return "scripted" }
func (s *scriptedProto) Join(int)                  {}
func (s *scriptedProto) Leave(int)                 {}
func (s *scriptedProto) Fail(int)                  {}
func (s *scriptedProto) Finish(int, trace.VideoID) {}
func (s *scriptedProto) Links(int) int             { return 0 }
func (s *scriptedProto) Request(node int, v trace.VideoID) vod.RequestResult {
	return s.request(node, v)
}

func alwaysServer() *scriptedProto {
	return &scriptedProto{request: func(int, trace.VideoID) vod.RequestResult {
		return vod.RequestResult{Source: vod.SourceServer}
	}}
}

func deliverRunner(t *testing.T) *runner {
	t.Helper()
	r, err := newRunner(quickConfig(), expTrace(t), alwaysServer(), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDeliverPrefixCachedServerBytes is the regression test for the
// prefix-cached double count: with the first chunk already local, only
// total − chunkBytes may cross the server's uplink. The old deliver
// fetched the buffer head and then the full remainder, billing the
// prefetched chunk's bytes a second time.
func TestDeliverPrefixCachedServerBytes(t *testing.T) {
	r := deliverRunner(t)
	const chunkBytes = 1_000_000
	chunks := int64(r.cfg.ChunksPerVideo)
	res := vod.RequestResult{Source: vod.SourceServer, PrefixCached: true}
	ready, shed := r.deliver(0, simnet.ServerID, res, chunkBytes, 0)
	if shed {
		t.Fatal("unbounded server shed a request")
	}
	if ready != 0 {
		t.Fatalf("prefix-cached playback should start immediately, got ready=%v", ready)
	}
	if got, want := r.net.ServerBytes(), chunkBytes*(chunks-1); got != want {
		t.Fatalf("server billed %d bytes for a prefix-cached video, want %d (total %d minus the local chunk)",
			got, want, chunkBytes*chunks)
	}
}

// TestDeliverPrefixCachedPeerBytes pins the peer-path half of the same
// bug: a prefix-cached peer delivery fetches total − chunkBytes from the
// provider's uplink, not the full video.
func TestDeliverPrefixCachedPeerBytes(t *testing.T) {
	r := deliverRunner(t)
	const chunkBytes = 1_000_000
	chunks := int64(r.cfg.ChunksPerVideo)
	res := vod.RequestResult{Source: vod.SourcePeer, Provider: 1, PrefixCached: true}
	ready, shed := r.deliver(0, simnet.NodeID(1), res, chunkBytes, 0)
	if shed {
		t.Fatal("peer delivery shed")
	}
	if ready != 0 {
		t.Fatalf("prefix-cached playback should start immediately, got ready=%v", ready)
	}
	if got, want := r.net.PeerBytes(), chunkBytes*(chunks-1); got != want {
		t.Fatalf("peer billed %d bytes for a prefix-cached video, want %d", got, want)
	}
}

// TestDeliverHonorsLatencyBoost is the regression test for the ignored
// boost window: latency factors in (0,1) — a recovery/boost window —
// must scale the query path down, exactly as factors > 1 scale it up.
// The old deliver applied the factor only when it exceeded 1.
func TestDeliverHonorsLatencyBoost(t *testing.T) {
	readyAt := func(factor float64) (time.Duration, time.Duration) {
		r := deliverRunner(t)
		r.latencyFactor = factor
		res := vod.RequestResult{Source: vod.SourceServer}
		ready, shed := r.deliver(0, simnet.ServerID, res, 1_000_000, 0)
		if shed {
			t.Fatal("unbounded server shed a request")
		}
		return ready, r.net.Latency(simnet.ServerID, 0)
	}
	base, lat := readyAt(1)
	for _, factor := range []float64{0.5, 3} {
		ready, _ := readyAt(factor)
		want := base - lat + time.Duration(float64(lat)*factor)
		if ready != want {
			t.Fatalf("factor %g: ready %v, want %v (base %v, latency %v)", factor, ready, want, base, lat)
		}
	}
}

// TestCompilePreservesBoostFactor pins the fault compiler's half of the
// boost fix: a LinkBurst with LatencyFactor in (0,1) compiles to a burst
// event carrying that factor, not one clamped up to 1.
func TestCompilePreservesBoostFactor(t *testing.T) {
	plan := &faults.Plan{
		Seed:   1,
		Bursts: []faults.LinkBurst{{At: time.Second, Duration: time.Second, LatencyFactor: 0.5}},
	}
	sched, err := plan.Compile(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range sched.Events {
		if ev.Kind == faults.KindBurstStart {
			if ev.LatencyFactor != 0.5 {
				t.Fatalf("burst start compiled with factor %g, want 0.5", ev.LatencyFactor)
			}
			return
		}
	}
	t.Fatal("no burst start event compiled")
}

// openLoopConfig sizes an open-loop run: one video per arrival so the
// offered and request rates coincide.
func openLoopConfig() Config {
	cfg := quickConfig()
	cfg.Sessions = 1
	cfg.VideosPerSession = 1
	return cfg
}

// TestOpenLoopShedConservation drives a server-only protocol far past a
// tiny admission queue and pins the shed arithmetic: every offered
// arrival is either dropped busy or becomes a request, and every
// server-bound request is either admitted or shed — shed equals offered
// minus busy minus admitted.
func TestOpenLoopShedConservation(t *testing.T) {
	netCfg := simnet.DefaultConfig()
	netCfg.ServerQueueCap = 4
	prof := &load.Profile{Mode: load.Steady, Seed: 7, RPS: 40, Duration: 60 * time.Second}
	res, err := RunCtx(t.Context(), openLoopConfig(), expTrace(t), alwaysServer(), netCfg,
		Options{Load: prof})
	if err != nil {
		t.Fatal(err)
	}
	info := res.Load
	if info == nil {
		t.Fatal("open-loop run returned no Load block")
	}
	if info.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if info.Offered != info.Busy+res.Requests {
		t.Fatalf("offered %d != busy %d + requests %d", info.Offered, info.Busy, res.Requests)
	}
	admitted, shed := int64(res.Obs.ServerAdmitted), int64(res.Obs.ServerShed)
	if shed == 0 {
		t.Fatal("saturating run shed nothing — the queue bound is not biting")
	}
	if admitted+shed != res.Requests {
		t.Fatalf("admitted %d + shed %d != server requests %d", admitted, shed, res.Requests)
	}
	if shed != info.Offered-info.Busy-admitted {
		t.Fatalf("shed %d != offered %d − busy %d − admitted %d", shed, info.Offered, info.Busy, admitted)
	}
	if info.ServerAdmitted != admitted || info.ServerShed != shed {
		t.Fatalf("Load block (%d admitted / %d shed) disagrees with obs counters (%d / %d)",
			info.ServerAdmitted, info.ServerShed, admitted, shed)
	}
	if info.QueuePeak <= 0 || info.QueuePeak > netCfg.ServerQueueCap {
		t.Fatalf("queue peak %d outside (0, %d]", info.QueuePeak, netCfg.ServerQueueCap)
	}
	if res.ServerHits.Value() != admitted {
		t.Fatalf("server hits %d != admitted %d", res.ServerHits.Value(), admitted)
	}
}

// TestOpenLoopDeterminism pins reproducibility end to end: two same-seed
// open-loop runs of a real protocol marshal to byte-identical Results.
func TestOpenLoopDeterminism(t *testing.T) {
	tr := expTrace(t)
	netCfg := simnet.DefaultConfig()
	netCfg.ServerQueueCap = 8
	prof := &load.Profile{
		Mode: load.Burst, Seed: 3, RPS: 6, BurstRPS: 30,
		BurstAt: 20 * time.Second, BurstFor: 10 * time.Second,
		Duration: 60 * time.Second,
		Flash:    &load.FlashCrowd{Channel: 2, At: 10 * time.Second, For: 15 * time.Second},
	}
	run := func() []byte {
		t.Helper()
		res, err := RunCtx(t.Context(), openLoopConfig(), tr, socialTube(t, tr), netCfg,
			Options{Load: prof})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed open-loop runs marshalled differently:\n%s\nvs\n%s", a, b)
	}
}

// TestOpenLoopShardedWorkerInvariance pins the sharded engine's
// layout-independence under open-loop load with a flash crowd: the full
// merged Result must be byte-identical for 1 and 4 workers.
func TestOpenLoopShardedWorkerInvariance(t *testing.T) {
	tr := expTrace(t)
	netCfg := simnet.DefaultConfig()
	netCfg.ServerQueueCap = 8
	prof := &load.Profile{
		Mode: load.Steady, Seed: 5, RPS: 20, Duration: 45 * time.Second,
		Flash: &load.FlashCrowd{Channel: 1, At: 10 * time.Second, For: 10 * time.Second},
	}
	run := func(workers int) []byte {
		t.Helper()
		res, err := RunSharded(openLoopConfig(), tr, socialTubeFactory(1), netCfg,
			ShardedOptions{Workers: workers, Load: prof})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(1), run(4)
	if string(a) != string(b) {
		t.Fatalf("worker counts 1 and 4 marshalled differently:\n%s\nvs\n%s", a, b)
	}
}

// TestFlashPlanLayersArrivals smokes the plan-driven flash crowd on a
// closed-loop run: a faults.FlashPlan injects extra viral-video arrivals
// without an Options.Load profile, and they land in Result.Load.
func TestFlashPlanLayersArrivals(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	cfg.Sessions = 1
	cfg.VideosPerSession = 2
	res, err := RunCtx(t.Context(), cfg, tr, socialTube(t, tr), simnet.DefaultConfig(),
		Options{Faults: faults.FlashPlan(1, 30*time.Second, 0, 15)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Load == nil {
		t.Fatal("flash plan ran but Result.Load is nil")
	}
	if res.Load.FlashOffered == 0 {
		t.Fatal("flash plan offered no flash arrivals")
	}
	if res.Load.Offered != res.Load.FlashOffered {
		t.Fatalf("closed-loop run offered %d profile arrivals, want flash only (%d)",
			res.Load.Offered, res.Load.FlashOffered)
	}
}
