package exp

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/core"
	"github.com/socialtube/socialtube/internal/simnet"
)

// TestStartupIsBufferNotChunkBound: with the streaming model, a peer-served
// video's startup delay is bounded by the playout buffer transfer, far
// below a half-video chunk download.
func TestStartupIsBufferNotChunkBound(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	res, err := Run(cfg, tr, socialTube(t, tr), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A scaled chunk is length/2 * bitrate * WatchScale bytes; at 1 Mbps
	// a median 4-minute video's chunk takes ≈1.9 s to ship. The median
	// startup must sit well below that because only the buffer gates
	// playback.
	if p50 := res.StartupDelay.Percentile(50); p50 > 1500 {
		t.Fatalf("median startup %.0f ms — buffer-gated playback should be far below a chunk transfer", p50)
	}
}

// TestMessagesGrowWithTTL: the search overhead knob works end to end.
func TestMessagesGrowWithTTL(t *testing.T) {
	tr := expTrace(t)
	perRequest := func(ttl int) float64 {
		cfg := core.DefaultConfig()
		cfg.TTL = ttl
		sys, err := core.New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(quickConfig(), tr, sys, simnet.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests == 0 {
			t.Fatal("no requests")
		}
		return float64(res.Messages.Value()) / float64(res.Requests)
	}
	low, high := perRequest(1), perRequest(3)
	if high <= low {
		t.Fatalf("messages per request did not grow with TTL: ttl1=%.2f ttl3=%.2f", low, high)
	}
}

// TestPrefixHitsHaveZeroStartup: prefetch hits must contribute zero startup
// observations, dragging the with-prefetch median down.
func TestPrefixHitsHaveZeroStartup(t *testing.T) {
	tr := expTrace(t)
	res, err := Run(quickConfig(), tr, socialTube(t, tr), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefixHits.Value() == 0 {
		t.Skip("no prefetch hits in this workload")
	}
	if res.StartupDelay.Min() != 0 {
		t.Fatalf("min startup %.3f ms, want 0 from prefix hits", res.StartupDelay.Min())
	}
}

// TestWatchScaleCompressesSimulatedTime: the same workload at a smaller
// WatchScale finishes in less virtual time.
func TestWatchScaleCompressesSimulatedTime(t *testing.T) {
	tr := expTrace(t)
	runAt := func(scale float64) time.Duration {
		cfg := quickConfig()
		cfg.Sessions = 1
		cfg.WatchScale = scale
		res, err := Run(cfg, tr, socialTube(t, tr), simnet.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedTime
	}
	fast, slow := runAt(0.05), runAt(0.5)
	if fast >= slow {
		t.Fatalf("WatchScale did not compress time: %v vs %v", fast, slow)
	}
}

// TestResultMarshalsToJSON: results export cleanly for analysis tooling.
func TestResultMarshalsToJSON(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	cfg.Sessions = 1
	res, err := Run(cfg, tr, socialTube(t, tr), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"protocol", "startupDelayMs", "peerBandwidth", "requests"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("json missing %q: %s", key, raw)
		}
	}
}

func TestResultString(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	cfg.Sessions = 1
	res, err := Run(cfg, tr, socialTube(t, tr), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"SocialTube", "requests", "peer-bw p50"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %s", want, s)
		}
	}
}
