package exp

import (
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/baseline"
	"github.com/socialtube/socialtube/internal/core"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

func expTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Seed = 41
	cfg.Channels = 40
	cfg.Users = 400
	cfg.Categories = 10
	cfg.MaxInterestsPerUser = 10
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// quickConfig shrinks the workload so the full matrix of tests stays fast.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Sessions = 4
	cfg.VideosPerSession = 8
	cfg.WatchScale = 0.05
	cfg.MeanOffTime = 60 * time.Second
	cfg.Horizon = 12 * time.Hour
	return cfg
}

func runProto(t *testing.T, tr *trace.Trace, proto vod.Protocol) *Result {
	t.Helper()
	res, err := Run(quickConfig(), tr, proto, simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func socialTube(t *testing.T, tr *trace.Trace) *core.System {
	t.Helper()
	s, err := core.New(core.DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func netTube(t *testing.T, tr *trace.Trace) *baseline.NetTube {
	t.Helper()
	nt, err := baseline.NewNetTube(baseline.DefaultNetTubeConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	return nt
}

func paVoD(t *testing.T, tr *trace.Trace) *baseline.PAVoD {
	t.Helper()
	pv, err := baseline.NewPAVoD(baseline.DefaultPAVoDConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	return pv
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero sessions", func(c *Config) { c.Sessions = 0 }},
		{"zero videos", func(c *Config) { c.VideosPerSession = 0 }},
		{"zero off time", func(c *Config) { c.MeanOffTime = 0 }},
		{"zero probe", func(c *Config) { c.ProbeInterval = 0 }},
		{"negative horizon", func(c *Config) { c.Horizon = -1 }},
		{"zero chunks", func(c *Config) { c.ChunksPerVideo = 0 }},
		{"zero bitrate", func(c *Config) { c.BitrateBps = 0 }},
		{"bad abrupt p", func(c *Config) { c.AbruptLeaveP = 1.5 }},
		{"zero watch scale", func(c *Config) { c.WatchScale = 0 }},
		{"bad behavior", func(c *Config) { c.Behavior.PSameChannel = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	tr := expTrace(t)
	if _, err := Run(quickConfig(), nil, socialTube(t, tr), simnet.DefaultConfig()); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := Run(quickConfig(), tr, nil, simnet.DefaultConfig()); err == nil {
		t.Fatal("nil protocol accepted")
	}
	bad := quickConfig()
	bad.Sessions = -1
	if _, err := Run(bad, tr, socialTube(t, tr), simnet.DefaultConfig()); err == nil {
		t.Fatal("bad config accepted")
	}
	badNet := simnet.DefaultConfig()
	badNet.ServerUplinkBps = 0
	if _, err := Run(quickConfig(), tr, socialTube(t, tr), badNet); err == nil {
		t.Fatal("bad network config accepted")
	}
}

func TestRunCompletesAndAccounts(t *testing.T) {
	tr := expTrace(t)
	res := runProto(t, tr, socialTube(t, tr))
	if res.Protocol != "SocialTube" {
		t.Errorf("protocol name %q", res.Protocol)
	}
	if res.Requests == 0 {
		t.Fatal("no requests issued")
	}
	total := res.CacheHits.Value() + res.PeerHits.Value() + res.ServerHits.Value()
	if total != res.Requests {
		t.Fatalf("hits %d != requests %d (every request must be served)", total, res.Requests)
	}
	if res.PeerBandwidth.Len() == 0 {
		t.Fatal("no per-node bandwidth samples")
	}
	if res.StartupDelay.Len() == 0 {
		t.Fatal("no startup delay samples")
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	for _, v := range res.PeerBandwidth.Values() {
		if v < 0 || v > 1 {
			t.Fatalf("normalized bandwidth %v outside [0,1]", v)
		}
	}
	if res.StartupDelay.Min() < 0 {
		t.Fatalf("negative startup delay %v", res.StartupDelay.Min())
	}
}

func TestAllProtocolsComplete(t *testing.T) {
	tr := expTrace(t)
	protos := []vod.Protocol{socialTube(t, tr), netTube(t, tr), paVoD(t, tr)}
	for _, p := range protos {
		res, err := Run(quickConfig(), tr, p, simnet.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Requests == 0 {
			t.Fatalf("%s issued no requests", p.Name())
		}
	}
}

// TestFig16Ordering reproduces the paper's headline normalized peer
// bandwidth ordering: SocialTube > NetTube > PA-VoD at the median.
func TestFig16Ordering(t *testing.T) {
	tr := expTrace(t)
	st := runProto(t, tr, socialTube(t, tr))
	nt := runProto(t, tr, netTube(t, tr))
	pv := runProto(t, tr, paVoD(t, tr))
	_, stMed, _ := st.NormalizedPeerBandwidthPercentiles()
	_, ntMed, _ := nt.NormalizedPeerBandwidthPercentiles()
	_, pvMed, _ := pv.NormalizedPeerBandwidthPercentiles()
	if !(stMed > ntMed && ntMed > pvMed) {
		t.Fatalf("median peer bandwidth ordering violated: SocialTube %.3f, NetTube %.3f, PA-VoD %.3f",
			stMed, ntMed, pvMed)
	}
}

// TestFig17PrefetchingReducesStartupDelay: SocialTube with prefetching beats
// SocialTube without.
func TestFig17PrefetchingReducesStartupDelay(t *testing.T) {
	tr := expTrace(t)
	withPF := runProto(t, tr, socialTube(t, tr))
	noCfg := core.DefaultConfig()
	noCfg.PrefetchCount = 0
	noPFSys, err := core.New(noCfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	noPF := runProto(t, tr, noPFSys)
	if withPF.PrefixHits.Value() == 0 {
		t.Fatal("prefetching produced no prefix hits")
	}
	if withPF.StartupDelay.Mean() >= noPF.StartupDelay.Mean() {
		t.Fatalf("prefetching did not reduce mean startup delay: with %.1fms, without %.1fms",
			withPF.StartupDelay.Mean(), noPF.StartupDelay.Mean())
	}
}

// TestFig18MaintenanceShape: NetTube's links grow with videos watched in a
// session while SocialTube's stay bounded by N_l + N_h.
func TestFig18MaintenanceShape(t *testing.T) {
	tr := expTrace(t)
	st := runProto(t, tr, socialTube(t, tr))
	nt := runProto(t, tr, netTube(t, tr))
	k := len(nt.LinksByVideoIndex) - 1
	ntFirst := nt.LinksByVideoIndex[0].Mean()
	ntLast := nt.LinksByVideoIndex[k].Mean()
	if ntLast <= ntFirst {
		t.Fatalf("NetTube links did not grow within session: first %.2f, last %.2f", ntFirst, ntLast)
	}
	budget := float64(core.DefaultConfig().InnerLinks + core.DefaultConfig().InterLinks)
	for i := range st.LinksByVideoIndex {
		if m := st.LinksByVideoIndex[i].Mean(); m > budget {
			t.Fatalf("SocialTube mean links %.2f exceed budget %.0f at video %d", m, budget, i+1)
		}
	}
	if stLast := st.LinksByVideoIndex[k].Mean(); ntLast <= stLast {
		t.Fatalf("NetTube final links %.2f should exceed SocialTube %.2f", ntLast, stLast)
	}
}

// TestServerBytesOrdering: more peer hits mean fewer server bytes.
func TestServerBytesOrdering(t *testing.T) {
	tr := expTrace(t)
	st := runProto(t, tr, socialTube(t, tr))
	pv := runProto(t, tr, paVoD(t, tr))
	if st.ServerBytes >= pv.ServerBytes {
		t.Fatalf("SocialTube server bytes %d should be below PA-VoD %d", st.ServerBytes, pv.ServerBytes)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	tr := expTrace(t)
	a := runProto(t, tr, socialTube(t, tr))
	b := runProto(t, tr, socialTube(t, tr))
	if a.Requests != b.Requests {
		t.Fatalf("request counts differ: %d vs %d", a.Requests, b.Requests)
	}
	if a.PeerHits.Value() != b.PeerHits.Value() || a.ServerHits.Value() != b.ServerHits.Value() {
		t.Fatal("hit counts differ between same-seed runs")
	}
	if a.StartupDelay.Mean() != b.StartupDelay.Mean() {
		t.Fatal("startup delays differ between same-seed runs")
	}
}

func TestHorizonBoundsRun(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	cfg.Horizon = time.Hour
	res, err := Run(cfg, tr, socialTube(t, tr), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime > cfg.Horizon {
		t.Fatalf("simulated %v beyond horizon %v", res.SimulatedTime, cfg.Horizon)
	}
}

func TestProbesRunForMaintainers(t *testing.T) {
	tr := expTrace(t)
	cfg := quickConfig()
	cfg.AbruptLeaveP = 1 // every departure abrupt: probes must fire and repair
	res, err := Run(cfg, tr, socialTube(t, tr), simnet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeMessages.Value() == 0 {
		t.Fatal("no probe messages despite Maintainer protocol and churn")
	}
}

func TestPAVoDHasNoProbes(t *testing.T) {
	tr := expTrace(t)
	res := runProto(t, tr, paVoD(t, tr))
	if res.ProbeMessages.Value() != 0 {
		t.Fatal("PA-VoD should not probe (no overlay)")
	}
}
