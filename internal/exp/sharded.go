// Sharded experiment engine: one event loop per interest community,
// advanced in epochs by sim.ShardedEngine, with cross-community
// lookups exchanged through epoch-barrier mailboxes. The partition is a
// pure function of the trace (trace.PartitionByCategory) and every mailbox
// key derives from community ids, so a run's full Result — counters,
// samples, engine stats — is byte-identical for any worker count,
// including the Workers=1 sequential loop the determinism tests pin.
package exp

import (
	"context"
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/load"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/sim"
	"github.com/socialtube/socialtube/internal/simnet"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// RemoteSearcher is implemented by protocols whose community server can
// answer lookups on behalf of requesters from other communities
// (core.System). Protocols without it — the baselines — simply fall back
// to the origin community's server for cross-community videos.
type RemoteSearcher interface {
	// RemoteLookup answers a lookup forwarded from another community.
	// span is the originating request's span id, so the query event the
	// home community emits stays linked to the requester's causal chain.
	RemoteLookup(span uint64, v trace.VideoID) (provider, hops, msgs int, ok bool)
}

// SpanScoped is implemented by protocols whose request span ids can be
// rebased per community cell (core.System). The sharded runner gives each
// cell a disjoint span range so a merged trace never aliases spans from
// different cells.
type SpanScoped interface {
	SetSpanBase(base uint64)
}

// CellProtocol builds one community cell's protocol instance over the
// cell's renumbered trace.
type CellProtocol func(cell int, cellTrace *trace.Trace) (vod.Protocol, error)

// ShardedOptions configures a sharded run.
type ShardedOptions struct {
	// Workers bounds the goroutines advancing community loops; 0 means
	// GOMAXPROCS, 1 is the fully sequential reference mode. The value
	// changes wall-clock only — results are byte-identical across it.
	Workers int
	// Epoch is the barrier interval in virtual time (default 1s). It is
	// the cross-community round-trip granularity: a remote lookup costs
	// up to two barrier waits of startup delay.
	Epoch time.Duration
	// TimelineWindow, when positive, records per-window telemetry in every
	// cell and merges the cells' timelines in ascending cell order into
	// Result.Timeline. Windows are keyed by simulated time, so the merged
	// timeline is byte-identical for any Workers value.
	TimelineWindow time.Duration
	// Load, when non-nil, replaces every cell's closed-loop session
	// replay with open-loop arrivals: the profile is split per capita
	// across the community cells (load.Profile.Split), each cell
	// drawing its own deterministic stream, and a flash crowd fires
	// only in the cell that homes the viral channel. The merged
	// Result.Load is byte-identical for any Workers value.
	Load *load.Profile
}

// DefaultShardedEpoch is the default barrier interval.
const DefaultShardedEpoch = time.Second

// ShardedInfo is the sharded run's extra accounting. Every field is
// independent of the worker count; per-shard wall-clock fields inside
// ShardLoad carry json:"-", so the whole Result stays byte-identical
// across worker counts.
type ShardedInfo struct {
	// Cells is the number of community cells (the category count).
	Cells int `json:"cells"`
	// Epoch is the barrier interval; Epochs the executed epoch count.
	Epoch  time.Duration `json:"epochNanos"`
	Epochs uint64        `json:"epochs"`
	// RemoteLookups / RemoteHits / RemoteBytes account cross-community
	// lookups: how many were forwarded to a video's home community, how
	// many found a provider there, and the bytes those providers served.
	RemoteLookups int64 `json:"remoteLookups"`
	RemoteHits    int64 `json:"remoteHits"`
	// RemoteBytes is included in the Result's PeerBytes total.
	RemoteBytes int64 `json:"remoteBytes"`
	// ShardLoad is the per-community-loop load accounting (events fired,
	// mail exchanged, and — outside the JSON — busy and barrier-wait
	// wall time), the load-imbalance signal the scale figures surface.
	ShardLoad []sim.ShardStat `json:"shardLoad"`
}

// RunSharded runs the workload community-sharded: the trace is partitioned
// into per-category cells, each cell gets its own protocol instance (from
// factory), RNG stream, simnet and event loop, and the loops advance in
// parallel between epoch barriers. Cross-community requests that the local
// search cannot serve are forwarded to the video's home community when the
// protocol implements RemoteSearcher. Fault plans are not supported on the
// sharded path. Same seed ⇒ byte-identical Result for any Workers value.
func RunSharded(cfg Config, tr *trace.Trace, factory CellProtocol, netCfg simnet.Config, opts ShardedOptions) (*Result, error) {
	return RunShardedCtx(context.Background(), cfg, tr, factory, netCfg, opts)
}

// RunShardedCtx is RunSharded with cooperative cancellation, checked at
// every epoch barrier.
func RunShardedCtx(ctx context.Context, cfg Config, tr *trace.Trace, factory CellProtocol, netCfg simnet.Config, opts ShardedOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("exp config: %w", err)
	}
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: sharded experiment needs a non-empty trace", dist.ErrBadParameter)
	}
	if factory == nil {
		return nil, fmt.Errorf("%w: nil cell protocol factory", dist.ErrBadParameter)
	}
	part, err := trace.PartitionByCategory(tr)
	if err != nil {
		return nil, err
	}
	flashCell := -1
	if opts.Load != nil {
		if err := opts.Load.Validate(); err != nil {
			return nil, err
		}
		if f := opts.Load.Flash; f != nil {
			if f.Channel >= len(tr.Channels) || len(tr.Channels[f.Channel].Videos) == 0 {
				return nil, fmt.Errorf("%w: flash channel %d missing or empty in trace", dist.ErrBadParameter, f.Channel)
			}
			// The flash fires in the community that homes the viral
			// channel (its dominant category).
			flashCell = int(tr.Channels[f.Channel].Primary)
		}
	}
	epoch := opts.Epoch
	if epoch == 0 {
		epoch = DefaultShardedEpoch
	}
	se, err := sim.NewShardedEngine(sim.ShardedConfig{
		Shards:  len(part.Cells),
		Epoch:   epoch,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	router := &remoteRouter{
		se:            se,
		part:          part,
		runners:       make([]*runner, len(part.Cells)),
		remotes:       make([]RemoteSearcher, len(part.Cells)),
		seq:           make([]uint64, len(part.Cells)),
		lookups:       make([]int64, len(part.Cells)),
		hits:          make([]int64, len(part.Cells)),
		bytes:         make([]int64, len(part.Cells)),
		peerUplinkBps: netCfg.PeerUplinkBps,
	}
	name := ""
	for c := range part.Cells {
		cellTr := part.Cells[c].Trace
		if len(cellTr.Users) == 0 {
			continue // empty community: no loop work
		}
		proto, err := factory(c, cellTr)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", c, err)
		}
		if name == "" {
			name = proto.Name()
		} else if proto.Name() != name {
			return nil, fmt.Errorf("%w: cell %d built protocol %q, want %q", dist.ErrBadParameter, c, proto.Name(), name)
		}
		cellCfg := cfg
		// Per-cell derived streams: any seed-and-cell function works as
		// long as it ignores the worker count.
		cellCfg.Seed = cfg.Seed*1_000_003 + int64(c+1)
		cellNet := netCfg
		cellNet.Seed = netCfg.Seed*1_000_003 + int64(c+1)
		// The global server splits its uplink per capita across the
		// community cells, mirroring the per-capita scaling the scale
		// sweep applies across populations.
		if share := netCfg.ServerUplinkBps * int64(len(cellTr.Users)) / int64(len(tr.Users)); share > 0 {
			cellNet.ServerUplinkBps = share
		} else {
			cellNet.ServerUplinkBps = 1
		}
		r, err := newRunner(cellCfg, cellTr, proto, cellNet)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", c, err)
		}
		// The cell's loop is its shard engine; everything the runner
		// schedules stays on it.
		r.engine = se.Shard(c)
		r.remote = router
		r.cell = c
		if opts.TimelineWindow > 0 {
			r.tl = newTimelineRec(opts.TimelineWindow)
			r.res.Timeline = r.tl.tl
		}
		// Disjoint per-cell span ranges: cell in the high bits, the cell's
		// request sequence below — a pure function of (cell, request
		// order), independent of the worker count.
		if ss, ok := proto.(SpanScoped); ok {
			ss.SetSpanBase(uint64(c+1) << 40)
		}
		if rs, ok := proto.(RemoteSearcher); ok {
			router.remotes[c] = rs
		}
		router.runners[c] = r
		if opts.Load != nil {
			cellProf := opts.Load.Split(c, len(cellTr.Users), len(tr.Users), c == flashCell)
			if cellProf.Flash != nil {
				// Channel ids are global across cells, so the flash
				// target resolves in the cell's shared catalog.
				cellProf.Flash.Channel = opts.Load.Flash.Channel
			}
			if err := r.installLoad(cellProf); err != nil {
				return nil, fmt.Errorf("cell %d: %w", c, err)
			}
		} else {
			for i := range cellTr.Users {
				r.sessionsLeft[i] = cellCfg.Sessions
				delay := time.Duration(dist.Exponential(r.g, float64(cellCfg.MeanOffTime)))
				node := i
				r.engine.At(delay, func(now time.Duration) { r.startSession(node, now) })
			}
		}
		if m, ok := proto.(Maintainer); ok {
			r.engine.After(cellCfg.ProbeInterval, func(now time.Duration) { r.probeAll(m, now) })
		}
	}
	if name == "" {
		return nil, fmt.Errorf("%w: every community cell is empty", dist.ErrBadParameter)
	}
	if err := se.RunCtx(ctx, cfg.Horizon); err != nil {
		return nil, err
	}
	return mergeSharded(cfg, tr, se, router, name, epoch, opts.TimelineWindow), nil
}

// mergeSharded folds the per-cell results into one Result, in cell-id
// order so the merged samples are layout-free.
func mergeSharded(cfg Config, tr *trace.Trace, se *sim.ShardedEngine, router *remoteRouter, name string, epoch, tlWindow time.Duration) *Result {
	merged := &Result{
		Protocol:          name,
		LinksByVideoIndex: make([]metrics.Sample, cfg.VideosPerSession),
	}
	if tlWindow > 0 {
		merged.Timeline = newTimelineRec(tlWindow).tl
	}
	info := &ShardedInfo{Cells: len(router.runners), Epoch: epoch}
	for c, r := range router.runners {
		info.RemoteLookups += router.lookups[c]
		info.RemoteHits += router.hits[c]
		info.RemoteBytes += router.bytes[c]
		if r == nil {
			continue
		}
		r.finalize()
		res := r.res
		merged.StartupDelay.Merge(&res.StartupDelay)
		if merged.Timeline != nil && res.Timeline != nil {
			// Every cell built the identical layout via newTimelineRec, so
			// a merge error here is a programming error, not data.
			if err := merged.Timeline.Merge(res.Timeline); err != nil {
				panic(err)
			}
		}
		for _, v := range res.PeerBandwidth.Values() {
			merged.PeerBandwidth.Add(v)
		}
		for k := range merged.LinksByVideoIndex {
			for _, v := range res.LinksByVideoIndex[k].Values() {
				merged.LinksByVideoIndex[k].Add(v)
			}
		}
		merged.CacheHits.Addn(res.CacheHits.Value())
		merged.PrefixHits.Addn(res.PrefixHits.Value())
		merged.PeerHits.Addn(res.PeerHits.Value())
		merged.ServerHits.Addn(res.ServerHits.Value())
		merged.Messages.Addn(res.Messages.Value())
		merged.ProbeMessages.Addn(res.ProbeMessages.Value())
		merged.ServerBytes += res.ServerBytes
		merged.PeerBytes += res.PeerBytes
		merged.Requests += res.Requests
		merged.Obs.Merge(res.Obs)
		if res.Load != nil {
			if merged.Load == nil {
				merged.Load = &LoadInfo{}
			}
			merged.Load.merge(res.Load)
		}
	}
	// Cross-community providers are peers too; their bytes never crossed
	// a cell simnet, so they are added here (RemoteBytes is the subset).
	merged.PeerBytes += info.RemoteBytes
	merged.SimulatedTime = se.Now()
	merged.Engine = se.Stats()
	info.Epochs = se.Epochs()
	info.ShardLoad = se.ShardStats()
	merged.Sharded = info
	merged.Mem = obs.MemUsage{TraceBytes: tr.Bytes()}
	merged.Mem.BytesPerUser = float64(merged.Mem.TraceBytes) / float64(len(tr.Users))
	w := obs.NewMemWatermark(1)
	merged.Mem.HeapHighWater = w.Sample()
	return merged
}

// remoteRouter carries the cross-community lookup path of a sharded run.
// Every per-cell slot (seq, lookups, hits, bytes) is touched only by
// events running on that cell's loop, so the router needs no locks.
type remoteRouter struct {
	se      *sim.ShardedEngine
	part    *trace.Partition
	runners []*runner
	remotes []RemoteSearcher
	seq     []uint64
	lookups []int64
	hits    []int64
	bytes   []int64
	// peerUplinkBps models the remote provider's uplink for the analytic
	// cross-community delivery path.
	peerUplinkBps int64
}

// key returns the next mailbox ordering key for a cell: community id in
// the high bits, a per-cell sequence below — unique per barrier and
// independent of the worker layout.
func (rt *remoteRouter) key(cell int) uint64 {
	rt.seq[cell]++
	return uint64(cell)<<40 | (rt.seq[cell] & (1<<40 - 1))
}

// forward routes a locally-unserved request to the video's home community.
// It returns false — caller serves locally — when the video already lives
// in the requester's own community or the protocol cannot answer remote
// lookups. Otherwise the lookup crosses the epoch barrier to the home
// cell, runs the community server's search there, and the reply crosses
// back, resuming the session chain in watchAccount.
func (rt *remoteRouter) forward(r *runner, node int, plan vod.SessionPlan, idx int, gen uint64, v trace.VideoID, res vod.RequestResult, now time.Duration) bool {
	src := r.cell
	dst := rt.part.HomeOfVideo(v)
	if dst < 0 || dst == src || rt.remotes[dst] == nil {
		return false
	}
	rt.lookups[src]++
	rt.se.Send(src, dst, now, rt.key(src), func(at time.Duration) {
		provider, hops, msgs, ok := rt.remotes[dst].RemoteLookup(res.Span, v)
		_ = provider // cell-local to the home community; not addressable here
		rt.se.Send(dst, src, at, rt.key(dst), func(resumeAt time.Duration) {
			// One message to reach the remote community server, plus the
			// messages its search spent.
			r.res.Messages.Addn(int64(msgs + 1))
			res2 := res
			remote := false
			if ok {
				rt.hits[src]++
				res2.Source = vod.SourcePeer
				res2.Provider = -1 // lives in another cell's id space
				res2.Hops = hops + 1
				remote = true
			}
			r.watchAccount(node, plan, idx, gen, v, res2, now, resumeAt, remote)
		})
	})
	return true
}

// deliverRemote models a cross-community delivery: propagation over the
// query path plus playout-buffer fill at the provider's uplink rate. The
// provider's uplink queue lives in another cell and is deliberately not
// shared state — cross-community transfers see nominal capacity, an
// approximation DESIGN.md §12 spells out.
func (rt *remoteRouter) deliverRemote(r *runner, node int, res vod.RequestResult, chunkBytes int64, now time.Duration) time.Duration {
	total := chunkBytes * int64(r.cfg.ChunksPerVideo)
	fetch := total
	if res.PrefixCached {
		// The leading chunk is already local — only the remainder
		// crosses the remote provider's uplink.
		if fetch = total - chunkBytes; fetch < 0 {
			fetch = 0
		}
	}
	rt.bytes[r.cell] += fetch
	if res.PrefixCached {
		return now
	}
	lat := r.net.Latency(simnet.ServerID, simnet.NodeID(node))
	queryDelay := time.Duration(res.Hops+1) * lat
	buffer := int64(float64(r.cfg.BitrateBps) * r.cfg.PlayoutBuffer.Seconds() / 8 * r.cfg.WatchScale)
	if buffer > total {
		buffer = total
	}
	fill := time.Duration(float64(buffer) * 8 / float64(rt.peerUplinkBps) * float64(time.Second))
	return now + queryDelay + fill
}
