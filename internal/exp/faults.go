package exp

import (
	"time"

	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/load"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/vod"
)

// Options carries RunCtx's cross-cutting concerns. The zero value is a
// plain healthy run.
type Options struct {
	// Faults is a deterministic fault plan compiled against the
	// trace's user population; nil disables fault injection entirely.
	Faults *faults.Plan
	// Tracer, when non-nil, is installed on the protocol before the
	// run if it implements obs.Traceable.
	Tracer obs.Tracer
	// TimelineWindow, when positive, records per-window telemetry (hit
	// counters, startup-delay histograms, server load, breaker opens)
	// keyed by simulated time into Result.Timeline. 0 disables the
	// recorder and leaves the Result JSON unchanged.
	TimelineWindow time.Duration
	// Load, when non-nil, replaces the closed-loop session replay with
	// open-loop arrivals from the rate profile (internal/load): the
	// trace still supplies users, subscriptions and video popularity,
	// but arrival times come from the profile and no longer wait for
	// session completion. Result.Load carries the accounting.
	Load *load.Profile
}

// Repairer is implemented by protocols with active self-repair: when
// the fault layer decides a crash has been detected, RepairNeighbors
// lets the dead node's neighbors select replacement links immediately
// instead of waiting for their probe period. Baselines without the
// hook recover through probing alone — exactly the asymmetry the
// churn-resilience figure measures.
type Repairer interface {
	RepairNeighbors(dead int) (links, msgs int)
}

// Reseeder is implemented by protocols that refresh prefetched content
// when a crashed node rejoins (SocialTube's §IV-B prefetch re-seeding).
type Reseeder interface {
	Reseed(node int) int
}

// Resilience aggregates a run's degradation-and-recovery metrics. All
// fields stay zero without a fault plan.
type Resilience struct {
	// Crashes / Rejoins count applied churn events.
	Crashes uint64 `json:"crashes"`
	Rejoins uint64 `json:"rejoins"`
	// RepairRounds counts detected crashes handed to the protocol;
	// RepairedLinks / RepairMsgs are the work its repair hook did.
	RepairRounds  uint64 `json:"repairRounds"`
	RepairedLinks uint64 `json:"repairedLinks"`
	RepairMsgs    uint64 `json:"repairMsgs"`
	// PrefixesReseeded counts prefetch prefixes restored on rejoin.
	PrefixesReseeded uint64 `json:"prefixesReseeded"`
	// LinkFailures counts located providers lost to a link burst
	// (the request fell back to the server).
	LinkFailures uint64 `json:"linkFailures"`
	// ChaosFailures counts located providers lost to a frame-chaos
	// window (corrupted/truncated/stalled delivery).
	ChaosFailures uint64 `json:"chaosFailures"`
	// ServerDeferred counts server requests that had to wait out a
	// tracker outage.
	ServerDeferred uint64 `json:"serverDeferred"`
	// RequestsDuringFaults / PeerServedDuringFaults measure hit rate
	// while any fault is active (crashed nodes or open windows):
	// "peer served" means the request never touched the server.
	RequestsDuringFaults   uint64 `json:"requestsDuringFaults"`
	PeerServedDuringFaults uint64 `json:"peerServedDuringFaults"`
	// RepairLatencyMs samples crash→repair-complete time per
	// repaired crash, in milliseconds.
	RepairLatencyMs metrics.Sample `json:"repairLatencyMs"`
	// OrphanFraction samples, after each detected crash, the fraction
	// of online nodes left with zero overlay links.
	OrphanFraction metrics.Sample `json:"orphanFraction"`
}

// HitRateUnderFaults is the fraction of fault-time requests that peers
// (or the local cache) still served; 0 when no request saw a fault.
func (r *Resilience) HitRateUnderFaults() float64 {
	if r.RequestsDuringFaults == 0 {
		return 0
	}
	return float64(r.PeerServedDuringFaults) / float64(r.RequestsDuringFaults)
}

// scheduleFaults turns a compiled schedule into engine events. Window
// events mutate the runner's degradation knobs; churn events go through
// the apply* handlers.
func (r *runner) scheduleFaults(sched *faults.Schedule) {
	for _, ev := range sched.Events {
		ev := ev
		switch ev.Kind {
		case faults.KindCrash:
			r.engine.At(ev.At, func(now time.Duration) { r.applyCrash(ev.Node, now) })
		case faults.KindRejoin:
			r.rejoinsPending++
			r.engine.At(ev.At, func(now time.Duration) {
				r.rejoinsPending--
				r.applyRejoin(ev.Node, now)
			})
		case faults.KindRepair:
			r.engine.At(ev.At, func(now time.Duration) { r.applyRepair(ev, now) })
		case faults.KindBurstStart:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows++
				// Compile normalized the factor: 1 for "unchanged",
				// (0,1) for recovery windows, > 1 for degradation.
				// All of them are honored here.
				r.latencyFactor = ev.LatencyFactor
				if r.latencyFactor <= 0 {
					r.latencyFactor = 1
				}
				r.burstLossP = ev.LossP
			})
		case faults.KindBurstEnd:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows--
				r.latencyFactor = 1
				r.burstLossP = 0
			})
		case faults.KindOutageStart:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows++
				r.outageUntil = ev.Until
			})
		case faults.KindOutageEnd:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows--
				r.outageUntil = 0
			})
		case faults.KindBrownoutStart:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows++
				r.net.SetServerUplinkFactor(ev.CapacityFactor)
			})
		case faults.KindBrownoutEnd:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows--
				r.net.SetServerUplinkFactor(1)
			})
		case faults.KindChaosStart:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows++
				r.chaosLossP = ev.CorruptP + ev.TruncateP + ev.StallP
			})
		case faults.KindChaosEnd:
			r.engine.At(ev.At, func(time.Duration) {
				r.windows--
				r.chaosLossP = 0
			})
		case faults.KindFlashStart:
			r.engine.At(ev.At, func(now time.Duration) {
				r.windows++
				r.startPlanFlash(ev, now)
			})
		case faults.KindFlashEnd:
			r.engine.At(ev.At, func(time.Duration) { r.windows-- })
		}
	}
}

// applyCrash takes the node down abruptly: the protocol sees Fail (so
// neighbors keep dangling links until probed or repaired) and the
// node's session chain is abandoned mid-video.
func (r *runner) applyCrash(node int, now time.Duration) {
	if r.crashed[node] {
		return
	}
	r.crashed[node] = true
	r.crashedCount++
	r.res.Resilience.Crashes++
	if r.online[node] {
		r.online[node] = false
		r.tick(now)
		r.proto.Fail(node)
	}
}

// applyRejoin brings a crashed node back: if it still has sessions to
// run it starts one right away (Join reconnects surviving links), and
// a Reseeder protocol refreshes its prefetched prefixes.
func (r *runner) applyRejoin(node int, now time.Duration) {
	if !r.crashed[node] {
		return
	}
	r.crashed[node] = false
	r.crashedCount--
	r.res.Resilience.Rejoins++
	if r.online[node] || r.sessionsLeft[node] <= 0 {
		return
	}
	r.startSession(node, now)
	if r.reseeder != nil && r.online[node] {
		r.res.Resilience.PrefixesReseeded += uint64(r.reseeder.Reseed(node))
	}
}

// applyRepair fires when the crash has been detected by the dead
// node's neighbors: a Repairer protocol runs replacement-link
// selection; afterwards the orphan fraction is sampled so every
// protocol (repairing or not) is measured at the same instants.
func (r *runner) applyRepair(ev faults.Event, now time.Duration) {
	if !r.crashed[ev.Node] {
		return // rejoined (or never crashed): nothing to repair
	}
	if r.repairer != nil {
		links, msgs := r.repairer.RepairNeighbors(ev.Node)
		rz := &r.res.Resilience
		rz.RepairRounds++
		rz.RepairedLinks += uint64(links)
		rz.RepairMsgs += uint64(msgs)
		if links > 0 || msgs > 0 {
			rz.RepairLatencyMs.Add(float64(now-ev.CrashedAt) / float64(time.Millisecond))
		}
	}
	r.res.Resilience.OrphanFraction.Add(r.orphanFraction())
}

// orphanFraction is the fraction of online nodes with zero overlay
// links — nodes a crash cut off until maintenance reattaches them.
func (r *runner) orphanFraction() float64 {
	online, orphans := 0, 0
	for node := range r.online {
		if !r.online[node] {
			continue
		}
		online++
		if r.proto.Links(node) == 0 {
			orphans++
		}
	}
	if online == 0 {
		return 0
	}
	return float64(orphans) / float64(online)
}

// accountFaults post-processes one request result under active faults:
// during a link burst a located provider may be unreachable (the
// request falls back to the server), and fault-time hit rates are
// accounted. Without a plan every branch is a cheap false comparison
// and no randomness is drawn, keeping healthy runs bit-identical.
func (r *runner) accountFaults(res *vod.RequestResult) {
	if r.burstLossP > 0 && res.Source == vod.SourcePeer && r.g.Bool(r.burstLossP) {
		res.Source = vod.SourceServer
		r.res.Resilience.LinkFailures++
	}
	if r.chaosLossP > 0 && res.Source == vod.SourcePeer && r.g.Bool(r.chaosLossP) {
		res.Source = vod.SourceServer
		r.res.Resilience.ChaosFailures++
	}
	if r.crashedCount > 0 || r.windows > 0 {
		r.res.Resilience.RequestsDuringFaults++
		if res.Source != vod.SourceServer {
			r.res.Resilience.PeerServedDuringFaults++
		}
	}
}
