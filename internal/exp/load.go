// Open-loop load engine: arrivals come from a rate profile
// (internal/load) instead of per-user closed-loop session chains, so
// the offered rate no longer tracks the system's service rate and
// overload — server queueing, shedding, tail startup delay — becomes
// measurable. Each arrival claims an idle node, runs one session, and
// the stream self-clocks: every arrival event schedules the next one,
// so the event queue never holds more than one pending arrival.
package exp

import (
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/load"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// LoadInfo aggregates the open-loop engine's arrival and admission
// accounting. In sharded runs the per-cell blocks merge in cell order
// (sums, max for the queue peak), so the merged block is byte-identical
// for any worker count.
type LoadInfo struct {
	// Offered counts profile arrivals; FlashOffered the subset that
	// belonged to a flash crowd.
	Offered      int64 `json:"offered"`
	FlashOffered int64 `json:"flashOffered"`
	// Busy counts arrivals dropped because every node was already
	// mid-session — the population bound, not the server's.
	Busy int64 `json:"busy"`
	// ServerAdmitted / ServerShed mirror the obs counters: requests
	// the bounded admission queue served vs turned away.
	ServerAdmitted int64 `json:"serverAdmitted"`
	ServerShed     int64 `json:"serverShed"`
	// QueuePeak is the admission queue's high-water occupancy.
	QueuePeak int `json:"queuePeak"`
}

// merge folds another cell's accounting into this one.
func (l *LoadInfo) merge(o *LoadInfo) {
	l.Offered += o.Offered
	l.FlashOffered += o.FlashOffered
	l.Busy += o.Busy
	l.ServerAdmitted += o.ServerAdmitted
	l.ServerShed += o.ServerShed
	if o.QueuePeak > l.QueuePeak {
		l.QueuePeak = o.QueuePeak
	}
}

// installLoad switches the runner to open-loop arrivals from the
// profile. Callers must not have seeded closed-loop sessions.
func (r *runner) installLoad(p *load.Profile) error {
	gen, err := load.NewGen(p)
	if err != nil {
		return err
	}
	if f := p.Flash; f != nil {
		if err := r.checkFlashChannel(f.Channel); err != nil {
			return err
		}
		r.flashChannel = f.Channel
	}
	r.loadGen = gen
	r.ensureLoadState()
	r.scheduleNextArrival()
	return nil
}

// ensureLoadState lazily builds the arrival-side RNG and accounting
// block shared by profile arrivals and plan-driven flash crowds.
func (r *runner) ensureLoadState() {
	if r.loadG == nil {
		// A dedicated stream: arrival decisions must not perturb the
		// main RNG's draws (closed-loop runs with a flash-crowd plan
		// keep their session schedule byte-identical).
		r.loadG = dist.NewRNG(r.cfg.Seed*7919 + 0x10ad)
	}
	if r.res.Load == nil {
		r.res.Load = &LoadInfo{}
	}
}

// checkFlashChannel validates a flash-crowd target against the trace.
func (r *runner) checkFlashChannel(ch int) error {
	if ch < 0 || ch >= len(r.tr.Channels) {
		return fmt.Errorf("%w: flash channel %d outside [0, %d)", dist.ErrBadParameter, ch, len(r.tr.Channels))
	}
	if len(r.tr.Channels[ch].Videos) == 0 {
		return fmt.Errorf("%w: flash channel %d has no videos", dist.ErrBadParameter, ch)
	}
	return nil
}

// scheduleNextArrival pulls the next profile arrival and schedules it;
// the arrival event schedules its successor, bounding queue memory.
func (r *runner) scheduleNextArrival() {
	a, ok := r.loadGen.Next()
	if !ok {
		return
	}
	r.engine.At(a.At, func(now time.Duration) {
		r.scheduleNextArrival()
		r.applyArrival(a.Flash, now)
	})
}

// applyArrival turns one offered arrival into a session on an idle
// node: flash arrivals request the viral video, others sample a
// regular session plan for the claimed user.
func (r *runner) applyArrival(flash bool, now time.Duration) {
	info := r.res.Load
	info.Offered++
	if flash {
		info.FlashOffered++
	}
	if r.tl != nil {
		r.tl.offered.Add(now, 1)
	}
	node, ok := r.pickIdleNode()
	if !ok {
		info.Busy++
		return
	}
	r.tick(now)
	r.online[node] = true
	r.gen[node]++
	r.proto.Join(node)
	var plan vod.SessionPlan
	if flash {
		plan = vod.SessionPlan{Videos: []trace.VideoID{r.flashVideo()}}
	} else {
		user := &r.tr.Users[node]
		plan = r.picker.PlanSession(r.loadG, user, r.cfg.VideosPerSession, r.cfg.MeanOffTime)
	}
	r.watch(node, plan, 0, r.gen[node], now)
}

// pickIdleNode claims a node that is neither online nor crashed,
// scanning from a seeded random start so claims spread uniformly.
func (r *runner) pickIdleNode() (int, bool) {
	n := len(r.online)
	start := r.loadG.Intn(n)
	for i := 0; i < n; i++ {
		node := start + i
		if node >= n {
			node -= n
		}
		if !r.online[node] && !r.crashed[node] {
			return node, true
		}
	}
	return 0, false
}

// flashVideo is the viral video: the flash channel's top-ranked one.
func (r *runner) flashVideo() trace.VideoID {
	return r.tr.Channels[r.flashChannel].Videos[0]
}

// startPlanFlash runs a plan-driven flash crowd (faults.KindFlashStart):
// a steady arrival stream at ev.RPS against ev.Channel's viral video
// over the event's window, layered on top of whatever workload —
// closed-loop session replay or an open-loop profile — is running.
func (r *runner) startPlanFlash(ev faults.Event, now time.Duration) {
	prof := &load.Profile{
		Mode:     load.Steady,
		Seed:     r.cfg.Seed*104_729 + int64(ev.Channel+1),
		RPS:      ev.RPS,
		Duration: ev.Until - ev.At,
	}
	gen, err := load.NewGen(prof)
	if err != nil {
		// The plan validated RPS and the window at compile time;
		// reaching this is a programming error.
		panic(fmt.Sprintf("flash profile from compiled plan invalid: %v", err))
	}
	r.ensureLoadState()
	r.flashChannel = ev.Channel
	r.flashGens++
	var next func()
	next = func() {
		a, ok := gen.Next()
		if !ok {
			r.flashGens--
			return
		}
		r.engine.At(now+a.At, func(at time.Duration) {
			next()
			r.applyArrival(true, at)
		})
	}
	next()
}
