// Package emu is the real-network substrate standing in for the paper's
// PlanetLab testbed: a TCP tracker and TCP peer nodes speaking a
// length-prefixed JSON wire protocol over loopback, with injected per-pair
// WAN latency and message loss. It runs the same SocialTube protocol logic
// as the simulator, but over real sockets, real serialization and real
// concurrency.
package emu

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"github.com/socialtube/socialtube/internal/ctrl"
	"github.com/socialtube/socialtube/internal/obs"
)

// MsgType discriminates wire messages.
type MsgType string

// Wire message types.
const (
	// Peer -> tracker RPCs.
	MsgRegister   MsgType = "register"    // announce address
	MsgJoin       MsgType = "join"        // SocialTube: join a channel overlay
	MsgJoinVideo  MsgType = "join_video"  // NetTube: join a per-video overlay
	MsgLeave      MsgType = "leave"       // graceful departure
	MsgServe      MsgType = "serve"       // fetch a chunk from the server
	MsgTopList    MsgType = "top_list"    // top-M videos of a channel
	MsgWatchStart MsgType = "watch_start" // PA-VoD: register watcher, get provider
	MsgWatchDone  MsgType = "watch_done"  // PA-VoD: unregister watcher
	MsgHave       MsgType = "have"        // NetTube: report a cached video

	// Peer -> peer RPCs.
	MsgQuery    MsgType = "query"     // TTL-scoped video search
	MsgChunkReq MsgType = "chunk_req" // fetch a cached chunk
	MsgConnect  MsgType = "connect"   // establish an overlay link
	MsgProbe    MsgType = "probe"     // liveness probe
	MsgBye      MsgType = "bye"       // graceful departure notification
	// MsgCacheSample asks a peer for a random sample of its cached video
	// ids (NetTube prefetches randomly from neighbours' watched videos).
	MsgCacheSample MsgType = "cache_sample"

	// Tracker -> tracker RPC.
	// MsgSync is one anti-entropy push-pull round between two replicas of
	// a tracker shard: the request carries the sender's membership
	// snapshot, the response the receiver's. Both sides merge by version.
	MsgSync MsgType = "sync"

	// Responses.
	MsgJoinOK MsgType = "join_ok" // recommended neighbours
	MsgOK     MsgType = "ok"      // generic success
	MsgMiss   MsgType = "miss"    // generic negative
)

// Message is the single wire envelope; unused fields stay empty. JSON keeps
// the protocol debuggable; the 4-byte length prefix frames each message.
type Message struct {
	Type MsgType `json:"type"`
	// From is the sender's node id (-1 for the tracker).
	From int `json:"from"`
	// Addr is the sender's listen address (for callbacks/links).
	Addr string `json:"addr,omitempty"`
	// Video and Chunk identify content (zero values are valid ids, so no
	// omitempty).
	Video int `json:"video"`
	Chunk int `json:"chunk"`
	// Channel identifies a channel (join, top-list).
	Channel int `json:"channel"`
	// TTL bounds query forwarding.
	TTL int `json:"ttl"`
	// Visited carries the ids of peers that already saw the query so
	// floods never revisit a node.
	Visited []int `json:"visited,omitempty"`
	// Hops reports at which depth a query hit was found.
	Hops int `json:"hops"`
	// Provider identifies the peer that can serve the video.
	Provider int `json:"provider"`
	// ProviderAddr is the provider's listen address.
	ProviderAddr string `json:"providerAddr,omitempty"`
	// Providers ranks every candidate able to serve the video, best
	// first. Provider/ProviderAddr always mirror the head of this list,
	// so one-candidate consumers keep working; failover consumers walk
	// the tail when the head dies mid-stream.
	Providers []PeerInfo `json:"providers,omitempty"`
	// Messages counts query transmissions consumed by a flood.
	Messages int `json:"messages,omitempty"`
	// Peers lists recommended neighbours (join responses).
	Peers []PeerInfo `json:"peers,omitempty"`
	// Videos lists video ids (top-list responses).
	Videos []int `json:"videos,omitempty"`
	// Payload carries chunk bytes (base64 via encoding/json).
	Payload []byte `json:"payload,omitempty"`
	// Link tags a connect request as "inner" or "inter".
	Link string `json:"link,omitempty"`
	// Accepted reports connect success.
	Accepted bool `json:"accepted,omitempty"`
	// Sync carries membership-table snapshots between tracker replicas
	// (MsgSync requests and responses only).
	Sync []ctrl.TableSync `json:"sync,omitempty"`
	// Liveness piggyback. Beats and Status ride MsgSync exchanges
	// (heartbeat counters and shard-death verdicts, see ctrl.Liveness);
	// Epoch and DeadShards are stamped on every tracker response once the
	// plane has seen a status transition, so peers learn the live shard
	// set — and when to re-resolve ring owners — from ordinary RPC
	// traffic. All omitempty: a healthy plane's frames are byte-identical
	// to the pre-liveness wire format.
	Beats      []ctrl.Beat        `json:"beats,omitempty"`
	Status     []ctrl.ShardStatus `json:"status,omitempty"`
	Epoch      int64              `json:"epoch,omitempty"`
	DeadShards uint64             `json:"deadShards,omitempty"`
}

// PeerInfo is a node id/address pair with the channel it currently serves.
type PeerInfo struct {
	ID      int    `json:"id"`
	Addr    string `json:"addr"`
	Channel int    `json:"channel"`
}

// Framing errors.
var (
	// ErrMessageTooLarge guards the frame decoder against corrupt
	// lengths.
	ErrMessageTooLarge = errors.New("emu: message exceeds frame limit")
	// ErrInvalidMessage reports a frame that decoded but failed strict
	// field validation (unknown type, negative ids, oversized lists).
	ErrInvalidMessage = errors.New("emu: invalid message")
)

// maxFrame bounds one frame: a chunk payload plus JSON overhead.
const maxFrame = 16 << 20

// Strict field bounds enforced by Message.Validate. Generous for every
// legitimate workload, tight enough that a hostile frame cannot make a
// handler iterate or allocate unboundedly.
const (
	maxWireTTL     = 64      // deepest flood any protocol configures
	maxWireHops    = 1 << 20 // reported hit depth
	maxWireList    = 4096    // Peers / Providers entries
	maxWireVisited = 1 << 16 // flood dedup set
	maxWireVideos  = 1 << 16 // top-list / cache-sample entries
	// maxWireSyncTables / maxWireSyncRecs bound one anti-entropy exchange:
	// a handful of named tables, each at most one row per (overlay, peer)
	// pair at the largest emulated scale.
	maxWireSyncTables = 8
	maxWireSyncRecs   = 1 << 17
	// maxWireBeats bounds one liveness exchange: one beat per endpoint of
	// the largest plane the dead-mask wire form supports (64 shards x 256
	// replicas).
	maxWireBeats  = 1 << 14
	maxWireShards = 64
)

// validWireTypes is the closed set of message types a handler dispatches
// on; anything else is rejected before dispatch.
var validWireTypes = map[MsgType]bool{
	MsgRegister: true, MsgJoin: true, MsgJoinVideo: true, MsgLeave: true,
	MsgServe: true, MsgTopList: true, MsgWatchStart: true, MsgWatchDone: true,
	MsgHave: true, MsgQuery: true, MsgChunkReq: true, MsgConnect: true,
	MsgProbe: true, MsgBye: true, MsgCacheSample: true, MsgSync: true,
	MsgJoinOK: true, MsgOK: true, MsgMiss: true,
}

// Validate enforces strict field bounds on a decoded message. The wire
// uses -1 as the "none"/tracker sentinel for ids, so -1 is legal and
// anything below it is hostile; list lengths are capped so a single
// frame cannot drive a handler into unbounded work.
func (m *Message) Validate() error {
	switch {
	case !validWireTypes[m.Type]:
		return fmt.Errorf("%w: unknown type %q", ErrInvalidMessage, m.Type)
	case m.From < -1:
		return fmt.Errorf("%w: from %d", ErrInvalidMessage, m.From)
	case m.Video < -1:
		return fmt.Errorf("%w: video %d", ErrInvalidMessage, m.Video)
	case m.Chunk < -1:
		return fmt.Errorf("%w: chunk %d", ErrInvalidMessage, m.Chunk)
	case m.Channel < -1:
		return fmt.Errorf("%w: channel %d", ErrInvalidMessage, m.Channel)
	case m.Provider < -1:
		return fmt.Errorf("%w: provider %d", ErrInvalidMessage, m.Provider)
	case m.TTL < 0 || m.TTL > maxWireTTL:
		return fmt.Errorf("%w: ttl %d", ErrInvalidMessage, m.TTL)
	case m.Hops < 0 || m.Hops > maxWireHops:
		return fmt.Errorf("%w: hops %d", ErrInvalidMessage, m.Hops)
	case m.Messages < 0:
		return fmt.Errorf("%w: messages %d", ErrInvalidMessage, m.Messages)
	case len(m.Visited) > maxWireVisited:
		return fmt.Errorf("%w: visited len %d", ErrInvalidMessage, len(m.Visited))
	case len(m.Peers) > maxWireList:
		return fmt.Errorf("%w: peers len %d", ErrInvalidMessage, len(m.Peers))
	case len(m.Providers) > maxWireList:
		return fmt.Errorf("%w: providers len %d", ErrInvalidMessage, len(m.Providers))
	case len(m.Videos) > maxWireVideos:
		return fmt.Errorf("%w: videos len %d", ErrInvalidMessage, len(m.Videos))
	case len(m.Sync) > maxWireSyncTables:
		return fmt.Errorf("%w: sync tables %d", ErrInvalidMessage, len(m.Sync))
	case len(m.Beats) > maxWireBeats:
		return fmt.Errorf("%w: beats len %d", ErrInvalidMessage, len(m.Beats))
	case len(m.Status) > maxWireShards:
		return fmt.Errorf("%w: status len %d", ErrInvalidMessage, len(m.Status))
	case m.Epoch < 0:
		return fmt.Errorf("%w: epoch %d", ErrInvalidMessage, m.Epoch)
	}
	for _, b := range m.Beats {
		if b.Key < 0 || b.Key >= maxWireShards<<8 || b.Ver < 0 {
			return fmt.Errorf("%w: beat %+v", ErrInvalidMessage, b)
		}
	}
	for _, st := range m.Status {
		if st.Shard < 0 || st.Shard >= maxWireShards {
			return fmt.Errorf("%w: status shard %d", ErrInvalidMessage, st.Shard)
		}
	}
	for _, ts := range m.Sync {
		if ts.Table == "" {
			return fmt.Errorf("%w: unnamed sync table", ErrInvalidMessage)
		}
		if len(ts.Recs) > maxWireSyncRecs {
			return fmt.Errorf("%w: sync table %q has %d records", ErrInvalidMessage, ts.Table, len(ts.Recs))
		}
		for _, r := range ts.Recs {
			if r.Key < -1 || r.ID < -1 {
				return fmt.Errorf("%w: sync record %+v", ErrInvalidMessage, r)
			}
		}
	}
	for _, id := range m.Visited {
		if id < -1 {
			return fmt.Errorf("%w: visited id %d", ErrInvalidMessage, id)
		}
	}
	for _, p := range m.Peers {
		if p.ID < -1 || p.Channel < -1 {
			return fmt.Errorf("%w: peer entry %+v", ErrInvalidMessage, p)
		}
	}
	for _, p := range m.Providers {
		if p.ID < -1 || p.Channel < -1 {
			return fmt.Errorf("%w: provider entry %+v", ErrInvalidMessage, p)
		}
	}
	return nil
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("marshal %s: %w", m.Type, err)
	}
	if len(body) > maxFrame {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("write frame body: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrMessageTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("read frame body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("unmarshal frame: %w", err)
	}
	return &m, nil
}

// rpc dials addr, sends req and waits for a single response, bounded by
// timeout. The connection is closed afterwards (one-shot RPC style).
// Responses are validated with the same strict bounds servers apply to
// requests, so a corrupted or hostile reply surfaces as an error instead
// of propagating garbage ids into the caller.
func rpc(addr string, req *Message, timeout time.Duration) (*Message, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("set deadline: %w", err)
	}
	if err := WriteMessage(conn, req); err != nil {
		return nil, err
	}
	resp, err := ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc %s to %s: %w", req.Type, addr, err)
	}
	if err := resp.Validate(); err != nil {
		return nil, fmt.Errorf("rpc %s to %s: %w", req.Type, addr, err)
	}
	return resp, nil
}

// chaosAction is the frame-level fault chosen for one response write.
type chaosAction uint8

const (
	chaosNone chaosAction = iota
	chaosCorrupt
	chaosTruncate
	chaosDuplicate
	chaosStall
)

// writeMessageChaos writes m, applying one injected frame fault. ctr
// accounts each injected fault (nil-safe); callers pass their live
// counter block so chaos volume shows up in snapshots.
func writeMessageChaos(w io.Writer, m *Message, act chaosAction, stallFor time.Duration, ctr *obs.Counters) error {
	switch act {
	case chaosCorrupt:
		if ctr != nil {
			atomic.AddUint64(&ctr.ChaosCorrupted, 1)
		}
		body, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("marshal %s: %w", m.Type, err)
		}
		if len(body) > maxFrame {
			return ErrMessageTooLarge
		}
		// Flip bytes at three fixed offsets: the frame stays well-formed
		// at the framing layer but the body no longer decodes (or no
		// longer validates) at the receiver.
		for _, off := range []int{len(body) / 4, len(body) / 2, 3 * len(body) / 4} {
			body[off] ^= 0x5A
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		if _, err := w.Write(hdr[:]); err != nil {
			return fmt.Errorf("write frame header: %w", err)
		}
		_, err = w.Write(body)
		return err
	case chaosTruncate:
		if ctr != nil {
			atomic.AddUint64(&ctr.ChaosTruncated, 1)
		}
		body, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("marshal %s: %w", m.Type, err)
		}
		if len(body) > maxFrame {
			return ErrMessageTooLarge
		}
		// Promise the full body, deliver half: the receiver blocks on
		// the missing bytes until the connection closes and surfaces an
		// unexpected-EOF decode error.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		if _, err := w.Write(hdr[:]); err != nil {
			return fmt.Errorf("write frame header: %w", err)
		}
		_, err = w.Write(body[:len(body)/2])
		return err
	case chaosDuplicate:
		if ctr != nil {
			atomic.AddUint64(&ctr.ChaosDuplicated, 1)
		}
		if err := WriteMessage(w, m); err != nil {
			return err
		}
		return WriteMessage(w, m)
	case chaosStall:
		if ctr != nil {
			atomic.AddUint64(&ctr.ChaosStalled, 1)
		}
		time.Sleep(stallFor)
		return WriteMessage(w, m)
	default:
		return WriteMessage(w, m)
	}
}
