// Package emu is the real-network substrate standing in for the paper's
// PlanetLab testbed: a TCP tracker and TCP peer nodes speaking a
// length-prefixed JSON wire protocol over loopback, with injected per-pair
// WAN latency and message loss. It runs the same SocialTube protocol logic
// as the simulator, but over real sockets, real serialization and real
// concurrency.
package emu

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// MsgType discriminates wire messages.
type MsgType string

// Wire message types.
const (
	// Peer -> tracker RPCs.
	MsgRegister   MsgType = "register"    // announce address
	MsgJoin       MsgType = "join"        // SocialTube: join a channel overlay
	MsgJoinVideo  MsgType = "join_video"  // NetTube: join a per-video overlay
	MsgLeave      MsgType = "leave"       // graceful departure
	MsgServe      MsgType = "serve"       // fetch a chunk from the server
	MsgTopList    MsgType = "top_list"    // top-M videos of a channel
	MsgWatchStart MsgType = "watch_start" // PA-VoD: register watcher, get provider
	MsgWatchDone  MsgType = "watch_done"  // PA-VoD: unregister watcher
	MsgHave       MsgType = "have"        // NetTube: report a cached video

	// Peer -> peer RPCs.
	MsgQuery    MsgType = "query"     // TTL-scoped video search
	MsgChunkReq MsgType = "chunk_req" // fetch a cached chunk
	MsgConnect  MsgType = "connect"   // establish an overlay link
	MsgProbe    MsgType = "probe"     // liveness probe
	MsgBye      MsgType = "bye"       // graceful departure notification
	// MsgCacheSample asks a peer for a random sample of its cached video
	// ids (NetTube prefetches randomly from neighbours' watched videos).
	MsgCacheSample MsgType = "cache_sample"

	// Responses.
	MsgJoinOK MsgType = "join_ok" // recommended neighbours
	MsgOK     MsgType = "ok"      // generic success
	MsgMiss   MsgType = "miss"    // generic negative
)

// Message is the single wire envelope; unused fields stay empty. JSON keeps
// the protocol debuggable; the 4-byte length prefix frames each message.
type Message struct {
	Type MsgType `json:"type"`
	// From is the sender's node id (-1 for the tracker).
	From int `json:"from"`
	// Addr is the sender's listen address (for callbacks/links).
	Addr string `json:"addr,omitempty"`
	// Video and Chunk identify content (zero values are valid ids, so no
	// omitempty).
	Video int `json:"video"`
	Chunk int `json:"chunk"`
	// Channel identifies a channel (join, top-list).
	Channel int `json:"channel"`
	// TTL bounds query forwarding.
	TTL int `json:"ttl"`
	// Visited carries the ids of peers that already saw the query so
	// floods never revisit a node.
	Visited []int `json:"visited,omitempty"`
	// Hops reports at which depth a query hit was found.
	Hops int `json:"hops"`
	// Provider identifies the peer that can serve the video.
	Provider int `json:"provider"`
	// ProviderAddr is the provider's listen address.
	ProviderAddr string `json:"providerAddr,omitempty"`
	// Messages counts query transmissions consumed by a flood.
	Messages int `json:"messages,omitempty"`
	// Peers lists recommended neighbours (join responses).
	Peers []PeerInfo `json:"peers,omitempty"`
	// Videos lists video ids (top-list responses).
	Videos []int `json:"videos,omitempty"`
	// Payload carries chunk bytes (base64 via encoding/json).
	Payload []byte `json:"payload,omitempty"`
	// Link tags a connect request as "inner" or "inter".
	Link string `json:"link,omitempty"`
	// Accepted reports connect success.
	Accepted bool `json:"accepted,omitempty"`
}

// PeerInfo is a node id/address pair with the channel it currently serves.
type PeerInfo struct {
	ID      int    `json:"id"`
	Addr    string `json:"addr"`
	Channel int    `json:"channel"`
}

// Framing errors.
var (
	// ErrMessageTooLarge guards the frame decoder against corrupt
	// lengths.
	ErrMessageTooLarge = errors.New("emu: message exceeds frame limit")
)

// maxFrame bounds one frame: a chunk payload plus JSON overhead.
const maxFrame = 16 << 20

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("marshal %s: %w", m.Type, err)
	}
	if len(body) > maxFrame {
		return ErrMessageTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("write frame body: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrMessageTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("read frame body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("unmarshal frame: %w", err)
	}
	return &m, nil
}

// rpc dials addr, sends req and waits for a single response, bounded by
// timeout. The connection is closed afterwards (one-shot RPC style).
func rpc(addr string, req *Message, timeout time.Duration) (*Message, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("set deadline: %w", err)
	}
	if err := WriteMessage(conn, req); err != nil {
		return nil, err
	}
	resp, err := ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("rpc %s to %s: %w", req.Type, addr, err)
	}
	return resp, nil
}
