package emu

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/health"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// maxQueryProviders caps the ranked candidate list a flood response
// carries: enough for two mid-stream handoffs before a re-query.
const maxQueryProviders = 3

// Mode selects which protocol a peer speaks.
type Mode int

// Protocol modes.
const (
	// ModeSocialTube runs the paper's hierarchical per-community
	// protocol.
	ModeSocialTube Mode = iota + 1
	// ModeNetTube runs per-video overlays with a session cache.
	ModeNetTube
	// ModePAVoD runs server-directed peer assistance without caching.
	ModePAVoD
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSocialTube:
		return "SocialTube"
	case ModeNetTube:
		return "NetTube"
	case ModePAVoD:
		return "PA-VoD"
	default:
		return "unknown"
	}
}

// PeerConfig sets one peer's parameters.
type PeerConfig struct {
	// ID is the node's id (its user id in the trace).
	ID int
	// Mode selects the protocol.
	Mode Mode
	// Addr is the listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// InnerLinks (N_l), InterLinks (N_h) bound SocialTube link budgets.
	InnerLinks int
	InterLinks int
	// LinksPerOverlay bounds NetTube per-video overlay links.
	LinksPerOverlay int
	// TTL bounds query forwarding.
	TTL int
	// PrefetchCount is the number of first chunks to prefetch.
	PrefetchCount int
	// UplinkBps is the peer's upload capacity.
	UplinkBps int64
	// ChunkPayload is the bytes shipped per chunk.
	ChunkPayload int
	// RPCTimeout bounds each peer-to-peer RPC.
	RPCTimeout time.Duration
	// MaxRetries bounds additional attempts for tracker-path RPCs
	// (0 disables retrying); RetryBackoff is the initial delay between
	// attempts, doubled per retry.
	MaxRetries   int
	RetryBackoff time.Duration
	// BreakerThreshold / BreakerOpenFor parameterise the per-neighbour
	// circuit breaker (zero fields select health.DefaultConfig).
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// Seed drives the peer's random choices.
	Seed int64
}

// DefaultPeerConfig returns Table I parameters scaled for loopback runs.
func DefaultPeerConfig(id int, mode Mode) PeerConfig {
	return PeerConfig{
		ID:               id,
		Mode:             mode,
		Addr:             "127.0.0.1:0",
		InnerLinks:       5,
		InterLinks:       10,
		LinksPerOverlay:  4,
		TTL:              2,
		PrefetchCount:    3,
		UplinkBps:        4_000_000,
		ChunkPayload:     8 << 10,
		RPCTimeout:       3 * time.Second,
		MaxRetries:       2,
		RetryBackoff:     5 * time.Millisecond,
		BreakerThreshold: health.DefaultConfig().Threshold,
		BreakerOpenFor:   health.DefaultConfig().OpenFor,
		Seed:             int64(id) + 1,
	}
}

// Validate reports the first problem with the configuration.
func (c PeerConfig) Validate() error {
	switch {
	case c.Mode < ModeSocialTube || c.Mode > ModePAVoD:
		return fmt.Errorf("%w: mode=%d", dist.ErrBadParameter, c.Mode)
	case c.InnerLinks <= 0 || c.InterLinks < 0 || c.LinksPerOverlay <= 0:
		return fmt.Errorf("%w: link budgets", dist.ErrBadParameter)
	case c.TTL <= 0:
		return fmt.Errorf("%w: ttl=%d", dist.ErrBadParameter, c.TTL)
	case c.PrefetchCount < 0:
		return fmt.Errorf("%w: prefetchCount=%d", dist.ErrBadParameter, c.PrefetchCount)
	case c.UplinkBps <= 0 || c.ChunkPayload <= 0:
		return fmt.Errorf("%w: uplink/payload", dist.ErrBadParameter)
	case c.RPCTimeout <= 0:
		return fmt.Errorf("%w: rpcTimeout=%v", dist.ErrBadParameter, c.RPCTimeout)
	case c.MaxRetries < 0 || c.RetryBackoff < 0:
		return fmt.Errorf("%w: retry policy", dist.ErrBadParameter)
	case c.BreakerThreshold < 0 || c.BreakerOpenFor < 0:
		return fmt.Errorf("%w: breaker policy", dist.ErrBadParameter)
	}
	return nil
}

// Peer is one TCP node. Start it, drive it with RequestVideo/FinishVideo,
// and Stop it to release all goroutines.
type Peer struct {
	cfg     PeerConfig
	tr      *trace.Trace
	cond    *Conditions
	cp      *ControlPlane
	ln      net.Listener
	wg      sync.WaitGroup
	closeCh chan struct{}
	// crashed marks an abrupt failure: the process is alive but drops
	// every incoming message, exactly like a host that lost power —
	// neighbors keep dangling links until their probes time out.
	crashed atomic.Bool
	// ctr counts protocol events (atomic fields; see Counters).
	ctr obs.Counters
	// epoch anchors breaker time: health.Set wants monotonic offsets,
	// so every breaker call passes time.Since(epoch).
	epoch time.Time
	// brk short-circuits RPCs to neighbours that keep failing; tbrk does
	// the same for control-plane endpoints, keyed by the directory's flat
	// endpoint index, so the failover walk skips replicas known dark.
	brkMu sync.Mutex
	brk   *health.Set
	tbrk  *health.Set
	// prefRep overrides the configured preferred replica per shard after
	// a breaker-driven demotion (guarded by brkMu).
	prefRep map[int]int

	// planeMu guards the peer's routing view of the control plane: the
	// highest ring epoch seen on a tracker response and the dead-shard
	// mask that came with it. joinedEpoch (under p.mu) tracks the epoch
	// the current home-channel registration was made under, so an epoch
	// change triggers re-registration with the adopting shard.
	planeMu    sync.Mutex
	planeEpoch int64
	planeDead  uint64

	// hintMu guards the hinted-handoff queue: plane-broadcast writes
	// (register/leave) that could not reach a replica, replayed on heal.
	hintMu sync.Mutex
	hints  []hint

	mu     sync.Mutex
	g      *dist.RNG
	cache  *vod.Cache
	subs   map[trace.ChannelID]bool
	online bool
	// watching is the video currently being watched (-1 when idle);
	// PA-VoD peers serve the video they are watching even though they
	// keep no cache.
	watching trace.VideoID
	// SocialTube state.
	home  trace.ChannelID
	inner map[int]PeerInfo
	inter map[int]PeerInfo
	// joinedEpoch is the ring epoch the current home registration was
	// made under; attachChannel re-joins when the plane's epoch moves.
	joinedEpoch int64
	// NetTube state: links per joined per-video overlay.
	perVideo map[trace.VideoID]map[int]PeerInfo
	// Uplink queue + accounting.
	busyUntil   time.Time
	servedBytes int64
	// onChunk, when set (figure/test harnesses), observes every chunk
	// this peer receives while fetching a video.
	onChunk func(v trace.VideoID, chunk, provider int)
}

// NewPeer builds a peer that talks to one tracker address. It is the
// documented single-shard shim over NewPeerWithControlPlane: the address
// is wrapped in a 1x1 SingleTracker plane, whose routing is identical to
// dialing the address directly. New code should build a ControlPlane and
// use NewPeerWithControlPlane.
func NewPeer(cfg PeerConfig, tr *trace.Trace, trackerAddr string, cond *Conditions) (*Peer, error) {
	return NewPeerWithControlPlane(cfg, tr, SingleTracker(trackerAddr), cond)
}

// NewPeerWithControlPlane builds a peer over the trace, routing every
// tracker-path RPC through the control plane's shard directory. Call
// Start before use.
func NewPeerWithControlPlane(cfg PeerConfig, tr *trace.Trace, cp *ControlPlane, cond *Conditions) (*Peer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("peer config: %w", err)
	}
	if tr == nil || len(tr.Videos) == 0 {
		return nil, fmt.Errorf("%w: peer needs a non-empty trace", dist.ErrBadParameter)
	}
	if cp == nil {
		return nil, fmt.Errorf("%w: peer needs a control plane", dist.ErrBadParameter)
	}
	p := &Peer{
		cfg:     cfg,
		tr:      tr,
		cond:    cond,
		cp:      cp,
		closeCh: make(chan struct{}),
		epoch:   time.Now(),
		brk: health.NewSet(health.Config{
			Threshold: cfg.BreakerThreshold,
			OpenFor:   cfg.BreakerOpenFor,
		}, 0),
		tbrk: health.NewSet(health.Config{
			Threshold: cfg.BreakerThreshold,
			OpenFor:   cfg.BreakerOpenFor,
		}, 0),
		prefRep:  make(map[int]int),
		g:        dist.NewRNG(cfg.Seed),
		online:   true,
		watching: -1,
		cache:    vod.NewCache(0),
		subs:     make(map[trace.ChannelID]bool),
		home:     -1,
		inner:    make(map[int]PeerInfo),
		inter:    make(map[int]PeerInfo),
		perVideo: make(map[trace.VideoID]map[int]PeerInfo),
	}
	if u := tr.User(trace.UserID(cfg.ID)); u != nil {
		for _, ch := range u.Subscriptions {
			p.subs[ch] = true
		}
	}
	return p, nil
}

// Start begins listening and registers with the tracker.
func (p *Peer) Start() error {
	ln, err := net.Listen("tcp", p.cfg.Addr)
	if err != nil {
		return fmt.Errorf("peer %d listen: %w", p.cfg.ID, err)
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	// Registration is plane-wide (every shard replica tracks the address
	// book) and best-effort: it is retried implicitly by later joins, so
	// losing an RPC here mirrors a lossy network, not a fatal error. A
	// replica the write cannot reach gets a hint instead, replayed when
	// the partition heals.
	p.broadcastPlane(&Message{Type: MsgRegister, From: p.cfg.ID, Addr: p.Addr()}, false)
	return nil
}

// broadcastPlane sends req to every replica of every shard, shard-major
// (register and leave are plane-wide writes). Replicas across an open
// partition cut are skipped outright, and any replica the write fails to
// reach is queued as a hinted handoff for replay on heal. retry selects
// rpcRetry semantics per endpoint (Rejoin's re-registration) over the
// single best-effort attempt (Start, LeaveOverlays).
func (p *Peer) broadcastPlane(req *Message, retry bool) {
	for s := 0; s < p.cp.NumShards(); s++ {
		for r, addr := range p.cp.Replicas(s) {
			if p.cond.Severed(p.cfg.ID, r) {
				p.queueHint(addr, req)
				continue
			}
			var err error
			if retry {
				_, err = p.rpcRetry(addr, req)
			} else {
				_, err = rpc(addr, req, p.cfg.RPCTimeout)
			}
			if err != nil {
				p.queueHint(addr, req)
			}
		}
	}
}

// hint is one queued hinted-handoff write: a plane-broadcast RPC that
// could not reach addr while it was dark or severed.
type hint struct {
	addr string
	msg  *Message
}

// queueHint queues req for later replay to addr, one slot per
// (addr, message type) — a newer register to the same replica supersedes
// the older one rather than queueing behind it.
func (p *Peer) queueHint(addr string, req *Message) {
	cp := *req // private copy: callers may reuse the message
	p.hintMu.Lock()
	for i := range p.hints {
		if p.hints[i].addr == addr && p.hints[i].msg.Type == cp.Type {
			p.hints[i].msg = &cp
			p.hintMu.Unlock()
			return
		}
	}
	p.hints = append(p.hints, hint{addr: addr, msg: &cp})
	p.hintMu.Unlock()
	atomic.AddUint64(&p.ctr.HintsQueued, 1)
}

// ReplayHints redelivers every queued hinted-handoff write, requeueing
// the ones that still fail. The cluster's fault driver calls it when a
// partition heals; anti-entropy gossip then spreads the replayed writes
// to the replicas that were dark rather than severed.
func (p *Peer) ReplayHints() {
	p.hintMu.Lock()
	pending := p.hints
	p.hints = nil
	p.hintMu.Unlock()
	var still []hint
	for _, h := range pending {
		if _, err := rpc(h.addr, h.msg, p.cfg.RPCTimeout); err != nil {
			still = append(still, h)
			continue
		}
		atomic.AddUint64(&p.ctr.HintsReplayed, 1)
	}
	if len(still) > 0 {
		p.hintMu.Lock()
		p.hints = append(still, p.hints...)
		p.hintMu.Unlock()
	}
}

// observePlane folds an epoch-stamped tracker response into the routing
// view: a strictly newer epoch replaces the dead-shard mask. Healthy
// planes stamp nothing, so the view stays (0, 0) and routing is
// byte-identical to the pre-takeover walk.
func (p *Peer) observePlane(resp *Message) {
	if resp == nil || resp.Epoch == 0 {
		return
	}
	p.planeMu.Lock()
	if resp.Epoch > p.planeEpoch {
		p.planeEpoch = resp.Epoch
		p.planeDead = resp.DeadShards
	}
	p.planeMu.Unlock()
}

// planeView returns the peer's current (ring epoch, dead-shard mask).
func (p *Peer) planeView() (int64, uint64) {
	p.planeMu.Lock()
	defer p.planeMu.Unlock()
	return p.planeEpoch, p.planeDead
}

// Addr returns the peer's listen address (valid after Start).
func (p *Peer) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Stop closes the listener and waits for all handler goroutines.
func (p *Peer) Stop() {
	select {
	case <-p.closeCh:
		return
	default:
	}
	close(p.closeCh)
	if p.ln != nil {
		p.ln.Close()
	}
	p.wg.Wait()
}

// ServedBytes returns the bytes this peer uploaded to others.
func (p *Peer) ServedBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.servedBytes
}

// Links returns the node's total link count (its maintenance overhead).
func (p *Peer) Links() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.inner) + len(p.inter)
	for _, m := range p.perVideo {
		n += len(m)
	}
	return n
}

// CacheLen returns the number of fully cached videos.
func (p *Peer) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cache.FullLen()
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.closeCh:
				return
			default:
				continue
			}
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

func (p *Peer) handle(conn net.Conn) {
	defer conn.Close()
	// Budget the whole exchange (read, uplink queueing, write) at a few
	// RPC timeouts so a stalled client can't pin a handler goroutine,
	// without cutting off legitimately queued chunk transfers.
	if err := conn.SetDeadline(time.Now().Add(4 * p.cfg.RPCTimeout)); err != nil {
		return
	}
	req, err := ReadMessage(conn)
	if err != nil {
		atomic.AddUint64(&p.ctr.FramesMalformed, 1)
		return
	}
	if err := req.Validate(); err != nil {
		atomic.AddUint64(&p.ctr.FramesRejected, 1)
		return
	}
	if p.cond.Drop() {
		return // simulated loss
	}
	time.Sleep(p.cond.Latency(p.cfg.ID, req.From))
	resp := p.dispatch(req)
	if resp != nil {
		act, stall := p.cond.nextChaos()
		writeMessageChaos(conn, resp, act, stall, &p.ctr)
	}
}

// Counters snapshots the peer's protocol counters, folding in the
// current breaker statistics.
func (p *Peer) Counters() obs.Counters {
	c := p.ctr.Snapshot()
	p.brkMu.Lock()
	c.BreakerOpens = p.brk.Opens + p.tbrk.Opens
	c.BreakerSkips = p.brk.Skips + p.tbrk.Skips
	c.BreakerProbes = p.brk.Probes + p.tbrk.Probes
	c.BreakerRecoveries = p.brk.Recoveries + p.tbrk.Recoveries
	p.brkMu.Unlock()
	return c
}

// allowPeer consults the circuit breaker before an RPC to peer id:
// false means the breaker is open and the call should be skipped.
func (p *Peer) allowPeer(id int) bool {
	p.brkMu.Lock()
	defer p.brkMu.Unlock()
	p.brk.Ensure(id)
	return p.brk.Allow(id, time.Since(p.epoch))
}

// peerOK / peerFail feed RPC outcomes back into the breaker. Only
// transport-level failures count — a well-formed MsgMiss is a healthy
// peer without the content.
func (p *Peer) peerOK(id int) {
	p.brkMu.Lock()
	p.brk.Success(id)
	p.brkMu.Unlock()
}

func (p *Peer) peerFail(id int) {
	p.brkMu.Lock()
	p.brk.Ensure(id)
	p.brk.Failure(id, time.Since(p.epoch))
	p.brkMu.Unlock()
}

// SetOnline flips the peer's availability: an offline peer's listener stays
// bound (the process is alive) but it answers every protocol request
// negatively, as a logged-off user would.
func (p *Peer) SetOnline(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.online = v
}

// Crash takes the peer down abruptly: unlike SetOnline(false) + LeaveOverlays
// it sends no Bye and no Leave, so the tracker and every neighbor keep stale
// references to it until probing notices. The listener stays bound (the port
// is held) but every incoming message is dropped on the floor.
func (p *Peer) Crash() {
	p.crashed.Store(true)
}

// IsCrashed reports whether the peer is currently crashed.
func (p *Peer) IsCrashed() bool {
	return p.crashed.Load()
}

// Rejoin brings a crashed peer back: its link state is gone (a restarted
// process holds no sockets) but its cache survived on disk. The peer
// re-registers with the tracker and, under SocialTube, re-seeds its prefetch
// prefixes from its home channel's popularity list (§IV-B re-seeding).
func (p *Peer) Rejoin() {
	if !p.crashed.Swap(false) {
		return
	}
	p.mu.Lock()
	home := p.home
	p.inner = make(map[int]PeerInfo)
	p.inter = make(map[int]PeerInfo)
	p.perVideo = make(map[trace.VideoID]map[int]PeerInfo)
	p.home = -1
	p.mu.Unlock()
	p.broadcastPlane(&Message{Type: MsgRegister, From: p.cfg.ID, Addr: p.Addr()}, true)
	p.ReplayHints()
	if p.cfg.Mode == ModeSocialTube && home >= 0 {
		p.socialTubePrefetch(home, -1)
	}
}

// rpcRetry performs one RPC with up to MaxRetries additional attempts and
// exponential backoff, aborting early when the peer stops. It is used on the
// tracker path, where a transient outage should degrade service gracefully
// instead of losing the request outright.
func (p *Peer) rpcRetry(addr string, req *Message) (*Message, error) {
	backoff := p.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		resp, err := rpc(addr, req, p.cfg.RPCTimeout)
		if err == nil {
			return resp, nil
		}
		if attempt >= p.cfg.MaxRetries {
			atomic.AddUint64(&p.ctr.RPCFailures, 1)
			return resp, err
		}
		select {
		case <-p.closeCh:
			atomic.AddUint64(&p.ctr.RPCFailures, 1)
			return nil, err
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// chanKey returns the routing key for a video-keyed tracker RPC: the
// video's owning channel, so a video and its channel land on the same
// shard and the tracker's per-channel state stays shard-local.
func (p *Peer) chanKey(v trace.VideoID) int64 {
	if vd := p.tr.Video(v); vd != nil {
		return int64(vd.Channel)
	}
	return int64(v)
}

// trackerRPC routes one tracker-path RPC to the shard owning key, failing
// over between the shard's replicas. On a single-endpoint plane (the
// legacy path) it reduces to exactly rpcRetry against that address — no
// breaker is consulted, so legacy behaviour is unchanged.
//
// With replicas, each retry round walks the owning shard's replica set
// (walkShard) starting from the preferred replica, then — if the whole
// shard failed — walks the shard the key re-rendezvouses onto when the
// owner is removed from the ring. That fallback is what bounds the
// pre-takeover loss window: requests survive a whole-shard death even
// before any survivor has declared it, at the cost of one extra walk.
// Once a declaration has gossiped, responses carry the ring epoch and
// dead-shard mask, the peer's plane view reroutes the request up front,
// and the failed walk disappears. Backoff doubles between rounds exactly
// like rpcRetry.
func (p *Peer) trackerRPC(key int64, req *Message) (*Message, error) {
	shard := p.cp.Owner(key)
	if p.cp.Endpoints() == 1 {
		return p.rpcRetry(p.cp.Replicas(shard)[0], req)
	}
	_, dead := p.planeView()
	if dead != 0 {
		if alt := p.cp.OwnerExcluding(key, dead); alt != shard {
			atomic.AddUint64(&p.ctr.TakeoverReroutes, 1)
			shard = alt
		}
	}
	backoff := p.cfg.RetryBackoff
	var lastResp *Message
	var lastErr error
	for round := 0; ; round++ {
		resp, err := p.walkShard(shard, req)
		if err == nil {
			p.observePlane(resp)
			return resp, nil
		}
		lastResp, lastErr = resp, err
		if shard < 64 {
			if fb := p.cp.OwnerExcluding(key, dead|1<<uint(shard)); fb != shard {
				if resp, err := p.walkShard(fb, req); err == nil {
					atomic.AddUint64(&p.ctr.TakeoverReroutes, 1)
					p.observePlane(resp)
					return resp, nil
				}
			}
		}
		if round >= p.cfg.MaxRetries {
			atomic.AddUint64(&p.ctr.RPCFailures, 1)
			return lastResp, lastErr
		}
		select {
		case <-p.closeCh:
			atomic.AddUint64(&p.ctr.RPCFailures, 1)
			return nil, lastErr
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// walkShard tries one request against every replica of shard, starting
// from the preferred replica: replicas across a partition cut are
// skipped, endpoints with open breakers are skipped, and transport
// outcomes feed the endpoint breaker. If every breaker was open the
// preferred replica is probed anyway — total shard darkness must keep
// probing for recovery.
func (p *Peer) walkShard(shard int, req *Message) (*Message, error) {
	reps := p.cp.Replicas(shard)
	pref := p.preferredReplica(shard, len(reps))
	tried := false
	var lastResp *Message
	var lastErr error
	for k := 0; k < len(reps); k++ {
		r := (pref + k) % len(reps)
		if p.cond.Severed(p.cfg.ID, r) {
			continue
		}
		idx := p.cp.EndpointIndex(shard, r)
		if !p.allowEndpoint(idx) {
			continue
		}
		tried = true
		resp, err := rpc(reps[r], req, p.cfg.RPCTimeout)
		if err == nil {
			p.endpointOK(idx)
			p.maybeDemote(shard, pref, r)
			return resp, nil
		}
		p.endpointFail(idx)
		lastResp, lastErr = resp, err
	}
	if !tried && !p.cond.Severed(p.cfg.ID, pref) {
		idx := p.cp.EndpointIndex(shard, pref)
		resp, err := rpc(reps[pref], req, p.cfg.RPCTimeout)
		if err == nil {
			p.endpointOK(idx)
			return resp, nil
		}
		p.endpointFail(idx)
		lastResp, lastErr = resp, err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("emu: no reachable replica of shard %d", shard)
	}
	return lastResp, lastErr
}

// preferredReplica returns the replica of shard this peer tries first:
// the ID-stable configured choice (spreading peers across replicas)
// unless a breaker-driven demotion moved it.
func (p *Peer) preferredReplica(shard, n int) int {
	p.brkMu.Lock()
	if v, ok := p.prefRep[shard]; ok && v >= 0 && v < n {
		p.brkMu.Unlock()
		return v
	}
	p.brkMu.Unlock()
	pref := p.cfg.ID % n
	if pref < 0 {
		pref += n
	}
	return pref
}

// maybeDemote re-points the preferred replica of shard at winner when the
// walk had to skip past an open-breaker preference: the old behaviour
// kept the preference sticky, so every request during a long replica
// outage paid the failover walk (a breaker-skip plus the wrap-around)
// before reaching the healthy replica. Demotion is withdrawn naturally —
// if the demoted-to replica fails later, the walk wraps to the recovered
// original and demotes back to it.
func (p *Peer) maybeDemote(shard, pref, winner int) {
	if winner == pref {
		return
	}
	p.brkMu.Lock()
	defer p.brkMu.Unlock()
	if p.tbrk.State(p.cp.EndpointIndex(shard, pref)) == health.Open {
		p.prefRep[shard] = winner
	}
}

// allowEndpoint / endpointOK / endpointFail mirror the per-neighbour
// breaker helpers for control-plane endpoints, keyed by flat endpoint
// index.
func (p *Peer) allowEndpoint(idx int) bool {
	p.brkMu.Lock()
	defer p.brkMu.Unlock()
	p.tbrk.Ensure(idx)
	return p.tbrk.Allow(idx, time.Since(p.epoch))
}

func (p *Peer) endpointOK(idx int) {
	p.brkMu.Lock()
	p.tbrk.Success(idx)
	p.brkMu.Unlock()
}

func (p *Peer) endpointFail(idx int) {
	p.brkMu.Lock()
	p.tbrk.Ensure(idx)
	p.tbrk.Failure(idx, time.Since(p.epoch))
	p.brkMu.Unlock()
}

func (p *Peer) dispatch(req *Message) *Message {
	if p.crashed.Load() {
		return nil // a crashed host answers nothing at all
	}
	if req.From >= 0 && p.cond.Severed(req.From, p.cfg.ID) {
		return nil // partitioned: the sender is on the other side of the cut
	}
	p.mu.Lock()
	up := p.online
	p.mu.Unlock()
	if !up {
		return nil // an offline peer does not answer
	}
	switch req.Type {
	case MsgQuery:
		return p.handleQuery(req)
	case MsgChunkReq:
		return p.handleChunkReq(req)
	case MsgConnect:
		return p.handleConnect(req)
	case MsgProbe:
		return &Message{Type: MsgOK, From: p.cfg.ID}
	case MsgBye:
		p.dropLinksTo(req.From)
		return &Message{Type: MsgOK, From: p.cfg.ID}
	case MsgCacheSample:
		return p.handleCacheSample(req)
	default:
		return &Message{Type: MsgMiss, From: p.cfg.ID}
	}
}

// dropLinksTo removes every link to the departed peer ("for graceful
// departures, before a node leaves the system, it notifies all of its
// neighbors, which will update the links", §IV-A).
func (p *Peer) dropLinksTo(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.inner, id)
	delete(p.inter, id)
	for _, m := range p.perVideo {
		delete(m, id)
	}
}

// handleQuery implements the receiver side of the TTL flood: answer from
// the local cache or forward to neighbours with a decremented TTL. A hit
// short-circuits with this peer as the sole candidate (rank 1: fewest
// hops); forwarded floods accumulate a ranked candidate list, up to
// maxQueryProviders, so the requester can fail over without re-flooding.
func (p *Peer) handleQuery(req *Message) *Message {
	v := trace.VideoID(req.Video)
	p.mu.Lock()
	hasIt := p.cache.HasFull(v)
	neighbors := p.forwardSet(req)
	p.mu.Unlock()

	if hasIt {
		self := PeerInfo{ID: p.cfg.ID, Addr: p.Addr()}
		return &Message{
			Type: MsgOK, From: p.cfg.ID,
			Video: req.Video, Provider: p.cfg.ID, ProviderAddr: p.Addr(), Hops: 1,
			Providers: []PeerInfo{self},
		}
	}
	if req.TTL <= 1 {
		return &Message{Type: MsgMiss, From: p.cfg.ID, Messages: 0}
	}
	visited := append(append([]int{}, req.Visited...), p.cfg.ID)
	seen := make(map[int]bool, len(visited))
	for _, id := range visited {
		seen[id] = true
	}
	msgs, hops := 0, 0
	var provs []PeerInfo
	for _, nb := range neighbors {
		if seen[nb.ID] {
			continue
		}
		if !p.allowPeer(nb.ID) {
			continue // open breaker: don't spend a message on a dead link
		}
		msgs++
		resp, err := rpc(nb.Addr, &Message{
			Type: MsgQuery, From: p.cfg.ID,
			Video: req.Video, TTL: req.TTL - 1, Visited: visited,
		}, p.cfg.RPCTimeout)
		if err != nil {
			p.peerFail(nb.ID)
			continue
		}
		p.peerOK(nb.ID)
		msgs += resp.Messages
		if resp.Type != MsgOK {
			continue
		}
		if hops == 0 {
			hops = resp.Hops + 1
		}
		provs = appendProviders(provs, responseProviders(resp), maxQueryProviders)
		if len(provs) >= maxQueryProviders {
			break
		}
	}
	if len(provs) == 0 {
		return &Message{Type: MsgMiss, From: p.cfg.ID, Messages: msgs}
	}
	return &Message{
		Type: MsgOK, From: p.cfg.ID,
		Video: req.Video, Hops: hops, Messages: msgs,
		Provider: provs[0].ID, ProviderAddr: provs[0].Addr,
		Providers: provs,
	}
}

// responseProviders returns a response's ranked candidate list, falling
// back to the legacy single-provider head.
func responseProviders(m *Message) []PeerInfo {
	if len(m.Providers) > 0 {
		return m.Providers
	}
	if m.ProviderAddr != "" {
		return []PeerInfo{{ID: m.Provider, Addr: m.ProviderAddr}}
	}
	return nil
}

// appendProviders merges src into dst keeping ids unique and the list at
// most limit long; earlier entries (fewer hops) keep their rank.
func appendProviders(dst, src []PeerInfo, limit int) []PeerInfo {
	for _, c := range src {
		if len(dst) >= limit {
			break
		}
		dup := false
		for _, d := range dst {
			if d.ID == c.ID {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, c)
		}
	}
	return dst
}

// forwardSet returns the neighbours a query is forwarded to. The caller
// must hold p.mu.
func (p *Peer) forwardSet(req *Message) []PeerInfo {
	switch p.cfg.Mode {
	case ModeSocialTube:
		// Queries are forwarded along inner-links within the channel
		// overlay only (inter-neighbours start their own channel
		// floods at the origin).
		out := make([]PeerInfo, 0, len(p.inner))
		for _, info := range p.inner {
			out = append(out, info)
		}
		sortInfos(out)
		return out
	case ModeNetTube:
		seen := make(map[int]bool)
		var out []PeerInfo
		for _, m := range p.perVideo {
			for id, info := range m {
				if !seen[id] {
					seen[id] = true
					out = append(out, info)
				}
			}
		}
		sortInfos(out)
		return out
	default:
		return nil
	}
}

// sortInfos orders a map-gathered peer list by id so every flood walks
// neighbours in the same order run-to-run (Go map iteration is random).
func sortInfos(s []PeerInfo) {
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}

// handleChunkReq serves one cached chunk from the peer's finite uplink.
func (p *Peer) handleChunkReq(req *Message) *Message {
	v := trace.VideoID(req.Video)
	p.mu.Lock()
	ok := p.cache.HasFull(v) || p.watching == v || (req.Chunk == 0 && p.cache.HasPrefix(v))
	if !ok {
		p.mu.Unlock()
		return &Message{Type: MsgMiss, From: p.cfg.ID}
	}
	tx := time.Duration(float64(p.cfg.ChunkPayload*8) / float64(p.cfg.UplinkBps) * float64(time.Second))
	now := time.Now()
	start := now
	if p.busyUntil.After(start) {
		start = p.busyUntil
	}
	done := start.Add(tx)
	p.busyUntil = done
	p.servedBytes += int64(p.cfg.ChunkPayload)
	p.mu.Unlock()
	time.Sleep(done.Sub(now))
	return &Message{
		Type: MsgOK, From: p.cfg.ID,
		Video: req.Video, Chunk: req.Chunk,
		Payload: make([]byte, p.cfg.ChunkPayload),
	}
}

// handleCacheSample returns up to TTL random cached video ids, the source
// material for NetTube's random neighbour prefetching.
func (p *Peer) handleCacheSample(req *Message) *Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	vids := p.cache.FullVideos()
	n := req.TTL
	if n <= 0 || n > len(vids) {
		n = len(vids)
	}
	p.g.Shuffle(len(vids), func(i, j int) { vids[i], vids[j] = vids[j], vids[i] })
	out := make([]int, 0, n)
	for _, v := range vids[:n] {
		out = append(out, int(v))
	}
	return &Message{Type: MsgOK, From: p.cfg.ID, Videos: out}
}

// handleConnect accepts or rejects an overlay link request depending on the
// relevant budget, keeping links symmetric (the requester adds the link
// only on acceptance).
func (p *Peer) handleConnect(req *Message) *Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	info := PeerInfo{ID: req.From, Addr: req.Addr, Channel: req.Channel}
	accepted := false
	switch req.Link {
	case "inner":
		if trace.ChannelID(req.Channel) == p.home && len(p.inner) < p.cfg.InnerLinks {
			if _, dup := p.inner[req.From]; !dup {
				p.inner[req.From] = info
				accepted = true
			}
		}
	case "inter":
		if len(p.inter) < p.cfg.InterLinks {
			if _, dup := p.inter[req.From]; !dup {
				p.inter[req.From] = info
				accepted = true
			}
		}
	case "video":
		v := trace.VideoID(req.Video)
		m := p.perVideo[v]
		if m == nil {
			// Only accept overlay links for videos this peer is in
			// the overlay of (it has watched/cached it).
			if !p.cache.HasFull(v) {
				break
			}
			m = make(map[int]PeerInfo)
			p.perVideo[v] = m
		}
		if len(m) < p.cfg.LinksPerOverlay {
			if _, dup := m[req.From]; !dup {
				m[req.From] = info
				accepted = true
			}
		}
	}
	return &Message{Type: MsgOK, From: p.cfg.ID, Accepted: accepted}
}
