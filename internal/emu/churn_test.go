package emu

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/faults"
)

func fastClusterConfig(mode Mode) ClusterConfig {
	cfg := DefaultClusterConfig(mode)
	cfg.Peers = 8
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.WatchTime = 2 * time.Millisecond
	cfg.MeanOffTime = 2 * time.Millisecond
	cfg.Conditions = fastConditions()
	return cfg
}

// waitGoroutines polls until the goroutine count returns to near its
// baseline, failing the test if lingering handlers never wind down.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestRunClusterCtxCancelReleasesEverything pins the shutdown fix:
// cancelling the context mid-run returns context.Canceled promptly and
// leaves no tracker, peer, probe or fault-driver goroutine behind.
func TestRunClusterCtxCancelReleasesEverything(t *testing.T) {
	tr := emuTrace(t)
	before := runtime.NumGoroutine()
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.Sessions = 50 // far more work than the test allows to finish
	cfg.WatchTime = 20 * time.Millisecond
	cfg.Faults = &faults.Plan{
		Seed:    1,
		Outages: []faults.Outage{{At: time.Hour, Duration: time.Minute}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := RunClusterCtx(ctx, cfg, tr)
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunClusterCtx did not return after cancellation")
	}
	waitGoroutines(t, before)
}

// TestRunClusterEarlyErrorReleasesEverything forces an error after the
// tracker and all peers have started (a bad metrics address) and checks
// they are all shut down on the early-return path.
func TestRunClusterEarlyErrorReleasesEverything(t *testing.T) {
	tr := emuTrace(t)
	before := runtime.NumGoroutine()
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.MetricsAddr = "definitely:not:an:addr"
	if _, err := RunCluster(cfg, tr); err == nil {
		t.Fatal("bad metrics address accepted")
	}
	waitGoroutines(t, before)
}

func TestRunClusterCtxAlreadyCancelled(t *testing.T) {
	tr := emuTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunClusterCtx(ctx, fastClusterConfig(ModeSocialTube), tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunClusterRejectsBadPlan(t *testing.T) {
	tr := emuTrace(t)
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.Faults = &faults.Plan{Waves: []faults.ChurnWave{{At: time.Second}}}
	if _, err := RunCluster(cfg, tr); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

// TestClusterChurnCrashesAndRejoins runs a churn wave against a live
// cluster: crashed peers stop answering, rejoin, and every request is
// still accounted for.
func TestClusterChurnCrashesAndRejoins(t *testing.T) {
	tr := emuTrace(t)
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.Sessions = 2
	cfg.VideosPerSession = 4
	cfg.WatchTime = 5 * time.Millisecond
	cfg.Faults = &faults.Plan{
		Seed: 7,
		Waves: []faults.ChurnWave{
			{At: 5 * time.Millisecond, Fraction: 0.25, DownFor: 15 * time.Millisecond},
		},
	}
	res, err := RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("churn wave crashed nobody")
	}
	if res.Rejoins != res.Crashes {
		t.Fatalf("crashes=%d but rejoins=%d (every wave sets DownFor)", res.Crashes, res.Rejoins)
	}
	total := res.CacheHits + res.PeerHits + res.ServerHits
	want := int64(cfg.Peers * cfg.Sessions * cfg.VideosPerSession)
	if total != want {
		t.Fatalf("requests lost to churn: %d accounted of %d", total, want)
	}
}

// TestClusterTrackerOutage pins the emu outage model: requests issued
// while the tracker is down either ride out the retry budget or fail,
// but the per-source hit counts still sum to the request total
// (failed requests are contained in ServerHits).
func TestClusterTrackerOutage(t *testing.T) {
	tr := emuTrace(t)
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.Peers = 6
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.WatchTime = 5 * time.Millisecond
	cfg.RPCTimeout = 30 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.RetryBackoff = 2 * time.Millisecond
	cfg.Faults = &faults.Plan{
		Seed:    3,
		Outages: []faults.Outage{{At: 0, Duration: 300 * time.Millisecond}},
	}
	res, err := RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutageRequests == 0 {
		t.Fatal("no requests overlapped the outage window")
	}
	if res.FailedRequests == 0 {
		t.Fatal("a 300ms outage with a ~60ms retry budget failed no requests")
	}
	if res.FailedRequests > res.ServerHits {
		t.Fatalf("failed requests (%d) not contained in server hits (%d)", res.FailedRequests, res.ServerHits)
	}
	if res.OutageServed > res.OutageRequests {
		t.Fatalf("outage served %d of only %d outage requests", res.OutageServed, res.OutageRequests)
	}
	total := res.CacheHits + res.PeerHits + res.ServerHits
	want := int64(cfg.Peers * cfg.Sessions * cfg.VideosPerSession)
	if total != want {
		t.Fatalf("requests lost during outage: %d accounted of %d", total, want)
	}
}

// TestPeerCrashRejoin drives the crash primitive directly: a crashed
// peer answers nothing (not even probes); a rejoined one answers again.
func TestPeerCrashRejoin(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	p := startPeer(t, tr, tk, 0, ModeSocialTube, cond)

	if _, err := rpc(p.Addr(), &Message{Type: MsgProbe, From: 99}, time.Second); err != nil {
		t.Fatalf("healthy peer refused a probe: %v", err)
	}
	p.Crash()
	if !p.IsCrashed() {
		t.Fatal("Crash did not mark the peer crashed")
	}
	if _, err := rpc(p.Addr(), &Message{Type: MsgProbe, From: 99}, 200*time.Millisecond); err == nil {
		t.Fatal("crashed peer answered a probe")
	}
	p.Rejoin()
	if p.IsCrashed() {
		t.Fatal("Rejoin left the peer crashed")
	}
	if _, err := rpc(p.Addr(), &Message{Type: MsgProbe, From: 99}, time.Second); err != nil {
		t.Fatalf("rejoined peer refused a probe: %v", err)
	}
	// Rejoin on a healthy peer is a no-op.
	p.Rejoin()
}

// TestTrackerOutageAndBrownout exercises SetDown and SetCapacityFactor
// against a live tracker.
func TestTrackerOutageAndBrownout(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())

	reg := &Message{Type: MsgRegister, From: 1, Addr: "127.0.0.1:1"}
	if _, err := rpc(tk.Addr(), reg, time.Second); err != nil {
		t.Fatalf("healthy tracker refused a register: %v", err)
	}
	tk.SetDown(true)
	if !tk.Down() {
		t.Fatal("SetDown(true) not visible")
	}
	if _, err := rpc(tk.Addr(), reg, 200*time.Millisecond); err == nil {
		t.Fatal("down tracker answered a request")
	}
	tk.SetDown(false)
	if _, err := rpc(tk.Addr(), reg, time.Second); err != nil {
		t.Fatalf("recovered tracker refused a register: %v", err)
	}

	// A brownout stretches the chunk transmission time by 1/factor.
	serve := &Message{Type: MsgServe, From: 1, Video: int(tr.Videos[0].ID), Chunk: 0}
	healthyStart := time.Now()
	if _, err := rpc(tk.Addr(), serve, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	healthy := time.Since(healthyStart)
	tk.SetCapacityFactor(0.05)
	slowStart := time.Now()
	if _, err := rpc(tk.Addr(), serve, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	slow := time.Since(slowStart)
	tk.SetCapacityFactor(1)
	if slow <= healthy {
		t.Fatalf("brownout did not slow the server: healthy=%v brownout=%v", healthy, slow)
	}
	// Out-of-range factors restore full capacity rather than exploding.
	tk.SetCapacityFactor(-3)
	if f := tk.capacityFactor(); f != 1 {
		t.Fatalf("negative capacity factor stored as %v", f)
	}
}

// TestConditionsBurst pins the burst window: latency scales by the
// factor, loss rises to the burst probability, and clearing restores
// the baseline. Nil receivers must not panic (the fault driver calls
// unconditionally).
func TestConditionsBurst(t *testing.T) {
	c := fastConditions()
	base := c.Latency(1, 2)
	if base <= 0 {
		t.Fatal("baseline latency is zero; the test is vacuous")
	}
	c.SetBurst(3, 0)
	if got := c.Latency(1, 2); got < 2*base {
		t.Fatalf("burst latency %v did not scale from %v", got, base)
	}
	c.SetBurst(0.5, 1) // factor clamps up to 1, loss caps at 1
	if got := c.Latency(1, 2); got != base {
		t.Fatalf("clamped factor changed latency: %v != %v", got, base)
	}
	if !c.Drop() {
		t.Fatal("lossP=1 burst did not drop")
	}
	c.ClearBurst()
	if c.Drop() {
		t.Fatal("cleared burst still dropping with LossP=0")
	}
	if got := c.Latency(1, 2); got != base {
		t.Fatalf("cleared burst changed latency: %v != %v", got, base)
	}
	var nilC *Conditions
	nilC.SetBurst(2, 0.5)
	nilC.ClearBurst()
}
