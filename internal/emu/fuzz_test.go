package emu

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/ctrl"
	"github.com/socialtube/socialtube/internal/trace"
)

// fuzzSeedMessages is one representative message per wire type, the
// golden corpus both fuzzers start from.
func fuzzSeedMessages() []*Message {
	return []*Message{
		{Type: MsgRegister, From: 1, Addr: "127.0.0.1:9"},
		{Type: MsgJoin, From: 2, Addr: "127.0.0.1:9", Channel: 3, TTL: 1},
		{Type: MsgJoinVideo, From: 2, Addr: "127.0.0.1:9", Video: 7},
		{Type: MsgLeave, From: 2, Channel: 3},
		{Type: MsgServe, From: 4, Video: 7, Chunk: 1},
		{Type: MsgTopList, From: 4, Channel: 3},
		{Type: MsgWatchStart, From: 5, Addr: "127.0.0.1:9", Video: 7},
		{Type: MsgWatchDone, From: 5, Video: 7},
		{Type: MsgHave, From: 5, Addr: "127.0.0.1:9", Video: 7},
		{Type: MsgQuery, From: 6, Video: 7, TTL: 2, Visited: []int{0, 6}},
		{Type: MsgChunkReq, From: 6, Video: 7, Chunk: 0},
		{Type: MsgConnect, From: 6, Addr: "127.0.0.1:9", Link: "inner", Channel: 3},
		{Type: MsgProbe, From: 6},
		{Type: MsgBye, From: 6},
		{Type: MsgCacheSample, From: 6},
		{Type: MsgJoinOK, From: -1, Peers: []PeerInfo{{ID: 1, Addr: "127.0.0.1:9", Channel: 3}}},
		{Type: MsgOK, From: -1, Provider: 1, ProviderAddr: "127.0.0.1:9",
			Providers: []PeerInfo{{ID: 1, Addr: "127.0.0.1:9", Channel: 3}}, Hops: 1},
		{Type: MsgMiss, From: -1},
		// Gossip anti-entropy frames: a liveness-only exchange (beats +
		// status + epoch), a full table sync carrying liveness, and a
		// tracker response stamped with the ring epoch and dead-shard
		// mask a takeover propagates to peers.
		{Type: MsgSync, From: -1,
			Beats:  []ctrl.Beat{{Key: 0, Ver: 4}, {Key: 1<<8 | 1, Ver: 9}},
			Status: []ctrl.ShardStatus{{Shard: 1, Dead: true, Ver: 5 << 8}},
			Epoch:  1},
		{Type: MsgSync, From: -1,
			Sync: []ctrl.TableSync{{Table: "channels"}},
			Beats: []ctrl.Beat{{Key: 2 << 8, Ver: 1}},
			Epoch: 2},
		{Type: MsgJoinOK, From: -1, Epoch: 3, DeadShards: 1 << 1,
			Peers: []PeerInfo{{ID: 1, Addr: "127.0.0.1:9", Channel: 3}}},
	}
}

// FuzzReadMessage hammers the frame decoder with arbitrary bytes: it must
// never panic, and any frame it accepts must survive a strict-validate +
// re-encode + re-decode round trip.
func FuzzReadMessage(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed shapes: truncated header, length promising more than the
	// body, oversized length, zero-length frame, raw junk.
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{0, 0, 0, 9, '{', '}'})
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, maxFrame+1)
	f.Add(hdr)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte("junk frame with no header at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		back, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if back.Type != m.Type || back.From != m.From || back.Video != m.Video {
			t.Fatalf("round trip drifted: %+v vs %+v", back, m)
		}
	})
}

// FuzzHandleMessage drives a live peer's dispatch with arbitrary decoded
// messages: whatever a hostile client encodes, a handler must answer or
// refuse without panicking. The peer is real (cache, links, breaker) but
// its RPC timeout is tiny so forwarded floods to garbage addresses cost
// microseconds.
func FuzzHandleMessage(f *testing.F) {
	cfg := trace.DefaultConfig()
	cfg.Seed = 51
	cfg.Channels = 12
	cfg.Users = 16
	cfg.Categories = 4
	cfg.MaxInterestsPerUser = 4
	tr, err := trace.Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	pc := DefaultPeerConfig(1, ModeSocialTube)
	pc.RPCTimeout = time.Millisecond
	pc.ChunkPayload = 64
	pc.UplinkBps = 1 << 30
	p, err := NewPeer(pc, tr, "127.0.0.1:1", nil)
	if err != nil {
		f.Fatal(err)
	}
	if err := p.Start(); err != nil {
		f.Fatal(err)
	}
	f.Cleanup(p.Stop)
	p.SetOnline(true)
	if len(tr.Videos) > 0 {
		p.SeedCache(tr.Videos[0].ID)
	}

	for _, m := range fuzzSeedMessages() {
		b, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if json.Unmarshal(data, &m) != nil {
			return
		}
		if m.Validate() != nil {
			return // the wire layer rejects these before dispatch
		}
		if resp := p.dispatch(&m); resp != nil {
			if err := resp.Validate(); err != nil {
				t.Fatalf("handler produced an invalid response: %v", err)
			}
		}
	})
}
