package emu

import (
	"runtime"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/trace"
)

// startPlane builds and starts an in-process control plane with fast
// conditions for tests.
func startPlane(t *testing.T, tr *trace.Trace, cfg ControlPlaneConfig) *ControlPlane {
	t.Helper()
	cp, err := StartControlPlane(cfg, DefaultTrackerConfig(), tr, fastConditions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Stop)
	return cp
}

// TestSingleTrackerShim pins the legacy shim's shape: one shard owning
// every key, one endpoint, and inert server-side methods (a client-only
// plane must be safe to target with fault handles).
func TestSingleTrackerShim(t *testing.T) {
	cp := SingleTracker("127.0.0.1:1")
	if cp.NumShards() != 1 || cp.Endpoints() != 1 {
		t.Fatalf("shim plane is %dx%d endpoints=%d, want 1x1", cp.NumShards(), 1, cp.Endpoints())
	}
	for _, key := range []int64{0, 1, 42, 1 << 40} {
		if cp.Owner(key) != 0 {
			t.Fatalf("Owner(%d) = %d, want 0", key, cp.Owner(key))
		}
	}
	if got := cp.All(); len(got) != 1 || got[0] != "127.0.0.1:1" {
		t.Fatalf("All() = %v", got)
	}
	// Client-only plane: every server-side method is a no-op.
	cp.SetDown(true)
	cp.SetCapacityFactor(0.5)
	cp.Shard(0).SetDown(true)
	cp.Shard(99).SetDown(true)
	if cp.First() != nil || cp.Trackers() != nil {
		t.Fatal("client-only plane exposes trackers")
	}
	cp.Stop()
}

// TestTrackerRPCRoutesToOwningShard drives member joins through a peer's
// control-plane routing on a 2-shard plane and asserts the membership
// lands on exactly the ring-designated shard.
func TestTrackerRPCRoutesToOwningShard(t *testing.T) {
	tr := emuTrace(t)
	cp := startPlane(t, tr, ControlPlaneConfig{Shards: 2, Replicas: 1, RingSeed: 3})
	cfg := DefaultPeerConfig(0, ModeSocialTube)
	p, err := NewPeerWithControlPlane(cfg, tr, cp, fastConditions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)

	routedTo := map[int]bool{}
	for i := 0; i < 8 && i < len(tr.Channels); i++ {
		ch := tr.Channels[i].ID
		resp, err := p.trackerRPC(int64(ch), &Message{
			Type: MsgJoin, From: 0, Addr: p.Addr(), Channel: int(ch), TTL: 1,
		})
		if err != nil || resp.Type != MsgJoinOK {
			t.Fatalf("join channel %d: %v %+v", ch, err, resp)
		}
		owner := cp.Owner(int64(ch))
		other := 1 - owner
		routedTo[owner] = true
		if got := cp.trackers[owner][0].channels.Live(int64(ch)); got[0] != p.Addr() {
			t.Fatalf("channel %d membership missing on owning shard %d: %v", ch, owner, got)
		}
		if got := cp.trackers[other][0].channels.Live(int64(ch)); got != nil {
			t.Fatalf("channel %d membership leaked to shard %d: %v", ch, other, got)
		}
	}
	if len(routedTo) != 2 {
		t.Fatalf("all sampled channels landed on shards %v; want both shards exercised", routedTo)
	}
}

// TestJoinMembershipExclusive is the regression test for the channel-map
// staleness bug: a member join used to leave the peer's entry under its
// previous home channel alive, so the tracker kept recommending a peer
// that had moved away. With exclusive membership the old row is
// tombstoned the moment the peer joins its new home.
func TestJoinMembershipExclusive(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	chA, chB := tr.Channels[0].ID, tr.Channels[1].ID
	join := func(ch trace.ChannelID) {
		t.Helper()
		resp, err := rpc(tk.Addr(), &Message{
			Type: MsgJoin, From: 7, Addr: "127.0.0.1:9", Channel: int(ch), TTL: 1,
		}, 2*time.Second)
		if err != nil || resp.Type != MsgJoinOK {
			t.Fatalf("join %d: %v %+v", ch, err, resp)
		}
	}
	join(chA)
	if got := tk.channels.Live(int64(chA)); got[7] == "" {
		t.Fatalf("member missing after join: %v", got)
	}
	join(chB)
	if got := tk.channels.Live(int64(chA)); got != nil {
		t.Fatalf("stale membership under previous home channel %d: %v", chA, got)
	}
	if got := tk.channels.Live(int64(chB)); got[7] == "" {
		t.Fatalf("member missing under new home channel %d: %v", chB, got)
	}
}

// TestTrackerGossipConvergesOverTCP runs two live tracker replicas wired
// by StartGossip and checks anti-entropy over real sockets: state written
// to one replica appears on the other; a downed replica diverges and
// re-converges after recovery.
func TestTrackerGossipConvergesOverTCP(t *testing.T) {
	tr := emuTrace(t)
	ta := startTracker(t, tr, fastConditions())
	tb := startTracker(t, tr, fastConditions())
	addrs := []string{ta.Addr(), tb.Addr()}
	ta.StartGossip(11, [][]string{addrs}, 0, 0, 2*time.Millisecond, time.Second)
	tb.StartGossip(11, [][]string{addrs}, 0, 1, 2*time.Millisecond, time.Second)

	ch := tr.Channels[0].ID
	join := func(id int) {
		t.Helper()
		resp, err := rpc(ta.Addr(), &Message{
			Type: MsgJoin, From: id, Addr: "127.0.0.1:9", Channel: int(ch), TTL: 1,
		}, 2*time.Second)
		if err != nil || resp.Type != MsgJoinOK {
			t.Fatalf("join: %v %+v", err, resp)
		}
	}
	waitLive := func(tk *Tracker, id int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if m := tk.channels.Live(int64(ch)); m[id] != "" {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("replica never learned member %d: %v", id, tk.channels.Live(int64(ch)))
	}

	join(1)
	waitLive(tb, 1)

	// A dark replica drops sync requests, diverges, and must re-converge
	// once it recovers.
	tb.SetDown(true)
	join(2)
	time.Sleep(10 * time.Millisecond)
	if m := tb.channels.Live(int64(ch)); m[2] != "" {
		t.Fatal("downed replica accepted gossip")
	}
	tb.SetDown(false)
	waitLive(tb, 2)
}

// TestShardedClusterShutdownReleasesEverything pins multi-tracker
// shutdown: a full 2x2-plane cluster run (gossip loops included) leaves
// no goroutine behind.
func TestShardedClusterShutdownReleasesEverything(t *testing.T) {
	tr := emuTrace(t)
	before := runtime.NumGoroutine()
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.Peers = 8
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.ControlPlane = &ControlPlaneConfig{Shards: 2, Replicas: 2, RingSeed: 1, GossipInterval: 2 * time.Millisecond}
	if _, err := RunCluster(cfg, tr); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// TestShardedReplicaKillNoFailedRequests is the redesign's headline: with
// 2 shards x 2 replicas, killing one tracker replica mid-run costs zero
// requests — peers fail over to the shard's surviving replica.
func TestShardedReplicaKillNoFailedRequests(t *testing.T) {
	tr := emuTrace(t)
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.ControlPlane = &ControlPlaneConfig{Shards: 2, Replicas: 2, RingSeed: 1, GossipInterval: 2 * time.Millisecond}
	cfg.Faults = faults.ReplicaOutagePlan(cfg.Seed, 30*time.Millisecond, 1, 1)
	cfg.RPCTimeout = 100 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.RetryBackoff = 5 * time.Millisecond
	res, err := RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRequests != 0 {
		t.Fatalf("lost %d requests with a replicated shard down; want 0", res.FailedRequests)
	}
	if res.CacheHits+res.PeerHits+res.ServerHits == 0 {
		t.Fatal("run served nothing")
	}
}
