package emu

import (
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/ctrl"
	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
)

// ControlPlaneConfig shapes the sharded, replicated tracker plane:
// Shards tracker shards, each holding the channels the rendezvous ring
// assigns it, replicated Replicas ways with anti-entropy gossip between
// the replicas of a shard. {1, 1} is the legacy single tracker.
type ControlPlaneConfig struct {
	// Shards is the number of tracker shards (>= 1). Channels map to
	// shards by rendezvous hashing; every tracker-path RPC routes to the
	// shard owning the video's channel.
	Shards int
	// Replicas is the number of replicas per shard (>= 1). Peers fail
	// over between a shard's replicas; replicas reconcile membership by
	// gossip.
	Replicas int
	// RingSeed seeds the channel -> shard rendezvous hash and the gossip
	// partner rotation.
	RingSeed int64
	// GossipInterval is the anti-entropy period per replica (0 with
	// Replicas > 1 selects the default; irrelevant for Replicas = 1).
	GossipInterval time.Duration
	// GossipTimeout bounds one sync exchange (0 selects 1s).
	GossipTimeout time.Duration
	// SuspicionRounds is how many of a replica's own gossip rounds every
	// beat of a shard must stay frozen before the shard is declared dead
	// and its keys re-rendezvous onto survivors (0 selects the tracker
	// default). Counted in rounds, not wall-clock, so detection latency
	// is deterministic in the gossip schedule. Only meaningful on planes
	// with >= 2 shards.
	SuspicionRounds int
}

// DefaultControlPlaneConfig returns the 2x2 plane the sharded-outage
// figure runs: two shards, two replicas each, gossiping every 20ms so a
// recovered replica converges within a couple of workload beats.
func DefaultControlPlaneConfig() ControlPlaneConfig {
	return ControlPlaneConfig{
		Shards:         2,
		Replicas:       2,
		RingSeed:       1,
		GossipInterval: 20 * time.Millisecond,
		GossipTimeout:  time.Second,
	}
}

// Validate reports the first problem with the configuration.
func (c ControlPlaneConfig) Validate() error {
	switch {
	case c.Shards < 1 || c.Replicas < 1:
		return fmt.Errorf("%w: control plane needs >= 1 shard and >= 1 replica, got %dx%d",
			dist.ErrBadParameter, c.Shards, c.Replicas)
	case c.Replicas > 256:
		return fmt.Errorf("%w: %d replicas exceed the 8-bit version stamp", dist.ErrBadParameter, c.Replicas)
	case c.Shards > 64:
		return fmt.Errorf("%w: %d shards exceed the 64-bit dead-shard mask", dist.ErrBadParameter, c.Shards)
	case c.SuspicionRounds < 0:
		return fmt.Errorf("%w: negative suspicion rounds", dist.ErrBadParameter)
	case c.GossipInterval < 0 || c.GossipTimeout < 0:
		return fmt.Errorf("%w: negative gossip timing", dist.ErrBadParameter)
	}
	return nil
}

// ControlPlane is the tracker plane behind a cluster: the directory every
// peer routes by (which shard owns a channel, which replica endpoints
// serve a shard), and — when built by StartControlPlane — the in-process
// tracker replicas themselves, addressable for fault injection as
// plane.Shard(i).SetDown(...).
//
// Two constructors, one type: StartControlPlane launches the trackers
// in-process (RunClusterCtx, figures, tests); NewControlPlaneClient holds
// only the directory, for peers connecting to tracker processes started
// elsewhere (cmd/socialtube-node). Server-side methods are no-ops on a
// client-only plane.
type ControlPlane struct {
	cfg ControlPlaneConfig
	dir *ctrl.Directory
	// trackers[shard][replica]; nil on a client-only plane.
	trackers [][]*Tracker
}

// NewControlPlaneClient builds a routing-only plane over already-running
// tracker endpoints: replicas[shard][replica] lists their addresses.
// ringSeed must match the seed the tracker processes were sharded with.
func NewControlPlaneClient(ringSeed int64, replicas [][]string) (*ControlPlane, error) {
	dir, err := ctrl.NewDirectory(ringSeed, replicas)
	if err != nil {
		return nil, err
	}
	cfg := ControlPlaneConfig{Shards: len(replicas), Replicas: 1, RingSeed: ringSeed}
	return &ControlPlane{cfg: cfg, dir: dir}, nil
}

// SingleTracker wraps one tracker address as a 1x1 control plane — the
// documented shim keeping the legacy NewPeer(cfg, tr, trackerAddr, cond)
// path alive. Routing through it is bit-identical to dialing the address
// directly: one shard owns every channel and the single endpoint never
// enters the failover walk.
func SingleTracker(addr string) *ControlPlane {
	cp, err := NewControlPlaneClient(0, [][]string{{addr}})
	if err != nil {
		// Only possible for an empty address; keep the legacy constructor
		// signature (no error) and let the first RPC surface the problem.
		cp = &ControlPlane{cfg: ControlPlaneConfig{Shards: 1, Replicas: 1}}
		cp.dir, _ = ctrl.NewDirectory(0, [][]string{{"invalid:0"}})
	}
	return cp
}

// StartControlPlane launches Shards x Replicas trackers over the trace
// and wires each shard's replicas together with gossip. The tracker
// template tc supplies every tracker's parameters; replica trackers get
// deterministic per-replica seed offsets (shard 0 replica 0 keeps tc.Seed
// exactly, so a 1x1 plane is byte-identical to the legacy single
// tracker). The caller owns Stop.
func StartControlPlane(cfg ControlPlaneConfig, tc TrackerConfig, tr *trace.Trace, cond *Conditions) (*ControlPlane, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Multi-replica planes need gossip for convergence; multi-shard
	// planes need it for liveness (the cross-shard heartbeat leg).
	if (cfg.Replicas > 1 || cfg.Shards > 1) && cfg.GossipInterval == 0 {
		cfg.GossipInterval = DefaultControlPlaneConfig().GossipInterval
	}
	trackers := make([][]*Tracker, cfg.Shards)
	ok := false
	defer func() {
		if !ok {
			for _, reps := range trackers {
				for _, tk := range reps {
					if tk != nil {
						tk.Stop()
					}
				}
			}
		}
	}()
	addrs := make([][]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		trackers[s] = make([]*Tracker, cfg.Replicas)
		addrs[s] = make([]string, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			rtc := tc
			// Distinct recommendation streams per tracker, anchored so a
			// 1x1 plane keeps the template seed untouched.
			rtc.Seed = tc.Seed + int64(s*cfg.Replicas+r)*104_729
			tk, err := NewTracker(rtc, tr, cond)
			if err != nil {
				return nil, fmt.Errorf("control plane shard %d replica %d: %w", s, r, err)
			}
			if err := tk.Start(); err != nil {
				return nil, fmt.Errorf("control plane shard %d replica %d: %w", s, r, err)
			}
			trackers[s][r] = tk
			addrs[s][r] = tk.Addr()
		}
	}
	for s := 0; s < cfg.Shards; s++ {
		for r := 0; r < cfg.Replicas; r++ {
			trackers[s][r].suspicionRounds = cfg.SuspicionRounds
			trackers[s][r].StartGossip(cfg.RingSeed, addrs, s, r,
				cfg.GossipInterval, cfg.GossipTimeout)
		}
	}
	dir, err := ctrl.NewDirectory(cfg.RingSeed, addrs)
	if err != nil {
		return nil, err
	}
	ok = true
	return &ControlPlane{cfg: cfg, dir: dir, trackers: trackers}, nil
}

// NumShards returns the number of shards.
func (cp *ControlPlane) NumShards() int { return cp.dir.NumShards() }

// Owner returns the shard index owning a channel key.
func (cp *ControlPlane) Owner(key int64) int { return cp.dir.Owner(key) }

// OwnerExcluding returns the shard owning key with the dead-bitmask
// shards removed from the ring — the takeover owner peers route to after
// a whole-shard death.
func (cp *ControlPlane) OwnerExcluding(key int64, dead uint64) int {
	return cp.dir.OwnerExcluding(key, dead)
}

// Epoch returns the highest ring epoch any replica of the plane has
// reached (0 = no shard ever changed status). No-op zero on a
// client-only plane.
func (cp *ControlPlane) Epoch() uint64 {
	var e uint64
	for _, reps := range cp.trackers {
		for _, tk := range reps {
			if v := tk.Epoch(); v > e {
				e = v
			}
		}
	}
	return e
}

// TakeoverDeclaredAt returns the earliest wall time (UnixNano) at which
// any replica declared a shard dead, 0 if none ever did — the takeover
// figure's detection timestamp.
func (cp *ControlPlane) TakeoverDeclaredAt() int64 {
	var at int64
	for _, reps := range cp.trackers {
		for _, tk := range reps {
			if v := tk.TakeoverDeclaredAt(); v != 0 && (at == 0 || v < at) {
				at = v
			}
		}
	}
	return at
}

// Replicas returns a shard's endpoints in failover order (shared slice —
// do not mutate).
func (cp *ControlPlane) Replicas(shard int) []string { return cp.dir.Replicas(shard) }

// Endpoints returns the total endpoint count across all shards.
func (cp *ControlPlane) Endpoints() int { return cp.dir.Endpoints() }

// EndpointIndex returns the stable flat index of (shard, replica) — the
// circuit-breaker id peers key endpoint health by.
func (cp *ControlPlane) EndpointIndex(shard, replica int) int {
	return cp.dir.EndpointIndex(shard, replica)
}

// All returns every endpoint address, shard-major (plane-wide broadcasts:
// register, leave).
func (cp *ControlPlane) All() []string { return cp.dir.All() }

// ShardHandle addresses one shard's replicas for fault injection.
type ShardHandle struct {
	trackers []*Tracker
}

// Shard returns the addressable handle for shard i. On a client-only
// plane (or out-of-range i) the handle is empty and every method is a
// no-op, so fault drivers can target shards unconditionally.
func (cp *ControlPlane) Shard(i int) ShardHandle {
	if cp.trackers == nil || i < 0 || i >= len(cp.trackers) {
		return ShardHandle{}
	}
	return ShardHandle{trackers: cp.trackers[i]}
}

// SetDown starts (true) or ends (false) an outage on every replica of
// the shard.
func (s ShardHandle) SetDown(v bool) {
	for _, tk := range s.trackers {
		tk.SetDown(v)
	}
}

// SetCapacityFactor throttles every replica of the shard.
func (s ShardHandle) SetCapacityFactor(f float64) {
	for _, tk := range s.trackers {
		tk.SetCapacityFactor(f)
	}
}

// Replicas returns the shard's replica count (0 for an empty handle).
func (s ShardHandle) Replicas() int { return len(s.trackers) }

// Replica returns one replica's tracker (nil when out of range), for
// single-replica fault targeting: plane.Shard(i).Replica(j).SetDown(true).
func (s ShardHandle) Replica(j int) *Tracker {
	if j < 0 || j >= len(s.trackers) {
		return nil
	}
	return s.trackers[j]
}

// SetDown starts or ends an outage on the whole plane — the legacy
// tracker-dark fault. No-op on a client-only plane.
func (cp *ControlPlane) SetDown(v bool) {
	for _, reps := range cp.trackers {
		for _, tk := range reps {
			tk.SetDown(v)
		}
	}
}

// SetCapacityFactor throttles the whole plane. No-op on a client-only
// plane.
func (cp *ControlPlane) SetCapacityFactor(f float64) {
	for _, reps := range cp.trackers {
		for _, tk := range reps {
			tk.SetCapacityFactor(f)
		}
	}
}

// Stop shuts every tracker down. No-op on a client-only plane.
func (cp *ControlPlane) Stop() {
	for _, reps := range cp.trackers {
		for _, tk := range reps {
			tk.Stop()
		}
	}
}

// Trackers returns the plane's trackers shard-major (nil on a client-only
// plane).
func (cp *ControlPlane) Trackers() []*Tracker {
	if cp.trackers == nil {
		return nil
	}
	out := make([]*Tracker, 0, cp.dir.Endpoints())
	for _, reps := range cp.trackers {
		out = append(out, reps...)
	}
	return out
}

// First returns shard 0 replica 0 (the legacy "the tracker"; nil on a
// client-only plane). Live metrics snapshots key on it.
func (cp *ControlPlane) First() *Tracker {
	if cp.trackers == nil {
		return nil
	}
	return cp.trackers[0][0]
}

// ServedBytes sums bytes served across the plane.
func (cp *ControlPlane) ServedBytes() int64 {
	var n int64
	for _, reps := range cp.trackers {
		for _, tk := range reps {
			n += tk.ServedBytes()
		}
	}
	return n
}

// Counters merges every tracker's counter snapshot.
func (cp *ControlPlane) Counters() obs.Counters {
	var ctr obs.Counters
	first := true
	for _, reps := range cp.trackers {
		for _, tk := range reps {
			if first {
				ctr = tk.Counters()
				first = false
				continue
			}
			ctr.Merge(tk.Counters())
		}
	}
	return ctr
}
