package emu

import (
	"sync/atomic"
	"time"

	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// Record is the outcome of one emulated video request.
type Record struct {
	// Source says who served the video.
	Source vod.Source
	// Startup is the measured wall-clock delay before playback could
	// start (first chunk available).
	Startup time.Duration
	// Messages counts query messages the request consumed.
	Messages int
	// PrefixCached reports a prefetch hit.
	PrefixCached bool
	// Failed reports that neither peers nor the server delivered the
	// video (a tracker outage outlasted the retry budget). Failed
	// requests still carry SourceServer so hit counts sum to the
	// request total.
	Failed bool
	// Links is the peer's link count right after the request.
	Links int
	// HandoffAttempts / Handoffs count mid-stream provider switches
	// tried and completed; HandoffWait is the stall between losing a
	// provider and the first chunk resumed from its replacement.
	HandoffAttempts int
	Handoffs        int
	HandoffWait     time.Duration
	// ServerRescued reports that every candidate ran dry mid-stream and
	// the server completed only the remainder (a rescue, not a restart).
	ServerRescued bool
}

// RequestVideo locates and downloads the video, returning delivery metrics.
// It blocks until the first chunk is available (the startup delay) and
// fetches remaining chunks before returning.
func (p *Peer) RequestVideo(v trace.VideoID) Record {
	video := p.tr.Video(v)
	if video == nil {
		return Record{Source: vod.SourceServer}
	}
	start := time.Now()
	p.mu.Lock()
	full := p.cache.HasFull(v)
	prefix := p.cache.HasPrefix(v)
	p.mu.Unlock()
	rec := Record{PrefixCached: prefix}
	if full {
		rec.Source = vod.SourceCache
		rec.Links = p.Links()
		return rec
	}

	switch p.cfg.Mode {
	case ModeSocialTube:
		p.socialTubeRequest(v, video, &rec)
	case ModeNetTube:
		p.netTubeRequest(v, &rec)
	default:
		p.paVoDRequest(v, &rec)
	}
	if rec.PrefixCached {
		rec.Startup = 0
	} else {
		rec.Startup = time.Since(start)
	}
	rec.Links = p.Links()
	return rec
}

// socialTubeRequest runs Algorithm 1 over real sockets: join/attach to the
// channel overlay, flood inner-links, then inter-neighbours, then the
// server.
func (p *Peer) socialTubeRequest(v trace.VideoID, video *trace.Video, rec *Record) {
	recommended := p.attachChannel(video.Channel)
	// Phase 1: flood the channel overlay.
	p.mu.Lock()
	innerNbs := make([]PeerInfo, 0, len(p.inner))
	for _, info := range p.inner {
		innerNbs = append(innerNbs, info)
	}
	interNbs := make([]PeerInfo, 0, len(p.inter))
	for _, info := range p.inter {
		interNbs = append(interNbs, info)
	}
	p.mu.Unlock()
	sortInfos(innerNbs)
	sortInfos(interNbs)

	// requery refills the candidate list after a mid-stream exhaustion:
	// a fresh flood only returns providers that are alive right now.
	requery := func() []PeerInfo {
		if cands, ok := p.flood(v, innerNbs, rec); ok {
			return cands
		}
		cands, _ := p.flood(v, interNbs, rec)
		return cands
	}
	if cands, ok := p.flood(v, innerNbs, rec); ok {
		if !p.fetchFromCandidates(v, cands, requery, rec) {
			// Every candidate vanished before the first chunk; the
			// server serves the whole request.
			p.fetchFromServer(v, rec)
		}
		p.connectTo(cands[0], "inner", int(video.Channel), 0)
		return
	}
	// Phase 2: each inter-neighbour floods its own channel overlay.
	if cands, ok := p.flood(v, interNbs, rec); ok {
		if !p.fetchFromCandidates(v, cands, requery, rec) {
			p.fetchFromServer(v, rec)
		}
		p.connectTo(cands[0], "inter", 0, 0)
		return
	}
	// Phase 2.5: the server recommended a member of the video's own
	// channel overlay ("including a node with the video", §IV-A); query
	// it even when the inter-link budget had no room to keep it.
	queried := make(map[int]bool, len(innerNbs)+len(interNbs))
	for _, nb := range innerNbs {
		queried[nb.ID] = true
	}
	for _, nb := range interNbs {
		queried[nb.ID] = true
	}
	var entries []PeerInfo
	for _, info := range recommended {
		if trace.ChannelID(info.Channel) == video.Channel && !queried[info.ID] && info.ID != p.cfg.ID {
			entries = append(entries, info)
		}
	}
	if cands, ok := p.flood(v, entries, rec); ok {
		if !p.fetchFromCandidates(v, cands, requery, rec) {
			p.fetchFromServer(v, rec)
		}
		p.connectTo(cands[0], "inter", 0, 0)
		return
	}
	// Phase 3: the server.
	p.fetchFromServer(v, rec)
}

// netTubeRequest queries neighbours across all joined per-video overlays;
// fresh nodes ask the server to direct them at overlay providers; misses
// are served by the server. Either way the node joins the video's overlay.
func (p *Peer) netTubeRequest(v trace.VideoID, rec *Record) {
	p.mu.Lock()
	seen := make(map[int]bool)
	var nbs []PeerInfo
	for _, m := range p.perVideo {
		for id, info := range m {
			if !seen[id] {
				seen[id] = true
				nbs = append(nbs, info)
			}
		}
	}
	p.mu.Unlock()
	sortInfos(nbs)

	// requery asks the tracker for the overlay's current members — the
	// only failover source NetTube has beyond its own links.
	requery := func() []PeerInfo {
		rec.Messages++
		return p.joinVideoOverlay(v, nil)
	}
	if len(nbs) > 0 {
		if cands, ok := p.flood(v, nbs, rec); ok {
			if !p.fetchFromCandidates(v, cands, requery, rec) {
				p.fetchFromServer(v, rec)
			}
			p.joinVideoOverlay(v, &cands[0])
			return
		}
		p.fetchFromServer(v, rec)
		p.joinVideoOverlay(v, nil)
		return
	}
	// First request: the server directs the node into the overlay.
	peers := p.joinVideoOverlay(v, nil)
	rec.Messages++
	if len(peers) > 0 && p.fetchFromCandidates(v, peers, requery, rec) {
		return
	}
	p.fetchFromServer(v, rec)
}

// paVoDRequest registers as a watcher and downloads from a concurrent
// watcher when one exists.
func (p *Peer) paVoDRequest(v trace.VideoID, rec *Record) {
	p.mu.Lock()
	p.watching = v
	p.mu.Unlock()
	// watchStart doubles as the requery: re-registering returns the
	// tracker's current concurrent watchers.
	watchStart := func() []PeerInfo {
		rec.Messages++
		resp, err := p.trackerRPC(p.chanKey(v), &Message{
			Type: MsgWatchStart, From: p.cfg.ID, Addr: p.Addr(), Video: int(v),
		})
		if err != nil || resp.Type != MsgOK {
			return nil
		}
		return responseProviders(resp)
	}
	if cands := watchStart(); len(cands) > 0 && p.fetchFromCandidates(v, cands, watchStart, rec) {
		return
	}
	p.fetchFromServer(v, rec)
}

// flood sends the query to each neighbour in turn; neighbours forward
// with the configured TTL. Responses are merged into one ranked
// candidate list (closest-first, deduped), capped at maxQueryProviders.
// Neighbours behind an open breaker are skipped without spending a
// message.
func (p *Peer) flood(v trace.VideoID, nbs []PeerInfo, rec *Record) ([]PeerInfo, bool) {
	var cands []PeerInfo
	for _, nb := range nbs {
		if !p.allowPeer(nb.ID) {
			continue
		}
		rec.Messages++
		resp, err := rpc(nb.Addr, &Message{
			Type: MsgQuery, From: p.cfg.ID,
			Video: int(v), TTL: p.cfg.TTL, Visited: []int{p.cfg.ID},
		}, p.cfg.RPCTimeout)
		if err != nil {
			p.peerFail(nb.ID)
			continue
		}
		p.peerOK(nb.ID)
		rec.Messages += resp.Messages
		if resp.Type != MsgOK {
			continue
		}
		cands = appendProviders(cands, responseProviders(resp), maxQueryProviders)
		if len(cands) >= maxQueryProviders {
			break
		}
	}
	return cands, len(cands) > 0
}

// fetchFromCandidates downloads the video chunk-by-chunk, failing over
// along the ranked candidate list: a provider lost mid-stream is replaced
// by the next candidate and the download resumes from the last received
// chunk. When the list runs dry mid-stream, requery (when non-nil, called
// at most once) refills it with providers that are alive right now; if
// that also fails the server completes only the remainder — a rescue, not
// a restart. It reports false only when no candidate delivered chunk 0;
// the caller then falls back to a full server fetch.
func (p *Peer) fetchFromCandidates(v trace.VideoID, cands []PeerInfo, requery func() []PeerInfo, rec *Record) bool {
	chunk := 0
	requeried := false
	tried := make(map[int]bool)
	var waitStart time.Time // running stall of the current handoff
	for i := 0; i < len(cands); i++ {
		c := cands[i]
		if c.Addr == "" || c.ID == p.cfg.ID || tried[c.ID] {
			continue
		}
		tried[c.ID] = true
		if !p.allowPeer(c.ID) {
			continue
		}
		if chunk > 0 {
			// Mid-stream: switching providers is a handoff attempt.
			atomic.AddUint64(&p.ctr.HandoffAttempts, 1)
			rec.HandoffAttempts++
			if waitStart.IsZero() {
				waitStart = time.Now()
			}
		}
		delivered := false
		for chunk < vod.DefaultChunksPerVideo {
			resp, err := rpc(c.Addr, &Message{
				Type: MsgChunkReq, From: p.cfg.ID, Video: int(v), Chunk: chunk,
			}, p.cfg.RPCTimeout)
			if err != nil {
				p.peerFail(c.ID)
				break
			}
			p.peerOK(c.ID)
			if resp.Type != MsgOK {
				break // healthy peer without the chunk: next candidate
			}
			if !delivered && chunk > 0 {
				// First resumed chunk: the handoff completed.
				atomic.AddUint64(&p.ctr.Handoffs, 1)
				rec.Handoffs++
				rec.HandoffWait += time.Since(waitStart)
				waitStart = time.Time{}
			}
			delivered = true
			p.noteChunk(v, chunk, c.ID)
			chunk++
		}
		if chunk >= vod.DefaultChunksPerVideo {
			rec.Source = vod.SourcePeer
			return true
		}
		if i == len(cands)-1 && chunk > 0 && !requeried && requery != nil {
			requeried = true
			cands = appendProviders(cands, requery(), len(cands)+maxQueryProviders)
		}
	}
	if chunk == 0 {
		return false // nothing delivered: the caller owns the fallback
	}
	// Candidates exhausted mid-stream: the server rescues the remainder.
	atomic.AddUint64(&p.ctr.HandoffServerRescues, 1)
	rec.ServerRescued = true
	p.fetchFromServerFrom(v, chunk, rec)
	return true
}

// noteChunk reports a delivered chunk to the onChunk hook when one is
// installed (figure/test harnesses); provider is -1 for the server.
func (p *Peer) noteChunk(v trace.VideoID, chunk, provider int) {
	p.mu.Lock()
	fn := p.onChunk
	p.mu.Unlock()
	if fn != nil {
		fn(v, chunk, provider)
	}
}

// fetchFromServer downloads all chunks from the tracker, retrying each
// within the peer's retry budget.
func (p *Peer) fetchFromServer(v trace.VideoID, rec *Record) {
	p.fetchFromServerFrom(v, 0, rec)
}

// fetchFromServerFrom downloads chunks [from, end) from the tracker. When
// even the first requested chunk never arrives on a full fetch (the
// tracker outage outlasted every retry) the request is marked Failed and
// the remaining chunks are skipped — the player gave up. A mid-stream
// rescue (from > 0) is never Failed: playback already started from peers.
func (p *Peer) fetchFromServerFrom(v trace.VideoID, from int, rec *Record) {
	served := false
	for c := from; c < vod.DefaultChunksPerVideo; c++ {
		resp, err := p.trackerRPC(p.chanKey(v), &Message{
			Type: MsgServe, From: p.cfg.ID, Video: int(v), Chunk: c,
		})
		if err != nil || resp.Type != MsgOK {
			if c == from {
				break
			}
			continue
		}
		served = true
		p.noteChunk(v, c, -1)
	}
	if rec.Source != vod.SourcePeer {
		rec.Source = vod.SourceServer
		rec.Failed = !served && from == 0
	}
}

// attachChannel joins (or switches to) the channel's overlay when the peer
// subscribes to it, refreshes inter-links either way, and returns the
// server's peer recommendations (used as channel-overlay entry points).
func (p *Peer) attachChannel(ch trace.ChannelID) []PeerInfo {
	p.mu.Lock()
	subscribed := p.subs[ch]
	home := p.home
	innerCount := len(p.inner)
	interCount := len(p.inter)
	p.mu.Unlock()

	p.mu.Lock()
	joinedEpoch := p.joinedEpoch
	p.mu.Unlock()
	curEpoch, _ := p.planeView()

	// An epoch change means the live shard set moved (a takeover or a
	// revival): the home channel's membership row may live on a shard
	// that never saw it, so re-join to repopulate the adopting shard's
	// table — the server-assisted re-registration leg of the takeover.
	epochMoved := subscribed && home == ch && joinedEpoch != curEpoch
	needJoin := subscribed && (home != ch || innerCount == 0 || epochMoved)
	needInter := interCount < p.cfg.InterLinks
	needEntry := home != ch // a foreign channel needs an entry point
	if !needJoin && !needInter && !needEntry {
		return nil
	}
	member := 0
	if subscribed {
		member = 1 // ride the membership flag in TTL
	}
	resp, err := p.trackerRPC(int64(ch), &Message{
		Type: MsgJoin, From: p.cfg.ID, Addr: p.Addr(), Channel: int(ch), TTL: member,
	})
	if err != nil || resp.Type != MsgJoinOK {
		return nil
	}
	if needJoin {
		if epochMoved {
			atomic.AddUint64(&p.ctr.TakeoverRejoins, 1)
		}
		p.mu.Lock()
		if p.home != ch {
			p.home = ch
			p.inner = make(map[int]PeerInfo)
			// Inter-links persist only within the same category; a
			// category switch rebuilds them lazily below.
		}
		p.joinedEpoch = curEpoch
		p.mu.Unlock()
	}
	for _, info := range resp.Peers {
		if trace.ChannelID(info.Channel) == ch && subscribed {
			p.connectTo(info, "inner", int(ch), 0)
		} else {
			p.connectTo(info, "inter", info.Channel, 0)
		}
	}
	return resp.Peers
}

// connectTo performs the symmetric link handshake: ask the target to accept
// the link, and record it locally only when accepted.
func (p *Peer) connectTo(info PeerInfo, link string, channel, video int) bool {
	if info.ID == p.cfg.ID || info.Addr == "" {
		return false
	}
	p.mu.Lock()
	switch link {
	case "inner":
		if _, dup := p.inner[info.ID]; dup || len(p.inner) >= p.cfg.InnerLinks {
			p.mu.Unlock()
			return false
		}
	case "inter":
		if _, dup := p.inter[info.ID]; dup || len(p.inter) >= p.cfg.InterLinks {
			p.mu.Unlock()
			return false
		}
	case "video":
		m := p.perVideo[trace.VideoID(video)]
		if m != nil {
			if _, dup := m[info.ID]; dup || len(m) >= p.cfg.LinksPerOverlay {
				p.mu.Unlock()
				return false
			}
		}
	}
	p.mu.Unlock()

	resp, err := rpc(info.Addr, &Message{
		Type: MsgConnect, From: p.cfg.ID, Addr: p.Addr(),
		Link: link, Channel: channel, Video: video,
	}, p.cfg.RPCTimeout)
	if err != nil || resp.Type != MsgOK || !resp.Accepted {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch link {
	case "inner":
		p.inner[info.ID] = info
	case "inter":
		p.inter[info.ID] = info
	case "video":
		v := trace.VideoID(video)
		m := p.perVideo[v]
		if m == nil {
			m = make(map[int]PeerInfo)
			p.perVideo[v] = m
		}
		m[info.ID] = info
	}
	return true
}

// joinVideoOverlay registers in the tracker's per-video overlay and links
// to up to LinksPerOverlay members (NetTube). It returns the members the
// tracker recommended.
func (p *Peer) joinVideoOverlay(v trace.VideoID, provider *PeerInfo) []PeerInfo {
	resp, err := p.trackerRPC(p.chanKey(v), &Message{
		Type: MsgJoinVideo, From: p.cfg.ID, Addr: p.Addr(), Video: int(v),
	})
	p.mu.Lock()
	if p.perVideo[v] == nil {
		p.perVideo[v] = make(map[int]PeerInfo)
	}
	p.mu.Unlock()
	if provider != nil {
		p.connectTo(*provider, "video", 0, int(v))
	}
	if err != nil || resp.Type != MsgJoinOK {
		return nil
	}
	for _, info := range resp.Peers {
		p.connectTo(info, "video", 0, int(v))
	}
	return resp.Peers
}

// FinishVideo records a completed watch: cache the video, advertise it
// (NetTube), release the watcher slot (PA-VoD) and prefetch.
func (p *Peer) FinishVideo(v trace.VideoID) {
	video := p.tr.Video(v)
	if video == nil {
		return
	}
	switch p.cfg.Mode {
	case ModePAVoD:
		p.mu.Lock()
		if p.watching == v {
			p.watching = -1
		}
		p.mu.Unlock()
		// Retried: a dropped watch_done leaves the tracker handing out
		// this peer as a provider long after it stopped serving.
		p.trackerRPC(p.chanKey(v), &Message{Type: MsgWatchDone, From: p.cfg.ID, Video: int(v)})
		return // no cache, no prefetch
	case ModeNetTube:
		p.mu.Lock()
		p.cache.AddFull(v)
		p.mu.Unlock()
		// Retried: losing the advertisement silently shrinks the overlay
		// the tracker can direct later requesters into.
		p.trackerRPC(p.chanKey(v), &Message{Type: MsgHave, From: p.cfg.ID, Addr: p.Addr(), Video: int(v)})
		p.netTubePrefetch(v)
	case ModeSocialTube:
		p.mu.Lock()
		p.cache.AddFull(v)
		p.mu.Unlock()
		p.socialTubePrefetch(video.Channel, v)
	}
}

// socialTubePrefetch pulls the channel's popularity list from the server
// and caches the first chunks of the top-M videos (§IV-B).
func (p *Peer) socialTubePrefetch(ch trace.ChannelID, watched trace.VideoID) {
	if p.cfg.PrefetchCount <= 0 {
		return
	}
	resp, err := p.trackerRPC(int64(ch), &Message{
		Type: MsgTopList, From: p.cfg.ID, Channel: int(ch), TTL: p.cfg.PrefetchCount + 1,
	})
	if err != nil || resp.Type != MsgOK {
		return
	}
	added := 0
	for _, raw := range resp.Videos {
		if added >= p.cfg.PrefetchCount {
			break
		}
		v := trace.VideoID(raw)
		if v == watched {
			continue
		}
		p.mu.Lock()
		have := p.cache.HasPrefix(v)
		if !have {
			p.cache.AddPrefix(v)
		}
		p.mu.Unlock()
		added++
	}
}

// netTubePrefetch prefetches the first chunks of videos sampled at random
// from neighbours' caches — NetTube's related-video prefetching ("a node
// randomly chooses the videos its neighbors have watched to prefetch").
func (p *Peer) netTubePrefetch(watched trace.VideoID) {
	if p.cfg.PrefetchCount <= 0 {
		return
	}
	p.mu.Lock()
	var nbs []PeerInfo
	seen := make(map[int]bool)
	for _, m := range p.perVideo {
		for id, info := range m {
			if !seen[id] {
				seen[id] = true
				nbs = append(nbs, info)
			}
		}
	}
	p.mu.Unlock()
	if len(nbs) == 0 {
		return
	}
	sortInfos(nbs) // the g.Intn pick below must see a stable order
	added := 0
	for attempts := 0; added < p.cfg.PrefetchCount && attempts < 2*len(nbs); attempts++ {
		p.mu.Lock()
		nb := nbs[p.g.Intn(len(nbs))]
		p.mu.Unlock()
		resp, err := rpc(nb.Addr, &Message{
			Type: MsgCacheSample, From: p.cfg.ID, TTL: p.cfg.PrefetchCount,
		}, p.cfg.RPCTimeout)
		if err != nil || resp.Type != MsgOK {
			continue
		}
		for _, raw := range resp.Videos {
			if added >= p.cfg.PrefetchCount {
				break
			}
			vid := trace.VideoID(raw)
			if vid == watched {
				continue
			}
			p.mu.Lock()
			have := p.cache.HasPrefix(vid)
			if !have {
				p.cache.AddPrefix(vid)
				added++
			}
			p.mu.Unlock()
		}
	}
}

// Probe checks every neighbour and drops dead links. It returns the number
// of probe messages sent.
func (p *Peer) Probe() int {
	type link struct {
		info  PeerInfo
		kind  string
		video trace.VideoID
	}
	p.mu.Lock()
	var links []link
	for _, info := range p.inner {
		links = append(links, link{info: info, kind: "inner"})
	}
	for _, info := range p.inter {
		links = append(links, link{info: info, kind: "inter"})
	}
	for v, m := range p.perVideo {
		for _, info := range m {
			links = append(links, link{info: info, kind: "video", video: v})
		}
	}
	p.mu.Unlock()
	msgs := 0
	for _, l := range links {
		msgs++
		_, err := rpc(l.info.Addr, &Message{Type: MsgProbe, From: p.cfg.ID}, p.cfg.RPCTimeout)
		if err == nil {
			continue
		}
		p.mu.Lock()
		switch l.kind {
		case "inner":
			delete(p.inner, l.info.ID)
		case "inter":
			delete(p.inter, l.info.ID)
		case "video":
			if m := p.perVideo[l.video]; m != nil {
				delete(m, l.info.ID)
			}
		}
		p.mu.Unlock()
	}
	return msgs
}

// LeaveOverlays gracefully departs: notify every neighbour (which drops its
// link immediately, §IV-A), deregister from the tracker and clear local
// link state. The cache survives for the next session, as in the paper.
func (p *Peer) LeaveOverlays() {
	p.mu.Lock()
	nbs := make(map[int]PeerInfo)
	for id, info := range p.inner {
		nbs[id] = info
	}
	for id, info := range p.inter {
		nbs[id] = info
	}
	for _, m := range p.perVideo {
		for id, info := range m {
			nbs[id] = info
		}
	}
	p.mu.Unlock()
	for _, info := range nbs {
		rpc(info.Addr, &Message{Type: MsgBye, From: p.cfg.ID}, p.cfg.RPCTimeout)
	}
	// Leave is plane-wide: every shard replica may hold membership rows
	// for this peer (gossip also carries the departure between replicas).
	// Unreachable replicas get the leave as a hinted handoff.
	p.broadcastPlane(&Message{Type: MsgLeave, From: p.cfg.ID}, false)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inner = make(map[int]PeerInfo)
	p.inter = make(map[int]PeerInfo)
	p.perVideo = make(map[trace.VideoID]map[int]PeerInfo)
	p.home = -1
}
