package emu

import (
	"time"

	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// Record is the outcome of one emulated video request.
type Record struct {
	// Source says who served the video.
	Source vod.Source
	// Startup is the measured wall-clock delay before playback could
	// start (first chunk available).
	Startup time.Duration
	// Messages counts query messages the request consumed.
	Messages int
	// PrefixCached reports a prefetch hit.
	PrefixCached bool
	// Failed reports that neither peers nor the server delivered the
	// video (a tracker outage outlasted the retry budget). Failed
	// requests still carry SourceServer so hit counts sum to the
	// request total.
	Failed bool
	// Links is the peer's link count right after the request.
	Links int
}

// RequestVideo locates and downloads the video, returning delivery metrics.
// It blocks until the first chunk is available (the startup delay) and
// fetches remaining chunks before returning.
func (p *Peer) RequestVideo(v trace.VideoID) Record {
	video := p.tr.Video(v)
	if video == nil {
		return Record{Source: vod.SourceServer}
	}
	start := time.Now()
	p.mu.Lock()
	full := p.cache.HasFull(v)
	prefix := p.cache.HasPrefix(v)
	p.mu.Unlock()
	rec := Record{PrefixCached: prefix}
	if full {
		rec.Source = vod.SourceCache
		rec.Links = p.Links()
		return rec
	}

	switch p.cfg.Mode {
	case ModeSocialTube:
		p.socialTubeRequest(v, video, &rec)
	case ModeNetTube:
		p.netTubeRequest(v, &rec)
	default:
		p.paVoDRequest(v, &rec)
	}
	if rec.PrefixCached {
		rec.Startup = 0
	} else {
		rec.Startup = time.Since(start)
	}
	rec.Links = p.Links()
	return rec
}

// socialTubeRequest runs Algorithm 1 over real sockets: join/attach to the
// channel overlay, flood inner-links, then inter-neighbours, then the
// server.
func (p *Peer) socialTubeRequest(v trace.VideoID, video *trace.Video, rec *Record) {
	recommended := p.attachChannel(video.Channel)
	// Phase 1: flood the channel overlay.
	p.mu.Lock()
	innerNbs := make([]PeerInfo, 0, len(p.inner))
	for _, info := range p.inner {
		innerNbs = append(innerNbs, info)
	}
	interNbs := make([]PeerInfo, 0, len(p.inter))
	for _, info := range p.inter {
		interNbs = append(interNbs, info)
	}
	p.mu.Unlock()

	if provider, ok := p.flood(v, innerNbs, rec); ok {
		if !p.fetchFromPeer(v, provider, rec) {
			// The provider vanished between query and fetch; the
			// server completes the request.
			p.fetchFromServer(v, rec)
		}
		p.connectTo(provider, "inner", int(video.Channel), 0)
		return
	}
	// Phase 2: each inter-neighbour floods its own channel overlay.
	if provider, ok := p.flood(v, interNbs, rec); ok {
		if !p.fetchFromPeer(v, provider, rec) {
			p.fetchFromServer(v, rec)
		}
		p.connectTo(provider, "inter", 0, 0)
		return
	}
	// Phase 2.5: the server recommended a member of the video's own
	// channel overlay ("including a node with the video", §IV-A); query
	// it even when the inter-link budget had no room to keep it.
	queried := make(map[int]bool, len(innerNbs)+len(interNbs))
	for _, nb := range innerNbs {
		queried[nb.ID] = true
	}
	for _, nb := range interNbs {
		queried[nb.ID] = true
	}
	var entries []PeerInfo
	for _, info := range recommended {
		if trace.ChannelID(info.Channel) == video.Channel && !queried[info.ID] && info.ID != p.cfg.ID {
			entries = append(entries, info)
		}
	}
	if provider, ok := p.flood(v, entries, rec); ok {
		if !p.fetchFromPeer(v, provider, rec) {
			p.fetchFromServer(v, rec)
		}
		p.connectTo(provider, "inter", 0, 0)
		return
	}
	// Phase 3: the server.
	p.fetchFromServer(v, rec)
}

// netTubeRequest queries neighbours across all joined per-video overlays;
// fresh nodes ask the server to direct them at overlay providers; misses
// are served by the server. Either way the node joins the video's overlay.
func (p *Peer) netTubeRequest(v trace.VideoID, rec *Record) {
	p.mu.Lock()
	seen := make(map[int]bool)
	var nbs []PeerInfo
	for _, m := range p.perVideo {
		for id, info := range m {
			if !seen[id] {
				seen[id] = true
				nbs = append(nbs, info)
			}
		}
	}
	p.mu.Unlock()

	if len(nbs) > 0 {
		if provider, ok := p.flood(v, nbs, rec); ok {
			if !p.fetchFromPeer(v, provider, rec) {
				p.fetchFromServer(v, rec)
			}
			p.joinVideoOverlay(v, &provider)
			return
		}
		p.fetchFromServer(v, rec)
		p.joinVideoOverlay(v, nil)
		return
	}
	// First request: the server directs the node into the overlay.
	peers := p.joinVideoOverlay(v, nil)
	rec.Messages++
	for _, info := range peers {
		if p.fetchFromPeer(v, info, rec) {
			return
		}
	}
	p.fetchFromServer(v, rec)
}

// paVoDRequest registers as a watcher and downloads from a concurrent
// watcher when one exists.
func (p *Peer) paVoDRequest(v trace.VideoID, rec *Record) {
	p.mu.Lock()
	p.watching = v
	p.mu.Unlock()
	rec.Messages++
	resp, err := p.rpcRetry(p.trackerAddr, &Message{
		Type: MsgWatchStart, From: p.cfg.ID, Addr: p.Addr(), Video: int(v),
	})
	if err == nil && resp.Type == MsgOK && resp.Provider >= 0 {
		info := PeerInfo{ID: resp.Provider, Addr: resp.ProviderAddr}
		if p.fetchFromPeer(v, info, rec) {
			return
		}
	}
	p.fetchFromServer(v, rec)
}

// flood sends the query to each neighbour in turn; neighbours forward with
// the configured TTL. It returns the first provider found.
func (p *Peer) flood(v trace.VideoID, nbs []PeerInfo, rec *Record) (PeerInfo, bool) {
	for _, nb := range nbs {
		rec.Messages++
		resp, err := rpc(nb.Addr, &Message{
			Type: MsgQuery, From: p.cfg.ID,
			Video: int(v), TTL: p.cfg.TTL, Visited: []int{p.cfg.ID},
		}, p.cfg.RPCTimeout)
		if err != nil {
			continue
		}
		rec.Messages += resp.Messages
		if resp.Type == MsgOK {
			return PeerInfo{ID: resp.Provider, Addr: resp.ProviderAddr}, true
		}
	}
	return PeerInfo{}, false
}

// fetchFromPeer downloads all chunks from the provider. It reports whether
// the first chunk arrived (on failure the caller falls back to the server).
func (p *Peer) fetchFromPeer(v trace.VideoID, provider PeerInfo, rec *Record) bool {
	for c := 0; c < vod.DefaultChunksPerVideo; c++ {
		resp, err := rpc(provider.Addr, &Message{
			Type: MsgChunkReq, From: p.cfg.ID, Video: int(v), Chunk: c,
		}, p.cfg.RPCTimeout)
		if err != nil || resp.Type != MsgOK {
			if c == 0 {
				return false
			}
			// Mid-stream failure: the server completes the video.
			p.fetchFromServer(v, rec)
			return true
		}
	}
	rec.Source = vod.SourcePeer
	return true
}

// fetchFromServer downloads all chunks from the tracker, retrying each
// within the peer's retry budget. When even the first chunk never arrives
// (the tracker outage outlasted every retry) the request is marked Failed
// and the remaining chunks are skipped — the player gave up.
func (p *Peer) fetchFromServer(v trace.VideoID, rec *Record) {
	served := false
	for c := 0; c < vod.DefaultChunksPerVideo; c++ {
		resp, err := p.rpcRetry(p.trackerAddr, &Message{
			Type: MsgServe, From: p.cfg.ID, Video: int(v), Chunk: c,
		})
		if err != nil || resp.Type != MsgOK {
			if c == 0 {
				break
			}
			continue
		}
		served = true
	}
	if rec.Source != vod.SourcePeer {
		rec.Source = vod.SourceServer
		rec.Failed = !served
	}
}

// attachChannel joins (or switches to) the channel's overlay when the peer
// subscribes to it, refreshes inter-links either way, and returns the
// server's peer recommendations (used as channel-overlay entry points).
func (p *Peer) attachChannel(ch trace.ChannelID) []PeerInfo {
	p.mu.Lock()
	subscribed := p.subs[ch]
	home := p.home
	innerCount := len(p.inner)
	interCount := len(p.inter)
	p.mu.Unlock()

	needJoin := subscribed && (home != ch || innerCount == 0)
	needInter := interCount < p.cfg.InterLinks
	needEntry := home != ch // a foreign channel needs an entry point
	if !needJoin && !needInter && !needEntry {
		return nil
	}
	member := 0
	if subscribed {
		member = 1 // ride the membership flag in TTL
	}
	resp, err := p.rpcRetry(p.trackerAddr, &Message{
		Type: MsgJoin, From: p.cfg.ID, Addr: p.Addr(), Channel: int(ch), TTL: member,
	})
	if err != nil || resp.Type != MsgJoinOK {
		return nil
	}
	if needJoin {
		p.mu.Lock()
		if p.home != ch {
			p.home = ch
			p.inner = make(map[int]PeerInfo)
			// Inter-links persist only within the same category; a
			// category switch rebuilds them lazily below.
		}
		p.mu.Unlock()
	}
	for _, info := range resp.Peers {
		if trace.ChannelID(info.Channel) == ch && subscribed {
			p.connectTo(info, "inner", int(ch), 0)
		} else {
			p.connectTo(info, "inter", info.Channel, 0)
		}
	}
	return resp.Peers
}

// connectTo performs the symmetric link handshake: ask the target to accept
// the link, and record it locally only when accepted.
func (p *Peer) connectTo(info PeerInfo, link string, channel, video int) bool {
	if info.ID == p.cfg.ID || info.Addr == "" {
		return false
	}
	p.mu.Lock()
	switch link {
	case "inner":
		if _, dup := p.inner[info.ID]; dup || len(p.inner) >= p.cfg.InnerLinks {
			p.mu.Unlock()
			return false
		}
	case "inter":
		if _, dup := p.inter[info.ID]; dup || len(p.inter) >= p.cfg.InterLinks {
			p.mu.Unlock()
			return false
		}
	case "video":
		m := p.perVideo[trace.VideoID(video)]
		if m != nil {
			if _, dup := m[info.ID]; dup || len(m) >= p.cfg.LinksPerOverlay {
				p.mu.Unlock()
				return false
			}
		}
	}
	p.mu.Unlock()

	resp, err := rpc(info.Addr, &Message{
		Type: MsgConnect, From: p.cfg.ID, Addr: p.Addr(),
		Link: link, Channel: channel, Video: video,
	}, p.cfg.RPCTimeout)
	if err != nil || resp.Type != MsgOK || !resp.Accepted {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch link {
	case "inner":
		p.inner[info.ID] = info
	case "inter":
		p.inter[info.ID] = info
	case "video":
		v := trace.VideoID(video)
		m := p.perVideo[v]
		if m == nil {
			m = make(map[int]PeerInfo)
			p.perVideo[v] = m
		}
		m[info.ID] = info
	}
	return true
}

// joinVideoOverlay registers in the tracker's per-video overlay and links
// to up to LinksPerOverlay members (NetTube). It returns the members the
// tracker recommended.
func (p *Peer) joinVideoOverlay(v trace.VideoID, provider *PeerInfo) []PeerInfo {
	resp, err := p.rpcRetry(p.trackerAddr, &Message{
		Type: MsgJoinVideo, From: p.cfg.ID, Addr: p.Addr(), Video: int(v),
	})
	p.mu.Lock()
	if p.perVideo[v] == nil {
		p.perVideo[v] = make(map[int]PeerInfo)
	}
	p.mu.Unlock()
	if provider != nil {
		p.connectTo(*provider, "video", 0, int(v))
	}
	if err != nil || resp.Type != MsgJoinOK {
		return nil
	}
	for _, info := range resp.Peers {
		p.connectTo(info, "video", 0, int(v))
	}
	return resp.Peers
}

// FinishVideo records a completed watch: cache the video, advertise it
// (NetTube), release the watcher slot (PA-VoD) and prefetch.
func (p *Peer) FinishVideo(v trace.VideoID) {
	video := p.tr.Video(v)
	if video == nil {
		return
	}
	switch p.cfg.Mode {
	case ModePAVoD:
		p.mu.Lock()
		if p.watching == v {
			p.watching = -1
		}
		p.mu.Unlock()
		rpc(p.trackerAddr, &Message{Type: MsgWatchDone, From: p.cfg.ID, Video: int(v)}, p.cfg.RPCTimeout)
		return // no cache, no prefetch
	case ModeNetTube:
		p.mu.Lock()
		p.cache.AddFull(v)
		p.mu.Unlock()
		rpc(p.trackerAddr, &Message{Type: MsgHave, From: p.cfg.ID, Addr: p.Addr(), Video: int(v)}, p.cfg.RPCTimeout)
		p.netTubePrefetch(v)
	case ModeSocialTube:
		p.mu.Lock()
		p.cache.AddFull(v)
		p.mu.Unlock()
		p.socialTubePrefetch(video.Channel, v)
	}
}

// socialTubePrefetch pulls the channel's popularity list from the server
// and caches the first chunks of the top-M videos (§IV-B).
func (p *Peer) socialTubePrefetch(ch trace.ChannelID, watched trace.VideoID) {
	if p.cfg.PrefetchCount <= 0 {
		return
	}
	resp, err := p.rpcRetry(p.trackerAddr, &Message{
		Type: MsgTopList, From: p.cfg.ID, Channel: int(ch), TTL: p.cfg.PrefetchCount + 1,
	})
	if err != nil || resp.Type != MsgOK {
		return
	}
	added := 0
	for _, raw := range resp.Videos {
		if added >= p.cfg.PrefetchCount {
			break
		}
		v := trace.VideoID(raw)
		if v == watched {
			continue
		}
		p.mu.Lock()
		have := p.cache.HasPrefix(v)
		if !have {
			p.cache.AddPrefix(v)
		}
		p.mu.Unlock()
		added++
	}
}

// netTubePrefetch prefetches the first chunks of videos sampled at random
// from neighbours' caches — NetTube's related-video prefetching ("a node
// randomly chooses the videos its neighbors have watched to prefetch").
func (p *Peer) netTubePrefetch(watched trace.VideoID) {
	if p.cfg.PrefetchCount <= 0 {
		return
	}
	p.mu.Lock()
	var nbs []PeerInfo
	seen := make(map[int]bool)
	for _, m := range p.perVideo {
		for id, info := range m {
			if !seen[id] {
				seen[id] = true
				nbs = append(nbs, info)
			}
		}
	}
	p.mu.Unlock()
	if len(nbs) == 0 {
		return
	}
	added := 0
	for attempts := 0; added < p.cfg.PrefetchCount && attempts < 2*len(nbs); attempts++ {
		p.mu.Lock()
		nb := nbs[p.g.Intn(len(nbs))]
		p.mu.Unlock()
		resp, err := rpc(nb.Addr, &Message{
			Type: MsgCacheSample, From: p.cfg.ID, TTL: p.cfg.PrefetchCount,
		}, p.cfg.RPCTimeout)
		if err != nil || resp.Type != MsgOK {
			continue
		}
		for _, raw := range resp.Videos {
			if added >= p.cfg.PrefetchCount {
				break
			}
			vid := trace.VideoID(raw)
			if vid == watched {
				continue
			}
			p.mu.Lock()
			have := p.cache.HasPrefix(vid)
			if !have {
				p.cache.AddPrefix(vid)
				added++
			}
			p.mu.Unlock()
		}
	}
}

// Probe checks every neighbour and drops dead links. It returns the number
// of probe messages sent.
func (p *Peer) Probe() int {
	type link struct {
		info  PeerInfo
		kind  string
		video trace.VideoID
	}
	p.mu.Lock()
	var links []link
	for _, info := range p.inner {
		links = append(links, link{info: info, kind: "inner"})
	}
	for _, info := range p.inter {
		links = append(links, link{info: info, kind: "inter"})
	}
	for v, m := range p.perVideo {
		for _, info := range m {
			links = append(links, link{info: info, kind: "video", video: v})
		}
	}
	p.mu.Unlock()
	msgs := 0
	for _, l := range links {
		msgs++
		_, err := rpc(l.info.Addr, &Message{Type: MsgProbe, From: p.cfg.ID}, p.cfg.RPCTimeout)
		if err == nil {
			continue
		}
		p.mu.Lock()
		switch l.kind {
		case "inner":
			delete(p.inner, l.info.ID)
		case "inter":
			delete(p.inter, l.info.ID)
		case "video":
			if m := p.perVideo[l.video]; m != nil {
				delete(m, l.info.ID)
			}
		}
		p.mu.Unlock()
	}
	return msgs
}

// LeaveOverlays gracefully departs: notify every neighbour (which drops its
// link immediately, §IV-A), deregister from the tracker and clear local
// link state. The cache survives for the next session, as in the paper.
func (p *Peer) LeaveOverlays() {
	p.mu.Lock()
	nbs := make(map[int]PeerInfo)
	for id, info := range p.inner {
		nbs[id] = info
	}
	for id, info := range p.inter {
		nbs[id] = info
	}
	for _, m := range p.perVideo {
		for id, info := range m {
			nbs[id] = info
		}
	}
	p.mu.Unlock()
	for _, info := range nbs {
		rpc(info.Addr, &Message{Type: MsgBye, From: p.cfg.ID}, p.cfg.RPCTimeout)
	}
	rpc(p.trackerAddr, &Message{Type: MsgLeave, From: p.cfg.ID}, p.cfg.RPCTimeout)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inner = make(map[int]PeerInfo)
	p.inter = make(map[int]PeerInfo)
	p.perVideo = make(map[trace.VideoID]map[int]PeerInfo)
	p.home = -1
}
