package emu

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

func emuTrace(t *testing.T) *trace.Trace {
	t.Helper()
	// Paper's PlanetLab scale, shrunk: 6 categories, 10 channels each.
	cfg := trace.DefaultConfig()
	cfg.Seed = 51
	cfg.Channels = 60
	cfg.Users = 64
	cfg.Categories = 6
	cfg.MaxInterestsPerUser = 6
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func fastConditions() *Conditions {
	return &Conditions{Seed: 1, MinLatency: 100 * time.Microsecond, MaxLatency: time.Millisecond, LossP: 0}
}

func startTracker(t *testing.T, tr *trace.Trace, cond *Conditions) *Tracker {
	t.Helper()
	tk, err := NewTracker(DefaultTrackerConfig(), tr, cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tk.Stop)
	return tk
}

func startPeer(t *testing.T, tr *trace.Trace, tk *Tracker, id int, mode Mode, cond *Conditions) *Peer {
	t.Helper()
	cfg := DefaultPeerConfig(id, mode)
	p, err := NewPeer(cfg, tr, tk.Addr(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{
		Type: MsgQuery, From: 7, Addr: "127.0.0.1:9", Video: 3, TTL: 2,
		Visited: []int{1, 2}, Payload: []byte{1, 2, 3},
	}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.From != in.From || out.Video != in.Video || out.TTL != in.TTL {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	if len(out.Visited) != 2 || len(out.Payload) != 3 {
		t.Fatal("slices lost in round trip")
	}
}

func TestReadMessageRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("err = %v, want ErrMessageTooLarge", err)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("expected error for truncated frame")
	}
}

func TestConditionsLatencyDeterministicSymmetricBounded(t *testing.T) {
	c := DefaultConditions()
	for a := -1; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			l := c.Latency(a, b)
			if l != c.Latency(b, a) {
				t.Fatal("latency not symmetric")
			}
			if l < c.MinLatency || l > c.MaxLatency {
				t.Fatalf("latency %v out of bounds", l)
			}
		}
	}
	if c.Latency(3, 3) != 0 {
		t.Fatal("self latency should be zero")
	}
	var nilCond *Conditions
	if nilCond.Latency(1, 2) != 0 || nilCond.Drop() {
		t.Fatal("nil conditions should be a no-op")
	}
}

func TestConditionsDropRate(t *testing.T) {
	c := &Conditions{Seed: 3, LossP: 0.5}
	drops := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if c.Drop() {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop rate %v, want ≈0.5", frac)
	}
	zero := &Conditions{LossP: 0}
	if zero.Drop() {
		t.Fatal("zero loss should never drop")
	}
}

func TestTrackerServesChunk(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	resp, err := rpc(tk.Addr(), &Message{Type: MsgServe, From: 0, Video: 0, Chunk: 0}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgOK || len(resp.Payload) != DefaultTrackerConfig().ChunkPayload {
		t.Fatalf("bad serve response: type=%v payload=%d", resp.Type, len(resp.Payload))
	}
	if tk.ServedBytes() != int64(DefaultTrackerConfig().ChunkPayload) {
		t.Fatalf("served bytes %d", tk.ServedBytes())
	}
}

func TestTrackerRejectsUnknownVideo(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	resp, err := rpc(tk.Addr(), &Message{Type: MsgServe, From: 0, Video: 1 << 30}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgMiss {
		t.Fatalf("type = %v, want miss", resp.Type)
	}
}

func TestTrackerTopList(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, fastConditions())
	var ch *trace.Channel
	for i := range tr.Channels {
		if len(tr.Channels[i].Videos) >= 5 {
			ch = &tr.Channels[i]
			break
		}
	}
	if ch == nil {
		t.Skip("no channel with 5+ videos")
	}
	resp, err := rpc(tk.Addr(), &Message{Type: MsgTopList, From: 0, Channel: int(ch.ID), TTL: 3}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgOK || len(resp.Videos) != 3 {
		t.Fatalf("top list response: %+v", resp)
	}
	for i, v := range resp.Videos {
		if trace.VideoID(v) != ch.Videos[i] {
			t.Fatalf("top list not rank ordered: %v", resp.Videos)
		}
	}
}

func TestPeerChunkFetchAndCache(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	p := startPeer(t, tr, tk, 0, ModeSocialTube, cond)
	v := tr.Videos[0].ID
	rec := p.RequestVideo(v)
	if rec.Source != vod.SourceServer {
		t.Fatalf("first fetch source = %v, want server", rec.Source)
	}
	if rec.Startup <= 0 {
		t.Fatal("startup delay not measured")
	}
	p.FinishVideo(v)
	rec = p.RequestVideo(v)
	if rec.Source != vod.SourceCache {
		t.Fatalf("cached fetch source = %v", rec.Source)
	}
}

func TestSocialTubePeerToPeerDelivery(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	// Pick a subscribed user and a video from that channel, plus another
	// subscriber of the same channel.
	var a, b int = -1, -1
	var v trace.VideoID = -1
	for _, ch := range tr.Channels {
		if len(ch.Subscribers) >= 2 && len(ch.Videos) > 0 && int(ch.Subscribers[0]) < 64 && int(ch.Subscribers[1]) < 64 {
			a, b = int(ch.Subscribers[0]), int(ch.Subscribers[1])
			v = ch.Videos[0]
			break
		}
	}
	if a < 0 {
		t.Skip("no channel with two subscribers among peer ids")
	}
	pa := startPeer(t, tr, tk, a, ModeSocialTube, cond)
	pb := startPeer(t, tr, tk, b, ModeSocialTube, cond)
	// a fetches from the server and caches; both attach to the channel
	// overlay.
	if rec := pa.RequestVideo(v); rec.Source != vod.SourceServer {
		t.Fatalf("seed fetch source = %v", rec.Source)
	}
	pa.FinishVideo(v)
	rec := pb.RequestVideo(v)
	if rec.Source != vod.SourcePeer {
		t.Fatalf("source = %v, want peer (a cached it and shares the channel overlay)", rec.Source)
	}
	if pb.Links() == 0 {
		t.Fatal("b holds no links after a successful peer fetch")
	}
}

func TestSocialTubePrefetchOverTCP(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	var node int = -1
	var ch *trace.Channel
	for _, u := range tr.Users {
		if int(u.ID) >= 64 {
			continue
		}
		for _, cid := range u.Subscriptions {
			if c := tr.Channel(cid); len(c.Videos) >= 5 {
				node, ch = int(u.ID), c
				break
			}
		}
		if ch != nil {
			break
		}
	}
	if ch == nil {
		t.Skip("no subscribed channel with enough videos")
	}
	p := startPeer(t, tr, tk, node, ModeSocialTube, cond)
	watched := ch.Videos[4]
	p.RequestVideo(watched)
	p.FinishVideo(watched)
	// After finishing, a request for the channel's top video must be a
	// prefix hit with zero startup delay.
	rec := p.RequestVideo(ch.Videos[0])
	if !rec.PrefixCached {
		t.Fatal("top channel video was not prefetched")
	}
	if rec.Startup != 0 {
		t.Fatalf("prefix hit startup = %v, want 0", rec.Startup)
	}
}

func TestOfflinePeerDoesNotServe(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	p := startPeer(t, tr, tk, 0, ModeSocialTube, cond)
	v := tr.Videos[0].ID
	p.RequestVideo(v)
	p.FinishVideo(v)
	p.SetOnline(false)
	if _, err := rpc(p.Addr(), &Message{Type: MsgChunkReq, From: 1, Video: int(v)}, time.Second); err == nil {
		t.Fatal("offline peer answered a chunk request")
	}
}

func TestPAVoDOverTCP(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	pa := startPeer(t, tr, tk, 0, ModePAVoD, cond)
	pb := startPeer(t, tr, tk, 1, ModePAVoD, cond)
	v := tr.Videos[0].ID
	if rec := pa.RequestVideo(v); rec.Source != vod.SourceServer {
		t.Fatalf("first watcher source = %v", rec.Source)
	}
	// While a still watches, b is directed to a.
	rec := pb.RequestVideo(v)
	if rec.Source != vod.SourcePeer {
		t.Fatalf("concurrent watcher not used: %v", rec.Source)
	}
	pa.FinishVideo(v)
	pb.FinishVideo(v)
	// After both finish, there is no provider and no cache.
	pc := startPeer(t, tr, tk, 2, ModePAVoD, cond)
	if rec := pc.RequestVideo(v); rec.Source != vod.SourceServer {
		t.Fatalf("PA-VoD should have no provider after finish: %v", rec.Source)
	}
}

func TestNetTubeOverTCP(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	pa := startPeer(t, tr, tk, 0, ModeNetTube, cond)
	pb := startPeer(t, tr, tk, 1, ModeNetTube, cond)
	v := tr.Videos[0].ID
	pa.RequestVideo(v)
	pa.FinishVideo(v)
	rec := pb.RequestVideo(v)
	if rec.Source != vod.SourcePeer {
		t.Fatalf("server should direct first request to overlay provider: %v", rec.Source)
	}
	if pb.Links() == 0 {
		t.Fatal("b did not join the per-video overlay")
	}
}

func TestProbeDropsDeadLinks(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	pa := startPeer(t, tr, tk, 0, ModeNetTube, cond)
	v := tr.Videos[0].ID

	cfgB := DefaultPeerConfig(1, ModeNetTube)
	pb, err := NewPeer(cfgB, tr, tk.Addr(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Start(); err != nil {
		t.Fatal(err)
	}
	pb.RequestVideo(v)
	pb.FinishVideo(v)
	pa.RequestVideo(v)
	pa.FinishVideo(v)
	if pa.Links() == 0 {
		pb.Stop()
		t.Skip("peers did not link")
	}
	pb.Stop() // hard kill: listener gone
	if msgs := pa.Probe(); msgs == 0 {
		t.Fatal("probe sent no messages")
	}
	if pa.Links() != 0 {
		t.Fatalf("dead link survived probe: %d links", pa.Links())
	}
}

func TestClusterRunAllModes(t *testing.T) {
	tr := emuTrace(t)
	for _, mode := range []Mode{ModeSocialTube, ModeNetTube, ModePAVoD} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultClusterConfig(mode)
			cfg.Peers = 12
			cfg.Sessions = 2
			cfg.VideosPerSession = 4
			cfg.WatchTime = 5 * time.Millisecond
			cfg.MeanOffTime = 5 * time.Millisecond
			cfg.ProbeInterval = 50 * time.Millisecond
			cfg.Conditions = fastConditions()
			res, err := RunCluster(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			total := res.CacheHits + res.PeerHits + res.ServerHits
			want := int64(cfg.Peers * cfg.Sessions * cfg.VideosPerSession)
			if total != want {
				t.Fatalf("requests accounted %d, want %d", total, want)
			}
			if res.StartupDelay.Len() == 0 {
				t.Fatal("no startup samples")
			}
			if res.PeerBandwidth.Len() == 0 {
				t.Fatal("no bandwidth samples")
			}
			if mode != ModePAVoD && res.ServerBytes == 0 {
				t.Fatal("server shipped nothing")
			}
		})
	}
}

// TestClusterLiveMetrics scrapes /metrics while a cluster run is in flight:
// the OnMetricsAddr hook fires before the workload starts, so the GET races
// the run and must return a consistent JSON snapshot either way.
func TestClusterLiveMetrics(t *testing.T) {
	tr := emuTrace(t)
	cfg := DefaultClusterConfig(ModeSocialTube)
	cfg.Peers = 8
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.WatchTime = 5 * time.Millisecond
	cfg.MeanOffTime = 5 * time.Millisecond
	cfg.Conditions = fastConditions()
	cfg.MetricsAddr = "127.0.0.1:0"
	cfg.PprofEnabled = true

	var scraped LiveMetrics
	var pprofStatus int
	cfg.OnMetricsAddr = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("GET /metrics: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /metrics = %d", resp.StatusCode)
			return
		}
		if err := json.NewDecoder(resp.Body).Decode(&scraped); err != nil {
			t.Errorf("metrics not JSON: %v", err)
			return
		}
		pr, err := http.Get("http://" + addr + "/debug/pprof/")
		if err != nil {
			t.Errorf("GET /debug/pprof/: %v", err)
			return
		}
		pr.Body.Close()
		pprofStatus = pr.StatusCode
	}

	res, err := RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if scraped.Protocol != "SocialTube" {
		t.Fatalf("scraped protocol %q", scraped.Protocol)
	}
	if scraped.Tracker.RequestsByType == nil {
		t.Fatal("scraped snapshot has no tracker request map")
	}
	if pprofStatus != http.StatusOK {
		t.Fatalf("pprof index = %d, want 200", pprofStatus)
	}
	// After the run the endpoint is down but the final result carries the
	// same counters the endpoint was serving.
	if res.CacheHits+res.PeerHits+res.ServerHits == 0 {
		t.Fatal("run produced no requests")
	}
}

func TestClusterValidation(t *testing.T) {
	tr := emuTrace(t)
	cfg := DefaultClusterConfig(ModeSocialTube)
	cfg.Peers = 0
	if _, err := RunCluster(cfg, tr); err == nil {
		t.Fatal("zero peers accepted")
	}
	cfg = DefaultClusterConfig(ModeSocialTube)
	cfg.Peers = len(tr.Users) + 1
	if _, err := RunCluster(cfg, tr); err == nil {
		t.Fatal("more peers than users accepted")
	}
	if _, err := RunCluster(DefaultClusterConfig(ModeSocialTube), nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}

// TestNoGoroutineLeaks ensures Stop releases everything a cluster started.
func TestNoGoroutineLeaks(t *testing.T) {
	tr := emuTrace(t)
	before := runtime.NumGoroutine()
	cfg := DefaultClusterConfig(ModeSocialTube)
	cfg.Peers = 8
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.WatchTime = 2 * time.Millisecond
	cfg.Conditions = fastConditions()
	if _, err := RunCluster(cfg, tr); err != nil {
		t.Fatal(err)
	}
	// Allow lingering handler goroutines to wind down.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestConditionsRegionsClusterLatency(t *testing.T) {
	c := &Conditions{
		Seed:       5,
		MinLatency: 5 * time.Millisecond,
		MaxLatency: 105 * time.Millisecond,
		Regions:    4,
	}
	var intra, inter time.Duration
	var nIntra, nInter int
	for a := 0; a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			l := c.Latency(a, b)
			if l < c.MinLatency || l > c.MaxLatency {
				t.Fatalf("latency %v out of bounds", l)
			}
			if a%4 == b%4 {
				intra += l
				nIntra++
			} else {
				inter += l
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Fatal("degenerate sample")
	}
	meanIntra := intra / time.Duration(nIntra)
	meanInter := inter / time.Duration(nInter)
	if meanIntra >= meanInter {
		t.Fatalf("intra-region latency %v not below inter-region %v", meanIntra, meanInter)
	}
	// Symmetry is preserved under clustering.
	if c.Latency(3, 17) != c.Latency(17, 3) {
		t.Fatal("clustered latency not symmetric")
	}
}

func TestClusterWithRegions(t *testing.T) {
	tr := emuTrace(t)
	cfg := DefaultClusterConfig(ModeSocialTube)
	cfg.Peers = 8
	cfg.Sessions = 1
	cfg.VideosPerSession = 3
	cfg.WatchTime = 3 * time.Millisecond
	cfg.Conditions = &Conditions{
		Seed:       9,
		MinLatency: 200 * time.Microsecond,
		MaxLatency: 3 * time.Millisecond,
		Regions:    3,
	}
	res, err := RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits+res.PeerHits+res.ServerHits == 0 {
		t.Fatal("regional cluster served nothing")
	}
}
