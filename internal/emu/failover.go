package emu

import (
	"fmt"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/health"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// FailoverConfig drives RunFailover: a deterministic mid-stream
// provider-crash experiment over real TCP. One requester issues Requests
// sequential video requests against a pool of provider peers; on every
// CrashEvery-th request the provider serving chunk 0 is crashed the
// moment that chunk lands, so the requester must fail over mid-stream.
//
// The crash schedule is keyed to download progress, not wall clock, and
// the whole run is single-threaded on the client side, so every count the
// result carries is bit-identical under one seed.
type FailoverConfig struct {
	// Mode selects the protocol under test.
	Mode Mode
	// Providers is the provider pool size (peer ids 1..Providers; the
	// requester is id 0).
	Providers int
	// CachersPerVideo is how many NetTube providers hold each video —
	// the per-video session cache NetTube builds from watch history,
	// assigned by a seeded draw. SocialTube providers hold the whole
	// channel (the community cache of §IV-B) and PA-VoD providers hold
	// nothing: a watcher serves only the video it is currently watching.
	// That storage asymmetry is the paper's, not the harness's.
	CachersPerVideo int
	// Requests is how many sequential requests the requester issues,
	// each for a distinct video of one channel.
	Requests int
	// CrashEvery crashes the chunk-0 provider of every n-th request
	// (1 = every request). Crashes are permanent: no rejoin, exactly as
	// an abrupt departure looks to the overlay.
	CrashEvery int
	// Seed drives the tracker's and every peer's random choices.
	Seed int64
	// RPCTimeout bounds each RPC; a crashed provider costs exactly one
	// timeout per attempt until the requester's breaker opens.
	RPCTimeout time.Duration
	// BreakerThreshold / BreakerOpenFor parameterise every peer's
	// circuit breaker. The default window (an hour) outlasts any run, so
	// an opened breaker stays open and the schedule stays deterministic.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
}

// DefaultFailoverConfig returns the figure's standard schedule: 12
// providers (2 NetTube replicas per video), 16 requests, a crash every
// third request — up to 6 of the 12 providers die over the run.
func DefaultFailoverConfig(mode Mode) FailoverConfig {
	return FailoverConfig{
		Mode:             mode,
		Providers:        12,
		CachersPerVideo:  2,
		Requests:         16,
		CrashEvery:       3,
		Seed:             1,
		RPCTimeout:       120 * time.Millisecond,
		BreakerThreshold: health.DefaultConfig().Threshold,
		BreakerOpenFor:   time.Hour,
	}
}

// Validate reports the first problem with the configuration.
func (c FailoverConfig) Validate() error {
	switch {
	case c.Mode < ModeSocialTube || c.Mode > ModePAVoD:
		return fmt.Errorf("%w: mode=%d", dist.ErrBadParameter, c.Mode)
	case c.Providers < 2:
		return fmt.Errorf("%w: providers=%d", dist.ErrBadParameter, c.Providers)
	case c.CachersPerVideo < 1 || c.CachersPerVideo > c.Providers:
		return fmt.Errorf("%w: cachersPerVideo=%d", dist.ErrBadParameter, c.CachersPerVideo)
	case c.Requests < 1:
		return fmt.Errorf("%w: requests=%d", dist.ErrBadParameter, c.Requests)
	case c.CrashEvery < 1:
		return fmt.Errorf("%w: crashEvery=%d", dist.ErrBadParameter, c.CrashEvery)
	case c.RPCTimeout <= 0:
		return fmt.Errorf("%w: rpcTimeout=%v", dist.ErrBadParameter, c.RPCTimeout)
	case c.BreakerThreshold < 0 || c.BreakerOpenFor < 0:
		return fmt.Errorf("%w: breaker policy", dist.ErrBadParameter)
	}
	return nil
}

// FailoverResult aggregates one failover run. Every request lands in one
// of three bins: PeerCompleted (all chunks came from peers, handoffs
// included), ServerRescues (a peer started delivery and the server
// completed only the remainder) or ServerRestarts (delivery never
// started from a peer — the server served from chunk 0). The figure's
// headline is the no-restart fraction.
type FailoverResult struct {
	Protocol string
	Requests int
	// Crashed counts requests whose chunk-0 provider was crashed.
	Crashed        int
	PeerCompleted  int
	ServerRescues  int
	ServerRestarts int
	// Handoff accounting across all requests.
	HandoffAttempts int
	Handoffs        int
	HandoffWaitMs   metrics.Sample
	// Messages counts query messages across all requests.
	Messages int
	// Obs merges the tracker's and every peer's counters.
	Obs obs.Counters
	// Elapsed is the run's wall-clock duration (environmental).
	Elapsed time.Duration
}

// NoRestartFraction is the fraction of all requests whose delivery never
// had to restart at the server: peers served chunk 0 and either finished
// (handoffs included) or were rescued mid-stream.
func (r *FailoverResult) NoRestartFraction() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Requests-r.ServerRestarts) / float64(r.Requests)
}

// failoverChannel picks the channel with the most videos (lowest id wins
// ties), the one channel the whole experiment plays in.
func failoverChannel(tr *trace.Trace) *trace.Channel {
	var best *trace.Channel
	for i := range tr.Channels {
		ch := &tr.Channels[i]
		if best == nil || len(ch.Videos) > len(best.Videos) {
			best = ch
		}
	}
	return best
}

// RunFailover stages the provider pool, replays the crash schedule and
// returns the aggregated outcome. Network conditions are pristine (no
// injected latency or loss): the only fault in the run is the schedule's
// own provider crashes, so the result isolates failover behaviour.
func RunFailover(cfg FailoverConfig, tr *trace.Trace) (*FailoverResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("failover config: %w", err)
	}
	if tr == nil || len(tr.Users) < cfg.Providers+1 {
		return nil, fmt.Errorf("%w: failover needs %d users in the trace", dist.ErrBadParameter, cfg.Providers+1)
	}
	ch := failoverChannel(tr)
	if ch == nil || len(ch.Videos) < cfg.Requests {
		return nil, fmt.Errorf("%w: failover needs a channel with %d videos", dist.ErrBadParameter, cfg.Requests)
	}
	videos := ch.Videos[:cfg.Requests]

	tc := DefaultTrackerConfig()
	tc.Seed = cfg.Seed
	tracker, err := NewTracker(tc, tr, nil)
	if err != nil {
		return nil, err
	}
	if err := tracker.Start(); err != nil {
		return nil, err
	}
	defer tracker.Stop()

	peers := make([]*Peer, 0, cfg.Providers+1)
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
	}()
	for i := 0; i <= cfg.Providers; i++ {
		pc := DefaultPeerConfig(i, cfg.Mode)
		pc.PrefetchCount = 0 // isolate the delivery path from prefetching
		pc.RPCTimeout = cfg.RPCTimeout
		pc.Seed = cfg.Seed + int64(i)*7919
		pc.BreakerThreshold = cfg.BreakerThreshold
		pc.BreakerOpenFor = cfg.BreakerOpenFor
		p, err := NewPeer(pc, tr, tracker.Addr(), nil)
		if err != nil {
			return nil, err
		}
		if err := p.Start(); err != nil {
			return nil, err
		}
		p.SetOnline(true)
		peers = append(peers, p)
	}
	requester := peers[0]

	// Stage each protocol's own storage and discovery state.
	switch cfg.Mode {
	case ModeSocialTube:
		// The channel's subscriber community holds the channel's content
		// (session cache plus §IV-B community prefetching) and every
		// provider is a member of the one channel overlay.
		for _, p := range peers[1:] {
			for _, v := range videos {
				p.SeedCache(v)
			}
			p.Subscribe(ch.ID)
			p.JoinChannel(ch.ID)
		}
		requester.Subscribe(ch.ID)
		// The requester is an established member: each join grants at
		// most one more inner link.
		warm := cfg.Providers
		if warm > DefaultPeerConfig(0, cfg.Mode).InnerLinks {
			warm = DefaultPeerConfig(0, cfg.Mode).InnerLinks
		}
		for i := 0; i < warm; i++ {
			requester.JoinChannel(ch.ID)
		}
	case ModeNetTube:
		// Each node caches exactly the videos it watched: a seeded draw
		// puts every video on CachersPerVideo providers, each of which
		// advertises its replica to the tracker.
		g := dist.NewRNG(cfg.Seed * 48_611)
		for _, v := range videos {
			for _, j := range g.Perm(cfg.Providers)[:cfg.CachersPerVideo] {
				peers[1+j].SeedCache(v)
				peers[1+j].AnnounceHave(v)
			}
		}
	default:
		// PA-VoD keeps no cache: a provider serves only the video it is
		// currently watching. The seeded draw assigns each video one
		// watcher; a provider drawn again for a later video has moved on
		// from its earlier one — the tracker's watcher list for that
		// video is stale, as in the real system.
		g := dist.NewRNG(cfg.Seed * 48_611)
		for _, v := range videos {
			peers[1+g.Intn(cfg.Providers)].StartWatching(v)
		}
	}

	// The crash trigger: the moment chunk 0 of an armed request lands,
	// its provider dies. The hook runs synchronously inside the
	// requester's fetch loop, so the very next chunk RPC already fails.
	armed := false
	crashFired := false
	requester.SetOnChunk(func(_ trace.VideoID, chunk, provider int) {
		if !armed || chunk != 0 || provider < 1 || provider > cfg.Providers {
			return
		}
		if peers[provider].IsCrashed() {
			return
		}
		peers[provider].Crash()
		crashFired = true
		armed = false
	})

	res := &FailoverResult{Protocol: cfg.Mode.String(), Requests: cfg.Requests}
	begin := time.Now()
	for k, v := range videos {
		armed = k%cfg.CrashEvery == 0
		crashFired = false
		rec := requester.RequestVideo(v)
		armed = false
		res.Messages += rec.Messages
		res.HandoffAttempts += rec.HandoffAttempts
		res.Handoffs += rec.Handoffs
		for h := 0; h < rec.Handoffs; h++ {
			res.HandoffWaitMs.Add(float64(rec.HandoffWait) / float64(rec.Handoffs) / float64(time.Millisecond))
		}
		if crashFired {
			res.Crashed++
		}
		switch {
		case rec.Source == vod.SourcePeer:
			res.PeerCompleted++
		case rec.ServerRescued:
			res.ServerRescues++
		default:
			res.ServerRestarts++
		}
		// One maintenance round per request: every live node probes its
		// links and drops the dead ones. Keyed to request progress (not a
		// wall-clock ticker) so the run stays deterministic.
		for _, p := range peers {
			if !p.IsCrashed() {
				p.Probe()
			}
		}
	}
	res.Elapsed = time.Since(begin)
	res.Obs = tracker.Counters()
	for _, p := range peers {
		res.Obs.Merge(p.Counters())
	}
	return res, nil
}
