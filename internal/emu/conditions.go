package emu

import (
	"math"
	"sync/atomic"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
)

// Conditions injects WAN behaviour into loopback TCP: deterministic per-pair
// one-way latency (as between PlanetLab sites) and random message loss (the
// paper attributes PlanetLab's zero 1st-percentile bandwidth partly to
// connection failures).
type Conditions struct {
	// Seed drives the deterministic latency assignment.
	Seed int64
	// MinLatency/MaxLatency bound one-way delay between two nodes.
	MinLatency time.Duration
	MaxLatency time.Duration
	// LossP is the probability an incoming request is dropped.
	LossP float64
	// Regions clusters nodes geographically, as PlanetLab sites are:
	// same-region pairs get latencies near MinLatency, cross-region
	// pairs near MaxLatency. Zero or one disables clustering (uniform
	// per-pair latency).
	Regions int

	lossCounter atomic.Uint64
	// burstLatBits / burstLossBits hold a transient degradation window
	// (float64 bits; 0 means inactive) set by the fault driver: a
	// latency multiplier ≥ 1 and an extra loss probability.
	burstLatBits  atomic.Uint64
	burstLossBits atomic.Uint64
	// chaos holds an open frame-chaos window (nil means inactive) set by
	// the fault driver; chaosCounter seeds the per-frame fault decision
	// the same way lossCounter seeds Drop.
	chaos        atomic.Pointer[ChaosMix]
	chaosCounter atomic.Uint64
	// partGroups holds an open network-partition window (0 means whole):
	// nodes are split into that many sides by id modulo the group count,
	// and messages between different sides are severed — skipped by
	// senders that know both endpoints, dropped on arrival otherwise.
	partGroups atomic.Int64
}

// ChaosMix is the frame-fault blend of an open chaos window: each frame
// written while the window is open suffers at most one fault, chosen in
// corrupt → truncate → duplicate → stall order.
type ChaosMix struct {
	CorruptP   float64
	TruncateP  float64
	DuplicateP float64
	StallP     float64
	StallFor   time.Duration
}

// DefaultConditions returns WAN-like conditions scaled for fast local runs.
func DefaultConditions() *Conditions {
	return &Conditions{
		Seed:       1,
		MinLatency: 2 * time.Millisecond,
		MaxLatency: 25 * time.Millisecond,
		LossP:      0.01,
	}
}

// Latency returns the deterministic one-way delay between nodes a and b
// (tracker = -1). It is symmetric. With Regions configured, same-region
// pairs draw from the lower quarter of the latency range and cross-region
// pairs from the upper three quarters.
func (c *Conditions) Latency(a, b int) time.Duration {
	if c == nil || a == b || c.MaxLatency <= 0 {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	h := int64(a)*1_000_003 + int64(b)*7919 + c.Seed*104_729
	g := dist.NewRNG(h)
	span := c.MaxLatency - c.MinLatency
	if span < 0 {
		span = 0
	}
	var d time.Duration
	switch {
	case c.Regions > 1 && c.region(a) == c.region(b):
		d = c.MinLatency + time.Duration(g.Float64()*float64(span/4))
	case c.Regions > 1:
		quarter := span / 4
		d = c.MinLatency + quarter + time.Duration(g.Float64()*float64(span-quarter))
	default:
		d = c.MinLatency + time.Duration(g.Float64()*float64(span))
	}
	if bits := c.burstLatBits.Load(); bits != 0 {
		if f := math.Float64frombits(bits); f > 1 {
			d = time.Duration(float64(d) * f)
		}
	}
	return d
}

// SetBurst opens a degradation window: every latency is multiplied by
// latencyFactor (clamped to ≥ 1) and messages are additionally dropped
// with probability lossP. Nil receivers and out-of-range values are
// tolerated so the fault driver can call this unconditionally.
func (c *Conditions) SetBurst(latencyFactor, lossP float64) {
	if c == nil {
		return
	}
	if latencyFactor < 1 {
		latencyFactor = 1
	}
	if lossP < 0 {
		lossP = 0
	} else if lossP > 1 {
		lossP = 1
	}
	c.burstLatBits.Store(math.Float64bits(latencyFactor))
	c.burstLossBits.Store(math.Float64bits(lossP))
}

// ClearBurst closes the degradation window.
func (c *Conditions) ClearBurst() {
	if c == nil {
		return
	}
	c.burstLatBits.Store(0)
	c.burstLossBits.Store(0)
}

// SetChaos opens a frame-chaos window: every frame written through the
// chaos-aware write path suffers one of the mix's faults with the given
// probabilities. Nil receivers and nil mixes are tolerated so the fault
// driver can call this unconditionally.
func (c *Conditions) SetChaos(mix *ChaosMix) {
	if c == nil {
		return
	}
	if mix == nil {
		c.chaos.Store(nil)
		return
	}
	m := *mix // private copy: the driver may reuse its buffer
	c.chaos.Store(&m)
}

// ClearChaos closes the frame-chaos window.
func (c *Conditions) ClearChaos() {
	if c == nil {
		return
	}
	c.chaos.Store(nil)
}

// SetPartition opens a partition window splitting the network into
// groups sides: node n (peer id, or tracker replica index) lands on side
// n % groups, and traffic between different sides is severed. groups < 2
// clears the window. Nil receivers are tolerated so the fault driver can
// call this unconditionally.
func (c *Conditions) SetPartition(groups int) {
	if c == nil {
		return
	}
	if groups < 2 {
		groups = 0
	}
	c.partGroups.Store(int64(groups))
}

// ClearPartition heals the partition.
func (c *Conditions) ClearPartition() {
	if c == nil {
		return
	}
	c.partGroups.Store(0)
}

// Severed reports whether a message between nodes a and b crosses the
// open partition cut. Ids are peer ids on the peer plane and replica
// indices on the tracker plane; negatives (the tracker sentinel -1, or
// an unknown sender) are folded to side 0 so legacy single-tracker
// traffic is never cut off from the id-0 side by accident. Healthy runs
// take the zero-load branch and draw nothing.
func (c *Conditions) Severed(a, b int) bool {
	if c == nil {
		return false
	}
	g := c.partGroups.Load()
	if g == 0 {
		return false
	}
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	return a%int(g) != b%int(g)
}

// nextChaos picks the fault for the next written frame: chaosNone when no
// window is open, otherwise a counter-seeded deterministic draw across
// the mix (at most one fault per frame). Healthy runs take the nil-load
// branch and draw nothing.
func (c *Conditions) nextChaos() (chaosAction, time.Duration) {
	if c == nil {
		return chaosNone, 0
	}
	mix := c.chaos.Load()
	if mix == nil {
		return chaosNone, 0
	}
	n := c.chaosCounter.Add(1)
	g := dist.NewRNG(int64(n) + c.Seed*32_452_843)
	u := g.Float64()
	switch {
	case u < mix.CorruptP:
		return chaosCorrupt, 0
	case u < mix.CorruptP+mix.TruncateP:
		return chaosTruncate, 0
	case u < mix.CorruptP+mix.TruncateP+mix.DuplicateP:
		return chaosDuplicate, 0
	case u < mix.CorruptP+mix.TruncateP+mix.DuplicateP+mix.StallP:
		return chaosStall, mix.StallFor
	}
	return chaosNone, 0
}

// region assigns a node (tracker included) to a geographic cluster.
func (c *Conditions) region(n int) int {
	if n < 0 {
		n = -n
	}
	return n % c.Regions
}

// Drop reports whether to drop the next message. It is safe for concurrent
// use; the decision sequence is deterministic under the seed, though its
// interleaving across goroutines is not.
func (c *Conditions) Drop() bool {
	if c == nil {
		return false
	}
	p := c.LossP
	if bits := c.burstLossBits.Load(); bits != 0 {
		if bp := math.Float64frombits(bits); bp > p {
			p = bp
		}
	}
	if p <= 0 {
		return false // no counter draw: healthy runs stay deterministic
	}
	n := c.lossCounter.Add(1)
	g := dist.NewRNG(int64(n) + c.Seed*15_485_863)
	return g.Float64() < p
}
