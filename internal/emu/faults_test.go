package emu

import (
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/vod"
)

// TestClusterSurvivesHeavyLoss drives a cluster under 20% message loss: the
// run must still complete, every request must be accounted for, and the
// server fallback must keep every video watchable.
func TestClusterSurvivesHeavyLoss(t *testing.T) {
	tr := emuTrace(t)
	cfg := DefaultClusterConfig(ModeSocialTube)
	cfg.Peers = 10
	cfg.Sessions = 1
	cfg.VideosPerSession = 4
	cfg.WatchTime = 5 * time.Millisecond
	cfg.Conditions = &Conditions{
		Seed:       7,
		MinLatency: 200 * time.Microsecond,
		MaxLatency: 2 * time.Millisecond,
		LossP:      0.2,
	}
	res, err := RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Peers * cfg.Sessions * cfg.VideosPerSession)
	if got := res.CacheHits + res.PeerHits + res.ServerHits; got != want {
		t.Fatalf("requests accounted %d, want %d under loss", got, want)
	}
}

// TestPeerFallsBackWhenProviderDies kills a provider mid-cluster and checks
// the requester still completes via the server.
func TestPeerFallsBackWhenProviderDies(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk := startTracker(t, tr, cond)
	v := tr.Videos[0].ID

	provider, err := NewPeer(DefaultPeerConfig(0, ModeSocialTube), tr, tk.Addr(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := provider.Start(); err != nil {
		t.Fatal(err)
	}
	provider.RequestVideo(v)
	provider.FinishVideo(v)
	provider.Stop() // hard kill: the cached copy disappears from the net

	requester := startPeer(t, tr, tk, 1, ModeSocialTube, cond)
	rec := requester.RequestVideo(v)
	if rec.Source != vod.SourceServer && rec.Source != vod.SourcePeer {
		t.Fatalf("request failed outright: %+v", rec)
	}
	if rec.Source == vod.SourcePeer {
		t.Fatalf("dead provider served a video")
	}
}

// TestTrackerStopIsIdempotent double-stops the tracker and peers.
func TestTrackerStopIsIdempotent(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk, err := NewTracker(DefaultTrackerConfig(), tr, cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	tk.Stop()
	p, err := NewPeer(DefaultPeerConfig(0, ModeSocialTube), tr, tk.Addr(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.Stop()
	p.Stop()
}

// TestRequestAgainstDeadTracker: with the tracker gone, requests must not
// hang or panic; they degrade to server-miss results within the timeout.
func TestRequestAgainstDeadTracker(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	tk, err := NewTracker(DefaultTrackerConfig(), tr, cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	addr := tk.Addr()
	tk.Stop()

	cfg := DefaultPeerConfig(0, ModeSocialTube)
	cfg.RPCTimeout = 300 * time.Millisecond
	p, err := NewPeer(cfg, tr, addr, cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	done := make(chan Record, 1)
	go func() { done <- p.RequestVideo(tr.Videos[0].ID) }()
	select {
	case <-done:
		// Completed without hanging; source is irrelevant.
	case <-time.After(5 * time.Second):
		t.Fatal("request against dead tracker hung")
	}
}
