package emu

import (
	"fmt"
	"sync"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// ClusterConfig drives one emulated experiment: a tracker plus Peers TCP
// nodes on loopback running Sessions sessions each — the PlanetLab workload
// of §V scaled to one machine.
type ClusterConfig struct {
	// Mode selects the protocol all peers run.
	Mode Mode
	// Peers is the number of TCP nodes (the paper uses 250 PlanetLab
	// nodes; loopback runs scale this down).
	Peers int
	// Sessions per peer (paper: 50 on PlanetLab).
	Sessions int
	// VideosPerSession watched per session (paper: 10).
	VideosPerSession int
	// WatchTime is the emulated playback duration per video.
	WatchTime time.Duration
	// MeanOffTime is the mean off period between sessions.
	MeanOffTime time.Duration
	// ProbeInterval is the neighbour probe period (0 disables probing).
	ProbeInterval time.Duration
	// PrefetchCount is how many first chunks each peer prefetches
	// (0 disables prefetching).
	PrefetchCount int
	// Seed drives workload randomness.
	Seed int64
	// Behavior is the 75/15/10 video-selection model.
	Behavior vod.Behavior
	// Tracker configures the central server.
	Tracker TrackerConfig
	// Conditions injects latency and loss (nil = pristine loopback).
	Conditions *Conditions
	// MetricsAddr, when non-empty, serves live run metrics as JSON on
	// GET <addr>/metrics for the duration of the run ("127.0.0.1:0" picks
	// an ephemeral port).
	MetricsAddr string
	// PprofEnabled additionally mounts net/http/pprof under the metrics
	// listener's /debug/pprof/.
	PprofEnabled bool
	// OnMetricsAddr, when set, is called once with the metrics listener's
	// concrete address as soon as the endpoint is up (before the workload
	// starts), so callers using port 0 can find it.
	OnMetricsAddr func(addr string)
}

// DefaultClusterConfig returns a loopback-scaled PlanetLab workload.
func DefaultClusterConfig(mode Mode) ClusterConfig {
	return ClusterConfig{
		Mode:             mode,
		Peers:            24,
		Sessions:         2,
		VideosPerSession: 6,
		WatchTime:        40 * time.Millisecond,
		MeanOffTime:      60 * time.Millisecond,
		ProbeInterval:    300 * time.Millisecond,
		PrefetchCount:    3,
		Seed:             1,
		Behavior:         vod.DefaultBehavior(),
		Tracker:          DefaultTrackerConfig(),
		Conditions:       DefaultConditions(),
	}
}

// Validate reports the first problem with the configuration.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Mode < ModeSocialTube || c.Mode > ModePAVoD:
		return fmt.Errorf("%w: mode=%d", dist.ErrBadParameter, c.Mode)
	case c.Peers <= 0:
		return fmt.Errorf("%w: peers=%d", dist.ErrBadParameter, c.Peers)
	case c.Sessions <= 0:
		return fmt.Errorf("%w: sessions=%d", dist.ErrBadParameter, c.Sessions)
	case c.VideosPerSession <= 0:
		return fmt.Errorf("%w: videosPerSession=%d", dist.ErrBadParameter, c.VideosPerSession)
	case c.WatchTime < 0 || c.MeanOffTime < 0 || c.ProbeInterval < 0:
		return fmt.Errorf("%w: negative durations", dist.ErrBadParameter)
	case c.PrefetchCount < 0:
		return fmt.Errorf("%w: prefetchCount=%d", dist.ErrBadParameter, c.PrefetchCount)
	}
	return c.Behavior.Validate()
}

// ClusterResult aggregates one emulated run; its fields mirror exp.Result
// so the bench harness prints Fig. 16(b)/17(b)/18(b) rows the same way.
type ClusterResult struct {
	Protocol string
	// StartupDelay in milliseconds per request (cache hits excluded).
	StartupDelay metrics.Sample
	// PeerBandwidth: per node, fraction of videos served by peers.
	PeerBandwidth metrics.Sample
	// LinksByVideoIndex[k]: link counts right after the (k+1)-th video of
	// a session.
	LinksByVideoIndex []metrics.Sample
	// Hit counts.
	CacheHits  int64
	PrefixHits int64
	PeerHits   int64
	ServerHits int64
	// Messages counts query messages.
	Messages int64
	// ServerBytes / PeerBytes shipped.
	ServerBytes int64
	PeerBytes   int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// NormalizedPeerBandwidthPercentiles returns the Fig. 16 percentile triplet.
func (r *ClusterResult) NormalizedPeerBandwidthPercentiles() (p1, p50, p99 float64) {
	return r.PeerBandwidth.Percentile(1), r.PeerBandwidth.Percentile(50), r.PeerBandwidth.Percentile(99)
}

// LiveMetrics is the JSON document the cluster's /metrics endpoint serves
// while a run is in flight: the tracker's view plus the workload aggregates
// collected so far.
type LiveMetrics struct {
	Protocol       string          `json:"protocol"`
	Tracker        TrackerMetrics  `json:"tracker"`
	StartupDelayMs metrics.Summary `json:"startupDelayMs"`
	CacheHits      int64           `json:"cacheHits"`
	PrefixHits     int64           `json:"prefixHits"`
	PeerHits       int64           `json:"peerHits"`
	ServerHits     int64           `json:"serverHits"`
	Messages       int64           `json:"messages"`
}

func liveMetrics(cfg ClusterConfig, tracker *Tracker, res *ClusterResult, resMu *sync.Mutex) LiveMetrics {
	resMu.Lock()
	m := LiveMetrics{
		Protocol:       cfg.Mode.String(),
		StartupDelayMs: res.StartupDelay.Summary(),
		CacheHits:      res.CacheHits,
		PrefixHits:     res.PrefixHits,
		PeerHits:       res.PeerHits,
		ServerHits:     res.ServerHits,
		Messages:       res.Messages,
	}
	resMu.Unlock()
	m.Tracker = tracker.MetricsSnapshot()
	return m
}

// RunCluster starts a tracker and peers, drives the session workload to
// completion, shuts everything down and returns aggregated metrics.
func RunCluster(cfg ClusterConfig, tr *trace.Trace) (*ClusterResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cluster config: %w", err)
	}
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: cluster needs a non-empty trace", dist.ErrBadParameter)
	}
	if cfg.Peers > len(tr.Users) {
		return nil, fmt.Errorf("%w: %d peers but only %d users in trace", dist.ErrBadParameter, cfg.Peers, len(tr.Users))
	}
	picker, err := vod.NewPicker(tr, cfg.Behavior)
	if err != nil {
		return nil, err
	}

	tracker, err := NewTracker(cfg.Tracker, tr, cfg.Conditions)
	if err != nil {
		return nil, err
	}
	if err := tracker.Start(); err != nil {
		return nil, err
	}
	defer tracker.Stop()

	peers := make([]*Peer, 0, cfg.Peers)
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
	}()
	for i := 0; i < cfg.Peers; i++ {
		pc := DefaultPeerConfig(i, cfg.Mode)
		pc.PrefetchCount = cfg.PrefetchCount
		pc.Seed = cfg.Seed + int64(i)*7919
		p, err := NewPeer(pc, tr, tracker.Addr(), cfg.Conditions)
		if err != nil {
			return nil, err
		}
		if err := p.Start(); err != nil {
			return nil, err
		}
		peers = append(peers, p)
	}

	res := &ClusterResult{
		Protocol:          cfg.Mode.String(),
		LinksByVideoIndex: make([]metrics.Sample, cfg.VideosPerSession),
	}
	var resMu sync.Mutex

	if cfg.MetricsAddr != "" {
		srv, err := obs.ServeMetrics(cfg.MetricsAddr, func() any {
			return liveMetrics(cfg, tracker, res, &resMu)
		}, cfg.PprofEnabled)
		if err != nil {
			return nil, fmt.Errorf("cluster metrics: %w", err)
		}
		defer srv.Close()
		if cfg.OnMetricsAddr != nil {
			cfg.OnMetricsAddr(srv.Addr())
		}
	}

	begin := time.Now()

	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(idx int, p *Peer) {
			defer wg.Done()
			runPeerSessions(cfg, tr, picker, p, idx, res, &resMu)
		}(i, p)
	}
	wg.Wait()

	res.Elapsed = time.Since(begin)
	res.ServerBytes = tracker.ServedBytes()
	for _, p := range peers {
		res.PeerBytes += p.ServedBytes()
	}
	return res, nil
}

// runPeerSessions drives one peer through its sessions, mirroring the
// simulator's workload loop over real time.
func runPeerSessions(cfg ClusterConfig, tr *trace.Trace, picker *vod.Picker, p *Peer, idx int, res *ClusterResult, resMu *sync.Mutex) {
	g := dist.NewRNG(cfg.Seed*1_000_003 + int64(idx))
	user := tr.Users[idx]

	// Optional probe loop for the peer's whole lifetime.
	probeStop := make(chan struct{})
	var probeWG sync.WaitGroup
	if cfg.ProbeInterval > 0 {
		probeWG.Add(1)
		go func() {
			defer probeWG.Done()
			ticker := time.NewTicker(cfg.ProbeInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					p.Probe()
				case <-probeStop:
					return
				}
			}
		}()
	}
	defer func() {
		close(probeStop)
		probeWG.Wait()
	}()

	peerVideos, totalVideos := 0, 0
	for s := 0; s < cfg.Sessions; s++ {
		p.SetOnline(true)
		plan := picker.PlanSession(g, user, cfg.VideosPerSession, cfg.MeanOffTime)
		for i, v := range plan.Videos {
			rec := p.RequestVideo(v)
			resMu.Lock()
			res.Messages += int64(rec.Messages)
			switch rec.Source {
			case vod.SourceCache:
				res.CacheHits++
			case vod.SourcePeer:
				res.PeerHits++
				peerVideos++
				totalVideos++
			case vod.SourceServer:
				res.ServerHits++
				totalVideos++
			}
			if rec.Source != vod.SourceCache {
				res.StartupDelay.AddDuration(rec.Startup)
				if rec.PrefixCached {
					res.PrefixHits++
				}
			}
			resMu.Unlock()
			time.Sleep(cfg.WatchTime)
			p.FinishVideo(v)
			resMu.Lock()
			if i < len(res.LinksByVideoIndex) {
				res.LinksByVideoIndex[i].Add(float64(p.Links()))
			}
			resMu.Unlock()
		}
		p.SetOnline(false)
		p.LeaveOverlays()
		if s+1 < cfg.Sessions {
			time.Sleep(time.Duration(dist.Exponential(g, float64(cfg.MeanOffTime))))
		}
	}
	if totalVideos > 0 {
		resMu.Lock()
		res.PeerBandwidth.Add(float64(peerVideos) / float64(totalVideos))
		resMu.Unlock()
	}
}
