package emu

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/socialtube/socialtube/internal/dist"
	"github.com/socialtube/socialtube/internal/faults"
	"github.com/socialtube/socialtube/internal/metrics"
	"github.com/socialtube/socialtube/internal/obs"
	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// ClusterConfig drives one emulated experiment: a tracker plus Peers TCP
// nodes on loopback running Sessions sessions each — the PlanetLab workload
// of §V scaled to one machine.
type ClusterConfig struct {
	// Mode selects the protocol all peers run.
	Mode Mode
	// Peers is the number of TCP nodes (the paper uses 250 PlanetLab
	// nodes; loopback runs scale this down).
	Peers int
	// Sessions per peer (paper: 50 on PlanetLab).
	Sessions int
	// VideosPerSession watched per session (paper: 10).
	VideosPerSession int
	// WatchTime is the emulated playback duration per video.
	WatchTime time.Duration
	// MeanOffTime is the mean off period between sessions.
	MeanOffTime time.Duration
	// ProbeInterval is the neighbour probe period (0 disables probing).
	ProbeInterval time.Duration
	// PrefetchCount is how many first chunks each peer prefetches
	// (0 disables prefetching).
	PrefetchCount int
	// Seed drives workload randomness.
	Seed int64
	// Behavior is the 75/15/10 video-selection model.
	Behavior vod.Behavior
	// Tracker configures the central server (the template for every
	// tracker replica when ControlPlane is set).
	Tracker TrackerConfig
	// ControlPlane, when non-nil, shards and replicates the tracker:
	// Shards x Replicas trackers are started, channels map to shards by
	// rendezvous hashing, and peers fail over between a shard's
	// replicas. nil runs the legacy single tracker (a 1x1 plane, byte-
	// identical behaviour).
	ControlPlane *ControlPlaneConfig
	// Conditions injects latency and loss (nil = pristine loopback).
	Conditions *Conditions
	// Tracer, when non-nil, receives the run's event stream: one serve
	// event per request (plus handoff/rescue events for mid-stream
	// failovers) and join/leave events per session, emitted by the
	// workload driver. T is the wall-clock offset from the start of the
	// workload in nanoseconds; spans are per-peer request sequences with
	// the peer id in the high bits, mirroring the sharded simulator's
	// per-cell span ranges.
	Tracer obs.Tracer
	// Faults, when non-nil, compiles to a deterministic schedule whose
	// event times are wall-clock offsets from the start of the workload
	// (scale them to WatchTime/MeanOffTime). The same plan drives the
	// simulator, so sim and emu replay identical fault sequences.
	Faults *faults.Plan
	// RPCTimeout, MaxRetries and RetryBackoff override every peer's
	// RPC/retry policy when positive (zero keeps the peer defaults).
	// Outage experiments want a short timeout so a down tracker costs
	// milliseconds, not the default 3s per attempt.
	RPCTimeout   time.Duration
	MaxRetries   int
	RetryBackoff time.Duration
	// MetricsAddr, when non-empty, serves live run metrics as JSON on
	// GET <addr>/metrics for the duration of the run ("127.0.0.1:0" picks
	// an ephemeral port).
	MetricsAddr string
	// PprofEnabled additionally mounts net/http/pprof under the metrics
	// listener's /debug/pprof/.
	PprofEnabled bool
	// OnMetricsAddr, when set, is called once with the metrics listener's
	// concrete address as soon as the endpoint is up (before the workload
	// starts), so callers using port 0 can find it.
	OnMetricsAddr func(addr string)
}

// DefaultClusterConfig returns a loopback-scaled PlanetLab workload.
func DefaultClusterConfig(mode Mode) ClusterConfig {
	return ClusterConfig{
		Mode:             mode,
		Peers:            24,
		Sessions:         2,
		VideosPerSession: 6,
		WatchTime:        40 * time.Millisecond,
		MeanOffTime:      60 * time.Millisecond,
		ProbeInterval:    300 * time.Millisecond,
		PrefetchCount:    3,
		Seed:             1,
		Behavior:         vod.DefaultBehavior(),
		Tracker:          DefaultTrackerConfig(),
		Conditions:       DefaultConditions(),
	}
}

// Validate reports the first problem with the configuration.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Mode < ModeSocialTube || c.Mode > ModePAVoD:
		return fmt.Errorf("%w: mode=%d", dist.ErrBadParameter, c.Mode)
	case c.Peers <= 0:
		return fmt.Errorf("%w: peers=%d", dist.ErrBadParameter, c.Peers)
	case c.Sessions <= 0:
		return fmt.Errorf("%w: sessions=%d", dist.ErrBadParameter, c.Sessions)
	case c.VideosPerSession <= 0:
		return fmt.Errorf("%w: videosPerSession=%d", dist.ErrBadParameter, c.VideosPerSession)
	case c.WatchTime < 0 || c.MeanOffTime < 0 || c.ProbeInterval < 0:
		return fmt.Errorf("%w: negative durations", dist.ErrBadParameter)
	case c.PrefetchCount < 0:
		return fmt.Errorf("%w: prefetchCount=%d", dist.ErrBadParameter, c.PrefetchCount)
	case c.RPCTimeout < 0 || c.MaxRetries < 0 || c.RetryBackoff < 0:
		return fmt.Errorf("%w: negative retry policy", dist.ErrBadParameter)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.ControlPlane != nil {
		if err := c.ControlPlane.Validate(); err != nil {
			return err
		}
	}
	return c.Behavior.Validate()
}

// ClusterResult aggregates one emulated run; its fields mirror exp.Result
// so the bench harness prints Fig. 16(b)/17(b)/18(b) rows the same way.
type ClusterResult struct {
	Protocol string
	// StartupDelay in milliseconds per request (cache hits excluded),
	// as a bounded log-bucketed histogram (obs.Hist) so long soak runs
	// hold O(buckets) memory, and so the live /metrics endpoint can
	// render it as a Prometheus histogram.
	StartupDelay obs.Hist
	// PeerBandwidth: per node, fraction of videos served by peers.
	PeerBandwidth metrics.Sample
	// LinksByVideoIndex[k]: link counts right after the (k+1)-th video of
	// a session.
	LinksByVideoIndex []metrics.Sample
	// Hit counts.
	CacheHits  int64
	PrefixHits int64
	PeerHits   int64
	ServerHits int64
	// Messages counts query messages.
	Messages int64
	// ServerBytes / PeerBytes shipped.
	ServerBytes int64
	PeerBytes   int64
	// FailedRequests counts requests nobody could complete (a tracker
	// outage outlasted the retry budget). They are included in
	// ServerHits, so hit counts still sum to the request total.
	FailedRequests int64
	// OutageRequests / OutageServed measure service while the tracker
	// was down: requests issued during the outage, and how many of
	// those were still delivered (by cache, peers, or late retries).
	OutageRequests int64
	OutageServed   int64
	// Crashes / Rejoins count applied churn events.
	Crashes int64
	Rejoins int64
	// HandoffAttempts / Handoffs / ServerRescues aggregate mid-stream
	// provider failovers across all requests; HandoffWaitMs samples the
	// per-handoff stall in milliseconds.
	HandoffAttempts int64
	Handoffs        int64
	ServerRescues   int64
	HandoffWaitMs   metrics.Sample
	// Obs merges the tracker's and every peer's protocol-counter
	// snapshots at the end of the run.
	Obs obs.Counters
	// TakeoverMs is the wall-clock delay between the first whole-shard
	// outage beginning and the first surviving replica declaring the
	// shard dead via gossip liveness — the time-to-takeover the failover
	// figure reports. 0 when the run saw no whole-shard outage or no
	// declaration.
	TakeoverMs float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// NormalizedPeerBandwidthPercentiles returns the Fig. 16 percentile triplet.
func (r *ClusterResult) NormalizedPeerBandwidthPercentiles() (p1, p50, p99 float64) {
	return r.PeerBandwidth.Percentile(1), r.PeerBandwidth.Percentile(50), r.PeerBandwidth.Percentile(99)
}

// LiveMetrics is the JSON document the cluster's /metrics endpoint serves
// while a run is in flight: the tracker's view plus the workload aggregates
// collected so far.
type LiveMetrics struct {
	Protocol       string          `json:"protocol"`
	Tracker        TrackerMetrics  `json:"tracker"`
	StartupDelayMs obs.HistSummary `json:"startupDelayMs"`
	CacheHits      int64           `json:"cacheHits"`
	PrefixHits     int64           `json:"prefixHits"`
	PeerHits       int64           `json:"peerHits"`
	ServerHits     int64           `json:"serverHits"`
	Messages       int64           `json:"messages"`
	// Mem reports the trace's deterministic memory footprint;
	// HeapHighWater is the live heap peak, refreshed on every scrape
	// (serialized here explicitly because MemUsage keeps environmental
	// numbers out of its own JSON encoding).
	Mem           obs.MemUsage `json:"mem"`
	HeapHighWater uint64       `json:"heapHighWaterBytes"`
}

func liveMetrics(cfg ClusterConfig, tracker *Tracker, res *ClusterResult, resMu *sync.Mutex, mem *obs.MemWatermark, traceBytes uint64, users int) LiveMetrics {
	resMu.Lock()
	m := LiveMetrics{
		Protocol:       cfg.Mode.String(),
		StartupDelayMs: res.StartupDelay.Summary(),
		CacheHits:      res.CacheHits,
		PrefixHits:     res.PrefixHits,
		PeerHits:       res.PeerHits,
		ServerHits:     res.ServerHits,
		Messages:       res.Messages,
	}
	resMu.Unlock()
	m.Tracker = tracker.MetricsSnapshot()
	m.Mem = obs.MemUsage{
		TraceBytes:   traceBytes,
		BytesPerUser: float64(traceBytes) / float64(users),
	}
	m.HeapHighWater = mem.Sample()
	return m
}

// RunCluster starts a tracker and peers, drives the session workload to
// completion, shuts everything down and returns aggregated metrics.
func RunCluster(cfg ClusterConfig, tr *trace.Trace) (*ClusterResult, error) {
	return RunClusterCtx(context.Background(), cfg, tr)
}

// faultDriver is the wall-clock fault scheduler's shared state. Peer
// session loops consult it for outage accounting and for the "no rejoin
// is coming" signal; a nil driver (no plan) answers false everywhere.
type faultDriver struct {
	outage atomic.Bool
	// shardOutageNano records (once) when the first whole-shard outage
	// was applied, so the run can report time-to-takeover against the
	// plane's first death declaration.
	shardOutageNano atomic.Int64
	// done closes when the last scheduled event has fired (or the run
	// stopped), so a crashed peer whose rejoin will never come can give
	// up instead of waiting forever.
	done chan struct{}
}

func (f *faultDriver) duringOutage() bool {
	return f != nil && f.outage.Load()
}

// waitRejoin blocks while p is crashed. It returns false when the caller
// should abandon the peer's workload: the run stopped, or the fault
// schedule drained with the peer still down (a permanent departure).
func (f *faultDriver) waitRejoin(p *Peer, stop <-chan struct{}) bool {
	for p.IsCrashed() {
		var drained <-chan struct{}
		if f != nil {
			drained = f.done
		}
		select {
		case <-stop:
			return false
		case <-drained:
			return !p.IsCrashed()
		case <-time.After(time.Millisecond):
		}
	}
	return true
}

// setOutage applies an outage event's control-plane targeting: whole
// plane (no targeting), one shard (all replicas), or one replica of one
// shard. Shard/Replica are 1-based in the event; out-of-range targets
// fall back to the widest enclosing scope so a plan written for a bigger
// plane still darkens something rather than silently no-opping.
func setOutage(cp *ControlPlane, ev faults.Event, down bool) {
	if ev.Shard <= 0 {
		cp.SetDown(down)
		return
	}
	if ev.Shard > cp.NumShards() {
		cp.SetDown(down)
		return
	}
	sh := cp.Shard(ev.Shard - 1)
	if ev.Replica <= 0 || ev.Replica > sh.Replicas() {
		sh.SetDown(down)
		return
	}
	if tk := sh.Replica(ev.Replica - 1); tk != nil {
		tk.SetDown(down)
	}
}

// drive replays the compiled schedule against the live cluster on
// wall-clock offsets from begin. Repair events are deliberately skipped:
// in the emulator the probe loop is the failure detector, so repair
// happens organically when probes time out on the crashed peer.
func (f *faultDriver) drive(sched *faults.Schedule, begin time.Time, stop <-chan struct{},
	peers []*Peer, cp *ControlPlane, cond *Conditions, res *ClusterResult, resMu *sync.Mutex) {
	defer close(f.done)
	for _, ev := range sched.Events {
		if !sleepUntil(begin.Add(ev.At), stop) {
			return
		}
		switch ev.Kind {
		case faults.KindCrash:
			if ev.Node >= 0 && ev.Node < len(peers) {
				peers[ev.Node].Crash()
				resMu.Lock()
				res.Crashes++
				resMu.Unlock()
			}
		case faults.KindRejoin:
			if ev.Node >= 0 && ev.Node < len(peers) {
				peers[ev.Node].Rejoin()
				resMu.Lock()
				res.Rejoins++
				resMu.Unlock()
			}
		case faults.KindRepair:
			// Probing detects and repairs; nothing to do centrally.
		case faults.KindBurstStart:
			cond.SetBurst(ev.LatencyFactor, ev.LossP)
		case faults.KindBurstEnd:
			cond.ClearBurst()
		case faults.KindOutageStart:
			f.outage.Store(true)
			if ev.Shard > 0 && ev.Replica == 0 {
				f.shardOutageNano.CompareAndSwap(0, time.Now().UnixNano())
			}
			setOutage(cp, ev, true)
		case faults.KindOutageEnd:
			f.outage.Store(false)
			setOutage(cp, ev, false)
		case faults.KindBrownoutStart:
			cp.SetCapacityFactor(ev.CapacityFactor)
		case faults.KindBrownoutEnd:
			cp.SetCapacityFactor(1)
		case faults.KindChaosStart:
			cond.SetChaos(&ChaosMix{
				CorruptP:   ev.CorruptP,
				TruncateP:  ev.TruncateP,
				DuplicateP: ev.DuplicateP,
				StallP:     ev.StallP,
				StallFor:   ev.StallFor,
			})
		case faults.KindChaosEnd:
			cond.ClearChaos()
		case faults.KindPartitionStart:
			cond.SetPartition(ev.Groups)
		case faults.KindPartitionEnd:
			cond.ClearPartition()
			// The cut is healed: replay every hinted-handoff write the
			// peers queued for replicas on the far side.
			for _, p := range peers {
				p.ReplayHints()
			}
		}
	}
}

// sleepUntil sleeps until the deadline, returning false if stop closed
// first.
func sleepUntil(deadline time.Time, stop <-chan struct{}) bool {
	d := time.Until(deadline)
	if d <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

// sleepOrStop sleeps for d, returning false if stop closed first.
func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	return sleepUntil(time.Now().Add(d), stop)
}

// RunClusterCtx is RunCluster with cancellation and fault injection: a
// cancelled context stops the workload, the fault driver and every
// tracker/peer goroutine before returning ctx.Err(). With a fault plan,
// the compiled schedule is replayed on wall-clock offsets while the
// workload runs.
func RunClusterCtx(ctx context.Context, cfg ClusterConfig, tr *trace.Trace) (*ClusterResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cluster config: %w", err)
	}
	if tr == nil || len(tr.Users) == 0 {
		return nil, fmt.Errorf("%w: cluster needs a non-empty trace", dist.ErrBadParameter)
	}
	if cfg.Peers > len(tr.Users) {
		return nil, fmt.Errorf("%w: %d peers but only %d users in trace", dist.ErrBadParameter, cfg.Peers, len(tr.Users))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	picker, err := vod.NewPicker(tr, cfg.Behavior)
	if err != nil {
		return nil, err
	}
	var sched *faults.Schedule
	if cfg.Faults != nil {
		sched, err = cfg.Faults.Compile(cfg.Peers)
		if err != nil {
			return nil, fmt.Errorf("cluster faults: %w", err)
		}
	}

	// A nil ControlPlane runs the legacy single tracker as a 1x1 plane:
	// one shard owns every channel and routing reduces to plain rpcRetry
	// against it, so legacy results are unchanged.
	cpCfg := ControlPlaneConfig{Shards: 1, Replicas: 1}
	if cfg.ControlPlane != nil {
		cpCfg = *cfg.ControlPlane
	}
	plane, err := StartControlPlane(cpCfg, cfg.Tracker, tr, cfg.Conditions)
	if err != nil {
		return nil, err
	}
	defer plane.Stop()

	peers := make([]*Peer, 0, cfg.Peers)
	defer func() {
		for _, p := range peers {
			p.Stop()
		}
	}()
	for i := 0; i < cfg.Peers; i++ {
		pc := DefaultPeerConfig(i, cfg.Mode)
		pc.PrefetchCount = cfg.PrefetchCount
		pc.Seed = cfg.Seed + int64(i)*7919
		if cfg.RPCTimeout > 0 {
			pc.RPCTimeout = cfg.RPCTimeout
		}
		if cfg.MaxRetries > 0 {
			pc.MaxRetries = cfg.MaxRetries
		}
		if cfg.RetryBackoff > 0 {
			pc.RetryBackoff = cfg.RetryBackoff
		}
		p, err := NewPeerWithControlPlane(pc, tr, plane, cfg.Conditions)
		if err != nil {
			return nil, err
		}
		if err := p.Start(); err != nil {
			return nil, err
		}
		peers = append(peers, p)
	}

	res := &ClusterResult{
		Protocol:          cfg.Mode.String(),
		LinksByVideoIndex: make([]metrics.Sample, cfg.VideosPerSession),
	}
	var resMu sync.Mutex

	if cfg.MetricsAddr != "" {
		memW := obs.NewMemWatermark(1) // refreshed on every scrape
		traceBytes := tr.Bytes()
		prom := func(w io.Writer) {
			// Live counter view: the plane's block merged with every
			// peer's, same fold the final result performs.
			ctr := plane.Counters()
			for _, p := range peers {
				ctr.Merge(p.Counters())
			}
			obs.WritePromCounters(w, "socialtube", &ctr)
			resMu.Lock()
			hist := res.StartupDelay
			resMu.Unlock()
			obs.WritePromHist(w, "socialtube_startup_delay_ms", &hist)
		}
		srv, err := obs.ServeMetrics(cfg.MetricsAddr, func() any {
			return liveMetrics(cfg, plane.First(), res, &resMu, memW, traceBytes, len(tr.Users))
		}, prom, cfg.PprofEnabled)
		if err != nil {
			return nil, fmt.Errorf("cluster metrics: %w", err)
		}
		defer srv.Close()
		if cfg.OnMetricsAddr != nil {
			cfg.OnMetricsAddr(srv.Addr())
		}
	}

	// stop fans the shutdown signal out to the session loops and the
	// fault driver; it closes on context cancellation or normal
	// completion.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			halt()
		case <-watchDone:
		}
	}()

	begin := time.Now()

	var fd *faultDriver
	var faultWG sync.WaitGroup
	if sched != nil {
		fd = &faultDriver{done: make(chan struct{})}
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			fd.drive(sched, begin, stop, peers, plane, cfg.Conditions, res, &resMu)
		}()
	}

	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(idx int, p *Peer) {
			defer wg.Done()
			runPeerSessions(cfg, tr, picker, p, idx, begin, res, &resMu, stop, fd)
		}(i, p)
	}
	wg.Wait()
	halt()
	faultWG.Wait()

	res.Elapsed = time.Since(begin)
	res.ServerBytes = plane.ServedBytes()
	if fd != nil {
		if start, declared := fd.shardOutageNano.Load(), plane.TakeoverDeclaredAt(); start > 0 && declared > start {
			res.TakeoverMs = float64(declared-start) / 1e6
		}
	}
	res.Obs = plane.Counters()
	for _, p := range peers {
		res.PeerBytes += p.ServedBytes()
		res.Obs.Merge(p.Counters())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// runPeerSessions drives one peer through its sessions, mirroring the
// simulator's workload loop over real time. It returns early when stop
// closes or when the peer crashed permanently (no rejoin scheduled).
func runPeerSessions(cfg ClusterConfig, tr *trace.Trace, picker *vod.Picker, p *Peer, idx int,
	begin time.Time, res *ClusterResult, resMu *sync.Mutex, stop <-chan struct{}, fd *faultDriver) {
	g := dist.NewRNG(cfg.Seed*1_000_003 + int64(idx))
	user := &tr.Users[idx]
	proto := cfg.Mode.String()
	// Per-peer span sequence with the peer id in the high bits, so spans
	// from different peers never alias in a merged trace.
	var spanSeq uint64
	emit := func(ev obs.Event) {
		if cfg.Tracer == nil {
			return
		}
		ev.T = int64(time.Since(begin))
		ev.Proto = proto
		ev.Node = idx
		cfg.Tracer.Emit(ev)
	}

	// Optional probe loop for the peer's whole lifetime (a crashed host
	// does not probe).
	probeStop := make(chan struct{})
	var probeWG sync.WaitGroup
	if cfg.ProbeInterval > 0 {
		probeWG.Add(1)
		go func() {
			defer probeWG.Done()
			ticker := time.NewTicker(cfg.ProbeInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if !p.IsCrashed() {
						p.Probe()
					}
				case <-probeStop:
					return
				}
			}
		}()
	}
	defer func() {
		close(probeStop)
		probeWG.Wait()
	}()

	peerVideos, totalVideos := 0, 0
	defer func() {
		if totalVideos > 0 {
			resMu.Lock()
			res.PeerBandwidth.Add(float64(peerVideos) / float64(totalVideos))
			resMu.Unlock()
		}
	}()
	for s := 0; s < cfg.Sessions; s++ {
		if !fd.waitRejoin(p, stop) {
			return
		}
		p.SetOnline(true)
		emit(obs.Event{Kind: obs.KindJoin, Video: -1, Provider: -1})
		plan := picker.PlanSession(g, user, cfg.VideosPerSession, cfg.MeanOffTime)
		for i, v := range plan.Videos {
			if !fd.waitRejoin(p, stop) {
				return
			}
			outage := fd.duringOutage()
			rec := p.RequestVideo(v)
			spanSeq++
			span := uint64(idx+1)<<40 | spanSeq
			emit(obs.Event{Kind: obs.KindServe, Video: int64(v), Provider: -1,
				Source: rec.Source.String(), Msgs: rec.Messages, Span: span})
			if rec.HandoffAttempts > 0 {
				emit(obs.Event{Kind: obs.KindHandoff, Video: int64(v), Provider: -1,
					OK: rec.Handoffs > 0, Msgs: rec.HandoffAttempts, Span: span})
			}
			if rec.ServerRescued {
				emit(obs.Event{Kind: obs.KindRescue, Video: int64(v), Provider: -1,
					Source: vod.SourceServer.String(), Span: span})
			}
			resMu.Lock()
			res.Messages += int64(rec.Messages)
			switch rec.Source {
			case vod.SourceCache:
				res.CacheHits++
			case vod.SourcePeer:
				res.PeerHits++
				peerVideos++
				totalVideos++
			case vod.SourceServer:
				res.ServerHits++
				totalVideos++
			}
			if rec.Source != vod.SourceCache {
				res.StartupDelay.AddDuration(rec.Startup)
				if rec.PrefixCached {
					res.PrefixHits++
				}
			}
			if rec.Failed {
				res.FailedRequests++
			}
			res.HandoffAttempts += int64(rec.HandoffAttempts)
			res.Handoffs += int64(rec.Handoffs)
			if rec.ServerRescued {
				res.ServerRescues++
			}
			for h := 0; h < rec.Handoffs; h++ {
				// One request can hand off more than once; spread the
				// recorded wait evenly across its handoffs.
				res.HandoffWaitMs.Add(float64(rec.HandoffWait) / float64(rec.Handoffs) / float64(time.Millisecond))
			}
			if outage {
				res.OutageRequests++
				if !rec.Failed {
					res.OutageServed++
				}
			}
			resMu.Unlock()
			if !sleepOrStop(cfg.WatchTime, stop) {
				return
			}
			if !p.IsCrashed() {
				p.FinishVideo(v)
			}
			resMu.Lock()
			if i < len(res.LinksByVideoIndex) {
				res.LinksByVideoIndex[i].Add(float64(p.Links()))
			}
			resMu.Unlock()
		}
		p.SetOnline(false)
		if !p.IsCrashed() {
			p.LeaveOverlays()
		}
		emit(obs.Event{Kind: obs.KindLeave, Video: -1, Provider: -1})
		if s+1 < cfg.Sessions {
			if !sleepOrStop(time.Duration(dist.Exponential(g, float64(cfg.MeanOffTime))), stop) {
				return
			}
		}
	}
}
