package emu

import (
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/faults"
)

// TestWholeShardTakeover kills every replica of one shard of a 2×2 plane
// mid-run and checks the partition-tolerant control plane recovers end
// to end: a surviving replica declares the shard dead within the
// suspicion window (liveness gossip), peers reroute the dead shard's
// channels onto the survivors (ring re-rendezvous + epoch adoption), and
// the run finishes with zero failed requests — pre-declaration loss is
// absorbed by the fallback walk, post-declaration routing is clean.
func TestWholeShardTakeover(t *testing.T) {
	tr := emuTrace(t)
	cfg := fastClusterConfig(ModeSocialTube)
	cfg.VideosPerSession = 20
	cfg.WatchTime = 4 * time.Millisecond
	cfg.MeanOffTime = 4 * time.Millisecond
	cfg.ControlPlane = &ControlPlaneConfig{
		Shards: 2, Replicas: 2, RingSeed: 1,
		GossipInterval:  2 * time.Millisecond,
		GossipTimeout:   10 * time.Millisecond,
		SuspicionRounds: 3,
	}
	// Whole shard 1 (both replicas) goes dark from 40ms to 120ms.
	cfg.Faults = faults.ShardOutagePlan(cfg.Seed, 40*time.Millisecond, 1)
	cfg.RPCTimeout = 25 * time.Millisecond
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 3 * time.Millisecond
	res, err := RunCluster(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRequests != 0 {
		t.Fatalf("lost %d requests across a whole-shard outage; want 0", res.FailedRequests)
	}
	if res.CacheHits+res.PeerHits+res.ServerHits == 0 {
		t.Fatal("run served nothing")
	}
	if res.Obs.ShardsDeclaredDead == 0 {
		t.Fatal("no survivor declared the dead shard within the suspicion window")
	}
	if res.TakeoverMs <= 0 {
		t.Fatalf("time-to-takeover not measured: %v", res.TakeoverMs)
	}
	if res.Obs.TakeoverReroutes == 0 {
		t.Fatal("no request was rerouted to a takeover owner")
	}
}

// TestPartitionGossipSplitBrainHeals runs two live replicas of one shard
// under a 2-group partition: writes on each side must NOT converge
// across the cut while it holds (split brain is explicit, not hidden),
// and after the heal the versioned LWW merge must re-converge both
// member tables with zero lost registrations.
func TestPartitionGossipSplitBrainHeals(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	ta := startTracker(t, tr, cond)
	tb := startTracker(t, tr, cond)
	addrs := []string{ta.Addr(), tb.Addr()}
	ta.StartGossip(17, [][]string{addrs}, 0, 0, 2*time.Millisecond, 50*time.Millisecond)
	tb.StartGossip(17, [][]string{addrs}, 0, 1, 2*time.Millisecond, 50*time.Millisecond)

	ch := tr.Channels[0].ID
	join := func(tk *Tracker, id int) {
		t.Helper()
		resp, err := rpc(tk.Addr(), &Message{
			Type: MsgJoin, From: id, Addr: "127.0.0.1:9", Channel: int(ch), TTL: 1,
		}, 2*time.Second)
		if err != nil || resp.Type != MsgJoinOK {
			t.Fatalf("join %d: %v %+v", id, err, resp)
		}
	}
	waitLive := func(tk *Tracker, id int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if m := tk.channels.Live(int64(ch)); m[id] != "" {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("replica never learned member %d: %v", id, tk.channels.Live(int64(ch)))
	}

	// Healthy baseline: gossip converges.
	join(ta, 2)
	waitLive(tb, 2)

	// Split: member 4 sits on side 0, member 5 on side 1 — each write
	// lands on its own side's replica and must stay there.
	cond.SetPartition(2)
	join(ta, 4)
	join(tb, 5)
	time.Sleep(20 * time.Millisecond)
	if m := tb.channels.Live(int64(ch)); m[4] != "" {
		t.Fatal("gossip converged across the partition cut")
	}
	if m := ta.channels.Live(int64(ch)); m[5] != "" {
		t.Fatal("gossip converged across the partition cut")
	}

	// Heal: both sides merge; no registration may be lost.
	cond.ClearPartition()
	waitLive(tb, 4)
	waitLive(ta, 5)
}

// TestHintedHandoffReplaysOnHeal pins the write-side half of partition
// tolerance: a plane-wide write (the peer's register broadcast) made
// under a partition queues a hint for the unreachable replica instead of
// silently dropping it, and ReplayHints delivers it after the heal.
func TestHintedHandoffReplaysOnHeal(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	plane, err := StartControlPlane(ControlPlaneConfig{
		Shards: 1, Replicas: 2, RingSeed: 3,
		GossipInterval: 2 * time.Millisecond,
		GossipTimeout:  50 * time.Millisecond,
	}, DefaultTrackerConfig(), tr, cond)
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Stop()

	cond.SetPartition(2)
	pc := DefaultPeerConfig(0, ModeSocialTube) // side 0: replica 1 is cut off
	p, err := NewPeerWithControlPlane(pc, tr, plane, cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	ctr := p.Counters()
	if ctr.HintsQueued != 1 {
		t.Fatalf("register broadcast queued %d hints; want 1 (the severed replica)", ctr.HintsQueued)
	}
	far := plane.Shard(0).Replica(1)
	far.mu.Lock()
	_, leaked := far.addrs[0]
	far.mu.Unlock()
	if leaked {
		t.Fatal("register crossed the partition cut")
	}

	cond.ClearPartition()
	p.ReplayHints()
	ctr = p.Counters()
	if ctr.HintsReplayed != 1 {
		t.Fatalf("replayed %d hints after heal; want 1", ctr.HintsReplayed)
	}
	far.mu.Lock()
	addr := far.addrs[0]
	far.mu.Unlock()
	if addr != p.Addr() {
		t.Fatalf("far-side replica never caught up: addr %q want %q", addr, p.Addr())
	}
}

// TestBreakerDemotesPreferredReplica is the regression test for
// preferred-replica demotion: once the configured preference's breaker
// opens, the next successful walk re-points the preference at the
// winning replica so steady-state requests stop paying the failover walk.
func TestBreakerDemotesPreferredReplica(t *testing.T) {
	tr := emuTrace(t)
	cond := fastConditions()
	plane, err := StartControlPlane(ControlPlaneConfig{
		Shards: 1, Replicas: 2, RingSeed: 3,
		GossipInterval: 2 * time.Millisecond,
		GossipTimeout:  20 * time.Millisecond,
	}, DefaultTrackerConfig(), tr, cond)
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Stop()

	pc := DefaultPeerConfig(0, ModeSocialTube) // configured preference: replica 0
	pc.RPCTimeout = 20 * time.Millisecond
	pc.MaxRetries = 0
	p, err := NewPeerWithControlPlane(pc, tr, plane, cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	plane.Shard(0).Replica(0).SetDown(true)
	req := &Message{Type: MsgRegister, From: 0, Addr: p.Addr()}
	// Breaker threshold failures open the preference; the next walk's
	// winner becomes the new preference.
	for i := 0; i < 4; i++ {
		if _, err := p.trackerRPC(1, req); err != nil {
			t.Fatalf("call %d failed despite a live replica: %v", i, err)
		}
	}
	p.brkMu.Lock()
	v, ok := p.prefRep[0]
	p.brkMu.Unlock()
	if !ok || v != 1 {
		t.Fatalf("preference not demoted to the surviving replica: got %v/%v", v, ok)
	}
	if got := p.preferredReplica(0, 2); got != 1 {
		t.Fatalf("preferredReplica still answers %d after demotion", got)
	}
}
