package emu

import (
	"net"
	"testing"
	"time"

	"github.com/socialtube/socialtube/internal/trace"
	"github.com/socialtube/socialtube/internal/vod"
)

// startPeerCfg is startPeer with a config hook, for tests that need tight
// timeouts or retry budgets.
func startPeerCfg(t *testing.T, tr *trace.Trace, tk *Tracker, id int, mode Mode, cond *Conditions, tune func(*PeerConfig)) *Peer {
	t.Helper()
	cfg := DefaultPeerConfig(id, mode)
	if tune != nil {
		tune(&cfg)
	}
	p, err := NewPeer(cfg, tr, tk.Addr(), cond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Stop)
	return p
}

// TestMidStreamCrashResumesOnSecondCandidate is the PR's headline
// regression test: a provider crashes the moment it has served chunk 0,
// and the requester must resume from the NEXT chunk on the second ranked
// candidate — one completed handoff, no server rescue, no restart. The
// byte accounting proves the resume point: each provider uploads exactly
// one chunk payload and the server uploads nothing.
func TestMidStreamCrashResumesOnSecondCandidate(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, nil)
	tune := func(c *PeerConfig) {
		c.RPCTimeout = 150 * time.Millisecond
		c.PrefetchCount = 0
	}
	requester := startPeerCfg(t, tr, tk, 0, ModeSocialTube, nil, tune)
	providers := map[int]*Peer{
		1: startPeerCfg(t, tr, tk, 1, ModeSocialTube, nil, tune),
		2: startPeerCfg(t, tr, tk, 2, ModeSocialTube, nil, tune),
	}

	var ch trace.ChannelID
	var v trace.VideoID
	found := false
	for _, c := range tr.Channels {
		if len(c.Videos) > 0 {
			ch, v, found = c.ID, c.Videos[0], true
			break
		}
	}
	if !found {
		t.Fatal("trace has no videos")
	}
	for _, p := range providers {
		p.Subscribe(ch)
		p.SeedCache(v)
		p.JoinChannel(ch)
	}
	requester.Subscribe(ch)
	requester.JoinChannel(ch)
	// White-box: guarantee both providers are inner neighbours so the
	// flood ranks them both, whatever the tracker recommended.
	for id, p := range providers {
		requester.connectTo(PeerInfo{ID: id, Addr: p.Addr(), Channel: int(ch)}, "inner", int(ch), 0)
	}

	crashed := 0
	requester.SetOnChunk(func(_ trace.VideoID, chunk, provider int) {
		if chunk == 0 && provider > 0 && crashed == 0 {
			crashed = provider
			providers[provider].Crash()
		}
	})

	rec := requester.RequestVideo(v)
	if crashed == 0 {
		t.Fatal("no provider served chunk 0 — staging broken")
	}
	survivor := providers[3-crashed]
	if rec.Source != vod.SourcePeer {
		t.Fatalf("Source = %v, want SourcePeer", rec.Source)
	}
	if rec.ServerRescued || rec.Failed {
		t.Fatalf("rescued=%v failed=%v, want neither", rec.ServerRescued, rec.Failed)
	}
	if rec.HandoffAttempts != 1 || rec.Handoffs != 1 {
		t.Fatalf("handoffs = %d/%d attempts, want 1/1", rec.Handoffs, rec.HandoffAttempts)
	}
	payload := int64(DefaultPeerConfig(0, ModeSocialTube).ChunkPayload)
	if got := providers[crashed].ServedBytes(); got != payload {
		t.Fatalf("crashed provider served %d bytes, want exactly one chunk (%d)", got, payload)
	}
	if got := survivor.ServedBytes(); got != payload {
		t.Fatalf("survivor served %d bytes, want exactly one resumed chunk (%d) — a restart would be %d", got, payload, 2*payload)
	}
	if got := tk.ServedBytes(); got != 0 {
		t.Fatalf("server served %d bytes, want 0", got)
	}
	if got := requester.Counters().Handoffs; got != 1 {
		t.Fatalf("peer Handoffs counter = %d, want 1", got)
	}
}

// TestChaosFrameFaults drives each chaos action through a live peer's
// response path: corruption and truncation must surface as RPC errors
// (never a panic or a dead listener), duplication must stay invisible to
// a one-shot RPC, and every injected fault must be accounted.
func TestChaosFrameFaults(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, nil)
	cond := &Conditions{Seed: 7}
	p := startPeerCfg(t, tr, tk, 1, ModeSocialTube, cond, nil)
	probe := &Message{Type: MsgProbe, From: 0}
	const timeout = 150 * time.Millisecond

	cond.SetChaos(&ChaosMix{CorruptP: 1})
	if _, err := rpc(p.Addr(), probe, timeout); err == nil {
		t.Fatal("corrupted response frame produced no error")
	}
	if got := p.Counters().ChaosCorrupted; got == 0 {
		t.Fatal("ChaosCorrupted not accounted")
	}

	cond.SetChaos(&ChaosMix{TruncateP: 1})
	if _, err := rpc(p.Addr(), probe, timeout); err == nil {
		t.Fatal("truncated response frame produced no error")
	}
	if got := p.Counters().ChaosTruncated; got == 0 {
		t.Fatal("ChaosTruncated not accounted")
	}

	cond.SetChaos(&ChaosMix{DuplicateP: 1})
	resp, err := rpc(p.Addr(), probe, timeout)
	if err != nil || resp.Type != MsgOK {
		t.Fatalf("duplicated frame broke the RPC: %v %v", resp, err)
	}
	if got := p.Counters().ChaosDuplicated; got == 0 {
		t.Fatal("ChaosDuplicated not accounted")
	}

	cond.SetChaos(&ChaosMix{StallP: 1, StallFor: time.Second})
	if _, err := rpc(p.Addr(), probe, timeout); err == nil {
		t.Fatal("stalled response frame beat the deadline")
	}
	if got := p.Counters().ChaosStalled; got == 0 {
		t.Fatal("ChaosStalled not accounted")
	}

	// The window closes and the peer is immediately healthy again.
	cond.ClearChaos()
	resp, err = rpc(p.Addr(), probe, timeout)
	if err != nil || resp.Type != MsgOK {
		t.Fatalf("post-chaos probe failed: %v %v", resp, err)
	}
}

// TestMalformedFrameCountsAndListenerSurvives feeds a peer raw garbage:
// the frame is rejected and counted, and the listener keeps serving.
func TestMalformedFrameCountsAndListenerSurvives(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, nil)
	p := startPeerCfg(t, tr, tk, 1, ModeSocialTube, nil, nil)

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A plausible-length header followed by non-JSON bytes.
	if _, err := conn.Write([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for p.Counters().FramesMalformed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("FramesMalformed never incremented")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := rpc(p.Addr(), &Message{Type: MsgProbe, From: 0}, time.Second)
	if err != nil || resp.Type != MsgOK {
		t.Fatalf("listener did not survive the malformed frame: %v %v", resp, err)
	}
}

// countingSink returns a listener address that accepts and immediately
// closes every connection, plus a function reporting how many arrived.
func countingSink(t *testing.T) (string, func() int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	ch := make(chan struct{}, 1024)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
			ch <- struct{}{}
		}
	}()
	return ln.Addr().String(), func() int {
		n := 0
		for {
			select {
			case <-ch:
				n++
			case <-time.After(50 * time.Millisecond):
				return n
			}
		}
	}
}

// TestRPCRetryExhaustsBudgetWithDoublingBackoff pins rpcRetry's contract:
// exactly MaxRetries+1 attempts against a sink that hangs up on every
// connection, one RPCFailures increment at the end, and a total elapsed
// time that proves the backoff doubled rather than stayed flat.
func TestRPCRetryExhaustsBudgetWithDoublingBackoff(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, nil)
	const backoff = 40 * time.Millisecond
	p := startPeerCfg(t, tr, tk, 1, ModeSocialTube, nil, func(c *PeerConfig) {
		c.MaxRetries = 2
		c.RetryBackoff = backoff
		c.RPCTimeout = 200 * time.Millisecond
	})
	addr, attempts := countingSink(t)

	begin := time.Now()
	_, err := p.rpcRetry(addr, &Message{Type: MsgRegister, From: 1, Addr: p.Addr()})
	elapsed := time.Since(begin)
	if err == nil {
		t.Fatal("rpcRetry succeeded against a hang-up sink")
	}
	if got := attempts(); got != 3 {
		t.Fatalf("sink saw %d attempts, want MaxRetries+1 = 3", got)
	}
	// Two sleeps: backoff then 2*backoff. A flat backoff would finish in
	// ~2*backoff of sleep; doubling needs at least 3*backoff.
	if elapsed < 3*backoff {
		t.Fatalf("elapsed %v proves no doubling (want >= %v of backoff alone)", elapsed, 3*backoff)
	}
	if got := p.Counters().RPCFailures; got != 1 {
		t.Fatalf("RPCFailures = %d, want 1 (budget exhaustion is one failure)", got)
	}
}

// TestRPCRetryAbortsOnStop pins the early-abort path: a peer stopped
// mid-backoff must abandon the retry immediately instead of sleeping out
// its (long) backoff schedule.
func TestRPCRetryAbortsOnStop(t *testing.T) {
	tr := emuTrace(t)
	tk := startTracker(t, tr, nil)
	p := startPeerCfg(t, tr, tk, 1, ModeSocialTube, nil, func(c *PeerConfig) {
		c.MaxRetries = 8
		c.RetryBackoff = 10 * time.Second // would sleep forever without the abort
		c.RPCTimeout = 100 * time.Millisecond
	})
	addr, _ := countingSink(t)

	done := make(chan error, 1)
	go func() {
		_, err := p.rpcRetry(addr, &Message{Type: MsgRegister, From: 1, Addr: p.Addr()})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail into the backoff wait
	p.Stop()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted rpcRetry reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rpcRetry kept sleeping after Stop")
	}
	if got := p.Counters().RPCFailures; got != 1 {
		t.Fatalf("RPCFailures = %d, want 1", got)
	}
}
